// Package exec implements the Volcano-style (Open/Next/Close) iterator
// executor. Every operator charges its resource consumption — page reads
// and writes, per-tuple CPU work, network traffic, function invocations —
// against the cost.Counter in the execution Context, so any plan's true
// cost can be measured and compared with the optimizer's estimate.
//
// Conventions:
//   - Base-table scans charge one page read per page crossed.
//   - In-memory operations (hashing, comparing, copying a tuple) charge
//     CPU tuple operations.
//   - Materialization charges page writes on build and page reads on
//     subsequent scans.
//   - Operators are restartable: Open resets all state, so nested-loops
//     joins may re-Open their inner arbitrarily often.
package exec

import (
	"context"
	"errors"
	"fmt"

	"filterjoin/internal/cost"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Transport delivers one network message to a remote site, charging the
// crossing to ctx.Counter. It is declared here (rather than in dist,
// which implements it) so the Context can carry one without exec
// depending on the distributed substrate. A failed delivery — after
// whatever retry policy the implementation applies — comes back as a
// typed error the operator tree propagates unchanged, so the facade can
// recognize it and degrade to a fault-free plan.
type Transport interface {
	Send(ctx *Context, site int, bytes int64) error
}

// Context carries per-execution state: the cost counter every operator
// charges, and the instrumentation registry maintained by Instrumented
// shims.
type Context struct {
	Counter *cost.Counter

	// Net is the transport remote crossings route through. nil means the
	// free, instant, lossless network every local-only execution uses.
	Net Transport

	// Caller is the caller's cancellation context, if any. Operators and
	// drain loops poll Err to abandon work after cancellation or deadline.
	// The batch engine polls between batches rather than between rows, so
	// cancellation granularity is one morsel.
	Caller context.Context

	// BatchSize selects the engine: above 1, drain loops and pipeline
	// breakers pull morsels of up to this many rows through NextBatch
	// (falling back to the row shim for operators without a batch path);
	// 0 or 1 is the classic row-at-a-time engine. Counter totals are
	// bit-identical at every setting (see batch.go).
	BatchSize int

	// Params are the bind-parameter values for this execution. Operators
	// holding expressions substitute them at Open via expr.BindParams, so
	// a plan cached from one statement can execute any binding in its
	// selectivity class. Empty for non-parameterized plans.
	Params []value.Value

	// ReplanRatio arms the mid-run replan guards (DESIGN.md §15): when a
	// CardGuard at a materialization point observes its input exceed the
	// planned estimate by this factor, it aborts the pull with a
	// *ReplanError so the serving layer can re-optimize the remainder
	// with the observed cardinality. 0 (the default) disarms every guard
	// — executions outside the adaptive serving path are bit-identical
	// to pre-adaptive behavior.
	ReplanRatio float64

	// Kernels enables the vectorized evaluation layer (DESIGN.md §14):
	// predicates compiled to batch kernels with selection vectors, and
	// open-addressing hash tables over byte-encoded keys in place of
	// string-keyed maps. Rows, order and Counter totals are bit-identical
	// either way; off exists for ablation (EXPLAIN kernels=off) and as
	// the reference the differential fuzz compares against.
	Kernels bool

	// ops collects the stats block of every Instrumented shim that ran
	// under this context, in first-Open order.
	ops []*OpStats
	// stack tracks the shims currently inside a call, for parent/child
	// cost attribution.
	stack []*Instrumented
}

// NewContext returns a context with a fresh counter. Kernels default to
// the process-wide setting (on unless FILTERJOIN_KERNELS disables them).
func NewContext() *Context {
	return &Context{Counter: &cost.Counter{}, Kernels: EnvKernels()}
}

// Err reports why execution should stop: the caller context's
// cancellation or deadline error, or nil when no caller context is
// attached or it is still live.
func (ctx *Context) Err() error {
	if ctx.Caller == nil {
		return nil
	}
	return ctx.Caller.Err()
}

// OperatorStats returns the per-operator runtime statistics collected
// so far, in first-Open order. The slice is live: entries keep
// accumulating if execution continues.
func (ctx *Context) OperatorStats() []*OpStats { return ctx.ops }

// Operator is a restartable row iterator.
type Operator interface {
	// Schema describes the rows the operator produces.
	Schema() *schema.Schema
	// Open (re)initializes the operator. It must be callable repeatedly.
	Open(ctx *Context) error
	// Next returns the next row. ok is false at end of stream.
	Next(ctx *Context) (row value.Row, ok bool, err error)
	// Close releases resources. Close after Close is a no-op.
	Close(ctx *Context) error
}

// Drain opens op, pulls every row (batch-wise when the context batches),
// closes it, and returns the rows.
func Drain(ctx *Context, op Operator) ([]value.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var rows []value.Row
	if ctx.BatchSize > 1 {
		b := NewBatch(ctx.BatchSize)
		for {
			if err := ctx.Err(); err != nil {
				return nil, errors.Join(err, op.Close(ctx))
			}
			b.Reset()
			if err := FillBatch(ctx, op, &b, ctx.BatchSize); err != nil {
				return nil, errors.Join(err, op.Close(ctx))
			}
			if b.Len() == 0 {
				break
			}
			rows = append(rows, b.Rows...)
		}
	} else {
		for {
			if err := ctx.Err(); err != nil {
				return nil, errors.Join(err, op.Close(ctx))
			}
			r, ok, err := op.Next(ctx)
			if err != nil {
				return nil, errors.Join(err, op.Close(ctx))
			}
			if !ok {
				break
			}
			rows = append(rows, r)
		}
	}
	if err := op.Close(ctx); err != nil {
		return nil, err
	}
	return rows, nil
}

// Count drains op and returns only the row count.
func Count(ctx *Context, op Operator) (int, error) {
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	if ctx.BatchSize > 1 {
		b := NewBatch(ctx.BatchSize)
		for {
			if err := ctx.Err(); err != nil {
				return 0, errors.Join(err, op.Close(ctx))
			}
			b.Reset()
			if err := FillBatch(ctx, op, &b, ctx.BatchSize); err != nil {
				return 0, errors.Join(err, op.Close(ctx))
			}
			if b.Len() == 0 {
				break
			}
			n += b.Len()
		}
		return n, op.Close(ctx)
	}
	for {
		if err := ctx.Err(); err != nil {
			return 0, errors.Join(err, op.Close(ctx))
		}
		_, ok, err := op.Next(ctx)
		if err != nil {
			return 0, errors.Join(err, op.Close(ctx))
		}
		if !ok {
			break
		}
		n++
	}
	return n, op.Close(ctx)
}

// MaterializeToTable drains op into a fresh storage table named name,
// charging one page write per page produced.
func MaterializeToTable(ctx *Context, op Operator, name string) (*storage.Table, error) {
	rows, err := Drain(ctx, op)
	if err != nil {
		return nil, err
	}
	t := storage.FromRows(name, op.Schema(), rows)
	ctx.Counter.PageWrites += int64(t.NumPages())
	return t, nil
}

// errOp wraps a construction-time error so that builders can defer error
// reporting to Open.
type errOp struct {
	s   *schema.Schema
	err error
}

// Error returns an operator that fails at Open with err.
func Error(s *schema.Schema, err error) Operator { return &errOp{s: s, err: err} }

func (e *errOp) Schema() *schema.Schema { return e.s }
func (e *errOp) Open(*Context) error    { return e.err }
func (e *errOp) Next(*Context) (value.Row, bool, error) {
	return nil, false, fmt.Errorf("exec: Next on failed operator: %w", e.err)
}
func (e *errOp) Close(*Context) error { return nil }

// Values is a leaf operator over in-memory rows that charges CPU only
// (used for pipelined intermediate results and tests).
type Values struct {
	Sch  *schema.Schema
	Rows []value.Row
	pos  int
}

// NewValues builds a Values operator.
func NewValues(s *schema.Schema, rows []value.Row) *Values {
	return &Values{Sch: s, Rows: rows}
}

// Schema implements Operator.
func (v *Values) Schema() *schema.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open(*Context) error {
	v.pos = 0
	return nil
}

// Next implements Operator.
func (v *Values) Next(ctx *Context) (value.Row, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	r := v.Rows[v.pos]
	v.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the buffered rows a morsel at
// a time, charging the same one CPU operation per row as Next.
func (v *Values) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := min(max, len(v.Rows)-v.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, v.Rows[v.pos:v.pos+n]...)
	v.pos += n
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (v *Values) Close(*Context) error { return nil }
