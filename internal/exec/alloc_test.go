package exec

import (
	"encoding/json"
	"os"
	"testing"

	"filterjoin/internal/expr"
)

// allocBudget is the checked-in allocation budget for steady-state
// NextBatch calls on the kernel paths (testdata/alloc_budget.json). The
// budgets carry roughly 2x headroom over the measured figures so the
// gate catches regressions — a per-row allocation shows up as ~1024
// allocs per batch — without flaking on incidental runtime variation.
type allocBudget map[string]float64

func loadAllocBudget(t *testing.T) allocBudget {
	t.Helper()
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("alloc budget: %v", err)
	}
	var b allocBudget
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("alloc budget: %v", err)
	}
	return b
}

// allocTable builds a table long enough that dozens of NextBatch pulls
// stay in the middle of the stream.
func allocTable(t testing.TB, name string, n int) Operator {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i % 997), int64(i % 31)}
	}
	return NewTableScan(intTable(t, name, []string{"k", "v"}, rows), "")
}

// TestAllocBudget is the allocation regression gate for the kernel
// paths: a warmed Filter, HashJoin, and GroupBy batch pipeline must not
// allocate more per steady-state NextBatch than the checked-in budget.
func TestAllocBudget(t *testing.T) {
	budget := loadAllocBudget(t)
	const tableRows = 200_000
	cases := []struct {
		name string
		mk   func(t *testing.T) Operator
	}{
		{"Select", func(t *testing.T) Operator {
			pred := expr.NewAnd(
				expr.NewCmp(expr.LT, expr.NewCol(1, "v"), expr.Int(25)),
				expr.NewCmp(expr.GE, expr.NewCol(0, "k"), expr.Int(3)),
			)
			return NewSelect(allocTable(t, "t", tableRows), pred)
		}},
		{"HashJoin", func(t *testing.T) Operator {
			return NewHashJoin(allocTable(t, "b", 4096), allocTable(t, "p", tableRows),
				[]int{0}, []int{0}, nil)
		}},
		{"GroupBy", func(t *testing.T) Operator {
			// Distinct keys so the emit phase spans many output batches.
			rows := make([][]int64, tableRows)
			for i := range rows {
				rows[i] = []int64{int64(i), int64(i % 31)}
			}
			scan := NewTableScan(intTable(t, "g", []string{"k", "v"}, rows), "")
			return NewGroupBy(scan, []int{0},
				[]expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, ok := budget[tc.name]
			if !ok {
				t.Fatalf("no budget entry for %s", tc.name)
			}
			op := tc.mk(t)
			ctx := NewContext()
			ctx.Kernels = true
			ctx.BatchSize = DefaultBatchSize
			if err := op.Open(ctx); err != nil {
				t.Fatal(err)
			}
			bop := op.(BatchOperator)
			var dst Batch
			// Warm up: pull a few batches so scratch buffers, selection
			// vectors, and pooled row storage reach steady-state size.
			for i := 0; i < 8; i++ {
				dst.Reset()
				if err := bop.NextBatch(ctx, &dst, DefaultBatchSize); err != nil {
					t.Fatal(err)
				}
				if dst.Len() == 0 {
					t.Fatalf("input exhausted during warmup")
				}
			}
			got := testing.AllocsPerRun(40, func() {
				dst.Reset()
				if err := bop.NextBatch(ctx, &dst, DefaultBatchSize); err != nil {
					t.Fatal(err)
				}
				if dst.Len() == 0 {
					t.Fatalf("input exhausted during measurement")
				}
			})
			if err := op.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if got > want {
				t.Errorf("%s steady-state NextBatch allocates %.1f/op, budget %.1f (testdata/alloc_budget.json)",
					tc.name, got, want)
			}
		})
	}
}
