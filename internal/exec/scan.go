package exec

import (
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// TableScan is a full sequential scan of a stored table. It charges one
// page read each time the scan crosses onto a new page and one CPU tuple
// operation per row produced.
type TableScan struct {
	Table *storage.Table
	alias *schema.Schema // schema possibly re-qualified with an alias
	pos   int
}

// NewTableScan builds a scan. If alias is non-empty the output schema is
// re-qualified with it (FROM Emp E).
func NewTableScan(t *storage.Table, alias string) *TableScan {
	s := t.Schema()
	if alias != "" {
		s = s.Rename(alias)
	}
	return &TableScan{Table: t, alias: s}
}

// Schema implements Operator.
func (s *TableScan) Schema() *schema.Schema { return s.alias }

// Open implements Operator.
func (s *TableScan) Open(*Context) error {
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *TableScan) Next(ctx *Context) (value.Row, bool, error) {
	if s.pos >= s.Table.NumRows() {
		return nil, false, nil
	}
	if s.pos%s.Table.RowsPerPage() == 0 {
		ctx.Counter.PageReads++
	}
	r := s.Table.Row(s.pos)
	s.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: one tight loop over the morsel,
// with the page-read and per-row CPU charges accumulated locally and
// flushed once — the same units Next charges row by row.
func (s *TableScan) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := s.Table.NumRows()
	if s.pos >= n || max <= 0 {
		return nil
	}
	rpp := s.Table.RowsPerPage()
	var pages, cpu int64
	for len(dst.Rows) < max && s.pos < n {
		if s.pos%rpp == 0 {
			pages++
		}
		dst.Rows = append(dst.Rows, s.Table.Row(s.pos))
		s.pos++
		cpu++
	}
	ctx.Counter.PageReads += pages
	ctx.Counter.CPUTuples += cpu
	return nil
}

// Close implements Operator.
func (s *TableScan) Close(*Context) error { return nil }

// IndexLookup scans the rows of a table matching one key via a hash
// index. Each Open charges one page read for the index probe plus one
// page read per distinct data page holding matches (unclustered index
// model).
type IndexLookup struct {
	Table *storage.Table
	Index *storage.HashIndex
	Key   value.Row
	// KeyExprs, when set, compute the key at Open (constant-foldable
	// expressions only — typically bind parameters substituted from
	// ctx.Params), overriding Key. This is how a cached plan's index
	// probe follows the current parameter binding.
	KeyExprs []expr.Expr
	sch      *schema.Schema
	ids      []int
	pos      int
}

// NewIndexLookup builds an index lookup for a fixed key.
func NewIndexLookup(t *storage.Table, ix *storage.HashIndex, key value.Row, alias string) *IndexLookup {
	s := t.Schema()
	if alias != "" {
		s = s.Rename(alias)
	}
	return &IndexLookup{Table: t, Index: ix, Key: key, sch: s}
}

// NewIndexLookupExprs builds an index lookup whose key is computed at
// Open from constant expressions (literals or bind parameters).
func NewIndexLookupExprs(t *storage.Table, ix *storage.HashIndex, keyExprs []expr.Expr, alias string) *IndexLookup {
	s := t.Schema()
	if alias != "" {
		s = s.Rename(alias)
	}
	return &IndexLookup{Table: t, Index: ix, KeyExprs: keyExprs, sch: s}
}

// Schema implements Operator.
func (l *IndexLookup) Schema() *schema.Schema { return l.sch }

// Open implements Operator.
func (l *IndexLookup) Open(ctx *Context) error {
	if len(l.KeyExprs) > 0 {
		l.KeyExprs = expr.BindParamsList(l.KeyExprs, ctx.Params)
		key := make(value.Row, len(l.KeyExprs))
		for i, e := range l.KeyExprs {
			v, err := e.Eval(nil)
			if err != nil {
				return err
			}
			key[i] = v
		}
		l.Key = key
	}
	ctx.Counter.PageReads++ // index probe
	l.ids = l.Index.Lookup(l.Key)
	ctx.Counter.PageReads += int64(storage.ProbePages(l.ids, l.Table.RowsPerPage()))
	l.pos = 0
	return nil
}

// Next implements Operator.
func (l *IndexLookup) Next(ctx *Context) (value.Row, bool, error) {
	if l.pos >= len(l.ids) {
		return nil, false, nil
	}
	r := l.Table.Row(l.ids[l.pos])
	l.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator. The page reads were charged by the
// probe in Open; emission charges one CPU operation per row, as Next does.
func (l *IndexLookup) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := min(max, len(l.ids)-l.pos)
	if n <= 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		dst.Rows = append(dst.Rows, l.Table.Row(l.ids[l.pos]))
		l.pos++
	}
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (l *IndexLookup) Close(*Context) error { return nil }
