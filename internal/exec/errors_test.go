package exec

import (
	"errors"
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// badPred evaluates arithmetic over a string, which errors at runtime.
func badPred() expr.Expr {
	return expr.NewCmp(expr.GT,
		expr.Arith{Op: expr.Add, L: expr.NewCol(0, "s"), R: expr.Int(1)},
		expr.Int(0))
}

func TestSelectErrorPropagates(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}})
	// Force a type error: compare a NOT over an int.
	pred := expr.Not{Kid: expr.NewCol(0, "a")}
	op := NewSelect(NewTableScan(tb, ""), pred)
	ctx := NewContext()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Next(ctx); err == nil {
		t.Error("evaluation error must propagate through Select")
	}
}

func TestProjectErrorPropagates(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}})
	exprs := []expr.Expr{expr.Arith{Op: expr.Div, L: expr.NewCol(0, "a"), R: expr.Int(0)}}
	op := NewProject(NewTableScan(tb, ""), exprs, tb.Schema())
	ctx := NewContext()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Next(ctx); err == nil {
		t.Error("division by zero must propagate through Project")
	}
}

func TestJoinResidualErrorPropagates(t *testing.T) {
	lt := intTable(t, "l", []string{"k"}, [][]int64{{1}})
	rt := intTable(t, "r", []string{"k"}, [][]int64{{1}})
	// Residual NOT over an int errors.
	res := expr.Not{Kid: expr.NewCol(0, "k")}
	hj := NewHashJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, res)
	ctx := NewContext()
	if err := hj.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := hj.Next(ctx); err == nil {
		t.Error("residual error must propagate through HashJoin")
	}

	nl := NewNestedLoopJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), res)
	if err := nl.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nl.Next(ctx); err == nil {
		t.Error("predicate error must propagate through NestedLoopJoin")
	}
}

func TestGroupByAggErrorPropagates(t *testing.T) {
	s := intTable(t, "t", []string{"g"}, [][]int64{{1}})
	_ = s
	// SUM over a string column errors during Open (build phase).
	strTable := NewValues(
		schemaOf(t),
		[]value.Row{{value.NewString("x")}},
	)
	g := NewGroupBy(strTable, nil, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.NewCol(0, "s"), Name: "s"},
	})
	ctx := NewContext()
	if err := g.Open(ctx); err == nil {
		t.Error("SUM over strings must error at Open")
	}
}

func TestSortChildErrorPropagates(t *testing.T) {
	bad := NewSelect(NewValues(schemaOf(t), []value.Row{{value.NewString("x")}}), badPred())
	s := NewSort(bad, []int{0}, nil)
	ctx := NewContext()
	if err := s.Open(ctx); err == nil {
		t.Error("child error must propagate through Sort's materialization")
	}
}

// schemaOf returns a one-string-column schema for error fixtures.
func schemaOf(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.New(schema.Column{Name: "s", Type: value.KindString})
}

// failingOp errors from Next after emitting its rows, and again from
// Close. It records whether Close ran, so tests can assert both halves
// of the opclose contract: the error path closes the child, and the
// Close error is joined into the returned error instead of dropped.
type failingOp struct {
	sch      *schema.Schema
	rows     []value.Row
	nextErr  error
	closeErr error
	pos      int
	closed   bool
}

func (f *failingOp) Schema() *schema.Schema { return f.sch }

func (f *failingOp) Open(ctx *Context) error {
	f.pos = 0
	f.closed = false
	return nil
}

func (f *failingOp) Next(ctx *Context) (value.Row, bool, error) {
	if f.pos < len(f.rows) {
		f.pos++
		return f.rows[f.pos-1], true, nil
	}
	return nil, false, f.nextErr
}

func (f *failingOp) Close(ctx *Context) error {
	f.closed = true
	return f.closeErr
}

var (
	errNext  = errors.New("next exploded")
	errClose = errors.New("close exploded")
)

func newFailingOp(t *testing.T) *failingOp {
	t.Helper()
	return &failingOp{
		sch:      schema.New(schema.Column{Name: "g", Type: value.KindInt}),
		rows:     []value.Row{{value.NewInt(1)}},
		nextErr:  errNext,
		closeErr: errClose,
	}
}

// checkJoined asserts the error path closed the child and surfaced
// both the Next error and the Close error.
func checkJoined(t *testing.T, what string, f *failingOp, err error) {
	t.Helper()
	if !f.closed {
		t.Errorf("%s: error path did not Close the child", what)
	}
	if !errors.Is(err, errNext) {
		t.Errorf("%s: Next error lost: %v", what, err)
	}
	if !errors.Is(err, errClose) {
		t.Errorf("%s: Close error dropped: %v", what, err)
	}
}

func TestDrainJoinsCloseError(t *testing.T) {
	f := newFailingOp(t)
	_, err := Drain(NewContext(), f)
	checkJoined(t, "Drain", f, err)
}

func TestCountJoinsCloseError(t *testing.T) {
	f := newFailingOp(t)
	_, err := Count(NewContext(), f)
	checkJoined(t, "Count", f, err)
}

func TestGroupByOpenJoinsCloseError(t *testing.T) {
	f := newFailingOp(t)
	g := NewGroupBy(f, []int{0}, nil)
	err := g.Open(NewContext())
	checkJoined(t, "GroupBy.Open", f, err)
}

func TestGroupByAggEvalJoinsCloseError(t *testing.T) {
	// The aggregate argument errors during the build loop; the child's
	// Close error must still surface alongside it.
	f := &failingOp{
		sch:      schemaOf(t),
		rows:     []value.Row{{value.NewString("x")}},
		nextErr:  nil, // never reached: Eval fails on the first row
		closeErr: errClose,
	}
	g := NewGroupBy(f, nil, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.NewCol(0, "s"), Name: "s"},
	})
	err := g.Open(NewContext())
	if !f.closed {
		t.Error("GroupBy.Open: eval error path did not Close the child")
	}
	if !errors.Is(err, errClose) {
		t.Errorf("GroupBy.Open: Close error dropped: %v", err)
	}
	if err == nil {
		t.Error("GroupBy.Open: SUM over strings must error")
	}
}

func TestTopNOpenJoinsCloseError(t *testing.T) {
	f := newFailingOp(t)
	top := NewTopN(f, 1, []int{0}, nil)
	err := top.Open(NewContext())
	checkJoined(t, "TopN.Open", f, err)
}

func TestBuildKeySetJoinsCloseError(t *testing.T) {
	f := newFailingOp(t)
	_, err := BuildKeySet(NewContext(), f, []int{0})
	checkJoined(t, "BuildKeySet", f, err)
}
