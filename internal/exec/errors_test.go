package exec

import (
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// badPred evaluates arithmetic over a string, which errors at runtime.
func badPred() expr.Expr {
	return expr.NewCmp(expr.GT,
		expr.Arith{Op: expr.Add, L: expr.NewCol(0, "s"), R: expr.Int(1)},
		expr.Int(0))
}

func TestSelectErrorPropagates(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}})
	// Force a type error: compare a NOT over an int.
	pred := expr.Not{Kid: expr.NewCol(0, "a")}
	op := NewSelect(NewTableScan(tb, ""), pred)
	ctx := NewContext()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Next(ctx); err == nil {
		t.Error("evaluation error must propagate through Select")
	}
}

func TestProjectErrorPropagates(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}})
	exprs := []expr.Expr{expr.Arith{Op: expr.Div, L: expr.NewCol(0, "a"), R: expr.Int(0)}}
	op := NewProject(NewTableScan(tb, ""), exprs, tb.Schema())
	ctx := NewContext()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Next(ctx); err == nil {
		t.Error("division by zero must propagate through Project")
	}
}

func TestJoinResidualErrorPropagates(t *testing.T) {
	lt := intTable(t, "l", []string{"k"}, [][]int64{{1}})
	rt := intTable(t, "r", []string{"k"}, [][]int64{{1}})
	// Residual NOT over an int errors.
	res := expr.Not{Kid: expr.NewCol(0, "k")}
	hj := NewHashJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, res)
	ctx := NewContext()
	if err := hj.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := hj.Next(ctx); err == nil {
		t.Error("residual error must propagate through HashJoin")
	}

	nl := NewNestedLoopJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), res)
	if err := nl.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nl.Next(ctx); err == nil {
		t.Error("predicate error must propagate through NestedLoopJoin")
	}
}

func TestGroupByAggErrorPropagates(t *testing.T) {
	s := intTable(t, "t", []string{"g"}, [][]int64{{1}})
	_ = s
	// SUM over a string column errors during Open (build phase).
	strTable := NewValues(
		schemaOf(t),
		[]value.Row{{value.NewString("x")}},
	)
	g := NewGroupBy(strTable, nil, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.NewCol(0, "s"), Name: "s"},
	})
	ctx := NewContext()
	if err := g.Open(ctx); err == nil {
		t.Error("SUM over strings must error at Open")
	}
}

func TestSortChildErrorPropagates(t *testing.T) {
	bad := NewSelect(NewValues(schemaOf(t), []value.Row{{value.NewString("x")}}), badPred())
	s := NewSort(bad, []int{0}, nil)
	ctx := NewContext()
	if err := s.Open(ctx); err == nil {
		t.Error("child error must propagate through Sort's materialization")
	}
}

// schemaOf returns a one-string-column schema for error fixtures.
func schemaOf(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.New(schema.Column{Name: "s", Type: value.KindString})
}
