package exec

import (
	"container/heap"
	"errors"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// TopN keeps the N smallest rows under the sort keys (with Desc flags,
// "smallest" means first in the requested order) using a bounded heap —
// the standard Sort+Limit fusion. It charges one CPU operation per input
// row plus log₂N per heap displacement, which for small N is far cheaper
// than sorting the whole input.
type TopN struct {
	Child Operator
	N     int
	Keys  []int
	Desc  []bool

	rows []value.Row
	pos  int
}

// NewTopN builds a top-N operator.
func NewTopN(child Operator, n int, keys []int, desc []bool) *TopN {
	return &TopN{Child: child, N: n, Keys: keys, Desc: desc}
}

// Schema implements Operator.
func (t *TopN) Schema() *schema.Schema { return t.Child.Schema() }

// topHeap is a max-heap of the current N best rows: the root is the
// WORST of the kept rows, so a better incoming row displaces it.
type topHeap struct {
	rows []value.Row
	keys []int
	desc []bool
}

func (h *topHeap) Len() int { return len(h.rows) }
func (h *topHeap) Less(i, j int) bool {
	// Max-heap: "greater in requested order" floats to the root.
	return value.CompareRows(h.rows[i], h.rows[j], h.keys, h.desc) > 0
}
func (h *topHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topHeap) Push(x any)    { h.rows = append(h.rows, x.(value.Row)) }
func (h *topHeap) Pop() any {
	n := len(h.rows)
	r := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return r
}

// Open implements Operator: it drains the child through the bounded heap
// and sorts the survivors.
func (t *TopN) Open(ctx *Context) error {
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	h := &topHeap{keys: t.Keys, desc: t.Desc}
	lgN := int64(0)
	for v := t.N; v > 1; v >>= 1 {
		lgN++
	}
	err := forEachInput(ctx, t.Child, func(r value.Row) error {
		ctx.Counter.CPUTuples++
		if h.Len() < t.N {
			heap.Push(h, r)
			ctx.Counter.CPUTuples += lgN
			return nil
		}
		// Replace the current worst if r sorts before it.
		if value.CompareRows(r, h.rows[0], t.Keys, t.Desc) < 0 {
			h.rows[0] = r
			heap.Fix(h, 0)
			ctx.Counter.CPUTuples += lgN
		}
		return nil
	})
	if err != nil {
		return errors.Join(err, t.Child.Close(ctx))
	}
	if err := t.Child.Close(ctx); err != nil {
		return err
	}
	// Pop in reverse: the heap yields worst-first.
	out := make([]value.Row, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(value.Row)
	}
	t.rows = out
	t.pos = 0
	return nil
}

// Next implements Operator.
func (t *TopN) Next(ctx *Context) (value.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	r := t.rows[t.pos]
	t.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the surviving rows a morsel
// at a time, charging one CPU operation per emitted row as Next does.
func (t *TopN) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := min(max, len(t.rows)-t.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, t.rows[t.pos:t.pos+n]...)
	t.pos += n
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (t *TopN) Close(*Context) error {
	t.rows = nil
	return nil
}
