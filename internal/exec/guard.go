package exec

import (
	"fmt"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// ReplanError aborts an execution whose cardinality estimates turned out
// wrong enough to gamble on a better plan: a CardGuard at a
// materialization point observed Rows input rows against an estimate of
// Est. The serving layer catches it, charges one Replans unit, and
// re-optimizes the remainder of the query with the observed cardinality
// (DESIGN.md §15); every other caller sees an ordinary execution error.
type ReplanError struct {
	Where string  // materialization point, e.g. "HashJoin build"
	Est   float64 // planned input cardinality
	Rows  int64   // rows observed when the guard fired
	Tag   any     // the guarded input's *plan.Node, when known
}

// Error implements error.
func (e *ReplanError) Error() string {
	return fmt.Sprintf("exec: %s input exceeded estimate %.0f by the replan ratio (%d rows seen)",
		e.Where, e.Est, e.Rows)
}

// CardGuard wraps the input of a materialization point (hash-join build,
// hash aggregation, sort, key-set build) and counts the rows flowing
// into it. When the execution context arms replanning (ReplanRatio > 0)
// and the count exceeds the planned estimate by that ratio, the guard
// aborts the pull with a *ReplanError instead of letting the
// materialization absorb an input the optimizer never costed. The guard
// itself does no row work and charges nothing: with replanning disarmed
// it is an invisible pass-through, so rows, order, and counter totals
// are bit-identical to an unguarded plan on both engines.
type CardGuard struct {
	Child Operator
	Est   float64 // planned input cardinality (clamped to >= 1 when checking)
	Where string  // materialization point label for the ReplanError
	Tag   any     // the guarded input's plan node, threaded into the error

	n int64 // rows seen since Open
}

// NewCardGuard wraps child with a cardinality guard.
func NewCardGuard(child Operator, est float64, where string, tag any) *CardGuard {
	return &CardGuard{Child: child, Est: est, Where: where, Tag: tag}
}

// Schema implements Operator.
func (g *CardGuard) Schema() *schema.Schema { return g.Child.Schema() }

// Open implements Operator.
func (g *CardGuard) Open(ctx *Context) error {
	g.n = 0
	return g.Child.Open(ctx)
}

// Next implements Operator.
func (g *CardGuard) Next(ctx *Context) (row value.Row, ok bool, err error) {
	row, ok, err = g.Child.Next(ctx)
	if err != nil || !ok {
		return row, ok, err
	}
	g.n++
	if err := g.check(ctx); err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// NextBatch implements BatchOperator: the guard checks once per morsel,
// so the batch engine pays one comparison per batch rather than per row.
func (g *CardGuard) NextBatch(ctx *Context, b *Batch, max int) error {
	before := b.Len()
	if err := FillBatch(ctx, g.Child, b, max); err != nil {
		return err
	}
	g.n += int64(b.Len() - before)
	return g.check(ctx)
}

// Close implements Operator.
func (g *CardGuard) Close(ctx *Context) error { return g.Child.Close(ctx) }

// check applies the misestimate rule shared with EXPLAIN ANALYZE's flag:
// both sides clamped to >= 1, fire when the observed count exceeds the
// estimate by the context's replan ratio.
func (g *CardGuard) check(ctx *Context) error {
	if ctx.ReplanRatio <= 0 {
		return nil
	}
	est := g.Est
	if est < 1 {
		est = 1
	}
	if float64(g.n) >= est*ctx.ReplanRatio {
		return &ReplanError{Where: g.Where, Est: g.Est, Rows: g.n, Tag: g.Tag}
	}
	return nil
}
