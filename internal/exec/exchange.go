// Intra-query parallelism in the style of Volcano's exchange operator
// (Graefe): parallelism is encapsulated in a small operator family —
// ParallelScan, Partition, Gather — so existing operators stay oblivious
// to threads. Two invariants hold by construction:
//
//   - Cost parity: workers charge exactly the per-page and per-row units
//     their serial counterparts charge, against a private worker Context;
//     partitioning, channel traffic, and merging charge nothing
//     (coordination is cost-free by convention). Merged totals are
//     therefore identical to a serial run of the same plan.
//   - Conservation: every worker counter is absorbed into the parent
//     context before the spawning operator's Open returns, inside that
//     operator's instrumentation bracket, so per-operator Self deltas
//     still sum exactly to the root counter.
//
// Worker pipelines run raw (non-instrumented) operators only: the
// Instrumented shim's parent/child stack is single-threaded state.
package exec

import (
	"errors"
	"sync"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// NewWorkerContext returns the private context a parallel worker charges
// against. Worker contexts carry no instrumentation state; their counter
// is folded into the parent with Absorb. The parent's cancellation
// context is inherited so a cancelled query stops its workers mid-morsel
// instead of leaking them until they drain their partitions.
func NewWorkerContext(parent *Context) *Context {
	w := NewContext()
	if parent != nil {
		w.Caller = parent.Caller
		w.Kernels = parent.Kernels
	}
	return w
}

// Absorb merges a worker context's counter into ctx. Spawning operators
// must call it for every worker before their Open (or Close) returns, so
// cost conservation holds at the moment execution finishes.
func (ctx *Context) Absorb(w *Context) { ctx.Counter.Add(*w.Counter) }

// clampDOP normalizes a degree-of-parallelism knob to at least 1.
func clampDOP(dop int) int {
	if dop < 1 {
		return 1
	}
	return dop
}

// partitionOf routes a row to one of dop partitions by hashing the key
// columns. The hash is deterministic (FNV over canonical values), so the
// assignment is stable across runs and GOMAXPROCS settings.
func partitionOf(r value.Row, keys []int, dop int) int {
	if dop <= 1 {
		return 0
	}
	return int(r.HashKey(keys) % uint64(dop))
}

// partitionRows splits rows into dop hash partitions by the key columns,
// preserving input order within each partition. Routing charges nothing.
func partitionRows(rows []value.Row, keys []int, dop int) [][]value.Row {
	parts := make([][]value.Row, dop)
	for _, r := range rows {
		p := partitionOf(r, keys, dop)
		parts[p] = append(parts[p], r)
	}
	return parts
}

// ParallelScan is a full table scan split into page-aligned morsels, one
// contiguous page range per worker. Each worker charges its private
// counter exactly as a serial TableScan would — one page read per page
// crossed, one CPU operation per row, plus one CPU operation per row for
// the optional pushed-down predicate (mirroring Select) — and buffers the
// surviving rows. Because morsels are contiguous and concatenated in
// range order, the output row sequence is identical to the serial
// TableScan(+Select) and the page-read total replicates exactly.
type ParallelScan struct {
	Table *storage.Table
	Pred  expr.Expr // optional pushed-down local predicate; may be nil
	DOP   int
	alias *schema.Schema
	rows  []value.Row
	pos   int
}

// NewParallelScan builds a morsel-parallel scan with dop workers. If
// alias is non-empty the output schema is re-qualified with it. pred,
// when non-nil, is evaluated by the scan workers (the parallel form of
// TableScan feeding Select).
func NewParallelScan(t *storage.Table, alias string, dop int, pred expr.Expr) *ParallelScan {
	s := t.Schema()
	if alias != "" {
		s = s.Rename(alias)
	}
	return &ParallelScan{Table: t, Pred: pred, DOP: clampDOP(dop), alias: s}
}

// Schema implements Operator.
func (s *ParallelScan) Schema() *schema.Schema { return s.alias }

// morselRange is one worker's contiguous [lo, hi) row range, page-aligned
// so the per-page read charge lands exactly where the serial scan's does.
type morselRange struct{ lo, hi int }

// morselRanges splits the table's pages across dop contiguous ranges.
func morselRanges(numRows, rowsPerPage, dop int) []morselRange {
	numPages := storage.PagesFor(numRows, rowsPerPage)
	if numPages < dop {
		dop = numPages
	}
	var out []morselRange
	for w := 0; w < dop; w++ {
		loPage := w * numPages / dop
		hiPage := (w + 1) * numPages / dop
		lo, hi := loPage*rowsPerPage, hiPage*rowsPerPage
		if hi > numRows {
			hi = numRows
		}
		if lo < hi {
			out = append(out, morselRange{lo: lo, hi: hi})
		}
	}
	return out
}

// scanMorsel runs one worker's share of the scan against its private
// context, charging exactly the serial TableScan(+Select) units —
// accumulated locally and flushed once per morsel, including ahead of a
// predicate error (the failing row's charges are already accrued,
// mirroring the serial charge-then-evaluate order).
func (s *ParallelScan) scanMorsel(wctx *Context, m morselRange) ([]value.Row, error) {
	var pages, cpu int64
	defer func() {
		wctx.Counter.PageReads += pages
		wctx.Counter.CPUTuples += cpu
	}()
	rpp := s.Table.RowsPerPage()
	var out []value.Row
	for pos := m.lo; pos < m.hi; pos++ {
		if pos%rpp == 0 {
			pages++
			// Poll at page granularity: cheap, and a cancelled query
			// abandons the morsel at the next page boundary.
			if err := wctx.Err(); err != nil {
				return out, err
			}
		}
		r := s.Table.Row(pos)
		cpu++
		if s.Pred != nil {
			cpu++
			keep, err := expr.EvalBool(s.Pred, r)
			if err != nil {
				return out, err
			}
			if !keep {
				continue
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Open implements Operator: it fans the morsels out to DOP workers,
// waits, absorbs every worker counter in morsel order, and concatenates
// the buffered outputs in morsel order.
func (s *ParallelScan) Open(ctx *Context) error {
	s.Pred = expr.BindParams(s.Pred, ctx.Params) // before worker fan-out
	s.rows = nil
	s.pos = 0
	ranges := morselRanges(s.Table.NumRows(), s.Table.RowsPerPage(), s.DOP)
	if len(ranges) == 0 {
		return nil
	}
	wctxs := make([]*Context, len(ranges))
	outs := make([][]value.Row, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, m := range ranges {
		wctxs[i] = NewWorkerContext(ctx)
		wg.Add(1)
		go func(i int, m morselRange) {
			defer wg.Done()
			outs[i], errs[i] = s.scanMorsel(wctxs[i], m)
		}(i, m)
	}
	wg.Wait()
	var err error
	for i := range ranges {
		ctx.Absorb(wctxs[i])
		err = errors.Join(err, errs[i])
		s.rows = append(s.rows, outs[i]...)
	}
	if err != nil {
		s.rows = nil
		return err
	}
	return nil
}

// Next implements Operator. All charging happened in Open's parallel
// phase; emitting the buffered rows is coordination and charges nothing.
func (s *ParallelScan) Next(*Context) (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the buffered rows a morsel at
// a time. Like Next, emission is coordination and charges nothing.
func (s *ParallelScan) NextBatch(_ *Context, dst *Batch, max int) error {
	n := min(max, len(s.rows)-s.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, s.rows[s.pos:s.pos+n]...)
	s.pos += n
	return nil
}

// Close implements Operator.
func (s *ParallelScan) Close(*Context) error {
	s.rows = nil
	return nil
}

// WorkerBuild constructs one worker's pipeline over its partition input.
// The input operator is raw (never instrumented) and charges nothing for
// re-emitting rows the upstream child already paid for; the pipeline's
// own operators charge the worker context exactly as they would serially.
type WorkerBuild func(part int, in Operator) Operator

// Partition hash-partitions its child's rows across DOP worker
// goroutines by the key columns. It is the fan-out half of the exchange:
// Gather (either variant) drives it and merges the worker outputs. The
// child is drained in the calling context, so an instrumented child
// attributes its own work normally; routing rows to partitions charges
// nothing.
type Partition struct {
	Child Operator
	Keys  []int
	DOP   int
}

// NewPartition builds the fan-out half of an exchange over the given key
// columns with dop workers.
func NewPartition(child Operator, keys []int, dop int) *Partition {
	return &Partition{Child: child, Keys: keys, DOP: clampDOP(dop)}
}

// partIn is the raw leaf a worker pipeline pulls from: its partition's
// rows, in child order. It tracks the ordinal (input position in the
// child's full stream) of the row most recently emitted so the
// order-preserving Gather can merge pipeline outputs back into child
// order. Re-emission charges nothing: the child already paid to produce
// these rows.
type partIn struct {
	sch  *schema.Schema
	rows []value.Row
	ords []int
	pos  int
	cur  int
}

func (p *partIn) Schema() *schema.Schema { return p.sch }
func (p *partIn) Open(*Context) error {
	p.pos = 0
	p.cur = -1
	return nil
}
func (p *partIn) Next(*Context) (value.Row, bool, error) {
	if p.pos >= len(p.rows) {
		return nil, false, nil
	}
	r := p.rows[p.pos]
	p.cur = p.ords[p.pos]
	p.pos++
	return r, true, nil
}
func (p *partIn) Close(*Context) error { return nil }

// taggedRow is one worker output row tagged with the ordinal of the
// input row that produced it.
type taggedRow struct {
	ord int
	row value.Row
}

// run drains the child, splits its rows into DOP partitions, runs one
// worker per non-empty partition through g.Build, absorbs every worker
// counter in partition order, and returns the per-partition outputs
// (each tagged with input ordinals, ascending within a partition).
func (g *Gather) run(ctx *Context) ([][]taggedRow, error) {
	p := g.Part
	rows, err := Drain(ctx, p.Child)
	if err != nil {
		return nil, err
	}
	dop := clampDOP(p.DOP)
	partRows := make([][]value.Row, dop)
	partOrds := make([][]int, dop)
	for ord, r := range rows {
		w := partitionOf(r, p.Keys, dop)
		partRows[w] = append(partRows[w], r)
		partOrds[w] = append(partOrds[w], ord)
	}
	sch := p.Child.Schema()
	outs := make([][]taggedRow, dop)
	errs := make([]error, dop)
	wctxs := make([]*Context, dop)
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		if len(partRows[w]) == 0 {
			continue
		}
		wctxs[w] = NewWorkerContext(ctx)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := &partIn{sch: sch, rows: partRows[w], ords: partOrds[w]}
			outs[w], errs[w] = runWorkerPipeline(wctxs[w], w, in, g.Build)
		}(w)
	}
	wg.Wait()
	err = nil
	for w := 0; w < dop; w++ {
		if wctxs[w] != nil {
			ctx.Absorb(wctxs[w])
		}
		err = errors.Join(err, errs[w])
	}
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// runWorkerPipeline executes one worker's pipeline over its partition
// input, tagging each output row with the ordinal of the most recently
// consumed input row (exact for streaming row-wise pipelines, which is
// what the order-preserving merge requires).
func runWorkerPipeline(wctx *Context, part int, in *partIn, build WorkerBuild) ([]taggedRow, error) {
	var op Operator = in
	if build != nil {
		op = build(part, in)
	}
	if err := op.Open(wctx); err != nil {
		return nil, err
	}
	var out []taggedRow
	for {
		if err := wctx.Err(); err != nil {
			return out, errors.Join(err, op.Close(wctx))
		}
		r, ok, err := op.Next(wctx)
		if err != nil {
			return out, errors.Join(err, op.Close(wctx))
		}
		if !ok {
			break
		}
		out = append(out, taggedRow{ord: in.cur, row: r})
	}
	return out, op.Close(wctx)
}

// Gather is the fan-in half of the exchange: it runs its Partition's
// workers on Open and merges their output streams. The plain variant
// concatenates partitions in partition order; the order-preserving
// variant (NewGatherMerge) k-way-merges by input ordinal, reproducing
// the child's row order exactly, so any plan.Ordering the input carried
// survives the exchange. Both variants are deterministic.
type Gather struct {
	Part     *Partition
	Build    WorkerBuild // nil = identity pipeline
	Preserve bool
	out      *schema.Schema
	results  []value.Row
	pos      int
}

// NewGather builds an exchange that merges worker outputs in partition
// order (no order guarantee relative to the input).
func NewGather(p *Partition, build WorkerBuild) *Gather {
	return &Gather{Part: p, Build: build, out: gatherSchema(p, build)}
}

// NewGatherMerge builds the order-preserving exchange: worker outputs
// are merged back into the child's input order, so the input's physical
// ordering survives. Build must be a streaming row-wise pipeline (or
// nil) for the ordinal tags to be exact.
func NewGatherMerge(p *Partition, build WorkerBuild) *Gather {
	return &Gather{Part: p, Build: build, Preserve: true, out: gatherSchema(p, build)}
}

// gatherSchema probes the worker pipeline's output schema with an empty
// partition input.
func gatherSchema(p *Partition, build WorkerBuild) *schema.Schema {
	if build == nil {
		return p.Child.Schema()
	}
	return build(0, &partIn{sch: p.Child.Schema()}).Schema()
}

// Schema implements Operator.
func (g *Gather) Schema() *schema.Schema { return g.out }

// Open implements Operator: it drives the Partition (draining the child,
// running the workers, absorbing their counters) and merges the outputs.
func (g *Gather) Open(ctx *Context) error {
	g.results = nil
	g.pos = 0
	outs, err := g.run(ctx)
	if err != nil {
		return err
	}
	if g.Preserve {
		g.results = mergeByOrdinal(outs)
		return nil
	}
	for _, part := range outs {
		for _, t := range part {
			g.results = append(g.results, t.row)
		}
	}
	return nil
}

// mergeByOrdinal k-way-merges the per-partition outputs by input
// ordinal. Ordinals are ascending within each partition and no ordinal
// appears in two partitions, so the merge is total and deterministic.
func mergeByOrdinal(outs [][]taggedRow) []value.Row {
	n := 0
	for _, part := range outs {
		n += len(part)
	}
	merged := make([]value.Row, 0, n)
	pos := make([]int, len(outs))
	for len(merged) < n {
		best := -1
		for w := range outs {
			if pos[w] >= len(outs[w]) {
				continue
			}
			if best < 0 || outs[w][pos[w]].ord < outs[best][pos[best]].ord {
				best = w
			}
		}
		merged = append(merged, outs[best][pos[best]].row)
		pos[best]++
	}
	return merged
}

// Next implements Operator. The merged rows were produced and charged by
// the worker pipelines; emitting them is coordination and charges
// nothing.
func (g *Gather) Next(*Context) (value.Row, bool, error) {
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	r := g.results[g.pos]
	g.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the merged rows a morsel at a
// time. Like Next, emission is coordination and charges nothing.
func (g *Gather) NextBatch(_ *Context, dst *Batch, max int) error {
	n := min(max, len(g.results)-g.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, g.results[g.pos:g.pos+n]...)
	g.pos += n
	return nil
}

// Close implements Operator.
func (g *Gather) Close(*Context) error {
	g.results = nil
	return nil
}
