package exec

import (
	"errors"
	"filterjoin/internal/bloom"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// KeySet is an exact in-memory filter set: the distinct projection of the
// production set onto the join attributes (the paper's "filter set F",
// classically the "magic set").
type KeySet struct {
	keys  map[string]bool
	rows  []value.Row
	width int

	// Kernel-path backend (DESIGN.md §14): an open-addressing RowTable
	// over canonical byte keys replaces the string map, with keyBuf as
	// the build-time encoding scratch. Membership semantics are
	// identical; only the representation changes. Probes must supply
	// their own scratch (ContainsBuf) when the set is shared.
	useTable bool
	ht       RowTable
	keyBuf   []byte
}

// NewKeySet creates an empty key set for keys of the given width.
func NewKeySet(width int) *KeySet {
	return NewKeySetSized(width, 0)
}

// NewKeySetSized creates an empty key set pre-sized for about hint
// distinct keys (0 = unknown).
func NewKeySetSized(width, hint int) *KeySet {
	return &KeySet{
		keys:  make(map[string]bool, hint),
		rows:  make([]value.Row, 0, hint),
		width: width,
	}
}

// NewKeySetTableSized is NewKeySetSized on the allocation-free RowTable
// backend (the ctx.Kernels path).
func NewKeySetTableSized(width, hint int) *KeySet {
	ks := &KeySet{
		rows:     make([]value.Row, 0, hint),
		width:    width,
		useTable: true,
	}
	ks.ht.Init(hint)
	return ks
}

// BuildKeySet drains op, projecting each row onto keyIdx, and returns the
// distinct key set. One CPU operation is charged per input row.
func BuildKeySet(ctx *Context, op Operator, keyIdx []int) (*KeySet, error) {
	return BuildKeySetSized(ctx, op, keyIdx, 0)
}

// BuildKeySetSized is BuildKeySet with a distinct-key-count hint from the
// optimizer's cardinality estimate (0 = unknown); the hint pre-sizes the
// set's hash table and row buffer and has no effect on the result.
func BuildKeySetSized(ctx *Context, op Operator, keyIdx []int, hint int) (*KeySet, error) {
	var ks *KeySet
	if ctx.Kernels {
		ks = NewKeySetTableSized(len(keyIdx), hint)
	} else {
		ks = NewKeySetSized(len(keyIdx), hint)
	}
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	err := forEachInput(ctx, op, func(r value.Row) error {
		ctx.Counter.CPUTuples++
		ks.Add(r.Project(keyIdx))
		return nil
	})
	if err != nil {
		return nil, errors.Join(err, op.Close(ctx))
	}
	return ks, op.Close(ctx)
}

// Add inserts a key row.
func (s *KeySet) Add(key value.Row) {
	if s.useTable {
		s.keyBuf = key.AppendFullKey(s.keyBuf[:0])
		if _, added := s.ht.Insert(s.keyBuf); added {
			s.rows = append(s.rows, key)
		}
		return
	}
	k := key.FullKey()
	if s.keys[k] {
		return
	}
	s.keys[k] = true
	s.rows = append(s.rows, key)
}

// Contains tests membership of the projection of r onto keyIdx. It is
// safe for concurrent probes (it never touches the set's scratch); hot
// callers holding their own scratch buffer should use ContainsBuf.
func (s *KeySet) Contains(r value.Row, keyIdx []int) bool {
	if s.useTable {
		return s.ht.Lookup(r.AppendKey(nil, keyIdx)) >= 0
	}
	return s.keys[r.Key(keyIdx)]
}

// ContainsBuf is Contains with a caller-supplied encoding scratch so
// per-probe allocation is zero; it returns the (possibly grown) buffer
// for reuse. Each concurrent prober must own its buffer.
func (s *KeySet) ContainsBuf(r value.Row, keyIdx []int, buf []byte) ([]byte, bool) {
	if s.useTable {
		buf = r.AppendKey(buf[:0], keyIdx)
		return buf, s.ht.Lookup(buf) >= 0
	}
	return buf, s.keys[r.Key(keyIdx)]
}

// Len returns the number of distinct keys.
func (s *KeySet) Len() int { return len(s.rows) }

// Rows returns the distinct key rows (do not mutate).
func (s *KeySet) Rows() []value.Row { return s.rows }

// SizeBytes returns the nominal wire size of the set when shipped:
// 8 bytes per key column per key.
func (s *KeySet) SizeBytes() int { return len(s.rows) * s.width * 8 }

// ToBloom converts the exact set into a Bloom filter with the given
// bits-per-entry budget; keyIdx identifies the key columns a probe row
// will be projected on (the filter itself stores only hashes).
func (s *KeySet) ToBloom(bitsPerEntry float64, keyIdx []int) *bloom.Filter {
	f := bloom.New(len(s.rows), bitsPerEntry, keyIdx)
	for _, r := range s.rows {
		f.AddKey(r)
	}
	return f
}

// KeySetFilter passes through child rows whose key columns appear in the
// set. It charges one CPU operation per tested row. This operator is the
// local-processing half of a semi-join: the inner relation restricted by
// the filter set.
type KeySetFilter struct {
	Child  Operator
	Set    *KeySet
	KeyIdx []int
	in     Batch  // batch-mode scratch for child pulls
	buf    []byte // private probe-key scratch (sets may be shared)
}

// NewKeySetFilter builds an exact filter-set restriction.
func NewKeySetFilter(child Operator, set *KeySet, keyIdx []int) *KeySetFilter {
	return &KeySetFilter{Child: child, Set: set, KeyIdx: keyIdx}
}

// Schema implements Operator.
func (f *KeySetFilter) Schema() *schema.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *KeySetFilter) Open(ctx *Context) error {
	f.in.Reset()
	f.buf = f.buf[:0]
	return f.Child.Open(ctx)
}

// Next implements Operator.
func (f *KeySetFilter) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := f.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		var hit bool
		f.buf, hit = f.Set.ContainsBuf(r, f.KeyIdx, f.buf)
		if hit {
			return r, true, nil
		}
	}
}

// NextBatch implements BatchOperator: test each row of a child batch no
// larger than the output budget, charging one CPU operation per tested
// row, accumulated locally and flushed once per batch.
func (f *KeySetFilter) NextBatch(ctx *Context, dst *Batch, max int) error {
	for len(dst.Rows) == 0 {
		f.in.Reset()
		if err := FillBatch(ctx, f.Child, &f.in, max); err != nil {
			return err
		}
		if f.in.Len() == 0 {
			return nil
		}
		var cpu int64
		for _, r := range f.in.Rows {
			cpu++
			var hit bool
			f.buf, hit = f.Set.ContainsBuf(r, f.KeyIdx, f.buf)
			if hit {
				dst.Rows = append(dst.Rows, r)
			}
		}
		ctx.Counter.CPUTuples += cpu
	}
	return nil
}

// Close implements Operator.
func (f *KeySetFilter) Close(ctx *Context) error { return f.Child.Close(ctx) }

// BloomFilterScan passes through child rows that the Bloom filter may
// contain — the lossy filter-set variant. False positives let extra rows
// through; downstream joins remain correct because the final join
// re-checks the join predicate.
type BloomFilterScan struct {
	Child  Operator
	Filter *bloom.Filter
	KeyIdx []int
	in     Batch // batch-mode scratch for child pulls
}

// NewBloomFilterScan builds a lossy filter-set restriction.
func NewBloomFilterScan(child Operator, f *bloom.Filter, keyIdx []int) *BloomFilterScan {
	return &BloomFilterScan{Child: child, Filter: f, KeyIdx: keyIdx}
}

// Schema implements Operator.
func (b *BloomFilterScan) Schema() *schema.Schema { return b.Child.Schema() }

// Open implements Operator.
func (b *BloomFilterScan) Open(ctx *Context) error {
	b.in.Reset()
	return b.Child.Open(ctx)
}

// Next implements Operator.
func (b *BloomFilterScan) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := b.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		if b.Filter.MayContain(r, b.KeyIdx) {
			return r, true, nil
		}
	}
}

// NextBatch implements BatchOperator: probe the filter for each row of a
// child batch no larger than the output budget, charging one CPU
// operation per probed row, accumulated locally and flushed once.
func (b *BloomFilterScan) NextBatch(ctx *Context, dst *Batch, max int) error {
	for len(dst.Rows) == 0 {
		b.in.Reset()
		if err := FillBatch(ctx, b.Child, &b.in, max); err != nil {
			return err
		}
		if b.in.Len() == 0 {
			return nil
		}
		var cpu int64
		for _, r := range b.in.Rows {
			cpu++
			if b.Filter.MayContain(r, b.KeyIdx) {
				dst.Rows = append(dst.Rows, r)
			}
		}
		ctx.Counter.CPUTuples += cpu
	}
	return nil
}

// Close implements Operator.
func (b *BloomFilterScan) Close(ctx *Context) error { return b.Child.Close(ctx) }

// KeySetScan exposes a KeySet as a leaf operator so the filter set can be
// joined into a view body (the magic-rewrite "Filter" view of Fig 2).
type KeySetScan struct {
	Set *KeySet
	Sch *schema.Schema
	pos int
}

// NewKeySetScan builds a scan over the distinct keys with the given schema
// (one column per key attribute).
func NewKeySetScan(set *KeySet, sch *schema.Schema) *KeySetScan {
	return &KeySetScan{Set: set, Sch: sch}
}

// Schema implements Operator.
func (k *KeySetScan) Schema() *schema.Schema { return k.Sch }

// Open implements Operator.
func (k *KeySetScan) Open(*Context) error {
	k.pos = 0
	return nil
}

// Next implements Operator.
func (k *KeySetScan) Next(ctx *Context) (value.Row, bool, error) {
	rows := k.Set.Rows()
	if k.pos >= len(rows) {
		return nil, false, nil
	}
	r := rows[k.pos]
	k.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the distinct keys a morsel at
// a time, charging one CPU operation per emitted row as Next does.
func (k *KeySetScan) NextBatch(ctx *Context, dst *Batch, max int) error {
	rows := k.Set.Rows()
	n := min(max, len(rows)-k.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, rows[k.pos:k.pos+n]...)
	k.pos += n
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (k *KeySetScan) Close(*Context) error { return nil }
