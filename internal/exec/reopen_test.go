package exec

import (
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/value"
)

// pullN opens op, pulls up to n rows, and abandons the stream without
// closing, leaving the operator mid-group / mid-batch.
func pullN(t *testing.T, op Operator, n int) {
	t.Helper()
	ctx := NewContext()
	if err := op.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, ok, err := op.Next(ctx); err != nil {
			t.Fatalf("next: %v", err)
		} else if !ok {
			break
		}
	}
}

// reopenCases are operators whose Next/NextBatch mutate cursor state
// that Open must reset (the sharesafe reset-at-Open contract): a cached
// or re-opened plan must replay from the start, not from wherever the
// previous execution stopped.
func reopenCases(t *testing.T) map[string]func() Operator {
	lrows := [][]int64{{1, 10}, {1, 11}, {2, 20}, {2, 21}, {3, 30}}
	rrows := [][]int64{{1, 100}, {2, 200}, {2, 201}, {3, 300}}
	lt := intTable(t, "l", []string{"k", "v"}, lrows)
	rt := intTable(t, "r", []string{"k", "w"}, rrows)
	return map[string]func() Operator{
		"MergeJoin": func() Operator {
			return NewMergeJoin(NewTableScan(lt, ""), NewTableScan(rt, ""), []int{0}, []int{0}, nil)
		},
		"StreamGroupBy": func() Operator {
			return NewStreamGroupBy(
				NewSort(NewTableScan(lt, ""), []int{0}, nil),
				[]int{0},
				[]expr.AggSpec{{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"}},
			)
		},
		"Select": func() Operator {
			return NewSelect(NewTableScan(lt, ""), expr.NewCmp(expr.GT, expr.NewCol(1, "v"), expr.NewLit(value.NewInt(10))))
		},
		"Distinct": func() Operator { return NewDistinct(NewColumnProject(NewTableScan(lt, ""), []int{0})) },
		"Limit":    func() Operator { return NewLimit(NewTableScan(lt, ""), 3) },
	}
}

// TestReopenAfterPartialConsumption re-opens each operator after an
// abandoned partial run and checks the replay matches a fresh
// execution, rows and counter charges alike, in both engines.
func TestReopenAfterPartialConsumption(t *testing.T) {
	for name, mk := range reopenCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, batch := range []int{1, 4} {
				op := mk()
				ref := NewContext()
				ref.BatchSize = batch
				wantRows, err := Drain(ref, op)
				if err != nil {
					t.Fatalf("reference drain: %v", err)
				}

				op = mk()
				pullN(t, op, 2) // strand the cursor mid-stream
				ctx := NewContext()
				ctx.BatchSize = batch
				gotRows, err := Drain(ctx, op)
				if err != nil {
					t.Fatalf("reopened drain: %v", err)
				}

				if rowsKey(gotRows) != rowsKey(wantRows) {
					t.Errorf("batch=%d: reopened run returned different rows\n got: %v\nwant: %v",
						batch, gotRows, wantRows)
				}
				if *ctx.Counter != *ref.Counter {
					t.Errorf("batch=%d: reopened run charged %+v, fresh run charged %+v",
						batch, *ctx.Counter, *ref.Counter)
				}
			}
		})
	}
}

func rowsKey(rows []value.Row) string {
	var s string
	for _, r := range rows {
		s += r.FullKey() + "|"
	}
	return s
}
