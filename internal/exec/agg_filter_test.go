package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

func TestGroupByAggregates(t *testing.T) {
	tb := intTable(t, "t", []string{"g", "v"}, [][]int64{
		{1, 10}, {1, 20}, {2, 5}, {2, 15}, {2, 40}, {3, 7},
	})
	aggs := []expr.AggSpec{
		{Kind: expr.AggCount, Name: "n"},
		{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"},
		{Kind: expr.AggAvg, Arg: expr.NewCol(1, "v"), Name: "a"},
		{Kind: expr.AggMin, Arg: expr.NewCol(1, "v"), Name: "mn"},
		{Kind: expr.AggMax, Arg: expr.NewCol(1, "v"), Name: "mx"},
	}
	g := NewGroupBy(NewTableScan(tb, ""), []int{0}, aggs)
	rows, _ := drain(t, g)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Output is sorted by group key.
	r2 := rows[1] // group 2
	if r2[0].Int() != 2 || r2[1].Int() != 3 || r2[2].Int() != 60 ||
		r2[3].Float() != 20 || r2[4].Int() != 5 || r2[5].Int() != 40 {
		t.Errorf("group 2 = %v", r2)
	}
	if g.Schema().Len() != 6 {
		t.Errorf("output schema width = %d", g.Schema().Len())
	}
}

func TestGroupByScalarOverEmptyInput(t *testing.T) {
	tb := intTable(t, "t", []string{"v"}, nil)
	g := NewGroupBy(NewTableScan(tb, ""), nil, []expr.AggSpec{
		{Kind: expr.AggCount, Name: "n"},
		{Kind: expr.AggSum, Arg: expr.NewCol(0, "v"), Name: "s"},
	})
	rows, _ := drain(t, g)
	if len(rows) != 1 {
		t.Fatalf("scalar aggregation must yield one row, got %d", len(rows))
	}
	if rows[0][0].Int() != 0 {
		t.Error("COUNT over empty input is 0")
	}
	if !rows[0][1].IsNull() {
		t.Error("SUM over empty input is NULL")
	}
}

func TestGroupByMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(8)), int64(rng.Intn(50))}
		}
		tb := intTable(t, "t", []string{"g", "v"}, rows)
		g := NewGroupBy(NewTableScan(tb, ""), []int{0}, []expr.AggSpec{
			{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"},
			{Kind: expr.AggCount, Name: "n"},
		})
		got, _ := drain(t, g)

		sums := map[int64]int64{}
		counts := map[int64]int64{}
		for _, r := range rows {
			sums[r[0]] += r[1]
			counts[r[0]]++
		}
		if len(got) != len(sums) {
			return false
		}
		for _, r := range got {
			k := r[0].Int()
			if r[1].Int() != sums[k] || r[2].Int() != counts[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKeySetBuildAndFilter(t *testing.T) {
	outer := intTable(t, "o", []string{"k", "x"}, [][]int64{{1, 0}, {2, 0}, {1, 0}, {4, 0}})
	ctx := NewContext()
	ks, err := BuildKeySet(ctx, NewTableScan(outer, ""), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ks.Len() != 3 {
		t.Fatalf("distinct keys = %d, want 3", ks.Len())
	}
	if ks.SizeBytes() != 3*8 {
		t.Errorf("SizeBytes = %d", ks.SizeBytes())
	}
	inner := intTable(t, "i", []string{"k", "v"}, [][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}})
	rows, _ := drain(t, NewKeySetFilter(NewTableScan(inner, ""), ks, []int{0}))
	if len(rows) != 3 {
		t.Errorf("filtered rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if k := r[0].Int(); k != 1 && k != 2 && k != 4 {
			t.Errorf("unexpected key %d", k)
		}
	}
}

func TestKeySetContainsCrossWidthProbe(t *testing.T) {
	ks := NewKeySet(1)
	ks.Add(value.Row{value.NewInt(7)})
	probe := value.Row{value.NewInt(0), value.NewInt(7)}
	if !ks.Contains(probe, []int{1}) {
		t.Error("Contains must project the probe row onto the key columns")
	}
	if ks.Contains(probe, []int{0}) {
		t.Error("wrong column must miss")
	}
}

func TestBloomFilterScanSuperset(t *testing.T) {
	ks := NewKeySet(1)
	for i := 0; i < 50; i++ {
		ks.Add(value.Row{value.NewInt(int64(i * 2))}) // even keys
	}
	bf := ks.ToBloom(10, []int{0})
	rows := make([][]int64, 400)
	for i := range rows {
		rows[i] = []int64{int64(i % 200), 0}
	}
	tb := intTable(t, "t", []string{"k", "v"}, rows)
	got, _ := drain(t, NewBloomFilterScan(NewTableScan(tb, ""), bf, []int{0}))
	// Every true member must pass (no false negatives).
	passed := map[int64]bool{}
	for _, r := range got {
		passed[r[0].Int()] = true
	}
	for i := 0; i < 100; i += 2 {
		if !passed[int64(i)] {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestKeySetScan(t *testing.T) {
	ks := NewKeySet(1)
	ks.Add(value.Row{value.NewInt(3)})
	ks.Add(value.Row{value.NewInt(9)})
	sch := schema.New(schema.Column{Name: "k0", Type: value.KindInt})
	s := NewKeySetScan(ks, sch)
	rows, c := drain(t, s)
	if len(rows) != 2 || c.CPUTuples != 2 {
		t.Errorf("keyset scan: %d rows", len(rows))
	}
	if s.Schema() != sch {
		t.Error("schema passthrough")
	}
}
