package exec

import (
	"math/rand"
	"sort"
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/value"
)

// sortedIntRows builds rows from vals sorted ascending on column 0.
func sortedIntRows(vals [][]int64) []value.Row {
	sort.Slice(vals, func(a, b int) bool { return vals[a][0] < vals[b][0] })
	rows := make([]value.Row, len(vals))
	for i, v := range vals {
		rows[i] = intRows(v)[0]
	}
	return rows
}

func TestStreamGroupByMatchesHashOnSortedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50)
		vals := make([][]int64, n)
		for i := range vals {
			vals[i] = []int64{int64(rng.Intn(8)), int64(rng.Intn(100))}
		}
		rows := sortedIntRows(vals)
		s := intSchema("t", "g", "v")
		aggs := []expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"},
			{Kind: expr.AggMin, Arg: expr.NewCol(1, "v"), Name: "mn"},
			{Kind: expr.AggMax, Arg: expr.NewCol(1, "v"), Name: "mx"},
		}
		want, _ := drain(t, NewGroupBy(NewValues(s, rows), []int{0}, aggs))
		got, _ := drain(t, NewStreamGroupBy(NewValues(s, rows), []int{0}, aggs))
		if len(got) != len(want) {
			t.Fatalf("trial %d: stream emitted %d groups, hash %d", trial, len(got), len(want))
		}
		// Hash group-by emits sorted by serialized key; stream emits in
		// input order, which on sorted input is also key order.
		for i := range want {
			if want[i].String() != got[i].String() {
				t.Fatalf("trial %d group %d: stream %v, hash %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestStreamGroupByEmptyInput(t *testing.T) {
	s := intSchema("t", "g", "v")
	aggs := []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}}
	rows, _ := drain(t, NewStreamGroupBy(NewValues(s, nil), []int{0}, aggs))
	if len(rows) != 0 {
		t.Errorf("grouped aggregation over empty input must emit nothing, got %d", len(rows))
	}
	// Scalar aggregation (no grouping columns) still emits one row.
	scalar, _ := drain(t, NewStreamGroupBy(NewValues(s, nil), nil, []expr.AggSpec{
		{Kind: expr.AggCount, Name: "n"},
		{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"},
	}))
	if len(scalar) != 1 || scalar[0][0].Int() != 0 || !scalar[0][1].IsNull() {
		t.Errorf("scalar aggregation over empty input = %v", scalar)
	}
}

func TestStreamGroupBySchemaMatchesHash(t *testing.T) {
	s := intSchema("t", "g", "v")
	aggs := []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.NewCol(1, "v"), Name: "s"}}
	h := NewGroupBy(NewValues(s, nil), []int{0}, aggs)
	st := NewStreamGroupBy(NewValues(s, nil), []int{0}, aggs)
	if h.Schema().String() != st.Schema().String() {
		t.Errorf("schemas differ: hash %s, stream %s", h.Schema(), st.Schema())
	}
}

func TestMergeJoinPresortedSkipsSortCost(t *testing.T) {
	mk := func() ([]value.Row, []value.Row) {
		rng := rand.New(rand.NewSource(7))
		var l, r [][]int64
		for i := 0; i < 200; i++ {
			l = append(l, []int64{int64(rng.Intn(20)), int64(i)})
		}
		for i := 0; i < 100; i++ {
			r = append(r, []int64{int64(rng.Intn(20)), int64(i * 3)})
		}
		return sortedIntRows(l), sortedIntRows(r)
	}
	ls, rs := mk()
	lsch, rsch := intSchema("l", "k", "a"), intSchema("r", "k", "b")

	plain := NewMergeJoin(NewValues(lsch, ls), NewValues(rsch, rs), []int{0}, []int{0}, nil)
	wantRows, plainCost := drain(t, plain)

	pre := NewMergeJoinPresorted(NewValues(lsch, ls), NewValues(rsch, rs), []int{0}, []int{0}, nil, true, true)
	gotRows, preCost := drain(t, pre)

	if len(gotRows) != len(wantRows) {
		t.Fatalf("presorted join rows = %d, plain = %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if wantRows[i].String() != gotRows[i].String() {
			t.Fatalf("row %d: presorted %v, plain %v", i, gotRows[i], wantRows[i])
		}
	}
	if preCost.CPUTuples >= plainCost.CPUTuples {
		t.Errorf("presorted merge join must charge less CPU: presorted=%d plain=%d",
			preCost.CPUTuples, plainCost.CPUTuples)
	}
}
