package exec

import (
	"sort"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Select filters child rows by a predicate, charging one CPU operation
// per evaluated row.
type Select struct {
	Child Operator
	Pred  expr.Expr
	in    Batch      // batch-mode scratch for child pulls
	kern  *expr.Pred // compiled predicate (ctx.Kernels batch path)
	useK  bool
}

// NewSelect builds a selection.
func NewSelect(child Operator, pred expr.Expr) *Select {
	return &Select{Child: child, Pred: pred}
}

// Schema implements Operator.
func (s *Select) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Select) Open(ctx *Context) error {
	s.useK = ctx.Kernels && s.Pred != nil
	if s.useK && s.kern == nil {
		// Compile once, before BindParams rewrites Param slots to
		// literals; Bind refreshes the bindings on every re-Open.
		s.kern = expr.CompilePred(s.Pred)
	}
	if s.kern != nil {
		s.kern.Bind(ctx.Params)
	}
	s.Pred = expr.BindParams(s.Pred, ctx.Params)
	s.in.Reset()
	return s.Child.Open(ctx)
}

// Next implements Operator.
func (s *Select) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := s.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		var keep bool
		if s.useK {
			keep, err = s.kern.EvalRow(r)
		} else {
			keep, err = expr.EvalBool(s.Pred, r)
		}
		if err != nil {
			return nil, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// NextBatch implements BatchOperator: pull child batches no larger than
// the output budget and keep the qualifying rows, charging one CPU
// operation per evaluated row, accumulated locally and flushed once per
// batch (and before an evaluation error propagates, mirroring the row
// form's charge-then-evaluate order). With kernels enabled the whole
// batch goes through the compiled predicate's selection vector; the
// kernel reports how many rows the row loop would have evaluated, so
// the charge — including a failing row's — is identical.
func (s *Select) NextBatch(ctx *Context, dst *Batch, max int) error {
	var cpu int64
	defer func() { ctx.Counter.CPUTuples += cpu }()
	for len(dst.Rows) == 0 {
		s.in.Reset()
		if err := FillBatch(ctx, s.Child, &s.in, max); err != nil {
			return err
		}
		if s.in.Len() == 0 {
			return nil
		}
		if s.useK {
			sel, evaluated, err := s.kern.SelectBatch(s.in.Rows)
			cpu += int64(evaluated)
			if err != nil {
				return err
			}
			for _, ri := range sel {
				dst.Rows = append(dst.Rows, s.in.Rows[ri])
			}
			continue
		}
		for _, r := range s.in.Rows {
			cpu++
			keep, err := expr.EvalBool(s.Pred, r)
			if err != nil {
				return err
			}
			if keep {
				dst.Rows = append(dst.Rows, r)
			}
		}
	}
	return nil
}

// Close implements Operator.
func (s *Select) Close(ctx *Context) error { return s.Child.Close(ctx) }

// Project computes output expressions over each child row.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	Out   *schema.Schema
	in    Batch // batch-mode scratch for child pulls

	// Kernel-path state (ctx.Kernels): output rows are carved from an
	// arena instead of allocated per row, and an all-column projection
	// precomputes its index list so evaluation is a pair of copies.
	useK   bool
	colIdx []int
	arena  value.RowArena
}

// NewProject builds a projection with an explicit output schema.
func NewProject(child Operator, exprs []expr.Expr, out *schema.Schema) *Project {
	return &Project{Child: child, Exprs: exprs, Out: out}
}

// NewColumnProject projects the child onto the given column indexes.
func NewColumnProject(child Operator, idx []int) *Project {
	in := child.Schema()
	exprs := make([]expr.Expr, len(idx))
	for i, j := range idx {
		exprs[i] = expr.NewCol(j, in.Col(j).QualifiedName())
	}
	return &Project{Child: child, Exprs: exprs, Out: in.Project(idx)}
}

// Schema implements Operator.
func (p *Project) Schema() *schema.Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open(ctx *Context) error {
	p.Exprs = expr.BindParamsList(p.Exprs, ctx.Params)
	p.useK = ctx.Kernels
	if p.useK && p.colIdx == nil {
		idx := make([]int, len(p.Exprs))
		for i, e := range p.Exprs {
			c, ok := e.(expr.Col)
			if !ok {
				idx = nil
				break
			}
			idx[i] = c.Idx
		}
		p.colIdx = idx
	}
	p.in.Reset()
	return p.Child.Open(ctx)
}

// evalRow computes one output row, arena-backed on the kernel path. The
// all-column shape copies values directly; Col.Eval's range check is
// preserved verbatim.
func (p *Project) evalRow(r value.Row) (value.Row, error) {
	if p.useK && p.colIdx != nil {
		inRange := true
		for _, j := range p.colIdx {
			if j < 0 || j >= len(r) {
				inRange = false // fall through: Col.Eval produces the exact error
				break
			}
		}
		if inRange {
			return p.arena.Project(r, p.colIdx), nil
		}
	}
	var out value.Row
	if p.useK {
		out = p.arena.Make(len(p.Exprs))
	} else {
		out = make(value.Row, len(p.Exprs))
	}
	for i, e := range p.Exprs {
		v, err := e.Eval(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Next implements Operator.
func (p *Project) Next(ctx *Context) (value.Row, bool, error) {
	r, ok, err := p.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Counter.CPUTuples++
	out, err := p.evalRow(r)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// NextBatch implements BatchOperator: one output row per input row, so
// one child pull fills the whole output batch.
func (p *Project) NextBatch(ctx *Context, dst *Batch, max int) error {
	p.in.Reset()
	if err := FillBatch(ctx, p.Child, &p.in, max); err != nil {
		return err
	}
	var cpu int64
	defer func() { ctx.Counter.CPUTuples += cpu }()
	for _, r := range p.in.Rows {
		cpu++
		out, err := p.evalRow(r)
		if err != nil {
			return err
		}
		dst.Rows = append(dst.Rows, out)
	}
	return nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Context) error { return p.Child.Close(ctx) }

// Distinct removes duplicate rows with a hash set, charging one CPU
// operation per input row. This is the operator behind ProjCost_F: the
// distinct projection that produces the filter set.
type Distinct struct {
	Child Operator
	seen  map[string]bool
	in    Batch // batch-mode scratch for child pulls

	// Kernel-path state (ctx.Kernels): the seen-set is a RowTable over
	// byte-encoded full keys with one reused scratch buffer, so the
	// steady state allocates only when a new distinct key is retained.
	useTable bool
	ht       RowTable
	keyBuf   []byte
}

// NewDistinct builds a hash-based duplicate eliminator.
func NewDistinct(child Operator) *Distinct { return &Distinct{Child: child} }

// Schema implements Operator.
func (d *Distinct) Schema() *schema.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(ctx *Context) error {
	d.useTable = ctx.Kernels
	if d.useTable {
		d.seen = nil
		d.ht.Init(0)
	} else {
		d.seen = map[string]bool{}
	}
	d.keyBuf = d.keyBuf[:0]
	d.in.Reset()
	return d.Child.Open(ctx)
}

// firstSeen reports whether r's full key is new, recording it.
func (d *Distinct) firstSeen(r value.Row) bool {
	if d.useTable {
		d.keyBuf = r.AppendFullKey(d.keyBuf[:0])
		_, added := d.ht.Insert(d.keyBuf)
		return added
	}
	k := r.FullKey()
	if d.seen[k] {
		return false
	}
	d.seen[k] = true
	return true
}

// Next implements Operator.
func (d *Distinct) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := d.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		if d.firstSeen(r) {
			return r, true, nil
		}
	}
}

// NextBatch implements BatchOperator: keep the first occurrence of each
// full-row key, charging one CPU operation per input row.
func (d *Distinct) NextBatch(ctx *Context, dst *Batch, max int) error {
	for len(dst.Rows) == 0 {
		d.in.Reset()
		if err := FillBatch(ctx, d.Child, &d.in, max); err != nil {
			return err
		}
		if d.in.Len() == 0 {
			return nil
		}
		var cpu int64
		for _, r := range d.in.Rows {
			cpu++
			if d.firstSeen(r) {
				dst.Rows = append(dst.Rows, r)
			}
		}
		ctx.Counter.CPUTuples += cpu
	}
	return nil
}

// Close implements Operator.
func (d *Distinct) Close(ctx *Context) error { return d.Child.Close(ctx) }

// Sort materializes and sorts the child's rows on Open, charging CPU
// proportional to n·log₂n comparisons.
type Sort struct {
	Child Operator
	Keys  []int
	Desc  []bool
	rows  []value.Row
	pos   int
}

// NewSort builds an in-memory sort on the given key columns.
func NewSort(child Operator, keys []int, desc []bool) *Sort {
	return &Sort{Child: child, Keys: keys, Desc: desc}
}

// Schema implements Operator.
func (s *Sort) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	rows, err := Drain(ctx, s.Child)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return value.CompareRows(rows[i], rows[j], s.Keys, s.Desc) < 0
	})
	// Charge n·ceil(log2 n) comparison operations.
	n := len(rows)
	if n > 1 {
		lg := 0
		for v := n - 1; v > 0; v >>= 1 {
			lg++
		}
		ctx.Counter.CPUTuples += int64(n * lg)
	}
	s.rows = rows
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ctx *Context) (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the sorted rows a morsel at a
// time, charging one CPU operation per emitted row as Next does. (The
// n·log n sort charge happened in Open, which drains the child batch-wise
// when the context batches.)
func (s *Sort) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := min(max, len(s.rows)-s.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, s.rows[s.pos:s.pos+n]...)
	s.pos += n
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (s *Sort) Close(*Context) error { return nil }

// Limit passes through at most N rows.
type Limit struct {
	Child Operator
	N     int
	seen  int
	one   Batch // batch-mode scratch: Limit demands rows singly
}

// NewLimit builds a limit.
func NewLimit(child Operator, n int) *Limit { return &Limit{Child: child, N: n} }

// Schema implements Operator.
func (l *Limit) Schema() *schema.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error {
	l.seen = 0
	l.one.Reset()
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Context) (value.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	r, ok, err := l.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return r, true, nil
}

// NextBatch implements BatchOperator. Limit is the one operator that
// demands rows singly (child budget 1): it is the only place a batch
// pipeline stops mid-stream, and any lookahead would charge the subtree
// for rows the row engine never pulls. The cascade of budget-1 pulls
// degenerates the subtree to row-at-a-time exactly where the row engine
// would run it — which is also the right performance call, since every
// extra row produced below a saturated Limit is wasted work.
//
//lint:ignore costcharge Limit charges nothing by convention in both engines; the loop only forwards rows the child already charged
func (l *Limit) NextBatch(ctx *Context, dst *Batch, max int) error {
	for l.seen < l.N && len(dst.Rows) < max {
		l.one.Reset()
		if err := FillBatch(ctx, l.Child, &l.one, 1); err != nil {
			return err
		}
		if l.one.Len() == 0 {
			break
		}
		dst.Rows = append(dst.Rows, l.one.Rows[0])
		l.seen++
	}
	return nil
}

// Close implements Operator.
func (l *Limit) Close(ctx *Context) error { return l.Child.Close(ctx) }

// Materialize drains its child into a temporary table on first Open and
// thereafter scans the temporary. The build charges page writes; every
// scan (including the first) charges page reads. This is the operator
// behind ProductionCost_P when the optimizer decides to materialize the
// production set rather than recompute it.
type Materialize struct {
	Child Operator
	Name  string
	built *storage.Table
	scan  *TableScan
}

// NewMaterialize builds a materialization point named name.
func NewMaterialize(child Operator, name string) *Materialize {
	return &Materialize{Child: child, Name: name}
}

// Schema implements Operator.
func (m *Materialize) Schema() *schema.Schema { return m.Child.Schema() }

// Open implements Operator.
func (m *Materialize) Open(ctx *Context) error {
	if m.built == nil {
		t, err := MaterializeToTable(ctx, m.Child, m.Name)
		if err != nil {
			return err
		}
		m.built = t
	}
	m.scan = &TableScan{Table: m.built, alias: m.Child.Schema()}
	return m.scan.Open(ctx)
}

// Next implements Operator.
func (m *Materialize) Next(ctx *Context) (value.Row, bool, error) {
	return m.scan.Next(ctx)
}

// NextBatch implements BatchOperator by delegating to the embedded scan
// of the built temporary.
func (m *Materialize) NextBatch(ctx *Context, dst *Batch, max int) error {
	return m.scan.NextBatch(ctx, dst, max)
}

// Close implements Operator.
func (m *Materialize) Close(ctx *Context) error {
	if m.scan == nil {
		return nil
	}
	return m.scan.Close(ctx)
}

// Built exposes the materialized table after the first Open (nil before).
func (m *Materialize) Built() *storage.Table { return m.built }
