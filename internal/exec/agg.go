package exec

import (
	"bytes"
	"errors"
	"sort"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// GroupBy is hash aggregation: it groups child rows by the key columns
// and computes the aggregate specs per group. Output rows are the group
// key columns followed by one column per aggregate, in a deterministic
// (sorted by group key) order. With no key columns it produces exactly
// one row over the whole input (scalar aggregation).
type GroupBy struct {
	Child    Operator
	GroupIdx []int
	Aggs     []expr.AggSpec
	// SizeHint pre-sizes the group hash table from the optimizer's output
	// cardinality estimate (0 = unknown).
	SizeHint int
	out      *schema.Schema
	results  []value.Row
	pos      int

	// Kernel-path state (ctx.Kernels): groups live in a RowTable over
	// byte-encoded keys with dense ids indexing the state slice; one
	// scratch buffer serves every key encoding. Output order — sorted by
	// canonical key — is reproduced exactly, since byte comparison of
	// the encodings equals Go string comparison of the map keys.
	ht     RowTable
	keyBuf []byte
}

// NewGroupBy builds a hash aggregation operator. Output column names for
// aggregates come from each spec's Name (or its String() if empty).
func NewGroupBy(child Operator, groupIdx []int, aggs []expr.AggSpec) *GroupBy {
	return &GroupBy{
		Child:    child,
		GroupIdx: groupIdx,
		Aggs:     aggs,
		out:      aggSchema(child, groupIdx, aggs),
	}
}

// aggSchema is the output schema shared by both aggregation operators:
// the group key columns followed by one column per aggregate.
func aggSchema(child Operator, groupIdx []int, aggs []expr.AggSpec) *schema.Schema {
	in := child.Schema()
	cols := make([]schema.Column, 0, len(groupIdx)+len(aggs))
	for _, g := range groupIdx {
		cols = append(cols, in.Col(g))
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.String()
		}
		cols = append(cols, schema.Column{Name: name, Type: a.ResultType()})
	}
	return schema.New(cols...)
}

// Schema implements Operator.
func (g *GroupBy) Schema() *schema.Schema { return g.out }

type groupState struct {
	key    value.Row
	states []*expr.AggState
}

// newGroupState starts a group for r's key projection.
func (g *GroupBy) newGroupState(r value.Row) *groupState {
	gs := &groupState{key: r.Project(g.GroupIdx)}
	gs.states = make([]*expr.AggState, len(g.Aggs))
	for i, a := range g.Aggs {
		gs.states[i] = expr.NewAggState(a.Kind)
	}
	return gs
}

// Open implements Operator.
func (g *GroupBy) Open(ctx *Context) error {
	g.Aggs = expr.BindAggs(g.Aggs, ctx.Params)
	useTable := ctx.Kernels
	var (
		groups map[string]*groupState
		order  []string
		dense  []*groupState
	)
	var lookup func(r value.Row) *groupState
	if useTable {
		g.ht.Init(g.SizeHint)
		dense = make([]*groupState, 0, g.SizeHint)
		lookup = func(r value.Row) *groupState {
			g.keyBuf = r.AppendKey(g.keyBuf[:0], g.GroupIdx)
			id, added := g.ht.Insert(g.keyBuf)
			if added {
				dense = append(dense, g.newGroupState(r))
			}
			return dense[id]
		}
	} else {
		groups = make(map[string]*groupState, g.SizeHint)
		order = make([]string, 0, g.SizeHint)
		lookup = func(r value.Row) *groupState {
			k := r.Key(g.GroupIdx)
			gs := groups[k]
			if gs == nil {
				gs = g.newGroupState(r)
				groups[k] = gs
				order = append(order, k)
			}
			return gs
		}
	}
	if err := g.Child.Open(ctx); err != nil {
		return err
	}
	err := forEachInput(ctx, g.Child, func(r value.Row) error {
		ctx.Counter.CPUTuples++
		gs := lookup(r)
		for i, a := range g.Aggs {
			var v value.Value
			if a.Arg == nil {
				v = value.NewInt(1) // COUNT(*)
			} else {
				var err error
				v, err = a.Arg.Eval(r)
				if err != nil {
					return err
				}
			}
			if err := gs.states[i].Add(v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return errors.Join(err, g.Child.Close(ctx))
	}
	if err := g.Child.Close(ctx); err != nil {
		return err
	}
	// Scalar aggregation over an empty input still yields one row.
	scalarEmpty := len(g.GroupIdx) == 0 &&
		((useTable && g.ht.Len() == 0) || (!useTable && len(order) == 0))
	if scalarEmpty {
		gs := g.newGroupState(value.Row{})
		if useTable {
			g.ht.Insert(nil)
			dense = append(dense, gs)
		} else {
			groups[""] = gs
			order = append(order, "")
		}
	}
	g.results = g.results[:0]
	emit := func(gs *groupState) {
		out := make(value.Row, 0, len(g.GroupIdx)+len(g.Aggs))
		out = append(out, gs.key...)
		for _, st := range gs.states {
			out = append(out, st.Result())
		}
		g.results = append(g.results, out)
	}
	if useTable {
		ids := make([]int32, g.ht.Len())
		for i := range ids {
			ids[i] = int32(i)
		}
		sort.Slice(ids, func(a, b int) bool {
			return bytes.Compare(g.ht.Key(ids[a]), g.ht.Key(ids[b])) < 0
		})
		for _, id := range ids {
			emit(dense[id])
		}
	} else {
		sort.Strings(order)
		for _, k := range order {
			emit(groups[k])
		}
	}
	g.pos = 0
	return nil
}

// Next implements Operator.
func (g *GroupBy) Next(ctx *Context) (value.Row, bool, error) {
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	r := g.results[g.pos]
	g.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the computed groups a morsel
// at a time, charging one CPU operation per emitted row as Next does.
func (g *GroupBy) NextBatch(ctx *Context, dst *Batch, max int) error {
	n := min(max, len(g.results)-g.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, g.results[g.pos:g.pos+n]...)
	g.pos += n
	ctx.Counter.CPUTuples += int64(n)
	return nil
}

// Close implements Operator.
func (g *GroupBy) Close(*Context) error {
	g.results = nil
	return nil
}

// StreamGroupBy is order-consuming aggregation: it requires its input to
// arrive with equal group keys adjacent (any sort direction), keeps the
// state of exactly one group at a time, and emits each group as soon as
// its run of rows ends. Unlike GroupBy it never materializes the group
// table, and its output preserves the input's group order.
type StreamGroupBy struct {
	Child    Operator
	GroupIdx []int
	Aggs     []expr.AggSpec
	out      *schema.Schema

	// curKey and rowKey are reusable canonical-key buffers: rowKey holds
	// the current row's encoding and curKey the open group's, so the
	// per-row comparison allocates nothing (byte equality of encodings
	// equals string equality of the old map keys).
	curKey  []byte
	rowKey  []byte
	key     value.Row
	states  []*expr.AggState
	started bool
	done    bool
	in      Batch // batch-mode scratch for child pulls
	ipos    int
}

// NewStreamGroupBy builds a streaming aggregation over grouped input.
func NewStreamGroupBy(child Operator, groupIdx []int, aggs []expr.AggSpec) *StreamGroupBy {
	return &StreamGroupBy{
		Child:    child,
		GroupIdx: groupIdx,
		Aggs:     aggs,
		out:      aggSchema(child, groupIdx, aggs),
	}
}

// Schema implements Operator.
func (g *StreamGroupBy) Schema() *schema.Schema { return g.out }

// Open implements Operator.
func (g *StreamGroupBy) Open(ctx *Context) error {
	g.Aggs = expr.BindAggs(g.Aggs, ctx.Params)
	g.started = false
	g.done = false
	g.curKey = g.curKey[:0]
	g.rowKey = g.rowKey[:0]
	g.key = nil
	g.states = nil
	g.in.Reset()
	g.ipos = 0
	return g.Child.Open(ctx)
}

func (g *StreamGroupBy) begin(r value.Row, key []byte) {
	g.curKey = append(g.curKey[:0], key...)
	g.key = r.Project(g.GroupIdx)
	g.states = make([]*expr.AggState, len(g.Aggs))
	for i, a := range g.Aggs {
		g.states[i] = expr.NewAggState(a.Kind)
	}
	g.started = true
}

func (g *StreamGroupBy) accumulate(r value.Row) error {
	for i, a := range g.Aggs {
		var v value.Value
		if a.Arg == nil {
			v = value.NewInt(1) // COUNT(*)
		} else {
			var err error
			v, err = a.Arg.Eval(r)
			if err != nil {
				return err
			}
		}
		if err := g.states[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

func (g *StreamGroupBy) emit(ctx *Context) value.Row {
	ctx.Counter.CPUTuples++
	out := make(value.Row, 0, len(g.GroupIdx)+len(g.Aggs))
	out = append(out, g.key...)
	for _, st := range g.states {
		out = append(out, st.Result())
	}
	g.started = false
	return out
}

// Next implements Operator.
func (g *StreamGroupBy) Next(ctx *Context) (value.Row, bool, error) {
	if g.done {
		return nil, false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := g.Child.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			if g.started {
				return g.emit(ctx), true, nil
			}
			// Scalar aggregation over an empty input still yields one row.
			if len(g.GroupIdx) == 0 {
				g.begin(value.Row{}, nil)
				return g.emit(ctx), true, nil
			}
			return nil, false, nil
		}
		ctx.Counter.CPUTuples++
		g.rowKey = r.AppendKey(g.rowKey[:0], g.GroupIdx)
		k := g.rowKey
		if g.started && !bytes.Equal(k, g.curKey) {
			out := g.emit(ctx)
			g.begin(r, k)
			if err := g.accumulate(r); err != nil {
				return nil, false, err
			}
			return out, true, nil
		}
		if !g.started {
			g.begin(r, k)
		}
		if err := g.accumulate(r); err != nil {
			return nil, false, err
		}
	}
}

// NextBatch implements BatchOperator: run the same one-group state
// machine over buffered child batches. Child batches are bounded by the
// output budget, and the loop returns as soon as the budget is met, so
// consumption matches the row engine's demand pattern exactly — in
// particular, the boundary row that closes the last emitted group has
// already been consumed and charged, just as in Next.
func (g *StreamGroupBy) NextBatch(ctx *Context, dst *Batch, max int) error {
	if g.done {
		return nil
	}
	for len(dst.Rows) < max {
		if g.ipos >= len(g.in.Rows) {
			g.in.Reset()
			g.ipos = 0
			if err := FillBatch(ctx, g.Child, &g.in, max); err != nil {
				return err
			}
			if g.in.Len() == 0 {
				g.done = true
				if g.started {
					dst.Rows = append(dst.Rows, g.emit(ctx))
				} else if len(g.GroupIdx) == 0 {
					// Scalar aggregation over an empty input still yields one row.
					g.begin(value.Row{}, nil)
					dst.Rows = append(dst.Rows, g.emit(ctx))
				}
				return nil
			}
		}
		r := g.in.Rows[g.ipos]
		g.ipos++
		ctx.Counter.CPUTuples++
		g.rowKey = r.AppendKey(g.rowKey[:0], g.GroupIdx)
		k := g.rowKey
		if g.started && !bytes.Equal(k, g.curKey) {
			dst.Rows = append(dst.Rows, g.emit(ctx))
			g.begin(r, k)
			if err := g.accumulate(r); err != nil {
				return err
			}
			continue
		}
		if !g.started {
			g.begin(r, k)
		}
		if err := g.accumulate(r); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Operator.
func (g *StreamGroupBy) Close(ctx *Context) error {
	g.states = nil
	return g.Child.Close(ctx)
}
