package exec

import (
	"sort"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// GroupBy is hash aggregation: it groups child rows by the key columns
// and computes the aggregate specs per group. Output rows are the group
// key columns followed by one column per aggregate, in a deterministic
// (sorted by group key) order. With no key columns it produces exactly
// one row over the whole input (scalar aggregation).
type GroupBy struct {
	Child    Operator
	GroupIdx []int
	Aggs     []expr.AggSpec
	out      *schema.Schema
	results  []value.Row
	pos      int
}

// NewGroupBy builds a hash aggregation operator. Output column names for
// aggregates come from each spec's Name (or its String() if empty).
func NewGroupBy(child Operator, groupIdx []int, aggs []expr.AggSpec) *GroupBy {
	in := child.Schema()
	cols := make([]schema.Column, 0, len(groupIdx)+len(aggs))
	for _, g := range groupIdx {
		cols = append(cols, in.Col(g))
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.String()
		}
		cols = append(cols, schema.Column{Name: name, Type: a.ResultType()})
	}
	return &GroupBy{
		Child:    child,
		GroupIdx: groupIdx,
		Aggs:     aggs,
		out:      schema.New(cols...),
	}
}

// Schema implements Operator.
func (g *GroupBy) Schema() *schema.Schema { return g.out }

type groupState struct {
	key    value.Row
	states []*expr.AggState
}

// Open implements Operator.
func (g *GroupBy) Open(ctx *Context) error {
	groups := map[string]*groupState{}
	var order []string
	if err := g.Child.Open(ctx); err != nil {
		return err
	}
	for {
		r, ok, err := g.Child.Next(ctx)
		if err != nil {
			g.Child.Close(ctx)
			return err
		}
		if !ok {
			break
		}
		ctx.Counter.CPUTuples++
		k := r.Key(g.GroupIdx)
		gs := groups[k]
		if gs == nil {
			gs = &groupState{key: r.Project(g.GroupIdx)}
			gs.states = make([]*expr.AggState, len(g.Aggs))
			for i, a := range g.Aggs {
				gs.states[i] = expr.NewAggState(a.Kind)
			}
			groups[k] = gs
			order = append(order, k)
		}
		for i, a := range g.Aggs {
			var v value.Value
			if a.Arg == nil {
				v = value.NewInt(1) // COUNT(*)
			} else {
				var err error
				v, err = a.Arg.Eval(r)
				if err != nil {
					g.Child.Close(ctx)
					return err
				}
			}
			if err := gs.states[i].Add(v); err != nil {
				g.Child.Close(ctx)
				return err
			}
		}
	}
	if err := g.Child.Close(ctx); err != nil {
		return err
	}
	// Scalar aggregation over an empty input still yields one row.
	if len(g.GroupIdx) == 0 && len(order) == 0 {
		gs := &groupState{key: value.Row{}}
		gs.states = make([]*expr.AggState, len(g.Aggs))
		for i, a := range g.Aggs {
			gs.states[i] = expr.NewAggState(a.Kind)
		}
		groups[""] = gs
		order = append(order, "")
	}
	sort.Strings(order)
	g.results = g.results[:0]
	for _, k := range order {
		gs := groups[k]
		out := make(value.Row, 0, len(g.GroupIdx)+len(g.Aggs))
		out = append(out, gs.key...)
		for _, st := range gs.states {
			out = append(out, st.Result())
		}
		g.results = append(g.results, out)
	}
	g.pos = 0
	return nil
}

// Next implements Operator.
func (g *GroupBy) Next(ctx *Context) (value.Row, bool, error) {
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	r := g.results[g.pos]
	g.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// Close implements Operator.
func (g *GroupBy) Close(*Context) error {
	g.results = nil
	return nil
}
