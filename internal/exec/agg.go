package exec

import (
	"errors"
	"sort"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// GroupBy is hash aggregation: it groups child rows by the key columns
// and computes the aggregate specs per group. Output rows are the group
// key columns followed by one column per aggregate, in a deterministic
// (sorted by group key) order. With no key columns it produces exactly
// one row over the whole input (scalar aggregation).
type GroupBy struct {
	Child    Operator
	GroupIdx []int
	Aggs     []expr.AggSpec
	// SizeHint pre-sizes the group hash table from the optimizer's output
	// cardinality estimate (0 = unknown).
	SizeHint int
	out      *schema.Schema
	results  []value.Row
	pos      int
}

// NewGroupBy builds a hash aggregation operator. Output column names for
// aggregates come from each spec's Name (or its String() if empty).
func NewGroupBy(child Operator, groupIdx []int, aggs []expr.AggSpec) *GroupBy {
	return &GroupBy{
		Child:    child,
		GroupIdx: groupIdx,
		Aggs:     aggs,
		out:      aggSchema(child, groupIdx, aggs),
	}
}

// aggSchema is the output schema shared by both aggregation operators:
// the group key columns followed by one column per aggregate.
func aggSchema(child Operator, groupIdx []int, aggs []expr.AggSpec) *schema.Schema {
	in := child.Schema()
	cols := make([]schema.Column, 0, len(groupIdx)+len(aggs))
	for _, g := range groupIdx {
		cols = append(cols, in.Col(g))
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.String()
		}
		cols = append(cols, schema.Column{Name: name, Type: a.ResultType()})
	}
	return schema.New(cols...)
}

// Schema implements Operator.
func (g *GroupBy) Schema() *schema.Schema { return g.out }

type groupState struct {
	key    value.Row
	states []*expr.AggState
}

// Open implements Operator.
func (g *GroupBy) Open(ctx *Context) error {
	groups := make(map[string]*groupState, g.SizeHint)
	order := make([]string, 0, g.SizeHint)
	if err := g.Child.Open(ctx); err != nil {
		return err
	}
	for {
		r, ok, err := g.Child.Next(ctx)
		if err != nil {
			return errors.Join(err, g.Child.Close(ctx))
		}
		if !ok {
			break
		}
		ctx.Counter.CPUTuples++
		k := r.Key(g.GroupIdx)
		gs := groups[k]
		if gs == nil {
			gs = &groupState{key: r.Project(g.GroupIdx)}
			gs.states = make([]*expr.AggState, len(g.Aggs))
			for i, a := range g.Aggs {
				gs.states[i] = expr.NewAggState(a.Kind)
			}
			groups[k] = gs
			order = append(order, k)
		}
		for i, a := range g.Aggs {
			var v value.Value
			if a.Arg == nil {
				v = value.NewInt(1) // COUNT(*)
			} else {
				var err error
				v, err = a.Arg.Eval(r)
				if err != nil {
					return errors.Join(err, g.Child.Close(ctx))
				}
			}
			if err := gs.states[i].Add(v); err != nil {
				return errors.Join(err, g.Child.Close(ctx))
			}
		}
	}
	if err := g.Child.Close(ctx); err != nil {
		return err
	}
	// Scalar aggregation over an empty input still yields one row.
	if len(g.GroupIdx) == 0 && len(order) == 0 {
		gs := &groupState{key: value.Row{}}
		gs.states = make([]*expr.AggState, len(g.Aggs))
		for i, a := range g.Aggs {
			gs.states[i] = expr.NewAggState(a.Kind)
		}
		groups[""] = gs
		order = append(order, "")
	}
	sort.Strings(order)
	g.results = g.results[:0]
	for _, k := range order {
		gs := groups[k]
		out := make(value.Row, 0, len(g.GroupIdx)+len(g.Aggs))
		out = append(out, gs.key...)
		for _, st := range gs.states {
			out = append(out, st.Result())
		}
		g.results = append(g.results, out)
	}
	g.pos = 0
	return nil
}

// Next implements Operator.
func (g *GroupBy) Next(ctx *Context) (value.Row, bool, error) {
	if g.pos >= len(g.results) {
		return nil, false, nil
	}
	r := g.results[g.pos]
	g.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// Close implements Operator.
func (g *GroupBy) Close(*Context) error {
	g.results = nil
	return nil
}

// StreamGroupBy is order-consuming aggregation: it requires its input to
// arrive with equal group keys adjacent (any sort direction), keeps the
// state of exactly one group at a time, and emits each group as soon as
// its run of rows ends. Unlike GroupBy it never materializes the group
// table, and its output preserves the input's group order.
type StreamGroupBy struct {
	Child    Operator
	GroupIdx []int
	Aggs     []expr.AggSpec
	out      *schema.Schema

	curKey  string
	key     value.Row
	states  []*expr.AggState
	started bool
	done    bool
}

// NewStreamGroupBy builds a streaming aggregation over grouped input.
func NewStreamGroupBy(child Operator, groupIdx []int, aggs []expr.AggSpec) *StreamGroupBy {
	return &StreamGroupBy{
		Child:    child,
		GroupIdx: groupIdx,
		Aggs:     aggs,
		out:      aggSchema(child, groupIdx, aggs),
	}
}

// Schema implements Operator.
func (g *StreamGroupBy) Schema() *schema.Schema { return g.out }

// Open implements Operator.
func (g *StreamGroupBy) Open(ctx *Context) error {
	g.started = false
	g.done = false
	return g.Child.Open(ctx)
}

func (g *StreamGroupBy) begin(r value.Row, key string) {
	g.curKey = key
	g.key = r.Project(g.GroupIdx)
	g.states = make([]*expr.AggState, len(g.Aggs))
	for i, a := range g.Aggs {
		g.states[i] = expr.NewAggState(a.Kind)
	}
	g.started = true
}

func (g *StreamGroupBy) accumulate(r value.Row) error {
	for i, a := range g.Aggs {
		var v value.Value
		if a.Arg == nil {
			v = value.NewInt(1) // COUNT(*)
		} else {
			var err error
			v, err = a.Arg.Eval(r)
			if err != nil {
				return err
			}
		}
		if err := g.states[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

func (g *StreamGroupBy) emit(ctx *Context) value.Row {
	ctx.Counter.CPUTuples++
	out := make(value.Row, 0, len(g.GroupIdx)+len(g.Aggs))
	out = append(out, g.key...)
	for _, st := range g.states {
		out = append(out, st.Result())
	}
	g.started = false
	return out
}

// Next implements Operator.
func (g *StreamGroupBy) Next(ctx *Context) (value.Row, bool, error) {
	if g.done {
		return nil, false, nil
	}
	for {
		r, ok, err := g.Child.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			if g.started {
				return g.emit(ctx), true, nil
			}
			// Scalar aggregation over an empty input still yields one row.
			if len(g.GroupIdx) == 0 {
				g.begin(value.Row{}, "")
				return g.emit(ctx), true, nil
			}
			return nil, false, nil
		}
		ctx.Counter.CPUTuples++
		k := r.Key(g.GroupIdx)
		if g.started && k != g.curKey {
			out := g.emit(ctx)
			g.begin(r, k)
			if err := g.accumulate(r); err != nil {
				return nil, false, err
			}
			return out, true, nil
		}
		if !g.started {
			g.begin(r, k)
		}
		if err := g.accumulate(r); err != nil {
			return nil, false, err
		}
	}
}

// Close implements Operator.
func (g *StreamGroupBy) Close(ctx *Context) error {
	g.states = nil
	return g.Child.Close(ctx)
}
