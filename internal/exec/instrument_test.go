package exec

import (
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

func intSchema(table string, cols ...string) *schema.Schema {
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		sc[i] = schema.Column{Table: table, Name: c, Type: value.KindInt}
	}
	return schema.New(sc...)
}

func intRows(vals ...[]int64) []value.Row {
	out := make([]value.Row, len(vals))
	for i, vs := range vals {
		r := make(value.Row, len(vs))
		for j, v := range vs {
			r[j] = value.NewInt(v)
		}
		out[i] = r
	}
	return out
}

// sumSelf checks the attribution invariant: per-operator exclusive
// deltas must sum to the context's total counter.
func sumSelf(t *testing.T, ctx *Context) {
	t.Helper()
	var sum cost.Counter
	for _, s := range ctx.OperatorStats() {
		sum.Add(s.Self())
	}
	if sum != *ctx.Counter {
		t.Fatalf("sum of per-operator Self = %s, want total %s", sum.String(), ctx.Counter.String())
	}
}

func TestInstrumentedBasicCounts(t *testing.T) {
	in := NewInstrumented(NewValues(intSchema("t", "a"), intRows([]int64{1}, []int64{2}, []int64{3})), "Values", nil)
	ctx := NewContext()
	rows, err := Drain(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	st := in.Stats()
	if st.Opens != 1 || st.Closes != 1 {
		t.Fatalf("opens=%d closes=%d, want 1/1", st.Opens, st.Closes)
	}
	if st.Rows != 3 || st.Nexts != 4 { // 3 rows + 1 end-of-stream call
		t.Fatalf("rows=%d nexts=%d, want 3/4", st.Rows, st.Nexts)
	}
	if st.Inclusive.CPUTuples != 3 {
		t.Fatalf("inclusive cpu = %d, want 3", st.Inclusive.CPUTuples)
	}
	if got := ctx.OperatorStats(); len(got) != 1 || got[0] != st {
		t.Fatalf("context registry = %v, want the one shim", got)
	}
	sumSelf(t, ctx)
}

// The inner of a nested-loops join is re-opened once per outer row; its
// single OpStats must accumulate across restarts (Opens counts the
// restarts, Rows the grand total) rather than resetting or splitting.
func TestInstrumentedAccumulatesAcrossReOpens(t *testing.T) {
	outerRows := intRows([]int64{1}, []int64{2}, []int64{3})
	innerRows := intRows([]int64{10}, []int64{20})
	outer := NewInstrumented(NewValues(intSchema("o", "a"), outerRows), "outer", nil)
	inner := NewInstrumented(NewValues(intSchema("i", "b"), innerRows), "inner", nil)
	join := NewInstrumented(NewNestedLoopJoin(outer, inner, nil), "nlj", nil)

	ctx := NewContext()
	rows, err := Drain(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	ist := inner.Stats()
	if ist.Opens != 3 {
		t.Fatalf("inner opens = %d, want 3 (one per outer row)", ist.Opens)
	}
	if ist.Rows != 6 {
		t.Fatalf("inner rows = %d, want 6 cumulative across re-opens", ist.Rows)
	}
	if ost := outer.Stats(); ost.Opens != 1 || ost.Rows != 3 {
		t.Fatalf("outer opens=%d rows=%d, want 1/3", ost.Opens, ost.Rows)
	}
	if jst := join.Stats(); jst.Rows != 6 || jst.Opens != 1 {
		t.Fatalf("join opens=%d rows=%d, want 1/6", jst.Opens, jst.Rows)
	}
	// The join charges one CPU op per inner row tested plus one per
	// emitted row; none of that may leak into the children's Self.
	if got := inner.Stats().Self().CPUTuples; got != 6 {
		t.Fatalf("inner self cpu = %d, want 6 (its own Values charges)", got)
	}
	if len(ctx.OperatorStats()) != 3 {
		t.Fatalf("registry has %d entries, want 3 (no duplicates on re-open)", len(ctx.OperatorStats()))
	}
	sumSelf(t, ctx)
}

// Draining the same instrumented tree twice keeps accumulating into the
// same stats blocks without re-registering.
func TestInstrumentedSecondDrainAccumulates(t *testing.T) {
	vals := NewInstrumented(NewValues(intSchema("t", "a"), intRows([]int64{1}, []int64{2})), "Values", nil)
	sel := NewInstrumented(NewSelect(vals, expr.Cmp{Op: expr.GT, L: expr.NewCol(0, "a"), R: expr.NewLit(value.NewInt(1))}), "Select", nil)

	ctx := NewContext()
	for pass := 1; pass <= 2; pass++ {
		rows, err := Drain(ctx, sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("pass %d: rows = %d, want 1", pass, len(rows))
		}
	}
	if st := vals.Stats(); st.Opens != 2 || st.Rows != 4 {
		t.Fatalf("values opens=%d rows=%d, want 2/4", st.Opens, st.Rows)
	}
	if st := sel.Stats(); st.Opens != 2 || st.Rows != 2 {
		t.Fatalf("select opens=%d rows=%d, want 2/2", st.Opens, st.Rows)
	}
	if len(ctx.OperatorStats()) != 2 {
		t.Fatalf("registry has %d entries, want 2", len(ctx.OperatorStats()))
	}
	sumSelf(t, ctx)
}

// A hash join drains its build side inside Open: the build child's
// charges land while two shims are on the stack, and must be credited
// to the child, not double-counted in the parent's Self.
func TestInstrumentedAttributionNests(t *testing.T) {
	build := NewInstrumented(NewValues(intSchema("b", "k"), intRows([]int64{1}, []int64{2})), "build", nil)
	probe := NewInstrumented(NewValues(intSchema("p", "k"), intRows([]int64{1}, []int64{2}, []int64{3})), "probe", nil)
	join := NewInstrumented(NewHashJoin(build, probe, []int{0}, []int{0}, nil), "hash", nil)

	ctx := NewContext()
	rows, err := Drain(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if got := build.Stats().Self().CPUTuples; got != 2 {
		t.Fatalf("build self cpu = %d, want 2", got)
	}
	if incl := join.Stats().Inclusive; incl != *ctx.Counter {
		t.Fatalf("root inclusive = %s, want full counter %s", incl.String(), ctx.Counter.String())
	}
	sumSelf(t, ctx)
}

func TestOpStatsMergeAndSelfWall(t *testing.T) {
	a := &OpStats{Label: "x", Opens: 1, Nexts: 3, Closes: 1, Rows: 2,
		Inclusive: cost.Counter{CPUTuples: 5}, childIncl: cost.Counter{CPUTuples: 2}}
	b := &OpStats{Label: "x", Opens: 2, Nexts: 4, Closes: 2, Rows: 3,
		Inclusive: cost.Counter{CPUTuples: 7}, childIncl: cost.Counter{CPUTuples: 3}}
	a.Merge(b)
	if a.Opens != 3 || a.Nexts != 7 || a.Closes != 3 || a.Rows != 5 {
		t.Fatalf("merged counts wrong: %+v", a)
	}
	if got := a.Self().CPUTuples; got != 7 { // (5+7) - (2+3)
		t.Fatalf("merged self cpu = %d, want 7", got)
	}
}
