package exec

import "filterjoin/internal/value"

// RowTable is the allocation-free replacement for the map[string]-keyed
// hash paths (DESIGN.md §14): an open-addressing table over 64-bit FNV
// hashes of canonical key encodings (value.Row.AppendKey), with the key
// bytes themselves packed into one arena and verified in full on every
// hash hit — so its equality relation is exactly the string map's.
// Values never live in the table: it assigns each distinct key a dense
// id (0, 1, 2, …) in first-insertion order, and operators index their
// own payload slices (bucket chains, group states) by that id.
//
// Init pre-sizes from the optimizer's cardinality hint; Grows counts
// doublings after that, which the pre-sizing regression test pins to
// zero on hinted builds.
type RowTable struct {
	slots []rtSlot
	mask  uint64
	arena []byte
	spans []rtSpan
	grows int
}

type rtSlot struct {
	hash uint64
	id   int32 // 0 = empty, else key id + 1
}

type rtSpan struct{ off, end uint32 }

// rtMaxLoad is the occupancy numerator/denominator: grow when
// n+1 > 3/4 of capacity.
const rtMaxLoadNum, rtMaxLoadDen = 3, 4

func rtCapFor(hint int) int {
	c := 8
	for hint > 0 && c*rtMaxLoadNum < hint*rtMaxLoadDen {
		c <<= 1
	}
	return c
}

// Init empties the table and pre-sizes it so hint insertions need no
// growth. Storage is kept across Init cycles, so a re-Opened operator
// rebuilds without reallocating.
func (t *RowTable) Init(hint int) {
	need := rtCapFor(hint)
	if cap(t.slots) >= need {
		t.slots = t.slots[:max(len(t.slots), need)]
		for i := range t.slots {
			t.slots[i] = rtSlot{}
		}
	} else {
		t.slots = make([]rtSlot, need)
	}
	t.mask = uint64(len(t.slots) - 1)
	t.arena = t.arena[:0]
	t.spans = t.spans[:0]
	t.grows = 0
}

// Len returns the number of distinct keys inserted.
func (t *RowTable) Len() int { return len(t.spans) }

// Grows returns the number of capacity doublings since Init.
func (t *RowTable) Grows() int { return t.grows }

// Key returns the stored key bytes for id, valid until the next Init.
func (t *RowTable) Key(id int32) []byte {
	s := t.spans[id]
	return t.arena[s.off:s.end]
}

func (t *RowTable) keyEq(id int32, key []byte) bool {
	s := t.spans[id]
	stored := t.arena[s.off:s.end]
	if len(stored) != len(key) {
		return false
	}
	for i, b := range key {
		if stored[i] != b {
			return false
		}
	}
	return true
}

// Insert adds key if absent and returns its dense id plus whether it was
// newly added. The key bytes are copied into the arena; callers reuse
// their scratch buffer immediately.
func (t *RowTable) Insert(key []byte) (id int32, added bool) {
	if len(t.slots) == 0 {
		t.Init(0)
	}
	if (len(t.spans)+1)*rtMaxLoadDen > len(t.slots)*rtMaxLoadNum {
		t.grow()
	}
	h := value.HashBytes(key)
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.id == 0 {
			off := len(t.arena)
			t.arena = append(t.arena, key...)
			t.spans = append(t.spans, rtSpan{off: uint32(off), end: uint32(len(t.arena))})
			s.hash = h
			s.id = int32(len(t.spans))
			return s.id - 1, true
		}
		if s.hash == h && t.keyEq(s.id-1, key) {
			return s.id - 1, false
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the id for key, or -1 when absent.
func (t *RowTable) Lookup(key []byte) int32 {
	if len(t.slots) == 0 {
		return -1
	}
	h := value.HashBytes(key)
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.id == 0 {
			return -1
		}
		if s.hash == h && t.keyEq(s.id-1, key) {
			return s.id - 1
		}
		i = (i + 1) & t.mask
	}
}

func (t *RowTable) grow() {
	old := t.slots
	t.slots = make([]rtSlot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	t.grows++
	for _, s := range old {
		if s.id == 0 {
			continue
		}
		i := s.hash & t.mask
		for t.slots[i].id != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}
