package exec

import (
	"context"
	"errors"
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// cancelledCtx returns an execution context whose caller context is
// already cancelled.
func cancelledCtx() *Context {
	ctx := NewContext()
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx.Caller = cctx
	return ctx
}

// rowOnly is a deliberately batch-less operator so tests exercise
// FillBatch's row shim rather than a native NextBatch.
type rowOnly struct {
	rows []value.Row
	pos  int
}

func (r *rowOnly) Schema() *schema.Schema { return nil }
func (r *rowOnly) Open(*Context) error    { r.pos = 0; return nil }
func (r *rowOnly) Next(*Context) (value.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true, nil
}
func (r *rowOnly) Close(*Context) error { return nil }

// TestNextObservesCancellation holds every row-pulling loop to the
// ctxcancel contract: once the caller context is cancelled, the next
// Next call surfaces context.Canceled instead of continuing to pull.
func TestNextObservesCancellation(t *testing.T) {
	rows := [][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	tb := intTable(t, "t", []string{"a", "b"}, rows)
	scan := func() Operator { return NewTableScan(tb, "") }
	cases := map[string]func() Operator{
		"Select":   func() Operator { return NewSelect(scan(), expr.NewCmp(expr.LT, expr.NewCol(0, "a"), expr.NewLit(value.NewInt(0)))) },
		"Distinct": func() Operator { return NewDistinct(scan()) },
		"StreamGroupBy": func() Operator {
			return NewStreamGroupBy(scan(), []int{0}, []expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
		},
		"NestedLoopJoin": func() Operator {
			return NewNestedLoopJoin(scan(), scan(), expr.NewCmp(expr.LT, expr.NewCol(0, "a"), expr.NewCol(2, "a")))
		},
		"HashJoin": func() Operator { return NewHashJoin(scan(), scan(), []int{0}, []int{0}, nil) },
		"KeySetFilter": func() Operator {
			set := NewKeySet(1)
			return NewKeySetFilter(scan(), set, []int{0})
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			op := mk()
			ctx := NewContext()
			cctx, cancel := context.WithCancel(context.Background())
			ctx.Caller = cctx
			if err := op.Open(ctx); err != nil {
				t.Fatalf("open: %v", err)
			}
			cancel()
			_, _, err := op.Next(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Next after cancel: err = %v, want context.Canceled", err)
			}
			if err := op.Close(ctx); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

// TestFillBatchShimObservesCancellation covers the row shim that adapts
// batch-less operators into a batch pipeline.
func TestFillBatchShimObservesCancellation(t *testing.T) {
	op := &rowOnly{rows: []value.Row{{value.NewInt(1)}, {value.NewInt(2)}}}
	ctx := cancelledCtx()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(8)
	if err := FillBatch(ctx, op, &b, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("FillBatch after cancel: err = %v, want context.Canceled", err)
	}
}

// TestWorkerContextInheritsCaller pins the exchange contract: worker
// contexts share the parent's cancellation context (and nothing else),
// so cancelling the query reaches every worker goroutine.
func TestWorkerContextInheritsCaller(t *testing.T) {
	parent := NewContext()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parent.Caller = cctx
	w := NewWorkerContext(parent)
	if w.Caller != cctx {
		t.Error("worker context did not inherit the parent's caller context")
	}
	if w.Counter == parent.Counter {
		t.Error("worker context must charge a private counter")
	}
	if orphan := NewWorkerContext(nil); orphan == nil || orphan.Caller != nil {
		t.Error("nil parent must yield a fresh standalone context")
	}
}

// TestParallelOperatorsStopOnCancel drives the three exchange operators
// with an already-cancelled caller: their workers observe it and Open
// surfaces the cancellation instead of draining the full input.
func TestParallelOperatorsStopOnCancel(t *testing.T) {
	rows := make([][]int64, 2000)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 7)}
	}
	tb := intTable(t, "t", []string{"a", "b"}, rows)

	t.Run("ParallelScan", func(t *testing.T) {
		op := NewParallelScan(tb, "", 4, nil)
		err := op.Open(cancelledCtx())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Open = %v, want context.Canceled", err)
		}
	})
	t.Run("Gather", func(t *testing.T) {
		part := NewPartition(NewTableScan(tb, ""), []int{1}, 4)
		op := NewGather(part, nil)
		err := op.Open(cancelledCtx())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Open = %v, want context.Canceled", err)
		}
	})
	t.Run("ParallelHashJoin", func(t *testing.T) {
		op := NewParallelHashJoin(NewTableScan(tb, ""), NewTableScan(tb, ""), []int{0}, []int{0}, nil, 4)
		err := op.Open(cancelledCtx())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Open = %v, want context.Canceled", err)
		}
	})
}
