package exec

import (
	"strconv"
	"testing"

	"filterjoin/internal/expr"
)

func TestRowTableInsertLookup(t *testing.T) {
	var rt RowTable
	rt.Init(0)
	keys := []string{"i1|", "i2|", "s3:abc|", "", "n|", "f1.5|"}
	for i, k := range keys {
		id, added := rt.Insert([]byte(k))
		if !added || id != int32(i) {
			t.Fatalf("Insert(%q) = (%d, %v), want (%d, true)", k, id, added, i)
		}
	}
	for i, k := range keys {
		if id, added := rt.Insert([]byte(k)); added || id != int32(i) {
			t.Fatalf("re-Insert(%q) = (%d, %v), want (%d, false)", k, id, added, i)
		}
		if id := rt.Lookup([]byte(k)); id != int32(i) {
			t.Fatalf("Lookup(%q) = %d, want %d", k, id, i)
		}
		if got := string(rt.Key(int32(i))); got != k {
			t.Fatalf("Key(%d) = %q, want %q", i, got, k)
		}
	}
	if rt.Lookup([]byte("i99|")) != -1 {
		t.Fatal("Lookup of absent key should be -1")
	}
	if rt.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", rt.Len(), len(keys))
	}
}

func TestRowTableGrowAndReinit(t *testing.T) {
	var rt RowTable
	rt.Init(0)
	const n = 10_000
	for i := 0; i < n; i++ {
		k := strconv.AppendInt([]byte("i"), int64(i), 10)
		if id, added := rt.Insert(append(k, '|')); !added || id != int32(i) {
			t.Fatalf("Insert %d = (%d, %v)", i, id, added)
		}
	}
	if rt.Grows() == 0 {
		t.Fatal("unhinted 10k-key build should have grown")
	}
	for i := 0; i < n; i++ {
		k := strconv.AppendInt([]byte("i"), int64(i), 10)
		if id := rt.Lookup(append(k, '|')); id != int32(i) {
			t.Fatalf("Lookup %d = %d after growth", i, id)
		}
	}
	// Re-Init with an exact hint: same inserts, zero growth.
	rt.Init(n)
	for i := 0; i < n; i++ {
		k := strconv.AppendInt([]byte("i"), int64(i), 10)
		rt.Insert(append(k, '|'))
	}
	if g := rt.Grows(); g != 0 {
		t.Fatalf("hinted build grew %d times, want 0", g)
	}
	if rt.Len() != n {
		t.Fatalf("Len = %d after re-Init, want %d", rt.Len(), n)
	}
}

// TestHashJoinHintedBuildNoRehash pins the pre-sizing contract: a hash
// build whose BuildSizeHint covers the build-side cardinality never
// rehashes, and the same holds for a hinted GroupBy. This is the
// regression guard for threading optimizer cardinality estimates into
// the kernel-path hash tables.
func TestHashJoinHintedBuildNoRehash(t *testing.T) {
	const n = 5000
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 7)}
	}
	build := intTable(t, "b", []string{"k", "x"}, rows)
	probe := intTable(t, "p", []string{"k", "y"}, rows[:10])

	j := NewHashJoin(NewTableScan(build, ""), NewTableScan(probe, ""), []int{0}, []int{0}, nil)
	j.BuildSizeHint = n
	ctx := NewContext()
	ctx.Kernels = true
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if g := j.ht.Grows(); g != 0 {
		t.Errorf("hinted HashJoin build grew %d times, want 0", g)
	}
	if j.ht.Len() != n {
		t.Errorf("build table has %d keys, want %d", j.ht.Len(), n)
	}
	if err := j.Close(ctx); err != nil {
		t.Fatal(err)
	}

	g := NewGroupBy(NewTableScan(build, ""), []int{0}, []expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
	g.SizeHint = n
	if err := g.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if grew := g.ht.Grows(); grew != 0 {
		t.Errorf("hinted GroupBy build grew %d times, want 0", grew)
	}
	if err := g.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
