package exec

import (
	"errors"
	"sync"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// NestedLoopJoin is the general theta join: for every outer row the inner
// is re-opened and fully consumed, with the (optional) predicate evaluated
// against the concatenated row. Because the inner's own operators re-charge
// their costs on every re-open, this operator naturally exhibits the
// quadratic I/O behaviour the optimizer's NL cost formula describes.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         expr.Expr // bound against Outer.Schema().Concat(Inner.Schema()); may be nil
	out          *schema.Schema
	cur          value.Row
	innerOpen    bool
	done         bool
}

// NewNestedLoopJoin builds a nested-loops join.
func NewNestedLoopJoin(outer, inner Operator, pred expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{
		Outer: outer,
		Inner: inner,
		Pred:  pred,
		out:   outer.Schema().Concat(inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *schema.Schema { return j.out }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Context) error {
	j.Pred = expr.BindParams(j.Pred, ctx.Params)
	j.cur = nil
	j.innerOpen = false
	j.done = false
	return j.Outer.Open(ctx)
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Context) (value.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if j.cur == nil {
			r, ok, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = r
			if err := j.Inner.Open(ctx); err != nil {
				return nil, false, err
			}
			j.innerOpen = true
		}
		ir, ok, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if err := j.Inner.Close(ctx); err != nil {
				return nil, false, err
			}
			j.innerOpen = false
			j.cur = nil
			continue
		}
		ctx.Counter.CPUTuples++
		joined := j.cur.Concat(ir)
		if j.Pred != nil {
			keep, err := expr.EvalBool(j.Pred, joined)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close(ctx *Context) error {
	if j.innerOpen {
		if err := j.Inner.Close(ctx); err != nil {
			return err
		}
		j.innerOpen = false
	}
	return j.Outer.Close(ctx)
}

// HashJoin builds a hash table over the left input's key columns on Open,
// then streams the right input, probing per row. An optional residual
// predicate is evaluated against left‖right. The build and each probe
// charge one CPU operation per row.
type HashJoin struct {
	Left, Right         Operator // Left is the build side
	LeftKeys, RightKeys []int
	Residual            expr.Expr // bound against the emitted layout
	// EmitProbeFirst emits probe‖build (right‖left) instead of the default
	// build‖probe layout; the optimizer uses it to keep the "outer columns
	// first" convention while building on the inner.
	EmitProbeFirst bool
	// BuildSizeHint pre-sizes the hash table from the optimizer's build-side
	// cardinality estimate (0 = unknown).
	BuildSizeHint int
	out           *schema.Schema
	table         map[string][]value.Row
	probe         value.Row
	bucket        []value.Row
	bpos          int
	pbuf          Batch // batch-mode scratch for probe-side pulls
	ppos          int

	// Kernel-path state (ctx.Kernels): the string-keyed table is replaced
	// by a RowTable over byte-encoded keys, with per-key bucket chains
	// threaded through the drained build rows (heads/tails/nextRow index
	// into buildRows), one reused key scratch buffer, and an arena for
	// joined output rows. chain is the probe cursor into the current
	// bucket chain (-1 = exhausted).
	useTable  bool
	ht        RowTable
	buildRows []value.Row
	heads     []int32
	tails     []int32
	nextRow   []int32
	keyBuf    []byte
	chain     int32
	rkern     *expr.Pred
	arena     value.RowArena
}

// NewHashJoin builds a hash equi-join; left is the build side and the
// output layout is left‖right. Residual is bound against that layout.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Left:      left,
		Right:     right,
		LeftKeys:  leftKeys,
		RightKeys: rightKeys,
		Residual:  residual,
		out:       left.Schema().Concat(right.Schema()),
	}
}

// NewHashJoinProbeFirst builds a hash equi-join that still builds on
// left but emits right‖left. Residual is bound against that layout.
func NewHashJoinProbeFirst(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Left:           left,
		Right:          right,
		LeftKeys:       leftKeys,
		RightKeys:      rightKeys,
		Residual:       residual,
		EmitProbeFirst: true,
		out:            right.Schema().Concat(left.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *schema.Schema { return j.out }

// Open implements Operator.
func (j *HashJoin) Open(ctx *Context) error {
	j.useTable = ctx.Kernels
	if j.useTable && j.rkern == nil && j.Residual != nil {
		// Compile once, before BindParams rewrites Param slots to
		// literals; Bind refreshes the bindings on every re-Open.
		j.rkern = expr.CompilePred(j.Residual)
	}
	if j.rkern != nil {
		j.rkern.Bind(ctx.Params)
	}
	j.Residual = expr.BindParams(j.Residual, ctx.Params)
	j.table = nil
	j.probe = nil
	j.bucket = nil
	j.bpos = 0
	j.chain = -1
	j.buildRows = nil
	j.pbuf.Reset()
	j.ppos = 0
	rows, err := Drain(ctx, j.Left)
	if err != nil {
		return err
	}
	if j.useTable {
		j.buildRows = rows
		j.ht.Init(j.BuildSizeHint)
		j.heads = j.heads[:0]
		j.tails = j.tails[:0]
		if cap(j.nextRow) < len(rows) {
			j.nextRow = make([]int32, 0, len(rows))
		}
		j.nextRow = j.nextRow[:0]
		for i, r := range rows {
			j.keyBuf = r.AppendKey(j.keyBuf[:0], j.LeftKeys)
			id, added := j.ht.Insert(j.keyBuf)
			j.nextRow = append(j.nextRow, -1)
			if added {
				j.heads = append(j.heads, int32(i))
				j.tails = append(j.tails, int32(i))
			} else {
				j.nextRow[j.tails[id]] = int32(i)
				j.tails[id] = int32(i)
			}
		}
	} else {
		j.table = make(map[string][]value.Row, j.BuildSizeHint)
		for _, r := range rows {
			k := r.Key(j.LeftKeys)
			j.table[k] = append(j.table[k], r)
		}
	}
	ctx.Counter.CPUTuples += int64(len(rows))
	return j.Right.Open(ctx)
}

// residualKeep evaluates the residual over a joined row, through the
// compiled kernel when the kernel path is active so both engines run the
// same code. Callers guard on j.Residual != nil.
func (j *HashJoin) residualKeep(joined value.Row) (bool, error) {
	if j.useTable && j.rkern != nil {
		return j.rkern.EvalRow(joined)
	}
	return expr.EvalBool(j.Residual, joined)
}

// probeKey positions the bucket cursor for probe row r.
func (j *HashJoin) probeKey(r value.Row) {
	j.probe = r
	if j.useTable {
		j.keyBuf = r.AppendKey(j.keyBuf[:0], j.RightKeys)
		if id := j.ht.Lookup(j.keyBuf); id >= 0 {
			j.chain = j.heads[id]
		} else {
			j.chain = -1
		}
		return
	}
	j.bucket = j.table[r.Key(j.RightKeys)]
	j.bpos = 0
}

// hasCandidate reports whether the current bucket has unconsumed build
// rows.
func (j *HashJoin) hasCandidate() bool {
	if j.useTable {
		return j.chain >= 0
	}
	return j.bpos < len(j.bucket)
}

// nextCandidate pops the next build row of the current bucket, false
// when the bucket is exhausted.
func (j *HashJoin) nextCandidate() (value.Row, bool) {
	if j.useTable {
		if j.chain < 0 {
			return nil, false
		}
		l := j.buildRows[j.chain]
		j.chain = j.nextRow[j.chain]
		return l, true
	}
	if j.bpos >= len(j.bucket) {
		return nil, false
	}
	l := j.bucket[j.bpos]
	j.bpos++
	return l, true
}

// concat joins a build candidate with the current probe row in the
// configured layout, arena-backed on the kernel path so a steady-state
// batch pays one slab allocation per few thousand values.
func (j *HashJoin) concat(l value.Row) value.Row {
	b, p := l, j.probe
	if j.EmitProbeFirst {
		b, p = j.probe, l
	}
	if j.useTable {
		return j.arena.Concat(b, p)
	}
	return b.Concat(p)
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		l, ok := j.nextCandidate()
		if ok {
			ctx.Counter.CPUTuples++
			joined := j.concat(l)
			if j.Residual != nil {
				keep, err := j.residualKeep(joined)
				if err != nil {
					return nil, false, err
				}
				if !keep {
					continue
				}
			}
			return joined, true, nil
		}
		r, ok, err := j.Right.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		j.probeKey(r)
	}
}

// NextBatch implements BatchOperator: drain the pending bucket, then
// consume probe rows from a buffered child batch. The probe buffer is
// refilled only while dst is still empty — once the batch holds output,
// a dry buffer returns it instead of pulling more probe rows, so the
// child is never charged for rows a truncating consumer (Limit) would
// not have demanded in the row engine. Charges match Next exactly: one
// CPU operation per probe row and per bucket candidate, accumulated
// locally and flushed once per call (including before residual errors).
func (j *HashJoin) NextBatch(ctx *Context, dst *Batch, max int) error {
	var cpu int64
	defer func() { ctx.Counter.CPUTuples += cpu }()
	for {
		for j.hasCandidate() {
			if len(dst.Rows) >= max {
				return nil
			}
			l, _ := j.nextCandidate()
			cpu++
			joined := j.concat(l)
			if j.Residual != nil {
				keep, err := j.residualKeep(joined)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
			}
			dst.Rows = append(dst.Rows, joined)
		}
		if len(dst.Rows) >= max {
			return nil
		}
		if j.ppos >= len(j.pbuf.Rows) {
			if len(dst.Rows) > 0 {
				return nil
			}
			j.pbuf.Reset()
			j.ppos = 0
			if err := FillBatch(ctx, j.Right, &j.pbuf, max); err != nil {
				return err
			}
			if j.pbuf.Len() == 0 {
				return nil
			}
		}
		r := j.pbuf.Rows[j.ppos]
		j.ppos++
		cpu++
		j.probeKey(r)
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Context) error {
	j.table = nil
	j.buildRows = nil
	return j.Right.Close(ctx)
}

// MergeJoin equi-joins two inputs that it sorts on Open (charging sort
// CPU), then merges, handling duplicate key groups on both sides. An
// input already sorted on its keys ascending can be declared presorted,
// which skips that side's sort entirely — the optimizer uses this when
// a retained interesting order covers the merge keys.
type MergeJoin struct {
	Left, Right                   Operator
	LeftKeys, RightKeys           []int
	Residual                      expr.Expr
	LeftPresorted, RightPresorted bool
	out                           *schema.Schema

	lrows, rrows []value.Row
	li, ri       int
	groupL       []value.Row // current left key group
	groupRStart  int
	gi, gj       int
	inGroup      bool
}

// NewMergeJoin builds a sort-merge equi-join.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr) *MergeJoin {
	return &MergeJoin{
		Left:      left,
		Right:     right,
		LeftKeys:  leftKeys,
		RightKeys: rightKeys,
		Residual:  residual,
		out:       left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *MergeJoin) Schema() *schema.Schema { return j.out }

// NewMergeJoinPresorted builds a sort-merge equi-join that trusts the
// flagged inputs to arrive sorted on their keys ascending.
func NewMergeJoinPresorted(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr, leftPresorted, rightPresorted bool) *MergeJoin {
	j := NewMergeJoin(left, right, leftKeys, rightKeys, residual)
	j.LeftPresorted, j.RightPresorted = leftPresorted, rightPresorted
	return j
}

// mergeInput drains one side, sorting it unless declared presorted.
func mergeInput(ctx *Context, child Operator, keys []int, presorted bool) ([]value.Row, error) {
	if presorted {
		return Drain(ctx, child)
	}
	return Drain(ctx, NewSort(child, keys, nil))
}

// Open implements Operator.
func (j *MergeJoin) Open(ctx *Context) error {
	j.Residual = expr.BindParams(j.Residual, ctx.Params)
	var err error
	j.lrows, err = mergeInput(ctx, j.Left, j.LeftKeys, j.LeftPresorted)
	if err != nil {
		return err
	}
	j.rrows, err = mergeInput(ctx, j.Right, j.RightKeys, j.RightPresorted)
	if err != nil {
		return err
	}
	j.li, j.ri = 0, 0
	j.groupL = nil
	j.groupRStart = 0
	j.gi, j.gj = 0, 0
	j.inGroup = false
	return nil
}

func keyCompare(a, b value.Row, ak, bk []int) int {
	for i := range ak {
		c := value.Compare(a[ak[i]], b[bk[i]])
		if c != 0 {
			return c
		}
	}
	return 0
}

// Next implements Operator.
func (j *MergeJoin) Next(ctx *Context) (value.Row, bool, error) {
	for {
		if j.inGroup {
			if j.gi < len(j.groupL) {
				rIdx := j.groupRStart + j.gj
				if rIdx < len(j.rrows) && keyCompare(j.groupL[0], j.rrows[rIdx], j.LeftKeys, j.RightKeys) == 0 {
					ctx.Counter.CPUTuples++
					joined := j.groupL[j.gi].Concat(j.rrows[rIdx])
					j.gj++
					if j.Residual != nil {
						keep, err := expr.EvalBool(j.Residual, joined)
						if err != nil {
							return nil, false, err
						}
						if !keep {
							continue
						}
					}
					return joined, true, nil
				}
				// Exhausted right group for this left row; advance left row.
				j.gi++
				j.gj = 0
				continue
			}
			// Group done: move right cursor past the group, leave left as is.
			for j.groupRStart < len(j.rrows) &&
				keyCompare(j.groupL[0], j.rrows[j.groupRStart], j.LeftKeys, j.RightKeys) == 0 {
				j.groupRStart++
			}
			j.ri = j.groupRStart
			j.inGroup = false
		}
		if j.li >= len(j.lrows) || j.ri >= len(j.rrows) {
			return nil, false, nil
		}
		ctx.Counter.CPUTuples++
		c := keyCompare(j.lrows[j.li], j.rrows[j.ri], j.LeftKeys, j.RightKeys)
		switch {
		case c < 0:
			j.li++
		case c > 0:
			j.ri++
		default:
			// Collect the left group sharing this key.
			start := j.li
			for j.li < len(j.lrows) &&
				keyCompare(j.lrows[start], j.lrows[j.li], j.LeftKeys, j.LeftKeys) == 0 {
				j.li++
			}
			j.groupL = j.lrows[start:j.li]
			j.groupRStart = j.ri
			j.gi, j.gj = 0, 0
			j.inGroup = true
		}
	}
}

// Close implements Operator.
func (j *MergeJoin) Close(*Context) error {
	j.lrows, j.rrows = nil, nil
	return nil
}

// IndexNLJoin drives an index-nested-loops join: for every outer row it
// probes a hash index on the inner stored table. Each probe charges one
// page read (the index) plus one page read per distinct data page holding
// matches. This is the "repeated probe" row of the paper's Fig 6 taxonomy
// for stored relations.
type IndexNLJoin struct {
	Outer       Operator
	Table       *storage.Table
	Index       *storage.HashIndex
	OuterKeyIdx []int     // key columns within the outer row, aligned with Index.Cols()
	Residual    expr.Expr // bound against Outer.Schema().Concat(inner schema)
	InnerAlias  string
	out         *schema.Schema
	innerSch    *schema.Schema
	cur         value.Row
	ids         []int
	pos         int
	done        bool
}

// NewIndexNLJoin builds an index nested-loops join.
func NewIndexNLJoin(outer Operator, t *storage.Table, ix *storage.HashIndex, outerKeyIdx []int, residual expr.Expr, innerAlias string) *IndexNLJoin {
	is := t.Schema()
	if innerAlias != "" {
		is = is.Rename(innerAlias)
	}
	return &IndexNLJoin{
		Outer:       outer,
		Table:       t,
		Index:       ix,
		OuterKeyIdx: outerKeyIdx,
		Residual:    residual,
		InnerAlias:  innerAlias,
		innerSch:    is,
		out:         outer.Schema().Concat(is),
	}
}

// Schema implements Operator.
func (j *IndexNLJoin) Schema() *schema.Schema { return j.out }

// Open implements Operator.
func (j *IndexNLJoin) Open(ctx *Context) error {
	j.Residual = expr.BindParams(j.Residual, ctx.Params)
	j.cur = nil
	j.ids = nil
	j.pos = 0
	j.done = false
	return j.Outer.Open(ctx)
}

// Next implements Operator.
func (j *IndexNLJoin) Next(ctx *Context) (value.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if j.cur == nil {
			r, ok, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = r
			ctx.Counter.PageReads++ // index probe
			j.ids = j.Index.LookupRow(r, j.OuterKeyIdx)
			ctx.Counter.PageReads += int64(storage.ProbePages(j.ids, j.Table.RowsPerPage()))
			j.pos = 0
		}
		if j.pos >= len(j.ids) {
			j.cur = nil
			continue
		}
		inner := j.Table.Row(j.ids[j.pos])
		j.pos++
		ctx.Counter.CPUTuples++
		joined := j.cur.Concat(inner)
		if j.Residual != nil {
			keep, err := expr.EvalBool(j.Residual, joined)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements Operator.
func (j *IndexNLJoin) Close(ctx *Context) error { return j.Outer.Close(ctx) }

// ParallelHashJoin is the partitioned parallel build+probe path of
// HashJoin: both inputs are drained in the calling context (so their own
// operators charge normally), then hash-partitioned on the co-partition
// keys across DOP workers. Each worker builds a private hash table over
// its build partition and probes it with its probe partition, charging a
// private worker counter exactly the units the serial HashJoin charges —
// one CPU operation per build row inserted, per probe row consumed, and
// per bucket candidate inspected. Partitioning, worker spawn, and the
// merge charge nothing (coordination is cost-free by convention), so the
// merged totals equal a serial HashJoin run over the same inputs.
//
// Output order is identical to the serial HashJoin's: a probe row's key
// partition contains every build row of that key in build order, workers
// tag each match with its probe row's ordinal, and the ordinal merge
// (ordinals ascend within a partition and are disjoint across
// partitions) restores probe order exactly. The join therefore preserves
// the probe side's physical ordering exactly like its serial form.
type ParallelHashJoin struct {
	Left, Right         Operator // Left is the build side, Right the probe side
	LeftKeys, RightKeys []int
	Residual            expr.Expr
	EmitProbeFirst      bool
	BuildSizeHint       int
	DOP                 int
	out                 *schema.Schema
	results             []value.Row
	pos                 int
	rkern               *expr.Pred // compiled residual; EvalRow is read-only and worker-safe
}

// NewParallelHashJoin builds a partitioned hash equi-join with dop
// workers; left is the build side and the output layout is left‖right.
func NewParallelHashJoin(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr, dop int) *ParallelHashJoin {
	return &ParallelHashJoin{
		Left:      left,
		Right:     right,
		LeftKeys:  leftKeys,
		RightKeys: rightKeys,
		Residual:  residual,
		DOP:       clampDOP(dop),
		out:       left.Schema().Concat(right.Schema()),
	}
}

// NewParallelHashJoinProbeFirst is the partitioned parallel counterpart
// of NewHashJoinProbeFirst: builds on left, emits right‖left.
func NewParallelHashJoinProbeFirst(left, right Operator, leftKeys, rightKeys []int, residual expr.Expr, dop int) *ParallelHashJoin {
	j := NewParallelHashJoin(left, right, leftKeys, rightKeys, residual, dop)
	j.EmitProbeFirst = true
	j.out = right.Schema().Concat(left.Schema())
	return j
}

// Schema implements Operator.
func (j *ParallelHashJoin) Schema() *schema.Schema { return j.out }

// joinWorker builds this worker's hash table and probes it, charging the
// worker context the serial HashJoin's per-row units (accumulated
// locally and flushed once per worker — exact, since the components are
// int64). Output rows are tagged with their probe ordinal so the merge
// can restore probe order; each ordinal belongs to exactly one worker.
func (j *ParallelHashJoin) joinWorker(wctx *Context, build []value.Row, probe []value.Row, probeOrds []int) ([]taggedRow, error) {
	if wctx.Kernels {
		return j.joinWorkerTable(wctx, build, probe, probeOrds)
	}
	var cpu int64
	defer func() { wctx.Counter.CPUTuples += cpu }()
	hint := 0
	if j.BuildSizeHint > 0 {
		hint = j.BuildSizeHint/clampDOP(j.DOP) + 1
	}
	table := make(map[string][]value.Row, hint)
	for _, r := range build {
		cpu++
		k := r.Key(j.LeftKeys)
		table[k] = append(table[k], r)
	}
	var out []taggedRow
	for i, r := range probe {
		if err := wctx.Err(); err != nil {
			return out, err
		}
		cpu++
		bucket := table[r.Key(j.RightKeys)]
		for _, l := range bucket {
			cpu++
			var joined value.Row
			if j.EmitProbeFirst {
				joined = r.Concat(l)
			} else {
				joined = l.Concat(r)
			}
			if j.Residual != nil {
				keep, err := expr.EvalBool(j.Residual, joined)
				if err != nil {
					return out, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, taggedRow{ord: probeOrds[i], row: joined})
		}
	}
	return out, nil
}

// joinWorkerTable is the kernel-path worker: a worker-private RowTable
// with bucket chains over the build partition, one key scratch buffer,
// and an arena for joined rows. Charges are identical to the map path —
// one CPU operation per build row, per probe row, per bucket candidate.
// The shared compiled residual is only read (EvalRow holds no scratch),
// so workers may evaluate it concurrently.
func (j *ParallelHashJoin) joinWorkerTable(wctx *Context, build []value.Row, probe []value.Row, probeOrds []int) ([]taggedRow, error) {
	var cpu int64
	defer func() { wctx.Counter.CPUTuples += cpu }()
	hint := 0
	if j.BuildSizeHint > 0 {
		hint = j.BuildSizeHint/clampDOP(j.DOP) + 1
	}
	var ht RowTable
	ht.Init(hint)
	var heads, tails []int32
	nextRow := make([]int32, 0, len(build))
	var keyBuf []byte
	var arena value.RowArena
	for i, r := range build {
		cpu++
		keyBuf = r.AppendKey(keyBuf[:0], j.LeftKeys)
		id, added := ht.Insert(keyBuf)
		nextRow = append(nextRow, -1)
		if added {
			heads = append(heads, int32(i))
			tails = append(tails, int32(i))
		} else {
			nextRow[tails[id]] = int32(i)
			tails[id] = int32(i)
		}
	}
	var out []taggedRow
	for i, r := range probe {
		if err := wctx.Err(); err != nil {
			return out, err
		}
		cpu++
		keyBuf = r.AppendKey(keyBuf[:0], j.RightKeys)
		chain := int32(-1)
		if id := ht.Lookup(keyBuf); id >= 0 {
			chain = heads[id]
		}
		for chain >= 0 {
			l := build[chain]
			chain = nextRow[chain]
			cpu++
			var joined value.Row
			if j.EmitProbeFirst {
				joined = arena.Concat(r, l)
			} else {
				joined = arena.Concat(l, r)
			}
			if j.Residual != nil {
				keep, err := j.rkern.EvalRow(joined)
				if err != nil {
					return out, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, taggedRow{ord: probeOrds[i], row: joined})
		}
	}
	return out, nil
}

// Open implements Operator: drain both children in the calling context,
// co-partition on the join keys, fan out, absorb worker counters, and
// assemble the output in probe order.
func (j *ParallelHashJoin) Open(ctx *Context) error {
	if ctx.Kernels && j.rkern == nil && j.Residual != nil {
		j.rkern = expr.CompilePred(j.Residual)
	}
	if j.rkern != nil {
		j.rkern.Bind(ctx.Params) // before worker fan-out
	}
	j.Residual = expr.BindParams(j.Residual, ctx.Params) // before worker fan-out
	j.results = nil
	j.pos = 0
	buildRows, err := Drain(ctx, j.Left)
	if err != nil {
		return err
	}
	probeRows, err := Drain(ctx, j.Right)
	if err != nil {
		return err
	}
	dop := clampDOP(j.DOP)
	buildParts := partitionRows(buildRows, j.LeftKeys, dop)
	probeParts := make([][]value.Row, dop)
	probeOrds := make([][]int, dop)
	for ord, r := range probeRows {
		w := partitionOf(r, j.RightKeys, dop)
		probeParts[w] = append(probeParts[w], r)
		probeOrds[w] = append(probeOrds[w], ord)
	}
	outs := make([][]taggedRow, dop)
	wctxs := make([]*Context, dop)
	errs := make([]error, dop)
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		if len(probeParts[w]) == 0 && len(buildParts[w]) == 0 {
			continue
		}
		wctxs[w] = NewWorkerContext(ctx)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = j.joinWorker(wctxs[w], buildParts[w], probeParts[w], probeOrds[w])
		}(w)
	}
	wg.Wait()
	for w := 0; w < dop; w++ {
		if wctxs[w] != nil {
			ctx.Absorb(wctxs[w])
		}
		err = errors.Join(err, errs[w])
	}
	if err != nil {
		return err
	}
	j.results = mergeByOrdinal(outs)
	return nil
}

// Next implements Operator. All join work was charged by the workers in
// Open; emitting the assembled rows is coordination and charges nothing.
func (j *ParallelHashJoin) Next(*Context) (value.Row, bool, error) {
	if j.pos >= len(j.results) {
		return nil, false, nil
	}
	r := j.results[j.pos]
	j.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: emit the assembled rows a morsel
// at a time. Like Next, emission is coordination and charges nothing.
func (j *ParallelHashJoin) NextBatch(_ *Context, dst *Batch, max int) error {
	n := min(max, len(j.results)-j.pos)
	if n <= 0 {
		return nil
	}
	dst.Rows = append(dst.Rows, j.results[j.pos:j.pos+n]...)
	j.pos += n
	return nil
}

// Close implements Operator.
func (j *ParallelHashJoin) Close(*Context) error {
	j.results = nil
	return nil
}
