package exec

import (
	"testing"

	"filterjoin/internal/expr"
)

// benchEngines is the interpreted-vs-compiled axis every kernel
// benchmark sweeps; allocs/op under -benchmem is the number the CI
// bench smoke watches alongside the TestAllocBudget gate.
var benchEngines = []struct {
	name    string
	kernels bool
}{{"interp", false}, {"kernels", true}}

func benchDrain(b *testing.B, mk func(b *testing.B) Operator, kernels bool) {
	op := mk(b)
	ctx := NewContext()
	ctx.Kernels = kernels
	ctx.BatchSize = DefaultBatchSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(ctx, op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectBatch(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng.name, func(b *testing.B) {
			benchDrain(b, func(b *testing.B) Operator {
				pred := expr.NewAnd(
					expr.NewCmp(expr.LT, expr.NewCol(1, "v"), expr.Int(25)),
					expr.NewCmp(expr.GE, expr.NewCol(0, "k"), expr.Int(3)),
				)
				return NewSelect(allocTable(b, "t", 50_000), pred)
			}, eng.kernels)
		})
	}
}

func BenchmarkHashJoinBatch(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng.name, func(b *testing.B) {
			benchDrain(b, func(b *testing.B) Operator {
				return NewHashJoin(allocTable(b, "b", 4096), allocTable(b, "p", 50_000),
					[]int{0}, []int{0}, nil)
			}, eng.kernels)
		})
	}
}

func BenchmarkGroupByBatch(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng.name, func(b *testing.B) {
			benchDrain(b, func(b *testing.B) Operator {
				return NewGroupBy(allocTable(b, "g", 50_000), []int{0},
					[]expr.AggSpec{{Kind: expr.AggCount, Name: "c"}})
			}, eng.kernels)
		})
	}
}
