package exec

import (
	"sort"
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func intTable(t testing.TB, name string, cols []string, rows [][]int64) *storage.Table {
	t.Helper()
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		sc[i] = schema.Column{Table: name, Name: c, Type: value.KindInt}
	}
	tb := storage.NewTable(name, schema.New(sc...))
	for _, r := range rows {
		vr := make(value.Row, len(r))
		for i, v := range r {
			vr[i] = value.NewInt(v)
		}
		if err := tb.Insert(vr); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func drain(t testing.TB, op Operator) ([]value.Row, cost.Counter) {
	t.Helper()
	ctx := NewContext()
	rows, err := Drain(ctx, op)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows, *ctx.Counter
}

func canon(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestTableScanChargesExactPages(t *testing.T) {
	rows := make([][]int64, 1000)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i * 2)}
	}
	tb := intTable(t, "t", []string{"a", "b"}, rows)
	got, c := drain(t, NewTableScan(tb, ""))
	if len(got) != 1000 {
		t.Fatalf("rows = %d", len(got))
	}
	if c.PageReads != int64(tb.NumPages()) {
		t.Errorf("PageReads = %d, want %d", c.PageReads, tb.NumPages())
	}
	if c.CPUTuples != 1000 {
		t.Errorf("CPUTuples = %d", c.CPUTuples)
	}
}

func TestTableScanAlias(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}})
	s := NewTableScan(tb, "X")
	if s.Schema().Col(0).Table != "X" {
		t.Error("alias not applied")
	}
}

func TestTableScanRestartable(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}})
	s := NewTableScan(tb, "")
	r1, _ := drain(t, s)
	r2, _ := drain(t, s)
	if len(r1) != 2 || len(r2) != 2 {
		t.Error("scan must be restartable")
	}
}

func TestSelect(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}, {3}, {4}})
	pred := expr.NewCmp(expr.GT, expr.NewCol(0, "a"), expr.Int(2))
	rows, c := drain(t, NewSelect(NewTableScan(tb, ""), pred))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Select charges one CPU op per evaluated row on top of the scan.
	if c.CPUTuples != 4+4 {
		t.Errorf("CPUTuples = %d", c.CPUTuples)
	}
}

func TestProject(t *testing.T) {
	tb := intTable(t, "t", []string{"a", "b"}, [][]int64{{1, 10}, {2, 20}})
	exprs := []expr.Expr{
		expr.Arith{Op: expr.Add, L: expr.NewCol(0, "a"), R: expr.NewCol(1, "b")},
	}
	out := schema.New(schema.Column{Name: "sum", Type: value.KindInt})
	rows, _ := drain(t, NewProject(NewTableScan(tb, ""), exprs, out))
	if rows[0][0].Int() != 11 || rows[1][0].Int() != 22 {
		t.Errorf("project results: %v", rows)
	}
}

func TestColumnProject(t *testing.T) {
	tb := intTable(t, "t", []string{"a", "b", "c"}, [][]int64{{1, 2, 3}})
	p := NewColumnProject(NewTableScan(tb, ""), []int{2, 0})
	rows, _ := drain(t, p)
	if rows[0][0].Int() != 3 || rows[0][1].Int() != 1 {
		t.Errorf("column project: %v", rows[0])
	}
	if p.Schema().Col(0).Name != "c" {
		t.Error("projected schema wrong")
	}
}

func TestDistinct(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}, {1}, {3}, {2}})
	rows, _ := drain(t, NewDistinct(NewTableScan(tb, "")))
	if len(rows) != 3 {
		t.Errorf("distinct rows = %d", len(rows))
	}
	// Restart must reset the seen-set.
	op := NewDistinct(NewTableScan(tb, ""))
	r1, _ := drain(t, op)
	r2, _ := drain(t, op)
	if len(r1) != 3 || len(r2) != 3 {
		t.Error("distinct must reset on re-open")
	}
}

func TestSortOrders(t *testing.T) {
	tb := intTable(t, "t", []string{"a", "b"}, [][]int64{{3, 1}, {1, 2}, {2, 3}, {1, 1}})
	rows, _ := drain(t, NewSort(NewTableScan(tb, ""), []int{0, 1}, nil))
	want := []int64{1, 1, 2, 3}
	for i, r := range rows {
		if r[0].Int() != want[i] {
			t.Fatalf("sort order wrong at %d: %v", i, rows)
		}
	}
	if rows[0][1].Int() != 1 || rows[1][1].Int() != 2 {
		t.Error("secondary key not respected")
	}
	desc, _ := drain(t, NewSort(NewTableScan(tb, ""), []int{0}, []bool{true}))
	if desc[0][0].Int() != 3 {
		t.Error("descending sort wrong")
	}
}

func TestLimit(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}, {3}})
	rows, _ := drain(t, NewLimit(NewTableScan(tb, ""), 2))
	if len(rows) != 2 {
		t.Errorf("limit rows = %d", len(rows))
	}
}

func TestMaterializeChargesOnceAndScansCheap(t *testing.T) {
	rows := make([][]int64, 600)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	tb := intTable(t, "t", []string{"a"}, rows)
	mat := NewMaterialize(NewTableScan(tb, ""), "tmp")
	ctx := NewContext()
	// First open: build (reads source, writes pages) + scan (reads back).
	r1, err := Drain(ctx, mat)
	if err != nil {
		t.Fatal(err)
	}
	firstCost := *ctx.Counter
	if len(r1) != 600 {
		t.Fatal("wrong row count")
	}
	if firstCost.PageWrites == 0 {
		t.Error("materialize must charge writes on build")
	}
	// Second open: only the cached scan.
	ctx2 := NewContext()
	if _, err := Drain(ctx2, mat); err != nil {
		t.Fatal(err)
	}
	if ctx2.Counter.PageWrites != 0 {
		t.Error("re-scan must not write")
	}
	if ctx2.Counter.PageReads >= firstCost.PageReads {
		t.Error("re-scan should be cheaper than build+scan")
	}
	if mat.Built() == nil {
		t.Error("Built() should expose the table after Open")
	}
}

func TestValuesOperator(t *testing.T) {
	s := schema.New(schema.Column{Name: "x", Type: value.KindInt})
	v := NewValues(s, []value.Row{{value.NewInt(1)}, {value.NewInt(2)}})
	rows, c := drain(t, v)
	if len(rows) != 2 || c.CPUTuples != 2 {
		t.Errorf("values: %d rows, %d cpu", len(rows), c.CPUTuples)
	}
}

func TestErrorOperator(t *testing.T) {
	e := Error(schema.New(), errTest)
	ctx := NewContext()
	if err := e.Open(ctx); err == nil {
		t.Error("Error operator must fail at Open")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestCountHelper(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}})
	ctx := NewContext()
	n, err := Count(ctx, NewTableScan(tb, ""))
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestIndexLookupOperator(t *testing.T) {
	tb := intTable(t, "t", []string{"k", "v"}, [][]int64{{1, 10}, {2, 20}, {1, 30}})
	ix, err := tb.CreateIndex("i", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	l := NewIndexLookup(tb, ix, value.Row{value.NewInt(1)}, "")
	rows, c := drain(t, l)
	if len(rows) != 2 {
		t.Fatalf("lookup rows = %d", len(rows))
	}
	if c.PageReads < 2 { // index probe + at least one data page
		t.Errorf("PageReads = %d", c.PageReads)
	}
}
