// Batch-at-a-time execution. The row engine's per-row Next calls cost a
// virtual dispatch, two instrumentation brackets, and a counter store per
// row per operator; at depth d a pipeline pays that d times per row. The
// batch engine amortizes all three: operators exchange morsel-sized
// slices of rows through NextBatch, charge the execution counter once
// per batch with locally accumulated deltas, and cross instrumentation
// brackets once per batch.
//
// Parity discipline (DESIGN.md §11): the batch engine must reproduce the
// row engine's cost.Counter totals bit for bit, per operator. Three rules
// guarantee it:
//
//   - Same units. A batch implementation charges exactly the per-page
//     and per-row units its row form charges — accumulated in int64
//     locals and flushed once per batch, which is exact because counter
//     components are int64 and integer addition is associative.
//   - Flush before every return. An evaluation error mid-batch flushes
//     the charges accrued so far (including the failing row's, mirroring
//     operators that charge before evaluating) before propagating.
//   - Demand-bounded consumption. A streaming operator asks its child
//     for at most the output budget it was given, pipeline breakers
//     drain children at the context batch size (they consume to end of
//     stream in both engines, so granularity cannot change totals), and
//     Limit demands rows singly — reproducing the row engine's
//     on-demand consumption exactly even when it truncates mid-stream.
//
// Operators that stay row-at-a-time (nested-loops and merge joins, the
// remote operators in dist, run-time Filter Join internals) compose
// through FillBatch's row shim: they keep charging per row, and because
// they pull their subtrees via Next in both engines, any network sends
// they issue keep their exact global order — which is what makes chaos
// fault schedules replay identically under both engines.
package exec

import (
	"os"
	"strconv"
	"sync"

	"filterjoin/internal/value"
)

// DefaultBatchSize is the morsel size used when no knob overrides it:
// large enough to amortize per-batch overhead to noise, small enough to
// keep a batch of row headers in cache.
const DefaultBatchSize = 1024

// envBatchSize parses the FILTERJOIN_BATCH environment variable once.
var envBatchSize = sync.OnceValue(func() int {
	if s := os.Getenv("FILTERJOIN_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return DefaultBatchSize
})

// EnvBatchSize returns the process-wide default batch size: the value of
// FILTERJOIN_BATCH when set to a positive integer (1 selects the
// row-at-a-time engine), else DefaultBatchSize. CI runs the full suite
// at both 1 and 1024 to keep the engines interchangeable.
func EnvBatchSize() int { return envBatchSize() }

// envKernels parses the FILTERJOIN_KERNELS environment variable once.
var envKernels = sync.OnceValue(func() bool {
	switch os.Getenv("FILTERJOIN_KERNELS") {
	case "0", "off", "false":
		return false
	}
	return true
})

// EnvKernels returns the process-wide default for the vectorized
// evaluation layer: on unless FILTERJOIN_KERNELS is set to 0/off/false.
// Both settings produce bit-identical rows and counters; the knob exists
// for ablation and differential testing.
func EnvKernels() bool { return envKernels() }

// Batch is the unit of exchange between batch-aware operators: a
// reusable carrier of up to one morsel of rows. The protocol:
//
//   - The caller Resets dst before every pull and passes a budget
//     max >= 1; the operator appends at most max rows.
//   - An empty dst after a nil-error return means end of stream. A
//     partial batch does NOT: filtering operators return early rather
//     than stall on a long run of non-qualifying rows.
//   - Rows appended to a batch are owned by the consumer until the next
//     Reset; operators never retain aliases into a caller's batch.
type Batch struct {
	Rows []value.Row
}

// NewBatch returns a batch with capacity for n rows.
func NewBatch(n int) Batch { return Batch{Rows: make([]value.Row, 0, n)} }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Reset empties the batch, keeping its storage for reuse.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Append adds one row.
func (b *Batch) Append(r value.Row) { b.Rows = append(b.Rows, r) }

// BatchOperator is implemented by operators with a native batch path.
// Operators without one still compose through FillBatch's row shim.
type BatchOperator interface {
	Operator
	// NextBatch appends up to max rows to dst (which the caller has
	// Reset). dst left empty signals end of stream.
	NextBatch(ctx *Context, dst *Batch, max int) error
}

// FillBatch pulls the next batch from op into dst: natively when op
// implements BatchOperator, otherwise by looping its row Next. It is the
// compatibility shim that lets row-at-a-time operators compose inside a
// batch pipeline (and vice versa) during and after the migration.
func FillBatch(ctx *Context, op Operator, dst *Batch, max int) error {
	if bo, ok := op.(BatchOperator); ok {
		return bo.NextBatch(ctx, dst, max)
	}
	for len(dst.Rows) < max {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, ok, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		dst.Rows = append(dst.Rows, r)
	}
	return nil
}

// forEachInput streams every row of an already-open child into fn —
// batch-wise when the context batches (amortizing the per-row iterator
// dispatch pipeline breakers otherwise pay on their build inputs),
// row-wise otherwise. Charging stays with the caller's fn, so totals are
// identical either way. The first fn error stops the stream.
func forEachInput(ctx *Context, child Operator, fn func(value.Row) error) error {
	if ctx.BatchSize > 1 {
		b := NewBatch(ctx.BatchSize)
		for {
			b.Reset()
			if err := FillBatch(ctx, child, &b, ctx.BatchSize); err != nil {
				return err
			}
			if b.Len() == 0 {
				return nil
			}
			for _, r := range b.Rows {
				if err := fn(r); err != nil {
					return err
				}
			}
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, ok, err := child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}
