package exec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopNBasic(t *testing.T) {
	rows := [][]int64{{5}, {1}, {9}, {3}, {7}}
	tb := intTable(t, "t", []string{"a"}, rows)
	top := NewTopN(NewTableScan(tb, ""), 3, []int{0}, nil)
	got, _ := drain(t, top)
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	want := []int64{1, 3, 5}
	for i, r := range got {
		if r[0].Int() != want[i] {
			t.Fatalf("TopN = %v, want %v", got, want)
		}
	}
}

func TestTopNDescending(t *testing.T) {
	rows := [][]int64{{5}, {1}, {9}, {3}, {7}}
	tb := intTable(t, "t", []string{"a"}, rows)
	top := NewTopN(NewTableScan(tb, ""), 2, []int{0}, []bool{true})
	got, _ := drain(t, top)
	if got[0][0].Int() != 9 || got[1][0].Int() != 7 {
		t.Fatalf("descending TopN = %v", got)
	}
}

func TestTopNLargerThanInput(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{2}, {1}})
	top := NewTopN(NewTableScan(tb, ""), 10, []int{0}, nil)
	got, _ := drain(t, top)
	if len(got) != 2 || got[0][0].Int() != 1 {
		t.Fatalf("TopN over short input = %v", got)
	}
}

// TestTopNMatchesSortLimitProperty: TopN must equal Sort followed by
// Limit on every input.
func TestTopNMatchesSortLimitProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%20
		count := 1 + rng.Intn(200)
		rows := make([][]int64, count)
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(50)), int64(rng.Intn(100))}
		}
		tb := intTable(t, "t", []string{"a", "b"}, rows)
		desc := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
		keys := []int{0, 1}

		top := NewTopN(NewTableScan(tb, ""), n, keys, desc)
		gotTop, _ := drain(t, top)

		sl := NewLimit(NewSort(NewTableScan(tb, ""), keys, desc), n)
		gotSL, _ := drain(t, sl)

		if len(gotTop) != len(gotSL) {
			return false
		}
		for i := range gotTop {
			// Key columns must agree positionally; non-key ties may permute,
			// so compare the sort keys only.
			for k := range keys {
				if gotTop[i][keys[k]].Int() != gotSL[i][keys[k]].Int() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
