package exec

import (
	"reflect"
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/value"
)

// seqEqual compares two row sequences positionally.
func seqEqual(t *testing.T, got, want []value.Row, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %s, want %s", what, i, got[i], want[i])
		}
	}
}

// The core exchange property: a ParallelScan at any DOP produces the
// serial TableScan(+Select)'s exact row sequence and charges the exact
// same counter totals.
func TestParallelScanMatchesSerial(t *testing.T) {
	rows := make([][]int64, 997) // deliberately not page-aligned
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 7)}
	}
	tb := intTable(t, "t", []string{"a", "b"}, rows)
	pred := expr.NewCmp(expr.GT, expr.NewCol(1, "b"), expr.Int(3))

	serialRows, serialCost := drain(t, NewTableScan(tb, ""))
	serialSelRows, serialSelCost := drain(t, NewSelect(NewTableScan(tb, ""), pred))

	for _, dop := range []int{1, 2, 3, 4, 8, 64} {
		gotRows, gotCost := drain(t, NewParallelScan(tb, "", dop, nil))
		seqEqual(t, gotRows, serialRows, "plain scan")
		if gotCost != serialCost {
			t.Errorf("dop=%d: scan cost %s, want serial %s", dop, gotCost.String(), serialCost.String())
		}
		gotRows, gotCost = drain(t, NewParallelScan(tb, "", dop, pred))
		seqEqual(t, gotRows, serialSelRows, "predicated scan")
		if gotCost != serialSelCost {
			t.Errorf("dop=%d: predicated scan cost %s, want serial %s", dop, gotCost.String(), serialSelCost.String())
		}
	}
}

func TestParallelScanRestartableAndAlias(t *testing.T) {
	tb := intTable(t, "t", []string{"a"}, [][]int64{{1}, {2}, {3}})
	s := NewParallelScan(tb, "X", 2, nil)
	if s.Schema().Col(0).Table != "X" {
		t.Error("alias not applied")
	}
	r1, _ := drain(t, s)
	r2, _ := drain(t, s)
	if len(r1) != 3 || len(r2) != 3 {
		t.Errorf("parallel scan must be restartable: %d then %d rows", len(r1), len(r2))
	}
}

// Partition+Gather running a Select pipeline per worker must equal the
// serial Select in multiset and counters; the order-preserving variant
// must reproduce the serial sequence exactly.
func TestGatherMatchesSerialSelect(t *testing.T) {
	rows := make([][]int64, 500)
	for i := range rows {
		rows[i] = []int64{int64(i % 13), int64(i)}
	}
	tb := intTable(t, "t", []string{"k", "v"}, rows)
	pred := expr.NewCmp(expr.GT, expr.NewCol(1, "v"), expr.Int(99))
	serialRows, serialCost := drain(t, NewSelect(NewTableScan(tb, ""), pred))

	for _, dop := range []int{1, 2, 4, 7} {
		build := func(part int, in Operator) Operator { return NewSelect(in, pred) }

		p := NewPartition(NewTableScan(tb, ""), []int{0}, dop)
		gotRows, gotCost := drain(t, NewGather(p, build))
		if !reflect.DeepEqual(canon(gotRows), canon(serialRows)) {
			t.Errorf("dop=%d: Gather multiset differs from serial Select", dop)
		}
		if gotCost != serialCost {
			t.Errorf("dop=%d: Gather cost %s, want serial %s", dop, gotCost.String(), serialCost.String())
		}

		p = NewPartition(NewTableScan(tb, ""), []int{0}, dop)
		gotRows, gotCost = drain(t, NewGatherMerge(p, build))
		seqEqual(t, gotRows, serialRows, "GatherMerge")
		if gotCost != serialCost {
			t.Errorf("dop=%d: GatherMerge cost %s, want serial %s", dop, gotCost.String(), serialCost.String())
		}
	}
}

// An identity Gather (nil build) is a pure exchange: same rows, and the
// only charges are the child's own.
func TestGatherIdentity(t *testing.T) {
	tb := intTable(t, "t", []string{"k"}, [][]int64{{3}, {1}, {2}, {1}, {3}})
	serialRows, serialCost := drain(t, NewTableScan(tb, ""))
	p := NewPartition(NewTableScan(tb, ""), []int{0}, 3)
	gotRows, gotCost := drain(t, NewGatherMerge(p, nil))
	seqEqual(t, gotRows, serialRows, "identity exchange")
	if gotCost != serialCost {
		t.Errorf("identity exchange cost %s, want %s", gotCost.String(), serialCost.String())
	}
}

func join2Tables(t *testing.T) (build, probe func() Operator) {
	t.Helper()
	lrows := make([][]int64, 200)
	for i := range lrows {
		lrows[i] = []int64{int64(i % 17), int64(i)}
	}
	rrows := make([][]int64, 300)
	for i := range rrows {
		rrows[i] = []int64{int64(i % 23), int64(-i)}
	}
	lt := intTable(t, "l", []string{"k", "lv"}, lrows)
	rt := intTable(t, "r", []string{"k", "rv"}, rrows)
	return func() Operator { return NewTableScan(lt, "") },
		func() Operator { return NewTableScan(rt, "") }
}

// The partitioned parallel hash join must reproduce the serial hash
// join's exact output sequence (probe order) and counter totals, in both
// emit layouts, with and without a residual predicate.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	mkBuild, mkProbe := join2Tables(t)
	res := expr.NewCmp(expr.GT, expr.NewCol(1, "rv"), expr.NewCol(3, "lv")) // probe‖build layout

	serialRows, serialCost := drain(t, NewHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, nil))
	serialResRows, serialResCost := drain(t, NewHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, res))
	serialBPRows, serialBPCost := drain(t, NewHashJoin(mkBuild(), mkProbe(), []int{0}, []int{0}, nil))

	for _, dop := range []int{1, 2, 4, 8} {
		gotRows, gotCost := drain(t, NewParallelHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, nil, dop))
		seqEqual(t, gotRows, serialRows, "probe-first")
		if gotCost != serialCost {
			t.Errorf("dop=%d: cost %s, want serial %s", dop, gotCost.String(), serialCost.String())
		}

		gotRows, gotCost = drain(t, NewParallelHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, res, dop))
		seqEqual(t, gotRows, serialResRows, "probe-first+residual")
		if gotCost != serialResCost {
			t.Errorf("dop=%d: residual cost %s, want serial %s", dop, gotCost.String(), serialResCost.String())
		}

		gotRows, gotCost = drain(t, NewParallelHashJoin(mkBuild(), mkProbe(), []int{0}, []int{0}, nil, dop))
		seqEqual(t, gotRows, serialBPRows, "build-first")
		if gotCost != serialBPCost {
			t.Errorf("dop=%d: build-first cost %s, want serial %s", dop, gotCost.String(), serialBPCost.String())
		}
	}
}

// The size hint must never change results — only pre-size allocations.
func TestBuildSizeHintNeutral(t *testing.T) {
	mkBuild, mkProbe := join2Tables(t)
	want, wantCost := drain(t, NewHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, nil))
	hinted := NewHashJoinProbeFirst(mkBuild(), mkProbe(), []int{0}, []int{0}, nil)
	hinted.BuildSizeHint = 10_000
	got, gotCost := drain(t, hinted)
	seqEqual(t, got, want, "hinted hash join")
	if gotCost != wantCost {
		t.Errorf("hinted cost %s, want %s", gotCost.String(), wantCost.String())
	}
}

// Cost conservation through instrumentation: when exchange operators run
// inside an Instrumented bracket, the per-operator Self deltas must sum
// exactly to the root counter — worker counters are absorbed inside the
// spawning operator's bracket, so the parallel work is attributed to it.
func TestExchangeConservation(t *testing.T) {
	rows := make([][]int64, 400)
	for i := range rows {
		rows[i] = []int64{int64(i % 11), int64(i)}
	}
	tb := intTable(t, "t", []string{"k", "v"}, rows)
	pred := expr.NewCmp(expr.GT, expr.NewCol(1, "v"), expr.Int(50))
	mkBuild, mkProbe := join2Tables(t)

	cases := map[string]func() Operator{
		"parallel-scan": func() Operator {
			return NewInstrumented(NewParallelScan(tb, "", 4, pred), "ParallelScan", nil)
		},
		"gather-merge": func() Operator {
			child := NewInstrumented(NewTableScan(tb, ""), "TableScan", nil)
			p := NewPartition(child, []int{0}, 4)
			return NewInstrumented(NewGatherMerge(p, func(part int, in Operator) Operator {
				return NewSelect(in, pred)
			}), "Gather", nil)
		},
		"parallel-hash-join": func() Operator {
			l := NewInstrumented(mkBuild(), "TableScan", nil)
			r := NewInstrumented(mkProbe(), "TableScan", nil)
			return NewInstrumented(NewParallelHashJoinProbeFirst(l, r, []int{0}, []int{0}, nil, 4), "ParallelHashJoin", nil)
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			ctx := NewContext()
			if _, err := Drain(ctx, mk()); err != nil {
				t.Fatal(err)
			}
			var sum cost.Counter
			for _, s := range ctx.OperatorStats() {
				self := s.Self()
				if self.PageReads < 0 || self.PageWrites < 0 || self.CPUTuples < 0 ||
					self.NetBytes < 0 || self.NetMsgs < 0 || self.FnCalls < 0 {
					t.Errorf("operator %s charged negative Self %s", s.Label, self.String())
				}
				sum.Add(self)
			}
			if ctx.Counter.IsZero() {
				t.Error("execution charged nothing")
			}
			if sum != *ctx.Counter {
				t.Errorf("sum of Self = %s, want root counter %s", sum.String(), ctx.Counter.String())
			}
		})
	}
}
