package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"filterjoin/internal/expr"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// referenceJoin computes L ⋈ R on l[lk]==r[rk] plus residual by brute
// force, as ground truth for the join-operator property tests.
func referenceJoin(l, r []value.Row, lk, rk []int, residual expr.Expr) []value.Row {
	var out []value.Row
	for _, a := range l {
		for _, b := range r {
			match := true
			for i := range lk {
				if !value.Equal(a[lk[i]], b[rk[i]]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			joined := a.Concat(b)
			if residual != nil {
				ok, err := expr.EvalBool(residual, joined)
				if err != nil || !ok {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	return out
}

func randIntTable(t testing.TB, name string, rng *rand.Rand, n, keyRange int) *storage.Table {
	t.Helper()
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(rng.Intn(keyRange)), int64(rng.Intn(100))}
	}
	return intTable(t, name, []string{"k", "v"}, rows)
}

// residualGT is l.v > r.v over the joined layout (l.k l.v r.k r.v).
func residualGT() expr.Expr {
	return expr.NewCmp(expr.GT, expr.NewCol(1, "l.v"), expr.NewCol(3, "r.v"))
}

// TestJoinOperatorsAgreeProperty is the central executor property: every
// join algorithm must produce exactly the reference result on random
// inputs, with and without a residual predicate.
func TestJoinOperatorsAgreeProperty(t *testing.T) {
	f := func(seed int64, withResidual bool) bool {
		rng := rand.New(rand.NewSource(seed))
		lt := randIntTable(t, "l", rng, 1+rng.Intn(60), 1+rng.Intn(10))
		rt := randIntTable(t, "r", rng, 1+rng.Intn(60), 1+rng.Intn(10))
		var residual expr.Expr
		if withResidual {
			residual = residualGT()
		}
		want := canon(referenceJoin(lt.Rows(), rt.Rows(), []int{0}, []int{0}, residual))

		// Hash join (build left, emit left‖right).
		hj := NewHashJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, residual)
		got, _ := drain(t, hj)
		if !equalCanon(canon(got), want) {
			t.Logf("hash join mismatch (seed %d)", seed)
			return false
		}

		// Merge join.
		mj := NewMergeJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, residual)
		got, _ = drain(t, mj)
		if !equalCanon(canon(got), want) {
			t.Logf("merge join mismatch (seed %d)", seed)
			return false
		}

		// Nested loops with the full predicate.
		pred := expr.NewAnd(
			expr.Eq(expr.NewCol(0, "l.k"), expr.NewCol(2, "r.k")),
			orTrue(residual),
		)
		nl := NewNestedLoopJoin(NewTableScan(lt, "l"), NewMaterialize(NewTableScan(rt, "r"), "m"), pred)
		got, _ = drain(t, nl)
		if !equalCanon(canon(got), want) {
			t.Logf("nested loops mismatch (seed %d)", seed)
			return false
		}

		// Index nested loops.
		ix, err := rt.CreateIndex("rk", []int{0})
		if err != nil {
			return false
		}
		inl := NewIndexNLJoin(NewTableScan(lt, "l"), rt, ix, []int{0}, residual, "r")
		got, _ = drain(t, inl)
		if !equalCanon(canon(got), want) {
			t.Logf("index NL mismatch (seed %d)", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func orTrue(e expr.Expr) expr.Expr {
	if e == nil {
		return expr.NewLit(value.NewBool(true))
	}
	return e
}

func equalCanon(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHashJoinProbeFirstLayout(t *testing.T) {
	lt := intTable(t, "l", []string{"k", "lv"}, [][]int64{{1, 100}})
	rt := intTable(t, "r", []string{"k", "rv"}, [][]int64{{1, 200}})
	// Build on l, probe with r, emit probe-first: (r.k r.rv l.k l.lv).
	hj := NewHashJoinProbeFirst(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, nil)
	rows, _ := drain(t, hj)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].Int() != 200 || rows[0][3].Int() != 100 {
		t.Errorf("probe-first layout wrong: %v", rows[0])
	}
	if hj.Schema().Col(1).Name != "rv" {
		t.Errorf("schema layout wrong: %s", hj.Schema())
	}
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	lt := intTable(t, "l", []string{"k"}, [][]int64{{1}, {1}, {2}})
	rt := intTable(t, "r", []string{"k"}, [][]int64{{1}, {1}, {1}, {3}})
	mj := NewMergeJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, nil)
	rows, _ := drain(t, mj)
	if len(rows) != 6 { // 2 left × 3 right on key 1
		t.Errorf("duplicate-group join produced %d rows, want 6", len(rows))
	}
}

func TestNestedLoopJoinCrossProduct(t *testing.T) {
	lt := intTable(t, "l", []string{"a"}, [][]int64{{1}, {2}})
	rt := intTable(t, "r", []string{"b"}, [][]int64{{10}, {20}, {30}})
	nl := NewNestedLoopJoin(NewTableScan(lt, "l"), NewMaterialize(NewTableScan(rt, "r"), "m"), nil)
	rows, _ := drain(t, nl)
	if len(rows) != 6 {
		t.Errorf("cross product = %d rows, want 6", len(rows))
	}
}

func TestIndexNLJoinChargesProbes(t *testing.T) {
	lrows := [][]int64{{1, 0}, {2, 0}, {3, 0}}
	lt := intTable(t, "l", []string{"k", "v"}, lrows)
	rrows := make([][]int64, 100)
	for i := range rrows {
		rrows[i] = []int64{int64(i % 10), int64(i)}
	}
	rt := intTable(t, "r", []string{"k", "v"}, rrows)
	ix, _ := rt.CreateIndex("rk", []int{0})
	inl := NewIndexNLJoin(NewTableScan(lt, "l"), rt, ix, []int{0}, nil, "r")
	rows, c := drain(t, inl)
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At least one index-probe page read per outer row.
	if c.PageReads < 3 {
		t.Errorf("PageReads = %d", c.PageReads)
	}
}

func TestEmptyInputsJoins(t *testing.T) {
	lt := intTable(t, "l", []string{"k"}, nil)
	rt := intTable(t, "r", []string{"k"}, [][]int64{{1}})
	hj := NewHashJoin(NewTableScan(lt, "l"), NewTableScan(rt, "r"), []int{0}, []int{0}, nil)
	rows, _ := drain(t, hj)
	if len(rows) != 0 {
		t.Error("join with empty build side must be empty")
	}
	mj := NewMergeJoin(NewTableScan(rt, "r"), NewTableScan(lt, "l"), []int{0}, []int{0}, nil)
	rows, _ = drain(t, mj)
	if len(rows) != 0 {
		t.Error("join with empty right side must be empty")
	}
}
