package exec

import (
	"fmt"
	"time"

	"filterjoin/internal/cost"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// OpStats is the runtime profile of one instrumented operator instance:
// Volcano call counts, rows produced, wall time, and the delta of every
// cost.Counter component charged while the operator (and its subtree)
// was running. Counters and times are *inclusive* — they cover the
// operator's children too; Self/SelfWall subtract the children's share,
// so that summing Self over all operators of one execution reproduces
// the execution's root counter exactly (no double-charging, no lost
// charges).
//
// Stats accumulate across re-Opens: an inner re-opened by a
// nested-loops join keeps one OpStats whose Opens counts the restarts
// and whose Rows counts the total rows produced over all of them.
type OpStats struct {
	Label string // display label, normally the plan node kind
	Tag   any    // opaque owner handle, normally the *plan.Node

	Opens  int64
	Nexts  int64
	Closes int64
	Rows   int64 // rows produced across all Opens

	Wall      time.Duration // wall time inside this operator's calls (inclusive)
	Inclusive cost.Counter  // counter delta inside this operator's calls (inclusive)

	childWall time.Duration
	childIncl cost.Counter
}

// Self returns the counter delta charged by this operator alone,
// excluding instrumented descendants.
func (s *OpStats) Self() cost.Counter { return s.Inclusive.Diff(s.childIncl) }

// SelfWall returns the wall time spent in this operator alone,
// excluding instrumented descendants.
func (s *OpStats) SelfWall() time.Duration { return s.Wall - s.childWall }

// Merge accumulates o into s (used when one plan node was instantiated
// more than once in a single execution, e.g. a production set that is
// recomputed for the final join).
func (s *OpStats) Merge(o *OpStats) {
	s.Opens += o.Opens
	s.Nexts += o.Nexts
	s.Closes += o.Closes
	s.Rows += o.Rows
	s.Wall += o.Wall
	s.Inclusive.Add(o.Inclusive)
	s.childWall += o.childWall
	s.childIncl.Add(o.childIncl)
}

// String renders a compact one-line profile.
func (s *OpStats) String() string {
	return fmt.Sprintf("%s opens=%d rows=%d self=%s incl=%s wall=%s",
		s.Label, s.Opens, s.Rows, s.Self().String(), s.Inclusive.String(), s.Wall)
}

// Instrumented wraps an Operator with runtime accounting. Every call is
// timed, counted, and bracketed with cost.Counter snapshots; the shim
// registers itself with the execution Context on first Open, so callers
// can collect the full per-operator profile from Context.OperatorStats
// after a run. Attribution nests through the Context's shim stack:
// whatever a wrapped operator charges while running inside another
// wrapped operator's call is credited to the inner one's Inclusive and
// subtracted from the outer one's Self.
type Instrumented struct {
	Op         Operator
	stats      OpStats
	registered bool
}

// NewInstrumented wraps op. label and tag identify the operator in the
// collected profile (the planner passes the plan node kind and the node
// itself).
func NewInstrumented(op Operator, label string, tag any) *Instrumented {
	return &Instrumented{Op: op, stats: OpStats{Label: label, Tag: tag}}
}

// Stats exposes the shim's accumulated statistics.
func (in *Instrumented) Stats() *OpStats { return &in.stats }

// Unwrap returns the underlying operator.
func (in *Instrumented) Unwrap() Operator { return in.Op }

// Schema implements Operator.
func (in *Instrumented) Schema() *schema.Schema { return in.Op.Schema() }

// enter begins an instrumented call: snapshot the counter and the
// clock, and push the shim on the context's attribution stack.
func (in *Instrumented) enter(ctx *Context) (cost.Counter, time.Time) {
	if !in.registered {
		in.registered = true
		ctx.ops = append(ctx.ops, &in.stats)
	}
	ctx.stack = append(ctx.stack, in)
	return *ctx.Counter, time.Now()
}

// exit ends an instrumented call: pop the stack, accumulate the call's
// inclusive delta, and credit it to the parent shim's children share.
func (in *Instrumented) exit(ctx *Context, before cost.Counter, start time.Time) {
	d := ctx.Counter.Diff(before)
	el := time.Since(start)
	ctx.stack = ctx.stack[:len(ctx.stack)-1]
	in.stats.Inclusive.Add(d)
	in.stats.Wall += el
	if n := len(ctx.stack); n > 0 {
		p := &ctx.stack[n-1].stats
		p.childIncl.Add(d)
		p.childWall += el
	}
}

// Open implements Operator.
func (in *Instrumented) Open(ctx *Context) error {
	before, start := in.enter(ctx)
	err := in.Op.Open(ctx)
	in.stats.Opens++
	in.exit(ctx, before, start)
	return err
}

// Next implements Operator.
func (in *Instrumented) Next(ctx *Context) (value.Row, bool, error) {
	before, start := in.enter(ctx)
	r, ok, err := in.Op.Next(ctx)
	in.stats.Nexts++
	if ok {
		in.stats.Rows++
	}
	in.exit(ctx, before, start)
	return r, ok, err
}

// NextBatch implements BatchOperator: one instrumentation bracket per
// batch instead of per row — the dominant saving batch execution buys.
// Nexts counts batch pulls; Rows still counts rows, so per-operator row
// totals match the row engine. The wrapped operator runs natively when
// it has a batch path and through the row shim otherwise, so deltas
// accumulate exactly once per call regardless of mode or re-opens.
func (in *Instrumented) NextBatch(ctx *Context, dst *Batch, max int) error {
	before, start := in.enter(ctx)
	err := FillBatch(ctx, in.Op, dst, max)
	in.stats.Nexts++
	in.stats.Rows += int64(len(dst.Rows))
	in.exit(ctx, before, start)
	return err
}

// Close implements Operator.
func (in *Instrumented) Close(ctx *Context) error {
	before, start := in.enter(ctx)
	err := in.Op.Close(ctx)
	in.stats.Closes++
	in.exit(ctx, before, start)
	return err
}
