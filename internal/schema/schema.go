// Package schema describes the shape of relations: ordered, typed, and
// optionally table-qualified columns. Schemas are immutable once built;
// the algebra operations (Concat, Project, Rename) return new schemas.
package schema

import (
	"fmt"
	"strings"

	"filterjoin/internal/value"
)

// Column is a single named, typed column, optionally qualified by the
// relation (or relation alias) it came from.
type Column struct {
	Table string     // qualifier; may be empty
	Name  string     // column name
	Type  value.Kind // declared type
}

// QualifiedName returns "table.name" or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	cols []Column
}

// New builds a schema from the given columns.
func New(cols ...Column) *Schema {
	out := make([]Column, len(cols))
	copy(out, cols)
	return &Schema{cols: out}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// IndexOf resolves a possibly-qualified column reference to a column index.
// An empty table matches any qualifier as long as the name is unambiguous.
// It returns an error for unknown or ambiguous references.
func (s *Schema) IndexOf(table, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("schema: ambiguous column reference %q", refName(table, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("schema: unknown column %q", refName(table, name))
	}
	return found, nil
}

// MustIndexOf is IndexOf but panics on failure; for internal fixtures.
func (s *Schema) MustIndexOf(table, name string) int {
	i, err := s.IndexOf(table, name)
	if err != nil {
		panic(err)
	}
	return i
}

func refName(table, name string) string {
	if table == "" {
		return name
	}
	return table + "." + name
}

// Concat returns the schema of s's columns followed by t's columns.
func (s *Schema) Concat(t *Schema) *Schema {
	out := make([]Column, 0, len(s.cols)+len(t.cols))
	out = append(out, s.cols...)
	out = append(out, t.cols...)
	return &Schema{cols: out}
}

// Project returns the schema containing s's columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	out := make([]Column, len(idx))
	for i, j := range idx {
		out[i] = s.cols[j]
	}
	return &Schema{cols: out}
}

// Rename returns a copy of s with every column re-qualified to table.
func (s *Schema) Rename(table string) *Schema {
	out := make([]Column, len(s.cols))
	for i, c := range s.cols {
		c.Table = table
		out[i] = c
	}
	return &Schema{cols: out}
}

// RowWidth returns the nominal width in bytes of one row of this schema,
// used for page accounting and network shipping costs.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.cols {
		w += c.Type.Width()
	}
	if w == 0 {
		w = 1
	}
	return w
}

// String renders the schema as "(t.a int, t.b string)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}
