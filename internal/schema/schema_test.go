package schema

import (
	"strings"
	"testing"

	"filterjoin/internal/value"
)

func sample() *Schema {
	return New(
		Column{Table: "t", Name: "a", Type: value.KindInt},
		Column{Table: "t", Name: "b", Type: value.KindString},
		Column{Table: "u", Name: "a", Type: value.KindFloat},
	)
}

func TestIndexOfQualified(t *testing.T) {
	s := sample()
	if i, err := s.IndexOf("t", "a"); err != nil || i != 0 {
		t.Errorf("t.a -> %d, %v", i, err)
	}
	if i, err := s.IndexOf("u", "a"); err != nil || i != 2 {
		t.Errorf("u.a -> %d, %v", i, err)
	}
}

func TestIndexOfUnqualifiedAmbiguous(t *testing.T) {
	s := sample()
	if _, err := s.IndexOf("", "a"); err == nil {
		t.Error("unqualified 'a' is ambiguous")
	}
	if i, err := s.IndexOf("", "b"); err != nil || i != 1 {
		t.Errorf("'b' -> %d, %v", i, err)
	}
}

func TestIndexOfUnknown(t *testing.T) {
	if _, err := sample().IndexOf("t", "zzz"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := sample().IndexOf("zzz", "a"); err == nil {
		t.Error("unknown qualifier must error")
	}
}

func TestIndexOfCaseInsensitive(t *testing.T) {
	s := sample()
	if i, err := s.IndexOf("T", "B"); err != nil || i != 1 {
		t.Errorf("case-insensitive lookup failed: %d, %v", i, err)
	}
}

func TestMustIndexOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndexOf should panic on unknown column")
		}
	}()
	sample().MustIndexOf("", "nope")
}

func TestConcat(t *testing.T) {
	a := New(Column{Name: "x", Type: value.KindInt})
	b := New(Column{Name: "y", Type: value.KindBool})
	c := a.Concat(b)
	if c.Len() != 2 || c.Col(1).Name != "y" {
		t.Errorf("Concat = %s", c)
	}
	if a.Len() != 1 {
		t.Error("Concat must not mutate the receiver")
	}
}

func TestProject(t *testing.T) {
	s := sample()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "a" || p.Col(0).Table != "u" {
		t.Errorf("Project = %s", p)
	}
}

func TestRename(t *testing.T) {
	s := sample().Rename("E")
	for i := 0; i < s.Len(); i++ {
		if s.Col(i).Table != "E" {
			t.Errorf("column %d not requalified", i)
		}
	}
	if sample().Col(0).Table != "t" {
		t.Error("Rename must not mutate the original")
	}
}

func TestRowWidth(t *testing.T) {
	if w := sample().RowWidth(); w != 8+16+8 {
		t.Errorf("RowWidth = %d", w)
	}
	if w := New().RowWidth(); w < 1 {
		t.Error("empty schema width must be positive")
	}
}

func TestQualifiedName(t *testing.T) {
	c := Column{Table: "t", Name: "a"}
	if c.QualifiedName() != "t.a" {
		t.Error("qualified")
	}
	c.Table = ""
	if c.QualifiedName() != "a" {
		t.Error("unqualified")
	}
}

func TestSchemaString(t *testing.T) {
	s := New(Column{Table: "t", Name: "a", Type: value.KindInt})
	if got := s.String(); !strings.Contains(got, "t.a int") {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaEqual(t *testing.T) {
	if !sample().Equal(sample()) {
		t.Error("identical schemas must be equal")
	}
	if sample().Equal(sample().Project([]int{0})) {
		t.Error("different lengths must not be equal")
	}
	if sample().Equal(sample().Rename("z")) {
		t.Error("different qualifiers must not be equal")
	}
}
