// Plan-level observability: every node built through NewNode produces
// instrumented operator trees, and FormatAnalyze renders a plan after
// execution with estimated-vs-actual annotations per operator — the
// EXPLAIN ANALYZE view that makes the optimizer's cost model auditable.
package plan

import (
	"fmt"
	"strings"
	"time"

	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
)

// NewNode finalizes a node under construction: its Make is replaced by
// a version that wraps the built operator in an exec.Instrumented shim
// labeled with the node's kind and tagged with the node itself. Every
// plan-node constructor calls this, so any operator tree built from a
// finished plan carries per-node runtime accounting; parents that
// capture a child's Make afterwards (join candidates capture the
// outer's) compose instrumented subtrees automatically.
func NewNode(n *Node) *Node {
	if n.Make == nil {
		return n
	}
	mk := n.Make
	n.Make = func() exec.Operator { return exec.NewInstrumented(mk(), n.Kind, n) }
	return n
}

// AnalyzeOptions tunes FormatAnalyze.
type AnalyzeOptions struct {
	// ShowTime includes per-operator wall time (nondeterministic; off
	// for golden tests, on for interactive tools).
	ShowTime bool
	// ErrRatio flags operators whose estimated and actual cardinality
	// disagree by at least this factor. Values <= 1 mean the default 10.
	ErrRatio float64
}

// StatsByNode aggregates collected operator statistics by plan node.
// Nodes instantiated several times in one execution (a production set
// recomputed for the final join) get their instances merged. The second
// return value aggregates the Self cost and count of operators that
// belong to no node of this tree — sub-plans generated at run time by
// deferred planning (§4.2 magic rewrites of views).
func StatsByNode(root *Node, ops []*exec.OpStats) (map[*Node]*exec.OpStats, cost.Counter, int) {
	inTree := map[*Node]bool{}
	root.Walk(func(n *Node) { inTree[n] = true })
	byNode := map[*Node]*exec.OpStats{}
	var deferred cost.Counter
	nDeferred := 0
	for _, s := range ops {
		n, ok := s.Tag.(*Node)
		if !ok || !inTree[n] {
			deferred.Add(s.Self())
			nDeferred++
			continue
		}
		if cur, ok := byNode[n]; ok {
			cur.Merge(s)
		} else {
			cp := *s
			byNode[n] = &cp
		}
	}
	return byNode, deferred, nDeferred
}

// FormatAnalyze renders the executed plan tree, each node annotated
// with estimated vs. actual rows and cost, per-operator exclusive
// ("self") counters, and Open counts; operators whose estimate misses
// the measurement by more than the configured ratio are flagged. total
// is the execution's measured root counter; ops is the profile
// collected by the execution context.
func FormatAnalyze(root *Node, m cost.Model, ops []*exec.OpStats, total cost.Counter, opts AnalyzeOptions) string {
	if opts.ErrRatio <= 1 {
		opts.ErrRatio = 10
	}
	byNode, deferred, nDeferred := StatsByNode(root, ops)
	var b strings.Builder
	formatAnalyze(&b, root, m, byNode, opts, 0)
	if nDeferred > 0 {
		fmt.Fprintf(&b, "deferred sub-plan operators (planned at run time): %d, cost=%.2f %s\n",
			nDeferred, m.Total(deferred), deferred.String())
	}
	fmt.Fprintf(&b, "estimated cost: %.2f  (%s)\n", m.TotalEstimate(root.Est), root.Est.String())
	fmt.Fprintf(&b, "measured cost:  %.2f  (%s)\n", m.Total(total), total.String())
	return b.String()
}

func formatAnalyze(b *strings.Builder, n *Node, m cost.Model, byNode map[*Node]*exec.OpStats, opts AnalyzeOptions, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Kind)
	if n.Detail != "" {
		b.WriteString(" [")
		b.WriteString(n.Detail)
		b.WriteString("]")
	}
	ord := ""
	if s := DescribeOrdering(n.Ordering, n); s != "" {
		ord = fmt.Sprintf(", order=[%s]", s)
	}
	if n.Parallel > 1 {
		ord += fmt.Sprintf(", parallel=%d", n.Parallel)
	}
	if n.BatchSize > 1 {
		ord += fmt.Sprintf(", batch=%d", n.BatchSize)
	}
	st := byNode[n]
	if st == nil || st.Opens == 0 {
		fmt.Fprintf(b, "  (est rows=%.0f, act rows=-, est cost=%.2f%s, not executed)",
			n.Rows, m.TotalEstimate(n.Est), ord)
	} else {
		perOpen := float64(st.Rows) / float64(st.Opens)
		fmt.Fprintf(b, "  (est rows=%.0f, act rows=%d", n.Rows, st.Rows)
		if st.Opens > 1 {
			fmt.Fprintf(b, " in %d opens", st.Opens)
		}
		fmt.Fprintf(b, ", est cost=%.2f, act cost=%.2f, self=%s",
			m.TotalEstimate(n.Est), m.Total(st.Inclusive), st.Self().String())
		if opts.ShowTime {
			fmt.Fprintf(b, ", time=%s", st.Wall.Round(time.Microsecond))
		}
		b.WriteString(ord)
		b.WriteString(")")
		if r, off := misestimate(n.Rows, perOpen, opts.ErrRatio); off {
			fmt.Fprintf(b, "  [rows misestimated x%.1f]", r)
		}
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		formatAnalyze(b, c, m, byNode, opts, depth+1)
	}
}

// misestimate reports the est/act cardinality ratio when it exceeds the
// threshold. Both sides are clamped to >= 1 before dividing: a zero or
// fractional estimate against a nonzero actual must neither blow the
// ratio up to Inf/NaN nor mute the flag — "estimated nothing, got n" is
// exactly an n-fold miss. The same rule is the executor's replan trigger
// (exec.CardGuard), so the flag and the trigger agree on what a
// misestimate is.
func misestimate(est, act, ratio float64) (float64, bool) {
	return Misestimate(est, act, ratio)
}

// Misestimate is the shared misestimate rule: the est/act cardinality
// ratio, and whether it meets the threshold. Exported for the engine's
// adaptive feedback pass, which must agree with the EXPLAIN ANALYZE flag
// and the executor's replan trigger on what counts as a miss.
func Misestimate(est, act, ratio float64) (float64, bool) {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	lo, hi := est, act
	if lo > hi {
		lo, hi = hi, lo
	}
	r := hi / lo
	return r, r >= ratio
}
