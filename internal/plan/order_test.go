package plan

import "testing"

func key(desc bool, cols ...int) OrderKey { return OrderKey{Cols: cols, Desc: desc} }

func TestOrderingSatisfies(t *testing.T) {
	have := Ordering{key(false, 0, 2), key(true, 1)}
	cases := []struct {
		name string
		want Ordering
		ok   bool
	}{
		{"empty want", nil, true},
		{"exact first key", Ordering{key(false, 0)}, true},
		{"equivalent column", Ordering{key(false, 2)}, true},
		{"both keys", Ordering{key(false, 2), key(true, 1)}, true},
		{"wrong direction", Ordering{key(true, 0)}, false},
		{"wrong column", Ordering{key(false, 1)}, false},
		{"longer than have", Ordering{key(false, 0), key(true, 1), key(false, 3)}, false},
		{"second key only (not a prefix)", Ordering{key(true, 1)}, false},
	}
	for _, c := range cases {
		if got := have.Satisfies(c.want); got != c.ok {
			t.Errorf("%s: Satisfies(%v) = %v, want %v", c.name, c.want, got, c.ok)
		}
	}
	if (Ordering)(nil).Satisfies(Ordering{key(false, 0)}) {
		t.Error("nil ordering must not satisfy a non-empty want")
	}
	if !(Ordering)(nil).Satisfies(nil) {
		t.Error("nil ordering satisfies the empty want")
	}
}

func TestOrderingPrefixCovers(t *testing.T) {
	have := Ordering{key(false, 0, 2), key(true, 1)}
	cases := []struct {
		name string
		cols []int
		ok   bool
	}{
		{"empty set", nil, true},
		{"first key", []int{0}, true},
		{"first key via equivalent", []int{2}, true},
		{"both keys any direction", []int{1, 0}, true},
		{"second key alone leaves a gap", []int{1}, false},
		{"column not in the ordering", []int{3}, false},
		{"covered plus uncovered", []int{0, 3}, false},
	}
	for _, c := range cases {
		if got := have.PrefixCovers(c.cols); got != c.ok {
			t.Errorf("%s: PrefixCovers(%v) = %v, want %v", c.name, c.cols, got, c.ok)
		}
	}
}

func TestOrderingExtendEquiv(t *testing.T) {
	have := Ordering{key(false, 0), key(false, 1)}
	ext := have.ExtendEquiv([]int{0, 3}, []int{5, 6})
	if !ext[0].Has(5) {
		t.Errorf("key equated with inner column must widen: %v", ext[0])
	}
	if ext[1].Has(6) {
		t.Errorf("unrelated pair must not widen key: %v", ext[1])
	}
	// The receiver must be untouched: orderings are shared between nodes.
	if have[0].Has(5) {
		t.Error("ExtendEquiv mutated its receiver")
	}
	if got := (Ordering)(nil).ExtendEquiv([]int{0}, []int{1}); got != nil {
		t.Errorf("nil ordering extends to nil, got %v", got)
	}
}

func TestOrderingProjectTruncatesAtGap(t *testing.T) {
	have := Ordering{key(false, 0, 2), key(true, 1), key(false, 3)}
	got := have.Project(func(c int) bool { return c == 2 || c == 3 })
	// Key 0 survives via column 2; key 1 dies, so key 3 must not leak
	// through the gap (it is not a usable prefix on its own).
	if len(got) != 1 || !got[0].Has(2) || got[0].Has(0) {
		t.Errorf("Project = %v, want a single key on column 2", got)
	}
}

func TestOrderingKeyCanonical(t *testing.T) {
	if got := (Ordering{key(false, 0, 2), key(true, 7)}).Key(); got != "0=2;7 desc" {
		t.Errorf("Key() = %q", got)
	}
	if got := (Ordering)(nil).Key(); got != "" {
		t.Errorf("nil Key() = %q, want empty", got)
	}
}
