package plan

import (
	"fmt"
	"sort"
	"strings"
)

// OrderKey is one key of a physical sort order. Cols lists block-layout
// columns that are pairwise value-equal in every row of the stream (an
// equality equivalence class), so being sorted on any one of them means
// being sorted on all; Desc marks a descending key. Leaving Cols as a
// set rather than a single column lets orderings survive equi joins: a
// merge join on E.did = D.did produces rows ordered on both columns at
// once.
type OrderKey struct {
	Cols []int
	Desc bool
}

// Has reports whether col is one of the key's equivalent columns.
func (k OrderKey) Has(col int) bool {
	for _, c := range k.Cols {
		if c == col {
			return true
		}
	}
	return false
}

// intersects reports whether the two keys share a column.
func (k OrderKey) intersects(o OrderKey) bool {
	for _, c := range o.Cols {
		if k.Has(c) {
			return true
		}
	}
	return false
}

// Ordering is a physical sort-order property: rows are sorted
// lexicographically by the key sequence. A nil/empty Ordering means the
// stream carries no known order (heaps, hash output).
type Ordering []OrderKey

// Satisfies reports whether a stream with this ordering already
// delivers rows in the wanted order: want must be a prefix-wise match,
// with equal directions and at least one shared column per key.
func (have Ordering) Satisfies(want Ordering) bool {
	if len(want) > len(have) {
		return false
	}
	for i, w := range want {
		if have[i].Desc != w.Desc || !have[i].intersects(w) {
			return false
		}
	}
	return true
}

// PrefixCovers reports whether the ordering's leading keys cover the
// column set exactly: rows with equal values on cols are then adjacent
// in the stream (direction is irrelevant for grouping), which is what a
// streaming group-by needs.
func (have Ordering) PrefixCovers(cols []int) bool {
	remaining := map[int]bool{}
	for _, c := range cols {
		remaining[c] = true
	}
	if len(remaining) == 0 {
		return true
	}
	for _, k := range have {
		hit := false
		for _, c := range k.Cols {
			if remaining[c] {
				delete(remaining, c)
				hit = true
			}
		}
		if !hit {
			return false
		}
		if len(remaining) == 0 {
			return true
		}
	}
	return false
}

// ExtendEquiv widens the ordering with columns newly equated to its
// keys: for every equi pair (outerCols[i], innerCols[i]) that holds on
// the stream, an ordering key containing the outer column also orders
// the inner one. The receiver is not mutated (orderings are shared
// between plan nodes).
func (have Ordering) ExtendEquiv(outerCols, innerCols []int) Ordering {
	if len(have) == 0 || len(outerCols) == 0 {
		return have
	}
	out := make(Ordering, len(have))
	for i, k := range have {
		cols := append([]int(nil), k.Cols...)
		for j, oc := range outerCols {
			if k.Has(oc) && !containsInt(cols, innerCols[j]) {
				cols = append(cols, innerCols[j])
			}
		}
		out[i] = OrderKey{Cols: cols, Desc: k.Desc}
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Project keeps only ordering keys expressible over the given column
// set, truncating at the first key with no surviving column (order
// beyond that point is no longer a usable prefix).
func (have Ordering) Project(keep func(col int) bool) Ordering {
	var out Ordering
	for _, k := range have {
		var cols []int
		for _, c := range k.Cols {
			if keep(c) {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			break
		}
		sort.Ints(cols)
		out = append(out, OrderKey{Cols: cols, Desc: k.Desc})
	}
	return out
}

// Key renders a canonical string form ("0=4;7 desc"), usable as a memo
// bucket label: equal strings iff equal orderings (with sorted Cols).
func (have Ordering) Key() string {
	if len(have) == 0 {
		return ""
	}
	var b strings.Builder
	for i, k := range have {
		if i > 0 {
			b.WriteString(";")
		}
		for j, c := range k.Cols {
			if j > 0 {
				b.WriteString("=")
			}
			fmt.Fprintf(&b, "%d", c)
		}
		if k.Desc {
			b.WriteString(" desc")
		}
	}
	return b.String()
}

// DescribeOrdering renders an ordering for display against a node: each
// key shows the first of its columns present in the node's output (by
// qualified name), or "#col" when none is. Empty orderings render "".
func DescribeOrdering(ord Ordering, n *Node) string {
	if len(ord) == 0 {
		return ""
	}
	var parts []string
	for _, k := range ord {
		name := ""
		for _, c := range k.Cols {
			if n.ColMap != nil && c >= 0 && c < len(n.ColMap) && n.ColMap[c] >= 0 && n.ColMap[c] < n.OutSchema.Len() {
				name = n.OutSchema.Col(n.ColMap[c]).QualifiedName()
				break
			}
		}
		if name == "" && len(k.Cols) > 0 {
			name = fmt.Sprintf("#%d", k.Cols[0])
		}
		if k.Desc {
			name += " desc"
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, ", ")
}
