package plan

import (
	"math"
	"strings"
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
)

// Regression: a zero (or fractional) estimate against a nonzero actual
// must flag a finite n-fold miss, never Inf/NaN, and never mute the
// flag; the symmetric empty-actual case behaves the same.
func TestMisestimateClampsEmptyEstimate(t *testing.T) {
	cases := []struct {
		est, act, ratio float64
		wantR           float64
		wantOff         bool
	}{
		{0, 50, 10, 50, true},       // estimated nothing, got 50: a 50-fold miss
		{50, 0, 10, 50, true},       // estimated 50, got nothing
		{0.2, 50, 10, 50, true},     // fractional estimate clamps to 1, not a 250x blowup
		{0, 0, 10, 1, false},        // empty vs empty is exact
		{0, 0.5, 10, 1, false},      // both sides below one row: exact, not 0/0
		{40, 400, 10, 10, true},     // boundary: ratio met exactly
		{40, 399, 10, 9.975, false}, // just under threshold
		{40, 80, 10, 2, false},      // modest miss under threshold
	}
	for _, c := range cases {
		r, off := Misestimate(c.est, c.act, c.ratio)
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Errorf("Misestimate(%g, %g, %g) = %g: not finite", c.est, c.act, c.ratio, r)
		}
		if math.Abs(r-c.wantR) > 1e-9 || off != c.wantOff {
			t.Errorf("Misestimate(%g, %g, %g) = (%g, %t), want (%g, %t)",
				c.est, c.act, c.ratio, r, off, c.wantR, c.wantOff)
		}
	}
}

// The rendered EXPLAIN ANALYZE flag for a node with an empty estimate:
// finite factor, no Inf/NaN anywhere in the output.
func TestFormatAnalyzeEmptyEstimateNode(t *testing.T) {
	n := &Node{Kind: "Select", Detail: "empty-estimate", Rows: 0}
	ops := []*exec.OpStats{{Label: n.Kind, Tag: n, Opens: 1, Rows: 57}}
	out := FormatAnalyze(n, cost.DefaultModel(), ops, cost.Counter{}, AnalyzeOptions{})
	if !strings.Contains(out, "[rows misestimated x57.0]") {
		t.Fatalf("missing finite misestimate flag:\n%s", out)
	}
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(out, bad) {
			t.Fatalf("output contains %s:\n%s", bad, out)
		}
	}
}
