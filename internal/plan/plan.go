// Package plan defines the physical plan node the optimizer produces:
// an annotated tree carrying estimated resource consumption, estimated
// output cardinality and statistics, the output schema, a mapping from
// the query block's global column layout to the node's output positions,
// and a factory that builds a fresh executable operator tree.
package plan

import (
	"fmt"
	"strings"

	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
)

// Node is one physical plan node. Children are for display/explanation;
// the executable form is produced by Make, which must return a fresh
// operator tree on every call (so nested-loops re-execution and repeated
// runs are independent).
type Node struct {
	Kind     string // operator kind, e.g. "HashJoin", "FilterJoin"
	Detail   string // human-readable specifics (keys, predicates, choices)
	Children []*Node

	Est       cost.Estimate   // cumulative estimated resources for one execution
	Rows      float64         // estimated output cardinality
	Stats     *stats.RelStats // output statistics, aligned with OutSchema
	OutSchema *schema.Schema
	ColMap    []int        // block layout column -> output position, -1 if absent
	Rels      query.RelSet // block relations this plan covers

	// Ordering is the physical sort order the node's output is known to
	// carry (nil when unordered). Operators that stream their outer input
	// preserve it; sorts and merge joins produce it; hash aggregation
	// destroys it. The optimizer's property-aware memo keys plans by it.
	Ordering Ordering

	// Parallel is the worker count of an exchange-parallel operator
	// (ParallelScan, partitioned hash join); 0 or 1 means serial.
	Parallel int

	// BatchSize, set on a root node, is the morsel size the batch engine
	// pulls through the plan; 0 or 1 means the row-at-a-time engine.
	BatchSize int

	Make func() exec.Operator

	// Fallback, when set on a root node, is a complete alternative plan
	// for the same block that avoids per-row remote strategies
	// (fetch-matches). The executor degrades to it when the primary plan
	// aborts mid-query with a dist.SiteError after the transport's retry
	// budget is exhausted. It is a sibling tree, not a child: Walk and
	// Format do not descend into it.
	Fallback *Node

	// Source/SourcePred/SourceRows carry feedback provenance on leaf
	// access nodes (DESIGN.md §15): the stored relation the node scans,
	// the relation-local predicate it applies (nil for a full scan), and
	// the relation's raw cardinality at plan time. The adaptive layer
	// divides the node's measured output rows by SourceRows to obtain
	// the predicate's observed selectivity and feeds it back into the
	// relation's statistics. Empty/nil on derived and interior nodes.
	Source     string
	SourcePred expr.Expr
	SourceRows float64

	Extra any // method-specific annotation (e.g. Filter Join cost breakdown)
}

// Total returns the node's scalar cost under model m.
func (n *Node) Total(m cost.Model) float64 { return m.TotalEstimate(n.Est) }

// Format renders the plan tree, one node per line, with cardinality and
// cost annotations.
func Format(n *Node, m cost.Model) string {
	var b strings.Builder
	format(&b, n, m, 0)
	return b.String()
}

func format(b *strings.Builder, n *Node, m cost.Model, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Kind)
	if n.Detail != "" {
		b.WriteString(" [")
		b.WriteString(n.Detail)
		b.WriteString("]")
	}
	fmt.Fprintf(b, "  (rows=%.0f cost=%.2f", n.Rows, n.Total(m))
	if s := DescribeOrdering(n.Ordering, n); s != "" {
		fmt.Fprintf(b, " order=[%s]", s)
	}
	if n.Parallel > 1 {
		fmt.Fprintf(b, " parallel=%d", n.Parallel)
	}
	if n.BatchSize > 1 {
		fmt.Fprintf(b, " batch=%d", n.BatchSize)
	}
	b.WriteString(")\n")
	for _, c := range n.Children {
		format(b, c, m, depth+1)
	}
}

// Walk visits n and every descendant in preorder.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Find returns the first node (preorder) of the given kind, or nil.
func (n *Node) Find(kind string) *Node {
	var out *Node
	n.Walk(func(m *Node) {
		if out == nil && m.Kind == kind {
			out = m
		}
	})
	return out
}

// IdentityColMap returns the map [0..n) -> [0..n).
func IdentityColMap(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// EmptyColMap returns a map of width n with every entry -1.
func EmptyColMap(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// MergeColMaps combines an outer and inner column map for a join whose
// output is outer columns followed by inner columns. Width is the block
// layout width; innerOffset is the number of outer output columns.
func MergeColMaps(outer, inner []int, innerOffset int) []int {
	out := make([]int, len(outer))
	for i := range out {
		switch {
		case outer[i] >= 0:
			out[i] = outer[i]
		case inner[i] >= 0:
			out[i] = inner[i] + innerOffset
		default:
			out[i] = -1
		}
	}
	return out
}
