package plan

import (
	"strings"
	"testing"

	"filterjoin/internal/cost"
)

func tree() *Node {
	leaf1 := &Node{Kind: "TableScan", Detail: "A", Rows: 100, Est: cost.Estimate{PageReads: 10}}
	leaf2 := &Node{Kind: "TableScan", Detail: "B", Rows: 50, Est: cost.Estimate{PageReads: 5}}
	join := &Node{
		Kind:     "HashJoin",
		Detail:   "A.x=B.x",
		Children: []*Node{leaf1, leaf2},
		Rows:     75,
		Est:      cost.Estimate{PageReads: 15, CPUTuples: 225},
	}
	return &Node{Kind: "Project", Children: []*Node{join}, Rows: 75, Est: join.Est}
}

func TestWalkPreorder(t *testing.T) {
	var kinds []string
	tree().Walk(func(n *Node) { kinds = append(kinds, n.Kind) })
	want := "Project,HashJoin,TableScan,TableScan"
	if strings.Join(kinds, ",") != want {
		t.Errorf("Walk order = %v", kinds)
	}
}

func TestFind(t *testing.T) {
	n := tree()
	if n.Find("HashJoin") == nil {
		t.Error("Find should locate the join")
	}
	if got := n.Find("TableScan"); got == nil || got.Detail != "A" {
		t.Error("Find returns the first preorder match")
	}
	if n.Find("FilterJoin") != nil {
		t.Error("Find on a missing kind returns nil")
	}
}

func TestTotal(t *testing.T) {
	m := cost.DefaultModel()
	n := tree()
	want := 15 + 0.001*225
	if got := n.Total(m); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Total = %g, want %g", got, want)
	}
}

func TestFormat(t *testing.T) {
	out := Format(tree(), cost.DefaultModel())
	for _, want := range []string{"Project", "HashJoin [A.x=B.x]", "rows=75", "TableScan [A]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// Children are indented below parents.
	if strings.Index(out, "Project") > strings.Index(out, "HashJoin") {
		t.Error("parent must precede child")
	}
}

func TestColMapHelpers(t *testing.T) {
	id := IdentityColMap(3)
	if id[0] != 0 || id[2] != 2 {
		t.Errorf("identity = %v", id)
	}
	em := EmptyColMap(3)
	if em[0] != -1 || em[2] != -1 {
		t.Errorf("empty = %v", em)
	}
	outer := []int{0, -1, 1, -1}
	inner := []int{-1, 0, -1, 1}
	merged := MergeColMaps(outer, inner, 2)
	want := []int{0, 2, 1, 3}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged = %v, want %v", merged, want)
		}
	}
}
