// Package bloom implements the Bloom filter used as the lossy filter-set
// representation in the Filter Join (paper §3.2, §5.1, Fig 6 "LOSSY
// FILTER" row). A Bloom filter has a fixed size regardless of the filter
// set cardinality — that fixed size is exactly what makes AvailCost_F
// constant for the lossy variant — at the price of false positives that
// let extra inner tuples through.
package bloom

import (
	"math"

	"filterjoin/internal/value"
)

// Filter is a Bloom filter over row keys. Membership queries never return
// false negatives; the false-positive rate is governed by bits-per-entry
// and the number of hash functions.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	n      int    // elements added
	keyIdx []int
}

// New creates a filter sized for expectedN entries at the given
// bits-per-entry budget, hashing the key columns keyIdx of added rows.
// The optimal hash-function count k = bitsPerEntry * ln 2 is used.
func New(expectedN int, bitsPerEntry float64, keyIdx []int) *Filter {
	if expectedN < 1 {
		expectedN = 1
	}
	if bitsPerEntry < 1 {
		bitsPerEntry = 1
	}
	m := uint64(math.Ceil(float64(expectedN) * bitsPerEntry))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(bitsPerEntry * math.Ln2))
	if k < 1 {
		k = 1
	}
	idx := make([]int, len(keyIdx))
	copy(idx, keyIdx)
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		m:      m,
		k:      k,
		keyIdx: idx,
	}
}

// KeyIdx returns the key column indexes the filter hashes (do not mutate).
func (f *Filter) KeyIdx() []int { return f.keyIdx }

// SizeBytes returns the filter's wire size, the quantity AvailCost_F
// charges when the filter is shipped to a remote site.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Count returns how many entries were added.
func (f *Filter) Count() int { return f.n }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Add inserts the key of r (projected on the filter's key columns).
func (f *Filter) Add(r value.Row) {
	h1, h2 := f.hashes(r, f.keyIdx)
	for i := 0; i < f.k; i++ {
		f.setBit((h1 + uint64(i)*h2) % f.m)
	}
	f.n++
}

// AddKey inserts a key row (width == len(KeyIdx())).
func (f *Filter) AddKey(key value.Row) {
	all := identity(len(f.keyIdx))
	h1, h2 := f.hashes(key, all)
	for i := 0; i < f.k; i++ {
		f.setBit((h1 + uint64(i)*h2) % f.m)
	}
	f.n++
}

// MayContain tests whether the key of r (projected on keyIdx, which may
// differ from the build-side indexes as long as it addresses the same
// logical key) might be in the set.
func (f *Filter) MayContain(r value.Row, keyIdx []int) bool {
	h1, h2 := f.hashes(r, keyIdx)
	for i := 0; i < f.k; i++ {
		if !f.getBit((h1 + uint64(i)*h2) % f.m) {
			return false
		}
	}
	return true
}

// MayContainKey tests a key row directly.
func (f *Filter) MayContainKey(key value.Row) bool {
	return f.MayContain(key, identity(len(f.keyIdx)))
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// hashes derives two independent 64-bit hashes for double hashing.
func (f *Filter) hashes(r value.Row, keyIdx []int) (uint64, uint64) {
	h1 := r.HashKey(keyIdx)
	// Second hash: re-mix h1 (splitmix64 finalizer); guaranteed odd so the
	// double-hash stride is co-prime with power-of-two m remainders often
	// enough to spread probes.
	h2 := h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1
	return h1, h2
}

func (f *Filter) setBit(i uint64) { f.bits[i/64] |= 1 << (i % 64) }
func (f *Filter) getBit(i uint64) bool {
	return f.bits[i/64]&(1<<(i%64)) != 0
}

// EstimatedFPR returns the theoretical false-positive rate for the current
// load: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPR() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// TheoreticalFPR returns the design false-positive rate for n entries in a
// filter with bitsPerEntry bits per entry and optimal k.
func TheoreticalFPR(bitsPerEntry float64) float64 {
	k := math.Round(bitsPerEntry * math.Ln2)
	if k < 1 {
		k = 1
	}
	return math.Pow(1-math.Exp(-k/bitsPerEntry), k)
}
