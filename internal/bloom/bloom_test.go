package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"filterjoin/internal/value"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 10, []int{0})
	for i := 0; i < 1000; i++ {
		f.Add(value.Row{value.NewInt(int64(i))})
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(value.Row{value.NewInt(int64(i))}, []int{0}) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		f := New(n, 4+rng.Float64()*8, []int{0})
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(10000))
			f.AddKey(value.Row{value.NewInt(keys[i])})
		}
		for _, k := range keys {
			if !f.MayContainKey(value.Row{value.NewInt(k)}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasuredFPRNearTheory(t *testing.T) {
	const n = 5000
	for _, bits := range []float64{4, 8, 12} {
		f := New(n, bits, []int{0})
		for i := 0; i < n; i++ {
			f.Add(value.Row{value.NewInt(int64(i))})
		}
		falsePos := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			if f.MayContain(value.Row{value.NewInt(int64(n + 1 + i))}, []int{0}) {
				falsePos++
			}
		}
		measured := float64(falsePos) / probes
		theory := TheoreticalFPR(bits)
		if measured > theory*3+0.002 {
			t.Errorf("bits=%g: measured FPR %.4f far above theory %.4f", bits, measured, theory)
		}
	}
}

func TestTheoreticalFPRMonotone(t *testing.T) {
	prev := 1.0
	for _, bits := range []float64{1, 2, 4, 8, 16} {
		cur := TheoreticalFPR(bits)
		if cur > prev {
			t.Errorf("FPR must not increase with more bits: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if TheoreticalFPR(10) > 0.02 {
		t.Error("10 bits/entry should be ≈1% FPR")
	}
}

func TestSizeBytesScalesWithN(t *testing.T) {
	small := New(100, 10, []int{0})
	big := New(10000, 10, []int{0})
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("size must scale with expected entries")
	}
	// Minimum size floor.
	tiny := New(1, 1, []int{0})
	if tiny.SizeBytes() < 8 {
		t.Error("minimum 64 bits")
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	f := New(0, 0, []int{0})
	if f.K() < 1 {
		t.Error("k must be at least 1")
	}
	f.AddKey(value.Row{value.NewInt(1)})
	if !f.MayContainKey(value.Row{value.NewInt(1)}) {
		t.Error("member must be found even in degenerate filter")
	}
}

func TestEstimatedFPR(t *testing.T) {
	f := New(100, 10, []int{0})
	if f.EstimatedFPR() != 0 {
		t.Error("empty filter has zero FPR")
	}
	for i := 0; i < 100; i++ {
		f.Add(value.Row{value.NewInt(int64(i))})
	}
	got := f.EstimatedFPR()
	if got <= 0 || got > 0.05 {
		t.Errorf("loaded FPR estimate = %g", got)
	}
	if f.Count() != 100 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestCrossKindKeysMatch(t *testing.T) {
	f := New(10, 10, []int{0})
	f.AddKey(value.Row{value.NewInt(42)})
	if !f.MayContainKey(value.Row{value.NewFloat(42)}) {
		t.Error("int 42 and float 42.0 must hash identically")
	}
}

func TestMultiColumnKeys(t *testing.T) {
	f := New(100, 12, []int{0, 1})
	f.AddKey(value.Row{value.NewInt(1), value.NewString("a")})
	if !f.MayContainKey(value.Row{value.NewInt(1), value.NewString("a")}) {
		t.Error("member missing")
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if !f.MayContainKey(value.Row{value.NewInt(int64(i + 10)), value.NewString("b")}) {
			miss++
		}
	}
	if miss < 90 {
		t.Errorf("too many false positives: only %d misses", miss)
	}
	if got := f.KeyIdx(); len(got) != 2 {
		t.Errorf("KeyIdx = %v", got)
	}
}
