package opt

import (
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
)

// only returns an optimizer over the test catalog with every join
// method except the named ones disabled, so candidate counts are exact.
func only(t testing.TB, enabled ...string) *Optimizer {
	t.Helper()
	o := New(buildCat(t), cost.DefaultModel())
	all := []string{"hash", "merge", "nlj", "indexnl", "funcprobe", "funcprobememo", "fetchmatches", "indexaccess"}
	keep := map[string]bool{}
	for _, m := range enabled {
		keep[m] = true
	}
	for _, m := range all {
		if !keep[m] {
			o.Disabled[m] = true
		}
	}
	return o
}

// Exact DP search-space counts on fixed queries: a regression here
// means the optimizer is exploring more (or less) than it used to.

func TestMetricsSingleRelation(t *testing.T) {
	o := only(t, "hash")
	if _, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "A"}}}); err != nil {
		t.Fatal(err)
	}
	want := Metrics{PlansConsidered: 1, SubsetsExplored: 1, NestedOptimizations: 0}
	if o.Metrics != want {
		t.Errorf("metrics = %+v, want %+v", o.Metrics, want)
	}
}

func TestMetricsTwoRelationHashOnly(t *testing.T) {
	o := only(t, "hash")
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "A"}, {Name: "B"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "B.k"))},
	}
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	// 2 leaves + one hash candidate from each of the two size-1 subsets.
	want := Metrics{PlansConsidered: 4, SubsetsExplored: 3, NestedOptimizations: 0}
	if o.Metrics != want {
		t.Errorf("metrics = %+v, want %+v", o.Metrics, want)
	}
}

func TestMetricsTwoRelationHashAndMerge(t *testing.T) {
	o := only(t, "hash", "merge")
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "A"}, {Name: "B"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "B.k"))},
	}
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	// 2 leaves + {hash, merge} from each of the two size-1 subsets.
	want := Metrics{PlansConsidered: 6, SubsetsExplored: 3, NestedOptimizations: 0}
	if o.Metrics != want {
		t.Errorf("metrics = %+v, want %+v", o.Metrics, want)
	}
}

func TestMetricsNestedViewOptimization(t *testing.T) {
	o := only(t, "hash")
	if _, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "VA"}}}); err != nil {
		t.Fatal(err)
	}
	// The VA leaf triggers one nested optimization of its defining block
	// (itself a single relation): 1+1 subsets, 1+1 plans.
	want := Metrics{PlansConsidered: 2, SubsetsExplored: 2, NestedOptimizations: 1}
	if o.Metrics != want {
		t.Errorf("metrics = %+v, want %+v", o.Metrics, want)
	}

	// The view leaf is memoized: re-optimizing must not recurse again.
	if _, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "VA"}}}); err != nil {
		t.Fatal(err)
	}
	want = Metrics{PlansConsidered: 3, SubsetsExplored: 3, NestedOptimizations: 1}
	if o.Metrics != want {
		t.Errorf("metrics after cached re-plan = %+v, want %+v", o.Metrics, want)
	}
}
