package opt

import (
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// bigIndexed builds a large table where an equality lookup is far
// cheaper than a scan.
func bigIndexed(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	s := schema.New(
		schema.Column{Table: "Big", Name: "k", Type: value.KindInt},
		schema.Column{Table: "Big", Name: "v", Type: value.KindInt},
	)
	tb := storage.NewTable("Big", s)
	for i := 0; i < 50000; i++ {
		tb.MustInsert(value.NewInt(int64(i/10)), value.NewInt(int64(i)))
	}
	if _, err := tb.CreateIndex("big_k", []int{0}); err != nil {
		t.Fatal(err)
	}
	cat.AddTable(tb)
	return cat
}

func eqQuery() *query.Block {
	return &query.Block{
		Rels:  []query.RelRef{{Name: "Big"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "Big.k"), expr.Int(123))},
	}
}

func TestIndexAccessChosenForEquality(t *testing.T) {
	cat := bigIndexed(t)
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(eqQuery())
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("IndexLookup") == nil {
		t.Fatalf("expected an IndexLookup leaf, got %s", p.Kind)
	}
	rows, c := runNode(t, p)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 123 {
			t.Fatalf("wrong key: %v", r)
		}
	}
	// The lookup must be dramatically cheaper than the 391-page scan.
	if c.PageReads > 10 {
		t.Errorf("index lookup read %d pages", c.PageReads)
	}
}

func TestIndexAccessDisabled(t *testing.T) {
	cat := bigIndexed(t)
	o := New(cat, cost.DefaultModel())
	o.Disabled["indexaccess"] = true
	p, err := o.OptimizeBlock(eqQuery())
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("IndexLookup") != nil {
		t.Error("indexaccess was disabled")
	}
}

func TestIndexAccessWithResidualConjunct(t *testing.T) {
	cat := bigIndexed(t)
	o := New(cat, cost.DefaultModel())
	b := eqQuery()
	b.Preds = append(b.Preds, expr.NewCmp(expr.LT, expr.NewCol(1, "Big.v"), expr.Int(1235)))
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 5 { // keys 1230..1234 of the ten 123-rows
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestIndexAccessNotUsedWithoutIndex(t *testing.T) {
	cat := catalog.New()
	s := schema.New(schema.Column{Table: "N", Name: "k", Type: value.KindInt})
	tb := storage.NewTable("N", s)
	for i := 0; i < 100; i++ {
		tb.MustInsert(value.NewInt(int64(i)))
	}
	cat.AddTable(tb)
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(&query.Block{
		Rels:  []query.RelRef{{Name: "N"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "N.k"), expr.Int(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("IndexLookup") != nil {
		t.Error("no index exists, a scan is required")
	}
	rows, _ := runNode(t, p)
	if len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestIndexAccessLiteralOnLeft(t *testing.T) {
	cat := bigIndexed(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "Big"}},
		Preds: []expr.Expr{expr.Eq(expr.Int(123), expr.NewCol(0, "Big.k"))},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("IndexLookup") == nil {
		t.Error("literal = column must also use the index")
	}
	rows, _ := runNode(t, p)
	if len(rows) != 10 {
		t.Errorf("rows = %d", len(rows))
	}
}
