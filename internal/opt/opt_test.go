package opt

import (
	"math"
	"sort"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func buildCat(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	a := storage.NewTable("A", schema.New(
		schema.Column{Table: "A", Name: "k", Type: value.KindInt},
		schema.Column{Table: "A", Name: "v", Type: value.KindInt},
	))
	for i := 0; i < 2000; i++ {
		a.MustInsert(value.NewInt(int64(i%100)), value.NewInt(int64(i)))
	}
	if _, err := a.CreateIndex("a_k", []int{0}); err != nil {
		t.Fatal(err)
	}
	cat.AddTable(a)

	b := storage.NewTable("B", schema.New(
		schema.Column{Table: "B", Name: "k", Type: value.KindInt},
		schema.Column{Table: "B", Name: "w", Type: value.KindInt},
	))
	for i := 0; i < 100; i++ {
		b.MustInsert(value.NewInt(int64(i)), value.NewInt(int64(i*10)))
	}
	cat.AddTable(b)

	cat.AddView("VA", &query.Block{
		Rels:    []query.RelRef{{Name: "A"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}},
	})
	return cat
}

// joinAB is A ⋈ B on k with a local predicate on B. Layout A:[0,1] B:[2,3].
func joinAB() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{{Name: "A"}, {Name: "B"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "B.k")),
			expr.NewCmp(expr.LT, expr.NewCol(2, "B.k"), expr.Int(10)),
		},
	}
}

func runNode(t testing.TB, n *plan.Node) ([]value.Row, cost.Counter) {
	t.Helper()
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, n.Make())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return rows, *ctx.Counter
}

func TestSingleTableScanEstimateExact(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "A"}}})
	if err != nil {
		t.Fatal(err)
	}
	rows, c := runNode(t, p)
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if p.Est.PageReads != float64(c.PageReads) {
		t.Errorf("page estimate %g vs measured %d (must be exact for a scan)", p.Est.PageReads, c.PageReads)
	}
	if math.Abs(p.Est.CPUTuples-float64(c.CPUTuples)) > 1 {
		t.Errorf("cpu estimate %g vs measured %d", p.Est.CPUTuples, c.CPUTuples)
	}
}

func TestLocalPredicatePushdown(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "A"}},
		Preds: []expr.Expr{expr.NewCmp(expr.LT, expr.NewCol(0, "A.k"), expr.Int(10))},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 200 {
		t.Errorf("rows = %d, want 200", len(rows))
	}
	// Cardinality estimate should be in the right ballpark.
	if p.Rows < 100 || p.Rows > 400 {
		t.Errorf("row estimate = %g", p.Rows)
	}
}

func TestJoinCorrectAcrossMethodChoices(t *testing.T) {
	cat := buildCat(t)
	var reference []string
	for _, disable := range [][]string{
		nil,
		{"hash"},
		{"hash", "merge"},
		{"hash", "merge", "indexnl"},
		{"indexnl", "nlj"},
	} {
		o := New(cat, cost.DefaultModel())
		for _, d := range disable {
			o.Disabled[d] = true
		}
		p, err := o.OptimizeBlock(joinAB())
		if err != nil {
			t.Fatalf("disable %v: %v", disable, err)
		}
		rows, _ := runNode(t, p)
		got := canonRows(rows)
		if reference == nil {
			reference = got
			if len(reference) != 200 { // 10 B-rows × 20 A-rows each
				t.Fatalf("reference rows = %d", len(reference))
			}
			continue
		}
		if !sameStrings(reference, got) {
			t.Errorf("disable %v changed results (%d vs %d rows)", disable, len(got), len(reference))
		}
	}
}

func canonRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFreeDPNeverWorseThanForcedOrders(t *testing.T) {
	cat := buildCat(t)
	model := cost.DefaultModel()
	o := New(cat, model)
	free, err := o.OptimizeBlock(joinAB())
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{{0, 1}, {1, 0}} {
		forced, err := o.OptimizeBlockWithOrder(joinAB(), perm)
		if err != nil {
			t.Fatal(err)
		}
		if free.Total(model) > forced.Total(model)+1e-6 {
			t.Errorf("free plan (%.2f) worse than forced order %v (%.2f)",
				free.Total(model), perm, forced.Total(model))
		}
	}
}

func TestCrossProductWhenNoPredicate(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels: []query.RelRef{{Name: "B"}, {Name: "B", Alias: "B2"}},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 100*100 {
		t.Errorf("cross product rows = %d", len(rows))
	}
}

func TestViewLeafCached(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{Rels: []query.RelRef{{Name: "VA"}}}
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	n1 := o.Metrics.NestedOptimizations
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	if o.Metrics.NestedOptimizations != n1 {
		t.Error("view leaf must be cached across optimizations")
	}
	o.InvalidateCaches()
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	if o.Metrics.NestedOptimizations == n1 {
		t.Error("InvalidateCaches must force re-optimization")
	}
}

func TestViewQueryCorrect(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	// B ⋈ VA on k: every B row matches one group. Layout B:[0,1] VA:[2,3].
	b := &query.Block{
		Rels: []query.RelRef{{Name: "B"}, {Name: "VA", Alias: "V"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "B.k"), expr.NewCol(2, "V.k")),
		},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(rows))
	}
	for _, r := range rows {
		if r[3].Int() != 20 {
			t.Fatalf("every group should count 20: %v", r)
		}
	}
}

func TestGroupByFinishing(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:    []query.RelRef{{Name: "A"}},
		GroupBy: []int{0},
		Aggs: []expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggMax, Arg: expr.NewCol(1, "A.v"), Name: "mx"},
		},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 100 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][1].Int() != 20 {
		t.Errorf("count per group = %v", rows[0][1])
	}
	if p.Rows != 100 {
		t.Errorf("group-count estimate = %g, want exactly 100 (single-column distinct)", p.Rows)
	}
}

func TestDistinctFinishing(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:     []query.RelRef{{Name: "A"}},
		Proj:     []query.Output{{Expr: expr.NewCol(0, "A.k"), Name: "k"}},
		Distinct: true,
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 100 {
		t.Errorf("distinct rows = %d", len(rows))
	}
}

func TestProjectionReordersToBlockLayout(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(joinAB())
	if err != nil {
		t.Fatal(err)
	}
	// Whatever join order won, the output schema must follow block order:
	// A.k, A.v, B.k, B.w.
	if p.OutSchema.Col(0).QualifiedName() != "A.k" || p.OutSchema.Col(3).QualifiedName() != "B.w" {
		t.Errorf("output schema = %s", p.OutSchema)
	}
	rows, _ := runNode(t, p)
	for _, r := range rows[:3] {
		if !value.Equal(r[0], r[2]) {
			t.Errorf("join columns must match in block order: %v", r)
		}
	}
}

func TestErrorCases(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	if _, err := o.OptimizeBlock(&query.Block{}); err == nil {
		t.Error("empty block must error")
	}
	o.MaxRelations = 1
	if _, err := o.OptimizeBlock(joinAB()); err == nil {
		t.Error("MaxRelations must be enforced")
	}
	if _, err := New(cat, cost.DefaultModel()).OptimizeBlockWithOrder(joinAB(), []int{0}); err == nil {
		t.Error("short order must error")
	}
	if _, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "Missing"}}}); err == nil {
		t.Error("unknown relation must error")
	}
}

func TestBlockValidation(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	// Out-of-range predicate column.
	bad := &query.Block{
		Rels:  []query.RelRef{{Name: "B"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "B.k"), expr.NewCol(9, "??"))},
	}
	if _, err := o.OptimizeBlock(bad); err == nil {
		t.Error("out-of-range predicate column must be rejected at plan time")
	}
	// Out-of-range GROUP BY.
	bad2 := &query.Block{
		Rels:    []query.RelRef{{Name: "B"}},
		GroupBy: []int{5},
		Aggs:    []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}},
	}
	if _, err := o.OptimizeBlock(bad2); err == nil {
		t.Error("out-of-range GROUP BY must be rejected")
	}
	// Out-of-range projection.
	bad3 := &query.Block{
		Rels: []query.RelRef{{Name: "B"}},
		Proj: []query.Output{{Expr: expr.NewCol(7, "??"), Name: "x"}},
	}
	if _, err := o.OptimizeBlock(bad3); err == nil {
		t.Error("out-of-range projection must be rejected")
	}
	// Out-of-range aggregate argument.
	bad4 := &query.Block{
		Rels:    []query.RelRef{{Name: "B"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.NewCol(6, "??"), Name: "s"}},
	}
	if _, err := o.OptimizeBlock(bad4); err == nil {
		t.Error("out-of-range aggregate argument must be rejected")
	}
}

func TestStatsOverride(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	fake := 123456.0
	o.StatsOverride["A"] = &stats.RelStats{
		Rows: fake,
		Cols: []stats.ColStats{{Distinct: 100}, {Distinct: fake}},
	}
	p, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "A"}}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != fake {
		t.Errorf("override ignored: rows = %g", p.Rows)
	}
}

func TestMetricsPopulated(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	if _, err := o.OptimizeBlock(joinAB()); err != nil {
		t.Fatal(err)
	}
	if o.Metrics.PlansConsidered == 0 || o.Metrics.SubsetsExplored == 0 {
		t.Errorf("metrics not populated: %+v", o.Metrics)
	}
}

func TestEquiClosureEnablesOrder(t *testing.T) {
	// Three relations where B and VA only connect through A's equalities.
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels: []query.RelRef{{Name: "A"}, {Name: "B"}, {Name: "VA", Alias: "V"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "B.k")),
			expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(4, "V.k")),
		},
	}
	// Force the order B, V, A — only possible with the derived B.k=V.k.
	p, err := o.OptimizeBlockWithOrder(b, []int{1, 2, 0})
	if err != nil {
		t.Fatalf("closure-dependent order failed: %v", err)
	}
	rows, _ := runNode(t, p)
	free, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rowsFree, _ := runNode(t, free)
	if !sameStrings(canonRows(rows), canonRows(rowsFree)) {
		t.Error("derived-equality order changed results")
	}
}
