package opt

import (
	"encoding/json"
	"strings"
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/query"
)

func traceTwoRel(t *testing.T, methods ...string) (*Optimizer, *CollectingTracer) {
	t.Helper()
	o := only(t, methods...)
	tr := &CollectingTracer{}
	o.Tracer = tr
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "A"}, {Name: "B"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "B.k"))},
	}
	if _, err := o.OptimizeBlock(b); err != nil {
		t.Fatal(err)
	}
	return o, tr
}

func TestTracerRecordsSearch(t *testing.T) {
	o, tr := traceTwoRel(t, "hash", "merge")

	var leaves, cands, kept int
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvLeaf:
			leaves++
		case EvCandidate:
			cands++
			if ev.Kept {
				kept++
			}
			if ev.Subset != "{A,B}" {
				t.Errorf("candidate subset = %q, want {A,B}", ev.Subset)
			}
			if ev.Cost <= 0 {
				t.Errorf("candidate %s has non-positive cost %v", ev.Method, ev.Cost)
			}
		}
	}
	if leaves != 2 {
		t.Errorf("leaf events = %d, want 2", leaves)
	}
	if int64(cands)+2 != o.Metrics.PlansConsidered {
		t.Errorf("candidate events = %d, want PlansConsidered-2 = %d",
			cands, o.Metrics.PlansConsidered-2)
	}
	if kept < 1 {
		t.Error("no candidate was marked kept")
	}
	// The first candidate for a fresh subset is always kept.
	for _, ev := range tr.Events {
		if ev.Kind == EvCandidate {
			if !ev.Kept {
				t.Errorf("first candidate for a fresh subset must be kept, got %+v", ev)
			}
			break
		}
	}
}

func TestTracerNestedAndDeterminism(t *testing.T) {
	run := func() []TraceEvent {
		o := only(t, "hash")
		tr := &CollectingTracer{}
		o.Tracer = tr
		b := &query.Block{
			Rels: []query.RelRef{{Name: "VA"}, {Name: "B"}},
			Preds: []expr.Expr{
				expr.Eq(expr.NewCol(0, "VA.k"), expr.NewCol(2, "B.k")),
			},
		}
		if _, err := o.OptimizeBlock(b); err != nil {
			t.Fatal(err)
		}
		return tr.Events
	}
	evs := run()
	var nested int
	for _, ev := range evs {
		if ev.Kind == EvNested {
			nested++
			if ev.Depth != 2 {
				t.Errorf("nested depth = %d, want 2", ev.Depth)
			}
		}
	}
	if nested != 1 {
		t.Errorf("nested events = %d, want 1 (the VA view block)", nested)
	}
	// Identical optimizations must produce identical traces (the DP
	// iterates subsets in sorted order).
	evs2 := run()
	if len(evs) != len(evs2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(evs), len(evs2))
	}
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, evs[i], evs2[i])
		}
	}
}

func TestTracerRenderers(t *testing.T) {
	_, tr := traceTwoRel(t, "hash", "merge")

	text := tr.Text()
	for _, want := range []string{"leaf", "candidate", "{A,B}", "kept", "pruned"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	js, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []TraceEvent
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back) != len(tr.Events) {
		t.Fatalf("JSON has %d events, want %d", len(back), len(tr.Events))
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "candidate=") || !strings.Contains(sum, "HashJoin") {
		t.Errorf("Summary() = %q", sum)
	}

	tr.Reset()
	if len(tr.Events) != 0 {
		t.Error("Reset left events behind")
	}
	if js, err := tr.JSON(); err != nil || string(js) != "[]" {
		t.Errorf("empty JSON = %s, %v", js, err)
	}
}

func TestTracerOffByDefault(t *testing.T) {
	o := only(t, "hash")
	if o.Traces() {
		t.Error("Traces() must be false with no tracer installed")
	}
	// trace/Emit on a tracerless optimizer must be a no-op, not a panic.
	o.Emit(TraceEvent{Kind: EvLeaf})
}
