package opt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"filterjoin/internal/query"
)

// Trace event kinds emitted by the optimizer (and by join methods that
// participate, such as the Filter Join's variant enumeration).
const (
	EvLeaf        = "leaf"         // access path chosen for a single relation
	EvCandidate   = "candidate"    // one candidate plan costed at a DP step
	EvNested      = "nested"       // recursive OptimizeBlock entered (views, costers)
	EvCosterBuild = "coster-build" // parametric view coster constructed
	EvCosterHit   = "coster-hit"   // costing answered from the coster cache
	EvFJVariant   = "fj-variant"   // one Filter Join (attrs × repr × production) variant costed
)

// TraceEvent is one step of the optimizer's search, in a flat record
// shape so traces render uniformly as text or JSON.
type TraceEvent struct {
	Kind   string  `json:"kind"`
	Subset string  `json:"subset,omitempty"` // relation subset, e.g. "{D,E}"
	Method string  `json:"method,omitempty"` // join method / plan node kind
	Detail string  `json:"detail,omitempty"`
	Cost   float64 `json:"cost,omitempty"`   // weighted total under the optimizer's model
	Kept   bool    `json:"kept"`             // candidate became (or stayed) the subset's best
	Depth  int     `json:"depth,omitempty"`  // optimizer nesting depth (nested events)
	Prop   string  `json:"prop,omitempty"`   // order property bucket ("" = no useful order)
}

// Tracer observes the optimizer's search. Implementations must be cheap:
// the optimizer emits one event per candidate plan.
type Tracer interface {
	Event(TraceEvent)
}

// trace emits ev if a tracer is installed.
func (o *Optimizer) trace(ev TraceEvent) {
	if o.Tracer != nil {
		o.Tracer.Event(ev)
	}
}

// Emit lets external join methods feed events into the optimizer's
// tracer (the Filter Join reports variants and coster cache traffic).
func (o *Optimizer) Emit(ev TraceEvent) { o.trace(ev) }

// Traces reports whether a tracer is installed (join methods use it to
// skip building event payloads).
func (o *Optimizer) Traces() bool { return o.Tracer != nil }

// RelSetName renders a relation subset with the block's bindings, e.g.
// "{D,E,V}", in ordinal order.
func (c *Ctx) RelSetName(s query.RelSet) string {
	var parts []string
	for _, i := range s.Members() {
		if i < len(c.Rels) {
			parts = append(parts, c.Rels[i].Ref.Binding())
		} else {
			parts = append(parts, fmt.Sprintf("#%d", i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CollectingTracer records every event for later rendering. It is not
// safe for concurrent optimizers; one optimizer is single-threaded.
type CollectingTracer struct {
	Events []TraceEvent
}

// Event implements Tracer.
func (t *CollectingTracer) Event(ev TraceEvent) { t.Events = append(t.Events, ev) }

// Reset drops the recorded events.
func (t *CollectingTracer) Reset() { t.Events = nil }

// Text renders the trace one line per event.
func (t *CollectingTracer) Text() string {
	var b strings.Builder
	for _, ev := range t.Events {
		switch ev.Kind {
		case EvLeaf:
			fmt.Fprintf(&b, "leaf      %-14s %-14s cost=%-10.2f %s%s\n", ev.Subset, ev.Method, ev.Cost, ev.Detail, propSuffix(ev))
		case EvCandidate:
			verdict := "pruned"
			if ev.Kept {
				verdict = "kept"
			}
			fmt.Fprintf(&b, "candidate %-14s %-14s cost=%-10.2f %-6s %s%s\n", ev.Subset, ev.Method, ev.Cost, verdict, ev.Detail, propSuffix(ev))
		case EvNested:
			fmt.Fprintf(&b, "nested    depth=%d %s\n", ev.Depth, ev.Detail)
		case EvCosterBuild, EvCosterHit:
			fmt.Fprintf(&b, "%-9s %s\n", ev.Kind, ev.Detail)
		case EvFJVariant:
			fmt.Fprintf(&b, "fjvariant %-14s cost=%-10.2f %s\n", ev.Subset, ev.Cost, ev.Detail)
		default:
			fmt.Fprintf(&b, "%-9s %s %s cost=%.2f %s\n", ev.Kind, ev.Subset, ev.Method, ev.Cost, ev.Detail)
		}
	}
	return b.String()
}

// JSON renders the trace as an indented JSON array.
func (t *CollectingTracer) JSON() ([]byte, error) {
	evs := t.Events
	if evs == nil {
		evs = []TraceEvent{}
	}
	return json.MarshalIndent(evs, "", "  ")
}

// Summary aggregates the trace: events per kind, and per-method
// candidate/kept counts, rendered deterministically.
func (t *CollectingTracer) Summary() string {
	kinds := map[string]int{}
	cands := map[string]int{}
	kept := map[string]int{}
	for _, ev := range t.Events {
		kinds[ev.Kind]++
		if ev.Kind == EvCandidate {
			cands[ev.Method]++
			if ev.Kept {
				kept[ev.Method]++
			}
		}
	}
	var b strings.Builder
	for _, k := range sortedKeys(kinds) {
		fmt.Fprintf(&b, "%s=%d ", k, kinds[k])
	}
	b.WriteString("\n")
	for _, m := range sortedKeys(cands) {
		fmt.Fprintf(&b, "  %-16s considered=%-5d kept=%d\n", m, cands[m], kept[m])
	}
	return b.String()
}

// propSuffix renders a candidate's order-property bucket for text
// traces; the "" bucket (no useful order) stays silent.
func propSuffix(ev TraceEvent) string {
	if ev.Prop == "" {
		return ""
	}
	return " ord[" + ev.Prop + "]"
}

// blockDesc names a block by its relation bindings, for nested-event
// payloads.
func blockDesc(b *query.Block) string {
	var parts []string
	for _, r := range b.Rels {
		parts = append(parts, r.Binding())
	}
	return "block(" + strings.Join(parts, ",") + ")"
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
