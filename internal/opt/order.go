// Interesting-order support for the property-aware memo (System R's
// "interesting orders"): which sort orders are worth remembering per DP
// subset, how a plan's physical ordering maps to a memo property key,
// and when a retained ordering lets a merge join skip its input sort.
package opt

import (
	"strings"

	"filterjoin/internal/plan"
)

// computeInterestingCols marks the block-layout columns whose sort
// order can pay off later in the plan: merge-joinable equi-predicate
// columns, GROUP BY columns, and the provenance of ORDER BY targets.
// Orderings on other columns are not worth a memo entry of their own.
func (c *Ctx) computeInterestingCols() {
	c.interestingCols = map[int]bool{}
	if c.O.DisableOrderProps {
		return
	}
	for _, p := range c.Preds {
		if p.EquiL >= 0 {
			c.interestingCols[p.EquiL] = true
			c.interestingCols[p.EquiR] = true
		}
	}
	for _, g := range c.Block.GroupBy {
		c.interestingCols[g] = true
	}
	prov := c.Block.OutputProvenance(c.Layout.Schema.Len())
	for _, oi := range c.Block.OrderBy {
		if oi.Col >= 0 && oi.Col < len(prov) && prov[oi.Col] >= 0 {
			c.interestingCols[prov[oi.Col]] = true
		}
	}
}

// maxPropKeys bounds how many leading ordering keys distinguish memo
// buckets; deeper prefixes almost never pay for the extra entries.
const maxPropKeys = 3

// interestingPrefix reduces a plan's physical ordering to the property
// the memo tracks: the leading keys restricted to interesting columns.
// A nil result (key "") is the "no useful order" bucket.
func (c *Ctx) interestingPrefix(ord plan.Ordering) plan.Ordering {
	if len(c.interestingCols) == 0 {
		return nil
	}
	p := ord.Project(func(col int) bool { return c.interestingCols[col] })
	if len(p) > maxPropKeys {
		p = p[:maxPropKeys]
	}
	return p
}

// propName renders a property ordering with the block layout's column
// names for traces, joining each key's equivalent columns with "=".
func (c *Ctx) propName(prop plan.Ordering) string {
	if len(prop) == 0 {
		return ""
	}
	var keys []string
	for _, k := range prop {
		var names []string
		for _, col := range k.Cols {
			names = append(names, c.Layout.Schema.Col(col).QualifiedName())
		}
		s := strings.Join(names, "=")
		if k.Desc {
			s += " desc"
		}
		keys = append(keys, s)
	}
	return strings.Join(keys, ",")
}

// reorderPairsForPresorted tries to permute the equi pairs of a merge
// join so that the outer's retained ordering already sorts the outer
// input on the merge keys (ascending). It returns permuted copies of
// the column lists and true on success, or the originals and false.
func reorderPairsForPresorted(ord plan.Ordering, outerCols, innerCols []int) ([]int, []int, bool) {
	n := len(outerCols)
	if n == 0 || len(ord) < n {
		return outerCols, innerCols, false
	}
	used := make([]bool, n)
	oc := make([]int, 0, n)
	ic := make([]int, 0, n)
	for i := 0; i < n; i++ {
		k := ord[i]
		if k.Desc {
			return outerCols, innerCols, false
		}
		found := -1
		for j := range outerCols {
			if !used[j] && k.Has(outerCols[j]) {
				found = j
				break
			}
		}
		if found < 0 {
			return outerCols, innerCols, false
		}
		used[found] = true
		oc = append(oc, outerCols[found])
		ic = append(ic, innerCols[found])
	}
	return oc, ic, true
}

// mergeOutputOrdering is the order a merge join produces: its key
// sequence ascending, with each key carrying both sides' columns (they
// are value-equal in every output row).
func mergeOutputOrdering(outerCols, innerCols []int) plan.Ordering {
	out := make(plan.Ordering, len(outerCols))
	for i := range outerCols {
		out[i] = plan.OrderKey{Cols: []int{outerCols[i], innerCols[i]}}
	}
	return out
}

// orderAware reports whether the property-aware memo (and with it sort
// elision, streaming aggregation, and presorted merge inputs) is on.
func (o *Optimizer) orderAware() bool { return !o.DisableOrderProps }
