package opt

import (
	"fmt"
	"math"

	"filterjoin/internal/catalog"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
	"filterjoin/internal/udr"
)

// queryRelSet shortens method signatures in this file.
type queryRelSet = query.RelSet

// lg2 returns ceil(log2(n)) for n>1, else 0, as a float for CPU charges.
func lg2(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(n))
}

// pagesOf returns the page count of `rows` rows of width rowBytes.
func pagesOf(rows float64, rowBytes int) float64 {
	if rows <= 0 {
		return 0
	}
	rpp := storage.PageSize / rowBytes
	if rpp < 1 {
		rpp = 1
	}
	return math.Ceil(rows / float64(rpp))
}

// builtinCandidates produces the standard join-method plans for joining
// outer with the inner relation.
func (c *Ctx) builtinCandidates(outer *plan.Node, inner int) ([]*plan.Node, error) {
	ri := c.Rels[inner]
	preds := c.ApplicablePreds(outer.Rels, inner)
	outerCols, innerCols, residual := c.EquiSplit(preds, outer.Rels, inner)
	rows, outStats := c.JoinResult(outer, inner, preds)
	combined := c.CombinedColMap(outer, inner)
	rels := outer.Rels.With(inner)

	// Order propagation: every built-in method except the merge join
	// streams its outer input, so the outer's retained ordering survives,
	// widened by the columns the new equi predicates equate to its keys.
	// The merge join instead produces the order of its own key sequence
	// (see mergeJoinCand).
	ext := outer.Ordering.ExtendEquiv(outerCols, innerCols)

	var cands []*plan.Node
	add := func(n *plan.Node) {
		if n != nil {
			cands = append(cands, n)
		}
	}

	if ri.Access != nil {
		if len(outerCols) > 0 {
			if c.O.methodEnabled("hash") {
				add(c.hashJoinCand(outer, ri, outerCols, innerCols, residual, rows, outStats, combined, rels, ext))
			}
			if c.O.methodEnabled("merge") {
				if n := c.mergeJoinCand(outer, ri, outerCols, innerCols, residual, rows, outStats, combined, rels); n != nil {
					cands = append(cands, n)
				}
			}
		}
		if c.O.methodEnabled("nlj") {
			add(c.nljCand(outer, ri, preds, rows, outStats, combined, rels, ext))
		}
	}
	if len(outerCols) > 0 && ri.Entry.Kind == catalog.KindBase && c.O.methodEnabled("indexnl") {
		add(c.indexNLCand(outer, ri, preds, outerCols, innerCols, rows, outStats, combined, rels, ext))
	}
	if len(outerCols) > 0 && ri.Entry.Kind == catalog.KindRemote && c.O.methodEnabled("fetchmatches") {
		add(c.fetchMatchesCand(outer, ri, preds, outerCols, innerCols, rows, outStats, combined, rels, ext))
	}
	if ri.Entry.Kind == catalog.KindFunc && (c.O.methodEnabled("funcprobe") || c.O.methodEnabled("funcprobememo")) {
		ns, err := c.funcProbeCands(outer, ri, preds, outerCols, innerCols, rows, outStats, combined, rels, ext)
		if err != nil {
			return nil, err
		}
		for _, n := range ns {
			add(n)
		}
	}
	return cands, nil
}

func keyDetail(c *Ctx, outerCols, innerCols []int) string {
	s := ""
	for i := range outerCols {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s",
			c.Layout.Schema.Col(outerCols[i]).QualifiedName(),
			c.Layout.Schema.Col(innerCols[i]).QualifiedName())
	}
	return s
}

func (c *Ctx) hashJoinCand(outer *plan.Node, ri *RelInfo, outerCols, innerCols []int, residual []*PredInfo, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet, ord plan.Ordering) *plan.Node {
	a := ri.Access
	outerPos, ok := OuterKeyPositions(outer, outerCols)
	if !ok {
		return nil
	}
	innerPos, ok := OuterKeyPositions(a, innerCols)
	if !ok {
		return nil
	}
	est := outer.Est.Plus(a.Est)
	est.CPUTuples += a.Rows + outer.Rows + rows
	res := ResidualExpr(residual, combined)
	outerMk, innerMk := outer.Make, a.Make
	hint := int(a.Rows + 0.5) // pre-size the build table from the estimate
	dop := c.O.DOP()
	parallel := 0
	if dop > 1 {
		parallel = dop
	}
	return plan.NewNode(&plan.Node{
		Kind:      "HashJoin",
		Detail:    keyDetail(c, outerCols, innerCols),
		Children:  []*plan.Node{outer, a},
		Est:       est,
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(a.OutSchema),
		ColMap:    combined,
		Rels:      rels,
		Ordering:  ord,
		Parallel:  parallel,
		Make: func() exec.Operator {
			// The build side is a materialization point: guard it so an
			// input exceeding the estimate by the replan ratio aborts
			// into mid-run re-optimization instead of building a table
			// the optimizer never costed. Disarmed guards are invisible.
			build := exec.NewCardGuard(innerMk(), a.Rows, "HashJoin build", a)
			// The partitioned parallel path charges the same units as the
			// serial one and preserves probe order, so the estimate and
			// ordering above hold for both.
			if dop > 1 {
				j := exec.NewParallelHashJoinProbeFirst(build, outerMk(), innerPos, outerPos, res, dop)
				j.BuildSizeHint = hint
				return j
			}
			j := exec.NewHashJoinProbeFirst(build, outerMk(), innerPos, outerPos, res)
			j.BuildSizeHint = hint
			return j
		},
	})
}

func (c *Ctx) mergeJoinCand(outer *plan.Node, ri *RelInfo, outerCols, innerCols []int, residual []*PredInfo, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet) *plan.Node {
	a := ri.Access
	// When the outer's retained ordering already covers the merge keys
	// ascending (in some pair permutation), the outer arrives sorted:
	// drop its sort from both the cost formula and the operator tree.
	oc, ic := outerCols, innerCols
	presorted := false
	if c.O.orderAware() {
		oc, ic, presorted = reorderPairsForPresorted(outer.Ordering, outerCols, innerCols)
	}
	outerPos, ok := OuterKeyPositions(outer, oc)
	if !ok {
		return nil
	}
	innerPos, ok := OuterKeyPositions(a, ic)
	if !ok {
		return nil
	}
	est := outer.Est.Plus(a.Est)
	est.CPUTuples += a.Rows*lg2(a.Rows) + 2*(outer.Rows+a.Rows) + rows
	if !presorted {
		est.CPUTuples += outer.Rows * lg2(outer.Rows)
	}
	res := ResidualExpr(residual, combined)
	outerMk, innerMk := outer.Make, a.Make
	detail := keyDetail(c, oc, ic)
	if presorted {
		detail += " outer presorted"
	}
	pre := presorted
	return plan.NewNode(&plan.Node{
		Kind:      "MergeJoin",
		Detail:    detail,
		Children:  []*plan.Node{outer, a},
		Est:       est,
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(a.OutSchema),
		ColMap:    combined,
		Rels:      rels,
		Ordering:  mergeOutputOrdering(oc, ic),
		Make: func() exec.Operator {
			return exec.NewMergeJoinPresorted(outerMk(), innerMk(), outerPos, innerPos, res, pre, false)
		},
	})
}

func (c *Ctx) nljCand(outer *plan.Node, ri *RelInfo, preds []*PredInfo, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet, ord plan.Ordering) *plan.Node {
	a := ri.Access
	pagesA := pagesOf(a.Rows, a.OutSchema.RowWidth())
	est := outer.Est.Plus(a.Est)
	est.PageWrites += pagesA
	est.PageReads += outer.Rows * pagesA
	est.CPUTuples += 2*outer.Rows*a.Rows + rows
	pred := ResidualExpr(preds, combined)
	outerMk, innerMk := outer.Make, a.Make
	name := c.O.TempName("nlj")
	return plan.NewNode(&plan.Node{
		Kind:      "NestedLoopJoin",
		Detail:    predDetail(pred),
		Children:  []*plan.Node{outer, a},
		Est:       est,
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(a.OutSchema),
		ColMap:    combined,
		Rels:      rels,
		Ordering:  ord,
		Make: func() exec.Operator {
			return exec.NewNestedLoopJoin(outerMk(), exec.NewMaterialize(innerMk(), name), pred)
		},
	})
}

func predDetail(p expr.Expr) string {
	if p == nil {
		return "cross"
	}
	return p.String()
}

// pickIndex selects the index on t covering the largest subset of the
// (relation-local) equi columns; returns nil if none applies.
func pickIndex(t *storage.Table, localCols []int) *storage.HashIndex {
	var best *storage.HashIndex
	have := map[int]bool{}
	for _, c := range localCols {
		have[c] = true
	}
	for _, ix := range t.Indexes() {
		ok := true
		for _, c := range ix.Cols() {
			if !have[c] {
				ok = false
				break
			}
		}
		if ok && (best == nil || len(ix.Cols()) > len(best.Cols())) {
			best = ix
		}
	}
	return best
}

// indexJoinShape computes the common pieces of index-driven joins:
// the chosen index, the outer key positions aligned with the index
// columns, expected matches per probe and pages per probe, and the
// residual predicate (everything not covered by the index equality).
func (c *Ctx) indexJoinShape(outer *plan.Node, ri *RelInfo, preds []*PredInfo, outerCols, innerCols []int, combined []int) (ix *storage.HashIndex, outerPos []int, k, matchPages float64, residual expr.Expr, ok bool) {
	t := ri.Entry.Table
	local := make([]int, len(innerCols))
	for i, col := range innerCols {
		local[i] = col - ri.Offset
	}
	ix = pickIndex(t, local)
	if ix == nil {
		return nil, nil, 0, 0, nil, false
	}
	// Outer key positions aligned with ix.Cols() order.
	outerPos = make([]int, len(ix.Cols()))
	covered := map[int]bool{}
	for i, ic := range ix.Cols() {
		found := false
		for j, lc := range local {
			if lc == ic {
				p, okp := OuterKeyPositions(outer, []int{outerCols[j]})
				if !okp {
					return nil, nil, 0, 0, nil, false
				}
				outerPos[i] = p[0]
				covered[j] = true
				found = true
				break
			}
		}
		if !found {
			return nil, nil, 0, 0, nil, false
		}
	}
	raw := ri.RawStats
	distincts := make([]float64, len(ix.Cols()))
	for i, ic := range ix.Cols() {
		distincts[i] = raw.DistinctOf(ic)
	}
	keyCard := stats.ProjectionCardinality(raw.Rows, distincts)
	if keyCard < 1 {
		keyCard = 1
	}
	k = raw.Rows / keyCard
	clustered := len(ix.Cols()) > 0 && raw.ClusteredOn(ix.Cols()[0])
	matchPages = stats.MatchPages(raw.Rows, float64(t.NumPages()), k, t.RowsPerPage(), clustered)

	// Residual: all applicable preds except the covered equi pairs, plus
	// the relation's local predicate (index fetch bypasses the leaf).
	var rest []*PredInfo
	for _, p := range preds {
		used := false
		if p.EquiL >= 0 {
			for j := range innerCols {
				if covered[j] && (p.EquiL == innerCols[j] || p.EquiR == innerCols[j]) &&
					(p.EquiL == outerCols[j] || p.EquiR == outerCols[j]) {
					used = true
					break
				}
			}
		}
		if !used {
			rest = append(rest, p)
		}
	}
	residual = ResidualExpr(rest, combined)
	if ri.LocalPred != nil {
		lp := expr.Remap(ri.LocalPred, combined)
		if residual == nil {
			residual = lp
		} else {
			residual = expr.NewAnd(residual, lp)
		}
	}
	return ix, outerPos, k, matchPages, residual, true
}

func (c *Ctx) indexNLCand(outer *plan.Node, ri *RelInfo, preds []*PredInfo, outerCols, innerCols []int, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet, ord plan.Ordering) *plan.Node {
	ix, outerPos, k, matchPages, residual, ok := c.indexJoinShape(outer, ri, preds, outerCols, innerCols, combined)
	if !ok {
		return nil
	}
	est := outer.Est
	est.PageReads += outer.Rows * (1 + matchPages)
	est.CPUTuples += outer.Rows * (k + 1)
	outerMk := outer.Make
	t, alias := ri.Entry.Table, ri.Ref.Binding()
	return plan.NewNode(&plan.Node{
		Kind:      "IndexNLJoin",
		Detail:    fmt.Sprintf("%s via %s", keyDetail(c, outerCols, innerCols), ix.Name()),
		Children:  []*plan.Node{outer},
		Est:       est,
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(ri.Schema),
		ColMap:    combined,
		Rels:      rels,
		Ordering:  ord,
		Make: func() exec.Operator {
			return exec.NewIndexNLJoin(outerMk(), t, ix, outerPos, residual, alias)
		},
	})
}

func (c *Ctx) fetchMatchesCand(outer *plan.Node, ri *RelInfo, preds []*PredInfo, outerCols, innerCols []int, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet, ord plan.Ordering) *plan.Node {
	ix, outerPos, k, matchPages, residual, ok := c.indexJoinShape(outer, ri, preds, outerCols, innerCols, combined)
	if !ok {
		return nil
	}
	t := ri.Entry.Table
	keyBytes := 0
	for _, col := range ix.Cols() {
		keyBytes += t.Schema().Col(col).Type.Width()
	}
	rowBytes := t.Schema().RowWidth()
	est := outer.Est
	est.NetMsgs += outer.Rows
	est.NetBytes += outer.Rows * (float64(keyBytes) + k*float64(rowBytes))
	est.PageReads += outer.Rows * (1 + matchPages)
	est.CPUTuples += outer.Rows * (k + 1)
	outerMk := outer.Make
	alias := ri.Ref.Binding()
	site := ri.Entry.Site
	return plan.NewNode(&plan.Node{
		Kind:      "FetchMatches",
		Detail:    fmt.Sprintf("%s @site%d", keyDetail(c, outerCols, innerCols), ri.Entry.Site),
		Children:  []*plan.Node{outer},
		Est:       est,
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(ri.Schema),
		ColMap:    combined,
		Rels:      rels,
		Ordering:  ord,
		Make: func() exec.Operator {
			return dist.NewFetchMatchesJoin(outerMk(), t, ix, outerPos, residual, alias, site)
		},
	})
}

func (c *Ctx) funcProbeCands(outer *plan.Node, ri *RelInfo, preds []*PredInfo, outerCols, innerCols []int, rows float64, outStats *stats.RelStats, combined []int, rels queryRelSet, ord plan.Ordering) ([]*plan.Node, error) {
	e := ri.Entry
	// Every argument column must be bound by an equi predicate from the
	// outer; otherwise the function cannot be invoked at this position.
	argOuter := make([]int, len(e.ArgCols))
	used := map[int]bool{}
	for i, a := range e.ArgCols {
		want := ri.Offset + a
		found := false
		for j, ic := range innerCols {
			if ic == want {
				argOuter[i] = outerCols[j]
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return nil, nil
		}
	}
	argPos, ok := OuterKeyPositions(outer, argOuter)
	if !ok {
		return nil, nil
	}
	// Residual: unused equi preds + non-equi preds + local predicates.
	var rest []*PredInfo
	for _, p := range preds {
		isBinding := false
		if p.EquiL >= 0 {
			for j := range innerCols {
				if used[j] && (p.EquiL == innerCols[j] || p.EquiR == innerCols[j]) {
					isBinding = true
					break
				}
			}
		}
		if !isBinding {
			rest = append(rest, p)
		}
	}
	residual := ResidualExpr(rest, combined)
	if ri.LocalPred != nil {
		lp := expr.Remap(ri.LocalPred, combined)
		if residual == nil {
			residual = lp
		} else {
			residual = expr.NewAnd(residual, lp)
		}
	}
	perCall := e.FnPerCall
	if perCall <= 0 {
		perCall = 1
	}
	if ri.RawStats != nil && ri.RawStats.Rows > 0 {
		distincts := make([]float64, len(e.ArgCols))
		for i, a := range e.ArgCols {
			distincts[i] = ri.RawStats.DistinctOf(a)
		}
		dom := stats.ProjectionCardinality(ri.RawStats.Rows, distincts)
		if dom >= 1 {
			perCall = ri.RawStats.Rows / dom
		}
	}
	outerMk := outer.Make
	alias := ri.Ref.Binding()
	outSchema := outer.OutSchema.Concat(ri.Schema)

	var nodes []*plan.Node
	// Plain repeated invocation.
	est := outer.Est
	est.FnCalls += outer.Rows
	est.CPUTuples += outer.Rows*(perCall+1) + rows
	if c.O.methodEnabled("funcprobe") {
		nodes = append(nodes, plan.NewNode(&plan.Node{
			Kind:      "FuncProbe",
			Detail:    fmt.Sprintf("%s(%d args)", e.Name, len(e.ArgCols)),
			Children:  []*plan.Node{outer},
			Est:       est,
			Rows:      rows,
			Stats:     outStats,
			OutSchema: outSchema,
			ColMap:    combined,
			Rels:      rels,
			Ordering:  ord,
			Make: func() exec.Operator {
				return udr.NewProbeJoin(outerMk(), e, argPos, residual, false, alias)
			},
		}))
	}
	// Memoized invocation: one call per distinct binding.
	if c.O.methodEnabled("funcprobememo") {
		dcols := make([]float64, len(argOuter))
		for i, col := range argOuter {
			dcols[i] = c.DistinctOfBlockCol(outer, col)
		}
		d := stats.ProjectionCardinality(outer.Rows, dcols)
		estM := outer.Est
		estM.FnCalls += d
		estM.CPUTuples += outer.Rows + d*perCall + outer.Rows*perCall + rows
		nodes = append(nodes, plan.NewNode(&plan.Node{
			Kind:      "FuncProbeMemo",
			Detail:    fmt.Sprintf("%s(%d args), ~%.0f distinct", e.Name, len(e.ArgCols), d),
			Children:  []*plan.Node{outer},
			Est:       estM,
			Rows:      rows,
			Stats:     outStats,
			OutSchema: outSchema,
			ColMap:    combined,
			Rels:      rels,
			Ordering:  ord,
			Make: func() exec.Operator {
				return udr.NewProbeJoin(outerMk(), e, argPos, residual, true, alias)
			},
		}))
	}
	return nodes, nil
}
