package opt

import (
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/value"
)

func TestHavingFinishing(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	// Groups of A by k have 20 rows each; HAVING over an impossible count
	// must filter everything, a satisfiable one must keep all 100 groups.
	base := &query.Block{
		Rels:    []query.RelRef{{Name: "A"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}},
	}
	withHaving := func(h expr.Expr) *query.Block {
		b := base.Clone()
		b.Having = h
		return b
	}
	p, err := o.OptimizeBlock(withHaving(expr.NewCmp(expr.GT, expr.NewCol(1, "n"), expr.Int(100))))
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("Having") == nil {
		t.Error("plan must contain a Having node")
	}
	rows, _ := runNode(t, p)
	if len(rows) != 0 {
		t.Errorf("impossible HAVING kept %d groups", len(rows))
	}
	p, err = o.OptimizeBlock(withHaving(expr.NewCmp(expr.GE, expr.NewCol(1, "n"), expr.Int(20))))
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = runNode(t, p)
	if len(rows) != 100 {
		t.Errorf("HAVING n >= 20 kept %d groups, want 100", len(rows))
	}
	// HAVING referencing a column outside the output errors at plan time.
	if _, err := o.OptimizeBlock(withHaving(expr.NewCmp(expr.GT, expr.NewCol(7, "??"), expr.Int(1)))); err == nil {
		t.Error("out-of-range HAVING must be rejected")
	}
}

func TestOrderByLimitFinishing(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:    []query.RelRef{{Name: "B"}},
		Proj:    []query.Output{{Expr: expr.NewCol(1, "B.w"), Name: "w"}},
		OrderBy: []query.OrderItem{{Col: 0, Desc: true}},
		Limit:   3,
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "TopN" {
		t.Errorf("ORDER BY + LIMIT should fuse into TopN, got %s", p.Kind)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].Int() != 990 || rows[2][0].Int() != 970 {
		t.Errorf("descending top-3 = %v", rows)
	}
	// Out-of-range ORDER BY errors.
	b2 := b.Clone()
	b2.OrderBy = []query.OrderItem{{Col: 5}}
	if _, err := o.OptimizeBlock(b2); err == nil {
		t.Error("out-of-range ORDER BY must be rejected")
	}
}

func TestConstantPredicateFinishing(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "B"}},
		Preds: []expr.Expr{expr.NewCmp(expr.EQ, expr.Int(1), expr.Int(2))},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := runNode(t, p)
	if len(rows) != 0 {
		t.Errorf("1=2 kept %d rows", len(rows))
	}
}

func TestFuncProbeWithinOpt(t *testing.T) {
	cat := buildCat(t)
	s := schema.New(
		schema.Column{Table: "F", Name: "k", Type: value.KindInt},
		schema.Column{Table: "F", Name: "twice", Type: value.KindInt},
	)
	cat.AddFunc("F", s, []int{0}, func(args value.Row) ([]value.Row, error) {
		return []value.Row{{args[0], value.NewInt(args[0].Int() * 2)}}, nil
	}, &stats.RelStats{Rows: 100, Cols: []stats.ColStats{{Distinct: 100}, {Distinct: 100}}}, 1)

	// B ⋈ F with a local predicate on the function output.
	// Layout: B:[0,1] F:[2,3].
	b := &query.Block{
		Rels: []query.RelRef{{Name: "B"}, {Name: "F"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "B.k"), expr.NewCol(2, "F.k")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "F.twice"), expr.Int(10)),
		},
	}
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, c := runNode(t, p)
	if len(rows) != 5 { // twice < 10 → k in 0..4
		t.Errorf("rows = %d, want 5", len(rows))
	}
	if c.FnCalls == 0 {
		t.Error("function must have been invoked")
	}
	// A function relation alone cannot be planned.
	if _, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "F"}}}); err == nil {
		t.Error("function-only block must fail (no access path)")
	}
	// Without a binding predicate it cannot join either.
	if _, err := o.OptimizeBlock(&query.Block{
		Rels: []query.RelRef{{Name: "B"}, {Name: "F"}},
	}); err == nil {
		t.Error("unbound function relation must fail")
	}
}
