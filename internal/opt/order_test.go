package opt

import (
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/value"
)

// fanOutJoin is the self-join A ⋈ A2 on k: 2000 rows × fan-out 20 =
// 40000 output rows, so sorting the output dwarfs sorting the inputs
// and an order-preserving merge join should win once the final Sort can
// be elided. Layout A:[0,1] A2:[2,3].
func fanOutJoin(orderBy ...query.OrderItem) *query.Block {
	return &query.Block{
		Rels: []query.RelRef{{Name: "A"}, {Name: "A", Alias: "A2"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "A.k"), expr.NewCol(2, "A2.k")),
		},
		OrderBy: orderBy,
	}
}

// assertOrdered fails unless rows are sorted on the given ORDER BY items
// (positions index the rows' own layout).
func assertOrdered(t *testing.T, rows []value.Row, items []query.OrderItem) {
	t.Helper()
	for i := 1; i < len(rows); i++ {
		for _, oi := range items {
			c := value.Compare(rows[i-1][oi.Col], rows[i][oi.Col])
			if oi.Desc {
				c = -c
			}
			if c < 0 {
				break
			}
			if c > 0 {
				t.Fatalf("row %d out of order on output column %d (desc=%v): %v then %v",
					i, oi.Col, oi.Desc, rows[i-1], rows[i])
			}
		}
	}
}

// TestOrderDifferentialMemoOnOff runs ORDER BY queries with the
// property memo on and off: both must return the same row multiset, and
// both must deliver the requested order.
func TestOrderDifferentialMemoOnOff(t *testing.T) {
	cat := buildCat(t)
	queries := []struct {
		name string
		b    func() *query.Block
	}{
		{"fanout-orderby-key", func() *query.Block {
			return fanOutJoin(query.OrderItem{Col: 0})
		}},
		{"fanout-orderby-desc", func() *query.Block {
			return fanOutJoin(query.OrderItem{Col: 0, Desc: true})
		}},
		{"fanout-orderby-two-keys", func() *query.Block {
			return fanOutJoin(query.OrderItem{Col: 0}, query.OrderItem{Col: 1})
		}},
		{"join-orderby-nonkey", func() *query.Block {
			b := joinAB()
			b.OrderBy = []query.OrderItem{{Col: 1}}
			return b
		}},
		{"orderby-with-limit", func() *query.Block {
			b := fanOutJoin(query.OrderItem{Col: 0})
			b.Limit = 17
			return b
		}},
		{"groupby-orderby", func() *query.Block {
			b := fanOutJoin()
			b.GroupBy = []int{0}
			b.Aggs = []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}}
			b.OrderBy = []query.OrderItem{{Col: 0}}
			return b
		}},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			var ref []string
			for _, disable := range []bool{false, true} {
				o := New(cat, cost.DefaultModel())
				o.DisableOrderProps = disable
				p, err := o.OptimizeBlock(q.b())
				if err != nil {
					t.Fatal(err)
				}
				rows, _ := runNode(t, p)
				assertOrdered(t, rows, q.b().OrderBy)
				got := canonRows(rows)
				if ref == nil {
					ref = got
					continue
				}
				if !sameStrings(ref, got) {
					t.Fatalf("memo on and off disagree: %d vs %d rows", len(ref), len(got))
				}
			}
		})
	}
}

// TestSortElisionBeatsResort pins the headline property: on the fan-out
// join the order-aware optimizer emits a plan with no Sort at all, and
// both its estimated and its measured cost are strictly lower than the
// property-blind plan's.
func TestSortElisionBeatsResort(t *testing.T) {
	cat := buildCat(t)
	model := cost.DefaultModel()

	aware := New(cat, model)
	pAware, err := aware.OptimizeBlock(fanOutJoin(query.OrderItem{Col: 0}))
	if err != nil {
		t.Fatal(err)
	}
	blind := New(cat, model)
	blind.DisableOrderProps = true
	pBlind, err := blind.OptimizeBlock(fanOutJoin(query.OrderItem{Col: 0}))
	if err != nil {
		t.Fatal(err)
	}

	if s := pAware.Find("Sort"); s != nil {
		t.Fatalf("order-aware plan still sorts:\n%s", plan.Format(pAware, model))
	}
	if s := pBlind.Find("Sort"); s == nil {
		t.Fatalf("property-blind plan must re-sort:\n%s", plan.Format(pBlind, model))
	}
	if pAware.Total(model) >= pBlind.Total(model) {
		t.Errorf("estimated cost must drop with elision: aware=%.2f blind=%.2f",
			pAware.Total(model), pBlind.Total(model))
	}

	rowsAware, cAware := runNode(t, pAware)
	rowsBlind, cBlind := runNode(t, pBlind)
	if model.Total(cAware) >= model.Total(cBlind) {
		t.Errorf("measured cost must drop with elision: aware=%.1f blind=%.1f",
			model.Total(cAware), model.Total(cBlind))
	}
	assertOrdered(t, rowsAware, []query.OrderItem{{Col: 0}})
	if !sameStrings(canonRows(rowsAware), canonRows(rowsBlind)) {
		t.Error("elision changed the result multiset")
	}
}

// TestForcedOrderSharesElisionPath verifies OptimizeBlockWithOrder goes
// through the same property-keeping code: the forced-order plan of the
// fan-out join elides the Sort too and returns identical, ordered rows.
func TestForcedOrderSharesElisionPath(t *testing.T) {
	cat := buildCat(t)
	model := cost.DefaultModel()
	o := New(cat, model)
	free, err := o.OptimizeBlock(fanOutJoin(query.OrderItem{Col: 0}))
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{{0, 1}, {1, 0}} {
		forced, err := o.OptimizeBlockWithOrder(fanOutJoin(query.OrderItem{Col: 0}), perm)
		if err != nil {
			t.Fatal(err)
		}
		if forced.Find("Sort") != nil {
			t.Errorf("forced order %v missed sort elision:\n%s", perm, plan.Format(forced, model))
		}
		rows, _ := runNode(t, forced)
		assertOrdered(t, rows, []query.OrderItem{{Col: 0}})
		rowsFree, _ := runNode(t, free)
		if !sameStrings(canonRows(rows), canonRows(rowsFree)) {
			t.Errorf("forced order %v changed results", perm)
		}
	}
}

// TestStreamAggregationOnOrderedInput: grouping on the join key above an
// order-preserving merge join should stream instead of hash, and keep
// the group order so the ORDER BY on top is elided as well. The join
// method is pinned to merge (for a 100-group output the final sort is
// tiny, so the hash plan would honestly win a free competition).
func TestStreamAggregationOnOrderedInput(t *testing.T) {
	cat := buildCat(t)
	model := cost.DefaultModel()
	b := func() *query.Block {
		blk := fanOutJoin(query.OrderItem{Col: 0})
		blk.GroupBy = []int{0}
		blk.Aggs = []expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggMax, Arg: expr.NewCol(1, "A.v"), Name: "mx"},
		}
		return blk
	}
	mergeOnly := func(o *Optimizer) {
		for _, m := range []string{"hash", "nlj", "indexnl"} {
			o.Disabled[m] = true
		}
	}
	o := New(cat, model)
	mergeOnly(o)
	p, err := o.OptimizeBlock(b())
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("StreamGroupBy") == nil || p.Find("Sort") != nil {
		t.Fatalf("expected streamed aggregation with elided sort:\n%s", plan.Format(p, model))
	}
	rows, _ := runNode(t, p)
	blind := New(cat, model)
	mergeOnly(blind)
	blind.DisableOrderProps = true
	p2, err := blind.OptimizeBlock(b())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Find("StreamGroupBy") != nil {
		t.Fatal("property-blind optimizer must hash-aggregate")
	}
	rows2, _ := runNode(t, p2)
	if !sameStrings(canonRows(rows), canonRows(rows2)) {
		t.Error("streamed aggregation changed results")
	}
	assertOrdered(t, rows, []query.OrderItem{{Col: 0}})
}

// TestMemoKeepsSecondBestOrderedPlan peeks at the DP table: the full
// subset of the fan-out join must hold both an unordered cheapest entry
// and a pricier ordered one, which is the whole point of the
// property-aware memo.
func TestMemoKeepsSecondBestOrderedPlan(t *testing.T) {
	cat := buildCat(t)
	o := New(cat, cost.DefaultModel())
	ctx, err := o.newCtx(fanOutJoin(query.OrderItem{Col: 0}))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := o.runDP(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ordered, unordered bool
	for _, k := range sortedProps(tbl) {
		if len(tbl[k].prop) > 0 {
			ordered = true
		} else {
			unordered = true
		}
	}
	if !ordered || !unordered {
		t.Errorf("full subset should retain ordered and unordered entries, got props %v", sortedProps(tbl))
	}
}
