package opt

import (
	"math"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func remoteCat(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	s := schema.New(
		schema.Column{Table: "R", Name: "k", Type: value.KindInt},
		schema.Column{Table: "R", Name: "v", Type: value.KindInt},
	)
	tb := storage.NewTable("R", s)
	for i := 0; i < 1000; i++ {
		tb.MustInsert(value.NewInt(int64(i)), value.NewInt(int64(i*3)))
	}
	cat.AddRemoteTable(tb, 1)
	return cat
}

// TestRemoteScanEstimateExact: for a full remote scan, the optimizer's
// network estimate must match the executed counters exactly — shipping
// is deterministic (rows × width + one message).
func TestRemoteScanEstimateExact(t *testing.T) {
	cat := remoteCat(t)
	o := New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(&query.Block{Rels: []query.RelRef{{Name: "R"}}})
	if err != nil {
		t.Fatal(err)
	}
	_, c := runNode(t, p)
	if p.Est.NetBytes != float64(c.NetBytes) {
		t.Errorf("NetBytes estimate %g vs measured %d", p.Est.NetBytes, c.NetBytes)
	}
	if p.Est.NetMsgs != float64(c.NetMsgs) {
		t.Errorf("NetMsgs estimate %g vs measured %d", p.Est.NetMsgs, c.NetMsgs)
	}
	if c.NetBytes != 1000*16 {
		t.Errorf("1000 rows × 16 bytes expected, got %d", c.NetBytes)
	}
}

// TestRemoteLocalPredReducesShipping: local predicates on a remote
// relation are applied at the remote site, shrinking the shipment —
// both in the estimate and in execution.
func TestRemoteLocalPredReducesShipping(t *testing.T) {
	cat := remoteCat(t)
	o := New(cat, cost.DefaultModel())
	b := &query.Block{
		Rels:  []query.RelRef{{Name: "R"}},
		Preds: []expr.Expr{expr.NewCmp(expr.LT, expr.NewCol(0, "R.k"), expr.Int(100))},
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	_, c := runNode(t, p)
	if c.NetBytes >= 1000*16 {
		t.Errorf("predicate should be pushed to the remote side: shipped %d bytes", c.NetBytes)
	}
	if math.Abs(p.Est.NetBytes-float64(c.NetBytes)) > 0.2*float64(c.NetBytes)+64 {
		t.Errorf("shipping estimate %g far from measured %d", p.Est.NetBytes, c.NetBytes)
	}
}
