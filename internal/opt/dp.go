package opt

import (
	"fmt"
	"sort"

	"filterjoin/internal/cost"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

// memoEntry is one plan kept for a (relation subset, order property)
// pair: the cheapest known plan whose physical ordering delivers prop.
// prop is the plan's ordering reduced to the block's interesting
// columns (see interestingPrefix); the "" bucket holds the cheapest
// plan regardless of order.
type memoEntry struct {
	prop plan.Ordering
	node *plan.Node
}

// propTable is the per-subset slice of the memo, keyed by the canonical
// property string.
type propTable map[string]*memoEntry

// sortedProps returns the table's property keys in sorted order, so
// every walk over a subset's entries is deterministic.
func sortedProps(tbl propTable) []string {
	keys := make([]string, 0, len(tbl))
	for k := range tbl {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keepCandidate offers cand as a memo entry for subset ns, applying the
// property-aware dominance rule: a candidate is dropped when some kept
// plan is no costlier AND delivers the candidate's order property; a
// kept candidate conversely evicts entries it dominates. With order
// properties disabled every plan lands in the "" bucket and this
// reduces to the classic cheapest-per-subset rule. One call accounts
// for one considered plan in Metrics and the trace.
func (o *Optimizer) keepCandidate(ctx *Ctx, tbl propTable, ns query.RelSet, cand *plan.Node) bool {
	o.Metrics.PlansConsidered++
	if len(tbl) == 0 {
		o.Metrics.SubsetsExplored++
	}
	prop := ctx.interestingPrefix(cand.Ordering)
	key := prop.Key()
	candCost := cand.Total(o.Model)

	kept := true
	for _, e := range tbl {
		if cost.LessEq(e.node.Total(o.Model), candCost) && e.node.Ordering.Satisfies(prop) {
			kept = false
			break
		}
	}
	if kept {
		tbl[key] = &memoEntry{prop: prop, node: cand}
		// Evict entries the new plan dominates on both cost and order.
		for _, k := range sortedProps(tbl) {
			if k == key {
				continue
			}
			e := tbl[k]
			if cost.LessEq(candCost, e.node.Total(o.Model)) && cand.Ordering.Satisfies(e.prop) {
				delete(tbl, k)
			}
		}
	}
	if o.Traces() {
		o.trace(TraceEvent{Kind: EvCandidate, Subset: ctx.RelSetName(ns),
			Method: cand.Kind, Detail: cand.Detail,
			Cost: candCost, Kept: kept, Prop: ctx.propName(prop)})
	}
	return kept
}

// candidatesFor collects every enabled join method's plans for
// extending outer with the inner relation — the built-in methods plus
// registered external ones (the Filter Join). Both the DP loop and the
// forced-order path go through here.
func (o *Optimizer) candidatesFor(ctx *Ctx, outer *plan.Node, inner int) ([]*plan.Node, error) {
	cands, err := ctx.builtinCandidates(outer, inner)
	if err != nil {
		return nil, err
	}
	for _, m := range o.extra {
		if !o.methodEnabled(m.Name()) {
			continue
		}
		extra, err := m.Candidates(ctx, outer, inner)
		if err != nil {
			return nil, err
		}
		cands = append(cands, extra...)
	}
	return cands, nil
}

// keepLeaf seeds a relation's access path into its singleton subset.
func (o *Optimizer) keepLeaf(ctx *Ctx, memo map[query.RelSet]propTable, i int, leaf *plan.Node) {
	s := query.NewRelSet(i)
	prop := ctx.interestingPrefix(leaf.Ordering)
	memo[s] = propTable{prop.Key(): &memoEntry{prop: prop, node: leaf}}
	o.Metrics.SubsetsExplored++
	o.Metrics.PlansConsidered++
	if o.Traces() {
		o.trace(TraceEvent{Kind: EvLeaf, Subset: ctx.RelSetName(s),
			Method: leaf.Kind, Detail: leaf.Detail,
			Cost: leaf.Total(o.Model), Kept: true, Prop: ctx.propName(prop)})
	}
}

// runDP performs System R bottom-up dynamic programming over left-deep
// join orders with a property-aware memo: for every subset of relations
// the cheapest plan per interesting order is kept, and each subset of
// size k is built by extending every kept size-(k-1) plan with one
// relation through every enabled join method. Cartesian products are
// deferred: a subset is extended with unconnected relations only when
// no predicate-connected extension exists. The returned table holds the
// full subset's surviving entries; finishBest picks among them.
func (o *Optimizer) runDP(ctx *Ctx) (propTable, error) {
	n := len(ctx.Rels)
	memo := map[query.RelSet]propTable{}

	for i, ri := range ctx.Rels {
		if ri.Access != nil {
			o.keepLeaf(ctx, memo, i, ri.Access)
		}
	}
	if len(memo) == 0 {
		return nil, fmt.Errorf("opt: no relation in the block has an access path (a function-backed relation cannot be outermost)")
	}
	if n == 1 {
		if tbl, ok := memo[query.NewRelSet(0)]; ok {
			return tbl, nil
		}
		return nil, fmt.Errorf("opt: single relation has no access path")
	}

	for size := 2; size <= n; size++ {
		var prev []query.RelSet
		for s := range memo {
			if s.Count() == size-1 {
				prev = append(prev, s)
			}
		}
		// Deterministic exploration order: map iteration would otherwise
		// let exact-cost ties break differently run to run, perturbing
		// EXPLAIN output and traces.
		sort.Slice(prev, func(a, b int) bool { return prev[a] < prev[b] })
		for _, s := range prev {
			tbl := memo[s]
			exts := o.extensions(ctx, s, n)
			for _, key := range sortedProps(tbl) {
				outer := tbl[key].node
				for _, i := range exts {
					cands, err := o.candidatesFor(ctx, outer, i)
					if err != nil {
						return nil, err
					}
					ns := s.With(i)
					if memo[ns] == nil {
						memo[ns] = propTable{}
					}
					for _, cand := range cands {
						o.keepCandidate(ctx, memo[ns], ns, cand)
					}
				}
			}
		}
	}

	full := query.RelSet(0)
	for i := 0; i < n; i++ {
		full = full.With(i)
	}
	tbl, ok := memo[full]
	if !ok || len(tbl) == 0 {
		return nil, fmt.Errorf("opt: no complete plan found (disconnected query with an unbindable function relation?)")
	}
	return tbl, nil
}

// finishBest layers the block's output shape on every surviving
// full-subset entry and returns the cheapest finished plan. Running
// finish per entry is what makes sort elision honest: an ordered join
// that is pricier than the hash plan still wins when skipping the final
// Sort more than pays the difference, and the comparison happens on
// completed plans under the optimizer's own cost model.
func (o *Optimizer) finishBest(ctx *Ctx, tbl propTable) (*plan.Node, error) {
	var best *plan.Node
	for _, key := range sortedProps(tbl) {
		p, err := o.finish(ctx, tbl[key].node)
		if err != nil {
			return nil, err
		}
		if best == nil || cost.Less(p.Total(o.Model), best.Total(o.Model)) {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no complete plan found")
	}
	return best, nil
}

// OptimizeBlockWithOrder optimizes b with the join order fixed to the
// given permutation of relation ordinals: the DP collapses to a single
// left-deep chain, but every enabled join method still competes at each
// step, and candidates flow through the same keep/prune/trace path as
// the free search (per-property entries included). Experiment E2 uses
// this to cost all six orders of Fig 3.
func (o *Optimizer) OptimizeBlockWithOrder(b *query.Block, order []int) (*plan.Node, error) {
	if len(order) != len(b.Rels) {
		return nil, fmt.Errorf("opt: order has %d entries for %d relations", len(order), len(b.Rels))
	}
	o.depth++
	defer func() { o.depth-- }()
	ctx, err := o.newCtx(b)
	if err != nil {
		return nil, err
	}
	leaf := ctx.Rels[order[0]].Access
	if leaf == nil {
		return nil, fmt.Errorf("opt: relation %d cannot be outermost (no access path)", order[0])
	}
	memo := map[query.RelSet]propTable{}
	o.keepLeaf(ctx, memo, order[0], leaf)
	cur := memo[query.NewRelSet(order[0])]
	subset := query.NewRelSet(order[0])
	for _, i := range order[1:] {
		ns := subset.With(i)
		next := propTable{}
		for _, key := range sortedProps(cur) {
			cands, err := o.candidatesFor(ctx, cur[key].node, i)
			if err != nil {
				return nil, err
			}
			for _, cand := range cands {
				o.keepCandidate(ctx, next, ns, cand)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("opt: no join method applies at relation %d in the forced order", i)
		}
		cur, subset = next, ns
	}
	p, err := o.finishBest(ctx, cur)
	if err != nil {
		return nil, err
	}
	o.attachFallback(p, func() (*plan.Node, error) { return o.OptimizeBlockWithOrder(b, order) })
	return p, nil
}

// extensions returns the relations the subset should be extended with:
// connected ones if any, otherwise every remaining relation (deferred
// cross products).
func (o *Optimizer) extensions(ctx *Ctx, s query.RelSet, n int) []int {
	var connected, rest []int
	for i := 0; i < n; i++ {
		if s.Has(i) {
			continue
		}
		if len(ctx.ApplicablePreds(s, i)) > 0 {
			connected = append(connected, i)
		} else {
			rest = append(rest, i)
		}
	}
	if len(connected) > 0 {
		return connected
	}
	return rest
}
