package opt

import (
	"fmt"
	"sort"

	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

// runDP performs System R bottom-up dynamic programming over left-deep
// join orders: the best plan is kept for every subset of relations, and
// each subset of size k is built by extending a size-(k-1) subset with
// one relation through every enabled join method. Cartesian products are
// deferred: a subset is extended with unconnected relations only when no
// predicate-connected extension exists.
func (o *Optimizer) runDP(ctx *Ctx) (*plan.Node, error) {
	n := len(ctx.Rels)
	best := map[query.RelSet]*plan.Node{}

	for i, ri := range ctx.Rels {
		if ri.Access != nil {
			best[query.NewRelSet(i)] = ri.Access
			o.Metrics.SubsetsExplored++
			o.Metrics.PlansConsidered++
			if o.Traces() {
				o.trace(TraceEvent{Kind: EvLeaf, Subset: ctx.RelSetName(query.NewRelSet(i)),
					Method: ri.Access.Kind, Detail: ri.Access.Detail,
					Cost: ri.Access.Total(o.Model), Kept: true})
			}
		}
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("opt: no relation in the block has an access path (a function-backed relation cannot be outermost)")
	}
	if n == 1 {
		full := query.NewRelSet(0)
		if p, ok := best[full]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("opt: single relation has no access path")
	}

	for size := 2; size <= n; size++ {
		var prev []query.RelSet
		for s := range best {
			if s.Count() == size-1 {
				prev = append(prev, s)
			}
		}
		// Deterministic exploration order: map iteration would otherwise
		// let exact-cost ties break differently run to run, perturbing
		// EXPLAIN output and traces.
		sort.Slice(prev, func(a, b int) bool { return prev[a] < prev[b] })
		for _, s := range prev {
			outer := best[s]
			exts := o.extensions(ctx, s, n)
			for _, i := range exts {
				cands, err := ctx.builtinCandidates(outer, i)
				if err != nil {
					return nil, err
				}
				for _, m := range o.extra {
					if !o.methodEnabled(m.Name()) {
						continue
					}
					extra, err := m.Candidates(ctx, outer, i)
					if err != nil {
						return nil, err
					}
					cands = append(cands, extra...)
				}
				ns := s.With(i)
				for _, cand := range cands {
					o.Metrics.PlansConsidered++
					cur, ok := best[ns]
					if !ok {
						o.Metrics.SubsetsExplored++
					}
					kept := !ok || cand.Total(o.Model) < cur.Total(o.Model)
					if kept {
						best[ns] = cand
					}
					if o.Traces() {
						o.trace(TraceEvent{Kind: EvCandidate, Subset: ctx.RelSetName(ns),
							Method: cand.Kind, Detail: cand.Detail,
							Cost: cand.Total(o.Model), Kept: kept})
					}
				}
			}
		}
	}

	full := query.RelSet(0)
	for i := 0; i < n; i++ {
		full = full.With(i)
	}
	p, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("opt: no complete plan found (disconnected query with an unbindable function relation?)")
	}
	return p, nil
}

// OptimizeBlockWithOrder optimizes b with the join order fixed to the
// given permutation of relation ordinals: the DP collapses to a single
// left-deep chain, but every enabled join method still competes at each
// step. Experiment E2 uses this to cost all six orders of Fig 3.
func (o *Optimizer) OptimizeBlockWithOrder(b *query.Block, order []int) (*plan.Node, error) {
	if len(order) != len(b.Rels) {
		return nil, fmt.Errorf("opt: order has %d entries for %d relations", len(order), len(b.Rels))
	}
	o.depth++
	defer func() { o.depth-- }()
	ctx, err := o.newCtx(b)
	if err != nil {
		return nil, err
	}
	cur := ctx.Rels[order[0]].Access
	if cur == nil {
		return nil, fmt.Errorf("opt: relation %d cannot be outermost (no access path)", order[0])
	}
	for _, i := range order[1:] {
		cands, err := ctx.builtinCandidates(cur, i)
		if err != nil {
			return nil, err
		}
		for _, m := range o.extra {
			if !o.methodEnabled(m.Name()) {
				continue
			}
			extra, err := m.Candidates(ctx, cur, i)
			if err != nil {
				return nil, err
			}
			cands = append(cands, extra...)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("opt: no join method applies at relation %d in the forced order", i)
		}
		best := cands[0]
		for _, cand := range cands[1:] {
			o.Metrics.PlansConsidered++
			if cand.Total(o.Model) < best.Total(o.Model) {
				best = cand
			}
		}
		cur = best
	}
	return o.finish(ctx, cur)
}

// extensions returns the relations the subset should be extended with:
// connected ones if any, otherwise every remaining relation (deferred
// cross products).
func (o *Optimizer) extensions(ctx *Ctx, s query.RelSet, n int) []int {
	var connected, rest []int
	for i := 0; i < n; i++ {
		if s.Has(i) {
			continue
		}
		if len(ctx.ApplicablePreds(s, i)) > 0 {
			connected = append(connected, i)
		} else {
			rest = append(rest, i)
		}
	}
	if len(connected) > 0 {
		return connected
	}
	return rest
}
