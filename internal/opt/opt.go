// Package opt implements a System R style cost-based query optimizer:
// bottom-up dynamic programming over left-deep join orders, with
// per-join selection among multiple join methods. Join methods are
// partly built in (nested loops, hash, sort-merge, index nested loops,
// function probes, remote fetch-matches) and partly pluggable via the
// JoinMethod interface — the paper's Filter Join (internal/core)
// registers itself through that interface, exactly as §3 of the paper
// prescribes: magic sets enters the optimizer as one more join method
// with its own cost formula, not as a query rewrite.
package opt

import (
	"fmt"
	"sync"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/stats"
)

// JoinMethod is a pluggable join algorithm the DP loop consults at every
// join step. Candidates returns zero or more complete plans for joining
// the outer (a plan over some subset of the block's relations) with the
// inner relation (an ordinal into ctx.Rels). Returned nodes must follow
// the convention that their output is the outer's columns followed by
// the inner relation's columns.
type JoinMethod interface {
	Name() string
	Candidates(ctx *Ctx, outer *plan.Node, inner int) ([]*plan.Node, error)
}

// Metrics instruments one optimizer (cumulative across invocations).
// Experiment E7 uses PlansConsidered to show that enabling the Filter
// Join does not change the asymptotic complexity of optimization, and E4
// uses NestedOptimizations to show Assumption 1 holds via caching.
type Metrics struct {
	PlansConsidered     int64 // candidate plans costed
	SubsetsExplored     int64 // DP table entries created
	NestedOptimizations int64 // recursive OptimizeBlock invocations
}

// Merge folds the counters collected by a forked optimizer back in.
func (m *Metrics) Merge(other Metrics) {
	m.PlansConsidered += other.PlansConsidered
	m.SubsetsExplored += other.SubsetsExplored
	m.NestedOptimizations += other.NestedOptimizations
}

// Optimizer is a reusable cost-based optimizer over a catalog.
type Optimizer struct {
	Cat   *catalog.Catalog
	Model cost.Model

	// Disabled turns off join methods by name ("hash", "merge", "nlj",
	// "indexnl", "funcprobe", "fetchmatches", or an extra method's name).
	Disabled map[string]bool

	// StatsOverride substitutes statistics for named relations; the
	// parametric view coster uses it to plant synthetic filter-set
	// cardinalities without building data.
	StatsOverride map[string]*stats.RelStats

	// MaxRelations caps the DP size (default 14).
	MaxRelations int

	// DisableOrderProps turns off interesting-order tracking: the memo
	// collapses to one plan per relation subset, merge joins always
	// re-sort their inputs, aggregation always hashes, and the final
	// ORDER BY always sorts — the pre-property optimizer, kept for
	// ablation and differential testing.
	DisableOrderProps bool

	// DegreeOfParallelism is the intra-query parallelism knob. 1 (or 0)
	// keeps every code path serial and byte-identical to the classic
	// engine. Above 1, the optimizer emits exchange-based operators
	// (ParallelScan, partitioned hash joins) with that worker count and
	// fans the parametric coster's sample points out across forks.
	DegreeOfParallelism int

	// BatchSize is the executor morsel size recorded on emitted plan
	// roots (and shown by EXPLAIN as batch=N). 0 or 1 means the
	// row-at-a-time engine. It does not influence plan choice: both
	// engines charge identical counter totals by construction.
	BatchSize int

	Metrics Metrics

	// Tracer, when set, observes the search: DP subsets explored, join
	// candidates kept/pruned with their costs, nested optimizations,
	// parametric-coster cache traffic, and Filter Join variants.
	Tracer Tracer

	extra         []JoinMethod
	viewLeafCache map[string]*plan.Node
	depth         int
	tempSeq       int

	// metricsMu guards concurrent MergeMetrics calls from sessions folding
	// per-query fork counters back into a shared prototype optimizer. The
	// rest of the struct is NOT protected: OptimizeBlock mutates depth,
	// tempSeq and viewLeafCache and must run on a private fork when the
	// optimizer is shared.
	metricsMu sync.Mutex
}

// New creates an optimizer over cat with the given cost model.
func New(cat *catalog.Catalog, model cost.Model) *Optimizer {
	return &Optimizer{
		Cat:           cat,
		Model:         model,
		Disabled:      map[string]bool{},
		StatsOverride: map[string]*stats.RelStats{},
		MaxRelations:  14,
		viewLeafCache: map[string]*plan.Node{},
	}
}

// Register adds an external join method (e.g. the Filter Join).
func (o *Optimizer) Register(m JoinMethod) { o.extra = append(o.extra, m) }

// ExtraMethods returns the registered external methods.
func (o *Optimizer) ExtraMethods() []JoinMethod { return o.extra }

// InvalidateCaches drops memoized view leaves (after catalog changes).
func (o *Optimizer) InvalidateCaches() {
	o.viewLeafCache = map[string]*plan.Node{}
}

// TempName returns a unique name for transient catalog entries.
func (o *Optimizer) TempName(prefix string) string {
	o.tempSeq++
	return fmt.Sprintf("__%s_%d", prefix, o.tempSeq)
}

// DOP returns the effective degree of parallelism (at least 1).
func (o *Optimizer) DOP() int {
	if o.DegreeOfParallelism < 1 {
		return 1
	}
	return o.DegreeOfParallelism
}

// Batch returns the effective executor batch size (at least 1).
func (o *Optimizer) Batch() int {
	if o.BatchSize < 1 {
		return 1
	}
	return o.BatchSize
}

// Fork returns an isolated optimizer for a concurrent nested
// optimization (one parametric-coster sample point). The fork sees a
// cloned catalog — transient relations it registers never touch the
// parent's — plus private Disabled/StatsOverride/metrics/temp-name
// state seeded from the parent, so forks never contend and their
// results are identical to a serial nested run. The fork runs serially
// itself (DegreeOfParallelism 1) and drops the tracer: trace ordering
// under fan-out would be nondeterministic. Callers merge the fork's
// Metrics back in a deterministic order after the fan-in.
func (o *Optimizer) Fork() *Optimizer {
	f := &Optimizer{
		Cat:               o.Cat.Clone(),
		Model:             o.Model,
		Disabled:          make(map[string]bool, len(o.Disabled)),
		StatsOverride:     make(map[string]*stats.RelStats, len(o.StatsOverride)),
		MaxRelations:      o.MaxRelations,
		DisableOrderProps: o.DisableOrderProps,
		extra:             o.extra,
		viewLeafCache:     map[string]*plan.Node{},
		depth:             o.depth,
		tempSeq:           o.tempSeq,
	}
	for k, v := range o.Disabled {
		f.Disabled[k] = v
	}
	for k, v := range o.StatsOverride {
		f.StatsOverride[k] = v
	}
	return f
}

// MergeMetrics folds a forked optimizer's counters into this one under a
// lock, so concurrent sessions optimizing on per-query forks can account
// their search work against the shared prototype.
func (o *Optimizer) MergeMetrics(m Metrics) {
	o.metricsMu.Lock()
	o.Metrics.Merge(m)
	o.metricsMu.Unlock()
}

// OptimizeBlock optimizes a query block and returns the best physical
// plan, including the block's output shape (projection / aggregation /
// distinct) on top of the best join order.
func (o *Optimizer) OptimizeBlock(b *query.Block) (*plan.Node, error) {
	if len(b.Rels) == 0 {
		return nil, fmt.Errorf("opt: block has no relations")
	}
	if len(b.Rels) > o.MaxRelations {
		return nil, fmt.Errorf("opt: %d relations exceeds MaxRelations=%d", len(b.Rels), o.MaxRelations)
	}
	o.depth++
	if o.depth > 16 {
		o.depth--
		return nil, fmt.Errorf("opt: nested optimization too deep (view cycle?)")
	}
	defer func() { o.depth-- }()
	if o.depth > 1 {
		o.Metrics.NestedOptimizations++
		o.trace(TraceEvent{Kind: EvNested, Depth: o.depth, Detail: blockDesc(b)})
	}

	ctx, err := o.newCtx(b)
	if err != nil {
		return nil, err
	}
	tbl, err := o.runDP(ctx)
	if err != nil {
		return nil, err
	}
	p, err := o.finishBest(ctx, tbl)
	if err != nil {
		return nil, err
	}
	o.attachFallback(p, o.optimizeBlockFallback(b))
	if bs := o.Batch(); bs > 1 && o.depth == 1 {
		p.BatchSize = bs
		if p.Fallback != nil {
			p.Fallback.BatchSize = bs
		}
	}
	return p, nil
}

// Depth reports the current nesting depth (1 while inside a top-level
// optimization); used by external methods to bound recursion.
func (o *Optimizer) Depth() int { return o.depth }

// methodEnabled reports whether the named method may produce candidates.
func (o *Optimizer) methodEnabled(name string) bool { return !o.Disabled[name] }
