package opt

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
)

// RelInfo is the optimizer's per-relation working state for one block.
type RelInfo struct {
	Index  int
	Ref    query.RelRef
	Entry  *catalog.Entry
	Schema *schema.Schema // alias-qualified
	Offset int            // start of this relation's columns in the block layout
	Width  int

	// ColMap maps block layout columns to this relation's own column
	// positions (-1 for columns of other relations).
	ColMap []int

	// Access is the best leaf plan: scan (+ local predicates), shipped
	// remote scan, or fully computed view. It is nil for function-backed
	// relations, which can only be reached through probe-style joins.
	Access *plan.Node

	RawStats      *stats.RelStats // before local predicates
	FilteredStats *stats.RelStats // after local predicates
	FilteredRows  float64
	LocalSel      float64
	LocalPred     expr.Expr // conjunction in block layout; nil if none
}

// PredInfo is one WHERE conjunct with its referenced relation set and,
// when it is a simple cross-relation equality, the two column sides.
type PredInfo struct {
	Expr  expr.Expr
	Rels  query.RelSet
	EquiL int // block column, -1 unless simple equi join pred
	EquiR int
	// Class identifies the equality equivalence class the predicate's
	// columns belong to (-1 for non-equi predicates). Derived marks
	// predicates added by transitive closure (a=b ∧ b=c ⊢ a=c); they
	// enable additional join orders but only one predicate per class
	// counts toward join selectivity.
	Class   int
	Derived bool
}

// Ctx is the per-block optimization context handed to join methods.
type Ctx struct {
	O      *Optimizer
	Block  *query.Block
	Layout *query.Layout
	Rels   []*RelInfo
	Preds  []*PredInfo

	// interestingCols marks block columns whose sort order can matter
	// downstream (merge keys, GROUP BY, ORDER BY provenance); the memo
	// only distinguishes orderings over these columns. Empty when the
	// property-aware memo is disabled.
	interestingCols map[int]bool
}

func (o *Optimizer) newCtx(b *query.Block) (*Ctx, error) {
	layout, err := b.Layout(o.Cat)
	if err != nil {
		return nil, err
	}
	if err := validateBlock(b, layout); err != nil {
		return nil, err
	}
	ctx := &Ctx{O: o, Block: b, Layout: layout}

	// Classify predicates.
	for _, p := range b.Preds {
		pi := &PredInfo{Expr: p, Rels: query.PredRels(p, layout), EquiL: -1, EquiR: -1, Class: -1}
		if c, ok := p.(expr.Cmp); ok && c.Op == expr.EQ {
			lc, lok := c.L.(expr.Col)
			rc, rok := c.R.(expr.Col)
			if lok && rok {
				lr, rr := layout.RelOfCol(lc.Idx), layout.RelOfCol(rc.Idx)
				if lr >= 0 && rr >= 0 && lr != rr {
					pi.EquiL, pi.EquiR = lc.Idx, rc.Idx
				}
			}
		}
		ctx.Preds = append(ctx.Preds, pi)
	}
	ctx.closeEquiClasses()
	ctx.computeInterestingCols()

	// Build per-relation info and leaf access plans.
	for i, ref := range b.Rels {
		ri, err := o.buildRelInfo(ctx, i, ref)
		if err != nil {
			return nil, err
		}
		ctx.Rels = append(ctx.Rels, ri)
	}
	return ctx, nil
}

func (o *Optimizer) buildRelInfo(ctx *Ctx, i int, ref query.RelRef) (*RelInfo, error) {
	entry, err := o.Cat.Get(ref.Name)
	if err != nil {
		return nil, err
	}
	sch, err := entry.Schema(o.Cat)
	if err != nil {
		return nil, err
	}
	sch = sch.Rename(ref.Binding())
	ri := &RelInfo{
		Index:  i,
		Ref:    ref,
		Entry:  entry,
		Schema: sch,
		Offset: ctx.Layout.Offsets[i],
		Width:  ctx.Layout.Widths[i],
	}
	ri.ColMap = plan.EmptyColMap(ctx.Layout.Schema.Len())
	for j := 0; j < ri.Width; j++ {
		ri.ColMap[ri.Offset+j] = j
	}

	// Gather local predicates (exactly this relation referenced).
	var locals []expr.Expr
	for _, p := range ctx.Preds {
		if p.Rels == query.NewRelSet(i) {
			locals = append(locals, p.Expr)
		}
	}
	if len(locals) > 0 {
		ri.LocalPred = expr.NewAnd(locals...)
	}

	switch entry.Kind {
	case catalog.KindBase, catalog.KindRemote:
		o.buildStoredLeaf(ctx, ri)
	case catalog.KindView:
		if err := o.buildViewLeaf(ctx, ri); err != nil {
			return nil, err
		}
	case catalog.KindFunc:
		o.buildFuncInfo(ctx, ri)
	default:
		return nil, fmt.Errorf("opt: unsupported relation kind for %q", ref.Name)
	}
	return ri, nil
}

// validateBlock rejects blocks whose expressions reference columns
// outside the layout — programmatic construction errors that would
// otherwise only surface as execution failures.
func validateBlock(b *query.Block, layout *query.Layout) error {
	w := layout.Schema.Len()
	check := func(e expr.Expr, what string) error {
		cols := map[int]bool{}
		e.CollectCols(cols)
		for c := range cols {
			if c < 0 || c >= w {
				return fmt.Errorf("opt: %s %q references column %d outside the block layout (width %d)",
					what, e.String(), c, w)
			}
		}
		return nil
	}
	for _, p := range b.Preds {
		if err := check(p, "predicate"); err != nil {
			return err
		}
	}
	for _, o := range b.Proj {
		if err := check(o.Expr, "projection"); err != nil {
			return err
		}
	}
	for _, a := range b.Aggs {
		if a.Arg != nil {
			if err := check(a.Arg, "aggregate"); err != nil {
				return err
			}
		}
	}
	for _, g := range b.GroupBy {
		if g < 0 || g >= w {
			return fmt.Errorf("opt: GROUP BY column %d outside the block layout (width %d)", g, w)
		}
	}
	return nil
}

// relStats returns the statistics for a stored/function relation,
// honoring StatsOverride.
func (o *Optimizer) relStats(e *catalog.Entry) *stats.RelStats {
	if s, ok := o.StatsOverride[e.Name]; ok {
		return s
	}
	return e.Stats()
}

func (o *Optimizer) buildStoredLeaf(ctx *Ctx, ri *RelInfo) {
	t := ri.Entry.Table
	raw := o.relStats(ri.Entry)
	if raw == nil {
		raw = &stats.RelStats{Rows: float64(t.NumRows()), Cols: make([]stats.ColStats, ri.Width)}
	}
	ri.RawStats = raw
	sel := 1.0
	var localLocal expr.Expr // local predicate remapped to relation-local layout
	if ri.LocalPred != nil {
		localLocal = expr.Remap(ri.LocalPred, ri.ColMap)
		sel = stats.Selectivity(localLocal, raw)
	}
	ri.LocalSel = sel
	ri.FilteredStats = raw.Scale(sel)
	ri.FilteredRows = ri.FilteredStats.Rows

	pages := float64(storage.PagesFor(int(raw.Rows+0.5), t.RowsPerPage()))
	est := cost.Estimate{PageReads: pages, CPUTuples: raw.Rows}
	if localLocal != nil {
		est.CPUTuples += raw.Rows // Select charges one CPU op per evaluated row
	}
	detail := ri.Ref.Name
	if ri.Ref.Alias != "" && ri.Ref.Alias != ri.Ref.Name {
		detail += " " + ri.Ref.Alias
	}
	kind := "TableScan"
	alias := ri.Ref.Binding()
	mk := func() exec.Operator {
		var op exec.Operator = exec.NewTableScan(t, alias)
		if localLocal != nil {
			op = exec.NewSelect(op, localLocal)
		}
		return op
	}
	// Index-assisted access: an equality predicate on an indexed column
	// turns the leaf into an index lookup when that is cheaper.
	if localLocal != nil && o.methodEnabled("indexaccess") {
		if ixEst, ixMk, ixDetail, ok := o.indexAccessPlan(ri, localLocal, alias); ok {
			if cost.Less(o.Model.TotalEstimate(ixEst), o.Model.TotalEstimate(est)) {
				est, mk = ixEst, ixMk
				kind = "IndexLookup"
				detail += " " + ixDetail
			}
		}
	}
	// Exchange parallelism: a plain heap scan of a local base table splits
	// into page-range morsels across DOP workers. The estimate is the
	// serial one — workers charge exactly the serial per-page/per-row
	// units and coordination is cost-free by convention.
	parallel := 0
	if dop := o.DOP(); dop > 1 && kind == "TableScan" && ri.Entry.Kind == catalog.KindBase {
		parallel = dop
		kind = "ParallelScan"
		mk = func() exec.Operator { return exec.NewParallelScan(t, alias, dop, localLocal) }
	}
	if ri.Entry.Kind == catalog.KindRemote {
		kind = "ShipScan"
		rowBytes := ri.Schema.RowWidth()
		est.NetMsgs++
		est.NetBytes += ri.FilteredRows * float64(rowBytes)
		est.CPUTuples += ri.FilteredRows // Ship charges per shipped row
		inner := mk
		site := ri.Entry.Site
		mk = func() exec.Operator { return dist.NewShip(inner(), rowBytes, site) }
		detail += fmt.Sprintf(" @site%d", site)
	}
	if localLocal != nil {
		detail += " σ(" + localLocal.String() + ")"
	}
	ri.Access = plan.NewNode(&plan.Node{
		Kind:      kind,
		Detail:    detail,
		Est:       est,
		Rows:      ri.FilteredRows,
		Stats:     ri.FilteredStats,
		OutSchema: ri.Schema,
		ColMap:    ri.ColMap,
		Rels:      query.NewRelSet(ri.Index),
		Ordering:  nil, // heap scans, index lookups, and Ship promise no order
		Parallel:  parallel,
		Make:      mk,
		// Feedback provenance: the adaptive layer maps this node's
		// measured output rows back to (relation, predicate) to correct
		// the predicate's selectivity estimate (DESIGN.md §15).
		Source:     ri.Entry.Name,
		SourcePred: localLocal,
		SourceRows: raw.Rows,
	})
}

// conjuncts flattens a predicate into its top-level AND conjuncts.
func conjuncts(e expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		var out []expr.Expr
		for _, k := range a.Kids {
			out = append(out, conjuncts(k)...)
		}
		return out
	}
	return []expr.Expr{e}
}

// constKeySide reports whether e can supply an index key at Open time: a
// literal, or a bound parameter (whose current binding the lookup
// resolves when it opens).
func constKeySide(e expr.Expr) bool {
	switch x := e.(type) {
	case expr.Lit:
		return true
	case expr.Param:
		return x.Has
	default:
		// Columns and compound expressions are row-dependent.
		return false
	}
}

// indexAccessPlan looks for an equality conjunct `col = constant` (a
// literal or bound parameter) on an indexed column of the relation and
// builds an index-lookup leaf: one index probe plus the matching pages,
// with the remaining conjuncts applied on top. The key is resolved at
// Open, so a cached parameterized plan probes with the current binding.
// localLocal is the relation-local predicate.
func (o *Optimizer) indexAccessPlan(ri *RelInfo, localLocal expr.Expr, alias string) (cost.Estimate, func() exec.Operator, string, bool) {
	t := ri.Entry.Table
	raw := ri.RawStats
	cs := conjuncts(localLocal)
	for pick, cj := range cs {
		cmp, ok := cj.(expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		var col expr.Col
		var keyExpr expr.Expr
		if c, okc := cmp.L.(expr.Col); okc && constKeySide(cmp.R) {
			col, keyExpr = c, cmp.R
		} else if c, okc := cmp.R.(expr.Col); okc && constKeySide(cmp.L) {
			col, keyExpr = c, cmp.L
		} else {
			continue
		}
		ix := t.IndexOn([]int{col.Idx})
		if ix == nil {
			continue
		}
		d := raw.DistinctOf(col.Idx)
		if d < 1 {
			d = 1
		}
		k := raw.Rows / d
		matchPages := stats.MatchPages(raw.Rows, float64(t.NumPages()), k,
			t.RowsPerPage(), raw.ClusteredOn(col.Idx))
		est := cost.Estimate{PageReads: 1 + matchPages, CPUTuples: k}
		var rest []expr.Expr
		for j, other := range cs {
			if j != pick {
				rest = append(rest, other)
			}
		}
		var restPred expr.Expr
		if len(rest) > 0 {
			restPred = expr.NewAnd(rest...)
			est.CPUTuples += k
		}
		keyExprs := []expr.Expr{keyExpr}
		mk := func() exec.Operator {
			var op exec.Operator = exec.NewIndexLookupExprs(t, ix, keyExprs, alias)
			if restPred != nil {
				op = exec.NewSelect(op, restPred)
			}
			return op
		}
		return est, mk, fmt.Sprintf("via %s on %s", ix.Name(), cj.String()), true
	}
	return cost.Estimate{}, nil, "", false
}

// viewLeaf optimizes (and caches) the unrestricted full computation of a
// view: the "FULL COMPUTATION" row of Fig 6 for table expressions.
func (o *Optimizer) viewLeaf(e *catalog.Entry) (*plan.Node, error) {
	if n, ok := o.viewLeafCache[e.Name]; ok {
		return n, nil
	}
	n, err := o.OptimizeBlock(e.ViewDef)
	if err != nil {
		return nil, fmt.Errorf("opt: optimizing view %q: %w", e.Name, err)
	}
	o.viewLeafCache[e.Name] = n
	return n, nil
}

func (o *Optimizer) buildViewLeaf(ctx *Ctx, ri *RelInfo) error {
	nested, err := o.viewLeaf(ri.Entry)
	if err != nil {
		return err
	}
	raw := nested.Stats
	if raw == nil {
		raw = &stats.RelStats{Rows: nested.Rows, Cols: make([]stats.ColStats, ri.Width)}
	}
	ri.RawStats = raw
	sel := 1.0
	var localLocal expr.Expr
	if ri.LocalPred != nil {
		localLocal = expr.Remap(ri.LocalPred, ri.ColMap)
		sel = stats.Selectivity(localLocal, raw)
	}
	ri.LocalSel = sel
	ri.FilteredStats = raw.Scale(sel)
	ri.FilteredRows = ri.FilteredStats.Rows

	est := nested.Est
	if localLocal != nil {
		est.CPUTuples += nested.Rows
	}
	detail := "view " + ri.Ref.Name
	if localLocal != nil {
		detail += " σ(" + localLocal.String() + ")"
	}
	mk := func() exec.Operator {
		var op exec.Operator = nested.Make()
		if localLocal != nil {
			op = exec.NewSelect(op, localLocal)
		}
		return op
	}
	if ri.Entry.Site > 0 {
		// Remote view: the body executes at the remote site; only the
		// (locally filtered) result crosses the network.
		rowBytes := ri.Schema.RowWidth()
		est.NetMsgs++
		est.NetBytes += ri.FilteredRows * float64(rowBytes)
		est.CPUTuples += ri.FilteredRows
		inner := mk
		site := ri.Entry.Site
		mk = func() exec.Operator { return dist.NewShip(inner(), rowBytes, site) }
		detail += fmt.Sprintf(" @site%d", site)
	}
	ri.Access = plan.NewNode(&plan.Node{
		Kind:      "ViewScan",
		Detail:    detail,
		Children:  []*plan.Node{nested},
		Est:       est,
		Rows:      ri.FilteredRows,
		Stats:     ri.FilteredStats,
		OutSchema: ri.Schema,
		ColMap:    ri.ColMap,
		Rels:      query.NewRelSet(ri.Index),
		Ordering:  viewLeafOrdering(nested, ri),
		Make:      mk,
	})
	return nil
}

// viewLeafOrdering translates an ordering the view's body delivers
// (e.g. a view ending in a Sort) from the body's block layout into the
// outer block's: each body column maps through the body plan's ColMap
// to a view output position, which sits at ri.Offset in the outer
// layout. Filters and Ship preserve row order, so the ViewScan keeps it.
func viewLeafOrdering(nested *plan.Node, ri *RelInfo) plan.Ordering {
	if len(nested.Ordering) == 0 {
		return nil
	}
	var out plan.Ordering
	for _, k := range nested.Ordering {
		var cols []int
		for _, c := range k.Cols {
			if c >= 0 && c < len(nested.ColMap) {
				if pos := nested.ColMap[c]; pos >= 0 && pos < ri.Width {
					cols = append(cols, ri.Offset+pos)
				}
			}
		}
		if len(cols) == 0 {
			break
		}
		out = append(out, plan.OrderKey{Cols: cols, Desc: k.Desc})
	}
	return out
}

func (o *Optimizer) buildFuncInfo(ctx *Ctx, ri *RelInfo) {
	raw := o.relStats(ri.Entry)
	if raw == nil {
		raw = &stats.RelStats{Rows: 1000, Cols: make([]stats.ColStats, ri.Width)}
	}
	ri.RawStats = raw
	sel := 1.0
	if ri.LocalPred != nil {
		local := expr.Remap(ri.LocalPred, ri.ColMap)
		sel = stats.Selectivity(local, raw)
	}
	ri.LocalSel = sel
	ri.FilteredStats = raw.Scale(sel)
	ri.FilteredRows = ri.FilteredStats.Rows
	// No Access plan: a function-backed relation has no enumerable
	// extension; it is joined only via probe-style methods.
}

// closeEquiClasses computes the transitive closure of cross-relation
// equalities: columns are grouped with union-find and derived equality
// predicates are added for pairs in one class that lack a direct
// predicate (so that, e.g., D⋈V is a keyed join when E.did=D.did and
// E.did=V.did both hold — the paper's Fig 3 orders 3 and 4).
func (c *Ctx) closeEquiClasses() {
	n := c.Layout.Schema.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	direct := map[[2]int]bool{}
	for _, p := range c.Preds {
		if p.EquiL >= 0 {
			union(p.EquiL, p.EquiR)
			a, b := p.EquiL, p.EquiR
			if a > b {
				a, b = b, a
			}
			direct[[2]int{a, b}] = true
		}
	}
	// Collect class members that participate in some equality.
	classes := map[int][]int{}
	for _, p := range c.Preds {
		if p.EquiL >= 0 {
			r := find(p.EquiL)
			classes[r] = appendUnique(classes[r], p.EquiL)
			classes[r] = appendUnique(classes[r], p.EquiR)
		}
	}
	for _, p := range c.Preds {
		if p.EquiL >= 0 {
			p.Class = find(p.EquiL)
		}
	}
	for root, members := range classes {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				if direct[[2]int{a, b}] {
					continue
				}
				if c.Layout.RelOfCol(a) == c.Layout.RelOfCol(b) {
					continue
				}
				e := expr.Eq(
					expr.NewCol(a, c.Layout.Schema.Col(a).QualifiedName()),
					expr.NewCol(b, c.Layout.Schema.Col(b).QualifiedName()),
				)
				c.Preds = append(c.Preds, &PredInfo{
					Expr:    e,
					Rels:    query.NewRelSet(c.Layout.RelOfCol(a), c.Layout.RelOfCol(b)),
					EquiL:   a,
					EquiR:   b,
					Class:   root,
					Derived: true,
				})
			}
		}
	}
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ApplicablePreds returns the predicates that become evaluable when the
// inner relation joins the outer subset: they reference the inner, span
// at least two relations, and everything they reference is available.
func (c *Ctx) ApplicablePreds(outer query.RelSet, inner int) []*PredInfo {
	var out []*PredInfo
	all := outer.With(inner)
	for _, p := range c.Preds {
		if p.Rels.Has(inner) && p.Rels.Count() >= 2 && p.Rels.SubsetOf(all) {
			out = append(out, p)
		}
	}
	return out
}

// EquiSplit partitions applicable predicates into equi-join pairs
// (outer block column, inner block column) and residual predicates.
func (c *Ctx) EquiSplit(preds []*PredInfo, outer query.RelSet, inner int) (outerCols, innerCols []int, residual []*PredInfo) {
	innerRel := c.Rels[inner]
	for _, p := range preds {
		if p.EquiL >= 0 {
			lRel := c.Layout.RelOfCol(p.EquiL)
			rRel := c.Layout.RelOfCol(p.EquiR)
			switch {
			case lRel == innerRel.Index && outer.Has(rRel):
				outerCols = append(outerCols, p.EquiR)
				innerCols = append(innerCols, p.EquiL)
				continue
			case rRel == innerRel.Index && outer.Has(lRel):
				outerCols = append(outerCols, p.EquiL)
				innerCols = append(innerCols, p.EquiR)
				continue
			}
		}
		residual = append(residual, p)
	}
	return outerCols, innerCols, residual
}

// DistinctOfBlockCol returns the distinct-count estimate of a block
// layout column within a plan node's output.
func (c *Ctx) DistinctOfBlockCol(n *plan.Node, col int) float64 {
	if n.ColMap == nil || col < 0 || col >= len(n.ColMap) {
		return n.Rows
	}
	pos := n.ColMap[col]
	if pos < 0 || n.Stats == nil || pos >= len(n.Stats.Cols) {
		return n.Rows
	}
	return n.Stats.DistinctOf(pos)
}

// PredSelectivity estimates the selectivity of one applicable join
// predicate between the outer plan and the inner relation.
func (c *Ctx) PredSelectivity(p *PredInfo, outer *plan.Node, inner int) float64 {
	ri := c.Rels[inner]
	if p.EquiL >= 0 {
		dl := c.sideDistinct(p.EquiL, outer, ri)
		dr := c.sideDistinct(p.EquiR, outer, ri)
		return stats.JoinSelectivity(dl, dr)
	}
	return 1.0 / 3.0
}

func (c *Ctx) sideDistinct(col int, outer *plan.Node, ri *RelInfo) float64 {
	rel := c.Layout.RelOfCol(col)
	if rel == ri.Index {
		return ri.FilteredStats.DistinctOf(col - ri.Offset)
	}
	return c.DistinctOfBlockCol(outer, col)
}

// JoinResult computes the standard estimate for joining outer with the
// inner relation under the applicable predicates: output rows and output
// stats (outer columns followed by inner columns).
func (c *Ctx) JoinResult(outer *plan.Node, inner int, preds []*PredInfo) (float64, *stats.RelStats) {
	ri := c.Rels[inner]
	sel := 1.0
	counted := map[int]bool{}
	for _, p := range preds {
		if p.Class >= 0 {
			// One equality per equivalence class: a=b ∧ b=c ∧ a=c are not
			// independent filters.
			if counted[p.Class] {
				continue
			}
			counted[p.Class] = true
		}
		sel *= c.PredSelectivity(p, outer, inner)
	}
	rows := outer.Rows * ri.FilteredRows * sel
	if rows < 0 {
		rows = 0
	}
	outStats := outer.Stats
	if outStats == nil {
		outStats = &stats.RelStats{Rows: outer.Rows, Cols: make([]stats.ColStats, outer.OutSchema.Len())}
	}
	combined := stats.Concat(outStats, ri.FilteredStats, rows)
	// Equi-join columns: both sides end up with the same value set, whose
	// size is at most the smaller side's distinct count.
	outerWidth := outer.OutSchema.Len()
	for _, p := range preds {
		if p.EquiL < 0 {
			continue
		}
		lp := c.combinedPos(p.EquiL, outer, ri, outerWidth)
		rp := c.combinedPos(p.EquiR, outer, ri, outerWidth)
		if lp < 0 || rp < 0 || lp >= len(combined.Cols) || rp >= len(combined.Cols) {
			continue
		}
		d := combined.Cols[lp].Distinct
		if combined.Cols[rp].Distinct < d {
			d = combined.Cols[rp].Distinct
		}
		if d > rows {
			d = rows
		}
		combined.Cols[lp].Distinct = d
		combined.Cols[rp].Distinct = d
	}
	return rows, combined
}

// combinedPos maps a block-layout column to its position in the
// outer‖inner combined output, or -1.
func (c *Ctx) combinedPos(col int, outer *plan.Node, ri *RelInfo, outerWidth int) int {
	if col < 0 {
		return -1
	}
	if col < len(outer.ColMap) && outer.ColMap[col] >= 0 {
		return outer.ColMap[col]
	}
	if col < len(ri.ColMap) && ri.ColMap[col] >= 0 {
		return ri.ColMap[col] + outerWidth
	}
	return -1
}

// CombinedColMap returns the block-layout column map for a join output
// laid out as outer columns followed by the inner relation's columns.
func (c *Ctx) CombinedColMap(outer *plan.Node, inner int) []int {
	ri := c.Rels[inner]
	outerWidth := outer.OutSchema.Len()
	out := make([]int, len(outer.ColMap))
	for i := range out {
		switch {
		case outer.ColMap[i] >= 0:
			out[i] = outer.ColMap[i]
		case ri.ColMap[i] >= 0:
			out[i] = ri.ColMap[i] + outerWidth
		default:
			out[i] = -1
		}
	}
	return out
}

// ResidualExpr conjoins and remaps residual predicates into the combined
// output layout described by colMap; returns nil when empty.
func ResidualExpr(preds []*PredInfo, colMap []int) expr.Expr {
	if len(preds) == 0 {
		return nil
	}
	kids := make([]expr.Expr, len(preds))
	for i, p := range preds {
		kids[i] = expr.Remap(p.Expr, colMap)
	}
	return expr.NewAnd(kids...)
}

// OuterKeyPositions maps block-layout key columns into positions within
// the outer plan's output; returns false if any is unavailable.
func OuterKeyPositions(outer *plan.Node, cols []int) ([]int, bool) {
	out := make([]int, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(outer.ColMap) || outer.ColMap[c] < 0 {
			return nil, false
		}
		out[i] = outer.ColMap[c]
	}
	return out, true
}
