package opt

import (
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

// attachFallback retains a degradation plan on p: when the chosen plan
// contains a FetchMatches join — the one strategy whose network
// crossings happen per outer row, mid-stream, after rows may already
// have been emitted — the block is re-optimized with fetch-matches
// disabled and the runner-up attached as p.Fallback. If the transport
// later exhausts its retries inside the primary, the executor restarts
// the query on the fallback instead of failing it (DESIGN.md §10).
//
// Bulk-shipment plans (ShipScan, semi-join filter shipments) need no
// fallback: their crossings happen at Open, before any row is produced,
// so a SiteError there is an honest whole-query error.
//
// The re-optimization is invisible to observability: search metrics are
// snapshotted and restored, and the tracer is detached, so exact-count
// metrics tests and trace goldens see only the primary search. Only the
// top-level block (depth 1) retains a fallback — a nested sub-plan's
// SiteError propagates to the top, where the top-level fallback covers
// it.
func (o *Optimizer) attachFallback(p *plan.Node, replan func() (*plan.Node, error)) {
	if p == nil || o.depth != 1 || p.Find("FetchMatches") == nil {
		return
	}
	saveMetrics := o.Metrics
	saveTracer := o.Tracer
	wasDisabled := o.Disabled["fetchmatches"]
	o.Tracer = nil
	o.Disabled["fetchmatches"] = true
	defer func() {
		o.Disabled["fetchmatches"] = wasDisabled
		o.Tracer = saveTracer
		o.Metrics = saveMetrics
	}()
	alt, err := replan()
	if err != nil {
		// No fault-free alternative exists (e.g. every other method is
		// disabled): degradation is simply unavailable and a SiteError
		// surfaces as the query error.
		return
	}
	p.Fallback = alt
}

// optimizeBlockFallback is the replan used by OptimizeBlock.
func (o *Optimizer) optimizeBlockFallback(b *query.Block) func() (*plan.Node, error) {
	return func() (*plan.Node, error) { return o.OptimizeBlock(b) }
}
