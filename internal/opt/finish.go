package opt

import (
	"fmt"

	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/stats"
)

// finish layers the block's output shape — constant predicates,
// aggregation or projection, DISTINCT — on top of the best join.
func (o *Optimizer) finish(ctx *Ctx, joined *plan.Node) (*plan.Node, error) {
	node := joined
	b := ctx.Block

	// Constant predicates (no column references) are applied once on top.
	var consts []expr.Expr
	for _, p := range ctx.Preds {
		if p.Rels == 0 {
			consts = append(consts, p.Expr)
		}
	}
	if len(consts) > 0 {
		pred := expr.NewAnd(consts...)
		prev := node
		est := prev.Est
		est.CPUTuples += prev.Rows
		mk := prev.Make
		node = plan.NewNode(&plan.Node{
			Kind:      "Select",
			Detail:    pred.String(),
			Children:  []*plan.Node{prev},
			Est:       est,
			Rows:      prev.Rows,
			Stats:     prev.Stats,
			OutSchema: prev.OutSchema,
			ColMap:    prev.ColMap,
			Rels:      prev.Rels,
			Ordering:  prev.Ordering,
			Make:      func() exec.Operator { return exec.NewSelect(mk(), pred) },
		})
	}

	switch {
	case b.HasAggregation():
		var err error
		node, err = o.finishGroupBy(ctx, node)
		if err != nil {
			return nil, err
		}
		if b.Having != nil {
			node, err = o.finishHaving(ctx, node)
			if err != nil {
				return nil, err
			}
		}
	case b.Proj != nil:
		var err error
		node, err = o.finishProject(ctx, node)
		if err != nil {
			return nil, err
		}
	default:
		node = o.identityProject(ctx, node)
	}

	if b.Distinct {
		prev := node
		rows := distinctRowsEstimate(prev)
		est := prev.Est
		est.CPUTuples += prev.Rows
		mk := prev.Make
		st := prev.Stats
		if st != nil {
			st = st.Clone()
			st.Rows = rows
		}
		node = plan.NewNode(&plan.Node{
			Kind:      "Distinct",
			Children:  []*plan.Node{prev},
			Est:       est,
			Rows:      rows,
			Stats:     st,
			OutSchema: prev.OutSchema,
			ColMap:    prev.ColMap,
			Rels:      prev.Rels,
			Ordering:  prev.Ordering,
			Make:      func() exec.Operator { return exec.NewDistinct(mk()) },
		})
	}

	if len(b.OrderBy) > 0 {
		prev := node
		keys := make([]int, len(b.OrderBy))
		desc := make([]bool, len(b.OrderBy))
		detail := ""
		for i, oi := range b.OrderBy {
			if oi.Col < 0 || oi.Col >= prev.OutSchema.Len() {
				return nil, fmt.Errorf("opt: ORDER BY position %d outside the output (width %d)",
					oi.Col, prev.OutSchema.Len())
			}
			keys[i], desc[i] = oi.Col, oi.Desc
			if i > 0 {
				detail += ", "
			}
			detail += prev.OutSchema.Col(oi.Col).QualifiedName()
			if oi.Desc {
				detail += " DESC"
			}
		}
		mk := prev.Make
		want := orderByWanted(prev, b.OrderBy)
		switch {
		case o.orderAware() && want != nil && prev.Ordering.Satisfies(want):
			// Sort elision: the retained interesting order already delivers
			// the requested sequence. No Sort (or Top-N heap) is built, so
			// neither the estimate nor the execution pays for one; a LIMIT
			// below degenerates to a plain row cap.
		case b.Limit > 0:
			// Sort+Limit fuse into a bounded-heap Top-N.
			n := b.Limit
			rows := prev.Rows
			if float64(n) < rows {
				rows = float64(n)
			}
			est := prev.Est
			est.CPUTuples += prev.Rows + float64(n)*lg2(float64(n)) + rows
			node = plan.NewNode(&plan.Node{
				Kind:      "TopN",
				Detail:    fmt.Sprintf("%s limit %d", detail, n),
				Children:  []*plan.Node{prev},
				Est:       est,
				Rows:      rows,
				Stats:     prev.Stats,
				OutSchema: prev.OutSchema,
				ColMap:    prev.ColMap,
				Rels:      prev.Rels,
				Ordering:  want,
				Make:      func() exec.Operator { return exec.NewTopN(mk(), n, keys, desc) },
			})
			return node, nil
		default:
			est := prev.Est
			est.CPUTuples += prev.Rows*lg2(prev.Rows) + prev.Rows
			node = plan.NewNode(&plan.Node{
				Kind:      "Sort",
				Detail:    detail,
				Children:  []*plan.Node{prev},
				Est:       est,
				Rows:      prev.Rows,
				Stats:     prev.Stats,
				OutSchema: prev.OutSchema,
				ColMap:    prev.ColMap,
				Rels:      prev.Rels,
				Ordering:  want,
				// A full sort materializes its input: guard it for
				// mid-run replanning (DESIGN.md §15).
				Make: func() exec.Operator {
					return exec.NewSort(exec.NewCardGuard(mk(), prev.Rows, "Sort", prev), keys, desc)
				},
			})
		}
	}

	if b.Limit > 0 {
		prev := node
		rows := prev.Rows
		if float64(b.Limit) < rows {
			rows = float64(b.Limit)
		}
		mk := prev.Make
		n := b.Limit
		node = plan.NewNode(&plan.Node{
			Kind:      "Limit",
			Detail:    fmt.Sprintf("%d", n),
			Children:  []*plan.Node{prev},
			Est:       prev.Est,
			Rows:      rows,
			Stats:     prev.Stats,
			OutSchema: prev.OutSchema,
			ColMap:    prev.ColMap,
			Rels:      prev.Rels,
			Ordering:  prev.Ordering,
			Make:      func() exec.Operator { return exec.NewLimit(mk(), n) },
		})
	}
	return node, nil
}

// finishHaving applies the HAVING predicate, which is bound against the
// aggregation output layout.
func (o *Optimizer) finishHaving(ctx *Ctx, prev *plan.Node) (*plan.Node, error) {
	b := ctx.Block
	cols := map[int]bool{}
	b.Having.CollectCols(cols)
	for c := range cols {
		if c < 0 || c >= prev.OutSchema.Len() {
			return nil, fmt.Errorf("opt: HAVING references output column %d (width %d)",
				c, prev.OutSchema.Len())
		}
	}
	sel := 1.0 / 3.0
	if prev.Stats != nil {
		sel = stats.Selectivity(b.Having, prev.Stats)
	}
	rows := prev.Rows * sel
	est := prev.Est
	est.CPUTuples += prev.Rows
	st := prev.Stats
	if st != nil {
		st = st.Scale(sel)
	}
	mk := prev.Make
	having := b.Having
	return plan.NewNode(&plan.Node{
		Kind:      "Having",
		Detail:    having.String(),
		Children:  []*plan.Node{prev},
		Est:       est,
		Rows:      rows,
		Stats:     st,
		OutSchema: prev.OutSchema,
		ColMap:    prev.ColMap,
		Rels:      prev.Rels,
		Ordering:  prev.Ordering,
		Make:      func() exec.Operator { return exec.NewSelect(mk(), having) },
	}), nil
}

func distinctRowsEstimate(n *plan.Node) float64 {
	if n.Stats == nil {
		return n.Rows
	}
	d := make([]float64, len(n.Stats.Cols))
	for i := range d {
		d[i] = n.Stats.DistinctOf(i)
	}
	return stats.ProjectionCardinality(n.Rows, d)
}

func (o *Optimizer) finishGroupBy(ctx *Ctx, prev *plan.Node) (*plan.Node, error) {
	b := ctx.Block
	groupPos := make([]int, len(b.GroupBy))
	for i, g := range b.GroupBy {
		if g < 0 || g >= len(prev.ColMap) || prev.ColMap[g] < 0 {
			return nil, fmt.Errorf("opt: GROUP BY column %d unavailable in join output", g)
		}
		groupPos[i] = prev.ColMap[g]
	}
	aggs := make([]expr.AggSpec, len(b.Aggs))
	for i, a := range b.Aggs {
		if a.Arg != nil && !expr.Mappable(a.Arg, prev.ColMap) {
			return nil, fmt.Errorf("opt: aggregate %s references unavailable columns", a)
		}
		aggs[i] = expr.RemapAgg(a, prev.ColMap)
	}

	// Output cardinality: distinct combinations of the grouping columns.
	rows := prev.Rows
	if len(groupPos) == 0 {
		rows = 1
	} else {
		d := make([]float64, len(b.GroupBy))
		for i, g := range b.GroupBy {
			d[i] = ctx.DistinctOfBlockCol(prev, g)
		}
		rows = stats.ProjectionCardinality(prev.Rows, d)
	}

	// Output stats: grouping columns keep their column stats with
	// distinct = rows; aggregates get distinct = rows.
	outCols := make([]stats.ColStats, 0, len(groupPos)+len(aggs))
	for i, g := range b.GroupBy {
		var cs stats.ColStats
		if prev.Stats != nil && groupPos[i] < len(prev.Stats.Cols) {
			cs = prev.Stats.Cols[groupPos[i]]
		}
		if cs.Distinct > rows || cs.Distinct == 0 {
			cs.Distinct = rows
		}
		_ = g
		outCols = append(outCols, cs)
	}
	for range aggs {
		outCols = append(outCols, stats.ColStats{Distinct: rows})
	}

	est := prev.Est
	est.CPUTuples += prev.Rows + rows

	outSchema, err := b.OutputSchema(o.Cat, "")
	if err != nil {
		return nil, err
	}
	colMap := plan.EmptyColMap(ctx.Layout.Schema.Len())
	for i, g := range b.GroupBy {
		colMap[g] = i
	}

	mk := prev.Make
	kind := "GroupBy"
	var outOrd plan.Ordering
	hint := int(rows + 0.5) // pre-size the group table from the estimate
	mkOp := func() exec.Operator {
		// Hash aggregation materializes its input into the group table:
		// guard it for mid-run replanning (DESIGN.md §15). The streaming
		// variant below stays unguarded — it is a pipeline, not a
		// materialization point.
		g := exec.NewGroupBy(exec.NewCardGuard(mk(), prev.Rows, "GroupBy build", prev), groupPos, aggs)
		g.SizeHint = hint
		return g
	}
	if o.orderAware() && len(groupPos) > 0 && prev.Ordering.PrefixCovers(b.GroupBy) {
		// The join output already arrives clustered by the grouping
		// columns, so aggregation streams one group at a time instead of
		// hashing every row, and the input's order survives on the
		// grouping columns for the ORDER BY above to reuse.
		kind = "StreamGroupBy"
		outOrd = prev.Ordering.Project(func(c int) bool { return colMap[c] >= 0 })
		mkOp = func() exec.Operator { return exec.NewStreamGroupBy(mk(), groupPos, aggs) }
	}
	return plan.NewNode(&plan.Node{
		Kind:      kind,
		Detail:    groupByDetail(ctx, b),
		Children:  []*plan.Node{prev},
		Est:       est,
		Rows:      rows,
		Stats:     &stats.RelStats{Rows: rows, Cols: outCols},
		OutSchema: outSchema,
		ColMap:    colMap,
		Rels:      prev.Rels,
		Ordering:  outOrd,
		Make:      mkOp,
	}), nil
}

func groupByDetail(ctx *Ctx, b *query.Block) string {
	s := ""
	for i, g := range b.GroupBy {
		if i > 0 {
			s += ", "
		}
		s += ctx.Layout.Schema.Col(g).QualifiedName()
	}
	for _, a := range b.Aggs {
		if s != "" {
			s += "; "
		}
		s += a.String()
	}
	return s
}

func (o *Optimizer) finishProject(ctx *Ctx, prev *plan.Node) (*plan.Node, error) {
	b := ctx.Block
	exprs := make([]expr.Expr, len(b.Proj))
	for i, p := range b.Proj {
		if !expr.Mappable(p.Expr, prev.ColMap) {
			return nil, fmt.Errorf("opt: projection %q references unavailable columns", p.Expr.String())
		}
		exprs[i] = expr.Remap(p.Expr, prev.ColMap)
	}
	outSchema, err := b.OutputSchema(o.Cat, "")
	if err != nil {
		return nil, err
	}
	outCols := make([]stats.ColStats, len(b.Proj))
	colMap := plan.EmptyColMap(ctx.Layout.Schema.Len())
	for i, p := range b.Proj {
		if c, ok := p.Expr.(expr.Col); ok {
			if prev.Stats != nil && prev.ColMap[c.Idx] >= 0 && prev.ColMap[c.Idx] < len(prev.Stats.Cols) {
				outCols[i] = prev.Stats.Cols[prev.ColMap[c.Idx]]
			}
			colMap[c.Idx] = i
		}
		if outCols[i].Distinct == 0 {
			outCols[i].Distinct = prev.Rows
		}
	}
	est := prev.Est
	est.CPUTuples += prev.Rows
	mk := prev.Make
	return plan.NewNode(&plan.Node{
		Kind:      "Project",
		Detail:    projDetail(b),
		Children:  []*plan.Node{prev},
		Est:       est,
		Rows:      prev.Rows,
		Stats:     &stats.RelStats{Rows: prev.Rows, Cols: outCols},
		OutSchema: outSchema,
		ColMap:    colMap,
		Rels:      prev.Rels,
		Ordering:  prev.Ordering.Project(func(c int) bool { return colMap[c] >= 0 }),
		Make:      func() exec.Operator { return exec.NewProject(mk(), exprs, outSchema) },
	}), nil
}

func projDetail(b *query.Block) string {
	s := ""
	for i, p := range b.Proj {
		if i > 0 {
			s += ", "
		}
		s += p.Expr.String()
	}
	return s
}

// identityProject restores the block's declared column order (SELECT *
// semantics) when the join order permuted it. It is skipped when the
// join output is already in block layout order.
func (o *Optimizer) identityProject(ctx *Ctx, prev *plan.Node) *plan.Node {
	width := ctx.Layout.Schema.Len()
	identity := prev.OutSchema.Len() == width
	if identity {
		for c := 0; c < width; c++ {
			if prev.ColMap[c] != c {
				identity = false
				break
			}
		}
	}
	if identity {
		return prev
	}
	exprs := make([]expr.Expr, width)
	outCols := make([]stats.ColStats, width)
	for c := 0; c < width; c++ {
		pos := prev.ColMap[c]
		exprs[c] = expr.NewCol(pos, ctx.Layout.Schema.Col(c).QualifiedName())
		if prev.Stats != nil && pos >= 0 && pos < len(prev.Stats.Cols) {
			outCols[c] = prev.Stats.Cols[pos]
		}
	}
	est := prev.Est
	est.CPUTuples += prev.Rows
	mk := prev.Make
	outSchema := ctx.Layout.Schema
	return plan.NewNode(&plan.Node{
		Kind:      "Project",
		Detail:    "*",
		Children:  []*plan.Node{prev},
		Est:       est,
		Rows:      prev.Rows,
		Stats:     &stats.RelStats{Rows: prev.Rows, Cols: outCols},
		OutSchema: outSchema,
		ColMap:    plan.IdentityColMap(width),
		Rels:      prev.Rels,
		Ordering:  prev.Ordering,
		Make:      func() exec.Operator { return exec.NewProject(mk(), exprs, outSchema) },
	})
}

// orderByWanted translates the block's ORDER BY — stated over output
// positions — into an Ordering over block layout columns, the coordinate
// space plan orderings are tracked in. A nil result means some ORDER BY
// item has no block-column provenance (an aggregate or computed
// expression), so sort elision is off the table.
func orderByWanted(prev *plan.Node, items []query.OrderItem) plan.Ordering {
	want := make(plan.Ordering, len(items))
	for i, oi := range items {
		var cols []int
		for c, pos := range prev.ColMap {
			if pos == oi.Col {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			return nil
		}
		want[i] = plan.OrderKey{Cols: cols, Desc: oi.Desc}
	}
	return want
}
