package experiments

import (
	"fmt"
	"math"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// E1CostComponents reproduces Table 1: the seven-component cost
// breakdown of the best Filter Join candidate for the Fig 1 query, at
// three workload selectivities, next to the estimated and measured cost
// of the plan the optimizer actually picked.
func E1CostComponents() (*Report, error) {
	model := cost.DefaultModel()
	fracs := []float64{0.02, 0.10, 0.50}
	type colData struct {
		comp     core.Components
		have     bool
		chosen   bool
		fCard    float64
		estTotal float64
		planEst  float64
		measured float64
	}
	cols := make([]colData, len(fracs))

	for i, frac := range fracs {
		p := datagen.DefaultFig1()
		p.BigFrac = frac
		cat, err := datagen.Fig1Catalog(p)
		if err != nil {
			return nil, err
		}
		fj := core.NewMethod(core.Options{})
		var best *core.Choice
		var bestTotal float64
		fj.Trace = func(ch *core.Choice, total float64) {
			if ch.InnerName != "DepAvgSal" {
				return
			}
			if best == nil || total < bestTotal {
				best, bestTotal = ch, total
			}
		}
		o := optimizer(cat, model, fj)
		pl, _, counter, err := optimizeRun(o, datagen.Fig1Query())
		if err != nil {
			return nil, err
		}
		cd := &cols[i]
		if best != nil {
			cd.comp = best.Components
			cd.have = true
			cd.fCard = best.FilterCard
			cd.estTotal = bestTotal
		}
		cd.chosen = pl.Find("FilterJoin") != nil
		cd.planEst = pl.Total(model)
		cd.measured = model.Total(counter)
	}

	r := &Report{ID: "E1", Title: "Table 1 cost components of the best Filter Join candidate (Fig 1 query)"}
	r.Header = []string{"component"}
	for _, f := range fracs {
		r.Header = append(r.Header, fmt.Sprintf("big=%.0f%%", f*100))
	}
	names := core.Components{}.Names()
	for ci, name := range names {
		row := []string{name}
		for _, cd := range cols {
			if !cd.have {
				row = append(row, "-")
				continue
			}
			row = append(row, f2(model.TotalEstimate(cd.comp.Values()[ci])))
		}
		_ = ci
		r.AddRow(row...)
	}
	total := []string{"TOTAL (filter join est.)"}
	fcard := []string{"|F| estimated"}
	chosen := []string{"chosen by optimizer"}
	planEst := []string{"final plan estimate"}
	meas := []string{"final plan measured"}
	for _, cd := range cols {
		total = append(total, f2(cd.estTotal))
		fcard = append(fcard, f0(cd.fCard))
		chosen = append(chosen, yesNo(cd.chosen))
		planEst = append(planEst, f2(cd.planEst))
		meas = append(meas, f2(cd.measured))
	}
	r.AddRow(total...)
	r.AddRow(fcard...)
	r.AddRow(chosen...)
	r.AddRow(planEst...)
	r.AddRow(meas...)
	r.AddNote("components are weighted cost units (1 unit = 1 page I/O); the filter join wins at low fractions and is correctly rejected as the fraction of qualifying departments grows")
	return r, nil
}

// E2JoinOrders reproduces Figure 3: the six left-deep join orders of
// Emp ⋈ Dept ⋈ DepAvgSal. Orders 1-2 correspond to the classical magic
// rewriting (filter from E⋈D), orders 3-4 to the single-relation SIPS
// variants, orders 5-6 to no rewriting at all.
func E2JoinOrders() (*Report, error) {
	model := cost.DefaultModel()
	p := datagen.DefaultFig1()
	cat, err := datagen.Fig1Catalog(p)
	if err != nil {
		return nil, err
	}
	orders := []struct {
		num   int
		name  string
		perm  []int
		paper string
	}{
		{1, "(E⋈D)⋈V", []int{0, 1, 2}, "magic: filter from E⋈D"},
		{2, "(D⋈E)⋈V", []int{1, 0, 2}, "magic: filter from D⋈E"},
		{3, "(D⋈V)⋈E", []int{1, 2, 0}, "magic: filter from D (big depts)"},
		{4, "(E⋈V)⋈D", []int{0, 2, 1}, "magic: filter from E (young-emp depts)"},
		{5, "(V⋈E)⋈D", []int{2, 0, 1}, "no rewriting (view outermost)"},
		{6, "(V⋈D)⋈E", []int{2, 1, 0}, "no rewriting (view outermost)"},
	}
	r := &Report{
		ID:     "E2",
		Title:  "Figure 3: six join orders, Filter Join available at every step",
		Header: []string{"order", "shape", "est cost", "measured", "rows", "filter join?", "paper correspondence"},
	}
	var bestNum int
	bestCost := math.Inf(1)
	for _, ord := range orders {
		fj := core.NewMethod(core.Options{})
		o := optimizer(cat, model, fj)
		pl, err := o.OptimizeBlockWithOrder(datagen.Fig1Query(), ord.perm)
		if err != nil {
			return nil, fmt.Errorf("order %d: %w", ord.num, err)
		}
		rows, counter, err := measured(pl)
		if err != nil {
			return nil, fmt.Errorf("order %d execute: %w", ord.num, err)
		}
		mc := model.Total(counter)
		if mc < bestCost {
			bestCost, bestNum = mc, ord.num
		}
		r.AddRow(d(int64(ord.num)), ord.name, f2(pl.Total(model)), f2(mc),
			d(int64(rows)), yesNo(pl.Find("FilterJoin") != nil), ord.paper)
	}
	r.AddNote("measured-cheapest order: %d; the full DP considers all of these (and method choices) in one pass", bestNum)
	return r, nil
}

// restrictedViewBlockForEmp builds the magic-restricted DepAvgSal body
// against an explicit filter table name (used to measure ground truth).
func restrictedViewBlockForEmp(fName string) *query.Block {
	return &query.Block{
		Rels: []query.RelRef{{Name: "Emp"}, {Name: fName}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "Emp.did"), expr.NewCol(4, fName+".k0")),
		},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggAvg, Arg: expr.NewCol(2, "Emp.sal"), Name: "avgsal"}},
	}
}

// E3CardinalityFit reproduces Figure 4: the straight-line fit of
// restricted-view cardinality against filter selectivity, compared with
// the actually measured cardinality of the restricted view.
func E3CardinalityFit() (*Report, error) {
	model := cost.DefaultModel()
	p := datagen.DefaultFig1()
	cat, err := datagen.Fig1Catalog(p)
	if err != nil {
		return nil, err
	}
	fj := core.NewMethod(core.Options{})
	o := optimizer(cat, model, fj)
	if _, err := o.OptimizeBlock(datagen.Fig1Query()); err != nil {
		return nil, err
	}
	costers := fj.Costers()
	if len(costers) == 0 {
		return nil, fmt.Errorf("E3: no view coster was built")
	}
	vc := costers[0]

	r := &Report{
		ID:     "E3",
		Title:  "Figure 4: cardinality of the restricted view vs filter selectivity",
		Header: []string{"filter sel", "|F|", "fit rows", "measured rows", "rel err"},
	}
	var maxErr float64
	for _, sel := range []float64{0.05, 0.20, 0.40, 0.80, 1.00} {
		k := int(sel * float64(p.NDept))
		if k < 1 {
			k = 1
		}
		fName := fmt.Sprintf("F_e3_%d", k)
		fs := schema.New(schema.Column{Table: fName, Name: "k0", Type: value.KindInt})
		ft := storage.NewTable(fName, fs)
		for i := 0; i < k; i++ {
			ft.MustInsert(value.NewInt(int64(i)))
		}
		cat.AddTable(ft)
		pl, err := o.OptimizeBlock(restrictedViewBlockForEmp(fName))
		if err != nil {
			cat.Drop(fName)
			return nil, err
		}
		got, _, err := measured(pl)
		cat.Drop(fName)
		if err != nil {
			return nil, err
		}
		fit := vc.Rows(float64(k) / vc.Domain)
		relErr := 0.0
		if got > 0 {
			relErr = math.Abs(fit-float64(got)) / float64(got)
		}
		if relErr > maxErr {
			maxErr = relErr
		}
		r.AddRow(f2(sel), d(int64(k)), f1(fit), d(int64(got)), fmt.Sprintf("%.1f%%", relErr*100))
	}
	r.AddNote("fit: rows(sel) = %.1f + %.1f·sel over %d sampled equivalence classes; max relative error %.1f%%",
		vc.CardA, vc.CardB, len(vc.Points), maxErr*100)
	return r, nil
}

// E4EquivClasses reproduces Figure 5: the sampled cost equivalence
// classes, and demonstrates Assumption 1 — after the classes are built
// once, repeated optimizations cost no further nested invocations.
func E4EquivClasses() (*Report, error) {
	model := cost.DefaultModel()
	cat, err := datagen.Fig1Catalog(datagen.DefaultFig1())
	if err != nil {
		return nil, err
	}
	fj := core.NewMethod(core.Options{})
	o := optimizer(cat, model, fj)

	if _, err := o.OptimizeBlock(datagen.Fig1Query()); err != nil {
		return nil, err
	}
	nestedAfterFirst := o.Metrics.NestedOptimizations
	buildsAfterFirst := fj.Metrics.CosterBuilds

	const repeats = 50
	for i := 0; i < repeats; i++ {
		if _, err := o.OptimizeBlock(datagen.Fig1Query()); err != nil {
			return nil, err
		}
	}
	r := &Report{
		ID:     "E4",
		Title:  "Figure 5: cost equivalence classes of the parametric view coster",
		Header: []string{"class (filter sel)", "est. restricted-view cost", "est. rows"},
	}
	for _, vc := range fj.Costers() {
		for _, pt := range vc.Points {
			r.AddRow(f2(pt.Sel), f2(model.TotalEstimate(pt.Est)), f0(pt.Rows))
		}
		// Interpolated lookups between classes are O(1).
		for _, sel := range []float64{0.1, 0.45} {
			r.AddRow(fmt.Sprintf("%.2f (interpolated)", sel),
				f2(model.TotalEstimate(vc.Cost(sel))), f0(vc.Rows(sel)))
		}
	}
	r.AddNote("first optimization: %d nested invocations, %d coster builds", nestedAfterFirst, buildsAfterFirst)
	r.AddNote("after %d further optimizations: %d nested invocations (unchanged), coster hits %d",
		repeats, o.Metrics.NestedOptimizations, fj.Metrics.CosterHits)
	if o.Metrics.NestedOptimizations != nestedAfterFirst {
		r.AddNote("WARNING: nested invocations grew with repeats; Assumption 1 violated")
	}
	return r, nil
}
