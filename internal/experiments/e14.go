package experiments

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

func errRowMismatch(a, b int) error {
	return fmt.Errorf("E14: plans disagree on row count: %d vs %d", a, b)
}

// multiViewCatalog extends the Fig 1 universe with a second view over
// Emp: per-department headcount.
func multiViewCatalog(p datagen.Fig1Params) (*catalog.Catalog, error) {
	cat, err := datagen.Fig1Catalog(p)
	if err != nil {
		return nil, err
	}
	cat.AddView("DeptHeads", &query.Block{
		Rels:    []query.RelRef{{Name: "Emp"}},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggCount, Name: "heads"}},
	})
	return cat, nil
}

// multiViewQuery joins Emp, Dept and BOTH views:
//
//	SELECT E.did, E.sal, V.avgsal, H.heads
//	FROM Emp E, Dept D, DepAvgSal V, DeptHeads H
//	WHERE E.did = D.did AND E.did = V.did AND E.did = H.did
//	  AND E.sal > V.avgsal AND E.age < 30 AND D.budget > 100000
//
// Layout: E:[0..3] D:[4,5] V:[6,7] H:[8,9].
func multiViewQuery() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "Dept", Alias: "D"},
			{Name: "DepAvgSal", Alias: "V"},
			{Name: "DeptHeads", Alias: "H"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(4, "D.did")),
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(6, "V.did")),
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(8, "H.did")),
			expr.NewCmp(expr.GT, expr.NewCol(2, "E.sal"), expr.NewCol(7, "V.avgsal")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "E.age"), expr.Int(30)),
			expr.NewCmp(expr.GT, expr.NewCol(5, "D.budget"), expr.Int(100000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(1, "E.did"), Name: "did"},
			{Expr: expr.NewCol(2, "E.sal"), Name: "sal"},
			{Expr: expr.NewCol(7, "V.avgsal"), Name: "avgsal"},
			{Expr: expr.NewCol(9, "H.heads"), Name: "heads"},
		},
	}
}

// E14MultiView addresses the paper's §2.1 open point: "if there are
// multiple views joined in the query, further decisions need to be
// made". As a join method, the Filter Join needs no special machinery —
// the DP simply considers one Filter Join per virtual relation, and each
// one's filter benefits from everything already joined (including the
// other restricted view).
func E14MultiView() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:    "E14",
		Title: "Two views in one query (§2.1 'multiple views' interaction)",
		Header: []string{"big-dept frac", "plain", "filter join", "ratio",
			"filter joins in plan"},
	}
	for _, frac := range []float64{0.02, 0.1, 0.5} {
		p := datagen.DefaultFig1()
		p.BigFrac = frac
		cat, err := multiViewCatalog(p)
		if err != nil {
			return nil, err
		}
		oPlain := optimizer(cat, model, nil)
		_, nPlain, cPlain, err := optimizeRun(oPlain, multiViewQuery())
		if err != nil {
			return nil, err
		}
		oFJ := optimizer(cat, model, core.NewMethod(core.Options{}))
		plFJ, nFJ, cFJ, err := optimizeRun(oFJ, multiViewQuery())
		if err != nil {
			return nil, err
		}
		if nPlain != nFJ {
			return nil, errRowMismatch(nPlain, nFJ)
		}
		fjCount := 0
		plFJ.Walk(func(n *plan.Node) {
			if n.Kind == "FilterJoin" {
				fjCount++
			}
		})
		costPlain, costFJ := model.Total(cPlain), model.Total(cFJ)
		r.AddRow(f2(frac), f1(costPlain), f1(costFJ), f2(costFJ/costPlain), d(int64(fjCount)))
	}
	r.AddNote("both views are restricted by filter joins when selective; the second filter join's production set already contains the first restricted view, so the restrictions compound")
	return r, nil
}
