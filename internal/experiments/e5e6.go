package experiments

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/magic"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// empDeptBlock is Dept σ(budget) ⋈ Emp — the stored-relation workload.
// Layout: D:[0,1] E:[2..5].
func empDeptBlock() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Dept", Alias: "D"},
			{Name: "Emp", Alias: "E"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "D.did"), expr.NewCol(3, "E.did")),
			expr.NewCmp(expr.GT, expr.NewCol(1, "D.budget"), expr.Int(100000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(2, "E.eid"), Name: "eid"},
			{Expr: expr.NewCol(4, "E.sal"), Name: "sal"},
		},
	}
}

// empDeptViewOuterBlock is Emp ⋈ Dept (the Fig 1 outer) used for the
// correlated-view measurement. Layout: E:[0..3] D:[4,5].
func empDeptViewOuterBlock() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "Dept", Alias: "D"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(4, "D.did")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "E.age"), expr.Int(30)),
			expr.NewCmp(expr.GT, expr.NewCol(5, "D.budget"), expr.Int(100000)),
		},
	}
}

// outerViewBlock exposes the Fig 1 outer (young emps in big depts) as a
// projected view so the E5 matrix can force a strategy at the view join
// only. Output: (did, sal).
func outerViewBlock() *query.Block {
	b := empDeptViewOuterBlock()
	b.Proj = []query.Output{
		{Expr: expr.NewCol(1, "E.did"), Name: "did"},
		{Expr: expr.NewCol(2, "E.sal"), Name: "sal"},
	}
	return b
}

// viewCellBlock joins the OuterED view with DepAvgSal — the Fig 1 query
// with its outer pre-packaged. Layout: O:[0,1] V:[2,3].
func viewCellBlock() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "OuterED", Alias: "O"},
			{Name: "DepAvgSal", Alias: "V"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "O.did"), expr.NewCol(2, "V.did")),
			expr.NewCmp(expr.GT, expr.NewCol(1, "O.sal"), expr.NewCol(3, "V.avgsal")),
		},
	}
}

// measureForced optimizes b with a fixed order and a restricted method
// set, executes it, and returns the weighted measured cost.
func measureForced(cat *catalog.Catalog, model cost.Model, b *query.Block, order []int, fj *core.Method, disabled ...string) (float64, error) {
	o := optimizer(cat, model, fj, disabled...)
	p, err := o.OptimizeBlockWithOrder(b, order)
	if err != nil {
		return 0, err
	}
	_, counter, err := measured(p)
	if err != nil {
		return 0, err
	}
	return model.Total(counter), nil
}

// measureCorrelatedView measures true nested iteration over the view
// (Fig 6 "Correlation" cell): for every outer row of E⋈D, the view body
// is re-executed restricted to that row's binding, optionally with a
// result cache per distinct binding.
func measureCorrelatedView(cat *catalog.Catalog, model cost.Model, memo bool) (float64, error) {
	o := optimizer(cat, model, nil)
	outerPlan, err := o.OptimizeBlock(empDeptViewOuterBlock())
	if err != nil {
		return 0, err
	}
	ctx := exec.NewContext()
	outerRows, err := exec.Drain(ctx, outerPlan.Make())
	if err != nil {
		return 0, err
	}
	// The binding parameter table holds exactly one did at a time.
	fs := schema.New(schema.Column{Table: "F_corr", Name: "k0", Type: value.KindInt})
	ft := storage.NewTable("F_corr", fs)
	ft.MustInsert(value.NewInt(0))
	cat.AddTable(ft)
	defer cat.Drop("F_corr")
	innerPlan, err := o.OptimizeBlock(restrictedViewBlockForEmp("F_corr"))
	if err != nil {
		return 0, err
	}
	didIdx := 1 // E.did position in the outer block layout (identity projection)
	cache := map[int64]bool{}
	for _, r := range outerRows {
		did := r[didIdx].Int()
		if memo {
			if cache[did] {
				ctx.Counter.CPUTuples++ // cache hit
				continue
			}
			cache[did] = true
		}
		ft.Truncate()
		if err := ft.Insert(value.Row{value.NewInt(did)}); err != nil {
			return 0, err
		}
		if _, err := exec.Count(ctx, innerPlan.Make()); err != nil {
			return 0, err
		}
	}
	return model.Total(*ctx.Counter), nil
}

// E5Taxonomy reproduces Figure 6: the cross-domain matrix of join
// strategies. Every non-empty cell is a measured execution cost of the
// same logical join evaluated with that strategy forced.
func E5Taxonomy() (*Report, error) {
	model := cost.DefaultModel()

	// Smaller workloads: the correlated cells are deliberately expensive.
	figP := datagen.DefaultFig1()
	figP.NEmp, figP.NDept = 8000, 200
	figCat, err := datagen.Fig1Catalog(figP)
	if err != nil {
		return nil, err
	}
	figCat.AddView("OuterED", outerViewBlock())
	distP := datagen.DefaultDist()
	distP.NOrders, distP.NCustomers = 16000, 800
	distCat, err := datagen.DistCatalog(distP)
	if err != nil {
		return nil, err
	}
	udrCat, _, err := datagen.UDRCatalog(datagen.DefaultUDR())
	if err != nil {
		return nil, err
	}

	cell := func(v float64, err error) (string, error) {
		if err != nil {
			return "", err
		}
		return f1(v), nil
	}
	na := "—"

	r := &Report{
		ID:     "E5",
		Title:  "Figure 6: join strategies across domains (measured cost units)",
		Header: []string{"strategy", "stored", "remote", "view", "udr"},
	}

	// ---- repeated probe -----------------------------------------------
	stored, err := cell(measureForced(figCat, model, empDeptBlock(), []int{0, 1}, nil, "hash", "merge", "nlj"))
	if err != nil {
		return nil, fmt.Errorf("stored repeated probe: %w", err)
	}
	remote, err := cell(measureForced(distCat, model, datagen.DistBaseQuery(), []int{0, 1}, nil, "hash", "merge", "nlj"))
	if err != nil {
		return nil, fmt.Errorf("remote repeated probe: %w", err)
	}
	view, err := cell(measureCorrelatedView(figCat, model, false))
	if err != nil {
		return nil, fmt.Errorf("view correlation: %w", err)
	}
	udrC, err := cell(measureForced(udrCat, model, datagen.UDRQuery(), []int{0, 1, 2}, nil, "funcprobememo"))
	if err != nil {
		return nil, fmt.Errorf("udr repeated probe: %w", err)
	}
	r.AddRow("repeated probe", stored, remote, view, udrC)

	// ---- repeated probe with caching ----------------------------------
	viewMemo, err := cell(measureCorrelatedView(figCat, model, true))
	if err != nil {
		return nil, err
	}
	udrMemo, err := cell(measureForced(udrCat, model, datagen.UDRQuery(), []int{0, 1, 2}, nil, "funcprobe"))
	if err != nil {
		return nil, err
	}
	r.AddRow("  w/ caching (memo)", na, na, viewMemo, udrMemo)

	// ---- full computation ----------------------------------------------
	stored, err = cell(measureForced(figCat, model, empDeptBlock(), []int{0, 1}, nil, "indexnl", "merge", "nlj"))
	if err != nil {
		return nil, err
	}
	remote, err = cell(measureForced(distCat, model, datagen.DistBaseQuery(), []int{0, 1}, nil, "fetchmatches", "indexnl", "merge", "nlj"))
	if err != nil {
		return nil, err
	}
	view, err = cell(measureForced(figCat, model, viewCellBlock(), []int{0, 1}, nil))
	if err != nil {
		return nil, err
	}
	r.AddRow("full computation", stored, remote, view, na)

	// ---- filter join ----------------------------------------------------
	stored, err = cell(measureForced(figCat, model, empDeptBlock(), []int{0, 1},
		core.NewMethod(core.Options{IncludeStored: true}), "hash", "merge", "nlj", "indexnl"))
	if err != nil {
		return nil, err
	}
	remote, err = cell(measureForced(distCat, model, datagen.DistBaseQuery(), []int{0, 1},
		core.NewMethod(core.Options{}), "hash", "merge", "nlj", "fetchmatches", "indexnl"))
	if err != nil {
		return nil, err
	}
	view, err = cell(measureForced(figCat, model, viewCellBlock(), []int{0, 1},
		core.NewMethod(core.Options{}), "hash", "merge", "nlj"))
	if err != nil {
		return nil, err
	}
	udrC, err = cell(measureForced(udrCat, model, datagen.UDRQuery(), []int{0, 1, 2},
		core.NewMethod(core.Options{}), "funcprobe", "funcprobememo"))
	if err != nil {
		return nil, err
	}
	r.AddRow("filter join", stored, remote, view, udrC)

	// ---- lossy filter ----------------------------------------------------
	stored, err = cell(measureForced(figCat, model, empDeptBlock(), []int{0, 1},
		core.NewMethod(core.Options{IncludeStored: true, Bloom: true, DisableExact: true}),
		"hash", "merge", "nlj", "indexnl"))
	if err != nil {
		return nil, err
	}
	remote, err = cell(measureForced(distCat, model, datagen.DistBaseQuery(), []int{0, 1},
		core.NewMethod(core.Options{Bloom: true, DisableExact: true}),
		"hash", "merge", "nlj", "fetchmatches", "indexnl"))
	if err != nil {
		return nil, err
	}
	r.AddRow("lossy filter (Bloom)", stored, remote, na, na)

	r.AddNote("every cell is the measured weighted cost of the same logical query under a forced strategy; — marks cells the taxonomy leaves empty")
	return r, nil
}

// E6Crossover reproduces the paper's headline claim (§1-§2): magic
// rewriting helps by a large factor when few bindings qualify and hurts
// when most do; the cost-based Filter Join tracks the better of the two
// everywhere because it is a per-join, per-query decision.
func E6Crossover() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:    "E6",
		Title: "Crossover: original vs always-magic vs cost-based Filter Join",
		Header: []string{"big-dept frac", "original", "always magic", "cost-based", "FJ chosen?",
			"magic/original"},
	}
	var crossover float64 = -1
	for _, frac := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0} {
		p := datagen.DefaultFig1()
		p.BigFrac = frac
		cat, err := datagen.Fig1Catalog(p)
		if err != nil {
			return nil, err
		}

		// (a) Original query, no Filter Join available.
		oPlain := optimizer(cat, model, nil)
		_, _, cPlain, err := optimizeRun(oPlain, datagen.Fig1Query())
		if err != nil {
			return nil, err
		}
		costPlain := model.Total(cPlain)

		// (b) Textbook magic rewriting with the heuristic SIPS {E,D},
		// optimized by the same plain optimizer (the Starburst approach
		// without its final cost comparison).
		rw, err := magic.Rewrite(cat, datagen.Fig1Query(), 2, []int{0, 1})
		if err != nil {
			return nil, err
		}
		oMagic := optimizer(cat, model, nil)
		_, _, cMagic, err := optimizeRun(oMagic, rw.Final)
		rw.Drop()
		if err != nil {
			return nil, err
		}
		costMagic := model.Total(cMagic)

		// (c) Cost-based: the Filter Join competes inside the optimizer.
		fj := core.NewMethod(core.Options{})
		oFJ := optimizer(cat, model, fj)
		plFJ, _, cFJ, err := optimizeRun(oFJ, datagen.Fig1Query())
		if err != nil {
			return nil, err
		}
		costFJ := model.Total(cFJ)

		if crossover < 0 && costMagic > costPlain {
			crossover = frac
		}
		r.AddRow(fmt.Sprintf("%.1f%%", frac*100), f1(costPlain), f1(costMagic), f1(costFJ),
			yesNo(plFJ.Find("FilterJoin") != nil), f2(costMagic/costPlain))
	}
	if crossover >= 0 {
		r.AddNote("always-magic becomes worse than the original at ~%.1f%% qualifying departments; the cost-based plan stays at (or below) the better of the two on both sides", crossover*100)
	} else {
		r.AddNote("always-magic never became worse than the original in this sweep")
	}
	return r, nil
}
