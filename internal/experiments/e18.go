package experiments

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	filterjoin "filterjoin"
	"filterjoin/internal/plancache"
)

// E18 measures the serving layer: the same deterministic mixed workload
// (prepared statements, normalized ad-hoc text, the paper's magic-view
// join) is driven from concurrent sessions against one engine twice —
// once with the selectivity-class plan cache on, once with it disabled —
// and the report compares QPS, tail latency, and the cache hit rate.
// The workload's bind values are drawn from a fixed congruential
// sequence, so both modes execute the identical query stream and their
// row counts must agree exactly.
//
// Knobs (for CI smoke runs): FILTERJOIN_E18_QUERIES total queries
// (default 2000) and FILTERJOIN_E18_SESSIONS concurrent sessions
// (default 4).

// e18DB builds the quickstart-shaped catalog the serving experiment
// queries: Emp/Dept with the emp_did index and the DepAvgSal magic view.
func e18DB(cacheOff bool) (*filterjoin.DB, error) {
	db := filterjoin.Open(filterjoin.Config{BatchSize: 1024, DisablePlanCache: cacheOff})
	if err := db.ExecScript(`
		CREATE TABLE Emp (eid int, did int, sal float, age int);
		CREATE TABLE Dept (did int, budget int);
		CREATE INDEX emp_did ON Emp (did);
		CREATE VIEW DepAvgSal AS
		  (SELECT E.did, AVG(E.sal) AS avgsal FROM Emp E GROUP BY E.did);
	`); err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("INSERT INTO Emp VALUES ")
	const nEmp, nDept = 3000, 100
	for i := 0; i < nEmp; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		age := 31 + (i*13)%30
		if i%4 == 0 {
			age = 21 + i%9
		}
		fmt.Fprintf(&b, "(%d,%d,%d.0,%d)", i, i*nDept/nEmp, 1000+(i*37)%5000, age)
	}
	b.WriteString("; INSERT INTO Dept VALUES ")
	for d := 0; d < nDept; d++ {
		if d > 0 {
			b.WriteString(",")
		}
		budget := 20000 + (d*211)%70000
		if d%20 == 0 {
			budget = 150000
		}
		fmt.Fprintf(&b, "(%d,%d)", d, budget)
	}
	b.WriteString(";")
	if err := db.ExecScript(b.String()); err != nil {
		return nil, err
	}
	return db, nil
}

func e18Env(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// e18Mode drives the full workload against one engine and returns the
// aggregate measurements.
type e18Result struct {
	elapsed   time.Duration
	latencies []time.Duration
	rows      int64
	stats     plancache.Stats
}

func e18Run(cacheOff bool, sessions, queries int) (*e18Result, error) {
	db, err := e18DB(cacheOff)
	if err != nil {
		return nil, err
	}
	perWorker := queries / sessions
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		res  = &e18Result{}
		errs = make([]error, sessions)
	)
	start := time.Now()
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			stmt, err := sess.Prepare(
				`SELECT E.eid, E.sal FROM Emp E, Dept D WHERE E.did = D.did AND E.age < ? AND E.did = ?`)
			if err != nil {
				errs[w] = err
				return
			}
			lats := make([]time.Duration, 0, perWorker)
			var rows int64
			for i := 0; i < perWorker; i++ {
				// Fixed draws: every bind value depends only on (w, i), so
				// the cached and uncached modes see the same stream. Ages
				// 22..29 stay inside one selectivity class of the Fig 5
				// grid; dids cover all 100 departments (equality on an
				// indexed key is a point class regardless of the value).
				age := 22 + (w*7+i*3)%8
				did := (w*13 + i*11) % 100
				var (
					r  *filterjoin.Result
					qe error
				)
				t0 := time.Now()
				switch i % 10 {
				case 2, 3, 4, 5, 6, 7, 8, 9:
					// The paper's magic-view join, restricted to one
					// department: planning is heavy (join enumeration plus
					// the parametric view coster's sample-grid sweep over
					// the magic block) while the Filter Join makes
					// execution cheap — exactly the regime a plan cache
					// amortizes.
					r, qe = sess.Query(fmt.Sprintf(`
						SELECT E.did, E.sal, V.avgsal
						FROM Emp E, Dept D, Dept D2, DepAvgSal V
						WHERE E.did = D.did AND E.did = D2.did AND E.did = V.did
						  AND E.sal > V.avgsal
						  AND E.did = %d AND E.age < %d
						  AND D.budget > 10000 AND D2.budget > 0`, did, age))
				case 1:
					r, qe = sess.Query(fmt.Sprintf(
						`SELECT E.eid FROM Emp E, Dept D WHERE E.did = D.did AND E.did = %d AND D.budget > 10000`, did))
				default:
					r, qe = stmt.Exec(age, did)
				}
				lats = append(lats, time.Since(t0))
				if qe != nil {
					errs[w] = qe
					return
				}
				rows += int64(len(r.Rows))
			}
			mu.Lock()
			res.latencies = append(res.latencies, lats...)
			res.rows += rows
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.stats = db.CacheStats()
	return res, nil
}

func e18Pct(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

// E18ServingThroughput is the experiment entry point.
func E18ServingThroughput() (*Report, error) {
	sessions := e18Env("FILTERJOIN_E18_SESSIONS", 4)
	queries := e18Env("FILTERJOIN_E18_QUERIES", 2000)
	if queries < sessions {
		queries = sessions
	}

	r := &Report{
		ID:    "E18",
		Title: "Serving throughput: selectivity-class plan cache, cached vs uncached",
		Header: []string{"mode", "sessions", "queries", "elapsed_ms", "qps",
			"p50_ms", "p99_ms", "hits", "misses", "hit_rate"},
	}

	cached, err := e18Run(false, sessions, queries)
	if err != nil {
		return nil, err
	}
	uncached, err := e18Run(true, sessions, queries)
	if err != nil {
		return nil, err
	}

	emit := func(mode string, res *e18Result, hitRate float64) {
		n := len(res.latencies)
		qps := float64(n) / res.elapsed.Seconds()
		r.AddRow(mode, d(int64(sessions)), d(int64(n)), ms(res.elapsed), f0(qps),
			ms(e18Pct(res.latencies, 0.50)), ms(e18Pct(res.latencies, 0.99)),
			d(res.stats.Hits), d(res.stats.Misses), fmt.Sprintf("%.1f%%", hitRate*100))
	}
	emit("cached", cached, cached.stats.HitRate())
	emit("uncached", uncached, 0)

	if cached.rows != uncached.rows {
		return nil, fmt.Errorf("e18: cached workload returned %d rows, uncached %d — the cache changed results",
			cached.rows, uncached.rows)
	}
	r.AddNote("both modes ran the identical deterministic query stream and returned %d rows each", cached.rows)

	speedup := uncached.elapsed.Seconds() / cached.elapsed.Seconds()
	r.AddNote("cached throughput is %.2fx uncached (%s queries over %d sessions; planning amortizes across hits, execution does not)",
		speedup, d(int64(len(cached.latencies))), sessions)

	// The acceptance thresholds; short smoke runs warn instead of fail
	// (hit rate converges with stream length: every distinct
	// (template, class) key pays exactly one miss).
	if hr := cached.stats.HitRate(); hr < 0.90 {
		r.AddNote("WARNING: hit rate %.1f%% below the 90%% target (stream of %d may be too short to amortize the per-class misses)",
			hr*100, queries)
	}
	if speedup < 2 {
		r.AddNote("WARNING: cached speedup %.2fx below the 2x target (short or execution-bound runs under-weight planning time)", speedup)
	}
	return r, nil
}
