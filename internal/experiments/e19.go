package experiments

import (
	"fmt"
	"runtime"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// E19Batches is the executor batch-size sweep E19 measures under both
// expression engines. 1 is the classic row engine (kernels only help
// residual evaluation there), 64 a small morsel, 1024 the production
// default where the selection-vector kernels amortize best.
var E19Batches = []int{1, 64, 1024}

// e19Catalog builds the kernel benchmark tables: Big for the
// filter-heavy scan and Probe for the join-heavy hash probe. Sizes are
// scaled by FILTERJOIN_E19_ROWS for CI smoke runs.
func e19Catalog(rows int) *catalog.Catalog {
	cat := catalog.New()
	mk := func(name string, n, keyRange, seed int) {
		t := storage.NewTable(name, schema.New(
			schema.Column{Table: name, Name: "k", Type: value.KindInt},
			schema.Column{Table: name, Name: "v", Type: value.KindInt},
		))
		for i := 0; i < n; i++ {
			t.MustInsert(
				value.NewInt(int64((i*seed+i/7)%keyRange)),
				value.NewInt(int64(i%1000)),
			)
		}
		cat.AddTable(t)
	}
	mk("Big", rows, rows/3, 13)
	mk("Probe", rows*3/4, rows/3, 29)
	return cat
}

// e19Allocs runs f once and returns the heap allocation count it
// performed (runtime Mallocs delta). The caller warms the plan up first
// so the measurement sees the steady state, not one-time pool growth.
func e19Allocs(f func() error) (uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := f(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, nil
}

// E19Kernels measures the compiled expression kernels and
// allocation-free hash paths (DESIGN.md §14) against the interpreted
// engine: for a filter-heavy scan and a join-heavy hash join, each
// (batch size, kernels on/off) cell reports wall-clock, input-rows/sec,
// speedup over the interpreted engine at the same batch size, and heap
// allocations per thousand input rows — with rows and measured cost
// counters enforced bit-identical across every cell, the repository's
// standard parity bar.
func E19Kernels() (*Report, error) {
	model := cost.DefaultModel()
	nRows := e18Env("FILTERJOIN_E19_ROWS", 60000)
	reps := e18Env("FILTERJOIN_E19_REPS", 3)
	cat := e19Catalog(nRows)

	filterHeavy := func() *query.Block {
		// Four comparison clauses so per-row expression evaluation
		// dominates: the optimizer fuses them into one Select above the
		// scan, which is exactly the selection-vector kernel's territory.
		return &query.Block{
			Rels: []query.RelRef{{Name: "Big"}},
			Preds: []expr.Expr{
				expr.NewCmp(expr.LT, expr.NewCol(1, "Big.v"), expr.Int(800)),
				expr.NewCmp(expr.GE, expr.NewCol(1, "Big.v"), expr.Int(5)),
				expr.NewCmp(expr.LT, expr.NewCol(0, "Big.k"), expr.Int(int64(nRows))),
				expr.NewCmp(expr.NE, expr.NewCol(1, "Big.v"), expr.Int(411)),
			},
		}
	}
	joinHeavy := func() *query.Block {
		return &query.Block{
			Rels: []query.RelRef{{Name: "Big"}, {Name: "Probe"}},
			Preds: []expr.Expr{
				expr.Eq(expr.NewCol(0, "Big.k"), expr.NewCol(2, "Probe.k")),
			},
		}
	}

	r := &Report{
		ID:    "E19",
		Title: "Expression kernels: rows/sec and allocs, interpreted vs compiled",
		Header: []string{"workload", "batch", "kernels", "wall ms", "Mrows/s",
			"speedup", "allocs/krow", "parity"},
	}

	type workload struct {
		name     string
		block    func() *query.Block
		input    int // base rows driven through the hot loop
		disabled []string
	}
	workloads := []workload{
		{"filter-heavy", filterHeavy, nRows, nil},
		{"join-heavy", joinHeavy, nRows + nRows*3/4, []string{"merge", "nlj", "indexnl"}},
	}

	for _, w := range workloads {
		var baseCost cost.Counter
		var baseRows int
		haveBase := false
		for _, batch := range E19Batches {
			var interpWall float64
			for _, kernels := range []bool{false, true} {
				o := optimizer(cat, model, nil, w.disabled...)
				o.BatchSize = batch
				p, err := o.OptimizeBlock(w.block())
				if err != nil {
					return nil, fmt.Errorf("E19 %s batch=%d: %w", w.name, batch, err)
				}
				run := func() (int, cost.Counter, error) {
					ctx := exec.NewContext()
					ctx.BatchSize = batch
					ctx.Kernels = kernels
					n, err := exec.Count(ctx, p.Make())
					return n, *ctx.Counter, err
				}
				wall, rows, c, err := bestOf(reps, run)
				if err != nil {
					return nil, fmt.Errorf("E19 %s batch=%d kernels=%t: %w", w.name, batch, kernels, err)
				}
				// Steady-state allocation count: reuse one operator tree,
				// warm it up with a full drain, then measure a second drain.
				op := p.Make()
				drainOnce := func() error {
					ctx := exec.NewContext()
					ctx.BatchSize = batch
					ctx.Kernels = kernels
					_, err := exec.Count(ctx, op)
					return err
				}
				if err := drainOnce(); err != nil {
					return nil, fmt.Errorf("E19 %s warmup: %w", w.name, err)
				}
				allocs, err := e19Allocs(drainOnce)
				if err != nil {
					return nil, fmt.Errorf("E19 %s alloc run: %w", w.name, err)
				}
				if !haveBase {
					baseCost, baseRows, haveBase = c, rows, true
				} else if c != baseCost || rows != baseRows {
					return nil, fmt.Errorf("E19 %s batch=%d kernels=%t: parity broken: %s / %d rows vs %s / %d",
						w.name, batch, kernels, c.String(), rows, baseCost.String(), baseRows)
				}
				speedup := "-"
				if !kernels {
					interpWall = wall
				} else {
					speedup = f2(interpWall / wall)
				}
				r.AddRow(w.name, d(int64(batch)), yesNo(kernels), f2(wall*1000),
					f2(float64(w.input)/wall/1e6), speedup,
					f1(float64(allocs)/(float64(w.input)/1000)), yesNo(true))
			}
		}
	}

	r.AddNote("speedup is interpreted wall / compiled wall at the same batch size, best of %d; the acceptance bar is >=2.0x filter-heavy and >=1.3x join-heavy at batch=1024 on the full-size workload (%d base rows)", reps, nRows)
	r.AddNote("allocs/krow is the heap allocation count of a steady-state re-drain of a warmed operator tree per 1000 input rows (runtime Mallocs delta); the kernel paths' Filter/HashJoin/GroupBy per-row cost is allocation-free, so their figure stays near zero at large batch")
	r.AddNote("parity: rows and measured cost counters are enforced bit-identical across every (batch, kernels) cell against the interpreted row engine (DESIGN.md §11, §14)")
	return r, nil
}
