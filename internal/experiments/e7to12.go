package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"filterjoin/internal/bloom"
	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// chainCatalog builds N-1 chained tables T0..T(n-2) plus a grouped view
// V over a base table VB, for the optimizer-complexity experiment.
func chainCatalog(n, rowsPer int) (*catalog.Catalog, *query.Block, error) {
	cat := catalog.New()
	for i := 0; i < n-1; i++ {
		name := fmt.Sprintf("T%d", i)
		s := schema.New(
			schema.Column{Table: name, Name: "k", Type: value.KindInt},
			schema.Column{Table: name, Name: "nk", Type: value.KindInt},
		)
		t := storage.NewTable(name, s)
		for r := 0; r < rowsPer; r++ {
			t.MustInsert(value.NewInt(int64(r)), value.NewInt(int64((r*7)%rowsPer)))
		}
		if _, err := t.CreateIndex(name+"_k", []int{0}); err != nil {
			return nil, nil, err
		}
		cat.AddTable(t)
	}
	vb := storage.NewTable("VB", schema.New(
		schema.Column{Table: "VB", Name: "k", Type: value.KindInt},
		schema.Column{Table: "VB", Name: "v", Type: value.KindFloat},
	))
	for r := 0; r < rowsPer*4; r++ {
		vb.MustInsert(value.NewInt(int64(r%rowsPer)), value.NewFloat(float64(r)))
	}
	if _, err := vb.CreateIndex("vb_k", []int{0}); err != nil {
		return nil, nil, err
	}
	cat.AddTable(vb)
	cat.AddView("V", &query.Block{
		Rels:    []query.RelRef{{Name: "VB"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.NewCol(1, "VB.v"), Name: "total"}},
	})

	// Query: T0 ⋈ T1 ⋈ ... ⋈ T(n-2) ⋈ V, chained on nk=k, with a local
	// predicate on T0. Layout: Ti at offset 2i; V at offset 2(n-1).
	b := &query.Block{}
	for i := 0; i < n-1; i++ {
		b.Rels = append(b.Rels, query.RelRef{Name: fmt.Sprintf("T%d", i)})
	}
	b.Rels = append(b.Rels, query.RelRef{Name: "V"})
	for i := 0; i+1 < n-1; i++ {
		b.Preds = append(b.Preds, expr.Eq(
			expr.NewCol(2*i+1, fmt.Sprintf("T%d.nk", i)),
			expr.NewCol(2*(i+1), fmt.Sprintf("T%d.k", i+1)),
		))
	}
	b.Preds = append(b.Preds, expr.Eq(
		expr.NewCol(2*(n-2)+1, fmt.Sprintf("T%d.nk", n-2)),
		expr.NewCol(2*(n-1), "V.k"),
	))
	b.Preds = append(b.Preds, expr.NewCmp(expr.LT, expr.NewCol(0, "T0.k"), expr.Int(int64(rowsPer/10))))
	b.Proj = []query.Output{
		{Expr: expr.NewCol(0, "T0.k"), Name: "k"},
		{Expr: expr.NewCol(2*(n-1)+1, "V.total"), Name: "total"},
	}
	return cat, b, nil
}

// E7OptComplexity shows the §3 claim: adding the Filter Join leaves the
// asymptotic complexity of optimization unchanged — plans considered and
// optimization time grow in parallel with and without the method.
func E7OptComplexity() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:    "E7",
		Title: "Optimization complexity: Filter Join off vs on",
		Header: []string{"N rels", "plans (off)", "plans (on)", "ratio",
			"time off (ms)", "time on (ms)"},
	}
	for n := 2; n <= 8; n++ {
		cat, b, err := chainCatalog(n, 1000)
		if err != nil {
			return nil, err
		}
		oOff := optimizer(cat, model, nil)
		t0 := time.Now()
		if _, err := oOff.OptimizeBlock(b); err != nil {
			return nil, fmt.Errorf("N=%d off: %w", n, err)
		}
		dOff := time.Since(t0)

		fj := core.NewMethod(core.Options{})
		oOn := optimizer(cat, model, fj)
		// Warm the coster cache first (its one-time build is the paper's
		// Assumption 1 amortization), then measure the steady state.
		if _, err := oOn.OptimizeBlock(b); err != nil {
			return nil, fmt.Errorf("N=%d on: %w", n, err)
		}
		oOn.Metrics.PlansConsidered = 0
		oOn.Metrics.SubsetsExplored = 0
		oOn.Metrics.NestedOptimizations = 0
		t1 := time.Now()
		if _, err := oOn.OptimizeBlock(b); err != nil {
			return nil, err
		}
		dOn := time.Since(t1)

		ratio := float64(oOn.Metrics.PlansConsidered) / float64(oOff.Metrics.PlansConsidered)
		r.AddRow(d(int64(n)), d(oOff.Metrics.PlansConsidered), d(oOn.Metrics.PlansConsidered),
			f2(ratio), f2(float64(dOff.Microseconds())/1000), f2(float64(dOn.Microseconds())/1000))
	}
	r.AddNote("the plans-considered ratio stays bounded by the constant number of Filter Join variants per join (Limitations 1-3); growth in N is identical with the method on or off")
	return r, nil
}

// distStrategyCounters measures the four distributed strategies once;
// weighted totals under different network-cost models are derived from
// the same counters.
func distStrategyCounters() (map[string]cost.Counter, error) {
	cat, err := datagen.DistCatalog(datagen.DefaultDist())
	if err != nil {
		return nil, err
	}
	model := cost.DefaultModel()
	out := map[string]cost.Counter{}
	run := func(name string, fj *core.Method, disabled ...string) error {
		o := optimizer(cat, model, fj, disabled...)
		p, err := o.OptimizeBlockWithOrder(datagen.DistBaseQuery(), []int{0, 1})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		_, c, err := measured(p)
		if err != nil {
			return fmt.Errorf("%s execute: %w", name, err)
		}
		out[name] = c
		return nil
	}
	if err := run("ship-whole", nil, "fetchmatches"); err != nil {
		return nil, err
	}
	if err := run("fetch-matches", nil, "hash", "merge", "nlj"); err != nil {
		return nil, err
	}
	if err := run("semi-join", core.NewMethod(core.Options{}),
		"hash", "merge", "nlj", "fetchmatches"); err != nil {
		return nil, err
	}
	if err := run("bloom-join", core.NewMethod(core.Options{Bloom: true, DisableExact: true}),
		"hash", "merge", "nlj", "fetchmatches"); err != nil {
		return nil, err
	}
	return out, nil
}

// E8Distributed reproduces the §5.1 discussion: SDD-1 assumed
// communication dominates (semi-joins always win), System R* assumed
// local processing matters (semi-joins never considered); sweeping the
// network weight shows each assumption's regime and where they break.
func E8Distributed() (*Report, error) {
	counters, err := distStrategyCounters()
	if err != nil {
		return nil, err
	}
	names := []string{"ship-whole", "fetch-matches", "semi-join", "bloom-join"}
	r := &Report{
		ID:    "E8",
		Title: "Distributed join strategies under varying network cost",
		Header: append([]string{"net weight ×"}, append(append([]string{}, names...),
			"winner")...),
	}
	base := cost.DefaultModel()
	for _, scale := range []float64{0, 0.1, 1, 10, 100} {
		m := base
		m.NetByte = base.NetByte * scale
		m.NetMsg = base.NetMsg * scale
		row := []string{fmt.Sprintf("%g", scale)}
		bestName, bestCost := "", math.Inf(1)
		for _, n := range names {
			c := m.Total(counters[n])
			row = append(row, f1(c))
			if c < bestCost {
				bestCost, bestName = c, n
			}
		}
		row = append(row, bestName)
		r.AddRow(row...)
	}
	for _, n := range names {
		c := counters[n]
		r.AddNote("%s: pages=%d netKB=%.1f msgs=%d", n,
			c.PageReads+c.PageWrites, float64(c.NetBytes)/1024, c.NetMsgs)
	}
	return r, nil
}

// E9Bloom sweeps the Bloom filter budget: theoretical vs measured false
// positive rate, filter ship size vs the exact filter set, and the
// total cost of the remote filter join under each setting.
func E9Bloom() (*Report, error) {
	p := datagen.DefaultDist()
	cat, err := datagen.DistCatalog(p)
	if err != nil {
		return nil, err
	}
	model := cost.DefaultModel()

	// Ground truth: the distinct ckeys of segment-1 customers.
	custEntry, err := cat.Get("Customer")
	if err != nil {
		return nil, err
	}
	ordersEntry, err := cat.Get("Orders")
	if err != nil {
		return nil, err
	}
	keys := exec.NewKeySet(1)
	for _, row := range custEntry.Table.Rows() {
		if row[1].Int() == 1 {
			keys.Add(value.Row{row[0]})
		}
	}
	trueMember := map[int64]bool{}
	for _, kr := range keys.Rows() {
		trueMember[kr[0].Int()] = true
	}

	r := &Report{
		ID:    "E9",
		Title: "Bloom filter budget sweep (remote semi-join of Orders by Customer segment)",
		Header: []string{"repr", "bits/entry", "ship bytes", "FPR theory", "FPR measured",
			"extra rows", "measured cost"},
	}
	exactCost, err := measureForced(cat, model, datagen.DistBaseQuery(), []int{0, 1},
		core.NewMethod(core.Options{}), "hash", "merge", "nlj", "fetchmatches", "indexnl")
	if err != nil {
		return nil, err
	}
	r.AddRow("exact", "-", d(int64(keys.SizeBytes())), "0", "0", "0", f1(exactCost))

	for _, bits := range []float64{2, 4, 6, 8, 12, 16} {
		bf := keys.ToBloom(bits, []int{1}) // probe rows are Orders rows; ckey at position 1
		passes, falsePos, nonMembers := 0, 0, 0
		for _, row := range ordersEntry.Table.Rows() {
			member := trueMember[row[1].Int()]
			if !member {
				nonMembers++
			}
			if bf.MayContain(row, []int{1}) {
				passes++
				if !member {
					falsePos++
				}
			}
		}
		measuredFPR := 0.0
		if nonMembers > 0 {
			measuredFPR = float64(falsePos) / float64(nonMembers)
		}
		cost9, err := measureForced(cat, model, datagen.DistBaseQuery(), []int{0, 1},
			core.NewMethod(core.Options{Bloom: true, DisableExact: true, BloomBitsPerEntry: bits}),
			"hash", "merge", "nlj", "fetchmatches", "indexnl")
		if err != nil {
			return nil, err
		}
		r.AddRow("bloom", fmt.Sprintf("%g", bits), d(int64(bf.SizeBytes())),
			fmt.Sprintf("%.4f", bloom.TheoreticalFPR(bits)),
			fmt.Sprintf("%.4f", measuredFPR), d(int64(falsePos)), f1(cost9))
	}
	r.AddNote("the fixed-size lossy filter trades shipped bytes against wasted inner work; past ~8 bits/entry the extra rows vanish while the filter stays far smaller than the exact set on wide keys")
	return r, nil
}

// E10UDR reproduces §5.2: the three invocation strategies for a
// function-backed relation, with actual invocation counts.
func E10UDR() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:     "E10",
		Title:  "User-defined relation strategies (DeptPerks)",
		Header: []string{"strategy", "fn calls", "measured cost", "rows"},
	}
	for _, tc := range []struct {
		name     string
		fj       *core.Method
		disabled []string
	}{
		{"repeated probe", nil, []string{"funcprobememo"}},
		{"probe w/ memo cache", nil, []string{"funcprobe"}},
		{"filter join (consecutive)", core.NewMethod(core.Options{}), []string{"funcprobe", "funcprobememo"}},
	} {
		cat, counter, err := datagen.UDRCatalog(datagen.DefaultUDR())
		if err != nil {
			return nil, err
		}
		o := optimizer(cat, model, tc.fj, tc.disabled...)
		p, err := o.OptimizeBlockWithOrder(datagen.UDRQuery(), []int{0, 1, 2})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		rows, c, err := measured(p)
		if err != nil {
			return nil, err
		}
		r.AddRow(tc.name, d(int64(counter.Calls)), f1(model.Total(c)), d(int64(rows)))
	}
	r.AddNote("the filter join invokes the function once per distinct binding, consecutively — no duplicate invocations, matching the paper's locality argument")
	return r, nil
}

// E11EstimateAccuracy compares optimizer estimates against executed
// counters across the suite's workloads, and checks that estimated plan
// ranking agrees with measured ranking over the six Fig 3 orders.
func E11EstimateAccuracy() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:     "E11",
		Title:  "Estimate vs measured cost",
		Header: []string{"workload", "estimated", "measured", "est/meas"},
	}
	addCase := func(name string, cat *catalog.Catalog, b *query.Block) error {
		o := optimizer(cat, model, core.NewMethod(core.Options{}))
		p, _, c, err := optimizeRun(o, b)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		est, meas := p.Total(model), model.Total(c)
		ratio := math.Inf(1)
		if meas > 0 {
			ratio = est / meas
		}
		r.AddRow(name, f1(est), f1(meas), f2(ratio))
		return nil
	}
	for _, frac := range []float64{0.02, 0.1, 0.5} {
		p := datagen.DefaultFig1()
		p.BigFrac = frac
		cat, err := datagen.Fig1Catalog(p)
		if err != nil {
			return nil, err
		}
		if err := addCase(fmt.Sprintf("fig1 big=%.0f%%", frac*100), cat, datagen.Fig1Query()); err != nil {
			return nil, err
		}
	}
	distCat, err := datagen.DistCatalog(datagen.DefaultDist())
	if err != nil {
		return nil, err
	}
	if err := addCase("distributed base", distCat, datagen.DistBaseQuery()); err != nil {
		return nil, err
	}
	if err := addCase("remote view", distCat, datagen.DistQuery()); err != nil {
		return nil, err
	}
	udrCat, _, err := datagen.UDRCatalog(datagen.DefaultUDR())
	if err != nil {
		return nil, err
	}
	if err := addCase("udr", udrCat, datagen.UDRQuery()); err != nil {
		return nil, err
	}

	// Rank agreement over the six forced orders.
	cat, err := datagen.Fig1Catalog(datagen.DefaultFig1())
	if err != nil {
		return nil, err
	}
	type pair struct{ est, meas float64 }
	var pairs []pair
	for _, perm := range [][]int{{0, 1, 2}, {1, 0, 2}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}, {2, 1, 0}} {
		o := optimizer(cat, model, core.NewMethod(core.Options{}))
		p, err := o.OptimizeBlockWithOrder(datagen.Fig1Query(), perm)
		if err != nil {
			return nil, err
		}
		_, c, err := measured(p)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, pair{p.Total(model), model.Total(c)})
	}
	concordant, total := 0, 0
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			total++
			if (pairs[i].est < pairs[j].est) == (pairs[i].meas < pairs[j].meas) {
				concordant++
			}
		}
	}
	r.AddNote("plan-ranking agreement over the six Fig 3 orders: %d/%d pairs concordant", concordant, total)
	return r, nil
}

// salesCatalog builds a two-attribute workload for E12: a view grouped
// by (region, product) joined on both attributes.
func salesCatalog() (*catalog.Catalog, *query.Block, error) {
	cat := catalog.New()
	sales := storage.NewTable("Sales", schema.New(
		schema.Column{Table: "Sales", Name: "region", Type: value.KindInt},
		schema.Column{Table: "Sales", Name: "product", Type: value.KindInt},
		schema.Column{Table: "Sales", Name: "amount", Type: value.KindFloat},
	))
	const nRegion, nProduct, nSales = 20, 500, 30000
	for i := 0; i < nSales; i++ {
		sales.MustInsert(
			value.NewInt(int64(i*nRegion/nSales)),
			value.NewInt(int64((i*13)%nProduct)),
			value.NewFloat(float64(10+i%90)),
		)
	}
	if _, err := sales.CreateIndex("sales_region", []int{0}); err != nil {
		return nil, nil, err
	}
	cat.AddTable(sales)

	req := storage.NewTable("Request", schema.New(
		schema.Column{Table: "Request", Name: "rid", Type: value.KindInt},
		schema.Column{Table: "Request", Name: "region", Type: value.KindInt},
		schema.Column{Table: "Request", Name: "product", Type: value.KindInt},
	))
	for i := 0; i < 300; i++ {
		req.MustInsert(
			value.NewInt(int64(i)),
			value.NewInt(int64(i%3)),             // requests touch only 3 regions
			value.NewInt(int64((i*31)%nProduct)), // but many products
		)
	}
	cat.AddTable(req)

	cat.AddView("RPT", &query.Block{
		Rels:    []query.RelRef{{Name: "Sales"}},
		GroupBy: []int{0, 1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.NewCol(2, "Sales.amount"), Name: "total"}},
	})

	// Layout: R:[0..2] V:[3..5].
	q := &query.Block{
		Rels: []query.RelRef{
			{Name: "Request", Alias: "R"},
			{Name: "RPT", Alias: "V"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "R.region"), expr.NewCol(3, "V.region")),
			expr.Eq(expr.NewCol(2, "R.product"), expr.NewCol(4, "V.product")),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(0, "R.rid"), Name: "rid"},
			{Expr: expr.NewCol(5, "V.total"), Name: "total"},
		},
	}
	return cat, q, nil
}

// E12AttrSubsets explores Limitation 3's attribute-subset variants on a
// two-attribute join: filter on {region}, {product}, or both.
func E12AttrSubsets() (*Report, error) {
	model := cost.DefaultModel()
	cat, q, err := salesCatalog()
	if err != nil {
		return nil, err
	}
	fj := core.NewMethod(core.Options{AttrSubsets: true})
	type cand struct {
		desc  string
		total float64
		fCard float64
	}
	var cands []cand
	fj.Trace = func(ch *core.Choice, total float64) {
		if ch.InnerName != "RPT" {
			return
		}
		cands = append(cands, cand{desc: describeAttrs(ch), total: total, fCard: ch.FilterCard})
	}
	o := optimizer(cat, model, fj)
	p, _, c, err := optimizeRun(o, q)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "E12",
		Title:  "Filter-set attribute subsets for a two-attribute join (Request ⋈ RPT)",
		Header: []string{"filter attributes", "est |F|", "est total"},
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].total < cands[j].total })
	seen := map[string]bool{}
	for _, cd := range cands {
		if seen[cd.desc] {
			continue
		}
		seen[cd.desc] = true
		r.AddRow(cd.desc, f0(cd.fCard), f2(cd.total))
	}
	chosen := "none"
	if n := p.Find("FilterJoin"); n != nil {
		if ch, ok := n.Extra.(*core.Choice); ok {
			chosen = describeAttrs(ch)
		}
	}
	r.AddNote("optimizer chose: %s; measured cost %.1f", chosen, model.Total(c))
	return r, nil
}

func describeAttrs(ch *core.Choice) string {
	if len(ch.FilterInnerCols) == len(ch.AllInnerCols) {
		return "{region, product}"
	}
	// Single-attribute variant: identify which.
	switch ch.FilterInnerCols[0] {
	case ch.AllInnerCols[0]:
		return "{region}"
	default:
		return "{product}"
	}
}
