package experiments_test

import (
	"fmt"
	"strings"
	"testing"

	"filterjoin/internal/experiments"
)

// fmtSscan wraps fmt.Sscan for cell parsing.
func fmtSscan(s string, out *float64) (int, error) { return fmt.Sscan(s, out) }

// TestAllExperimentsRun executes every registered experiment end to end
// and sanity-checks the reports. This is the reproduction suite's
// integration test: every figure/table artifact must regenerate.
func TestAllExperimentsRun(t *testing.T) {
	// The serving-throughput experiment defaults to a stream long enough
	// for stable QPS numbers; the integration test only needs it to run,
	// so shorten the stream (notably under -race, which multiplies the
	// cost of the concurrent sessions).
	t.Setenv("FILTERJOIN_E18_QUERIES", "240")
	// Likewise the kernel experiment: full-size tables give stable
	// speedups, but the integration test only needs the parity
	// enforcement to run across every (batch, kernels) cell.
	t.Setenv("FILTERJOIN_E19_ROWS", "6000")
	t.Setenv("FILTERJOIN_E19_REPS", "1")
	for _, e := range experiments.Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if r.ID != e.ID {
				t.Errorf("report id %q, want %q", r.ID, e.ID)
			}
			if len(r.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			out := r.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("rendered report missing id header:\n%s", out)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestHeadlineInvariants pins the reproduction's quantitative claims so
// regressions in costing or execution surface as failures, not just as
// different-looking report text.
func TestHeadlineInvariants(t *testing.T) {
	t.Run("E6_crossover_shape", func(t *testing.T) {
		r, err := experiments.E6Crossover()
		if err != nil {
			t.Fatal(err)
		}
		parse := func(s string) float64 {
			var f float64
			if _, err := fmtSscan(s, &f); err != nil {
				t.Fatalf("bad cell %q", s)
			}
			return f
		}
		// Columns: frac, original, magic, cost-based, chosen, ratio.
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if parse(first[1])/parse(first[2]) < 5 {
			t.Errorf("magic should win by a large factor at the selective end: %s vs %s", first[1], first[2])
		}
		if parse(last[2]) <= parse(last[1]) {
			t.Errorf("magic should lose at the unselective end: %s vs %s", last[2], last[1])
		}
		for _, row := range r.Rows {
			cb := parse(row[3])
			better := parse(row[1])
			if parse(row[2]) < better {
				better = parse(row[2])
			}
			if cb > better*1.05+1 {
				t.Errorf("cost-based (%s) should track min(original, magic)=%.1f at frac %s", row[3], better, row[0])
			}
		}
	})

	t.Run("E7_bounded_ratio", func(t *testing.T) {
		r, err := experiments.E7OptComplexity()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			var ratio float64
			if _, err := fmtSscan(row[3], &ratio); err != nil {
				t.Fatalf("bad ratio %q", row[3])
			}
			if ratio > 2.0 {
				t.Errorf("N=%s: plans ratio %.2f exceeds the constant bound", row[0], ratio)
			}
		}
	})

	t.Run("E3_fit_error_small", func(t *testing.T) {
		r, err := experiments.E3CardinalityFit()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			var pct float64
			if _, err := fmtSscan(trimPct(row[4]), &pct); err != nil {
				t.Fatalf("bad error cell %q", row[4])
			}
			if pct > 10 {
				t.Errorf("fit error %s%% at sel %s exceeds 10%%", row[4], row[0])
			}
		}
	})
}

// TestE18HitRate pins the deterministic half of the serving experiment:
// on a short stream every distinct (template, selectivity-class) key
// pays exactly one miss, so the hit rate must already clear the 90%
// target. (The QPS speedup is machine-dependent and is checked against
// BENCH_E18.json, not here.)
func TestE18HitRate(t *testing.T) {
	t.Setenv("FILTERJOIN_E18_QUERIES", "240")
	r, err := experiments.E18ServingThroughput()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: mode ... hit_rate; row 0 is the cached mode.
	var hr float64
	if _, err := fmtSscan(trimPct(r.Rows[0][len(r.Rows[0])-1]), &hr); err != nil {
		t.Fatalf("bad hit-rate cell %q", r.Rows[0][len(r.Rows[0])-1])
	}
	if hr < 90 {
		t.Errorf("cached hit rate %.1f%% below the 90%% target", hr)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "WARNING: hit rate") {
			t.Errorf("report warns about the hit rate: %s", n)
		}
	}
}

func trimPct(s string) string {
	if len(s) > 0 && s[len(s)-1] == '%' {
		return s[:len(s)-1]
	}
	return s
}

func TestByID(t *testing.T) {
	if _, ok := experiments.ByID("e6"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := experiments.ByID("E99"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}
