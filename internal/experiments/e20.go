package experiments

import (
	"fmt"
	"strings"
	"time"

	filterjoin "filterjoin"
)

// E20 measures adaptive re-optimization (DESIGN.md §15) on an
// adversarial correlated workload: Emp.a and Emp.b are always equal, so
// the independence assumption underestimates sel(a=K AND b=K) by 100x
// (0.01*0.01 vs the true 0.01). Dept is large enough that hashing it
// costs hundreds of page reads, so the static optimizer — sizing the
// probe side at a handful of rows — picks index nested loops into
// Dept's did index; the true 100x row count makes that plan pay a page
// fetch per probe and lose to the hash join it rejected. The experiment
// drives the same query through three engines:
//
//   static    — adaptive features off: the misestimated plan, every run.
//   replan    — AdaptiveReplan: the Sort guard aborts the run mid-way
//               and the remainder re-optimizes with observed counts.
//   feedback  — AdaptiveFeedback: run 1 feeds actuals back into the
//               catalog stats (epoch bump), run 2 plans from truth.
//
// Hard invariants: all modes produce identical rows; the feedback
// engine's second run beats the static plan's measured cost; the replan
// run charges Replans >= 1; and with both features off the row and
// batch engines remain counter-bit-identical (including Replans).
//
// Knobs (for CI smoke runs): FILTERJOIN_E20_ROWS sets the Emp row count
// (default 40000), FILTERJOIN_E20_DEPTS the Dept row count (default
// 100000); shrink both together to keep the plan-flip geometry.

// e20DB builds the correlated workload: Emp (nRows, a=b always, did in
// [0,200)), Dept (nDepts rows, unique did, indexed on did).
func e20DB(cfg filterjoin.Config, nRows, nDepts int) (*filterjoin.DB, error) {
	db := filterjoin.Open(cfg)
	if err := db.ExecScript(`
		CREATE TABLE Emp (eid int, did int, a int, b int);
		CREATE TABLE Dept (did int, budget int);
		CREATE INDEX dept_did ON Dept (did);
	`); err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("INSERT INTO Emp VALUES ")
	for i := 0; i < nRows; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "(%d,%d,%d,%d)", i, i%200, i%100, i%100)
	}
	b.WriteString("; INSERT INTO Dept VALUES ")
	for i := 0; i < nDepts; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "(%d,%d)", i, 10000+(i*211)%50000)
	}
	b.WriteString(";")
	if err := db.ExecScript(b.String()); err != nil {
		return nil, err
	}
	return db, nil
}

const e20Query = `
	SELECT E.eid, D.budget FROM Emp E, Dept D
	WHERE E.did = D.did AND E.a = 7 AND E.b = 7
	ORDER BY E.eid`

// e20Run executes the query once and reports rows, measured counters,
// total cost, and wall time.
func e20Run(db *filterjoin.DB) (*filterjoin.Result, float64, time.Duration, error) {
	start := time.Now()
	res, err := db.Query(e20Query)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, db.TotalCost(res), time.Since(start), nil
}

// E20Adaptive runs the three modes and checks the adaptive contracts.
func E20Adaptive() (*Report, error) {
	nRows := e18Env("FILTERJOIN_E20_ROWS", 40000)
	nDepts := e18Env("FILTERJOIN_E20_DEPTS", 100000)

	r := &Report{
		ID:    "E20",
		Title: "Adaptive re-optimization: feedback and mid-run replanning on correlated data",
		Header: []string{"mode", "run", "rows", "cost", "cpu", "pageR",
			"replans", "cache", "ms"},
	}
	addRow := func(mode, run string, res *filterjoin.Result, total float64, wall time.Duration) {
		r.AddRow(mode, run, d(int64(len(res.Rows))), f2(total),
			d(res.Cost.CPUTuples), d(res.Cost.PageReads),
			d(res.Cost.Replans), res.CacheState,
			fmt.Sprintf("%.1f", float64(wall.Microseconds())/1000))
	}

	// Static baseline: the misestimated plan, twice (second run is the
	// cached steady state every later run would pay).
	static, err := e20DB(filterjoin.Config{BatchSize: 1024}, nRows, nDepts)
	if err != nil {
		return nil, fmt.Errorf("E20 static: %w", err)
	}
	s1, sCost1, sWall1, err := e20Run(static)
	if err != nil {
		return nil, fmt.Errorf("E20 static run 1: %w", err)
	}
	s2, sCost, sWall, err := e20Run(static)
	if err != nil {
		return nil, fmt.Errorf("E20 static run 2: %w", err)
	}
	addRow("static", "1", s1, sCost1, sWall1)
	addRow("static", "2", s2, sCost, sWall)
	if s1.Cost.Replans != 0 || s2.Cost.Replans != 0 {
		return nil, fmt.Errorf("E20: static engine charged replans")
	}

	// Mid-run replanning: the first run must abandon the misestimated
	// plan at a materialization guard and still produce the exact rows.
	replan, err := e20DB(filterjoin.Config{BatchSize: 1024, AdaptiveReplan: true}, nRows, nDepts)
	if err != nil {
		return nil, fmt.Errorf("E20 replan: %w", err)
	}
	p1, pCost, pWall, err := e20Run(replan)
	if err != nil {
		return nil, fmt.Errorf("E20 replan run: %w", err)
	}
	addRow("replan", "1", p1, pCost, pWall)
	if p1.Cost.Replans == 0 {
		return nil, fmt.Errorf("E20: 100x misestimate did not trigger a mid-run replan")
	}
	if p1.ReplannedFrom == nil || p1.ReplanInfo == nil {
		return nil, fmt.Errorf("E20: replan run does not report ReplannedFrom/ReplanInfo")
	}

	// Statistics feedback: run 1 absorbs the actuals (epoch bump), run 2
	// plans from corrected statistics and must beat the static plan.
	feedback, err := e20DB(filterjoin.Config{BatchSize: 1024, AdaptiveFeedback: true}, nRows, nDepts)
	if err != nil {
		return nil, fmt.Errorf("E20 feedback: %w", err)
	}
	epoch0 := feedback.Engine().Epoch()
	f1, fCost1, fWall1, err := e20Run(feedback)
	if err != nil {
		return nil, fmt.Errorf("E20 feedback run 1: %w", err)
	}
	if feedback.Engine().Epoch() == epoch0 {
		return nil, fmt.Errorf("E20: feedback run did not bump the catalog epoch")
	}
	f2nd, fCost, fWall, err := e20Run(feedback)
	if err != nil {
		return nil, fmt.Errorf("E20 feedback run 2: %w", err)
	}
	addRow("feedback", "1", f1, fCost1, fWall1)
	addRow("feedback", "2", f2nd, fCost, fWall)
	if f2nd.CacheState != "miss" {
		return nil, fmt.Errorf("E20: run after feedback served a stale cached plan (cache=%s)", f2nd.CacheState)
	}

	// Row identity across every mode and run.
	want := rowSetKey(s1)
	for name, res := range map[string]*filterjoin.Result{
		"static run 2": s2, "replan": p1, "feedback run 1": f1, "feedback run 2": f2nd,
	} {
		if rowSetKey(res) != want {
			return nil, fmt.Errorf("E20: %s rows differ from static baseline", name)
		}
	}

	// The second run of a misestimated query must pick the better plan.
	if fCost >= sCost {
		return nil, fmt.Errorf("E20: feedback-informed plan (cost %.2f) does not beat the static plan (%.2f)", fCost, sCost)
	}
	r.AddNote("feedback run 2 cost %.2f vs static %.2f (%.1fx cheaper); replan run cost %.2f",
		fCost, sCost, sCost/fCost, pCost)
	if fWall >= sWall1 {
		r.AddNote("WARNING: feedback run 2 wall %.1fms did not beat static run 1 wall %.1fms (both optimize; warn-only, wall is noisy)",
			float64(fWall.Microseconds())/1000, float64(sWall1.Microseconds())/1000)
	}
	if pCost >= sCost1 {
		r.AddNote("WARNING: replan run cost %.2f did not beat the static first run %.2f (abandoned work included)",
			pCost, sCost1)
	}

	// Counter bit-identity between row and batch engines with the
	// adaptive features disabled, including the Replans field.
	rowEng, err := e20DB(filterjoin.Config{BatchSize: 1}, nRows, nDepts)
	if err != nil {
		return nil, fmt.Errorf("E20 parity: %w", err)
	}
	rr, _, _, err := e20Run(rowEng)
	if err != nil {
		return nil, fmt.Errorf("E20 parity run: %w", err)
	}
	if rr.Cost != s1.Cost {
		return nil, fmt.Errorf("E20: row counter %s != batch counter %s with replanning disabled",
			rr.Cost.String(), s1.Cost.String())
	}
	r.AddNote("row/batch counter parity holds with adaptive features off (%s)", rr.Cost.String())
	return r, nil
}

// rowSetKey renders a result's rows order-insensitively (the ORDER BY
// makes order deterministic, but the key must not depend on it).
func rowSetKey(res *filterjoin.Result) string {
	keys := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		keys[i] = row.FullKey()
	}
	// Rows arrive sorted by eid via the ORDER BY; keep as-is.
	return strings.Join(keys, "|")
}
