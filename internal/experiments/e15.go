package experiments

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// orderCatalog builds a two-table workload with a fan-out join: Fact
// (2000 rows, 500 distinct keys) ⋈ Dim (2000 rows, 500 distinct keys)
// produces ~8000 rows, so sorting the join output costs far more than
// sorting either input and an order-preserving merge join should win
// whenever the final ORDER BY can then be elided.
func orderCatalog() *catalog.Catalog {
	cat := catalog.New()
	fact := storage.NewTable("Fact", schema.New(
		schema.Column{Table: "Fact", Name: "k", Type: value.KindInt},
		schema.Column{Table: "Fact", Name: "v", Type: value.KindInt},
	))
	dim := storage.NewTable("Dim", schema.New(
		schema.Column{Table: "Dim", Name: "k", Type: value.KindInt},
		schema.Column{Table: "Dim", Name: "w", Type: value.KindInt},
	))
	for i := 0; i < 2000; i++ {
		fact.MustInsert(value.NewInt(int64(i%500)), value.NewInt(int64(i)))
		dim.MustInsert(value.NewInt(int64((i*3)%500)), value.NewInt(int64(i*7)))
	}
	cat.AddTable(fact)
	cat.AddTable(dim)
	return cat
}

// E15SortElision quantifies the interesting-orders memo: each query runs
// under the order-aware optimizer and under DisableOrderProps, and the
// report shows estimated totals, measured counters, and whether the
// final Sort survived in the emitted plan.
func E15SortElision() (*Report, error) {
	model := cost.DefaultModel()
	cat := orderCatalog()
	join := func() *query.Block {
		return &query.Block{
			Rels: []query.RelRef{{Name: "Fact"}, {Name: "Dim"}},
			Preds: []expr.Expr{
				expr.Eq(expr.NewCol(0, "Fact.k"), expr.NewCol(2, "Dim.k")),
			},
		}
	}
	queries := []struct {
		name string
		b    *query.Block
	}{
		{"order by join key", func() *query.Block {
			b := join()
			b.OrderBy = []query.OrderItem{{Col: 0}}
			return b
		}()},
		{"order by key desc", func() *query.Block {
			b := join()
			b.OrderBy = []query.OrderItem{{Col: 0, Desc: true}}
			return b
		}()},
		{"order by non-key", func() *query.Block {
			b := join()
			b.OrderBy = []query.OrderItem{{Col: 1}}
			return b
		}()},
		{"group+order by key", func() *query.Block {
			b := join()
			b.GroupBy = []int{0}
			b.Aggs = []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}}
			b.OrderBy = []query.OrderItem{{Col: 0}}
			return b
		}()},
	}

	r := &Report{
		ID:    "E15",
		Title: "Interesting orders: property memo and sort elision",
		Header: []string{"query", "memo", "plans", "sorts",
			"est total", "meas total", "rows"},
	}
	var elisionSeen bool
	for _, q := range queries {
		var ref []string
		for _, disable := range []bool{false, true} {
			o := optimizer(cat, model, nil)
			o.DisableOrderProps = disable
			p, err := o.OptimizeBlock(q.b)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.name, err)
			}
			nSorts := 0
			p.Walk(func(n *plan.Node) {
				if n.Kind == "Sort" {
					nSorts++
				}
			})
			n, c, err := measured(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.name, err)
			}
			rows, err := resultSet(p)
			if err != nil {
				return nil, err
			}
			if ref == nil {
				ref = rows
			} else if !equalStringSlices(ref, rows) {
				return nil, fmt.Errorf("%s: memo on/off disagree on results", q.name)
			}
			mode := "on"
			if disable {
				mode = "off"
			} else if nSorts == 0 {
				elisionSeen = true
			}
			r.AddRow(q.name, mode, d(o.Metrics.PlansConsidered), d(int64(nSorts)),
				f1(p.Total(model)), f1(model.Total(c)), d(int64(n)))
		}
	}
	if !elisionSeen {
		return nil, fmt.Errorf("E15: no query had its final Sort elided")
	}
	r.AddNote("memo=on keeps one plan per (subset, interesting order); a merge join that retains the requested order elides the final Sort, cutting both estimated and measured totals on fan-out joins")
	r.AddNote("descending and non-key ORDER BYs cannot be satisfied by the ascending merge-join order, so both modes sort there; the memo then costs nothing extra (same candidate count)")
	return r, nil
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
