// Package experiments implements the reproduction suite: one runnable
// experiment per figure/table of the paper (and per quantitative prose
// claim), as indexed in DESIGN.md §4. Each experiment builds its own
// workload, runs real plans through the executor, and reports measured
// cost counters next to the optimizer's estimates. The cmd/filterbench
// CLI and the repository's benchmark suite are thin wrappers over this
// package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

// Report is one experiment's output: a titled, aligned table plus notes.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one table row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		var sep []string
		for _, w := range widths[:len(r.Header)] {
			sep = append(sep, strings.Repeat("-", w))
		}
		writeRow(sep)
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner func() (*Report, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists every experiment in paper order.
var Registry = []Entry{
	{"E1", "Table 1: Filter Join cost components", E1CostComponents},
	{"E2", "Figure 3: the six join orders and their magic variants", E2JoinOrders},
	{"E3", "Figure 4: restricted-view cardinality vs filter selectivity (line fit)", E3CardinalityFit},
	{"E4", "Figure 5: parametric cost equivalence classes and O(1) amortization", E4EquivClasses},
	{"E5", "Figure 6: join-strategy taxonomy across domains", E5Taxonomy},
	{"E6", "Crossover: magic rewriting vs original vs cost-based choice", E6Crossover},
	{"E7", "Optimizer complexity with and without the Filter Join", E7OptComplexity},
	{"E8", "Distributed regimes: semi-join vs fetch-matches vs ship-whole", E8Distributed},
	{"E9", "Bloom filters: bits/entry vs false positives vs total cost", E9Bloom},
	{"E10", "User-defined relations: invocation strategies", E10UDR},
	{"E11", "Estimate accuracy: optimizer estimates vs executed counters", E11EstimateAccuracy},
	{"E12", "Multi-attribute filter sets (Limitation 3 subsets)", E12AttrSubsets},
	{"E13", "Ablation: Limitation 2 vs prefix production sets", E13PrefixProduction},
	{"E14", "Multiple views in one query (§2.1 interaction)", E14MultiView},
	{"E15", "Interesting orders: property memo and sort elision", E15SortElision},
	{"E16", "Intra-query parallelism: wall-clock vs cost parity across DOP", E16ParallelExecution},
	{"E17", "Fault-injected transport: retry recovery and graceful degradation", E17Robustness},
	{"E18", "Serving throughput: plan cache hit rate and QPS, cached vs uncached", E18ServingThroughput},
	{"E19", "Expression kernels: rows/sec and allocs, interpreted vs compiled", E19Kernels},
	{"E20", "Adaptive re-optimization: feedback and mid-run replanning on correlated data", E20Adaptive},
}

// ByID finds an experiment by its id (case-insensitive).
func ByID(id string) (Entry, bool) {
	for _, e := range Registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Entry{}, false
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// optimizer builds an optimizer over cat; fj nil means no Filter Join.
func optimizer(cat *catalog.Catalog, model cost.Model, fj *core.Method, disabled ...string) *opt.Optimizer {
	o := opt.New(cat, model)
	for _, d := range disabled {
		o.Disabled[d] = true
	}
	if fj != nil {
		o.Register(fj)
	}
	return o
}

// measured runs a plan and returns (rows produced, measured counters).
func measured(p *plan.Node) (int, cost.Counter, error) {
	ctx := exec.NewContext()
	n, err := exec.Count(ctx, p.Make())
	if err != nil {
		return 0, cost.Counter{}, err
	}
	return n, *ctx.Counter, nil
}

// optimizeRun optimizes b and executes the plan.
func optimizeRun(o *opt.Optimizer, b *query.Block) (*plan.Node, int, cost.Counter, error) {
	p, err := o.OptimizeBlock(b)
	if err != nil {
		return nil, 0, cost.Counter{}, err
	}
	n, c, err := measured(p)
	return p, n, c, err
}

// resultSet drains a plan into a sorted canonical row list (for
// correctness cross-checks inside experiments).
func resultSet(p *plan.Node) ([]string, error) {
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, p.Make())
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
