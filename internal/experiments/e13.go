package experiments

import (
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
)

// E13PrefixProduction ablates Limitation 2 (paper §3.3): the production
// set is normally forced to be the complete outer; relaxing it admits
// every prefix subplan as a filter source — a strictly larger search
// space bought with a bounded (×N) increase in join-step work. The
// experiment reports, per workload selectivity, the plan cost and the
// optimization effort with the limitation in force vs relaxed.
func E13PrefixProduction() (*Report, error) {
	model := cost.DefaultModel()
	r := &Report{
		ID:    "E13",
		Title: "Ablation of Limitation 2: full-outer vs prefix production sets",
		Header: []string{"big-dept frac", "cost (Lim. 2)", "cost (relaxed)",
			"plans (Lim. 2)", "plans (relaxed)", "prefix chosen?"},
	}
	for _, frac := range []float64{0.02, 0.1, 0.5} {
		p := datagen.DefaultFig1()
		p.BigFrac = frac
		p.YoungFrac = 0.5 // an expensive Emp side makes prefix filters attractive
		cat, err := datagen.Fig1Catalog(p)
		if err != nil {
			return nil, err
		}

		oFull := optimizer(cat, model, core.NewMethod(core.Options{}))
		plFull, _, cFull, err := optimizeRun(oFull, datagen.Fig1Query())
		if err != nil {
			return nil, err
		}
		_ = plFull

		mPrefix := core.NewMethod(core.Options{PrefixProductionSets: true})
		oPrefix := optimizer(cat, model, mPrefix)
		plPrefix, _, cPrefix, err := optimizeRun(oPrefix, datagen.Fig1Query())
		if err != nil {
			return nil, err
		}
		prefixChosen := false
		if n := plPrefix.Find("FilterJoin"); n != nil {
			if ch, ok := n.Extra.(*core.Choice); ok {
				prefixChosen = ch.PrefixProduction
			}
		}
		r.AddRow(f2(frac), f1(model.Total(cFull)), f1(model.Total(cPrefix)),
			d(oFull.Metrics.PlansConsidered), d(oPrefix.Metrics.PlansConsidered),
			yesNo(prefixChosen))
	}
	// With free join ordering, the DP usually reaches the same effect by
	// reordering (the paper's point that SIPS choice ≈ join order
	// choice). Forcing the order (E⋈D)⋈V makes the production-set choice
	// load-bearing: the filter can come from the D subplan alone.
	p := datagen.DefaultFig1()
	p.BigFrac = 0.05
	p.YoungFrac = 0.5
	cat, err := datagen.Fig1Catalog(p)
	if err != nil {
		return nil, err
	}
	forced := []int{1, 0, 2} // D, E, then the view
	oFull := optimizer(cat, model, core.NewMethod(core.Options{}))
	plFull, err := oFull.OptimizeBlockWithOrder(datagen.Fig1Query(), forced)
	if err != nil {
		return nil, err
	}
	_, cFull, err := measured(plFull)
	if err != nil {
		return nil, err
	}
	mPrefix := core.NewMethod(core.Options{PrefixProductionSets: true})
	oPrefix := optimizer(cat, model, mPrefix)
	plPrefix, err := oPrefix.OptimizeBlockWithOrder(datagen.Fig1Query(), forced)
	if err != nil {
		return nil, err
	}
	_, cPrefix, err := measured(plPrefix)
	if err != nil {
		return nil, err
	}
	prefixChosen := false
	if n := plPrefix.Find("FilterJoin"); n != nil {
		if ch, ok := n.Extra.(*core.Choice); ok {
			prefixChosen = ch.PrefixProduction
		}
	}
	r.AddRow("forced (D⋈E)⋈V", f1(model.Total(cFull)), f1(model.Total(cPrefix)),
		d(oFull.Metrics.PlansConsidered), d(oPrefix.Metrics.PlansConsidered),
		yesNo(prefixChosen))
	r.AddNote("the relaxed space never yields a worse plan; the extra plans considered stay within the O(N) bound the paper predicts")
	r.AddNote("with free ordering the DP reaches equivalent plans by reordering — the paper's observation that SIPS choice reduces to join-order choice")
	return r, nil
}
