package experiments

import (
	"errors"
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// E17Seeds are the fault schedules the robustness experiment replays;
// frozen so the report is reproducible across machines.
var E17Seeds = []int64{5, 17, 23}

// robustCatalog is a two-site workload tuned so both remote strategies
// are live: a small local Customer hub and a remote Orders table whose
// key domain is much wider than the hub's (8 of 60 keys match), so
// fetching matches by key ships a fraction of what whole-table
// shipment would.
func robustCatalog() *catalog.Catalog {
	cat := catalog.New()
	cust := storage.NewTable("Customer", schema.New(
		schema.Column{Table: "Customer", Name: "ckey", Type: value.KindInt},
		schema.Column{Table: "Customer", Name: "segment", Type: value.KindInt},
	))
	for i := 0; i < 8; i++ {
		cust.MustInsert(value.NewInt(int64(i+1)), value.NewInt(int64(i%3)))
	}
	cat.AddTable(cust)

	orders := storage.NewTable("Orders", schema.New(
		schema.Column{Table: "Orders", Name: "okey", Type: value.KindInt},
		schema.Column{Table: "Orders", Name: "ckey", Type: value.KindInt},
		schema.Column{Table: "Orders", Name: "qty", Type: value.KindInt},
	))
	for i := 0; i < 240; i++ {
		orders.MustInsert(
			value.NewInt(int64(i)),
			value.NewInt(int64(i%60+1)),
			value.NewInt(int64(i%7)),
		)
	}
	if _, err := orders.CreateIndex("orders_ckey", []int{1}); err != nil {
		panic(err)
	}
	cat.AddRemoteTable(orders, 1)
	return cat
}

// robustQuery joins the hub against remote Orders with a local residual.
func robustQuery() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{{Name: "Customer"}, {Name: "Orders"}},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "Customer.ckey"), expr.NewCol(3, "Orders.ckey")),
			expr.NewCmp(expr.LT, expr.NewCol(4, "Orders.qty"), expr.Int(3)),
		},
	}
}

// runOnce drains the plan in a fresh context, optionally over a
// transport, applying the facade's degradation rule: a *dist.SiteError
// with a retained fallback reruns the fallback in the same context.
func runOnce(p *plan.Node, net exec.Transport) (rows int, c cost.Counter, degraded bool, err error) {
	ctx := exec.NewContext()
	ctx.Net = net
	out, err := exec.Drain(ctx, p.Make())
	var se *dist.SiteError
	if err != nil && errors.As(err, &se) && p.Fallback != nil {
		ctx.Counter.Fallbacks++
		degraded = true
		out, err = exec.Drain(ctx, p.Fallback.Make())
	}
	return len(out), *ctx.Counter, degraded, err
}

// E17Robustness measures the fault-injection substrate: for each remote
// strategy, every frozen fault schedule must reproduce the fault-free
// rows exactly (recovered by retry), with the surcharge visible in the
// retry/wait counters; and with eventual delivery off, a site outage
// longer than the retry budget must degrade to the retained fault-free
// fallback plan rather than fail the query.
func E17Robustness() (*Report, error) {
	model := cost.DefaultModel()
	model.NetByte *= 5000 // bytes dominate: fetch-matches beats bulk shipment
	cat := robustCatalog()

	r := &Report{
		ID:    "E17",
		Title: "Fault-injected transport: retry recovery and graceful degradation",
		Header: []string{"strategy", "seed", "rows", "netM", "retries",
			"waitMs", "fb", "parity"},
	}

	strategies := []struct {
		name     string
		disabled []string
	}{
		{"ship-whole", []string{"filterjoin", "fetchmatches"}},
		{"fetch-matches", []string{"hash", "merge", "nlj", "indexnl", "filterjoin"}},
	}
	for _, s := range strategies {
		o := optimizer(cat, model, nil, s.disabled...)
		p, err := o.OptimizeBlock(robustQuery())
		if err != nil {
			return nil, fmt.Errorf("E17 %s: optimize: %w", s.name, err)
		}
		freeRows, freeCost, _, err := runOnce(p, nil)
		if err != nil {
			return nil, fmt.Errorf("E17 %s: fault-free run: %w", s.name, err)
		}
		r.AddRow(s.name, "-", d(int64(freeRows)), d(freeCost.NetMsgs), "0", "0", "0", "-")
		for _, seed := range E17Seeds {
			net := dist.NewChaosTransport(
				dist.ChaosConfig{Seed: seed, DropRate: 0.6, MaxLatencyMs: 40, OutageEvery: 5, OutageLen: 2},
				dist.RetryPolicy{MaxAttempts: 5, TimeoutMs: 25, BackoffMs: 2},
			)
			rows, c, _, err := runOnce(p, net)
			if err != nil {
				return nil, fmt.Errorf("E17 %s seed %d: %w", s.name, seed, err)
			}
			parity := rows == freeRows &&
				c.NetMsgs == freeCost.NetMsgs+c.Retries &&
				c.PageReads == freeCost.PageReads && c.CPUTuples == freeCost.CPUTuples
			if !parity {
				return nil, fmt.Errorf("E17 %s seed %d: parity broken: %s vs fault-free %s",
					s.name, seed, c.String(), freeCost.String())
			}
			r.AddRow(s.name, d(seed), d(int64(rows)), d(c.NetMsgs), d(c.Retries),
				d(c.WaitMs), d(c.Fallbacks), yesNo(parity))
		}
	}

	// Graceful degradation: fetch-matches primary with its bulk-shipment
	// fallback retained, under an outage window longer than the retry
	// budget and no eventual-delivery cap. The per-outer-row message
	// stream dies mid-join; the rerun fallback must still produce the
	// fault-free rows.
	o := optimizer(cat, model, nil, "merge", "nlj", "indexnl", "filterjoin")
	p, err := o.OptimizeBlock(robustQuery())
	if err != nil {
		return nil, fmt.Errorf("E17 degrade: optimize: %w", err)
	}
	if p.Find("FetchMatches") == nil || p.Fallback == nil {
		return nil, fmt.Errorf("E17 degrade: primary/fallback premise broken (root %s)", p.Kind)
	}
	freeRows, _, _, err := runOnce(p, nil)
	if err != nil {
		return nil, fmt.Errorf("E17 degrade: fault-free run: %w", err)
	}
	net := dist.NewChaosTransport(
		dist.ChaosConfig{OutageEvery: 5, OutageLen: 4, NoEventualDelivery: true},
		dist.RetryPolicy{MaxAttempts: 3, BackoffMs: 1},
	)
	rows, c, degraded, err := runOnce(p, net)
	if err != nil {
		return nil, fmt.Errorf("E17 degrade: %w", err)
	}
	if !degraded || c.Fallbacks != 1 {
		return nil, fmt.Errorf("E17 degrade: outage did not trigger the fallback (fb=%d)", c.Fallbacks)
	}
	parity := rows == freeRows
	if !parity {
		return nil, fmt.Errorf("E17 degrade: fallback produced %d rows, fault-free %d", rows, freeRows)
	}
	r.AddRow("degrade-to-fallback", "-", d(int64(rows)), d(c.NetMsgs), d(c.Retries),
		d(c.WaitMs), d(c.Fallbacks), yesNo(parity))

	r.AddNote("parity: chaos rows identical to fault-free, local work identical, and netM = fault-free netM + retries (every failed attempt is on the bill)")
	r.AddNote("degrade-to-fallback runs with eventual delivery off and an outage longer than the retry budget: the fetch-matches primary aborts with a site error and the retained bulk-shipment fallback answers, charged to the same counter (fb=1)")
	return r, nil
}
