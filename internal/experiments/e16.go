package experiments

import (
	"fmt"
	"runtime"
	"time"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// E16DOPs is the degree-of-parallelism sweep E16 measures. The
// filterbench -parallel flag runs just this experiment.
var E16DOPs = []int{1, 2, 4, 8}

// parallelCatalog builds the scan- and join-heavy workload: two wide-ish
// base tables big enough that per-morsel and per-partition work dominates
// goroutine coordination.
func parallelCatalog() *catalog.Catalog {
	cat := catalog.New()
	mk := func(name string, rows, keyRange, seed int) {
		t := storage.NewTable(name, schema.New(
			schema.Column{Table: name, Name: "k", Type: value.KindInt},
			schema.Column{Table: name, Name: "v", Type: value.KindInt},
		))
		for i := 0; i < rows; i++ {
			t.MustInsert(
				value.NewInt(int64((i*seed+i/7)%keyRange)),
				value.NewInt(int64(i%1000)),
			)
		}
		cat.AddTable(t)
	}
	mk("Big", 60000, 20000, 13)
	mk("Probe", 45000, 20000, 29)
	return cat
}

// bestOf returns the minimum wall-clock of n runs of f, in seconds, along
// with the last run's returned counter and row count. Minimum-of-n is the
// standard way to strip scheduler noise from a cold-ish measurement.
func bestOf(n int, f func() (int, cost.Counter, error)) (float64, int, cost.Counter, error) {
	best := time.Duration(1<<62 - 1)
	var rows int
	var c cost.Counter
	for i := 0; i < n; i++ {
		start := time.Now()
		r, cc, err := f()
		if err != nil {
			return 0, 0, cost.Counter{}, err
		}
		if el := time.Since(start); el < best {
			best = el
		}
		rows, c = r, cc
	}
	return best.Seconds(), rows, c, nil
}

// E16ParallelExecution measures intra-query parallelism: each workload
// runs at every degree of parallelism in E16DOPs under both executor
// engines (row-at-a-time and batch), and the report shows wall-clock,
// speedup over the DOP-1 row engine, and the measured cost counter
// total — which must be bit-identical across every DOP × engine cell,
// because workers charge exactly the serial per-row and per-page units,
// exchange coordination is cost-free by convention (DESIGN.md §9), and
// the batch engine amortizes charges without changing them (§11).
func E16ParallelExecution() (*Report, error) {
	model := cost.DefaultModel()
	cat := parallelCatalog()

	scanHeavy := func() *query.Block {
		return &query.Block{
			Rels: []query.RelRef{{Name: "Big"}},
			Preds: []expr.Expr{
				expr.NewCmp(expr.LT, expr.NewCol(1, "Big.v"), expr.Int(450)),
			},
		}
	}
	joinHeavy := func() *query.Block {
		return &query.Block{
			Rels: []query.RelRef{{Name: "Big"}, {Name: "Probe"}},
			Preds: []expr.Expr{
				expr.Eq(expr.NewCol(0, "Big.k"), expr.NewCol(2, "Probe.k")),
			},
		}
	}

	r := &Report{
		ID:    "E16",
		Title: "Intra-query parallelism: wall-clock vs cost parity across DOP and engine",
		Header: []string{"workload", "engine", "dop", "wall ms", "speedup",
			"meas total", "rows", "parity"},
	}

	type execWorkload struct {
		name     string
		block    func() *query.Block
		disabled []string
	}
	// merge/nlj/indexnl are disabled on the join workload so the plan is
	// guaranteed to route through the partitioned parallel hash join.
	workloads := []execWorkload{
		{"scan-heavy", scanHeavy, nil},
		{"join-heavy", joinHeavy, []string{"merge", "nlj", "indexnl"}},
	}
	engines := []struct {
		name  string
		batch int
	}{{"row", 1}, {"batch", exec.DefaultBatchSize}}
	for _, w := range workloads {
		var baseWall float64
		var baseCost cost.Counter
		var baseRows int
		for _, eng := range engines {
			for _, dop := range E16DOPs {
				o := optimizer(cat, model, nil, w.disabled...)
				o.DegreeOfParallelism = dop
				o.BatchSize = eng.batch
				p, err := o.OptimizeBlock(w.block())
				if err != nil {
					return nil, fmt.Errorf("E16 %s %s dop=%d: %w", w.name, eng.name, dop, err)
				}
				wall, rows, c, err := bestOf(3, func() (int, cost.Counter, error) {
					ctx := exec.NewContext()
					ctx.BatchSize = eng.batch
					n, err := exec.Count(ctx, p.Make())
					return n, *ctx.Counter, err
				})
				if err != nil {
					return nil, fmt.Errorf("E16 %s %s dop=%d: %w", w.name, eng.name, dop, err)
				}
				parity := true
				if eng.name == "row" && dop == 1 {
					baseWall, baseCost, baseRows = wall, c, rows
				} else {
					parity = c == baseCost && rows == baseRows
					if !parity {
						return nil, fmt.Errorf("E16 %s %s dop=%d: cost/row parity broken: %s / %d rows vs serial %s / %d",
							w.name, eng.name, dop, c.String(), rows, baseCost.String(), baseRows)
					}
				}
				r.AddRow(w.name, eng.name, d(int64(dop)), f2(wall*1000), f2(baseWall/wall),
					f1(model.Total(c)), d(int64(rows)), yesNo(parity))
			}
		}
	}

	// Coster-heavy: optimization time of the Fig 1 query with the Filter
	// Join registered and a cold coster cache — dominated by the restricted
	// -view sampling that runs concurrently when DOP > 1. Parity here is the
	// plan's estimated total: sampling on forked optimizers must land on
	// the identical coster and therefore the identical plan cost.
	fig1, err := datagen.Fig1Catalog(datagen.DefaultFig1())
	if err != nil {
		return nil, err
	}
	var baseWall, baseEst float64
	for _, dop := range E16DOPs {
		var est float64
		wall, _, _, err := bestOf(3, func() (int, cost.Counter, error) {
			o := optimizer(fig1, model, core.NewMethod(core.Options{}))
			o.DegreeOfParallelism = dop
			p, err := o.OptimizeBlock(datagen.Fig1Query())
			if err != nil {
				return 0, cost.Counter{}, err
			}
			est = p.Total(model)
			return 0, cost.Counter{}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("E16 coster-heavy dop=%d: %w", dop, err)
		}
		parity := true
		if dop == 1 {
			baseWall, baseEst = wall, est
		} else {
			parity = est == baseEst
			if !parity {
				return nil, fmt.Errorf("E16 coster-heavy dop=%d: plan estimate %.3f differs from serial %.3f",
					dop, est, baseEst)
			}
		}
		r.AddRow("coster-heavy", "-", d(int64(dop)), f2(wall*1000), f2(baseWall/wall),
			f1(est), "-", yesNo(parity))
	}

	r.AddNote("measured on GOMAXPROCS=%d / %d CPU(s); speedup is wall-clock vs the DOP-1 row engine, best of 3 — parallel speedup needs free cores to materialize, batch-engine speedup does not, and cost parity holds on any machine", runtime.GOMAXPROCS(0), runtime.NumCPU())
	r.AddNote("'meas total' is the model total of the executed cost counter; identical across DOP and engine because workers charge the serial units, partition/merge coordination is free by convention, and batch charging amortizes the identical per-row units (DESIGN.md §11)")
	return r, nil
}
