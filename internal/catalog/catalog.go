// Package catalog names and describes relations. Its central abstraction
// is the paper's *virtual relation*: anything that can appear in a FROM
// list but is not a locally stored base table — a view (table
// expression), a remote relation homed at another site, or a relation
// produced by a user-defined function. The optimizer treats all of them
// uniformly as Filter Join candidates.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Kind classifies a catalog entry.
type Kind uint8

// The relation kinds.
const (
	KindBase   Kind = iota // locally stored table
	KindView               // defined by a query block
	KindRemote             // stored table homed at a remote site
	KindFunc               // produced by a user-defined function
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindView:
		return "view"
	case KindRemote:
		return "remote"
	case KindFunc:
		return "func"
	default:
		return "?"
	}
}

// FuncBody is the implementation of a user-defined relation: invoked with
// one binding of the argument columns, it returns the matching rows
// (complete rows of the relation's schema, argument columns included).
type FuncBody func(args value.Row) ([]value.Row, error)

// Entry describes one named relation.
type Entry struct {
	Name string
	Kind Kind

	// Base and Remote relations.
	Table *storage.Table
	Site  int // 0 = local; >0 identifies the remote site (Remote only)

	// View relations.
	ViewDef *query.Block

	// Func relations.
	Fn        FuncBody
	FnSchema  *schema.Schema // full output schema, argument columns included
	ArgCols   []int          // schema positions that are input arguments
	FnStats   *stats.RelStats
	FnPerCall float64 // average rows returned per invocation (estimate)

	// mu guards the lazily computed caches below. Entries are shared
	// between an optimizer and its forks (Catalog.Clone copies the map,
	// not the entries), so concurrent parametric costing may race to fill
	// them; both computations are deterministic, so first-write-wins.
	mu         sync.Mutex
	tableStats *stats.RelStats
	viewSchema *schema.Schema

	// fb accumulates runtime cardinality feedback for stored relations
	// (DESIGN.md §15); fbStats caches the feedback-corrected statistics
	// per feedback version. Both are derived state: InvalidateStats
	// resets them alongside the collected statistics.
	fb        *stats.Feedback
	fbStats   *stats.RelStats
	fbVersion uint64
}

// Virtual reports whether the relation is a paper-sense virtual relation.
func (e *Entry) Virtual() bool { return e.Kind != KindBase }

// Schema returns the relation's schema.
func (e *Entry) Schema(c *Catalog) (*schema.Schema, error) {
	switch e.Kind {
	case KindBase, KindRemote:
		return e.Table.Schema(), nil
	case KindView:
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.viewSchema == nil {
			s, err := e.ViewDef.OutputSchema(c, e.Name)
			if err != nil {
				return nil, err
			}
			e.viewSchema = s
		}
		return e.viewSchema, nil
	case KindFunc:
		return e.FnSchema, nil
	}
	return nil, fmt.Errorf("catalog: unknown kind for %q", e.Name)
}

// Stats returns collected statistics for stored (base/remote) relations,
// collecting them lazily. Views and functions have no stored stats here;
// the optimizer derives them (views) or uses FnStats (functions).
func (e *Entry) Stats() *stats.RelStats {
	switch e.Kind {
	case KindBase, KindRemote:
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.tableStats == nil {
			e.tableStats = stats.Collect(e.Table)
		}
		// Runtime feedback corrects the collected statistics copy-on-write:
		// the collected base (whose histograms RelStats.Clone shares by
		// pointer) is never touched, and the corrected version is cached
		// until the next observation.
		if e.fb != nil && !e.fb.Empty() {
			if v := e.fb.Version(); e.fbStats == nil || e.fbVersion != v {
				e.fbStats = e.fb.Apply(e.tableStats)
				e.fbVersion = v
			}
			return e.fbStats
		}
		return e.tableStats
	case KindFunc:
		return e.FnStats
	case KindView:
		return nil // view stats are derived by the optimizer, never stored
	}
	return nil
}

// InvalidateStats drops cached statistics (after bulk loads), including
// accumulated runtime feedback: observations made against the old data
// must not correct statistics collected from the new data.
func (e *Entry) InvalidateStats() {
	e.mu.Lock()
	e.tableStats = nil
	e.fbStats = nil
	if e.fb != nil {
		e.fb.Reset()
	}
	e.mu.Unlock()
}

// Feedback returns the relation's runtime-feedback store, creating it on
// first use. Entries are shared between an optimizer and its forks, so
// the store — like the stats caches — is per-relation, not per-catalog.
func (e *Entry) Feedback() *stats.Feedback {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fb == nil {
		e.fb = stats.NewFeedback()
	}
	return e.fb
}

// ObserveFeedback folds one measured selectivity into the relation's
// feedback store and reports whether the store changed. A true return
// means statistics-derived artifacts (cached plans, memoized view
// leaves) are stale: the engine calling this under its write lock owes
// an epoch bump before releasing it (enforced by optlint's lockepoch).
func (e *Entry) ObserveFeedback(o stats.PredObservation) bool {
	return e.Feedback().Observe(o)
}

// Catalog is a name → relation map.
type Catalog struct {
	entries map[string]*Entry
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{entries: map[string]*Entry{}}
}

// AddTable registers a local base table.
func (c *Catalog) AddTable(t *storage.Table) *Entry {
	e := &Entry{Name: t.Name(), Kind: KindBase, Table: t}
	c.entries[t.Name()] = e
	return e
}

// AddRemoteTable registers a table homed at the given site (>0).
func (c *Catalog) AddRemoteTable(t *storage.Table, site int) *Entry {
	e := &Entry{Name: t.Name(), Kind: KindRemote, Table: t, Site: site}
	c.entries[t.Name()] = e
	return e
}

// AddView registers a view defined by a query block.
func (c *Catalog) AddView(name string, def *query.Block) *Entry {
	e := &Entry{Name: name, Kind: KindView, ViewDef: def}
	c.entries[name] = e
	return e
}

// AddRemoteView registers a view whose body executes at a remote site:
// the virtual-relation case the paper highlights for heterogeneous
// databases. Site must be > 0.
func (c *Catalog) AddRemoteView(name string, def *query.Block, site int) *Entry {
	e := &Entry{Name: name, Kind: KindView, ViewDef: def, Site: site}
	c.entries[name] = e
	return e
}

// AddFunc registers a user-defined relation. argCols are the schema
// positions that act as input arguments; stats describe the relation's
// assumed value distribution for costing; perCall is the average number
// of rows one invocation returns.
func (c *Catalog) AddFunc(name string, sch *schema.Schema, argCols []int, fn FuncBody, st *stats.RelStats, perCall float64) *Entry {
	e := &Entry{
		Name:      name,
		Kind:      KindFunc,
		Fn:        fn,
		FnSchema:  sch,
		ArgCols:   append([]int(nil), argCols...),
		FnStats:   st,
		FnPerCall: perCall,
	}
	c.entries[name] = e
	return e
}

// Get looks a relation up by name.
func (c *Catalog) Get(name string) (*Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return e, nil
}

// Has reports whether name is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.entries[name]
	return ok
}

// Drop removes a relation.
func (c *Catalog) Drop(name string) { delete(c.entries, name) }

// Clone returns a catalog with its own name map over the same entries.
// Registrations and drops on the clone are invisible to the original, so
// a forked optimizer can stage transient relations (the parametric
// coster's filter tables) without mutating the shared catalog. The
// entries themselves are shared; their lazy caches are mutex-guarded.
func (c *Catalog) Clone() *Catalog {
	cp := &Catalog{entries: make(map[string]*Entry, len(c.entries))}
	for n, e := range c.entries {
		cp.entries[n] = e
	}
	return cp
}

// Names lists registered relation names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RelationSchema implements query.SchemaResolver.
func (c *Catalog) RelationSchema(name string) (*schema.Schema, error) {
	e, err := c.Get(name)
	if err != nil {
		return nil, err
	}
	return e.Schema(c)
}
