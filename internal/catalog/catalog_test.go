package catalog

import (
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func empTable() *storage.Table {
	s := schema.New(
		schema.Column{Table: "Emp", Name: "did", Type: value.KindInt},
		schema.Column{Table: "Emp", Name: "sal", Type: value.KindFloat},
	)
	t := storage.NewTable("Emp", s)
	for i := 0; i < 10; i++ {
		t.MustInsert(value.NewInt(int64(i%3)), value.NewFloat(float64(100*i)))
	}
	return t
}

func TestAddAndGetTable(t *testing.T) {
	c := New()
	e := c.AddTable(empTable())
	if e.Kind != KindBase || e.Virtual() {
		t.Error("base tables are not virtual")
	}
	got, err := c.Get("Emp")
	if err != nil || got != e {
		t.Errorf("Get: %v", err)
	}
	if !c.Has("Emp") || c.Has("Nope") {
		t.Error("Has")
	}
	if _, err := c.Get("Nope"); err == nil {
		t.Error("unknown relation must error")
	}
}

func TestRemoteTableIsVirtual(t *testing.T) {
	c := New()
	e := c.AddRemoteTable(empTable(), 2)
	if e.Kind != KindRemote || !e.Virtual() || e.Site != 2 {
		t.Errorf("remote entry = %+v", e)
	}
	s, err := e.Schema(c)
	if err != nil || s.Len() != 2 {
		t.Error("remote schema")
	}
}

func TestViewSchemaDerivedAndCached(t *testing.T) {
	c := New()
	c.AddTable(empTable())
	v := c.AddView("V", &query.Block{
		Rels:    []query.RelRef{{Name: "Emp"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggAvg, Arg: expr.NewCol(1, "Emp.sal"), Name: "avgsal"}},
	})
	if !v.Virtual() || v.Kind != KindView {
		t.Error("views are virtual")
	}
	s1, err := v.Schema(c)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 2 || s1.Col(0).Table != "V" || s1.Col(1).Name != "avgsal" {
		t.Errorf("view schema = %s", s1)
	}
	s2, _ := v.Schema(c)
	if s1 != s2 {
		t.Error("view schema should be cached")
	}
	// The catalog implements query.SchemaResolver.
	var _ query.SchemaResolver = c
	rs, err := c.RelationSchema("V")
	if err != nil || rs.Len() != 2 {
		t.Error("RelationSchema")
	}
}

func TestRemoteView(t *testing.T) {
	c := New()
	c.AddTable(empTable())
	v := c.AddRemoteView("RV", &query.Block{
		Rels: []query.RelRef{{Name: "Emp"}},
	}, 3)
	if v.Kind != KindView || v.Site != 3 {
		t.Errorf("remote view entry = %+v", v)
	}
}

func TestStatsLazyAndInvalidate(t *testing.T) {
	c := New()
	tb := empTable()
	e := c.AddTable(tb)
	s1 := e.Stats()
	if s1 == nil || s1.Rows != 10 {
		t.Fatalf("stats = %+v", s1)
	}
	if e.Stats() != s1 {
		t.Error("stats should be cached")
	}
	tb.MustInsert(value.NewInt(9), value.NewFloat(1))
	e.InvalidateStats()
	if e.Stats().Rows != 11 {
		t.Error("invalidation must refresh stats")
	}
}

func TestFuncEntry(t *testing.T) {
	c := New()
	s := schema.New(
		schema.Column{Table: "F", Name: "k", Type: value.KindInt},
		schema.Column{Table: "F", Name: "v", Type: value.KindInt},
	)
	st := &stats.RelStats{Rows: 100, Cols: []stats.ColStats{{Distinct: 10}, {Distinct: 100}}}
	fn := func(args value.Row) ([]value.Row, error) {
		return []value.Row{{args[0], value.NewInt(1)}}, nil
	}
	e := c.AddFunc("F", s, []int{0}, fn, st, 10)
	if !e.Virtual() || e.Kind != KindFunc {
		t.Error("funcs are virtual")
	}
	if e.Stats() != st {
		t.Error("func stats passthrough")
	}
	es, err := e.Schema(c)
	if err != nil || es != s {
		t.Error("func schema passthrough")
	}
	rows, err := e.Fn(value.Row{value.NewInt(7)})
	if err != nil || len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Error("func invocation")
	}
}

func TestDropAndNames(t *testing.T) {
	c := New()
	c.AddTable(empTable())
	c.AddView("B", &query.Block{Rels: []query.RelRef{{Name: "Emp"}}})
	names := c.Names()
	if len(names) != 2 || names[0] != "B" || names[1] != "Emp" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("B")
	if c.Has("B") {
		t.Error("Drop failed")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBase: "base", KindView: "view", KindRemote: "remote", KindFunc: "func",
	} {
		if k.String() != want {
			t.Errorf("%v renders %q", k, k.String())
		}
	}
}
