package value

// RowArena carves output rows out of chunked Value slabs so operators
// that materialize rows per batch (Project outputs, join concatenations)
// pay one slab allocation per few thousand values instead of one
// allocation per row. Rows handed out are full-capacity-sliced, so a
// consumer appending to one cannot tromp on its neighbors.
//
// The arena never reuses a slab: rows flow downstream and may be
// retained (Drain keeps row headers past Reset), so slabs stay reachable
// exactly as long as some emitted row references them.
type RowArena struct {
	chunk []Value
}

const arenaChunkValues = 4096

// Make returns a zeroed row of n values carved from the current slab.
func (a *RowArena) Make(n int) Row {
	if n == 0 {
		return Row{}
	}
	if cap(a.chunk)-len(a.chunk) < n {
		c := arenaChunkValues
		if n > c {
			c = n
		}
		a.chunk = make([]Value, 0, c)
	}
	s := len(a.chunk)
	a.chunk = a.chunk[:s+n]
	return Row(a.chunk[s : s+n : s+n])
}

// Concat returns l followed by r as an arena-backed row, the arena form
// of Row.Concat.
func (a *RowArena) Concat(l, r Row) Row {
	out := a.Make(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

// Project returns r's values at idx as an arena-backed row, the arena
// form of Row.Project.
func (a *RowArena) Project(r Row, idx []int) Row {
	out := a.Make(len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}
