package value

import (
	"strconv"
	"strings"
)

// Row is a flat tuple of values.
type Row []Value

// Clone returns a copy of r that shares no storage with it.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns a new row containing r's values at the given indexes.
func (r Row) Project(idx []int) Row {
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// Concat returns the concatenation of r followed by s as a new row.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	return append(out, s...)
}

// Key returns a canonical string key for the projection of r onto idx,
// suitable for use as a map key in hash joins and distinct projection.
// Numerically equal ints and floats map to the same key.
func (r Row) Key(idx []int) string {
	return string(r.AppendKey(nil, idx))
}

// FullKey returns a canonical string key over all of r's values.
func (r Row) FullKey() string {
	return string(r.AppendFullKey(nil))
}

// AppendKey appends the canonical key encoding of r's values at idx to
// dst and returns the extended slice. The bytes are identical to Key —
// string(r.AppendKey(nil, idx)) == r.Key(idx) — but callers can reuse
// one scratch buffer per operator, so the hot hash paths never allocate.
func (r Row) AppendKey(dst []byte, idx []int) []byte {
	for _, j := range idx {
		dst = appendKeyValue(dst, r[j])
	}
	return dst
}

// AppendFullKey appends the canonical key encoding over all of r's
// values, the byte-slice form of FullKey.
func (r Row) AppendFullKey(dst []byte) []byte {
	for _, v := range r {
		dst = appendKeyValue(dst, v)
	}
	return dst
}

func appendKeyValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		dst = append(dst, 'n')
	case KindInt:
		dst = append(dst, 'i')
		dst = strconv.AppendInt(dst, v.i, 10)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			dst = append(dst, 'i')
			dst = strconv.AppendInt(dst, int64(v.f), 10)
		} else {
			dst = append(dst, 'f')
			dst = strconv.AppendFloat(dst, v.f, 'g', -1, 64)
		}
	case KindString:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(v.s)), 10)
		dst = append(dst, ':')
		dst = append(dst, v.s...)
	case KindBool:
		if v.b {
			dst = append(dst, 'b', 't')
		} else {
			dst = append(dst, 'b', 'f')
		}
	}
	return append(dst, '|')
}

// HashKey hashes the projection of r onto idx.
func (r Row) HashKey(idx []int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, j := range idx {
		h ^= r[j].Hash()
		h *= 1099511628211
	}
	return h
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CompareRows orders two rows lexicographically over the given indexes.
// Index j in keyIdx refers into both rows; descending[i], when provided,
// flips the order of the i-th key.
func CompareRows(a, b Row, keyIdx []int, descending []bool) int {
	for i, j := range keyIdx {
		c := Compare(a[j], b[j])
		if len(descending) > i && descending[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}
