package value

import "strings"

// Row is a flat tuple of values.
type Row []Value

// Clone returns a copy of r that shares no storage with it.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns a new row containing r's values at the given indexes.
func (r Row) Project(idx []int) Row {
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// Concat returns the concatenation of r followed by s as a new row.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	return append(out, s...)
}

// Key returns a canonical string key for the projection of r onto idx,
// suitable for use as a map key in hash joins and distinct projection.
// Numerically equal ints and floats map to the same key.
func (r Row) Key(idx []int) string {
	var b strings.Builder
	for _, j := range idx {
		writeKey(&b, r[j])
	}
	return b.String()
}

// FullKey returns a canonical string key over all of r's values.
func (r Row) FullKey() string {
	var b strings.Builder
	for _, v := range r {
		writeKey(&b, v)
	}
	return b.String()
}

func writeKey(b *strings.Builder, v Value) {
	switch v.kind {
	case KindNull:
		b.WriteByte('n')
	case KindInt:
		b.WriteByte('i')
		writeInt(b, v.i)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			b.WriteByte('i')
			writeInt(b, int64(v.f))
		} else {
			b.WriteByte('f')
			b.WriteString(v.String())
		}
	case KindString:
		b.WriteByte('s')
		writeInt(b, int64(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	case KindBool:
		if v.b {
			b.WriteString("bt")
		} else {
			b.WriteString("bf")
		}
	}
	b.WriteByte('|')
}

func writeInt(b *strings.Builder, v int64) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// HashKey hashes the projection of r onto idx.
func (r Row) HashKey(idx []int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, j := range idx {
		h ^= r[j].Hash()
		h *= 1099511628211
	}
	return h
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CompareRows orders two rows lexicographically over the given indexes.
// Index j in keyIdx refers into both rows; descending[i], when provided,
// flips the order of the i-th key.
func CompareRows(a, b Row, keyIdx []int, descending []bool) int {
	for i, j := range keyIdx {
		c := Compare(a[j], b[j])
		if len(descending) > i && descending[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}
