// Package value defines the typed scalar values and rows that flow through
// the filterjoin engine. Values are small immutable variants over int64,
// float64, string, bool and NULL; rows are flat slices of values.
//
// The package also provides total ordering, equality and hashing over
// values, which the execution operators (hash joins, distinct projection,
// sorting) and the statistics layer build on.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Width returns the nominal storage width in bytes of a value of this kind,
// used by the page-accounting storage layer and the cost model. Strings use
// a fixed nominal width; actual string contents do not change page math,
// which keeps cost estimates deterministic.
func (k Kind) Width() int {
	switch k {
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 16
	default:
		return 1
	}
}

// Value is a typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if v is not an int.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if v is not a float.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: Float() on %s", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a bool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: Bool() on %s", v.kind))
	}
	return v.b
}

// AsFloat converts numeric values to float64 for arithmetic and aggregation.
// The second result is false if v is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Numeric reports whether v is an int or a float.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders v for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare totally orders a and b: -1 if a<b, 0 if equal, +1 if a>b.
// NULL sorts before every non-NULL value. Ints and floats compare
// numerically across kinds. Comparing a non-numeric kind against a
// different non-matching kind orders by kind tag, which gives a stable
// (if arbitrary) total order for sorting heterogeneous columns.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.Numeric() && b.Numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether a and b compare equal. NULL is not equal to
// anything, including NULL (SQL semantics); use Compare for sort equality.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a 64-bit hash of v. Numerically equal ints and floats hash
// identically so that cross-kind equi-joins work.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.kind {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt:
		buf[0] = 1
		putUint64(buf[1:], uint64(v.i))
		h.Write(buf[:9])
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			// Hash integral floats as ints for cross-kind equality.
			buf[0] = 1
			putUint64(buf[1:], uint64(int64(v.f)))
			h.Write(buf[:9])
		} else {
			buf[0] = 2
			putUint64(buf[1:], math.Float64bits(v.f))
			h.Write(buf[:9])
		}
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	case KindBool:
		buf[0] = 4
		if v.b {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
