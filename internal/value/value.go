// Package value defines the typed scalar values and rows that flow through
// the filterjoin engine. Values are small immutable variants over int64,
// float64, string, bool and NULL; rows are flat slices of values.
//
// The package also provides total ordering, equality and hashing over
// values, which the execution operators (hash joins, distinct projection,
// sorting) and the statistics layer build on.
package value

import (
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Width returns the nominal storage width in bytes of a value of this kind,
// used by the page-accounting storage layer and the cost model. Strings use
// a fixed nominal width; actual string contents do not change page math,
// which keeps cost estimates deterministic.
func (k Kind) Width() int {
	switch k {
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 16
	default:
		return 1
	}
}

// Value is a typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if v is not an int.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload. It panics if v is not a float.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a bool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.b
}

// AsFloat converts numeric values to float64 for arithmetic and aggregation.
// The second result is false if v is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Numeric reports whether v is an int or a float.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders v for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare totally orders a and b: -1 if a<b, 0 if equal, +1 if a>b.
// NULL sorts before every non-NULL value. Ints and floats compare
// numerically across kinds. Comparing a non-numeric kind against a
// different non-matching kind orders by kind tag, which gives a stable
// (if arbitrary) total order for sorting heterogeneous columns.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.Numeric() && b.Numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether a and b compare equal. NULL is not equal to
// anything, including NULL (SQL semantics); use Compare for sort equality.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// FNV-1a parameters, inlined so hashing never allocates a hash.Hash64.
// The digests are bit-identical to hash/fnv over the same byte stream
// (value_test.go pins this), which keeps bloom-filter hits — and hence
// cost-counter totals — stable across the change.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash returns a 64-bit hash of v. Numerically equal ints and floats hash
// identically so that cross-kind equi-joins work.
func (v Value) Hash() uint64 {
	h := fnvOffset64
	switch v.kind {
	case KindNull:
		h = fnvByte(h, 0)
	case KindInt:
		h = fnvByte(h, 1)
		h = fnvUint64(h, uint64(v.i))
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			// Hash integral floats as ints for cross-kind equality.
			h = fnvByte(h, 1)
			h = fnvUint64(h, uint64(int64(v.f)))
		} else {
			h = fnvByte(h, 2)
			h = fnvUint64(h, math.Float64bits(v.f))
		}
	case KindString:
		h = fnvByte(h, 3)
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
	case KindBool:
		h = fnvByte(h, 4)
		if v.b {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvUint64 mixes v little-endian byte by byte, the same order putUint64
// fed hash/fnv before the hash was inlined.
func fnvUint64(h uint64, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = fnvByte(h, byte(v>>s))
	}
	return h
}

// HashBytes hashes a byte slice with the same FNV-1a stream as Hash. The
// open-addressing hash tables in internal/exec use it over AppendKey
// encodings.
func HashBytes(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h = fnvByte(h, c)
	}
	return h
}
