package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindWidth(t *testing.T) {
	if KindInt.Width() != 8 || KindFloat.Width() != 8 {
		t.Error("numeric widths should be 8")
	}
	if KindBool.Width() != 1 {
		t.Error("bool width should be 1")
	}
	if KindString.Width() != 16 {
		t.Error("string nominal width should be 16")
	}
	if KindNull.Width() < 1 {
		t.Error("null width must be positive")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Error("NewInt round trip failed")
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Error("NewFloat round trip failed")
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Error("NewString round trip failed")
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Error("NewBool round trip failed")
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null should be null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on a string should panic")
		}
	}()
	NewString("x").Int()
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Error("int AsFloat failed")
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Error("float AsFloat failed")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string should not convert")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null should not convert")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("2 should equal 2.0")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if Compare(NewFloat(3.5), NewInt(3)) != 1 {
		t.Error("3.5 > 3")
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if Compare(Null, NewInt(0)) != -1 {
		t.Error("NULL sorts before values")
	}
	if Compare(NewInt(0), Null) != 1 {
		t.Error("values sort after NULL")
	}
	if Compare(Null, Null) != 0 {
		t.Error("NULL compares equal to NULL for sorting")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if Compare(NewString("a"), NewString("b")) != -1 {
		t.Error("string order")
	}
	if Compare(NewString("b"), NewString("b")) != 0 {
		t.Error("string equality")
	}
	if Compare(NewBool(false), NewBool(true)) != -1 {
		t.Error("false < true")
	}
	if Compare(NewBool(true), NewBool(true)) != 0 {
		t.Error("bool equality")
	}
}

func TestCompareMixedKindsStable(t *testing.T) {
	// Non-numeric cross-kind comparisons order by kind tag; whatever the
	// order is, it must be antisymmetric.
	a, b := NewString("x"), NewBool(true)
	if Compare(a, b) != -Compare(b, a) {
		t.Error("cross-kind compare must be antisymmetric")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL must not equal NULL (SQL semantics)")
	}
	if Equal(Null, NewInt(1)) || Equal(NewInt(1), Null) {
		t.Error("NULL must not equal a value")
	}
	if !Equal(NewInt(1), NewFloat(1)) {
		t.Error("1 = 1.0")
	}
}

func TestHashCrossKindEquality(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("numerically equal int and float must hash equal")
	}
	if NewInt(7).Hash() == NewInt(8).Hash() {
		t.Error("distinct ints should hash differently (overwhelmingly)")
	}
}

func TestHashNonIntegralFloat(t *testing.T) {
	a, b := NewFloat(1.5), NewFloat(1.5)
	if a.Hash() != b.Hash() {
		t.Error("equal floats must hash equal")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(100) - 50))
	case 2:
		return NewFloat(math.Round(r.Float64()*100) / 4)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		if Equal(a, b) {
			return a.Hash() == b.Hash()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
