package value

import (
	"hash/fnv"
	"math"
	"testing"
)

// testValues covers every kind plus the encoding edge cases: integral
// floats folding to ints, negative zero, negatives, empty and separator-
// bearing strings.
var testValues = []Value{
	Null,
	NewInt(0), NewInt(1), NewInt(-1), NewInt(42), NewInt(math.MaxInt64), NewInt(math.MinInt64 + 1),
	NewFloat(0), NewFloat(math.Copysign(0, -1)), NewFloat(3), NewFloat(-17), NewFloat(3.25),
	NewFloat(-2.5), NewFloat(1e300), NewFloat(math.SmallestNonzeroFloat64),
	NewString(""), NewString("a"), NewString("i42|"), NewString("s3:abc|"), NewString("héllo"),
	NewBool(true), NewBool(false),
}

// refHash is the pre-inline implementation of Value.Hash, kept verbatim
// (hash/fnv + little-endian payload bytes) so the allocation-free inline
// version is pinned bit-for-bit. Bloom-filter behavior — and hence cost
// counter totals in goldens — depends on these digests not moving.
func refHash(v Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	put := func(b []byte, u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
	}
	switch v.Kind() {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt:
		buf[0] = 1
		put(buf[1:], uint64(v.Int()))
		h.Write(buf[:9])
	case KindFloat:
		f := v.Float()
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			buf[0] = 1
			put(buf[1:], uint64(int64(f)))
			h.Write(buf[:9])
		} else {
			buf[0] = 2
			put(buf[1:], math.Float64bits(f))
			h.Write(buf[:9])
		}
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.Str()))
	case KindBool:
		buf[0] = 4
		if v.Bool() {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

func TestHashMatchesReference(t *testing.T) {
	for _, v := range testValues {
		if got, want := v.Hash(), refHash(v); got != want {
			t.Errorf("Hash(%s %s) = %#x, reference fnv = %#x", v.Kind(), v, got, want)
		}
	}
}

func TestHashBytesMatchesFnv(t *testing.T) {
	for _, s := range []string{"", "a", "i42|s3:abc|", "héllo"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := HashBytes([]byte(s)), h.Sum64(); got != want {
			t.Errorf("HashBytes(%q) = %#x, fnv = %#x", s, got, want)
		}
	}
}

func TestHashAllocFree(t *testing.T) {
	r := Row{NewInt(7), NewString("abc"), NewFloat(2.5)}
	idx := []int{0, 1, 2}
	if n := testing.AllocsPerRun(100, func() { _ = r.HashKey(idx) }); n != 0 {
		t.Errorf("HashKey allocates %.1f/op, want 0", n)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	var buf []byte
	for i, a := range testValues {
		for _, b := range testValues {
			r := Row{a, b, a}
			idx := []int{2, 0, 1}
			buf = r.AppendKey(buf[:0], idx)
			if got, want := string(buf), r.Key(idx); got != want {
				t.Fatalf("AppendKey(%s,%s) = %q, Key = %q", a, b, got, want)
			}
			buf = r.AppendFullKey(buf[:0])
			if got, want := string(buf), r.FullKey(); got != want {
				t.Fatalf("AppendFullKey(%s,%s) = %q, FullKey = %q", a, b, got, want)
			}
		}
		// Distinct values must encode distinctly, except the deliberate
		// int/float fold.
		for j, b := range testValues {
			if i == j {
				continue
			}
			ka, kb := Row{a}.FullKey(), Row{b}.FullKey()
			af, aok := a.AsFloat()
			bf, bok := b.AsFloat()
			if aok && bok && af == bf {
				if ka != kb {
					t.Errorf("numerically equal %s and %s should share a key: %q vs %q", a, b, ka, kb)
				}
				continue
			}
			if ka == kb {
				t.Errorf("distinct values %s (%s) and %s (%s) collide on key %q", a, a.Kind(), b, b.Kind(), ka)
			}
		}
	}
}

func TestAppendKeyAllocFree(t *testing.T) {
	r := Row{NewInt(7), NewString("abc"), NewFloat(2.5), NewBool(true), Null}
	idx := []int{0, 1, 2, 3, 4}
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(100, func() { buf = r.AppendKey(buf[:0], idx) }); n != 0 {
		t.Errorf("AppendKey allocates %.1f/op, want 0", n)
	}
}

func TestRowArena(t *testing.T) {
	var a RowArena
	l := Row{NewInt(1), NewString("x")}
	r := Row{NewFloat(2.5)}
	got := a.Concat(l, r)
	want := l.Concat(r)
	if len(got) != len(want) {
		t.Fatalf("Concat length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if Compare(got[i], want[i]) != 0 {
			t.Fatalf("Concat[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	p := a.Project(got, []int{2, 0})
	if p[0].Float() != 2.5 || p[1].Int() != 1 {
		t.Fatalf("Project = %s", Row(p))
	}
	// Appending to an arena row must not tromp on a later allocation.
	x := a.Make(1)
	_ = append(got, NewInt(99))
	if !x[0].IsNull() {
		t.Fatalf("append to arena row overwrote neighbor: %s", x[0])
	}
	// Large requests beyond the chunk size still work.
	big := a.Make(10000)
	if len(big) != 10000 {
		t.Fatalf("Make(10000) length %d", len(big))
	}
	if n := testing.AllocsPerRun(100, func() {
		var aa RowArena
		for i := 0; i < 100; i++ {
			aa.Concat(l, r)
		}
	}); n > 3 {
		t.Errorf("arena Concat x100 allocates %.1f, want amortized <= 3", n)
	}
}
