package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestRowProject(t *testing.T) {
	r := Row{NewInt(1), NewInt(2), NewInt(3)}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].Int() != 3 || p[1].Int() != 1 {
		t.Errorf("Project = %v", p)
	}
}

func TestRowConcat(t *testing.T) {
	a := Row{NewInt(1)}
	b := Row{NewInt(2), NewInt(3)}
	c := a.Concat(b)
	if len(c) != 3 || c[2].Int() != 3 {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias a's backing array in a harmful way.
	c[0] = NewInt(9)
	if a[0].Int() != 1 {
		t.Error("Concat must copy")
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	a := Row{NewString("ab"), NewString("c")}
	b := Row{NewString("a"), NewString("bc")}
	if a.FullKey() == b.FullKey() {
		t.Error("keys must be unambiguous across string boundaries")
	}
}

func TestRowKeyCrossKindNumeric(t *testing.T) {
	a := Row{NewInt(5)}
	b := Row{NewFloat(5.0)}
	if a.FullKey() != b.FullKey() {
		t.Error("5 and 5.0 must produce the same key (equi-join equality)")
	}
	c := Row{NewFloat(5.5)}
	if a.FullKey() == c.FullKey() {
		t.Error("5 and 5.5 must differ")
	}
}

func TestRowKeyNegativeInts(t *testing.T) {
	a := Row{NewInt(-12)}
	b := Row{NewInt(12)}
	if a.Key([]int{0}) == b.Key([]int{0}) {
		t.Error("sign must be part of the key")
	}
}

func TestRowKeyNullDistinct(t *testing.T) {
	a := Row{Null}
	b := Row{NewInt(0)}
	if a.FullKey() == b.FullKey() {
		t.Error("NULL must not key-collide with 0")
	}
}

func TestHashKeyMatchesKeyEquality(t *testing.T) {
	f := func(x, y int64) bool {
		a, b := Row{NewInt(x)}, Row{NewInt(y)}
		if a.Key([]int{0}) == b.Key([]int{0}) {
			return a.HashKey([]int{0}) == b.HashKey([]int{0})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	if got := r.String(); got != "(1, x)" {
		t.Errorf("String() = %q", got)
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewInt(5)}
	b := Row{NewInt(1), NewInt(7)}
	if CompareRows(a, b, []int{0}, nil) != 0 {
		t.Error("equal on first key")
	}
	if CompareRows(a, b, []int{0, 1}, nil) != -1 {
		t.Error("a < b on second key")
	}
	if CompareRows(a, b, []int{1}, []bool{true}) != 1 {
		t.Error("descending flips the order")
	}
}

func TestKeyUniquenessProperty(t *testing.T) {
	// Rows with different values (under Compare) must have different keys.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Row{randomValue(r), randomValue(r)}
		b := Row{randomValue(r), randomValue(r)}
		same := CompareRows(a, b, []int{0, 1}, nil) == 0
		keysEqual := a.FullKey() == b.FullKey()
		if same != keysEqual {
			// Exception: NULL==NULL for sorting but keys also match; and
			// int/float equality matches keys. So same ⇔ keysEqual holds.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
