package udr

import (
	"fmt"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// newFuncEntry registers a function relation F(k, v) returning perCall
// rows per key and counting invocations.
func newFuncEntry(perCall int) (*catalog.Entry, *int) {
	cat := catalog.New()
	s := schema.New(
		schema.Column{Table: "F", Name: "k", Type: value.KindInt},
		schema.Column{Table: "F", Name: "v", Type: value.KindInt},
	)
	calls := new(int)
	fn := func(args value.Row) ([]value.Row, error) {
		*calls++
		out := make([]value.Row, perCall)
		for i := range out {
			out[i] = value.Row{args[0], value.NewInt(args[0].Int()*100 + int64(i))}
		}
		return out, nil
	}
	return cat.AddFunc("F", s, []int{0}, fn, nil, float64(perCall)), calls
}

func outerTable(t testing.TB, keys []int64) *storage.Table {
	t.Helper()
	s := schema.New(schema.Column{Table: "o", Name: "k", Type: value.KindInt})
	tb := storage.NewTable("o", s)
	for _, k := range keys {
		tb.MustInsert(value.NewInt(k))
	}
	return tb
}

func TestProbeJoinPlain(t *testing.T) {
	e, calls := newFuncEntry(2)
	outer := outerTable(t, []int64{1, 2, 1, 3, 1})
	j := NewProbeJoin(exec.NewTableScan(outer, "o"), e, []int{0}, nil, false, "F")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 outer × 2 per call
		t.Fatalf("rows = %d", len(rows))
	}
	if *calls != 5 {
		t.Errorf("plain probe made %d calls, want 5 (one per outer row)", *calls)
	}
	if ctx.Counter.FnCalls != 5 {
		t.Errorf("FnCalls counter = %d", ctx.Counter.FnCalls)
	}
	if j.Calls() != 5 {
		t.Errorf("Calls() = %d", j.Calls())
	}
}

func TestProbeJoinMemo(t *testing.T) {
	e, calls := newFuncEntry(2)
	outer := outerTable(t, []int64{1, 2, 1, 3, 1, 2})
	j := NewProbeJoin(exec.NewTableScan(outer, "o"), e, []int{0}, nil, true, "F")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	if *calls != 3 {
		t.Errorf("memo probe made %d calls, want 3 distinct", *calls)
	}
	// Re-open resets the cache (fresh execution).
	if _, err := exec.Drain(ctx, j); err != nil {
		t.Fatal(err)
	}
	if *calls != 6 {
		t.Errorf("re-execution should re-invoke: %d", *calls)
	}
}

func TestProbeJoinResidual(t *testing.T) {
	e, _ := newFuncEntry(3)
	outer := outerTable(t, []int64{1})
	// Keep only v = 101 over layout (o.k F.k F.v).
	res := expr.Eq(expr.NewCol(2, "F.v"), expr.Int(101))
	j := NewProbeJoin(exec.NewTableScan(outer, "o"), e, []int{0}, res, false, "F")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].Int() != 101 {
		t.Errorf("residual filtering wrong: %v", rows)
	}
}

func TestProbeJoinErrorPropagates(t *testing.T) {
	cat := catalog.New()
	s := schema.New(schema.Column{Table: "F", Name: "k", Type: value.KindInt})
	e := cat.AddFunc("F", s, []int{0}, func(value.Row) ([]value.Row, error) {
		return nil, fmt.Errorf("boom")
	}, nil, 1)
	outer := outerTable(t, []int64{1})
	j := NewProbeJoin(exec.NewTableScan(outer, "o"), e, []int{0}, nil, false, "F")
	ctx := exec.NewContext()
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Next(ctx); err == nil {
		t.Error("function errors must propagate")
	}
}

func TestConsecutiveScan(t *testing.T) {
	e, calls := newFuncEntry(2)
	keys := exec.NewKeySet(1)
	keys.Add(value.Row{value.NewInt(5)})
	keys.Add(value.Row{value.NewInt(7)})
	keys.Add(value.Row{value.NewInt(5)}) // duplicate ignored
	s := NewConsecutiveScan(e, keys, "F")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if *calls != 2 {
		t.Errorf("consecutive scan made %d calls, want one per distinct key", *calls)
	}
	if s.Calls() != 2 {
		t.Errorf("Calls() = %d", s.Calls())
	}
	if ctx.Counter.FnCalls != 2 {
		t.Errorf("FnCalls = %d", ctx.Counter.FnCalls)
	}
	// Restartable.
	if _, err := exec.Drain(ctx, s); err != nil {
		t.Fatal(err)
	}
	if *calls != 4 {
		t.Error("re-open re-invokes")
	}
}
