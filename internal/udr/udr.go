// Package udr implements join strategies over user-defined relations:
// relations produced by calling a function with argument bindings (paper
// §5.2). The strategies mirror Fig 6's rows for user-defined relations:
// repeated procedure invocation, invocation with memoization (function
// caching), and — via the Filter Join — consecutive invocation over the
// distinct argument set, which eliminates duplicate calls entirely.
package udr

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// ProbeJoin joins an outer stream with a function-backed relation: for
// every outer row it invokes the function with the outer's binding
// columns as arguments. With Memo set, results are cached per distinct
// argument combination so the function runs once per distinct binding
// (but cache lookups still cost CPU).
type ProbeJoin struct {
	Outer       exec.Operator
	Entry       *catalog.Entry
	OuterArgIdx []int // positions in the outer row supplying the arguments
	Residual    expr.Expr
	Memo        bool
	InnerAlias  string

	innerSch *schema.Schema
	out      *schema.Schema
	cache    map[string][]value.Row
	cur      value.Row
	batch    []value.Row
	pos      int
	done     bool
	calls    int64
}

// NewProbeJoin builds a repeated-probe join against a function relation.
// OuterArgIdx[i] supplies the value of Entry.ArgCols[i].
func NewProbeJoin(outer exec.Operator, e *catalog.Entry, outerArgIdx []int, residual expr.Expr, memo bool, innerAlias string) *ProbeJoin {
	is := e.FnSchema
	if innerAlias != "" {
		is = is.Rename(innerAlias)
	}
	return &ProbeJoin{
		Outer:       outer,
		Entry:       e,
		OuterArgIdx: outerArgIdx,
		Residual:    residual,
		Memo:        memo,
		InnerAlias:  innerAlias,
		innerSch:    is,
		out:         outer.Schema().Concat(is),
	}
}

// Schema implements exec.Operator.
func (j *ProbeJoin) Schema() *schema.Schema { return j.out }

// Open implements exec.Operator.
func (j *ProbeJoin) Open(ctx *exec.Context) error {
	j.Residual = expr.BindParams(j.Residual, ctx.Params)
	j.cache = map[string][]value.Row{}
	j.cur = nil
	j.batch = nil
	j.pos = 0
	j.done = false
	j.calls = 0
	return j.Outer.Open(ctx)
}

// Calls reports how many function invocations the last execution made.
func (j *ProbeJoin) Calls() int64 { return j.calls }

func (j *ProbeJoin) invoke(ctx *exec.Context, args value.Row) ([]value.Row, error) {
	if j.Memo {
		k := args.FullKey()
		if rows, ok := j.cache[k]; ok {
			ctx.Counter.CPUTuples++ // cache hit lookup
			return rows, nil
		}
		rows, err := j.call(ctx, args)
		if err != nil {
			return nil, err
		}
		j.cache[k] = rows
		return rows, nil
	}
	return j.call(ctx, args)
}

func (j *ProbeJoin) call(ctx *exec.Context, args value.Row) ([]value.Row, error) {
	ctx.Counter.FnCalls++
	j.calls++
	rows, err := j.Entry.Fn(args)
	if err != nil {
		return nil, fmt.Errorf("udr: invoking %s: %w", j.Entry.Name, err)
	}
	ctx.Counter.CPUTuples += int64(len(rows))
	return rows, nil
}

// Next implements exec.Operator.
func (j *ProbeJoin) Next(ctx *exec.Context) (value.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if j.cur == nil {
			r, ok, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = r
			args := r.Project(j.OuterArgIdx)
			batch, err := j.invoke(ctx, args)
			if err != nil {
				return nil, false, err
			}
			j.batch = batch
			j.pos = 0
		}
		if j.pos >= len(j.batch) {
			j.cur = nil
			continue
		}
		inner := j.batch[j.pos]
		j.pos++
		ctx.Counter.CPUTuples++
		joined := j.cur.Concat(inner)
		if j.Residual != nil {
			keep, err := expr.EvalBool(j.Residual, joined)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements exec.Operator.
func (j *ProbeJoin) Close(ctx *exec.Context) error {
	j.cache = nil
	return j.Outer.Close(ctx)
}

// ConsecutiveScan is the Filter-Join access path for a function relation:
// given the distinct argument set (the filter set), it invokes the
// function once per distinct binding — consecutively, which is where the
// paper's locality benefit comes from — and streams all resulting rows.
type ConsecutiveScan struct {
	Entry *catalog.Entry
	Keys  *exec.KeySet
	alias *schema.Schema
	ki    int
	batch []value.Row
	pos   int
	calls int64
}

// NewConsecutiveScan builds the consecutive-invocation scan.
func NewConsecutiveScan(e *catalog.Entry, keys *exec.KeySet, innerAlias string) *ConsecutiveScan {
	is := e.FnSchema
	if innerAlias != "" {
		is = is.Rename(innerAlias)
	}
	return &ConsecutiveScan{Entry: e, Keys: keys, alias: is}
}

// Schema implements exec.Operator.
func (s *ConsecutiveScan) Schema() *schema.Schema { return s.alias }

// Open implements exec.Operator.
func (s *ConsecutiveScan) Open(*exec.Context) error {
	s.ki = 0
	s.batch = nil
	s.pos = 0
	s.calls = 0
	return nil
}

// Calls reports how many invocations the last execution made.
func (s *ConsecutiveScan) Calls() int64 { return s.calls }

// Next implements exec.Operator.
func (s *ConsecutiveScan) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		if s.pos < len(s.batch) {
			r := s.batch[s.pos]
			s.pos++
			ctx.Counter.CPUTuples++
			return r, true, nil
		}
		keys := s.Keys.Rows()
		if s.ki >= len(keys) {
			return nil, false, nil
		}
		args := keys[s.ki]
		s.ki++
		ctx.Counter.FnCalls++
		s.calls++
		rows, err := s.Entry.Fn(args)
		if err != nil {
			return nil, false, fmt.Errorf("udr: invoking %s: %w", s.Entry.Name, err)
		}
		s.batch = rows
		s.pos = 0
	}
}

// Close implements exec.Operator.
func (s *ConsecutiveScan) Close(*exec.Context) error { return nil }
