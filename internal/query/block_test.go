package query

import (
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// fixedResolver resolves relation names to canned schemas.
type fixedResolver map[string]*schema.Schema

func (r fixedResolver) RelationSchema(name string) (*schema.Schema, error) {
	if s, ok := r[name]; ok {
		return s, nil
	}
	return nil, errUnknown(name)
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown relation " + string(e) }

func twoRelResolver() fixedResolver {
	return fixedResolver{
		"A": schema.New(
			schema.Column{Table: "A", Name: "x", Type: value.KindInt},
			schema.Column{Table: "A", Name: "y", Type: value.KindFloat},
		),
		"B": schema.New(
			schema.Column{Table: "B", Name: "x", Type: value.KindInt},
		),
	}
}

func TestRelSetOps(t *testing.T) {
	s := NewRelSet(0, 2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Error("membership wrong")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	if got := s.With(1).Count(); got != 3 {
		t.Errorf("With = %d members", got)
	}
	if !NewRelSet(0).SubsetOf(s) {
		t.Error("subset check")
	}
	if s.SubsetOf(NewRelSet(0)) {
		t.Error("superset is not a subset")
	}
	if got := s.Union(NewRelSet(1)).Members(); len(got) != 3 {
		t.Errorf("Members = %v", got)
	}
}

func TestLayout(t *testing.T) {
	b := &Block{Rels: []RelRef{{Name: "A", Alias: "a1"}, {Name: "B"}}}
	l, err := b.Layout(twoRelResolver())
	if err != nil {
		t.Fatal(err)
	}
	if l.Schema.Len() != 3 {
		t.Fatalf("layout width = %d", l.Schema.Len())
	}
	if l.Offsets[1] != 2 || l.Widths[0] != 2 {
		t.Errorf("offsets %v widths %v", l.Offsets, l.Widths)
	}
	if l.Schema.Col(0).Table != "a1" {
		t.Error("alias must requalify columns")
	}
	if l.RelOfCol(0) != 0 || l.RelOfCol(2) != 1 || l.RelOfCol(5) != -1 {
		t.Error("RelOfCol wrong")
	}
}

func TestLayoutUnknownRelation(t *testing.T) {
	b := &Block{Rels: []RelRef{{Name: "Z"}}}
	if _, err := b.Layout(twoRelResolver()); err == nil {
		t.Error("unknown relation must error")
	}
}

func TestPredRels(t *testing.T) {
	b := &Block{Rels: []RelRef{{Name: "A"}, {Name: "B"}}}
	l, _ := b.Layout(twoRelResolver())
	p := expr.Eq(expr.NewCol(0, "A.x"), expr.NewCol(2, "B.x"))
	if got := PredRels(p, l); got != NewRelSet(0, 1) {
		t.Errorf("PredRels = %v", got.Members())
	}
	local := expr.NewCmp(expr.GT, expr.NewCol(1, "A.y"), expr.Float(1))
	if got := PredRels(local, l); got != NewRelSet(0) {
		t.Errorf("local PredRels = %v", got.Members())
	}
}

func TestOutputProvenance(t *testing.T) {
	// Aggregation block: outputs are group cols then aggs.
	b := &Block{
		Rels:    []RelRef{{Name: "A"}},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}},
	}
	prov := b.OutputProvenance(2)
	if len(prov) != 2 || prov[0] != 1 || prov[1] != -1 {
		t.Errorf("agg provenance = %v", prov)
	}
	// Projection block.
	b2 := &Block{
		Rels: []RelRef{{Name: "A"}},
		Proj: []Output{
			{Expr: expr.NewCol(1, "y")},
			{Expr: expr.Arith{Op: expr.Add, L: expr.NewCol(0, ""), R: expr.Int(1)}},
		},
	}
	prov = b2.OutputProvenance(2)
	if prov[0] != 1 || prov[1] != -1 {
		t.Errorf("proj provenance = %v", prov)
	}
	// Identity block.
	b3 := &Block{Rels: []RelRef{{Name: "A"}}}
	prov = b3.OutputProvenance(2)
	if prov[0] != 0 || prov[1] != 1 {
		t.Errorf("identity provenance = %v", prov)
	}
}

func TestOutputSchema(t *testing.T) {
	b := &Block{
		Rels:    []RelRef{{Name: "A"}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.AggAvg, Arg: expr.NewCol(1, "A.y"), Name: "avgy"}},
	}
	s, err := b.OutputSchema(twoRelResolver(), "V")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Col(0).Table != "V" || s.Col(1).Name != "avgy" {
		t.Errorf("output schema = %s", s)
	}
	if s.Col(1).Type != value.KindFloat {
		t.Error("AVG output is float")
	}
	// Projection schema keeps expression types.
	b2 := &Block{
		Rels: []RelRef{{Name: "A"}},
		Proj: []Output{{Expr: expr.NewCol(1, "A.y"), Name: "y2"}},
	}
	s2, err := b2.OutputSchema(twoRelResolver(), "W")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Col(0).Type != value.KindFloat || s2.Col(0).Name != "y2" {
		t.Errorf("proj schema = %s", s2)
	}
}

func TestOutputWidth(t *testing.T) {
	b := &Block{Rels: []RelRef{{Name: "A"}}}
	if b.OutputWidth(2) != 2 {
		t.Error("identity width")
	}
	b.Proj = []Output{{Expr: expr.Int(1)}}
	if b.OutputWidth(2) != 1 {
		t.Error("projection width")
	}
	b.Proj = nil
	b.GroupBy = []int{0}
	b.Aggs = []expr.AggSpec{{Kind: expr.AggCount}}
	if b.OutputWidth(2) != 2 {
		t.Error("aggregation width")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := &Block{
		Rels:  []RelRef{{Name: "A"}},
		Preds: []expr.Expr{expr.Int(1)},
	}
	c := b.Clone()
	c.Rels = append(c.Rels, RelRef{Name: "B"})
	c.Preds = append(c.Preds, expr.Int(2))
	if len(b.Rels) != 1 || len(b.Preds) != 1 {
		t.Error("Clone must not share slice storage")
	}
}

func TestBinding(t *testing.T) {
	if (RelRef{Name: "A"}).Binding() != "A" {
		t.Error("default binding is the name")
	}
	if (RelRef{Name: "A", Alias: "x"}).Binding() != "x" {
		t.Error("alias wins")
	}
}

func TestBlockString(t *testing.T) {
	b := &Block{
		Rels:  []RelRef{{Name: "A", Alias: "a"}, {Name: "B"}},
		Preds: []expr.Expr{expr.Eq(expr.NewCol(0, "a.x"), expr.NewCol(2, "B.x"))},
	}
	s := b.String()
	if s == "" || !contains(s, "FROM A a, B") || !contains(s, "WHERE") {
		t.Errorf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
