// Package query defines the logical query block the optimizer works on:
// a set of relation references (FROM), conjunctive predicates (WHERE)
// expressed over the block's global column layout, and an output shape
// (projection, or grouping plus aggregates, optionally DISTINCT).
//
// A view definition is itself a Block; nesting views inside blocks is how
// the paper's "virtual relations" arise for table expressions.
package query

import (
	"fmt"
	"strings"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// RelRef names one relation in a block's FROM list.
type RelRef struct {
	Name  string // catalog name
	Alias string // binding alias within the block; defaults to Name
}

// Binding returns the alias if set, else the name.
func (r RelRef) Binding() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Name
}

// Output is one projected output column.
type Output struct {
	Expr expr.Expr // over the block layout
	Name string
}

// Block is a single select-project-join-aggregate query block.
//
// Column references inside Preds, Proj and Aggs are positions in the
// block layout: the concatenation of the relations' schemas in Rels
// order. When aggregation is present (len(GroupBy)+len(Aggs) > 0), the
// block's output is the GroupBy columns in order followed by the
// aggregate results, and Proj must be nil.
type Block struct {
	Rels     []RelRef
	Preds    []expr.Expr
	Proj     []Output
	GroupBy  []int
	Aggs     []expr.AggSpec
	Distinct bool

	// Having filters aggregation results; it is bound against the
	// block's OUTPUT layout (group columns followed by aggregates), not
	// the relation layout. Only valid when HasAggregation().
	Having expr.Expr
	// OrderBy sorts the final output; positions index the output layout.
	OrderBy []OrderItem
	// Limit truncates the output when > 0.
	Limit int
}

// OrderItem is one ORDER BY key over the block's output columns.
type OrderItem struct {
	Col  int // output position
	Desc bool
}

// Clone deep-copies the block's slices (expressions are immutable and
// shared).
func (b *Block) Clone() *Block {
	out := &Block{Distinct: b.Distinct, Having: b.Having, Limit: b.Limit}
	out.Rels = append([]RelRef(nil), b.Rels...)
	out.Preds = append([]expr.Expr(nil), b.Preds...)
	out.Proj = append([]Output(nil), b.Proj...)
	out.GroupBy = append([]int(nil), b.GroupBy...)
	out.Aggs = append([]expr.AggSpec(nil), b.Aggs...)
	out.OrderBy = append([]OrderItem(nil), b.OrderBy...)
	return out
}

// HasAggregation reports whether the block groups/aggregates.
func (b *Block) HasAggregation() bool {
	return len(b.GroupBy) > 0 || len(b.Aggs) > 0
}

// SchemaResolver resolves a relation name to its schema; the catalog
// implements it.
type SchemaResolver interface {
	RelationSchema(name string) (*schema.Schema, error)
}

// Layout is the resolved global column layout of a block.
type Layout struct {
	Schema  *schema.Schema // concatenated, alias-qualified
	Offsets []int          // start offset of relation i's columns
	Widths  []int          // column count of relation i
}

// Layout resolves the block's relations and computes the global layout.
func (b *Block) Layout(r SchemaResolver) (*Layout, error) {
	l := &Layout{Schema: schema.New()}
	for _, ref := range b.Rels {
		s, err := r.RelationSchema(ref.Name)
		if err != nil {
			return nil, fmt.Errorf("query: resolving %q: %w", ref.Name, err)
		}
		s = s.Rename(ref.Binding())
		l.Offsets = append(l.Offsets, l.Schema.Len())
		l.Widths = append(l.Widths, s.Len())
		l.Schema = l.Schema.Concat(s)
	}
	return l, nil
}

// RelOfCol returns the index of the relation owning global column c, or
// -1 when out of range.
func (l *Layout) RelOfCol(c int) int {
	for i := range l.Offsets {
		if c >= l.Offsets[i] && c < l.Offsets[i]+l.Widths[i] {
			return i
		}
	}
	return -1
}

// RelSet is a bitset of relation ordinals within one block.
type RelSet uint64

// NewRelSet builds a set from ordinals.
func NewRelSet(rels ...int) RelSet {
	var s RelSet
	for _, r := range rels {
		s |= 1 << uint(r)
	}
	return s
}

// Has reports membership.
func (s RelSet) Has(r int) bool { return s&(1<<uint(r)) != 0 }

// With returns s ∪ {r}.
func (s RelSet) With(r int) RelSet { return s | 1<<uint(r) }

// Union returns s ∪ t.
func (s RelSet) Union(t RelSet) RelSet { return s | t }

// SubsetOf reports s ⊆ t.
func (s RelSet) SubsetOf(t RelSet) bool { return s&^t == 0 }

// Count returns the cardinality of the set.
func (s RelSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Members lists the ordinals in the set.
func (s RelSet) Members() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// PredRels computes the set of relations a predicate references, given
// the block layout.
func PredRels(p expr.Expr, l *Layout) RelSet {
	cols := map[int]bool{}
	p.CollectCols(cols)
	var s RelSet
	for c := range cols {
		if r := l.RelOfCol(c); r >= 0 {
			s = s.With(r)
		}
	}
	return s
}

// OutputWidth returns the number of output columns given the block layout
// width (for the Proj==nil identity case).
func (b *Block) OutputWidth(layoutWidth int) int {
	if b.HasAggregation() {
		return len(b.GroupBy) + len(b.Aggs)
	}
	if b.Proj != nil {
		return len(b.Proj)
	}
	return layoutWidth
}

// OutputProvenance maps each output column of the block to the global
// layout column it is a direct copy of, or -1 when it is computed (an
// aggregate or a non-column expression). The Filter Join uses provenance
// to decide which view output columns can legally receive filter-set
// bindings (only columns that flow unchanged from the view body).
func (b *Block) OutputProvenance(layoutWidth int) []int {
	if b.HasAggregation() {
		out := make([]int, 0, len(b.GroupBy)+len(b.Aggs))
		out = append(out, b.GroupBy...)
		for range b.Aggs {
			out = append(out, -1)
		}
		return out
	}
	if b.Proj != nil {
		out := make([]int, len(b.Proj))
		for i, p := range b.Proj {
			if c, ok := p.Expr.(expr.Col); ok {
				out[i] = c.Idx
			} else {
				out[i] = -1
			}
		}
		return out
	}
	out := make([]int, layoutWidth)
	for i := range out {
		out[i] = i
	}
	return out
}

// OutputSchema computes the block's output schema (what a view of this
// block exposes), qualified with viewName.
func (b *Block) OutputSchema(r SchemaResolver, viewName string) (*schema.Schema, error) {
	l, err := b.Layout(r)
	if err != nil {
		return nil, err
	}
	var cols []schema.Column
	if b.HasAggregation() {
		for _, g := range b.GroupBy {
			c := l.Schema.Col(g)
			cols = append(cols, schema.Column{Table: viewName, Name: c.Name, Type: c.Type})
		}
		for _, a := range b.Aggs {
			name := a.Name
			if name == "" {
				name = a.String()
			}
			cols = append(cols, schema.Column{Table: viewName, Name: name, Type: a.ResultType()})
		}
	} else if b.Proj != nil {
		for _, p := range b.Proj {
			name := p.Name
			typ := exprType(p.Expr, l.Schema)
			if name == "" {
				if c, ok := p.Expr.(expr.Col); ok {
					name = l.Schema.Col(c.Idx).Name
				} else {
					name = p.Expr.String()
				}
			}
			cols = append(cols, schema.Column{Table: viewName, Name: name, Type: typ})
		}
	} else {
		for _, c := range l.Schema.Columns() {
			cols = append(cols, schema.Column{Table: viewName, Name: c.Name, Type: c.Type})
		}
	}
	return schema.New(cols...), nil
}

func exprType(e expr.Expr, s *schema.Schema) value.Kind {
	switch p := e.(type) {
	case expr.Col:
		if p.Idx >= 0 && p.Idx < s.Len() {
			return s.Col(p.Idx).Type
		}
	case expr.Lit:
		return p.V.Kind()
	case expr.Param:
		return p.V.Kind()
	case expr.Arith:
		return exprType(p.L, s)
	case expr.Cmp, expr.And, expr.Or, expr.Not:
		return value.KindBool
	}
	return 0
}

// String renders the block for debugging.
func (b *Block) String() string {
	var sb strings.Builder
	sb.WriteString("FROM ")
	for i, r := range b.Rels {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.Name)
		if r.Alias != "" && r.Alias != r.Name {
			sb.WriteString(" ")
			sb.WriteString(r.Alias)
		}
	}
	if len(b.Preds) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range b.Preds {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(b.GroupBy) > 0 {
		sb.WriteString(fmt.Sprintf(" GROUP BY %v", b.GroupBy))
	}
	return sb.String()
}
