package plancache

import (
	"fmt"
	"testing"

	"filterjoin/internal/plan"
)

func key(i int) Key { return Key{Text: fmt.Sprintf("q%d", i), Epoch: 1} }

func TestLRUEviction(t *testing.T) {
	c := New(2)
	p := &plan.Node{}
	c.Put(key(1), &Entry{Plan: p})
	c.Put(key(2), &Entry{Plan: p})
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 should be cached")
	}
	// Capacity 2: inserting key 3 evicts the least recently used (key 2,
	// since key 1 was just touched).
	c.Put(key(3), &Entry{Plan: p})
	if _, ok := c.Get(key(2)); ok {
		t.Error("key 2 should have been evicted")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("key 1 was recently used and should survive")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Error("key 3 was just inserted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}

	// Replacing an existing key does not evict.
	c.Put(key(1), &Entry{Plan: p, Cost: 7})
	if c.Len() != 2 || c.Stats().Evictions != 1 {
		t.Errorf("replace changed size/evictions: len=%d stats=%+v", c.Len(), c.Stats())
	}
	if e, _ := c.Get(key(1)); e.Cost != 7 {
		t.Errorf("replace did not update the entry")
	}
}

func TestClearPreservesLifetimeCounters(t *testing.T) {
	c := New(4)
	p := &plan.Node{}
	c.Put(key(1), &Entry{Plan: p})
	c.Get(key(1))
	c.Get(key(2))
	c.Bypass()
	c.Clear()
	st := c.Stats()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	if st.Hits != 1 || st.Misses != 1 || st.Bypasses != 1 || st.Clears != 1 {
		t.Errorf("lifetime counters lost on Clear: %+v", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
}

func TestClassify(t *testing.T) {
	grid := []float64{0.02, 0.25, 0.6, 1.0}
	for _, tc := range []struct {
		sel  float64
		want int
	}{
		{0, 0}, {0.02, 0}, {0.1, 1}, {0.25, 1}, {0.5, 2}, {0.99, 3}, {1.0, 3},
		// Out-of-range estimates clamp to the last class.
		{1.5, 3},
	} {
		if got := Classify(tc.sel, grid); got != tc.want {
			t.Errorf("Classify(%v) = %d, want %d", tc.sel, got, tc.want)
		}
	}
}
