// Package plancache implements the serving layer's normalized-query plan
// cache. Entries are keyed on the canonical statement text, the catalog
// epoch it was planned under, the selectivity classes of its bind
// parameters, and a fingerprint of the optimizer configuration. The
// selectivity-class component reuses the idea behind the parametric view
// coster's sample grid (paper Fig 5): two parameter values falling in the
// same class land on the same point of the cost grid, so the plan chosen
// for one is the plan the optimizer would choose for the other. A value
// in a different class misses the cache and re-optimizes honestly.
//
// The cache is a plain mutex-guarded LRU: lookups are cheap relative to
// optimization, and a single lock keeps eviction and the hit/miss
// counters exact.
package plancache

import (
	"container/list"
	"sync"

	"filterjoin/internal/plan"
)

// DefaultSize is the entry cap used when the caller does not choose one.
const DefaultSize = 256

// Key identifies one cached plan. All components are strings or scalars
// so the struct is comparable and usable as a map key directly.
type Key struct {
	// Text is the canonical (normalized) statement text with `$n`
	// placeholders standing in for parameterized literals.
	Text string
	// Epoch is the catalog epoch the plan was built under; any catalog
	// mutation bumps the engine epoch, orphaning prior entries.
	Epoch uint64
	// Classes encodes the selectivity class of each bind parameter
	// (e.g. "2,0,-1"). Class -1 means the parameter's selectivity could
	// not be classified (one class for all values); -2 means the value
	// cannot affect plan shape.
	Classes string
	// Config fingerprints the optimizer knobs that change plan choice
	// (disabled methods, order properties, parallelism, batch size).
	Config string
}

// Entry is one cached plan with the metadata EXPLAIN reports.
type Entry struct {
	Plan *plan.Node
	Cost float64
	// Hits counts how many times this entry has been served.
	Hits int64
}

// Stats are the cache's cumulative counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Bypasses  int64
	Evictions int64
	Clears    int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a fixed-capacity LRU plan cache safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
}

type lruItem struct {
	key   Key
	entry *Entry
}

// New creates a cache holding at most size entries (DefaultSize if
// size <= 0).
func New(size int) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	return &Cache{cap: size, entries: make(map[Key]*list.Element), lru: list.New()}
}

// Get looks up a plan, counting a hit or a miss and refreshing recency.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	it := el.Value.(*lruItem)
	it.entry.Hits++
	return it.entry, true
}

// Put inserts (or replaces) the plan for k, evicting the least recently
// used entry when over capacity.
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruItem).entry = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&lruItem{key: k, entry: e})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem).key)
		c.stats.Evictions++
	}
}

// Bypass records a statement that skipped the cache (programmatic plans,
// unbound prepare-time EXPLAIN, cache disabled).
func (c *Cache) Bypass() {
	c.mu.Lock()
	c.stats.Bypasses++
	c.mu.Unlock()
}

// Clear drops every entry (catalog epoch change). Counters other than
// Clears are preserved: they describe lifetime traffic, not contents.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[Key]*list.Element)
	c.lru.Init()
	c.stats.Clears++
	c.mu.Unlock()
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Classify buckets a selectivity into the index of the first grid point
// at or above it — the equivalence class of the parametric coster's
// sample grid. Selectivities above the last point share the final class.
func Classify(sel float64, grid []float64) int {
	for i, g := range grid {
		if sel <= g {
			return i
		}
	}
	return len(grid) - 1
}
