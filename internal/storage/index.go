package storage

import (
	"filterjoin/internal/value"
)

// HashIndex is an equality index over one or more columns of a table.
// Probes return row ids; the cost of fetching the matching rows is charged
// by the executor using the distinct pages those rows live on, which
// models an unclustered secondary index.
type HashIndex struct {
	name    string
	cols    []int
	buckets map[string][]int
}

func newHashIndex(name string, cols []int) *HashIndex {
	c := make([]int, len(cols))
	copy(c, cols)
	return &HashIndex{name: name, cols: c, buckets: map[string][]int{}}
}

// Name returns the index name.
func (ix *HashIndex) Name() string { return ix.name }

// Cols returns the key column indexes (do not mutate).
func (ix *HashIndex) Cols() []int { return ix.cols }

func (ix *HashIndex) add(rowID int, r value.Row) {
	k := r.Key(ix.cols)
	ix.buckets[k] = append(ix.buckets[k], rowID)
}

func (ix *HashIndex) clear() { ix.buckets = map[string][]int{} }

// Lookup returns the ids of rows whose key columns equal key (a row whose
// width equals len(Cols())).
func (ix *HashIndex) Lookup(key value.Row) []int {
	all := make([]int, len(ix.cols))
	for i := range all {
		all[i] = i
	}
	return ix.buckets[key.Key(all)]
}

// LookupRow probes with the key extracted from a full-width row of the
// indexed table's schema (or any row where keyIdx locates the key values).
func (ix *HashIndex) LookupRow(r value.Row, keyIdx []int) []int {
	return ix.buckets[r.Key(keyIdx)]
}

// DistinctKeys returns the number of distinct keys in the index.
func (ix *HashIndex) DistinctKeys() int { return len(ix.buckets) }

// ProbePages returns how many distinct data pages the given row ids touch,
// given the table's page geometry; this is what the executor charges for
// fetching the matches of one probe.
func ProbePages(rowIDs []int, rowsPerPage int) int {
	if len(rowIDs) == 0 {
		return 0
	}
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	seen := map[int]bool{}
	for _, id := range rowIDs {
		seen[id/rowsPerPage] = true
	}
	return len(seen)
}
