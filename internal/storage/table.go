// Package storage implements in-memory heap tables with deterministic
// page accounting, plus hash indexes. Tables do not charge costs
// themselves; the execution operators charge page reads/writes against a
// cost.Counter using the page geometry the table exposes. This makes the
// simulated I/O model auditable: a full scan of a table with P pages
// always charges exactly P page reads.
package storage

import (
	"fmt"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// Table is a heap file: an ordered bag of rows with page geometry.
type Table struct {
	name        string
	schema      *schema.Schema
	rows        []value.Row
	rowsPerPage int
	indexes     map[string]*HashIndex
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, s *schema.Schema) *Table {
	rpp := PageSize / s.RowWidth()
	if rpp < 1 {
		rpp = 1
	}
	return &Table{
		name:        name,
		schema:      s,
		rowsPerPage: rpp,
		indexes:     map[string]*HashIndex{},
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// RowsPerPage returns how many rows fit on one simulated page.
func (t *Table) RowsPerPage() int { return t.rowsPerPage }

// NumRows returns the table cardinality.
func (t *Table) NumRows() int { return len(t.rows) }

// NumPages returns the number of pages the table occupies.
func (t *Table) NumPages() int {
	return PagesFor(len(t.rows), t.rowsPerPage)
}

// PagesFor returns ceil(rows / rowsPerPage), with a minimum of 0 pages for
// an empty relation and 1 page otherwise.
func PagesFor(rows, rowsPerPage int) int {
	if rows <= 0 {
		return 0
	}
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	return (rows + rowsPerPage - 1) / rowsPerPage
}

// Insert appends a row. The row must match the schema width; column types
// are checked loosely (NULL is allowed anywhere, ints are accepted where
// floats are declared).
func (t *Table) Insert(r value.Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.name, t.schema.Len(), len(r))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := t.schema.Col(i).Type
		got := v.Kind()
		if got == want {
			continue
		}
		if want == value.KindFloat && got == value.KindInt {
			continue
		}
		return fmt.Errorf("storage: table %s column %s expects %s, got %s",
			t.name, t.schema.Col(i).QualifiedName(), want, got)
	}
	t.rows = append(t.rows, r)
	for _, ix := range t.indexes {
		ix.add(len(t.rows)-1, r)
	}
	return nil
}

// MustInsert inserts and panics on schema mismatch; for fixtures.
func (t *Table) MustInsert(vals ...value.Value) {
	if err := t.Insert(value.Row(vals)); err != nil {
		panic(err)
	}
}

// InsertAll inserts each row, stopping at the first error.
func (t *Table) InsertAll(rows []value.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Row returns the i-th row. The caller must not mutate it.
func (t *Table) Row(i int) value.Row { return t.rows[i] }

// Rows returns the backing row slice. The caller must not mutate it.
func (t *Table) Rows() []value.Row { return t.rows }

// PageOfRow returns the page number that holds row i.
func (t *Table) PageOfRow(i int) int { return i / t.rowsPerPage }

// Truncate removes all rows (indexes are cleared too).
func (t *Table) Truncate() {
	t.rows = t.rows[:0]
	for _, ix := range t.indexes {
		ix.clear()
	}
}

// CreateIndex builds (or rebuilds) a hash index over the given columns.
// The index is named and retrievable by that name.
func (t *Table) CreateIndex(name string, cols []int) (*HashIndex, error) {
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return nil, fmt.Errorf("storage: index %s on %s references column %d out of range", name, t.name, c)
		}
	}
	ix := newHashIndex(name, cols)
	for i, r := range t.rows {
		ix.add(i, r)
	}
	t.indexes[name] = ix
	return ix, nil
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *HashIndex { return t.indexes[name] }

// IndexOn returns any index whose key columns exactly cover cols (order
// insensitive), or nil.
func (t *Table) IndexOn(cols []int) *HashIndex {
	for _, ix := range t.indexes {
		if sameColSet(ix.cols, cols) {
			return ix
		}
	}
	return nil
}

// Indexes returns all indexes on the table.
func (t *Table) Indexes() []*HashIndex {
	out := make([]*HashIndex, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	return out
}

func sameColSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]bool{}
	for _, c := range a {
		seen[c] = true
	}
	for _, c := range b {
		if !seen[c] {
			return false
		}
	}
	return true
}

// FromRows builds a table directly from a schema and pre-validated rows;
// used to materialize intermediate results.
func FromRows(name string, s *schema.Schema, rows []value.Row) *Table {
	t := NewTable(name, s)
	t.rows = rows
	return t
}
