package storage

import (
	"strings"
	"testing"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

func csvTable() *Table {
	return NewTable("t", schema.New(
		schema.Column{Table: "t", Name: "id", Type: value.KindInt},
		schema.Column{Table: "t", Name: "price", Type: value.KindFloat},
		schema.Column{Table: "t", Name: "name", Type: value.KindString},
		schema.Column{Table: "t", Name: "active", Type: value.KindBool},
	))
}

func TestLoadCSVBasic(t *testing.T) {
	tb := csvTable()
	n, err := tb.LoadCSV(strings.NewReader("1,2.5,apple,true\n2,3.0,pear,false\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tb.NumRows() != 2 {
		t.Fatalf("loaded %d rows", n)
	}
	r := tb.Row(0)
	if r[0].Int() != 1 || r[1].Float() != 2.5 || r[2].Str() != "apple" || !r[3].Bool() {
		t.Errorf("row 0 = %v", r)
	}
}

func TestLoadCSVHeaderSkipped(t *testing.T) {
	tb := csvTable()
	n, err := tb.LoadCSV(strings.NewReader("id,price,name,active\n7,1.0,x,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || tb.Row(0)[0].Int() != 7 {
		t.Errorf("header not skipped: %d rows", n)
	}
}

func TestLoadCSVNulls(t *testing.T) {
	tb := csvTable()
	n, err := tb.LoadCSV(strings.NewReader("1,,NULL,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("row not loaded")
	}
	r := tb.Row(0)
	if !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("nulls not parsed: %v", r)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tb := csvTable()
	if _, err := tb.LoadCSV(strings.NewReader("1,2.5,apple\n")); err == nil {
		t.Error("field-count mismatch must error")
	}
	tb = csvTable()
	if _, err := tb.LoadCSV(strings.NewReader("notanint,1.0,x,true\n")); err == nil {
		t.Error("type mismatch must error")
	}
	// Rows before the error stay loaded, and the count reflects them.
	tb = csvTable()
	n, err := tb.LoadCSV(strings.NewReader("1,1.0,x,true\nbad,1.0,x,true\n"))
	if err == nil || n != 1 {
		t.Errorf("partial load: n=%d err=%v", n, err)
	}
}

func TestLoadCSVMaintainsIndexes(t *testing.T) {
	tb := csvTable()
	ix, _ := tb.CreateIndex("t_id", []int{0})
	if _, err := tb.LoadCSV(strings.NewReader("5,1.0,x,true\n")); err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup(value.Row{value.NewInt(5)})) != 1 {
		t.Error("index not maintained by CSV load")
	}
}
