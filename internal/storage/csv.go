package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// LoadCSV bulk-loads comma-separated records into the table, parsing
// each field according to the table schema. An optional single header
// row matching the column names (case-insensitive) is skipped. Empty
// fields and the literal "null" load as NULL. Returns the number of
// rows inserted; on a parse error, rows before the error remain
// inserted and the error reports the offending line.
func (t *Table) LoadCSV(r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	n := 0
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("storage: reading CSV for %s: %w", t.name, err)
		}
		if first {
			first = false
			if isHeader(rec, t.schema.Columns()) {
				continue
			}
		}
		if len(rec) != t.schema.Len() {
			return n, fmt.Errorf("storage: CSV row has %d fields, table %s has %d columns",
				len(rec), t.name, t.schema.Len())
		}
		row := make(value.Row, len(rec))
		for i, field := range rec {
			v, err := parseField(field, t.schema.Col(i).Type)
			if err != nil {
				return n, fmt.Errorf("storage: CSV field %d (%q) for %s.%s: %w",
					i, field, t.name, t.schema.Col(i).Name, err)
			}
			row[i] = v
		}
		if err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
}

func isHeader(rec []string, cols []schema.Column) bool {
	if len(rec) != len(cols) {
		return false
	}
	for i, f := range rec {
		if !strings.EqualFold(strings.TrimSpace(f), cols[i].Name) {
			return false
		}
	}
	return true
}

func parseField(field string, kind value.Kind) (value.Value, error) {
	s := strings.TrimSpace(field)
	if s == "" || strings.EqualFold(s, "null") {
		return value.Null, nil
	}
	switch kind {
	case value.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(strings.ToLower(s))
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b), nil
	default:
		return value.NewString(s), nil
	}
}
