package storage

import (
	"testing"

	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

func intSchema(names ...string) *schema.Schema {
	cols := make([]schema.Column, len(names))
	for i, n := range names {
		cols[i] = schema.Column{Table: "t", Name: n, Type: value.KindInt}
	}
	return schema.New(cols...)
}

func TestInsertValidation(t *testing.T) {
	tb := NewTable("t", intSchema("a", "b"))
	if err := tb.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("wrong arity must error")
	}
	if err := tb.Insert(value.Row{value.NewInt(1), value.NewString("x")}); err == nil {
		t.Error("wrong type must error")
	}
	if err := tb.Insert(value.Row{value.NewInt(1), value.Null}); err != nil {
		t.Errorf("NULL is allowed anywhere: %v", err)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestIntAcceptedForFloatColumn(t *testing.T) {
	s := schema.New(schema.Column{Table: "t", Name: "f", Type: value.KindFloat})
	tb := NewTable("t", s)
	if err := tb.Insert(value.Row{value.NewInt(3)}); err != nil {
		t.Errorf("int into float column: %v", err)
	}
	if err := tb.Insert(value.Row{value.NewString("x")}); err == nil {
		t.Error("string into float column must error")
	}
}

func TestPageGeometry(t *testing.T) {
	tb := NewTable("t", intSchema("a", "b")) // row width 16 -> 256 rows/page
	if tb.RowsPerPage() != PageSize/16 {
		t.Errorf("RowsPerPage = %d", tb.RowsPerPage())
	}
	if tb.NumPages() != 0 {
		t.Error("empty table has 0 pages")
	}
	for i := 0; i < tb.RowsPerPage()+1; i++ {
		tb.MustInsert(value.NewInt(int64(i)), value.NewInt(0))
	}
	if tb.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", tb.NumPages())
	}
	if tb.PageOfRow(0) != 0 || tb.PageOfRow(tb.RowsPerPage()) != 1 {
		t.Error("PageOfRow wrong")
	}
}

func TestPagesFor(t *testing.T) {
	if PagesFor(0, 10) != 0 {
		t.Error("0 rows = 0 pages")
	}
	if PagesFor(1, 10) != 1 || PagesFor(10, 10) != 1 || PagesFor(11, 10) != 2 {
		t.Error("ceil division wrong")
	}
	if PagesFor(5, 0) != 5 {
		t.Error("degenerate rowsPerPage clamps to 1")
	}
}

func TestIndexLookup(t *testing.T) {
	tb := NewTable("t", intSchema("k", "v"))
	for i := 0; i < 100; i++ {
		tb.MustInsert(value.NewInt(int64(i%10)), value.NewInt(int64(i)))
	}
	ix, err := tb.CreateIndex("t_k", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	ids := ix.Lookup(value.Row{value.NewInt(3)})
	if len(ids) != 10 {
		t.Fatalf("Lookup(3) = %d rows, want 10", len(ids))
	}
	for _, id := range ids {
		if tb.Row(id)[0].Int() != 3 {
			t.Errorf("row %d has key %v", id, tb.Row(id)[0])
		}
	}
	if got := ix.Lookup(value.Row{value.NewInt(99)}); got != nil {
		t.Errorf("missing key returns %v", got)
	}
	if ix.DistinctKeys() != 10 {
		t.Errorf("DistinctKeys = %d", ix.DistinctKeys())
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tb := NewTable("t", intSchema("k"))
	ix, _ := tb.CreateIndex("i", []int{0})
	tb.MustInsert(value.NewInt(7))
	if len(ix.Lookup(value.Row{value.NewInt(7)})) != 1 {
		t.Error("index must see rows inserted after creation")
	}
	tb.Truncate()
	if len(ix.Lookup(value.Row{value.NewInt(7)})) != 0 {
		t.Error("truncate must clear indexes")
	}
}

func TestCreateIndexValidation(t *testing.T) {
	tb := NewTable("t", intSchema("a"))
	if _, err := tb.CreateIndex("bad", []int{5}); err == nil {
		t.Error("out-of-range index column must error")
	}
}

func TestIndexOn(t *testing.T) {
	tb := NewTable("t", intSchema("a", "b", "c"))
	if _, err := tb.CreateIndex("ab", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn([]int{1, 0}) == nil {
		t.Error("IndexOn is order-insensitive")
	}
	if tb.IndexOn([]int{0}) != nil {
		t.Error("partial column set should not match exactly")
	}
	if tb.Index("ab") == nil || tb.Index("zz") != nil {
		t.Error("Index by name")
	}
	if len(tb.Indexes()) != 1 {
		t.Error("Indexes()")
	}
}

func TestLookupRow(t *testing.T) {
	tb := NewTable("t", intSchema("k", "v"))
	tb.MustInsert(value.NewInt(5), value.NewInt(50))
	ix, _ := tb.CreateIndex("i", []int{0})
	// Probe with a wider row whose key lives at position 2.
	probe := value.Row{value.NewInt(0), value.NewInt(0), value.NewInt(5)}
	if len(ix.LookupRow(probe, []int{2})) != 1 {
		t.Error("LookupRow with key index failed")
	}
}

func TestProbePages(t *testing.T) {
	if ProbePages(nil, 10) != 0 {
		t.Error("no matches = 0 pages")
	}
	if ProbePages([]int{0, 1, 2}, 10) != 1 {
		t.Error("3 rows on one page")
	}
	if ProbePages([]int{0, 10, 20}, 10) != 3 {
		t.Error("3 rows on 3 pages")
	}
	if ProbePages([]int{5}, 0) != 1 {
		t.Error("degenerate rowsPerPage")
	}
}

func TestFromRows(t *testing.T) {
	rows := []value.Row{{value.NewInt(1)}, {value.NewInt(2)}}
	tb := FromRows("x", intSchema("a"), rows)
	if tb.NumRows() != 2 || tb.Name() != "x" {
		t.Error("FromRows")
	}
}

func TestRowWidthFallback(t *testing.T) {
	// A table whose row is wider than a page still fits one row per page.
	cols := make([]schema.Column, 600)
	for i := range cols {
		cols[i] = schema.Column{Name: "c", Type: value.KindInt}
	}
	tb := NewTable("wide", schema.New(cols...))
	if tb.RowsPerPage() < 1 {
		t.Error("RowsPerPage must be at least 1")
	}
}
