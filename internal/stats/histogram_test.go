package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildHistogramEmpty(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Error("empty input yields nil histogram")
	}
	if BuildHistogram([]float64{1}, 0) != nil {
		t.Error("zero buckets yields nil histogram")
	}
}

func TestHistogramUniform(t *testing.T) {
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i)
	}
	h := BuildHistogram(vs, 16)
	if h.Buckets() == 0 {
		t.Fatal("no buckets")
	}
	if got := h.LessFraction(500); math.Abs(got-0.5) > 0.05 {
		t.Errorf("LessFraction(500) = %g", got)
	}
	if h.LessFraction(-1) != 0 {
		t.Error("below min is 0")
	}
	if h.LessFraction(2000) != 1 {
		t.Error("above max is 1")
	}
	if got := h.EqFraction(500); math.Abs(got-0.001) > 0.002 {
		t.Errorf("EqFraction(500) = %g, want ≈ 0.001", got)
	}
	if h.EqFraction(-5) != 0 || h.EqFraction(5000) != 0 {
		t.Error("out-of-range equality is 0")
	}
}

func TestHistogramSkewed(t *testing.T) {
	// 90% of values are 0, the rest spread over 1..100.
	var vs []float64
	for i := 0; i < 900; i++ {
		vs = append(vs, 0)
	}
	for i := 0; i < 100; i++ {
		vs = append(vs, float64(1+i))
	}
	h := BuildHistogram(vs, 10)
	if got := h.EqFraction(0); got < 0.5 {
		t.Errorf("heavy hitter estimate = %g, want large", got)
	}
	if got := h.LessFraction(1); got < 0.8 {
		t.Errorf("LessFraction(1) = %g, want ≈ 0.9", got)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := BuildHistogram([]float64{7, 7, 7}, 4)
	if h.LessFraction(7) != 0 {
		t.Error("nothing below 7")
	}
	if h.LessFraction(8) != 1 {
		t.Error("everything below 8")
	}
	if got := h.EqFraction(7); math.Abs(got-1) > 1e-9 {
		t.Errorf("EqFraction(7) = %g", got)
	}
}

func TestHistogramRunsNotSplit(t *testing.T) {
	// More buckets than distinct values: runs must stay whole and the
	// builder must not panic (regression test for the bucket-overrun bug).
	var vs []float64
	for i := 0; i < 5000; i++ {
		if i < 250 {
			vs = append(vs, 25)
		} else {
			vs = append(vs, 40)
		}
	}
	h := BuildHistogram(vs, 32)
	if got := h.EqFraction(25); math.Abs(got-0.05) > 0.01 {
		t.Errorf("EqFraction(25) = %g, want 0.05", got)
	}
}

func TestHistogramFractionsBoundedProperty(t *testing.T) {
	f := func(seed int64, probe float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = math.Round(r.Float64()*100) / 2
		}
		h := BuildHistogram(vs, 1+r.Intn(40))
		lf := h.LessFraction(probe)
		ef := h.EqFraction(probe)
		return lf >= 0 && lf <= 1 && ef >= 0 && ef <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramLessFractionMonotoneProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.Float64() * 50
		}
		h := BuildHistogram(vs, 8)
		return h.LessFraction(a) <= h.LessFraction(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
