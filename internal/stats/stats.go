// Package stats provides the statistics and cardinality-estimation
// machinery the optimizer relies on: per-column distinct counts, ranges
// and equi-height histograms collected from stored tables; derived
// statistics for intermediate relations; predicate and join selectivity
// estimation in the System R tradition; Yao/Cardenas page-access
// estimation; and projection (distinct) cardinality estimation, which the
// paper calls out as the input to AvailCost_F.
package stats

import (
	"math"
	"sort"

	"filterjoin/internal/expr"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// DefaultHistogramBuckets is the number of equi-height buckets collected
// for numeric columns.
const DefaultHistogramBuckets = 32

// ColStats summarizes one column of a (possibly intermediate) relation.
// All quantities are estimates expressed as float64.
type ColStats struct {
	Distinct float64    // estimated number of distinct non-null values
	NullFrac float64    // fraction of rows that are NULL
	Min, Max float64    // numeric range when HasRange
	HasRange bool       // whether Min/Max are meaningful (numeric column)
	Sorted   bool       // rows are stored in non-decreasing order of this column (clustering)
	Hist     *Histogram // optional equi-height histogram (numeric only)
}

// RelStats summarizes a relation: row count plus per-column stats aligned
// with the relation's schema.
type RelStats struct {
	Rows float64
	Cols []ColStats

	// SelFix maps canonical predicate fingerprints (PredKey) to observed
	// selectivities fed back from instrumented executions (DESIGN.md
	// §15). Selectivity consults it before estimating structurally, so a
	// predicate whose independence-assumption estimate was observed wrong
	// (correlated conjuncts) is corrected on the next plan. The map is
	// immutable once published: feedback application builds a fresh map
	// (copy-on-write), never mutates one reachable from a Clone.
	SelFix map[string]float64
}

// Clone deep-copies the stats (histograms and the SelFix map are shared;
// they are immutable by convention — refinement replaces them wholesale).
func (s *RelStats) Clone() *RelStats {
	cols := make([]ColStats, len(s.Cols))
	copy(cols, s.Cols)
	return &RelStats{Rows: s.Rows, Cols: cols, SelFix: s.SelFix}
}

// Collect computes full statistics for a stored table.
func Collect(t *storage.Table) *RelStats {
	n := t.NumRows()
	cols := make([]ColStats, t.Schema().Len())
	for c := range cols {
		cols[c] = collectColumn(t, c)
	}
	return &RelStats{Rows: float64(n), Cols: cols}
}

func collectColumn(t *storage.Table, c int) ColStats {
	var (
		distinct = map[string]bool{}
		nulls    int
		numeric  []float64
		isNum    = true
		sorted   = true
		prev     value.Value
		havePrev bool
	)
	for _, r := range t.Rows() {
		v := r[c]
		if v.IsNull() {
			nulls++
			continue
		}
		if havePrev && value.Compare(prev, v) > 0 {
			sorted = false
		}
		prev, havePrev = v, true
		distinct[r.Key([]int{c})] = true
		if f, ok := v.AsFloat(); ok {
			numeric = append(numeric, f)
		} else {
			isNum = false
		}
	}
	cs := ColStats{Distinct: float64(len(distinct)), Sorted: sorted && havePrev}
	if n := t.NumRows(); n > 0 {
		cs.NullFrac = float64(nulls) / float64(n)
	}
	if isNum && len(numeric) > 0 {
		sort.Float64s(numeric)
		cs.HasRange = true
		cs.Min = numeric[0]
		cs.Max = numeric[len(numeric)-1]
		cs.Hist = BuildHistogram(numeric, DefaultHistogramBuckets)
	}
	return cs
}

// Concat returns stats for the cross-product-shaped concatenation of two
// relations' columns, with the given output row count.
func Concat(l, r *RelStats, rows float64) *RelStats {
	cols := make([]ColStats, 0, len(l.Cols)+len(r.Cols))
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	out := &RelStats{Rows: rows, Cols: cols}
	out.capDistinct()
	return out
}

// Scale returns stats for the relation after a filter retaining frac of
// the rows. Distinct counts attenuate with the retained cardinality
// following the standard "balls and bins" shrinkage.
func (s *RelStats) Scale(frac float64) *RelStats {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	out := s.Clone()
	out.Rows = s.Rows * frac
	out.capDistinct()
	return out
}

// capDistinct enforces distinct <= rows on every column, attenuating
// distinct counts when the row count shrank below them.
func (s *RelStats) capDistinct() {
	for i := range s.Cols {
		if s.Cols[i].Distinct > s.Rows {
			s.Cols[i].Distinct = s.Rows
		}
	}
}

// DistinctOf returns the distinct-count estimate for column c, defaulting
// to the row count when unknown.
func (s *RelStats) DistinctOf(c int) float64 {
	if c < 0 || c >= len(s.Cols) || s.Cols[c].Distinct <= 0 {
		if s.Rows < 1 {
			return 1
		}
		return s.Rows
	}
	return s.Cols[c].Distinct
}

// ProjectionCardinality estimates the number of distinct rows of the
// projection of a relation with `rows` rows onto columns with the given
// per-column distinct counts. It combines the independence upper bound
// (product of distincts) with the Cardenas occupancy formula over that
// domain, which is the "assumptions about the distributions of values"
// approach the paper references [Yao77].
func ProjectionCardinality(rows float64, distincts []float64) float64 {
	if rows <= 0 {
		return 0
	}
	domain := 1.0
	maxD := 1.0
	for _, d := range distincts {
		if d < 1 {
			d = 1
		}
		if d > maxD {
			maxD = d
		}
		domain *= d
		if domain > 1e15 {
			domain = 1e15
			break
		}
	}
	if domain <= 1 {
		return 1
	}
	// A single column's distinct count is exact knowledge, not a domain
	// to sample from; only multi-column combinations need the occupancy
	// estimate.
	if len(distincts) == 1 {
		return math.Min(rows, domain)
	}
	// Cardenas: expected distinct keys when throwing `rows` balls into
	// `domain` bins uniformly — bounded below by the largest single
	// column (the projection cannot have fewer values than any of its
	// columns has in the data).
	card := domain * (1 - math.Pow(1-1/domain, rows))
	if card < maxD {
		card = maxD
	}
	if card > rows {
		card = rows
	}
	if card < 1 {
		card = 1
	}
	return card
}

// YaoPages estimates the number of pages touched when fetching k random
// records from a relation of n records stored on m pages (Yao's formula,
// with the Cardenas approximation for large inputs).
func YaoPages(n, m, k float64) float64 {
	if k <= 0 || m <= 0 || n <= 0 {
		return 0
	}
	if k >= n {
		return m
	}
	// Cardenas approximation: m * (1 - (1 - 1/m)^k). For small m this is
	// within a few percent of exact Yao and is numerically robust.
	p := m * (1 - math.Pow(1-1/m, k))
	if p > m {
		p = m
	}
	if p < 1 {
		p = 1
	}
	return p
}

// MatchPages estimates the data pages one index probe touches when
// fetching k of n rows stored on m pages (rowsPerPage rows each). When
// the table is clustered on the probed key the matches are contiguous;
// otherwise Yao's formula for randomly scattered records applies.
func MatchPages(n, m, k float64, rowsPerPage int, clustered bool) float64 {
	if k <= 0 || m <= 0 {
		return 0
	}
	if clustered {
		if rowsPerPage < 1 {
			rowsPerPage = 1
		}
		p := math.Ceil(k/float64(rowsPerPage)) + 1
		if p > m {
			p = m
		}
		return p
	}
	return YaoPages(n, m, k)
}

// ClusteredOn reports whether the relation is stored sorted on column c.
func (s *RelStats) ClusteredOn(c int) bool {
	return c >= 0 && c < len(s.Cols) && s.Cols[c].Sorted
}

// JoinSelectivity estimates the selectivity of an equi-join between a
// column with dl distinct values and one with dr distinct values:
// 1/max(dl, dr), the System R containment assumption.
func JoinSelectivity(dl, dr float64) float64 {
	d := math.Max(dl, dr)
	if d < 1 {
		d = 1
	}
	return 1 / d
}

// Selectivity estimates the fraction of rows of a relation with stats s
// that satisfy predicate e. Column references in e are positions in the
// relation's schema. Unrecognized predicate shapes fall back to the
// System R default of 1/3 for inequalities and 1/10 for equalities.
func Selectivity(e expr.Expr, s *RelStats) float64 {
	// Feedback overrides first: an observed selectivity for this exact
	// predicate shape beats any structural estimate (it is a measurement,
	// not an assumption).
	if len(s.SelFix) > 0 {
		if v, ok := s.SelFix[PredKey(e)]; ok {
			return clamp01(v)
		}
	}
	switch p := e.(type) {
	case expr.And:
		sel := 1.0
		for _, k := range p.Kids {
			sel *= Selectivity(k, s)
		}
		return sel
	case expr.Or:
		sel := 0.0
		for _, k := range p.Kids {
			ks := Selectivity(k, s)
			sel = sel + ks - sel*ks
		}
		return sel
	case expr.Not:
		return clamp01(1 - Selectivity(p.Kid, s))
	case expr.Cmp:
		return cmpSelectivity(p, s)
	case expr.Lit:
		if p.V.Kind() == value.KindBool {
			if p.V.Bool() {
				return 1
			}
			return 0
		}
		return 1
	case expr.Param:
		// A bound parameter is the literal it was planned with.
		if p.Has && p.V.Kind() == value.KindBool {
			if p.V.Bool() {
				return 1
			}
			return 0
		}
		return 1
	default:
		return 1.0 / 3.0
	}
}

// asConst extracts the constant side of a comparison: a literal, or a
// bound parameter behaving as the literal it was planned with.
func asConst(e expr.Expr) (expr.Lit, bool) {
	switch x := e.(type) {
	case expr.Lit:
		return x, true
	case expr.Param:
		if x.Has {
			return expr.Lit{V: x.V}, true
		}
	default:
		// Columns and compound expressions are not constants.
	}
	return expr.Lit{}, false
}

func cmpSelectivity(p expr.Cmp, s *RelStats) float64 {
	// Column vs literal (or bound parameter) in either order.
	if col, ok := p.L.(expr.Col); ok {
		if lit, ok2 := asConst(p.R); ok2 {
			return colLitSelectivity(p.Op, col, lit, s)
		}
		if rcol, ok2 := p.R.(expr.Col); ok2 {
			// column-vs-column comparison within one relation.
			if p.Op == expr.EQ {
				return JoinSelectivity(s.DistinctOf(col.Idx), s.DistinctOf(rcol.Idx))
			}
			return 1.0 / 3.0
		}
	}
	if col, ok := p.R.(expr.Col); ok {
		if lit, ok2 := asConst(p.L); ok2 {
			return colLitSelectivity(flipOp(p.Op), col, lit, s)
		}
	}
	if p.Op == expr.EQ {
		return 0.1
	}
	return 1.0 / 3.0
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

func colLitSelectivity(op expr.CmpOp, col expr.Col, lit expr.Lit, s *RelStats) float64 {
	if col.Idx < 0 || col.Idx >= len(s.Cols) {
		return defaultSel(op)
	}
	cs := s.Cols[col.Idx]
	f, numeric := lit.V.AsFloat()
	switch op {
	case expr.EQ:
		if numeric && cs.Hist != nil {
			return clamp01(cs.Hist.EqFraction(f))
		}
		if cs.Distinct >= 1 {
			return clamp01(1 / cs.Distinct)
		}
		return 0.1
	case expr.NE:
		return clamp01(1 - colLitSelectivity(expr.EQ, col, lit, s))
	case expr.LT, expr.LE, expr.GT, expr.GE:
		if !numeric || !cs.HasRange {
			return defaultSel(op)
		}
		var frac float64
		if cs.Hist != nil {
			frac = cs.Hist.LessFraction(f)
		} else if cs.Max > cs.Min {
			frac = clamp01((f - cs.Min) / (cs.Max - cs.Min))
		} else {
			// Single-valued column.
			if f > cs.Min {
				frac = 1
			}
		}
		switch op {
		case expr.LT, expr.LE:
			return clamp01(frac)
		default:
			return clamp01(1 - frac)
		}
	}
	return defaultSel(op)
}

func defaultSel(op expr.CmpOp) float64 {
	if op == expr.EQ {
		return 0.1
	}
	return 1.0 / 3.0
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
