package stats

import (
	"math"
	"testing"
	"testing/quick"

	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func sampleTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	s := schema.New(
		schema.Column{Table: "t", Name: "k", Type: value.KindInt},
		schema.Column{Table: "t", Name: "v", Type: value.KindFloat},
		schema.Column{Table: "t", Name: "s", Type: value.KindString},
	)
	tb := storage.NewTable("t", s)
	for i := 0; i < n; i++ {
		var sv value.Value = value.NewString(string(rune('a' + i%5)))
		if i%10 == 0 {
			sv = value.Null
		}
		tb.MustInsert(value.NewInt(int64(i/4)), value.NewFloat(float64(i%100)), sv)
	}
	return tb
}

func TestCollectBasics(t *testing.T) {
	tb := sampleTable(t, 400)
	st := Collect(tb)
	if st.Rows != 400 {
		t.Errorf("Rows = %g", st.Rows)
	}
	if st.Cols[0].Distinct != 100 {
		t.Errorf("k distinct = %g, want 100", st.Cols[0].Distinct)
	}
	if !st.Cols[0].Sorted {
		t.Error("k is inserted non-decreasing; Sorted must be true")
	}
	if st.Cols[1].Sorted {
		t.Error("v cycles; Sorted must be false")
	}
	if !st.Cols[0].HasRange || st.Cols[0].Min != 0 || st.Cols[0].Max != 99 {
		t.Errorf("k range = [%g,%g]", st.Cols[0].Min, st.Cols[0].Max)
	}
	if st.Cols[2].NullFrac != 0.1 {
		t.Errorf("s null fraction = %g", st.Cols[2].NullFrac)
	}
	if st.Cols[2].Distinct != 5 {
		t.Errorf("s distinct = %g", st.Cols[2].Distinct)
	}
	if st.Cols[2].Hist != nil {
		t.Error("string column has no histogram")
	}
}

func TestScaleCapsDistinct(t *testing.T) {
	st := &RelStats{Rows: 100, Cols: []ColStats{{Distinct: 80}}}
	sc := st.Scale(0.1)
	if sc.Rows != 10 {
		t.Errorf("Rows = %g", sc.Rows)
	}
	if sc.Cols[0].Distinct != 10 {
		t.Errorf("Distinct = %g, want capped at 10", sc.Cols[0].Distinct)
	}
	if st.Cols[0].Distinct != 80 {
		t.Error("Scale must not mutate the input")
	}
	if st.Scale(2).Rows != 100 {
		t.Error("fraction is clamped to [0,1]")
	}
}

func TestConcat(t *testing.T) {
	l := &RelStats{Rows: 10, Cols: []ColStats{{Distinct: 5}}}
	r := &RelStats{Rows: 20, Cols: []ColStats{{Distinct: 15}}}
	c := Concat(l, r, 8)
	if len(c.Cols) != 2 || c.Rows != 8 {
		t.Errorf("Concat shape wrong: %+v", c)
	}
	if c.Cols[0].Distinct != 5 || c.Cols[1].Distinct != 8 {
		t.Errorf("distincts = %g, %g", c.Cols[0].Distinct, c.Cols[1].Distinct)
	}
}

func TestDistinctOfFallback(t *testing.T) {
	st := &RelStats{Rows: 42, Cols: []ColStats{{Distinct: 0}}}
	if st.DistinctOf(0) != 42 {
		t.Error("unknown distinct falls back to row count")
	}
	if st.DistinctOf(9) != 42 {
		t.Error("out-of-range falls back to row count")
	}
}

func TestProjectionCardinalitySingleColumnExact(t *testing.T) {
	if got := ProjectionCardinality(1000, []float64{40}); got != 40 {
		t.Errorf("single column distinct is exact: %g", got)
	}
	if got := ProjectionCardinality(30, []float64{40}); got != 30 {
		t.Errorf("capped by rows: %g", got)
	}
}

func TestProjectionCardinalityMultiColumnBounds(t *testing.T) {
	f := func(rows uint16, d1, d2 uint8) bool {
		r := float64(rows%5000) + 1
		a := float64(d1%100) + 1
		b := float64(d2%100) + 1
		card := ProjectionCardinality(r, []float64{a, b})
		upper := math.Min(r, a*b)
		lower := math.Max(a, b)
		if lower > upper {
			lower = upper
		}
		return card >= lower-1e-9 && card <= upper+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYaoPages(t *testing.T) {
	if YaoPages(1000, 100, 0) != 0 {
		t.Error("k=0 touches nothing")
	}
	if YaoPages(1000, 100, 1000) != 100 {
		t.Error("fetching everything touches every page")
	}
	mid := YaoPages(1000, 100, 50)
	if mid <= 1 || mid > 100 {
		t.Errorf("YaoPages(50) = %g out of range", mid)
	}
	// Monotone in k.
	if YaoPages(1000, 100, 100) <= YaoPages(1000, 100, 10) {
		t.Error("more records touch more pages")
	}
}

func TestMatchPagesClustered(t *testing.T) {
	cl := MatchPages(10000, 100, 50, 100, true)
	sc := MatchPages(10000, 100, 50, 100, false)
	if cl >= sc {
		t.Errorf("clustered (%g) must beat scattered (%g) for k=50", cl, sc)
	}
	if MatchPages(10000, 100, 50, 100, true) > 100 {
		t.Error("clustered is capped by table pages")
	}
	if MatchPages(0, 0, 10, 100, true) != 0 {
		t.Error("empty table")
	}
}

func TestJoinSelectivity(t *testing.T) {
	if JoinSelectivity(100, 50) != 1.0/100 {
		t.Error("1/max(d1,d2)")
	}
	if JoinSelectivity(0, 0) != 1 {
		t.Error("degenerate distincts clamp to 1")
	}
}

func TestSelectivityShapes(t *testing.T) {
	tb := sampleTable(t, 400) // k: 0..99 uniform ×4
	st := Collect(tb)
	col := expr.NewCol(0, "k")

	eq := Selectivity(expr.NewCmp(expr.EQ, col, expr.Int(5)), st)
	if eq < 0.005 || eq > 0.02 {
		t.Errorf("eq selectivity = %g, want ≈ 0.01", eq)
	}
	lt := Selectivity(expr.NewCmp(expr.LT, col, expr.Int(50)), st)
	if lt < 0.4 || lt > 0.6 {
		t.Errorf("lt selectivity = %g, want ≈ 0.5", lt)
	}
	gt := Selectivity(expr.NewCmp(expr.GT, col, expr.Int(50)), st)
	if gt < 0.4 || gt > 0.6 {
		t.Errorf("gt selectivity = %g, want ≈ 0.5", gt)
	}
	flipped := Selectivity(expr.NewCmp(expr.GT, expr.Int(50), col), st)
	if math.Abs(flipped-lt) > 0.05 {
		t.Errorf("50 > k (%g) should approximate k < 50 (%g)", flipped, lt)
	}
	ne := Selectivity(expr.NewCmp(expr.NE, col, expr.Int(5)), st)
	if math.Abs(ne-(1-eq)) > 1e-9 {
		t.Error("NE = 1 - EQ")
	}
}

func TestSelectivityConnectives(t *testing.T) {
	tb := sampleTable(t, 400)
	st := Collect(tb)
	col := expr.NewCol(0, "k")
	a := expr.NewCmp(expr.LT, col, expr.Int(50))
	b := expr.NewCmp(expr.GE, col, expr.Int(25))
	and := Selectivity(expr.NewAnd(a, b), st)
	sa, sb := Selectivity(a, st), Selectivity(b, st)
	if math.Abs(and-sa*sb) > 1e-9 {
		t.Error("AND multiplies under independence")
	}
	or := Selectivity(expr.NewOr(a, b), st)
	if math.Abs(or-(sa+sb-sa*sb)) > 1e-9 {
		t.Error("OR uses inclusion-exclusion")
	}
	not := Selectivity(expr.Not{Kid: a}, st)
	if math.Abs(not-(1-sa)) > 1e-9 {
		t.Error("NOT complements")
	}
}

func TestSelectivityLiteralsAndDefaults(t *testing.T) {
	st := &RelStats{Rows: 10, Cols: []ColStats{{}}}
	if Selectivity(expr.NewLit(value.NewBool(true)), st) != 1 {
		t.Error("TRUE has selectivity 1")
	}
	if Selectivity(expr.NewLit(value.NewBool(false)), st) != 0 {
		t.Error("FALSE has selectivity 0")
	}
	// Column-vs-column equality inside one relation.
	two := &RelStats{Rows: 100, Cols: []ColStats{{Distinct: 10}, {Distinct: 20}}}
	got := Selectivity(expr.Eq(expr.NewCol(0, "a"), expr.NewCol(1, "b")), two)
	if got != 1.0/20 {
		t.Errorf("col=col selectivity = %g", got)
	}
}

func TestSelectivityBounded(t *testing.T) {
	tb := sampleTable(t, 200)
	st := Collect(tb)
	f := func(lit int16, opPick uint8) bool {
		ops := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
		e := expr.NewCmp(ops[int(opPick)%len(ops)], expr.NewCol(0, "k"), expr.Int(int64(lit)))
		s := Selectivity(e, st)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
