package stats

import (
	"sync"

	"filterjoin/internal/expr"
)

// PredKey returns the canonical fingerprint of a relation-local
// predicate, used to key observed selectivities fed back from
// instrumented executions. Two structurally identical predicates render
// identically (bound parameters render as the literal they were planned
// with), so a feedback entry recorded from one run is found by the next
// plan of the same predicate. Nil predicates key to "".
func PredKey(e expr.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

// PredObservation is one measured selectivity for one predicate shape,
// harvested from the analyze shim after an instrumented run.
type PredObservation struct {
	// Key is PredKey of the relation-local predicate the observation is
	// about.
	Key string
	// Sel is the observed selectivity: actual output rows of the filtered
	// access divided by the relation's raw cardinality.
	Sel float64
	// LowerBound marks an observation from a partially drained scan (a
	// plan with LIMIT above, or an execution abandoned mid-run): the true
	// selectivity is at least Sel, so it may only raise an estimate,
	// never lower one.
	LowerBound bool
	// Col/Op/X describe a histogram-refinable observation: when the
	// predicate is a single column-vs-literal comparison, Col is the
	// column position, Op the comparison, and X the literal, so Apply can
	// refine that column's histogram (improving estimates for
	// neighboring predicates too). Col < 0 means not refinable.
	Col int
	Op  expr.CmpOp
	X   float64
}

// Feedback accumulates runtime cardinality observations for one stored
// relation. It lives on the relation's catalog entry, guarded by its own
// mutex (observations arrive under the engine's write lock, applications
// happen under the read lock). Apply is strictly copy-on-write: base
// statistics and their histograms — which Clone shares by pointer — are
// never mutated; refined stats are fresh objects.
type Feedback struct {
	mu      sync.Mutex
	version uint64
	preds   map[string]PredObservation
}

// NewFeedback returns an empty feedback store.
func NewFeedback() *Feedback { return &Feedback{} }

// Observe folds one observation into the store and reports whether the
// store changed (a changed store means plans built from the old
// statistics are stale). Re-observing an unchanged selectivity (within
// 10% relative) is not a change, so a converged query stream stops
// invalidating plans. A LowerBound observation only ever raises a
// recorded selectivity.
func (f *Feedback) Observe(o PredObservation) bool {
	if o.Key == "" {
		return false
	}
	o.Sel = clamp01(o.Sel)
	f.mu.Lock()
	defer f.mu.Unlock()
	cur, ok := f.preds[o.Key]
	if ok {
		if o.LowerBound && o.Sel <= cur.Sel {
			return false
		}
		if relDiff(o.Sel, cur.Sel) < 0.1 {
			return false
		}
	}
	if f.preds == nil {
		f.preds = map[string]PredObservation{}
	}
	f.preds[o.Key] = o
	f.version++
	return true
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m <= 0 {
		return 0
	}
	return d / m
}

// Version counts store changes; Apply results are cacheable per version.
func (f *Feedback) Version() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// Empty reports whether no observation is recorded.
func (f *Feedback) Empty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.preds) == 0
}

// Reset drops every observation (the relation's data changed; stale
// observations must not correct fresh statistics).
func (f *Feedback) Reset() {
	f.mu.Lock()
	f.preds = nil
	f.version++
	f.mu.Unlock()
}

// Apply returns base corrected by the recorded observations: a fresh
// RelStats whose SelFix carries the observed selectivities and whose
// refinable columns carry freshly built histograms. base (and anything
// sharing its histograms via Clone) is never mutated. With no
// observations, base itself is returned.
func (f *Feedback) Apply(base *RelStats) *RelStats {
	if base == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.preds) == 0 {
		return base
	}
	out := base.Clone()
	fix := make(map[string]float64, len(base.SelFix)+len(f.preds))
	for k, v := range base.SelFix {
		fix[k] = v
	}
	for k, o := range f.preds {
		fix[k] = o.Sel
	}
	out.SelFix = fix
	for _, o := range f.preds {
		if o.Col < 0 || o.Col >= len(out.Cols) {
			continue
		}
		if h := out.Cols[o.Col].Hist; h != nil {
			if nh := h.RefineCmp(o.Op, o.X, o.Sel); nh != nil {
				out.Cols[o.Col].Hist = nh
			}
		}
	}
	return out
}
