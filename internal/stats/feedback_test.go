package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"filterjoin/internal/expr"
)

// Refinement must preserve the histogram invariants — sorted bounds,
// non-negative bucket counts summing to the total, distinct counts
// bounded by bucket counts — for any input histogram, probe point, and
// target fraction.
func TestRefineKeepsInvariantsProperty(t *testing.T) {
	ops := []expr.CmpOp{expr.EQ, expr.LT, expr.LE, expr.GT, expr.GE}
	f := func(seed int64, x, frac float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = math.Round(r.Float64()*200) / 4
		}
		h := BuildHistogram(vs, 1+r.Intn(24))
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("base histogram broken: %v", err)
		}
		frac = math.Abs(math.Mod(frac, 1))
		x = math.Mod(math.Abs(x), 60)
		for _, op := range ops {
			ref := h.RefineCmp(op, x, frac)
			if ref == nil {
				continue // out of range or unsupported: caller keeps the base
			}
			if err := ref.CheckInvariants(); err != nil {
				t.Logf("RefineCmp(%v, %g, %g): %v", op, x, frac, err)
				return false
			}
			if ref.total != h.total {
				t.Logf("RefineCmp(%v, %g, %g): total %d -> %d", op, x, frac, h.total, ref.total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// RefineLess must move LessFraction(x) to (approximately) the observed
// fraction while leaving the base histogram untouched.
func TestRefineLessMovesFraction(t *testing.T) {
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i)
	}
	h := BuildHistogram(vs, 16)
	before := h.LessFraction(300)
	ref := h.RefineLess(300, 0.9)
	if ref == nil {
		t.Fatal("in-range refinement returned nil")
	}
	if got := ref.LessFraction(300); math.Abs(got-0.9) > 0.02 {
		t.Errorf("refined LessFraction(300) = %g, want ≈ 0.9", got)
	}
	if got := h.LessFraction(300); got != before {
		t.Errorf("base histogram mutated: LessFraction(300) %g -> %g", before, got)
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Feedback application is copy-on-write: the base stats (and any Clone
// sharing its histograms and SelFix map) must never observe a mutation,
// even while concurrent readers estimate through them. Run with -race.
func TestFeedbackApplyCopyOnWrite(t *testing.T) {
	vs := make([]float64, 500)
	for i := range vs {
		vs[i] = float64(i % 50)
	}
	base := &RelStats{
		Rows: 500,
		Cols: []ColStats{{
			Distinct: 50, HasRange: true, Min: 0, Max: 49,
			Hist: BuildHistogram(vs, 8),
		}},
	}
	shared := base.Clone() // shares the histogram and (nil) SelFix

	pred := expr.NewCmp(expr.LT, expr.Col{Idx: 0, Name: "a"}, expr.Float(10))
	fb := NewFeedback()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = Selectivity(pred, shared)
				_ = shared.Cols[0].Hist.LessFraction(10)
			}
		}
	}()

	for i := 0; i < 50; i++ {
		sel := 0.1 + float64(i%8)*0.1
		fb.Observe(PredObservation{
			Key: PredKey(pred), Sel: sel,
			Col: 0, Op: expr.LT, X: 10,
		})
		out := fb.Apply(base)
		if out == base {
			t.Fatal("Apply returned the base for a non-empty feedback store")
		}
		if v, ok := out.SelFix[PredKey(pred)]; !ok || math.Abs(v-sel) > 1e-9 {
			t.Fatalf("applied SelFix = (%g, %t), want %g", v, ok, sel)
		}
		if out.Cols[0].Hist == base.Cols[0].Hist {
			t.Fatal("refined histogram aliases the base histogram")
		}
		if err := out.Cols[0].Hist.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if base.SelFix != nil {
		t.Error("base SelFix map was published by Apply")
	}
	if got := Selectivity(pred, shared); math.Abs(got-0.2) > 0.05 {
		t.Errorf("shared clone's estimate drifted: sel = %g, want ≈ 0.2", got)
	}
}

// Observe's gating: tiny corrections are dropped, lower-bound
// observations only ever raise, and the version moves exactly when the
// store changes.
func TestFeedbackObserveGating(t *testing.T) {
	fb := NewFeedback()
	v0 := fb.Version()
	if !fb.Observe(PredObservation{Key: "p", Sel: 0.5, Col: -1}) {
		t.Fatal("first observation must store")
	}
	if fb.Version() == v0 {
		t.Fatal("storing must bump the version")
	}
	v1 := fb.Version()
	if fb.Observe(PredObservation{Key: "p", Sel: 0.52, Col: -1}) {
		t.Error("a <10% correction must be dropped")
	}
	if fb.Observe(PredObservation{Key: "p", Sel: 0.2, LowerBound: true, Col: -1}) {
		t.Error("a lower-bound observation below the stored value must be dropped")
	}
	if fb.Version() != v1 {
		t.Error("dropped observations must not move the version")
	}
	if !fb.Observe(PredObservation{Key: "p", Sel: 0.9, LowerBound: true, Col: -1}) {
		t.Error("a lower-bound observation above the stored value must store")
	}
	fb.Reset()
	if !fb.Empty() {
		t.Error("Reset must empty the store")
	}
	if fb.Version() == v1 {
		t.Error("Reset must move the version so cached applications drop")
	}
}
