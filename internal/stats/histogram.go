package stats

import (
	"fmt"
	"sort"

	"filterjoin/internal/expr"
)

// Histogram is an equi-height histogram over a numeric column. Buckets
// hold approximately equal row counts; bucket boundaries adapt to skew,
// which matters for the Fig-1 workload where a small fraction of
// departments carries most employees.
type Histogram struct {
	bounds   []float64 // len B+1: bounds[i] .. bounds[i+1] is bucket i
	counts   []int     // rows per bucket
	distinct []int     // distinct values per bucket
	total    int
}

// BuildHistogram builds an equi-height histogram with up to `buckets`
// buckets from the (unsorted is fine) sample values. Returns nil for an
// empty input.
func BuildHistogram(values []float64, buckets int) *Histogram {
	if len(values) == 0 || buckets < 1 {
		return nil
	}
	vs := make([]float64, len(values))
	copy(vs, values)
	sort.Float64s(vs)
	if buckets > len(vs) {
		buckets = len(vs)
	}
	h := &Histogram{total: len(vs)}
	per := len(vs) / buckets
	rem := len(vs) % buckets
	h.bounds = append(h.bounds, vs[0])
	i := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		if i >= len(vs) {
			break
		}
		end := i + n
		if end > len(vs) {
			end = len(vs)
		}
		// Do not split runs of equal values across buckets.
		for end < len(vs) && vs[end] == vs[end-1] {
			end++
		}
		seg := vs[i:end]
		h.counts = append(h.counts, len(seg))
		h.distinct = append(h.distinct, countDistinct(seg))
		h.bounds = append(h.bounds, seg[len(seg)-1])
		i = end
		if i >= len(vs) {
			break
		}
	}
	return h
}

func countDistinct(sorted []float64) int {
	d := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			d++
		}
	}
	return d
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// LessFraction estimates the fraction of rows with value < x.
func (h *Histogram) LessFraction(x float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	if x <= h.bounds[0] {
		return 0
	}
	if x > h.bounds[len(h.bounds)-1] {
		return 1
	}
	acc := 0.0
	for b := range h.counts {
		lo, hi := h.bounds[b], h.bounds[b+1]
		if x > hi {
			acc += float64(h.counts[b])
			continue
		}
		// x falls inside bucket b: linear interpolation.
		if hi > lo {
			acc += float64(h.counts[b]) * (x - lo) / (hi - lo)
		}
		break
	}
	return acc / float64(h.total)
}

// RefineCmp returns a fresh histogram adjusted so the given comparison
// against x estimates close to the observed selectivity sel, or nil when
// the observation is not representable (x outside the value range, or an
// unsupported operator). The receiver is never mutated — refined
// statistics must not leak into RelStats clones sharing the old
// histogram pointer.
func (h *Histogram) RefineCmp(op expr.CmpOp, x, sel float64) *Histogram {
	if h == nil || h.total == 0 {
		return nil
	}
	sel = clamp01(sel)
	switch op {
	case expr.EQ:
		return h.RefineEq(x, sel)
	case expr.LT, expr.LE:
		return h.RefineLess(x, sel)
	case expr.GT, expr.GE:
		return h.RefineLess(x, 1-sel)
	}
	return nil
}

// RefineLess returns a fresh histogram whose LessFraction(x) is frac (up
// to integer rounding), redistributing the row mass below and above x
// while preserving the total row count, the sorted bound sequence, and
// non-negative bucket heights. When x falls strictly inside a bucket,
// that bucket is split at x (bounds stay sorted). Returns nil when x is
// outside the histogram's range.
func (h *Histogram) RefineLess(x, frac float64) *Histogram {
	if h == nil || h.total == 0 {
		return nil
	}
	if x <= h.bounds[0] || x > h.bounds[len(h.bounds)-1] {
		return nil
	}
	frac = clamp01(frac)
	// Rebuild the bucket sequence with x as a boundary, tracking the
	// fractional mass of each bucket and which group (below/above x) it
	// belongs to.
	var (
		bounds   = []float64{h.bounds[0]}
		mass     []float64
		dist     []float64
		belowIdx int // buckets [0, belowIdx) lie below x
	)
	for b := range h.counts {
		lo, hi := h.bounds[b], h.bounds[b+1]
		c, d := float64(h.counts[b]), float64(h.distinct[b])
		if x > lo && x < hi {
			// Split at x by the same linear interpolation LessFraction
			// uses inside a bucket.
			f := (x - lo) / (hi - lo)
			bounds = append(bounds, x, hi)
			mass = append(mass, c*f, c*(1-f))
			dist = append(dist, d*f, d*(1-f))
			belowIdx = len(mass) - 1
			continue
		}
		bounds = append(bounds, hi)
		mass = append(mass, c)
		dist = append(dist, d)
		if hi <= x {
			belowIdx = len(mass)
		}
	}
	// Scale the below-x group to frac*total and the rest to the
	// remainder; cumulative rounding keeps the total exact.
	target := int(frac*float64(h.total) + 0.5)
	if target > h.total {
		target = h.total
	}
	if belowIdx == len(mass) {
		// x at (or beyond) the last bound: there is no above-x group to
		// absorb the remainder, so the below group must keep every row.
		target = h.total
	}
	counts := make([]int, len(mass))
	scaleGroup(mass[:belowIdx], counts[:belowIdx], target)
	scaleGroup(mass[belowIdx:], counts[belowIdx:], h.total-target)
	distinct := make([]int, len(mass))
	for i := range distinct {
		distinct[i] = clampDistinct(dist[i], counts[i])
	}
	return &Histogram{bounds: bounds, counts: counts, distinct: distinct, total: h.total}
}

// RefineEq returns a fresh histogram whose EqFraction(x) is close to
// frac: the bucket holding x is rescaled to the observed mass and the
// remaining buckets absorb the difference proportionally, preserving the
// total. Returns nil when x is outside the histogram's range.
func (h *Histogram) RefineEq(x, frac float64) *Histogram {
	if h == nil || h.total == 0 {
		return nil
	}
	if x < h.bounds[0] || x > h.bounds[len(h.bounds)-1] {
		return nil
	}
	frac = clamp01(frac)
	target := -1
	for b := range h.counts {
		if x >= h.bounds[b] && x <= h.bounds[b+1] {
			target = b
			break
		}
	}
	if target < 0 {
		return nil
	}
	d := h.distinct[target]
	if d < 1 {
		d = 1
	}
	if len(h.counts) == 1 {
		// Single bucket: no other bucket can absorb mass, so express the
		// refinement through the distinct count instead —
		// EqFraction = total/d/total = 1/d, so d ≈ 1/frac.
		nd := float64(h.total)
		if frac > 0 {
			nd = 1 / frac
		}
		return &Histogram{
			bounds:   append([]float64(nil), h.bounds...),
			counts:   []int{h.total},
			distinct: []int{clampDistinct(nd, h.total)},
			total:    h.total,
		}
	}
	// EqFraction(x) = counts[b] / distinct[b] / total.
	want := int(frac*float64(h.total)*float64(d) + 0.5)
	if want > h.total {
		want = h.total
	}
	counts := make([]int, len(h.counts))
	counts[target] = want
	// Other buckets share total-want proportionally to their old mass.
	var others []float64
	for b, c := range h.counts {
		if b != target {
			others = append(others, float64(c))
		}
	}
	scaled := make([]int, len(others))
	scaleGroup(others, scaled, h.total-want)
	j := 0
	for b := range counts {
		if b != target {
			counts[b] = scaled[j]
			j++
		}
	}
	distinct := make([]int, len(h.distinct))
	for b := range distinct {
		distinct[b] = clampDistinct(float64(h.distinct[b]), counts[b])
	}
	bounds := make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	return &Histogram{bounds: bounds, counts: counts, distinct: distinct, total: h.total}
}

// scaleGroup scales the fractional masses onto integer counts summing
// exactly to target, by cumulative rounding (each prefix sum is rounded
// independently, so no bucket drifts more than one row and the group
// total is exact). All-zero masses spread the target over the buckets
// evenly.
func scaleGroup(mass []float64, out []int, target int) {
	if len(mass) == 0 || target <= 0 {
		return
	}
	sum := 0.0
	for _, m := range mass {
		sum += m
	}
	acc, used := 0.0, 0
	for i, m := range mass {
		if sum > 0 {
			acc += m / sum * float64(target)
		} else {
			acc += float64(target) / float64(len(mass))
		}
		c := int(acc+0.5) - used
		if c < 0 {
			c = 0
		}
		out[i] = c
		used += c
	}
	// Any residue from clamping lands in the last bucket.
	if used != target {
		last := len(out) - 1
		out[last] += target - used
		if out[last] < 0 {
			out[last] = 0
		}
	}
}

// clampDistinct bounds a (possibly fractional) distinct estimate by the
// bucket's row count, keeping at least one distinct value in any
// non-empty bucket.
func clampDistinct(d float64, count int) int {
	v := int(d + 0.5)
	if v > count {
		v = count
	}
	if count > 0 && v < 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// CheckInvariants verifies the structural invariants every histogram —
// collected or refined — must satisfy: sorted bounds, one more bound
// than buckets, non-negative heights, per-bucket distinct counts within
// [1, count] for non-empty buckets, and counts summing to the total.
func (h *Histogram) CheckInvariants() error {
	if h == nil {
		return nil
	}
	if len(h.bounds) != len(h.counts)+1 || len(h.distinct) != len(h.counts) {
		return fmt.Errorf("histogram: %d bounds for %d buckets (%d distinct)", len(h.bounds), len(h.counts), len(h.distinct))
	}
	sum := 0
	for b := range h.counts {
		if h.bounds[b] > h.bounds[b+1] {
			return fmt.Errorf("histogram: bounds out of order at bucket %d: %v > %v", b, h.bounds[b], h.bounds[b+1])
		}
		if h.counts[b] < 0 {
			return fmt.Errorf("histogram: negative count %d at bucket %d", h.counts[b], b)
		}
		if h.distinct[b] < 0 || h.distinct[b] > h.counts[b] || (h.counts[b] > 0 && h.distinct[b] < 1) {
			return fmt.Errorf("histogram: distinct %d outside [1,%d] at bucket %d", h.distinct[b], h.counts[b], b)
		}
		sum += h.counts[b]
	}
	if sum != h.total {
		return fmt.Errorf("histogram: counts sum to %d, total is %d", sum, h.total)
	}
	return nil
}

// EqFraction estimates the fraction of rows with value == x.
func (h *Histogram) EqFraction(x float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	if x < h.bounds[0] || x > h.bounds[len(h.bounds)-1] {
		return 0
	}
	// Buckets never split a run of equal values, so the first bucket whose
	// inclusive [lo, hi] range contains x holds every row equal to x.
	for b := range h.counts {
		lo, hi := h.bounds[b], h.bounds[b+1]
		if x < lo || x > hi {
			continue
		}
		d := h.distinct[b]
		if d < 1 {
			d = 1
		}
		return float64(h.counts[b]) / float64(d) / float64(h.total)
	}
	return 0
}
