package stats

import "sort"

// Histogram is an equi-height histogram over a numeric column. Buckets
// hold approximately equal row counts; bucket boundaries adapt to skew,
// which matters for the Fig-1 workload where a small fraction of
// departments carries most employees.
type Histogram struct {
	bounds   []float64 // len B+1: bounds[i] .. bounds[i+1] is bucket i
	counts   []int     // rows per bucket
	distinct []int     // distinct values per bucket
	total    int
}

// BuildHistogram builds an equi-height histogram with up to `buckets`
// buckets from the (unsorted is fine) sample values. Returns nil for an
// empty input.
func BuildHistogram(values []float64, buckets int) *Histogram {
	if len(values) == 0 || buckets < 1 {
		return nil
	}
	vs := make([]float64, len(values))
	copy(vs, values)
	sort.Float64s(vs)
	if buckets > len(vs) {
		buckets = len(vs)
	}
	h := &Histogram{total: len(vs)}
	per := len(vs) / buckets
	rem := len(vs) % buckets
	h.bounds = append(h.bounds, vs[0])
	i := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		if i >= len(vs) {
			break
		}
		end := i + n
		if end > len(vs) {
			end = len(vs)
		}
		// Do not split runs of equal values across buckets.
		for end < len(vs) && vs[end] == vs[end-1] {
			end++
		}
		seg := vs[i:end]
		h.counts = append(h.counts, len(seg))
		h.distinct = append(h.distinct, countDistinct(seg))
		h.bounds = append(h.bounds, seg[len(seg)-1])
		i = end
		if i >= len(vs) {
			break
		}
	}
	return h
}

func countDistinct(sorted []float64) int {
	d := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			d++
		}
	}
	return d
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// LessFraction estimates the fraction of rows with value < x.
func (h *Histogram) LessFraction(x float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	if x <= h.bounds[0] {
		return 0
	}
	if x > h.bounds[len(h.bounds)-1] {
		return 1
	}
	acc := 0.0
	for b := range h.counts {
		lo, hi := h.bounds[b], h.bounds[b+1]
		if x > hi {
			acc += float64(h.counts[b])
			continue
		}
		// x falls inside bucket b: linear interpolation.
		if hi > lo {
			acc += float64(h.counts[b]) * (x - lo) / (hi - lo)
		}
		break
	}
	return acc / float64(h.total)
}

// EqFraction estimates the fraction of rows with value == x.
func (h *Histogram) EqFraction(x float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	if x < h.bounds[0] || x > h.bounds[len(h.bounds)-1] {
		return 0
	}
	// Buckets never split a run of equal values, so the first bucket whose
	// inclusive [lo, hi] range contains x holds every row equal to x.
	for b := range h.counts {
		lo, hi := h.bounds[b], h.bounds[b+1]
		if x < lo || x > hi {
			continue
		}
		d := h.distinct[b]
		if d < 1 {
			d = 1
		}
		return float64(h.counts[b]) / float64(d) / float64(h.total)
	}
	return 0
}
