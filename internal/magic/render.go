package magic

import (
	"fmt"
	"strings"

	"filterjoin/internal/expr"
	"filterjoin/internal/query"
)

// RenderBlock renders a query block as SQL text. Column references print
// through the qualified names captured at bind time, so the output is
// readable (and re-parseable for blocks built by the SQL front-end).
func RenderBlock(res query.SchemaResolver, b *query.Block) (string, error) {
	layout, err := b.Layout(res)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if b.Distinct {
		sb.WriteString("DISTINCT ")
	}
	switch {
	case b.HasAggregation():
		first := true
		for _, g := range b.GroupBy {
			if !first {
				sb.WriteString(", ")
			}
			sb.WriteString(layout.Schema.Col(g).QualifiedName())
			first = false
		}
		for _, a := range b.Aggs {
			if !first {
				sb.WriteString(", ")
			}
			sb.WriteString(renderAgg(a, layout))
			first = false
		}
	case b.Proj != nil:
		for i, o := range b.Proj {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(renderExpr(o.Expr, layout))
			if o.Name != "" && o.Name != renderExpr(o.Expr, layout) {
				sb.WriteString(" AS ")
				sb.WriteString(o.Name)
			}
		}
	default:
		sb.WriteString("*")
	}
	sb.WriteString("\nFROM ")
	for i, r := range b.Rels {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.Name)
		if r.Alias != "" && r.Alias != r.Name {
			sb.WriteString(" ")
			sb.WriteString(r.Alias)
		}
	}
	if len(b.Preds) > 0 {
		sb.WriteString("\nWHERE ")
		for i, p := range b.Preds {
			if i > 0 {
				sb.WriteString("\n  AND ")
			}
			sb.WriteString(renderExpr(p, layout))
		}
	}
	if len(b.GroupBy) > 0 {
		sb.WriteString("\nGROUP BY ")
		for i, g := range b.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(layout.Schema.Col(g).QualifiedName())
		}
	}
	if b.Having != nil || len(b.OrderBy) > 0 || b.Limit > 0 {
		outSchema, err := b.OutputSchema(res, "")
		if err != nil {
			return "", err
		}
		outLayout := &query.Layout{Schema: outSchema}
		if b.Having != nil {
			sb.WriteString("\nHAVING ")
			sb.WriteString(renderExpr(b.Having, outLayout))
		}
		if len(b.OrderBy) > 0 {
			sb.WriteString("\nORDER BY ")
			for i, oi := range b.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(outSchema.Col(oi.Col).QualifiedName())
				if oi.Desc {
					sb.WriteString(" DESC")
				}
			}
		}
		if b.Limit > 0 {
			fmt.Fprintf(&sb, "\nLIMIT %d", b.Limit)
		}
	}
	return sb.String(), nil
}

func renderAgg(a expr.AggSpec, layout *query.Layout) string {
	var inner string
	if a.Arg == nil {
		inner = "*"
	} else {
		inner = renderExpr(a.Arg, layout)
	}
	s := fmt.Sprintf("%s(%s)", a.Kind, inner)
	if a.Name != "" && a.Name != s {
		s += " AS " + a.Name
	}
	return s
}

// renderExpr prints an expression with layout-resolved column names, so
// even programmatically built expressions (whose Col.Name may be empty)
// render readably.
func renderExpr(e expr.Expr, layout *query.Layout) string {
	switch x := e.(type) {
	case expr.Col:
		if x.Idx >= 0 && x.Idx < layout.Schema.Len() {
			return layout.Schema.Col(x.Idx).QualifiedName()
		}
		return x.String()
	case expr.Cmp:
		return fmt.Sprintf("%s %s %s", renderExpr(x.L, layout), x.Op, renderExpr(x.R, layout))
	case expr.And:
		parts := make([]string, len(x.Kids))
		for i, k := range x.Kids {
			parts[i] = renderExpr(k, layout)
		}
		return strings.Join(parts, " AND ")
	case expr.Or:
		parts := make([]string, len(x.Kids))
		for i, k := range x.Kids {
			parts[i] = "(" + renderExpr(k, layout) + ")"
		}
		return strings.Join(parts, " OR ")
	case expr.Not:
		return "NOT (" + renderExpr(x.Kid, layout) + ")"
	case expr.Arith:
		return fmt.Sprintf("(%s %s %s)", renderExpr(x.L, layout), x.Op, renderExpr(x.R, layout))
	default:
		return e.String()
	}
}

// SQL renders the whole rewriting in the Fig 2 style: three CREATE VIEW
// statements followed by the rewritten query.
func (r *Rewritten) SQL() (string, error) {
	var sb strings.Builder
	for _, name := range []string{r.PartialResult, r.FilterView, r.RestrictedView} {
		e, err := r.cat.Get(name)
		if err != nil {
			return "", err
		}
		body, err := RenderBlock(r.cat, e.ViewDef)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "CREATE VIEW %s AS\n(%s);\n\n", name, indent(body))
	}
	final, err := RenderBlock(r.cat, r.Final)
	if err != nil {
		return "", err
	}
	sb.WriteString(final)
	sb.WriteString(";\n")
	return sb.String(), nil
}

func indent(s string) string {
	return strings.ReplaceAll(s, "\n", "\n ")
}
