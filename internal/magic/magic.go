// Package magic implements classical magic-sets rewriting as a *query
// transformation* — the pre-paper state of the art (Starburst [MP94]).
// Given a query block, a view to restrict, and a SIPS (the subset of the
// other relations whose join produces the bindings), it materializes the
// Fig 2 structure as catalog views:
//
//	PartialResult  — the join of the SIPS relations with their predicates
//	Filter         — SELECT DISTINCT <bound attrs> FROM PartialResult
//	Restricted<V>  — the view body joined with Filter on the bound columns
//	final block    — PartialResult ⋈ Restricted<V> ⋈ (remaining relations)
//
// The paper's contribution (internal/core) subsumes this transformation
// as one join method among many; this package exists as the baseline the
// experiments compare against, and to render the rewriting as SQL text.
package magic

import (
	"fmt"
	"sort"

	"filterjoin/internal/catalog"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
)

// Rewritten describes one completed magic rewriting.
type Rewritten struct {
	PartialResult  string // registered view name
	FilterView     string
	RestrictedView string
	Final          *query.Block // rewritten top-level block
	BoundCols      []int        // view output columns receiving bindings

	cat *catalog.Catalog
}

// Drop removes the transient views from the catalog.
func (r *Rewritten) Drop() {
	r.cat.Drop(r.PartialResult)
	r.cat.Drop(r.FilterView)
	r.cat.Drop(r.RestrictedView)
}

var rewriteSeq int

// Rewrite performs the magic-sets transformation of block b, restricting
// the view at relation ordinal viewIdx using bindings produced by the
// SIPS relations (ordinals into b.Rels, excluding viewIdx). All equi
// predicates between the SIPS set and the view become the filter
// attributes. The returned block references freshly registered views.
func Rewrite(cat *catalog.Catalog, b *query.Block, viewIdx int, sips []int) (*Rewritten, error) {
	e, err := cat.Get(b.Rels[viewIdx].Name)
	if err != nil {
		return nil, err
	}
	if e.Kind != catalog.KindView {
		return nil, fmt.Errorf("magic: relation %q is not a view", b.Rels[viewIdx].Name)
	}
	layout, err := b.Layout(cat)
	if err != nil {
		return nil, err
	}
	inSips := map[int]bool{}
	for _, s := range sips {
		if s == viewIdx {
			return nil, fmt.Errorf("magic: SIPS cannot include the restricted view itself")
		}
		inSips[s] = true
	}
	if len(inSips) == 0 {
		return nil, fmt.Errorf("magic: SIPS is empty")
	}

	sipsSet := query.NewRelSet(sips...)
	viewOffset := layout.Offsets[viewIdx]
	viewWidth := layout.Widths[viewIdx]

	// Find the columns binding SIPS relations to view columns, under the
	// transitive closure of the query's equalities (E.did=D.did and
	// E.did=V.did together let a SIPS of {D} bind V.did).
	parent := make([]int, layout.Schema.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range b.Preds {
		c, ok := p.(expr.Cmp)
		if !ok || c.Op != expr.EQ {
			continue
		}
		lc, lok := c.L.(expr.Col)
		rc, rok := c.R.(expr.Col)
		if lok && rok {
			parent[find(lc.Idx)] = find(rc.Idx)
		}
	}
	var boundOuter, boundView []int // block layout columns
	seenView := map[int]bool{}
	for vcol := layout.Offsets[viewIdx]; vcol < layout.Offsets[viewIdx]+layout.Widths[viewIdx]; vcol++ {
		if seenView[vcol] {
			continue
		}
		for ocol := 0; ocol < layout.Schema.Len(); ocol++ {
			if !sipsSet.Has(layout.RelOfCol(ocol)) || find(ocol) != find(vcol) {
				continue
			}
			boundView = append(boundView, vcol)
			boundOuter = append(boundOuter, ocol)
			seenView[vcol] = true
			break
		}
	}
	if len(boundView) == 0 {
		return nil, fmt.Errorf("magic: no equi predicate (even transitively) binds the SIPS set to the view")
	}

	// Bindings must have provenance into the view body.
	viewLayout, err := e.ViewDef.Layout(cat)
	if err != nil {
		return nil, err
	}
	prov := e.ViewDef.OutputProvenance(viewLayout.Schema.Len())
	bodyCols := make([]int, len(boundView))
	for i, bc := range boundView {
		local := bc - viewOffset
		if local < 0 || local >= len(prov) || prov[local] < 0 {
			return nil, fmt.Errorf("magic: view output column %d has no direct provenance (aggregate?)", local)
		}
		bodyCols[i] = prov[local]
	}

	rewriteSeq++
	prName := fmt.Sprintf("PartialResult_%d", rewriteSeq)
	fName := fmt.Sprintf("Filter_%d", rewriteSeq)
	rvName := fmt.Sprintf("Restricted%s_%d", e.Name, rewriteSeq)

	// ---- PartialResult: the SIPS join with its internal predicates ----
	sortedSips := append([]int(nil), sips...)
	sort.Ints(sortedSips)
	pr := &query.Block{}
	// Map: original block column -> PartialResult output position.
	prPos := make([]int, layout.Schema.Len())
	for i := range prPos {
		prPos[i] = -1
	}
	out := 0
	for _, s := range sortedSips {
		pr.Rels = append(pr.Rels, b.Rels[s])
		for j := 0; j < layout.Widths[s]; j++ {
			prPos[layout.Offsets[s]+j] = out
			out++
		}
	}
	// Remap a block expression into PartialResult's own layout.
	prLayoutMap := prPos // same mapping
	for _, p := range b.Preds {
		rels := query.PredRels(p, layout)
		if rels != 0 && rels.SubsetOf(sipsSet) {
			pr.Preds = append(pr.Preds, expr.Remap(p, prLayoutMap))
		}
	}
	// Output: every SIPS column, uniquely named "<binding>_<col>".
	for _, s := range sortedSips {
		for j := 0; j < layout.Widths[s]; j++ {
			col := layout.Schema.Col(layout.Offsets[s] + j)
			pr.Proj = append(pr.Proj, query.Output{
				Expr: expr.NewCol(prPos[layout.Offsets[s]+j], col.QualifiedName()),
				Name: fmt.Sprintf("%s_%s", b.Rels[s].Binding(), col.Name),
			})
		}
	}
	cat.AddView(prName, pr)

	// ---- Filter: SELECT DISTINCT bound attrs FROM PartialResult ----
	fb := &query.Block{
		Rels:     []query.RelRef{{Name: prName}},
		Distinct: true,
	}
	for i, oc := range boundOuter {
		fb.Proj = append(fb.Proj, query.Output{
			Expr: expr.NewCol(prPos[oc], layout.Schema.Col(oc).QualifiedName()),
			Name: fmt.Sprintf("k%d", i),
		})
	}
	cat.AddView(fName, fb)

	// ---- Restricted view: the body joined with Filter ----
	rv := e.ViewDef.Clone()
	w := viewLayout.Schema.Len()
	if !rv.HasAggregation() && rv.Proj == nil {
		rv.Proj = make([]query.Output, w)
		for c := 0; c < w; c++ {
			col := viewLayout.Schema.Col(c)
			rv.Proj[c] = query.Output{Expr: expr.NewCol(c, col.QualifiedName()), Name: col.Name}
		}
	}
	rv.Rels = append(rv.Rels, query.RelRef{Name: fName})
	for j, bc := range bodyCols {
		rv.Preds = append(rv.Preds, expr.Eq(
			expr.NewCol(bc, viewLayout.Schema.Col(bc).QualifiedName()),
			expr.NewCol(w+j, fmt.Sprintf("%s.k%d", fName, j)),
		))
	}
	cat.AddView(rvName, rv)

	// ---- Final block: PartialResult ⋈ RestrictedView ⋈ remaining ----
	// HAVING/ORDER BY/LIMIT address the output layout, which the rewrite
	// preserves, so they carry over unchanged.
	final := &query.Block{
		Distinct: b.Distinct,
		Having:   b.Having,
		OrderBy:  append([]query.OrderItem(nil), b.OrderBy...),
		Limit:    b.Limit,
	}
	final.Rels = append(final.Rels,
		query.RelRef{Name: prName, Alias: "P"},
		query.RelRef{Name: rvName, Alias: b.Rels[viewIdx].Binding()},
	)
	// New layout map: original block col -> final block col.
	finalPos := make([]int, layout.Schema.Len())
	for i := range finalPos {
		finalPos[i] = -1
	}
	prWidth := out
	for c, p := range prPos {
		if p >= 0 {
			finalPos[c] = p
		}
	}
	for j := 0; j < viewWidth; j++ {
		finalPos[viewOffset+j] = prWidth + j
	}
	nextOff := prWidth + viewWidth
	for r := range b.Rels {
		if r == viewIdx || sipsSet.Has(r) {
			continue
		}
		final.Rels = append(final.Rels, b.Rels[r])
		for j := 0; j < layout.Widths[r]; j++ {
			finalPos[layout.Offsets[r]+j] = nextOff
			nextOff++
		}
	}
	// Predicates not consumed inside PartialResult carry over.
	for _, p := range b.Preds {
		rels := query.PredRels(p, layout)
		if rels != 0 && rels.SubsetOf(sipsSet) {
			continue
		}
		final.Preds = append(final.Preds, expr.Remap(p, finalPos))
	}
	// Output shape.
	if b.HasAggregation() {
		for _, g := range b.GroupBy {
			final.GroupBy = append(final.GroupBy, finalPos[g])
		}
		for _, a := range b.Aggs {
			final.Aggs = append(final.Aggs, expr.RemapAgg(a, finalPos))
		}
	} else if b.Proj != nil {
		for _, o := range b.Proj {
			final.Proj = append(final.Proj, query.Output{Expr: expr.Remap(o.Expr, finalPos), Name: o.Name})
		}
	} else {
		final.Proj = make([]query.Output, layout.Schema.Len())
		for c := 0; c < layout.Schema.Len(); c++ {
			col := layout.Schema.Col(c)
			final.Proj[c] = query.Output{Expr: expr.NewCol(finalPos[c], col.QualifiedName()), Name: col.Name}
		}
	}

	return &Rewritten{
		PartialResult:  prName,
		FilterView:     fName,
		RestrictedView: rvName,
		Final:          final,
		BoundCols:      boundView,
		cat:            cat,
	}, nil
}
