package magic_test

import (
	"sort"
	"strings"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/magic"
	"filterjoin/internal/opt"
	"filterjoin/internal/query"
)

func run(t *testing.T, cat *catalog.Catalog, b *query.Block) []string {
	t.Helper()
	o := opt.New(cat, cost.DefaultModel())
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, p.Make())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func fig1Cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	p := datagen.DefaultFig1()
	p.NEmp, p.NDept = 4000, 100
	cat, err := datagen.Fig1Catalog(p)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestRewriteEquivalence: the classic magic rewriting must preserve
// query results for every legal SIPS.
func TestRewriteEquivalence(t *testing.T) {
	cat := fig1Cat(t)
	want := run(t, cat, datagen.Fig1Query())
	if len(want) == 0 {
		t.Fatal("fig1 query returned no rows")
	}

	// SIPS variants from Fig 3: {E,D} (orders 1-2), {E} (order 4), and
	// {D} (order 3, bound through the transitive closure of
	// E.did=D.did ∧ E.did=V.did).
	for _, tc := range []struct {
		name string
		sips []int
		ok   bool
	}{
		{"E_and_D", []int{0, 1}, true},
		{"E_only", []int{0}, true},
		{"D_only", []int{1}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rw, err := magic.Rewrite(cat, datagen.Fig1Query(), 2, tc.sips)
			if !tc.ok {
				if err == nil {
					rw.Drop()
					t.Fatal("expected rewrite to fail (no binding predicate)")
				}
				return
			}
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			defer rw.Drop()
			got := run(t, cat, rw.Final)
			if len(got) != len(want) {
				t.Fatalf("rewritten query row count %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRewriteAggregatedTopQuery rewrites a query whose top level itself
// aggregates: group-by columns and aggregate arguments must remap into
// the rewritten block correctly.
func TestRewriteAggregatedTopQuery(t *testing.T) {
	cat := fig1Cat(t)
	// SELECT E.did, COUNT(*) FROM Emp E, Dept D, DepAvgSal V
	// WHERE joins AND E.sal > V.avgsal AND D.budget > 100000 GROUP BY E.did
	top := datagen.Fig1Query()
	top.Proj = nil
	top.GroupBy = []int{1}
	top.Aggs = []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}}

	want := run(t, cat, top)
	if len(want) == 0 {
		t.Fatal("no groups")
	}
	rw, err := magic.Rewrite(cat, top, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Drop()
	got := run(t, cat, rw.Final)
	if len(got) != len(want) {
		t.Fatalf("groups: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("group %d: %s vs %s", i, got[i], want[i])
		}
	}
}

// TestRewriteSQLRendering checks the Fig 2 style SQL text.
func TestRewriteSQLRendering(t *testing.T) {
	cat := fig1Cat(t)
	rw, err := magic.Rewrite(cat, datagen.Fig1Query(), 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Drop()
	text, err := rw.SQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE VIEW PartialResult", "CREATE VIEW Filter",
		"CREATE VIEW RestrictedDepAvgSal", "SELECT DISTINCT", "GROUP BY",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered SQL missing %q:\n%s", want, text)
		}
	}
}

// TestRenderBlockRoundTrip renders the Fig 1 query and checks the key
// clauses survive.
func TestRenderBlockRoundTrip(t *testing.T) {
	cat := fig1Cat(t)
	text, err := magic.RenderBlock(cat, datagen.Fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT", "FROM Emp E, Dept D, DepAvgSal V", "E.did = D.did", "E.sal > V.avgsal"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered block missing %q:\n%s", want, text)
		}
	}
}
