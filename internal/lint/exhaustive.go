package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"filterjoin/internal/lint/analysis"
)

// Exhaustive enforces full variant coverage on the dispatch points the
// paper's Limitation 3 argument rests on. Two rules:
//
//   - Switches over the plan-variant enums (core.FilterRepr,
//     core.InnerAccess, catalog.Kind) must list every declared
//     constant of the enum. A default clause does NOT excuse a missing
//     variant: the filter-set variant space is a small closed set by
//     design, and a new variant silently swallowed by a default is
//     exactly the bug class this analyzer exists to surface.
//   - Type switches over the expression interfaces (expr.Expr,
//     sql.AExpr) must either carry a default clause or cover every
//     implementing type declared in the interface's package.
var Exhaustive = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over plan-variant enums and expression type switches to cover every variant",
	Run:  runExhaustive,
}

// enum2 is a (package path, type name) pair.
type enum2 struct{ pkg, name string }

// exhaustiveEnums are the closed variant enums (strict: default does
// not excuse a missing member).
var exhaustiveEnums = map[enum2]bool{
	{"filterjoin/internal/core", "FilterRepr"}:  true,
	{"filterjoin/internal/core", "InnerAccess"}: true,
	{"filterjoin/internal/catalog", "Kind"}:     true,
}

// exhaustiveIfaces are the expression interfaces whose type switches
// must cover every implementer unless they carry a default clause.
var exhaustiveIfaces = map[enum2]bool{
	{"filterjoin/internal/expr", "Expr"}: true,
	{"filterjoin/internal/sql", "AExpr"}: true,
}

func runExhaustive(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch sw := n.(type) {
		case *ast.SwitchStmt:
			checkEnumSwitch(pass, sw)
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(pass, sw)
		}
		return true
	})
	return nil
}

func checkEnumSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !exhaustiveEnums[enum2{obj.Pkg().Path(), obj.Name()}] {
		return
	}
	// Every package-level constant of the enum type, by constant value.
	members := map[string]string{} // value repr -> name
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			members[c.Val().ExactString()] = c.Name()
		}
	}
	if len(members) < 2 {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		for _, e := range cc.List {
			if ctv, ok := pass.TypesInfo.Types[e]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range members {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Switch, "switch over %s.%s is missing variant%s %s (a default clause does not cover new variants)",
			obj.Pkg().Name(), obj.Name(), plural(missing), strings.Join(missing, ", "))
	}
}

func checkTypeSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt) {
	// Extract the switched expression from `x := e.(type)` or `e.(type)`.
	var assert *ast.TypeAssertExpr
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	case *ast.ExprStmt:
		assert, _ = s.X.(*ast.TypeAssertExpr)
	}
	if assert == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[assert.X]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !exhaustiveIfaces[enum2{obj.Pkg().Path(), obj.Name()}] {
		return
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return
	}
	covered := map[*types.TypeName]bool{}
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // default clause: partial handling is explicit
		}
		for _, e := range cc.List {
			ctv, ok := pass.TypesInfo.Types[e]
			if !ok || ctv.Type == nil {
				continue
			}
			t := ctv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if n, isNamed := t.(*types.Named); isNamed {
				covered[n.Obj()] = true
			}
		}
	}
	// Implementers declared in the interface's own package.
	var missing []string
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn == obj || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if analysis.Implements(tn.Type(), iface) && !covered[tn] {
			missing = append(missing, tn.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Switch, "type switch over %s.%s has no default and is missing implementer%s %s",
			obj.Pkg().Name(), obj.Name(), plural(missing), strings.Join(missing, ", "))
	}
}

func plural(s []string) string {
	if len(s) > 1 {
		return "s"
	}
	return ""
}
