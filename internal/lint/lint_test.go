package lint_test

import (
	"testing"

	"filterjoin/internal/lint"
	"filterjoin/internal/lint/analysistest"
	"filterjoin/internal/lint/loader"
)

// Each analyzer runs over its golden fixture package: flagged lines
// carry `// want` comments, clean idioms and //lint:ignore suppression
// carry none.

func TestOpclose(t *testing.T)    { analysistest.Run(t, lint.Opclose, "opclose") }
func TestCostcharge(t *testing.T) { analysistest.Run(t, lint.Costcharge, "costcharge") }
func TestOrderprop(t *testing.T)  { analysistest.Run(t, lint.Orderprop, "orderprop") }
func TestExhaustive(t *testing.T) { analysistest.Run(t, lint.Exhaustive, "exhaustive") }
func TestFloatcmp(t *testing.T)   { analysistest.Run(t, lint.Floatcmp, "floatcmp") }
func TestSitefault(t *testing.T)  { analysistest.Run(t, lint.Sitefault, "sitefault") }

// TestRealTreeClean is the suite's anchor: the shipped tree must be
// violation-free, so any regression an analyzer can see fails `go test`
// as well as the CI optlint step.
func TestRealTreeClean(t *testing.T) {
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(l.Fset, pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s (%s)", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}

// TestAllNamesUnique guards the suppression syntax: directive names
// must match analyzer names exactly.
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
