package lint_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"filterjoin/internal/lint"
	"filterjoin/internal/lint/analysistest"
	"filterjoin/internal/lint/loader"
)

// Each analyzer runs over its golden fixture package: flagged lines
// carry `// want` comments, clean idioms and //lint:ignore suppression
// carry none.

func TestOpclose(t *testing.T)     { analysistest.Run(t, lint.Opclose, "opclose") }
func TestCostcharge(t *testing.T)  { analysistest.Run(t, lint.Costcharge, "costcharge") }
func TestOrderprop(t *testing.T)   { analysistest.Run(t, lint.Orderprop, "orderprop") }
func TestExhaustive(t *testing.T)  { analysistest.Run(t, lint.Exhaustive, "exhaustive") }
func TestFloatcmp(t *testing.T)    { analysistest.Run(t, lint.Floatcmp, "floatcmp") }
func TestSitefault(t *testing.T)   { analysistest.Run(t, lint.Sitefault, "sitefault") }
func TestLockepoch(t *testing.T)   { analysistest.Run(t, lint.Lockepoch, "lockepoch") }
func TestSharesafe(t *testing.T)   { analysistest.Run(t, lint.Sharesafe, "sharesafe") }
func TestParambind(t *testing.T)   { analysistest.Run(t, lint.Parambind, "parambind") }
func TestCtxcancel(t *testing.T)   { analysistest.Run(t, lint.Ctxcancel, "ctxcancel") }
func TestBatchparity(t *testing.T) { analysistest.Run(t, lint.Batchparity, "batchparity") }

// TestRealTreeClean is the suite's anchor: the shipped tree must be
// violation-free, so any regression an analyzer can see fails `go test`
// as well as the CI optlint step.
func TestRealTreeClean(t *testing.T) {
	l, err := loader.NewShared(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(l.Fset, pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s (%s)", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}

// TestAllNamesUnique guards the suppression syntax: directive names
// must match analyzer names exactly.
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestSuppressionAudit holds every //lint:ignore in the tree — real
// packages and analyzer fixtures alike — to three rules: it names only
// existing analyzers, it carries a non-empty reason, and it is not
// stale (suppressing nothing: with suppression disabled, the named
// analyzer must report on the directive's line or the next one). A
// directive that fails any rule is either a typo that silently
// suppresses nothing or dead weight that hides future regressions.
func TestSuppressionAudit(t *testing.T) {
	l, err := loader.NewShared(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	for _, dir := range fixtures {
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatalf("abs: %v", err)
		}
		pkg, err := l.LoadDir(abs, "fixture/"+filepath.Base(dir))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}

	known := map[string]bool{}
	for _, a := range lint.All() {
		known[a.Name] = true
	}

	raw, err := lint.RunRaw(l.Fset, pkgs, lint.All())
	if err != nil {
		t.Fatalf("raw run: %v", err)
	}
	// hits[file][line][analyzer]: where each analyzer reported.
	hits := map[string]map[int]map[string]bool{}
	for _, d := range raw {
		pos := l.Fset.Position(d.Pos)
		if hits[pos.Filename] == nil {
			hits[pos.Filename] = map[int]map[string]bool{}
		}
		if hits[pos.Filename][pos.Line] == nil {
			hits[pos.Filename][pos.Line] = map[string]bool{}
		}
		hits[pos.Filename][pos.Line][d.Analyzer] = true
	}

	dirs := lint.DirectivesIn(l.Fset, pkgs)
	if len(dirs) == 0 {
		t.Fatal("no //lint:ignore directives found; the audit expected at least the fixture suppressions")
	}
	for _, d := range dirs {
		where := fmt.Sprintf("%s:%d", relPath(t, d.File), d.Line)
		if len(d.Names) == 0 {
			t.Errorf("%s: //lint:ignore names no analyzer", where)
			continue
		}
		if d.Reason == "" {
			t.Errorf("%s: //lint:ignore %s carries no reason; say why the invariant is waived", where, strings.Join(d.Names, ","))
		}
		for _, name := range d.Names {
			if !known[name] {
				t.Errorf("%s: //lint:ignore names unknown analyzer %q", where, name)
				continue
			}
			if !hits[d.File][d.Line][name] && !hits[d.File][d.Line+1][name] {
				t.Errorf("%s: stale //lint:ignore %s: the analyzer no longer reports here; delete the directive", where, name)
			}
		}
	}
}

func relPath(t *testing.T, file string) string {
	t.Helper()
	wd, err := filepath.Abs(".")
	if err != nil {
		return file
	}
	if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
