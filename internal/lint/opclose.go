package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Opclose enforces the Volcano iterator lifecycle contract on
// exec.Operator values. Three rules:
//
//  1. A Close() error must never be silently dropped: a bare
//     `op.Close(ctx)` statement, a `defer op.Close(ctx)`, and
//     `_ = op.Close(ctx)` are all flagged. Close is where operators
//     surface deferred resource errors; dropping it hides them.
//  2. A local variable (or parameter) on which Open is called must be
//     Closed on every path that leaves the function — including error
//     paths — unless a deferred Close covers them. The walker
//     understands the `if err := op.Open(ctx); err != nil { return }`
//     guard (a failed Open needs no Close) and `return n, op.Close(ctx)`
//     tails. Variables that escape (passed on, returned, stored,
//     captured) are not tracked.
//  3. A field the operator type Opens in any of its methods
//     (j.Inner.Open in Next, say) must be Closed by some method of the
//     same type, because the child's lifecycle spans the parent's.
var Opclose = &analysis.Analyzer{
	Name: "opclose",
	Doc:  "require Operator Open/Close pairing on all paths and forbid dropped Close errors",
	Run:  runOpclose,
}

func runOpclose(pass *analysis.Pass) error {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface == nil {
		return nil
	}
	oc := &opcloseCheck{pass: pass, iface: iface}
	oc.droppedCloseErrors()
	oc.localPairing()
	oc.fieldPairing()
	return nil
}

type opcloseCheck struct {
	pass  *analysis.Pass
	iface *types.Interface
}

// operatorMethodCall reports whether call invokes the named method on
// a value whose type satisfies exec.Operator, returning the receiver
// expression.
func (oc *opcloseCheck) operatorMethodCall(call *ast.CallExpr, method string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	tv, ok := oc.pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	if !analysis.Implements(tv.Type, oc.iface) {
		return nil, false
	}
	return sel.X, true
}

// --- Rule 1: dropped Close errors -----------------------------------

func (oc *opcloseCheck) droppedCloseErrors() {
	oc.pass.Inspect(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if _, isClose := oc.operatorMethodCall(call, "Close"); isClose {
					oc.pass.Reportf(call.Pos(), "Close error silently dropped; on error paths join it into the returned error (errors.Join)")
				}
			}
		case *ast.DeferStmt:
			if _, isClose := oc.operatorMethodCall(stmt.Call, "Close"); isClose {
				oc.pass.Reportf(stmt.Call.Pos(), "deferred Close discards its error; close explicitly and return the error")
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 && allBlank(stmt.Lhs) {
				if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
					if _, isClose := oc.operatorMethodCall(call, "Close"); isClose {
						oc.pass.Reportf(call.Pos(), "Close error explicitly discarded; handle it or suppress with //lint:ignore opclose <reason>")
					}
				}
			}
		}
		return true
	})
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// --- Rule 2: local Open/Close path balance --------------------------

func (oc *opcloseCheck) localPairing() {
	for _, file := range oc.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					oc.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				// Closure bodies — goroutine-spawning operators run worker
				// pipelines inside `go func() { ... }()` — are functions in
				// their own right: an Open inside one must be balanced by a
				// Close inside the same closure, because nothing outside it
				// can see the worker's operator once the goroutine exits.
				oc.checkFunc(fn.Body)
			}
			return true
		})
	}
}

// checkFunc runs the path walker over one function body.
func (oc *opcloseCheck) checkFunc(body *ast.BlockStmt) {
	cands := oc.candidates(body)
	if len(cands) == 0 {
		return
	}
	w := &pathWalker{
		oc:       oc,
		track:    cands,
		deferred: map[*types.Var]bool{},
		reported: map[token.Pos]bool{},
	}
	open := map[*types.Var]token.Pos{}
	if terminated := w.walkStmts(body.List, open); !terminated {
		w.leak(open, "function end")
	}
}

// candidates returns the local vars (and params) with an Operator type
// that have Open called on them directly and never escape the
// function: every other use is a method-call receiver or a nil check.
func (oc *opcloseCheck) candidates(body *ast.BlockStmt) map[*types.Var]bool {
	opened := map[*types.Var]bool{}
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, isOpen := oc.operatorMethodCall(call, "Open")
		if !isOpen {
			return true
		}
		if id, ok := recv.(*ast.Ident); ok {
			if v, ok := oc.pass.TypesInfo.Uses[id].(*types.Var); ok && !v.IsField() {
				// Skip vars opened inside nested closures: the closure's
				// lifetime is not the function's.
				for _, anc := range stack {
					if _, isLit := anc.(*ast.FuncLit); isLit {
						return true
					}
				}
				opened[v] = true
			}
		}
		return true
	})
	if len(opened) == 0 {
		return nil
	}
	// Escape filter.
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := oc.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !opened[v] {
			return true
		}
		if oc.escapes(id, stack) {
			delete(opened, v)
		}
		return true
	})
	return opened
}

// escapes classifies one use of a tracked var. Benign: receiver of a
// method call, nil comparison. Everything else transfers ownership.
func (oc *opcloseCheck) escapes(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	for _, anc := range stack {
		if _, isLit := anc.(*ast.FuncLit); isLit {
			return true // captured by a closure
		}
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// v.Method(...) — benign only when the selector is being called.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
				return false
			}
		}
		return true
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			return false // nil check
		}
		return true
	default:
		return true
	}
}

// pathWalker is a small abstract interpreter over statement lists: the
// state is the set of currently-open tracked vars.
type pathWalker struct {
	oc       *opcloseCheck
	track    map[*types.Var]bool
	deferred map[*types.Var]bool
	reported map[token.Pos]bool
}

// scanCalls collects Open/Close calls on tracked vars inside n.
func (w *pathWalker) scanCalls(n ast.Node, open map[*types.Var]token.Pos) (openedInGuard map[*types.Var]token.Pos) {
	if n == nil {
		return nil
	}
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, isClose := w.oc.operatorMethodCall(call, "Close"); isClose {
			if v := w.trackedVar(recv); v != nil {
				delete(open, v)
			}
		}
		if recv, isOpen := w.oc.operatorMethodCall(call, "Open"); isOpen {
			if v := w.trackedVar(recv); v != nil {
				if openedInGuard == nil {
					openedInGuard = map[*types.Var]token.Pos{}
				}
				openedInGuard[v] = call.Pos()
			}
		}
		return true
	})
	return openedInGuard
}

func (w *pathWalker) trackedVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.oc.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil || !w.track[v] {
		return nil
	}
	return v
}

func (w *pathWalker) leak(open map[*types.Var]token.Pos, where string) {
	for v, pos := range open {
		if w.deferred[v] || w.reported[pos] {
			continue
		}
		w.reported[pos] = true
		w.oc.pass.Reportf(pos, "%s.Open is not balanced by a Close on every path (%s reached with it open)", v.Name(), where)
	}
}

func copyState(open map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(open))
	for k, v := range open {
		out[k] = v
	}
	return out
}

// walkStmts interprets a statement list, mutating open in place.
// It returns true when the list always terminates (returns/branches).
func (w *pathWalker) walkStmts(stmts []ast.Stmt, open map[*types.Var]token.Pos) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, open) {
			return true
		}
	}
	return false
}

func (w *pathWalker) walkStmt(stmt ast.Stmt, open map[*types.Var]token.Pos) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		for v, pos := range w.scanCalls(stmt, open) {
			open[v] = pos
		}
		return false

	case *ast.DeferStmt:
		if recv, isClose := w.oc.operatorMethodCall(s.Call, "Close"); isClose {
			if v := w.trackedVar(recv); v != nil {
				w.deferred[v] = true
				delete(open, v)
			}
		}
		return false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanCalls(res, open)
		}
		w.leak(open, "return")
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the loop-level
		// approximation absorbs the state.
		return true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, open)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, open)

	case *ast.IfStmt:
		// Closes in init/cond apply before any branch; Opens there are
		// the `if err := v.Open(ctx); err != nil` guard: the body is
		// the failure path (v not open), the continuation the success.
		guardOpens := map[*types.Var]token.Pos{}
		for _, n := range []ast.Node{s.Init, s.Cond} {
			for v, pos := range w.scanCalls(n, open) {
				guardOpens[v] = pos
			}
		}
		thenState := copyState(open)
		thenTerm := w.walkStmts(s.Body.List, thenState)
		elseState := copyState(open)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseState)
		}
		mergeBranches(open, []branch{{thenState, thenTerm}, {elseState, elseTerm}})
		for v, pos := range guardOpens {
			open[v] = pos
		}
		return thenTerm && elseTerm

	case *ast.ForStmt:
		for _, n := range []ast.Node{s.Init, s.Cond, s.Post} {
			for v, pos := range w.scanCalls(n, open) {
				open[v] = pos
			}
		}
		body := copyState(open)
		w.walkStmts(s.Body.List, body)
		return false

	case *ast.RangeStmt:
		for v, pos := range w.scanCalls(s.X, open) {
			open[v] = pos
		}
		body := copyState(open)
		w.walkStmts(s.Body.List, body)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			for v, pos := range w.scanCalls(sw.Init, open) {
				open[v] = pos
			}
			for v, pos := range w.scanCalls(sw.Tag, open) {
				open[v] = pos
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		hasDefault := false
		var branches []branch
		for _, cl := range clauses {
			var body []ast.Stmt
			switch c := cl.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				body = c.Body
			case *ast.CommClause:
				body = c.Body
			}
			st := copyState(open)
			term := w.walkStmts(body, st)
			branches = append(branches, branch{st, term})
		}
		allTerm := hasDefault && len(branches) > 0
		for _, b := range branches {
			if !b.term {
				allTerm = false
			}
		}
		mergeBranches(open, branches)
		return allTerm

	case *ast.GoStmt:
		return false
	}
	return false
}

type branch struct {
	state map[*types.Var]token.Pos
	term  bool
}

// mergeBranches replaces open with the union of the surviving
// branches' open sets: a var is open after the statement when any
// non-terminating branch leaves it open.
func mergeBranches(open map[*types.Var]token.Pos, branches []branch) {
	merged := map[*types.Var]token.Pos{}
	for _, b := range branches {
		if b.term {
			continue
		}
		for v, pos := range b.state {
			merged[v] = pos
		}
	}
	for v := range open {
		delete(open, v)
	}
	for v, pos := range merged {
		open[v] = pos
	}
}

// --- Rule 3: field-level pairing across the method set --------------

func (oc *opcloseCheck) fieldPairing() {
	type fieldOpen struct {
		pos    token.Pos
		method string
	}
	opens := map[*types.TypeName]map[string]fieldOpen{}
	closes := map[*types.TypeName]map[string]bool{}
	implements := map[*types.TypeName]bool{}

	for _, file := range oc.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(oc.pass, fd)
			if tn == nil {
				continue
			}
			if _, ok := implements[tn]; !ok {
				implements[tn] = analysis.Implements(tn.Type(), oc.iface)
			}
			if !implements[tn] {
				continue
			}
			recvObj := receiverVar(oc.pass, fd)
			if recvObj == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, method := range []string{"Open", "Close"} {
					recv, isCall := oc.operatorMethodCall(call, method)
					if !isCall {
						continue
					}
					field := fieldOf(oc.pass, recv, recvObj)
					if field == "" {
						continue
					}
					if method == "Open" {
						if opens[tn] == nil {
							opens[tn] = map[string]fieldOpen{}
						}
						if _, seen := opens[tn][field]; !seen {
							opens[tn][field] = fieldOpen{pos: call.Pos(), method: fd.Name.Name}
						}
					} else {
						if closes[tn] == nil {
							closes[tn] = map[string]bool{}
						}
						closes[tn][field] = true
					}
				}
				return true
			})
		}
	}
	for tn, fields := range opens {
		for field, fo := range fields {
			if !closes[tn][field] {
				oc.pass.Reportf(fo.pos, "%s.%s opens field %s but no method of %s closes it", tn.Name(), fo.method, field, tn.Name())
			}
		}
	}
}

// receiverVar returns the receiver parameter's object.
func receiverVar(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// fieldOf matches `recv.Field` exactly (one selector level on the
// method receiver) and returns the field name.
func fieldOf(pass *analysis.Pass, e ast.Expr, recv *types.Var) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return ""
	}
	return sel.Sel.Name
}
