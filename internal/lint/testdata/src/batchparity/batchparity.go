// Package batchparity exercises the batchparity analyzer: a type with
// NextBatch must keep a row-at-a-time Next, and both paths must charge
// the same ctx.Counter fields — batch execution is an optimization,
// not a different cost model.
package batchparity

import (
	"filterjoin/internal/exec"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// batchOnly has no row path at all: Gather's fallback and the
// instrumented EXPLAIN ANALYZE path cannot drive it.
type batchOnly struct {
	rows []value.Row
}

func (b *batchOnly) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error { // want "batchOnly implements NextBatch but not Next; the row-at-a-time fallback \(Gather, instrumentation\) cannot drive it"
	for len(dst.Rows) < max && len(b.rows) > 0 {
		dst.Rows = append(dst.Rows, b.rows[0])
		b.rows = b.rows[1:]
	}
	return nil
}

// skewScan charges PageReads+CPUTuples per row but only CPUTuples per
// batched row: the FILTERJOIN_BATCH matrix legs would observe
// different Table 1 costs for the same plan.
type skewScan struct {
	rows []value.Row
	pos  int
}

func (s *skewScan) Schema() *schema.Schema { return nil }

func (s *skewScan) Open(ctx *exec.Context) error {
	s.pos = 0
	return nil
}

func (s *skewScan) Next(ctx *exec.Context) (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	ctx.Counter.PageReads++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

func (s *skewScan) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error { // want "skewScan charges different Counter fields in Next \(CPUTuples\+PageReads\) and NextBatch \(CPUTuples\)"
	for len(dst.Rows) < max && s.pos < len(s.rows) {
		dst.Rows = append(dst.Rows, s.rows[s.pos])
		s.pos++
		ctx.Counter.CPUTuples++
	}
	return nil
}

func (s *skewScan) Close(ctx *exec.Context) error { return nil }

// parityScan charges the same field set on both paths, batch-amortized
// on the batch side: compliant.
type parityScan struct {
	rows []value.Row
	pos  int
}

func (p *parityScan) Schema() *schema.Schema { return nil }

func (p *parityScan) Open(ctx *exec.Context) error {
	p.pos = 0
	return nil
}

func (p *parityScan) Next(ctx *exec.Context) (value.Row, bool, error) {
	if p.pos >= len(p.rows) {
		return nil, false, nil
	}
	r := p.rows[p.pos]
	p.pos++
	ctx.Counter.PageReads++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

func (p *parityScan) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	var pages, cpu int64
	defer func() {
		ctx.Counter.PageReads += pages
		ctx.Counter.CPUTuples += cpu
	}()
	for len(dst.Rows) < max && p.pos < len(p.rows) {
		dst.Rows = append(dst.Rows, p.rows[p.pos])
		p.pos++
		pages++
		cpu++
	}
	return nil
}

func (p *parityScan) Close(ctx *exec.Context) error { return nil }

// rowDelegate's NextBatch loops over its own Next: parity holds by
// construction, whatever Next charges.
type rowDelegate struct {
	rows []value.Row
	pos  int
}

func (r *rowDelegate) Schema() *schema.Schema { return nil }

func (r *rowDelegate) Open(ctx *exec.Context) error {
	r.pos = 0
	return nil
}

func (r *rowDelegate) Next(ctx *exec.Context) (value.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	ctx.Counter.CPUTuples++
	return row, true, nil
}

func (r *rowDelegate) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	for len(dst.Rows) < max {
		row, ok, err := r.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		dst.Rows = append(dst.Rows, row)
	}
	return nil
}

func (r *rowDelegate) Close(ctx *exec.Context) error { return nil }

// absorbExchange merges a worker counter wholesale on the batch path:
// field-set comparison is meaningless, costcharge covers conservation.
type absorbExchange struct {
	rows []value.Row
	pos  int
}

func (a *absorbExchange) Schema() *schema.Schema { return nil }

func (a *absorbExchange) Open(ctx *exec.Context) error {
	a.pos = 0
	return nil
}

func (a *absorbExchange) Next(ctx *exec.Context) (value.Row, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	r := a.rows[a.pos]
	a.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

func (a *absorbExchange) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	w := exec.NewWorkerContext(ctx)
	for len(dst.Rows) < max && a.pos < len(a.rows) {
		dst.Rows = append(dst.Rows, a.rows[a.pos])
		a.pos++
		w.Counter.CPUTuples++
	}
	ctx.Absorb(w)
	return nil
}

func (a *absorbExchange) Close(ctx *exec.Context) error { return nil }

// metaScan's batch path is charged by an external harness; the
// suppression records that.
type metaScan struct {
	rows []value.Row
	pos  int
}

func (m *metaScan) Schema() *schema.Schema { return nil }

func (m *metaScan) Open(ctx *exec.Context) error {
	m.pos = 0
	return nil
}

func (m *metaScan) Next(ctx *exec.Context) (value.Row, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	r := m.rows[m.pos]
	m.pos++
	ctx.Counter.CPUTuples++
	return r, true, nil
}

//lint:ignore batchparity fixture: batch path charged by the measurement harness
func (m *metaScan) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	for len(dst.Rows) < max && m.pos < len(m.rows) {
		dst.Rows = append(dst.Rows, m.rows[m.pos])
		m.pos++
	}
	return nil
}

func (m *metaScan) Close(ctx *exec.Context) error { return nil }
