// Package sitefault exercises the sitefault analyzer: errors from the
// transport entry points must propagate so a *dist.SiteError can reach
// the facade's degradation handler.
package sitefault

import (
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
)

// dropPackageSend fires and forgets the package-level helper.
func dropPackageSend(ctx *exec.Context) {
	dist.Send(ctx, 1, 64) // want "transport Send error discarded"
}

// dropBlankAssign hides the error behind a blank assignment.
func dropBlankAssign(ctx *exec.Context, n *dist.Net) {
	_ = n.Send(ctx, 1, 64) // want "transport Send error assigned to blank"
}

// dropInterfaceSend discards the error through the interface.
func dropInterfaceSend(ctx *exec.Context) {
	ctx.Net.Send(ctx, 2, 8) // want "transport Send error discarded"
}

// dropGoroutine loses the error with the goroutine.
func dropGoroutine(ctx *exec.Context) {
	go dist.Send(ctx, 1, 0) // want "transport Send started as a goroutine discards its error"
}

// dropDeferred loses the error when the frame unwinds.
func dropDeferred(ctx *exec.Context) {
	defer dist.Send(ctx, 1, 0) // want "deferred transport Send discards its error"
}

// propagated is the required idiom: the error flows to the caller.
func propagated(ctx *exec.Context, site int) error {
	if err := dist.Send(ctx, site, 32); err != nil {
		return err
	}
	return ctx.Net.Send(ctx, site, 32)
}

// captured keeps the error in a variable for later handling: clean.
func captured(ctx *exec.Context) error {
	err := dist.Send(ctx, 3, 16)
	return err
}

// otherSend is a same-named method on an unrelated type: exempt.
type otherSend struct{}

func (otherSend) Send(ctx *exec.Context, site int, bytes int64) error { return nil }

func unrelated(ctx *exec.Context) {
	var o otherSend
	o.Send(ctx, 1, 1)
}

// suppressed documents a deliberate fire-and-forget.
func suppressed(ctx *exec.Context) {
	//lint:ignore sitefault fixture: best-effort advisory message
	dist.Send(ctx, 9, 0)
}
