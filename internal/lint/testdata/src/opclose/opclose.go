// Package opclose exercises the opclose analyzer: dropped Close
// errors, Open without Close on an error path, field-level pairing,
// and //lint:ignore suppression.
package opclose

import (
	"errors"

	"filterjoin/internal/exec"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// fakeOp implements exec.Operator and closes the child it opens.
type fakeOp struct {
	child exec.Operator
}

func (f *fakeOp) Schema() *schema.Schema { return nil }

func (f *fakeOp) Open(ctx *exec.Context) error {
	return f.child.Open(ctx)
}

func (f *fakeOp) Next(ctx *exec.Context) (value.Row, bool, error) {
	return f.child.Next(ctx)
}

func (f *fakeOp) Close(ctx *exec.Context) error {
	return f.child.Close(ctx)
}

// leakyOp opens its child but no method ever closes it.
type leakyOp struct {
	child exec.Operator
}

func (l *leakyOp) Schema() *schema.Schema { return nil }

func (l *leakyOp) Open(ctx *exec.Context) error {
	return l.child.Open(ctx) // want "leakyOp.Open opens field child but no method of leakyOp closes it"
}

func (l *leakyOp) Next(ctx *exec.Context) (value.Row, bool, error) {
	return l.child.Next(ctx)
}

func (l *leakyOp) Close(ctx *exec.Context) error { return nil }

func dropBare(ctx *exec.Context, op exec.Operator) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	op.Close(ctx) // want "Close error silently dropped"
	return nil
}

func dropDefer(ctx *exec.Context, op exec.Operator) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close(ctx) // want "deferred Close discards its error"
	_, _, err := op.Next(ctx)
	return err
}

func dropBlank(ctx *exec.Context, op exec.Operator) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	_ = op.Close(ctx) // want "Close error explicitly discarded"
	return nil
}

func leakOnError(ctx *exec.Context, op exec.Operator) error {
	if err := op.Open(ctx); err != nil { // want "op.Open is not balanced by a Close on every path"
		return err
	}
	_, _, err := op.Next(ctx)
	if err != nil {
		return err // op is still open here
	}
	return op.Close(ctx)
}

func balanced(ctx *exec.Context, op exec.Operator) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	for {
		_, ok, err := op.Next(ctx)
		if err != nil {
			return errors.Join(err, op.Close(ctx))
		}
		if !ok {
			break
		}
	}
	return op.Close(ctx)
}

func suppressed(ctx *exec.Context, op exec.Operator) {
	//lint:ignore opclose fixture asserts the directive reaches the next line
	op.Close(ctx)
}

// goWorkerClean runs a worker pipeline inside a goroutine closure; the
// operator opened inside the closure is closed on every path of the
// closure, which is what the analyzer now checks inside FuncLit bodies.
func goWorkerClean(mk func() exec.Operator) error {
	done := make(chan error, 1)
	go func() {
		op := mk()
		w := exec.NewWorkerContext(nil)
		if err := op.Open(w); err != nil {
			done <- err
			return
		}
		done <- op.Close(w)
	}()
	return <-done
}

// goWorkerLeak opens an operator inside a goroutine and abandons it:
// nothing outside the closure can ever close it.
func goWorkerLeak(mk func() exec.Operator) {
	go func() {
		op := mk()
		w := exec.NewWorkerContext(nil)
		if err := op.Open(w); err != nil { // want "op.Open is not balanced by a Close on every path"
			return
		}
		_, _, _ = op.Next(w)
	}()
}
