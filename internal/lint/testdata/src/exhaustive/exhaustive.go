// Package exhaustive exercises the exhaustive analyzer: switches over
// the closed plan-variant enums must list every member (default does
// not excuse), and type switches over the expression interfaces must
// cover every implementer or carry a default.
package exhaustive

import (
	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/expr"
)

func kindPartial(k catalog.Kind) int {
	switch k { // want "switch over catalog.Kind is missing variants"
	case catalog.KindBase:
		return 1
	default:
		return 0
	}
}

func kindFull(k catalog.Kind) int {
	switch k {
	case catalog.KindBase:
		return 1
	case catalog.KindView:
		return 2
	case catalog.KindRemote:
		return 3
	case catalog.KindFunc:
		return 4
	}
	return 0
}

func reprPartial(r core.FilterRepr) string {
	switch r { // want "switch over core.FilterRepr is missing variant"
	case core.ReprExact:
		return "exact"
	}
	return ""
}

func accessFull(a core.InnerAccess) bool {
	switch a {
	case core.AccessScanFilter, core.AccessIndexProbe:
		return true
	case core.AccessMagicView, core.AccessRemote, core.AccessFuncCalls:
		return false
	}
	return false
}

func exprPartial(e expr.Expr) int {
	switch e.(type) { // want "type switch over expr.Expr has no default and is missing implementers"
	case expr.Col:
		return 1
	case expr.Lit:
		return 2
	}
	return 0
}

func exprDefaulted(e expr.Expr) int {
	switch e.(type) {
	case expr.Col:
		return 1
	default:
		return 0
	}
}

func suppressed(k catalog.Kind) int {
	//lint:ignore exhaustive fixture: only stored kinds reach this path
	switch k {
	case catalog.KindBase, catalog.KindRemote:
		return 1
	}
	return 0
}
