// Package parambind exercises the parambind analyzer: operators that
// capture expressions must rebind them via expr.Bind* in a method
// reachable from Open, and type switches that classify expr.Lit must
// also classify expr.Param — a bound parameter is a constant too.
package parambind

import (
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// staleFilter captures a predicate at plan time and never rebinds it:
// a cached plan would evaluate the planning-time parameter values.
type staleFilter struct {
	child exec.Operator
	pred  expr.Expr // want "operator staleFilter captures expression field pred but no Open-reachable method rebinds it via expr.BindParams"
}

func (s *staleFilter) Schema() *schema.Schema { return s.child.Schema() }

func (s *staleFilter) Open(ctx *exec.Context) error { return s.child.Open(ctx) }

func (s *staleFilter) Next(ctx *exec.Context) (value.Row, bool, error) { return s.child.Next(ctx) }

func (s *staleFilter) Close(ctx *exec.Context) error { return s.child.Close(ctx) }

// boundFilter rebinds at Open: compliant.
type boundFilter struct {
	child exec.Operator
	pred  expr.Expr
}

func (b *boundFilter) Schema() *schema.Schema { return b.child.Schema() }

func (b *boundFilter) Open(ctx *exec.Context) error {
	b.pred = expr.BindParams(b.pred, ctx.Params)
	return b.child.Open(ctx)
}

func (b *boundFilter) Next(ctx *exec.Context) (value.Row, bool, error) { return b.child.Next(ctx) }

func (b *boundFilter) Close(ctx *exec.Context) error { return b.child.Close(ctx) }

// staleKeys captures expression slices; both go unbound.
type staleKeys struct {
	child exec.Operator
	keys  []expr.Expr    // want "operator staleKeys captures expression field keys but no Open-reachable method rebinds it via expr.BindParamsList"
	aggs  []expr.AggSpec // want "operator staleKeys captures expression field aggs but no Open-reachable method rebinds it via expr.BindAggs"
}

func (s *staleKeys) Schema() *schema.Schema { return s.child.Schema() }

func (s *staleKeys) Open(ctx *exec.Context) error { return s.child.Open(ctx) }

func (s *staleKeys) Next(ctx *exec.Context) (value.Row, bool, error) { return s.child.Next(ctx) }

func (s *staleKeys) Close(ctx *exec.Context) error { return s.child.Close(ctx) }

// helperBound rebinds through a helper Open calls: reachability, not
// syntax, decides compliance.
type helperBound struct {
	child exec.Operator
	keys  []expr.Expr
	aggs  []expr.AggSpec
}

func (h *helperBound) Schema() *schema.Schema { return h.child.Schema() }

func (h *helperBound) Open(ctx *exec.Context) error {
	h.rebind(ctx)
	return h.child.Open(ctx)
}

func (h *helperBound) rebind(ctx *exec.Context) {
	h.keys = expr.BindParamsList(h.keys, ctx.Params)
	h.aggs = expr.BindAggs(h.aggs, ctx.Params)
}

func (h *helperBound) Next(ctx *exec.Context) (value.Row, bool, error) { return h.child.Next(ctx) }

func (h *helperBound) Close(ctx *exec.Context) error { return h.child.Close(ctx) }

// classify forgets that a bound Param is a constant: flagged.
func classify(e expr.Expr) string {
	switch e.(type) { // want "type switch over expr.Expr handles expr.Lit but not expr.Param"
	case expr.Lit:
		return "const"
	default:
		return "other"
	}
}

// classifyFull covers Param alongside Lit: compliant.
func classifyFull(e expr.Expr) string {
	switch e.(type) {
	case expr.Lit:
		return "const"
	case expr.Param:
		return "param"
	default:
		return "other"
	}
}

// printKind renders for debugging only; params displaying as opaque is
// acceptable and documented.
func printKind(e expr.Expr) string {
	//lint:ignore parambind fixture: display-only path, params render as literals
	switch e.(type) {
	case expr.Lit:
		return "lit"
	default:
		return "expr"
	}
}
