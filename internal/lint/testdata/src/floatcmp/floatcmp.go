// Package floatcmp exercises the floatcmp analyzer: raw float
// comparisons on cost-valued expressions are flagged; epsilon helpers,
// constant range guards, and non-cost floats pass.
package floatcmp

import "filterjoin/internal/cost"

func pickCheaper(costA, costB float64) float64 {
	if costA < costB { // want "raw float comparison on cost values"
		return costA
	}
	return costB
}

func dominates(m cost.Model, a, b cost.Estimate) bool {
	return m.TotalEstimate(a) <= m.TotalEstimate(b) // want "raw float comparison on cost values"
}

func tied(totalA, totalB float64) bool {
	return totalA == totalB // want "raw float comparison on cost values"
}

func viaHelpers(m cost.Model, a, b cost.Estimate) bool {
	return cost.LessEq(m.TotalEstimate(a), m.TotalEstimate(b))
}

func rangeGuard(total float64) bool {
	return total > 0 // constant comparisons are guards, not dominance
}

func notCost(x, y float64) bool {
	return x < y // names carry no cost convention
}

func suppressed(costA, costB float64) bool {
	//lint:ignore floatcmp fixture: exact replay comparison is intended
	return costA == costB
}
