// Package sharesafe exercises the sharesafe analyzer: operator state
// mutated during execution must be forked or reset at Open, and Make
// closures must build fresh operator trees — a plan-cache entry is
// shared by every session that hits it.
package sharesafe

import (
	"filterjoin/internal/exec"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

type options struct{ batch int }

// sharedWriter writes through a pointer field it never forked: two
// concurrent executions of one cached plan would race on *opts.
type sharedWriter struct {
	child exec.Operator
	opts  *options
}

func (s *sharedWriter) Schema() *schema.Schema { return s.child.Schema() }

func (s *sharedWriter) Open(ctx *exec.Context) error {
	s.opts.batch = ctx.BatchSize // want "sharedWriter.Open writes through shared field opts without forking it first"
	return s.child.Open(ctx)
}

func (s *sharedWriter) Next(ctx *exec.Context) (value.Row, bool, error) { return s.child.Next(ctx) }

func (s *sharedWriter) Close(ctx *exec.Context) error { return s.child.Close(ctx) }

// forkWriter is the checked filterJoinOp pattern: reassign the field to
// a private copy first, then mutate freely.
type forkWriter struct {
	child exec.Operator
	opts  *options
}

func (f *forkWriter) Schema() *schema.Schema { return f.child.Schema() }

func (f *forkWriter) Open(ctx *exec.Context) error {
	f.opts = &options{}
	f.opts.batch = ctx.BatchSize
	return f.child.Open(ctx)
}

func (f *forkWriter) Next(ctx *exec.Context) (value.Row, bool, error) { return f.child.Next(ctx) }

func (f *forkWriter) Close(ctx *exec.Context) error { return f.child.Close(ctx) }

// staleAgg accumulates across Next but Open never resets, so a reopened
// or cache-served instance replays the previous execution's totals.
type staleAgg struct {
	child exec.Operator
	done  bool
	count int64
}

func (a *staleAgg) Schema() *schema.Schema { return nil }

func (a *staleAgg) Open(ctx *exec.Context) error { return a.child.Open(ctx) }

func (a *staleAgg) Next(ctx *exec.Context) (value.Row, bool, error) {
	if a.done {
		return nil, false, nil
	}
	for {
		_, ok, err := a.child.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.count++ // want "staleAgg.Next writes field count but Open never resets it"
		ctx.Counter.CPUTuples++
	}
	a.done = true // want "staleAgg.Next writes field done but Open never resets it"
	return value.Row{value.NewInt(a.count)}, true, nil
}

func (a *staleAgg) Close(ctx *exec.Context) error { return a.child.Close(ctx) }

// resetAgg is the compliant version: Open zeroes everything Next writes.
type resetAgg struct {
	child exec.Operator
	done  bool
	count int64
}

func (a *resetAgg) Schema() *schema.Schema { return nil }

func (a *resetAgg) Open(ctx *exec.Context) error {
	a.done = false
	a.count = 0
	return a.child.Open(ctx)
}

func (a *resetAgg) Next(ctx *exec.Context) (value.Row, bool, error) {
	if a.done {
		return nil, false, nil
	}
	for {
		_, ok, err := a.child.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.count++
		ctx.Counter.CPUTuples++
	}
	a.done = true
	return value.Row{value.NewInt(a.count)}, true, nil
}

func (a *resetAgg) Close(ctx *exec.Context) error { return a.child.Close(ctx) }

// batchKeeper resets its buffer through a method call at Open — a
// reset-style touch, accepted like an assignment.
type batchKeeper struct {
	child exec.Operator
	buf   exec.Batch
	pos   int
}

func (b *batchKeeper) Schema() *schema.Schema { return b.child.Schema() }

func (b *batchKeeper) Open(ctx *exec.Context) error {
	b.buf.Reset()
	b.pos = 0
	return b.child.Open(ctx)
}

func (b *batchKeeper) Next(ctx *exec.Context) (value.Row, bool, error) {
	if b.pos >= b.buf.Len() {
		b.buf.Reset()
		b.pos = 0
		if err := exec.FillBatch(ctx, b.child, &b.buf, 64); err != nil {
			return nil, false, err
		}
		if b.buf.Len() == 0 {
			return nil, false, nil
		}
	}
	r := b.buf.Rows[b.pos]
	b.pos++
	return r, true, nil
}

func (b *batchKeeper) Close(ctx *exec.Context) error { return b.child.Close(ctx) }

// node mirrors plan.Node's Make field: the closure every cached plan
// shares and every execution invokes for a fresh operator tree.
type node struct {
	Make func() exec.Operator
}

// freshMake builds a new operator per call: compliant.
func freshMake(child exec.Operator) *node {
	return &node{Make: func() exec.Operator {
		return &resetAgg{child: child}
	}}
}

// capturedMake hands the same operator instance to every execution.
func capturedMake(op exec.Operator) *node {
	n := &node{}
	n.Make = func() exec.Operator {
		return op // want "Make closure returns captured variable op; Make must build a fresh operator tree per call"
	}
	return n
}

type holder struct{ op exec.Operator }

// capturedFieldMake shares through a captured struct field instead.
func capturedFieldMake(h *holder) *node {
	return &node{Make: func() exec.Operator {
		return h.op // want "Make closure returns captured field op; Make must build a fresh operator tree per call"
	}}
}

// localMake declares the operator inside the closure: fresh per call.
func localMake(child exec.Operator) *node {
	return &node{Make: func() exec.Operator {
		op := &resetAgg{child: child}
		return op
	}}
}

// singletonMake intentionally shares a stateless sink; the suppression
// documents why that is safe here.
func singletonMake(shared exec.Operator) *node {
	n := &node{}
	//lint:ignore sharesafe fixture: the shared sink is stateless by construction
	n.Make = func() exec.Operator { return shared }
	return n
}
