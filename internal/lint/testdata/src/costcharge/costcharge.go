// Package costcharge exercises the costcharge analyzer: operators
// whose Open/Next do row work must charge ctx.Counter, directly or via
// a helper method reachable from Open/Next.
package costcharge

import (
	"errors"
	"sort"

	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// freeLoop loops over child rows in Next without charging anything.
type freeLoop struct {
	child exec.Operator
	rows  []value.Row
}

func (f *freeLoop) Schema() *schema.Schema { return nil }

func (f *freeLoop) Open(ctx *exec.Context) error { return f.child.Open(ctx) }

func (f *freeLoop) Next(ctx *exec.Context) (value.Row, bool, error) { // want "freeLoop.Next does row work but no method of freeLoop reachable from Open/Next/NextBatch charges ctx.Counter"
	for {
		r, ok, err := f.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if len(r) > 0 {
			return r, true, nil
		}
	}
}

func (f *freeLoop) Close(ctx *exec.Context) error { return f.child.Close(ctx) }

// freeSort sorts in Open without charging: sort/heap calls count as work.
type freeSort struct {
	rows []value.Row
}

func (f *freeSort) Schema() *schema.Schema { return nil }

func (f *freeSort) Open(ctx *exec.Context) error { // want "freeSort.Open does row work but no method of freeSort reachable from Open/Next/NextBatch charges ctx.Counter"
	sort.Slice(f.rows, func(i, j int) bool { return len(f.rows[i]) < len(f.rows[j]) })
	return nil
}

func (f *freeSort) Next(ctx *exec.Context) (value.Row, bool, error) { return nil, false, nil }

func (f *freeSort) Close(ctx *exec.Context) error { return nil }

// charging loops but charges the counter directly.
type charging struct {
	child exec.Operator
}

func (c *charging) Schema() *schema.Schema { return nil }

func (c *charging) Open(ctx *exec.Context) error { return c.child.Open(ctx) }

func (c *charging) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		r, ok, err := c.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Counter.CPUTuples++
		return r, true, nil
	}
}

func (c *charging) Close(ctx *exec.Context) error { return c.child.Close(ctx) }

// viaHelper loops in Next and charges inside a helper Next calls.
type viaHelper struct {
	child exec.Operator
}

func (v *viaHelper) Schema() *schema.Schema { return nil }

func (v *viaHelper) Open(ctx *exec.Context) error { return v.child.Open(ctx) }

func (v *viaHelper) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		r, ok, err := v.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		v.charge(ctx)
		return r, true, nil
	}
}

func (v *viaHelper) charge(ctx *exec.Context) { ctx.Counter.CPUTuples++ }

func (v *viaHelper) Close(ctx *exec.Context) error { return v.child.Close(ctx) }

// passThrough does no loops and no sorting: exempt.
type passThrough struct {
	child exec.Operator
}

func (p *passThrough) Schema() *schema.Schema { return nil }

func (p *passThrough) Open(ctx *exec.Context) error { return p.child.Open(ctx) }

func (p *passThrough) Next(ctx *exec.Context) (value.Row, bool, error) {
	return p.child.Next(ctx)
}

func (p *passThrough) Close(ctx *exec.Context) error { return p.child.Close(ctx) }

// suppressedOp loops for free, but its shim nature is documented.
type suppressedOp struct {
	child exec.Operator
}

func (s *suppressedOp) Schema() *schema.Schema { return nil }

func (s *suppressedOp) Open(ctx *exec.Context) error { return s.child.Open(ctx) }

//lint:ignore costcharge fixture: measurement shim, charged by the harness
func (s *suppressedOp) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		r, ok, err := s.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		return r, true, nil
	}
}

func (s *suppressedOp) Close(ctx *exec.Context) error { return s.child.Close(ctx) }

// chargeRowsFree is a plain function: its charge to the worker counter
// is NOT visible to the same-type reachability scan, so absorbOnly
// below is clean purely because Absorb counts as charging.
func chargeRowsFree(w *exec.Context, rows []value.Row) {
	for range rows {
		w.Counter.CPUTuples++
	}
}

// absorbOnly fans work out to a goroutine and merges the worker counter
// back with ctx.Absorb — the exchange-operator pattern. Its own loops
// charge nothing locally; Absorb is the charge.
type absorbOnly struct {
	child exec.Operator
	rows  []value.Row
	pos   int
}

func (a *absorbOnly) Schema() *schema.Schema { return nil }

func (a *absorbOnly) Open(ctx *exec.Context) error {
	rows, err := exec.Drain(ctx, a.child)
	if err != nil {
		return err
	}
	var parts [][]value.Row
	for i, r := range rows {
		if i%2 == 0 {
			parts = append(parts, nil)
		}
		parts[len(parts)-1] = append(parts[len(parts)-1], r)
	}
	w := exec.NewWorkerContext(ctx)
	done := make(chan struct{})
	go func() {
		chargeRowsFree(w, rows)
		close(done)
	}()
	<-done
	ctx.Absorb(w)
	a.rows = rows
	return nil
}

func (a *absorbOnly) Next(ctx *exec.Context) (value.Row, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	r := a.rows[a.pos]
	a.pos++
	return r, true, nil
}

func (a *absorbOnly) Close(ctx *exec.Context) error { return nil }

// goLeak spawns a worker whose private counter is never merged back:
// the cost it charged evaporates with the goroutine.
type goLeak struct {
	child exec.Operator
}

func (g *goLeak) Schema() *schema.Schema { return nil }

func (g *goLeak) Open(ctx *exec.Context) error { // want "goLeak.Open spawns goroutines but no method of goLeak reachable from Open/Next/NextBatch merges worker counters via ctx.Absorb"
	w := exec.NewWorkerContext(ctx)
	done := make(chan struct{})
	go func() {
		w.Counter.CPUTuples++
		close(done)
	}()
	<-done
	return g.child.Open(ctx)
}

func (g *goLeak) Next(ctx *exec.Context) (value.Row, bool, error) {
	return g.child.Next(ctx)
}

func (g *goLeak) Close(ctx *exec.Context) error { return g.child.Close(ctx) }

// batchAmortized is the batch idiom: row work lives only in NextBatch,
// units accumulate in a local and flush to ctx.Counter once per batch.
// Next is a pure pass-through, so without NextBatch in the reachable
// set the type would look like an uncharged free-looper.
type batchAmortized struct {
	child exec.Operator
}

func (b *batchAmortized) Schema() *schema.Schema { return nil }

func (b *batchAmortized) Open(ctx *exec.Context) error { return b.child.Open(ctx) }

func (b *batchAmortized) Next(ctx *exec.Context) (value.Row, bool, error) {
	return b.child.Next(ctx)
}

func (b *batchAmortized) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	var cpu int64
	defer func() { ctx.Counter.CPUTuples += cpu }()
	for len(dst.Rows) < max {
		r, ok, err := b.child.Next(ctx)
		if err != nil || !ok {
			return err
		}
		cpu++
		dst.Rows = append(dst.Rows, r)
	}
	return nil
}

func (b *batchAmortized) Close(ctx *exec.Context) error { return b.child.Close(ctx) }

// batchFree loops over rows only inside NextBatch and never charges:
// the batch path must not be a blind spot for the analyzer.
type batchFree struct {
	child exec.Operator
}

func (b *batchFree) Schema() *schema.Schema { return nil }

func (b *batchFree) Open(ctx *exec.Context) error { return b.child.Open(ctx) }

func (b *batchFree) Next(ctx *exec.Context) (value.Row, bool, error) {
	return b.child.Next(ctx)
}

func (b *batchFree) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error { // want "batchFree.NextBatch does row work but no method of batchFree reachable from Open/Next/NextBatch charges ctx.Counter"
	for len(dst.Rows) < max {
		r, ok, err := b.child.Next(ctx)
		if err != nil || !ok {
			return err
		}
		dst.Rows = append(dst.Rows, r)
	}
	return nil
}

func (b *batchFree) Close(ctx *exec.Context) error { return b.child.Close(ctx) }

// kernelFree delegates its per-row loop to a compiled expression kernel
// (expr.Pred.SelectBatch): the loop lives inside the kernel, not the
// operator body, but the call is row work all the same and must be
// charged from the kernel's evaluated-row count.
type kernelFree struct {
	child exec.Operator
	kern  *expr.Pred
	in    exec.Batch
}

func (k *kernelFree) Schema() *schema.Schema { return nil }

func (k *kernelFree) Open(ctx *exec.Context) error { return k.child.Open(ctx) }

func (k *kernelFree) Next(ctx *exec.Context) (value.Row, bool, error) {
	return k.child.Next(ctx)
}

func (k *kernelFree) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error { // want "kernelFree.NextBatch does row work but no method of kernelFree reachable from Open/Next/NextBatch charges ctx.Counter"
	k.in.Reset()
	if err := exec.FillBatch(ctx, k.child, &k.in, max); err != nil {
		return err
	}
	sel, _, err := k.kern.SelectBatch(k.in.Rows)
	if err != nil {
		return err
	}
	if len(sel) > 0 {
		dst.Rows = append(dst.Rows, k.in.Rows[sel[0]])
	}
	return nil
}

func (k *kernelFree) Close(ctx *exec.Context) error { return k.child.Close(ctx) }

// kernelCharging runs the same kernel but flushes the kernel's
// evaluated-row count to the ledger — the batch kernel idiom.
type kernelCharging struct {
	child exec.Operator
	kern  *expr.Pred
	in    exec.Batch
}

func (k *kernelCharging) Schema() *schema.Schema { return nil }

func (k *kernelCharging) Open(ctx *exec.Context) error { return k.child.Open(ctx) }

func (k *kernelCharging) Next(ctx *exec.Context) (value.Row, bool, error) {
	return k.child.Next(ctx)
}

func (k *kernelCharging) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	k.in.Reset()
	if err := exec.FillBatch(ctx, k.child, &k.in, max); err != nil {
		return err
	}
	sel, evaluated, err := k.kern.SelectBatch(k.in.Rows)
	ctx.Counter.CPUTuples += int64(evaluated)
	if err != nil {
		return err
	}
	if len(sel) > 0 {
		dst.Rows = append(dst.Rows, k.in.Rows[sel[0]])
	}
	return nil
}

func (k *kernelCharging) Close(ctx *exec.Context) error { return k.child.Close(ctx) }

// guardPass mirrors the executor's cardinality guard (exec.CardGuard):
// a pure pass-through that only counts rows and compares against a
// threshold. No loop, no row work — counting is free, so the analyzer
// must not demand a charge (the child it wraps charges for producing
// the rows).
type guardPass struct {
	child exec.Operator
	est   float64
	n     int64
}

func (g *guardPass) Schema() *schema.Schema { return g.child.Schema() }

func (g *guardPass) Open(ctx *exec.Context) error {
	g.n = 0
	return g.child.Open(ctx)
}

func (g *guardPass) Next(ctx *exec.Context) (value.Row, bool, error) {
	r, ok, err := g.child.Next(ctx)
	if ok {
		g.n++
		if float64(g.n) >= g.est*10 {
			return nil, false, errReplan
		}
	}
	return r, ok, err
}

func (g *guardPass) Close(ctx *exec.Context) error { return g.child.Close(ctx) }

var errReplan = errors.New("replan")

// guardFilter is the broken variant of a replan guard: it does real row
// work — draining and discarding the remainder of its child in a loop —
// without charging the discarded rows to the ledger. A replan path built
// on it would drop the abandoned plan's counter deltas.
type guardFilter struct {
	child exec.Operator
	est   float64
	n     int64
}

func (g *guardFilter) Schema() *schema.Schema { return g.child.Schema() }

func (g *guardFilter) Open(ctx *exec.Context) error { return g.child.Open(ctx) }

func (g *guardFilter) Next(ctx *exec.Context) (value.Row, bool, error) { // want "guardFilter.Next does row work but no method of guardFilter reachable from Open/Next/NextBatch charges ctx.Counter"
	r, ok, err := g.child.Next(ctx)
	if ok {
		g.n++
		if float64(g.n) >= g.est*10 {
			for {
				_, more, derr := g.child.Next(ctx)
				if derr != nil || !more {
					break
				}
			}
			return nil, false, errReplan
		}
	}
	return r, ok, err
}

func (g *guardFilter) Close(ctx *exec.Context) error { return g.child.Close(ctx) }
