// Package ctxcancel exercises the ctxcancel analyzer: row-pulling
// loops must observe exec.Context cancellation each iteration, and
// exchange-style worker goroutines must reach a cancellation check —
// otherwise a cancelled query spins or leaks workers.
package ctxcancel

import (
	"filterjoin/internal/exec"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// spinFilter pulls until a row survives the filter, deaf to
// cancellation: an all-filtered input spins forever after the caller
// hung up.
type spinFilter struct {
	child exec.Operator
}

func (s *spinFilter) Schema() *schema.Schema { return s.child.Schema() }

func (s *spinFilter) Open(ctx *exec.Context) error { return s.child.Open(ctx) }

func (s *spinFilter) Next(ctx *exec.Context) (value.Row, bool, error) {
	for { // want "loop pulls rows but never observes cancellation"
		r, ok, err := s.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if len(r) > 0 {
			ctx.Counter.CPUTuples++
			return r, true, nil
		}
	}
}

func (s *spinFilter) Close(ctx *exec.Context) error { return s.child.Close(ctx) }

// checkedFilter polls ctx.Err each iteration: compliant.
type checkedFilter struct {
	child exec.Operator
}

func (c *checkedFilter) Schema() *schema.Schema { return c.child.Schema() }

func (c *checkedFilter) Open(ctx *exec.Context) error { return c.child.Open(ctx) }

func (c *checkedFilter) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		r, ok, err := c.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if len(r) > 0 {
			ctx.Counter.CPUTuples++
			return r, true, nil
		}
	}
}

func (c *checkedFilter) Close(ctx *exec.Context) error { return c.child.Close(ctx) }

// helperChecked observes cancellation through a helper method: the
// check propagates through same-package calls.
type helperChecked struct {
	child exec.Operator
}

func (h *helperChecked) Schema() *schema.Schema { return h.child.Schema() }

func (h *helperChecked) Open(ctx *exec.Context) error { return h.child.Open(ctx) }

func (h *helperChecked) guard(ctx *exec.Context) error { return ctx.Err() }

func (h *helperChecked) Next(ctx *exec.Context) (value.Row, bool, error) {
	for {
		if err := h.guard(ctx); err != nil {
			return nil, false, err
		}
		r, ok, err := h.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if len(r) > 0 {
			return r, true, nil
		}
	}
}

func (h *helperChecked) Close(ctx *exec.Context) error { return h.child.Close(ctx) }

// pager refills through exec.FillBatch, which is itself obligated (by
// this analyzer running over the exec package) to observe cancellation:
// the call is both the pull and the check.
type pager struct {
	child exec.Operator
	buf   exec.Batch
	pos   int
}

func (p *pager) Schema() *schema.Schema { return p.child.Schema() }

func (p *pager) Open(ctx *exec.Context) error {
	p.buf.Reset()
	p.pos = 0
	return p.child.Open(ctx)
}

func (p *pager) Next(ctx *exec.Context) (value.Row, bool, error) {
	for p.pos >= p.buf.Len() {
		p.buf.Reset()
		p.pos = 0
		if err := exec.FillBatch(ctx, p.child, &p.buf, 64); err != nil {
			return nil, false, err
		}
		if p.buf.Len() == 0 {
			return nil, false, nil
		}
	}
	r := p.buf.Rows[p.pos]
	p.pos++
	return r, true, nil
}

func (p *pager) Close(ctx *exec.Context) error { return p.child.Close(ctx) }

// leakyGather spawns a producer goroutine that never checks
// cancellation: the worker outlives the query.
type leakyGather struct {
	child exec.Operator
	out   chan value.Row
}

func (g *leakyGather) Schema() *schema.Schema { return g.child.Schema() }

func (g *leakyGather) Open(ctx *exec.Context) error {
	if err := g.child.Open(ctx); err != nil {
		return err
	}
	g.out = make(chan value.Row, 4)
	go func() { // want "goroutine spawned by leakyGather never observes exec.Context cancellation"
		for {
			r, ok, err := g.child.Next(ctx)
			if err != nil || !ok {
				close(g.out)
				return
			}
			g.out <- r
		}
	}()
	return nil
}

func (g *leakyGather) Next(ctx *exec.Context) (value.Row, bool, error) {
	r, ok := <-g.out
	if !ok {
		return nil, false, nil
	}
	return r, true, nil
}

func (g *leakyGather) Close(ctx *exec.Context) error { return g.child.Close(ctx) }

// politeGather pumps through a method whose loop polls ctx.Err:
// compliant on both the loop rule and the goroutine rule.
type politeGather struct {
	child exec.Operator
	out   chan value.Row
}

func (g *politeGather) Schema() *schema.Schema { return g.child.Schema() }

func (g *politeGather) Open(ctx *exec.Context) error {
	if err := g.child.Open(ctx); err != nil {
		return err
	}
	g.out = make(chan value.Row, 4)
	go g.pump(ctx)
	return nil
}

func (g *politeGather) pump(ctx *exec.Context) {
	for {
		if ctx.Err() != nil {
			close(g.out)
			return
		}
		r, ok, err := g.child.Next(ctx)
		if err != nil || !ok {
			close(g.out)
			return
		}
		g.out <- r
	}
}

func (g *politeGather) Next(ctx *exec.Context) (value.Row, bool, error) {
	r, ok := <-g.out
	if !ok {
		return nil, false, nil
	}
	return r, true, nil
}

func (g *politeGather) Close(ctx *exec.Context) error { return g.child.Close(ctx) }

// drainAll is a drain shim without the obligation the real ones carry:
// free functions driving an Operator parameter are in scope too.
func drainAll(ctx *exec.Context, op exec.Operator) ([]value.Row, error) {
	var out []value.Row
	for { // want "loop pulls rows but never observes cancellation"
		r, ok, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// spinCount is a bench harness helper over bounded local input; the
// suppression records why the liveness rule is waived.
func spinCount(ctx *exec.Context, op exec.Operator) (int, error) {
	n := 0
	//lint:ignore ctxcancel fixture: bench harness, input is bounded and local
	for {
		_, ok, err := op.Next(ctx)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
