// Package lockepoch exercises the lockepoch analyzer: engine-like
// types (sync.RWMutex + integer epoch field) must mutate catalog/model
// state only under the write lock, bump the epoch and invalidate
// caches before returning, never upgrade a read lock, and *Locked
// helpers must not lock their own mutex.
package lockepoch

import (
	"errors"
	"sync"
)

var errBad = errors.New("negative row")

type table struct{ rows []int }

func (t *table) Insert(r int) { t.rows = append(t.rows, r) }

type planCache struct{ m map[string]int }

func (p *planCache) Clear()                   { p.m = map[string]int{} }
func (p *planCache) Put(k string, v int)      { p.m[k] = v }
func (p *planCache) Get(k string) (int, bool) { v, ok := p.m[k]; return v, ok }

type catalog struct{ tables map[string]*table }

func (c *catalog) AddTable(name string, t *table) { c.tables[name] = t }
func (c *catalog) Drop(name string)               { delete(c.tables, name) }
func (c *catalog) Lookup(name string) *table      { return c.tables[name] }

// engine is the shape the analyzer keys on: an RWMutex plus an integer
// epoch field in one struct.
type engine struct {
	mu    sync.RWMutex
	epoch uint64
	cat   *catalog
	cache *planCache
	stats int
}

// invalidateLocked is the canonical bump-and-clear helper; its summary
// (bumps + clears) is applied at call sites.
func (e *engine) invalidateLocked() {
	e.epoch++
	e.cache.Clear()
}

// createTable is the disciplined mutation path: write lock, mutate,
// bump + invalidate via the helper.
func (e *engine) createTable(name string, t *table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cat.AddTable(name, t)
	e.invalidateLocked()
}

// lookup is a clean read path: read lock only.
func (e *engine) lookup(name string) *table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat.Lookup(name)
}

// insertUnlocked mutates a catalog table without any lock held.
func (e *engine) insertUnlocked(name string, r int) {
	t := e.cat.Lookup(name)
	t.Insert(r) // want "catalog/model mutation Insert\(\) without the write lock held"
	e.mu.Lock()
	defer e.mu.Unlock()
	e.invalidateLocked()
}

// createNoInvalidate mutates under the lock but forgets both the epoch
// bump and the cache invalidation.
func (e *engine) createNoInvalidate(name string, t *table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cat.AddTable(name, t)
	return nil // want "return after catalog/model mutation without epoch bump \+ cache invalidation; stale cached plans survive the mutation"
}

// insertRows invalidates on the happy path but leaks an early return
// inside the loop with the debt still owed.
func (e *engine) insertRows(name string, rows []int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Lookup(name)
	for _, r := range rows {
		if r < 0 {
			t.Insert(0)
			return errBad // want "return after catalog/model mutation without epoch bump \+ cache invalidation"
		}
		t.Insert(r)
	}
	e.epoch++
	e.cache.Clear()
	return nil
}

// lookupThenUpgrade attempts the classic RLock-to-Lock upgrade, which
// self-deadlocks under sync.RWMutex.
func (e *engine) lookupThenUpgrade(name string) *table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t := e.cat.Lookup(name)
	if t == nil {
		e.mu.Lock() // want "write lock acquired while the read lock is held \(upgrade deadlock\)"
		defer e.mu.Unlock()
		return nil
	}
	return t
}

// statsLocked promises via its name that the caller holds the lock,
// then locks anyway.
func (e *engine) statsLocked() int {
	e.mu.RLock() // want "statsLocked is a \*Locked method \(caller holds the lock\) but locks its own mutex"
	defer e.mu.RUnlock()
	return e.stats
}

// setStats writes shared engine fields with no lock at all.
func (e *engine) setStats(v int) {
	e.stats = v // want "write to e.stats outside the write lock"
	e.epoch++   // want "write to e.epoch outside the write lock"
	e.cache.Clear()
}

// newEngine builds a fresh engine: an object nobody else can see yet
// needs no lock and no invalidation (constructor exemption).
func newEngine() *engine {
	e := &engine{cat: &catalog{tables: map[string]*table{}}, cache: &planCache{m: map[string]int{}}}
	e.cat.AddTable("bootstrap", &table{})
	e.stats = 1
	e.epoch = 1
	return e
}

// db wraps an engine behind a field: lock tracking follows the
// selector chain, not just bare receivers.
type db struct{ eng *engine }

func (d *db) rename(oldName, newName string, t *table) {
	d.eng.mu.Lock()
	defer d.eng.mu.Unlock()
	d.eng.cat.Drop(oldName)
	d.eng.cat.AddTable(newName, t)
	d.eng.invalidateLocked()
}

// bootstrapInsert runs before any reader exists; the suppression
// documents why the discipline does not apply.
func (e *engine) bootstrapInsert(name string, r int) {
	//lint:ignore lockepoch fixture: startup is single-threaded, no readers yet
	e.cat.Lookup(name).Insert(r)
	e.invalidateLocked()
}

// ObserveFeedback mirrors the adaptive statistics feedback path: it
// records an observed selectivity on a catalog entry, changing what
// future optimizations estimate — a mutation like any DDL.
func (t *table) ObserveFeedback(sel float64) bool { return sel > 0 }

// absorbFeedback is the disciplined adaptive path: write lock, record
// the observations, bump + invalidate before returning.
func (e *engine) absorbFeedback(name string, sels []float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Lookup(name)
	for _, s := range sels {
		t.ObserveFeedback(s)
	}
	e.invalidateLocked()
}

// absorbFeedbackNoBump records feedback under the write lock but skips
// the epoch bump: plans cached against the stale statistics survive.
func (e *engine) absorbFeedbackNoBump(name string, sel float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cat.Lookup(name).ObserveFeedback(sel)
	return nil // want "return after catalog/model mutation without epoch bump \+ cache invalidation; stale cached plans survive the mutation"
}

// absorbFeedbackUnlocked records feedback with no lock at all.
func (e *engine) absorbFeedbackUnlocked(name string, sel float64) {
	e.cat.Lookup(name).ObserveFeedback(sel) // want "catalog/model mutation ObserveFeedback\(\) without the write lock held"
	e.mu.Lock()
	defer e.mu.Unlock()
	e.invalidateLocked()
}
