// Package orderprop exercises the orderprop analyzer: every plan.Node
// composite literal must declare Ordering, mark itself unordered with
// an explicit nil, or live in a function that assigns .Ordering.
package orderprop

import "filterjoin/internal/plan"

func missing() *plan.Node {
	return &plan.Node{ // want "plan.Node constructed without declaring Ordering"
		Kind: "Mystery",
	}
}

func missingValue() plan.Node {
	return plan.Node{ // want "plan.Node constructed without declaring Ordering"
		Kind: "Mystery",
	}
}

func explicitNil() *plan.Node {
	return &plan.Node{
		Kind:     "Scan",
		Ordering: nil, // heap order: explicitly unordered
	}
}

func explicitOrder() *plan.Node {
	return &plan.Node{
		Kind:     "IndexScan",
		Ordering: plan.Ordering{{Cols: []int{0}}},
	}
}

func assignsAfter() *plan.Node {
	n := &plan.Node{Kind: "Join"}
	n.Ordering = plan.Ordering{{Cols: []int{1}}}
	return n
}

func suppressed() *plan.Node {
	//lint:ignore orderprop fixture: ordering attached by the caller
	return &plan.Node{Kind: "Shim"}
}
