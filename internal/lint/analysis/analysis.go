// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// toolchain image this repo builds in has no module proxy access, so
// the upstream module cannot be imported; keeping the shapes identical
// (Analyzer.Name/Doc/Run, Pass.Fset/Files/Pkg/TypesInfo/Reportf) means
// the optlint analyzers can be ported to the real framework by swapping
// this import alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. The runner installs a collector
	// that applies //lint:ignore suppression before surfacing it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// WithStack walks the subtree rooted at n in depth-first order,
// calling f with each node and the stack of its ancestors (outermost
// first, not including the node itself). Returning false skips the
// node's children. It mirrors x/tools' inspector.WithStack closely
// enough for the analyzers here.
func WithStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var walk func(ast.Node)
	walk = func(cur ast.Node) {
		if cur == nil {
			return
		}
		if !f(cur, stack) {
			return
		}
		stack = append(stack, cur)
		ast.Inspect(cur, func(c ast.Node) bool {
			if c == cur {
				return true
			}
			if c == nil {
				return false
			}
			walk(c)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(n)
}

// ImportedPackage returns the package with the given import path from
// the pass's transitive imports, or the pass's own package when the
// path matches it. It returns nil when the package is not reachable —
// analyzers use that to skip packages the invariant cannot apply to.
func (p *Pass) ImportedPackage(path string) *types.Package {
	if p.Pkg.Path() == path {
		return p.Pkg
	}
	seen := map[*types.Package]bool{}
	var find func(pkg *types.Package) *types.Package
	find = func(pkg *types.Package) *types.Package {
		if seen[pkg] {
			return nil
		}
		seen[pkg] = true
		for _, imp := range pkg.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return find(p.Pkg)
}

// NamedInterface resolves an interface type by package path and name
// through the pass's imports; nil when unreachable or not an interface.
func (p *Pass) NamedInterface(path, name string) *types.Interface {
	pkg := p.ImportedPackage(path)
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// Implements reports whether t or *t satisfies iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
