package lint

import (
	"go/ast"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Ctxcancel enforces cancellation liveness (DESIGN.md §13): a serving
// engine must be able to abandon a query when the caller's
// context.Context is cancelled, which means every row-pumping loop and
// every exchange-operator worker goroutine has to observe
// exec.Context.Caller. Two rules:
//
//  1. Pull loops: inside Next/NextBatch (and their same-type helpers,
//     and package-level functions that drive an Operator parameter —
//     the FillBatch/forEachInput shims), a for/range loop that pulls
//     rows (calls an Operator's Next/NextBatch, or one of the exec
//     drain shims) must contain a cancellation check: ctx.Err(), a
//     Caller/Done access, or a call into a helper that performs one.
//     Without it, a hash join probing a large build side spins
//     arbitrarily long after the caller hung up.
//  2. Worker goroutines: a goroutine spawned from a method reachable
//     from Open/Next/NextBatch (the ParallelScan/Gather/
//     ParallelHashJoin workers) must reach a cancellation check through
//     the functions it calls; an uncancellable worker leaks for the
//     lifetime of its input.
//
// Calls to exec's own drain shims (Drain, Count, FillBatch,
// forEachInput, BuildKeySet, BuildKeySetSized) count as checked pulls:
// rule 1 applied to the exec package itself enforces that those shims
// check on every iteration, so crediting their callers is sound.
var Ctxcancel = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "row-pulling loops and exchange worker goroutines observe exec.Context cancellation",
	Run:  runCtxcancel,
}

// ccCheckedShims are exec package functions that both pull from an
// operator and observe cancellation internally (enforced by rule 1 when
// this analyzer runs over the exec package).
var ccCheckedShims = map[string]bool{
	"Drain":            true,
	"Count":            true,
	"FillBatch":        true,
	"forEachInput":     true,
	"BuildKeySet":      true,
	"BuildKeySetSized": true,
}

func runCtxcancel(pass *analysis.Pass) error {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface == nil {
		return nil
	}
	cc := &ccAnalysis{pass: pass, iface: iface}
	cc.buildIndex()
	cc.propagateChecks()

	// Rule 1 on operator methods reachable from Next/NextBatch.
	methodsOf := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, fd := range cc.decls {
		if fd.Recv == nil {
			continue
		}
		tn := receiverTypeName(pass, fd)
		if tn == nil {
			continue
		}
		if methodsOf[tn] == nil {
			methodsOf[tn] = map[string]*ast.FuncDecl{}
		}
		methodsOf[tn][fd.Name.Name] = fd
	}
	for tn, methods := range methodsOf {
		if !analysis.Implements(tn.Type(), iface) {
			continue
		}
		reach := map[string]*ast.FuncDecl{}
		var add func(seed string)
		add = func(name string) {
			fd, ok := methods[name]
			if !ok || reach[name] != nil {
				return
			}
			reach[name] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if callee := calleeOn(pass, sel, tn); callee != "" {
							add(callee)
						}
					}
				}
				return true
			})
		}
		add("Next")
		add("NextBatch")
		for _, fd := range reach {
			cc.checkLoops(fd.Body)
		}

		// Rule 2: goroutines reachable from the executable surface.
		add("Open")
		for _, fd := range reach {
			cc.checkGoroutines(fd, tn.Name())
		}
	}

	// Rule 1 on package-level functions that drive an Operator parameter
	// (the drain shims themselves, when analyzing the exec package).
	for _, fd := range cc.decls {
		if fd.Recv != nil || !cc.hasOperatorParam(fd) {
			continue
		}
		cc.checkLoops(fd.Body)
		cc.checkGoroutines(fd, fd.Name.Name)
	}
	return nil
}

type ccAnalysis struct {
	pass  *analysis.Pass
	iface *types.Interface
	decls []*ast.FuncDecl
	// byObj maps every package function/method object to its body.
	byObj map[types.Object]*ast.FuncDecl
	// checks marks functions that (transitively) observe cancellation.
	checks map[types.Object]bool
}

func (cc *ccAnalysis) buildIndex() {
	cc.byObj = map[types.Object]*ast.FuncDecl{}
	cc.checks = map[types.Object]bool{}
	for _, file := range cc.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cc.decls = append(cc.decls, fd)
			if obj := cc.pass.TypesInfo.Defs[fd.Name]; obj != nil {
				cc.byObj[obj] = fd
			}
		}
	}
}

// propagateChecks computes, to a fixpoint, which package functions
// reach a direct cancellation check through same-package calls.
func (cc *ccAnalysis) propagateChecks() {
	for obj, fd := range cc.byObj {
		if cc.containsDirectCheck(fd.Body) {
			cc.checks[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range cc.byObj {
			if cc.checks[obj] {
				continue
			}
			hit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if hit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := cc.calleeObj(call); callee != nil && cc.checks[callee] {
						hit = true
					}
				}
				return true
			})
			if hit {
				cc.checks[obj] = true
				changed = true
			}
		}
	}
}

// calleeObj resolves a call to a same-package function/method object.
func (cc *ccAnalysis) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := cc.pass.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := cc.byObj[obj]; ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := cc.pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, ok := cc.byObj[sel.Obj()]; ok {
				return sel.Obj()
			}
		} else if obj := cc.pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if _, ok := cc.byObj[obj]; ok {
				return obj
			}
		}
	}
	return nil
}

// containsDirectCheck reports whether the subtree observes cancellation:
// an Err() call on exec.Context or context.Context, a Done() call, or a
// Caller field access.
func (cc *ccAnalysis) containsDirectCheck(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		sel, ok := c.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Err", "Done":
			if cc.isCancelSource(sel.X) {
				found = true
			}
		case "Caller":
			if s, ok := cc.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if named := ccNamedOf(s.Recv()); named != nil && named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == execPkgPath {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isCancelSource reports whether e is an exec.Context or a
// context.Context value.
func (cc *ccAnalysis) isCancelSource(e ast.Expr) bool {
	tv, ok := cc.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named := ccNamedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	name, path := named.Obj().Name(), named.Obj().Pkg().Path()
	return (name == "Context" && path == execPkgPath) || (name == "Context" && path == "context")
}

func ccNamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasOperatorParam reports whether fd takes an exec.Operator (or
// implementation) parameter — the drain-shim shape.
func (cc *ccAnalysis) hasOperatorParam(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, fl := range fd.Type.Params.List {
		t := cc.pass.TypesInfo.Types[fl.Type].Type
		if t == nil {
			continue
		}
		if types.Implements(t, cc.iface) || analysis.Implements(t, cc.iface) {
			return true
		}
	}
	return false
}

// checkLoops flags pull loops without a cancellation check, outermost
// first (an inner loop is only visited when its ancestors are clean).
func (cc *ccAnalysis) checkLoops(body *ast.BlockStmt) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			var loopBody *ast.BlockStmt
			switch l := c.(type) {
			case *ast.ForStmt:
				loopBody = l.Body
			case *ast.RangeStmt:
				loopBody = l.Body
			case *ast.FuncLit:
				return false // goroutine/closure bodies handled by rule 2
			default:
				return true
			}
			if cc.containsPull(loopBody) && !cc.containsCheckCredit(loopBody) {
				cc.pass.Reportf(c.Pos(), "loop pulls rows but never observes cancellation; check ctx.Err() (or select on Caller.Done) each iteration")
			} else {
				visit(loopBody)
			}
			return false
		})
	}
	visit(body)
}

// containsPull reports whether the loop body pulls rows: an operator
// Next/NextBatch call or a drain-shim call.
func (cc *ccAnalysis) containsPull(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cc.isShimCall(call) {
			found = true
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Next" && sel.Sel.Name != "NextBatch" {
			return true
		}
		if s, ok := cc.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if analysis.Implements(s.Recv(), cc.iface) {
				found = true
			}
		}
		return true
	})
	return found
}

// isShimCall matches calls to exec's checked drain shims, qualified
// (exec.FillBatch) or package-local (forEachInput).
func (cc *ccAnalysis) isShimCall(call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = cc.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = cc.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != execPkgPath {
		return false
	}
	return ccCheckedShims[fn.Name()]
}

// containsCheckCredit reports whether the loop body observes
// cancellation directly, via a shim call, or via a same-package callee
// that does.
func (cc *ccAnalysis) containsCheckCredit(n ast.Node) bool {
	if cc.containsDirectCheck(n) {
		return true
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cc.isShimCall(call) {
			found = true
			return true
		}
		if callee := cc.calleeObj(call); callee != nil && cc.checks[callee] {
			found = true
		}
		return true
	})
	return found
}

// checkGoroutines flags goroutines whose body never reaches a
// cancellation check.
func (cc *ccAnalysis) checkGoroutines(fd *ast.FuncDecl, owner string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		live := false
		if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
			live = cc.containsCheckCredit(fl.Body)
		} else if callee := cc.calleeObj(g.Call); callee != nil {
			live = cc.checks[callee]
		} else {
			// Target outside the package (channel helper, stdlib):
			// assume the spawner knows what it is doing.
			live = true
		}
		if !live {
			cc.pass.Reportf(g.Pos(), "goroutine spawned by %s never observes exec.Context cancellation; a cancelled query leaks this worker", owner)
		}
		return true
	})
}
