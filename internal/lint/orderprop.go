package lint

import (
	"go/ast"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Orderprop enforces the interesting-order contract on physical plan
// construction: every plan.Node composite literal must declare the
// node's output Ordering — explicitly ordered, or explicitly unordered
// via `Ordering: nil` — or have the Ordering field assigned in the
// same function. A constructor that silently leaves Ordering unset
// puts the node in the memo's "" bucket even when its operator really
// produces sorted output, so the optimizer both loses sort-elision
// opportunities and, worse, can cost a downstream merge join as if a
// sort were still required. The memo's property buckets (PR 2) are
// only honest when every constructor states what it knows.
var Orderprop = &analysis.Analyzer{
	Name: "orderprop",
	Doc:  "require every plan.Node construction to declare its output Ordering",
	Run:  runOrderprop,
}

const planPkgPath = "filterjoin/internal/plan"

func runOrderprop(pass *analysis.Pass) error {
	planPkg := pass.ImportedPackage(planPkgPath)
	if planPkg == nil {
		return nil
	}
	nodeObj := planPkg.Scope().Lookup("Node")
	if nodeObj == nil {
		return nil
	}
	nodeType := nodeObj.Type()

	for _, file := range pass.Files {
		// Functions that assign .Ordering anywhere in their body may
		// build the literal first and attach the property afterwards.
		assigners := map[ast.Node]bool{}
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Ordering" {
					for _, anc := range stack {
						switch anc.(type) {
						case *ast.FuncDecl, *ast.FuncLit:
							assigners[anc] = true
						}
					}
				}
			}
			return true
		})
		// Second pass: inspect literals with the enclosing function known.
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isPlanNodeLit(pass, lit, nodeType) || hasOrderingKey(lit) {
				return true
			}
			// The innermost enclosing function may attach the property
			// after construction (n.Ordering = ...).
			var fn ast.Node
			for i := len(stack) - 1; i >= 0 && fn == nil; i-- {
				switch stack[i].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					fn = stack[i]
				}
			}
			if fn != nil && assigners[fn] {
				return true
			}
			pass.Reportf(lit.Lbrace, "plan.Node constructed without declaring Ordering; set it (or `Ordering: nil` for explicitly unordered) so the property memo stays honest")
			return true
		})
	}
	return nil
}

func isPlanNodeLit(pass *analysis.Pass, lit *ast.CompositeLit, nodeType types.Type) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return types.Identical(t, nodeType)
}

func hasOrderingKey(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Ordering" {
				return true
			}
		}
	}
	return false
}
