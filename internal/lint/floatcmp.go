package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"

	"filterjoin/internal/lint/analysis"
)

// Floatcmp forbids raw float comparison operators on cost values in
// the optimizer and cost packages: plan dominance decided by `<=` on
// float64 totals is sensitive to summation order noise, so two plans
// whose Table 1 components merely accumulate in a different order can
// flip a pruning decision. Dominance comparisons must go through the
// epsilon helpers (cost.Less, cost.LessEq, cost.ApproxEq), which this
// analyzer exempts by file.
var Floatcmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag raw ==/!=/</<=/>/>= on cost floats outside the cost epsilon helpers",
	Run:  runFloatcmp,
}

// floatcmpPackages are the packages in which the rule is enforced.
var floatcmpPackages = map[string]bool{
	"filterjoin/internal/opt":  true,
	"filterjoin/internal/cost": true,
	"filterjoin/internal/core": true,
}

// floatcmpExemptFile hosts the designated epsilon helpers.
const floatcmpExemptFile = "compare.go"

// costNameRe matches identifiers that carry scalar cost values by
// naming convention (cost, candCost, costA, totalCost, bestTotal, ...).
// Deliberately broad: inside the enforced packages a float named after
// cost/total is a cost, and false positives have a suppression escape.
var costNameRe = regexp.MustCompile(`(?i)cost|total`)

func runFloatcmp(pass *analysis.Pass) error {
	if !enforcedPackage(pass.Pkg.Path(), floatcmpPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == floatcmpExemptFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			// Comparisons against constants are range guards (cost > 0),
			// not dominance decisions between two computed costs.
			if isConstant(pass, be.X) || isConstant(pass, be.Y) {
				return true
			}
			if costValued(pass, be.X) || costValued(pass, be.Y) {
				pass.Reportf(be.OpPos, "raw float comparison on cost values; use cost.Less/LessEq/ApproxEq so dominance is epsilon-tolerant")
			}
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// costValued reports whether e computes a scalar cost: it contains a
// call to a method named Total or TotalEstimate, or mentions an
// identifier whose name follows the cost naming convention.
func costValued(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Total" || sel.Sel.Name == "TotalEstimate" {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if costNameRe.MatchString(x.Name) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if costNameRe.MatchString(x.Sel.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
