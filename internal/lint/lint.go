// Package lint hosts optlint, the repo's static-analysis suite. Eleven
// analyzers encode contracts the paper's cost-based argument depends
// on; each maps to a runtime invariant that was previously enforced
// only by property tests (see DESIGN.md "Static analysis"):
//
//   - opclose:    every Operator Open is balanced by Close on all
//     paths, and Close errors are never silently dropped.
//   - costcharge: an Operator whose Open/Next does per-row work must
//     charge ctx.Counter (Table 1 cost conservation).
//   - orderprop:  every plan.Node construction declares its output
//     Ordering, or explicitly marks itself unordered (interesting-
//     order memo honesty).
//   - exhaustive: switches over the Limitation 3 filter-set variant
//     enums cover every variant; type switches over expr.Expr cover
//     every expression form or carry a default.
//   - floatcmp:   cost dominance comparisons go through the epsilon
//     helpers in internal/cost, never raw float operators.
//   - sitefault:  transport Send errors are never discarded, so a
//     *dist.SiteError always propagates to the facade's
//     graceful-degradation handler.
//   - lockepoch:  Engine catalog/model mutations hold the write lock
//     on every path and bump the epoch + invalidate caches before
//     returning; read paths never take the write lock (epoch
//     monotonicity).
//   - sharesafe:  operator state written during execution is forked or
//     reset at Open, and plan Make closures build fresh trees
//     (cached-plan immutability).
//   - parambind:  operator-captured expressions are rebound via
//     expr.Bind* at Open, and Lit-classifying switches handle Param
//     (bind completeness).
//   - ctxcancel:  row-pulling loops and exchange worker goroutines
//     observe exec.Context cancellation (cancellation liveness).
//   - batchparity: NextBatch implementations keep a Next fallback and
//     charge the same Counter fields on both paths (batch/row cost
//     parity).
//
// A finding is suppressed by a "//lint:ignore <analyzer> <reason>"
// comment on the flagged line or the line directly above it.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"filterjoin/internal/lint/analysis"
	"filterjoin/internal/lint/loader"
)

// All returns the full analyzer suite in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Opclose,
		Costcharge,
		Orderprop,
		Exhaustive,
		Floatcmp,
		Sitefault,
		Lockepoch,
		Sharesafe,
		Parambind,
		Ctxcancel,
		Batchparity,
	}
}

// enforcedPackage reports whether an analyzer scoped to the given real
// package set should run on the package: either the path is in the
// set, or it is an analysistest fixture (loaded under "fixture/").
func enforcedPackage(path string, real map[string]bool) bool {
	return real[path] || strings.HasPrefix(path, "fixture/")
}

// ignoreRe matches one suppression directive.
var ignoreRe = regexp.MustCompile(`//lint:ignore\s+([a-z,]+)\s+\S`)

// ignoresIn collects, per file line, the analyzer names suppressed on
// that line. A directive suppresses both its own line and the next
// line, so it works as a trailing comment and as a standalone comment
// above the flagged statement.
func ignoresIn(pkg *loader.Package, fset *token.FileSet) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					out[pos.Filename] = byLine
				}
				names := strings.Split(m[1], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return out
}

// Directive is one parsed //lint:ignore comment. Parsing here is
// deliberately lenient — malformed directives (no analyzer name, no
// reason) are returned with empty fields rather than skipped, so the
// suppression audit can reject them. Note a reason-less directive also
// fails to match ignoreRe, i.e. it suppresses nothing at runtime.
type Directive struct {
	File   string
	Line   int
	Names  []string
	Reason string
}

// directiveRe is the lenient counterpart of ignoreRe: it matches any
// comment that begins a suppression attempt, well-formed or not.
var directiveRe = regexp.MustCompile(`^//lint:ignore\b[ \t]*(\S*)[ \t]*(.*)$`)

// DirectivesIn parses every //lint:ignore comment in pkgs.
func DirectivesIn(fset *token.FileSet, pkgs []*loader.Package) []Directive {
	var out []Directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					d := Directive{File: pos.Filename, Line: pos.Line, Reason: strings.TrimSpace(m[2])}
					if m[1] != "" {
						d.Names = strings.Split(m[1], ",")
					}
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// RunRaw applies every analyzer with suppression disabled, returning
// every diagnostic produced. The suppression audit uses this to detect
// stale ignores: a directive with no raw diagnostic on its line or the
// next is dead weight.
func RunRaw(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return run(fset, pkgs, analyzers, false)
}

// Run applies every analyzer to every package and returns the
// surviving (unsuppressed) diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return run(fset, pkgs, analyzers, true)
}

func run(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer, suppress bool) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if pkg.Pkg == nil {
			continue
		}
		var ignores map[string]map[int][]string
		if suppress {
			ignores = ignoresIn(pkg, fset)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				for _, name := range ignores[pos.Filename][pos.Line] {
					if name == d.Analyzer {
						return
					}
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
