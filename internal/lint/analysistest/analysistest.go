// Package analysistest runs one optlint analyzer over a fixture package
// under internal/lint/testdata/src and checks its diagnostics against
// `// want "regexp"` comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract. Fixtures are
// loaded under the import path "fixture/<name>", which the analyzers'
// package gates treat as always-enforced, and may import real packages
// of this module. Suppression directives (//lint:ignore) are applied
// exactly as in production, so a fixture line carrying a directive and
// no want comment asserts the suppression works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"filterjoin/internal/lint"
	"filterjoin/internal/lint/analysis"
	"filterjoin/internal/lint/loader"
)

// wantRe matches one expectation comment. The payload is a regexp in
// double quotes; escaped quotes are not supported (keep messages simple).
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<fixture> and applies a, failing t on any
// mismatch between reported diagnostics and want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join(testdataDir(t), "src", fixture)
	// The shared loader memoizes parse/typecheck results process-wide:
	// the real module packages a fixture imports (exec, expr, ...) and
	// their stdlib closure are loaded once for the whole test run, not
	// once per fixture.
	l, err := loader.NewShared(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", fixture, terr)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := l.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}

	diags, err := lint.Run(l.Fset, []*loader.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if exp := match(wants, pos.Filename, pos.Line, d.Message); exp != nil {
			exp.hit = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
	}
	for _, exp := range wants {
		if !exp.hit {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, filepath.Base(exp.file), exp.line, exp.re)
		}
	}
}

func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// testdataDir locates internal/lint/testdata relative to this source
// file, so tests work regardless of the package under test's cwd.
func testdataDir(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal(fmt.Errorf("cannot locate analysistest source"))
	}
	return filepath.Join(filepath.Dir(self), "..", "testdata")
}
