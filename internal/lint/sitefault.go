package lint

import (
	"go/ast"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Sitefault guards the graceful-degradation contract of the transport
// layer: every network crossing goes through dist.Send (or a
// dist.Net / exec.Transport Send call), and the error those calls
// return is the only way a *dist.SiteError reaches the facade, where it
// triggers the fallback to the optimizer's best fault-free plan. A call
// site that discards that error — a bare expression statement, an
// assignment to blank, or a go/defer call — turns an unreachable site
// into silently missing rows, which is exactly the class of wrong
// answer the fault-injection suite exists to rule out.
var Sitefault = &analysis.Analyzer{
	Name: "sitefault",
	Doc:  "flag transport Send calls whose error is discarded; *dist.SiteError must propagate for degradation",
	Run:  runSitefault,
}

// sitefaultPackages are the packages in which the rule is enforced:
// everywhere an operator or the facade can touch the transport.
var sitefaultPackages = map[string]bool{
	"filterjoin":               true,
	"filterjoin/internal/core": true,
	"filterjoin/internal/dist": true,
	"filterjoin/internal/exec": true,
	"filterjoin/internal/opt":  true,
}

func runSitefault(pass *analysis.Pass) error {
	if !enforcedPackage(pass.Pkg.Path(), sitefaultPackages) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && isTransportSend(pass, call) {
					pass.Reportf(call.Pos(), "transport Send error discarded; propagate it so a *dist.SiteError can trigger degradation")
				}
			case *ast.AssignStmt:
				// Send returns exactly one value, so a discarded error is a
				// single-call assignment whose targets are all blank.
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok || !isTransportSend(pass, call) {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				pass.Reportf(call.Pos(), "transport Send error assigned to blank; propagate it so a *dist.SiteError can trigger degradation")
			case *ast.GoStmt:
				if isTransportSend(pass, st.Call) {
					pass.Reportf(st.Call.Pos(), "transport Send started as a goroutine discards its error; propagate it so a *dist.SiteError can trigger degradation")
				}
			case *ast.DeferStmt:
				if isTransportSend(pass, st.Call) {
					pass.Reportf(st.Call.Pos(), "deferred transport Send discards its error; propagate it so a *dist.SiteError can trigger degradation")
				}
			}
			return true
		})
	}
	return nil
}

// isTransportSend reports whether the call resolves to one of the
// transport entry points: the package function dist.Send, the concrete
// (*dist.Net).Send, or the exec.Transport interface method Send.
func isTransportSend(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Send" || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "filterjoin/internal/dist":
		return true // dist.Send and (*dist.Net).Send
	case "filterjoin/internal/exec":
		// Only the Transport interface method, not any other Send that
		// might appear in exec later.
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
		return isIface
	}
	return false
}
