package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Sharesafe enforces the cached-plan immutability contract (DESIGN.md
// §12/§13): a plan-cache entry is shared by every session that hits it,
// and its Make closures may be invoked concurrently, so the executable
// state an operator mutates must be private to one execution. Three
// rules make the filterJoinOp fork-at-Open convention a checked
// contract:
//
//  1. Fork before write: inside Open/Next/NextBatch/Close (and the
//     same-type helpers they reach), a write through a pointer- or
//     interface-typed receiver field (x.P.f = v) is flagged unless the
//     field itself was reassigned earlier in the same method (x.P =
//     x.spec.P.Fork() and the like) — otherwise concurrent executions
//     of one cached plan race on a single shared object.
//  2. Reset at Open: every receiver field an operator writes on the
//     Next/NextBatch side must be written (or reset via a method call /
//     address-taken fill) on the Open side, so a reopened or re-served
//     operator never replays state from a previous execution.
//  3. Fresh Make: a func literal assigned to a Make field must return a
//     freshly built operator (constructor call, composite literal, or a
//     variable declared inside the closure) — returning a captured
//     instance would hand the same operator to every execution.
var Sharesafe = &analysis.Analyzer{
	Name: "sharesafe",
	Doc:  "operator state written during execution is forked or reset at Open, never shared via the plan cache",
	Run:  runSharesafe,
}

func runSharesafe(pass *analysis.Pass) error {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface != nil {
		runSharesafeOperators(pass, iface)
	}
	runSharesafeMake(pass)
	return nil
}

func runSharesafeOperators(pass *analysis.Pass, iface *types.Interface) {
	methodsOf := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(pass, fd)
			if tn == nil {
				continue
			}
			if methodsOf[tn] == nil {
				methodsOf[tn] = map[string]*ast.FuncDecl{}
			}
			methodsOf[tn][fd.Name.Name] = fd
		}
	}

	for tn, methods := range methodsOf {
		if !analysis.Implements(tn.Type(), iface) {
			continue
		}
		reach := func(seeds ...string) map[string]*ast.FuncDecl {
			out := map[string]*ast.FuncDecl{}
			var add func(name string)
			add = func(name string) {
				fd, ok := methods[name]
				if !ok || out[name] != nil {
					return
				}
				out[name] = fd
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							if callee := calleeOn(pass, sel, tn); callee != "" {
								add(callee)
							}
						}
					}
					return true
				})
			}
			for _, s := range seeds {
				add(s)
			}
			return out
		}

		execReach := reach("Open", "Next", "NextBatch", "Close")
		for _, fd := range execReach {
			checkForkBeforeWrite(pass, tn, fd)
		}

		if _, hasOpen := methods["Open"]; !hasOpen {
			continue
		}
		openReach := reach("Open")
		nextReach := reach("Next", "NextBatch")

		openResets := map[string]bool{}
		for _, fd := range openReach {
			collectFieldTouches(pass, fd, func(field string, _ token.Pos, _ bool) {
				openResets[field] = true
			})
		}
		reported := map[string]bool{}
		for _, name := range sortedMethodNames(nextReach) {
			fd := nextReach[name]
			if openReach[name] != nil {
				continue // shared helper: its writes count as Open-side resets
			}
			collectFieldTouches(pass, fd, func(field string, pos token.Pos, isWrite bool) {
				if !isWrite || openResets[field] || reported[field] {
					return
				}
				reported[field] = true
				pass.Reportf(pos, "%s.%s writes field %s but Open never resets it; a cached or reopened plan replays stale state from the previous execution",
					tn.Name(), fd.Name.Name, field)
			})
		}
	}
}

func sortedMethodNames(m map[string]*ast.FuncDecl) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// insertion sort: tiny sets, keeps diagnostics deterministic
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// receiverVarOf resolves the method's receiver variable.
func receiverVarOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// firstFieldOf returns the name of the first field selected off the
// receiver in a selector chain rooted at it ("in" for g.in.Rows), or "".
func firstFieldOf(pass *analysis.Pass, recv *types.Var, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	for {
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			break
		}
		sel = inner
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return ""
	}
	return sel.Sel.Name
}

// collectFieldTouches reports every first-level receiver-field touch in
// fd: assignments and increments (isWrite), address-taking, and method
// calls on the field (reset-style touches, isWrite=false).
func collectFieldTouches(pass *analysis.Pass, fd *ast.FuncDecl, f func(field string, pos token.Pos, isWrite bool)) {
	recv := receiverVarOf(pass, fd)
	if recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if field := firstFieldOf(pass, recv, lhs); field != "" {
					f(field, lhs.Pos(), true)
				}
			}
		case *ast.IncDecStmt:
			if field := firstFieldOf(pass, recv, x.X); field != "" {
				f(field, x.X.Pos(), true)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if field := firstFieldOf(pass, recv, x.X); field != "" {
					// &x.F handed out for filling: a write on the Next
					// side, an acceptable reset on the Open side.
					f(field, x.X.Pos(), true)
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if field := firstFieldOf(pass, recv, sel.X); field != "" {
					f(field, x.Pos(), false)
				}
			}
		}
		return true
	})
}

// checkForkBeforeWrite flags writes through pointer/interface-typed
// receiver fields that were not freshly reassigned earlier in the same
// method body.
func checkForkBeforeWrite(pass *analysis.Pass, tn *types.TypeName, fd *ast.FuncDecl) {
	recv := receiverVarOf(pass, fd)
	if recv == nil {
		return
	}
	// Positions where each first-level field is (re)assigned whole.
	assigned := map[string][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				assigned[sel.Sel.Name] = append(assigned[sel.Sel.Name], lhs.Pos())
			}
		}
		return true
	})
	freshBefore := func(field string, pos token.Pos) bool {
		for _, p := range assigned[field] {
			if p < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var target ast.Expr
		var pos token.Pos
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkSharedWrite(pass, tn, fd, recv, lhs, lhs.Pos(), freshBefore)
			}
			return true
		case *ast.IncDecStmt:
			target, pos = x.X, x.X.Pos()
		}
		if target != nil {
			checkSharedWrite(pass, tn, fd, recv, target, pos, freshBefore)
		}
		return true
	})
}

// checkSharedWrite inspects one write target: recv.P.f… where P is a
// pointer- or interface-typed field is a shared-object mutation unless
// P was reassigned earlier in the method.
func checkSharedWrite(pass *analysis.Pass, tn *types.TypeName, fd *ast.FuncDecl, recv *types.Var, lhs ast.Expr, pos token.Pos, freshBefore func(string, token.Pos) bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Walk down: need at least recv.P.f (two selector levels).
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	for {
		deeper, ok := inner.X.(*ast.SelectorExpr)
		if !ok {
			break
		}
		inner = deeper
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return
	}
	field := inner.Sel.Name
	ftype := pass.TypesInfo.Types[inner].Type
	if ftype == nil {
		return
	}
	switch ftype.Underlying().(type) {
	case *types.Pointer, *types.Interface:
	default:
		return
	}
	if freshBefore(field, pos) {
		return
	}
	pass.Reportf(pos, "%s.%s writes through shared field %s without forking it first; concurrent executions of a cached plan mutate one shared object",
		tn.Name(), fd.Name.Name, field)
}

// runSharesafeMake checks rule 3: Make closures build fresh operators.
func runSharesafeMake(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		var fl *ast.FuncLit
		switch x := n.(type) {
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok && id.Name == "Make" {
				fl, _ = x.Value.(*ast.FuncLit)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Make" || i >= len(x.Rhs) {
					continue
				}
				if cand, ok := x.Rhs[i].(*ast.FuncLit); ok {
					checkMakeFreshness(pass, cand)
				}
			}
			return true
		}
		if fl != nil {
			checkMakeFreshness(pass, fl)
		}
		return true
	})
}

// checkMakeFreshness flags returns of captured (closure-external)
// variables from a Make closure.
func checkMakeFreshness(pass *analysis.Pass, fl *ast.FuncLit) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.FuncLit:
				return x == n // don't descend into nested closures
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					checkMakeReturn(pass, fl, r)
				}
			}
			return true
		})
	}
	walk(fl)
}

func checkMakeReturn(pass *analysis.Pass, fl *ast.FuncLit, r ast.Expr) {
	switch x := r.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil || x.Name == "nil" {
			return
		}
		if obj.Pos() < fl.Body.Lbrace || obj.Pos() > fl.Body.Rbrace {
			pass.Reportf(r.Pos(), "Make closure returns captured variable %s; Make must build a fresh operator tree per call (cached plans share the closure)", x.Name)
		}
	case *ast.SelectorExpr:
		if _, ok := pass.TypesInfo.Selections[x]; ok {
			pass.Reportf(r.Pos(), "Make closure returns captured field %s; Make must build a fresh operator tree per call (cached plans share the closure)", x.Sel.Name)
		}
	}
}
