// Package loader parses and type-checks packages of this module for
// the optlint analyzers. It is a minimal, offline replacement for
// golang.org/x/tools/go/packages: module-internal imports are resolved
// by recursively loading their directories, and standard-library
// imports are type-checked from $GOROOT/src via go/importer's source
// mode, so no module proxy, export data, or go list invocation is
// needed. The module must be dependency-free (this one is).
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("filterjoin/internal/exec", or a fixture name)
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors. Analysis proceeds on
	// a best-effort basis when non-empty (mirrors go vet's behaviour).
	TypeErrors []error
}

// Loader loads packages of a single module.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod

	Fset *token.FileSet

	mu     sync.Mutex     // serializes Load/LoadDir (and guards the caches below)
	std    types.Importer // source-mode importer for GOROOT packages
	loaded map[string]*Package
	active map[string]bool // import-cycle detection
}

// New returns a loader rooted at the nearest go.mod at or above dir.
func New(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		loaded:     map[string]*Package{},
		active:     map[string]bool{},
	}, nil
}

// sharedLoaders memoizes one Loader per module root for the whole
// process. Every LoadDir result is itself memoized per import path, so
// callers that share a Loader — the analysistest fixtures, the
// real-tree test, repeated optlint runs in one process — parse and
// type-check each package (and every stdlib dependency the source
// importer pulls in) exactly once instead of once per caller.
var (
	sharedMu      sync.Mutex
	sharedLoaders = map[string]*Loader{}
)

// NewShared returns the process-wide shared loader for the module at or
// above dir, creating it on first use. The shared loader serializes
// loads internally, so it is safe to use from concurrent tests; the
// returned packages must be treated as immutable.
func NewShared(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[root]; ok {
		return l, nil
	}
	l, err := New(root)
	if err != nil {
		return nil, err
	}
	sharedLoaders[root] = l
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// Load expands the patterns ("./...", "./internal/exec", or import
// paths under the module) into package directories and loads each.
// Directories named testdata, hidden directories, and directories with
// no non-test .go files are skipped during ./... expansion.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := l.walkDirs(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			ds, err := l.walkDirs(base)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, ds...)
		default:
			dirs = append(dirs, l.resolveDir(pat))
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	seen := map[string]bool{}
	for _, d := range dirs {
		if seen[d] {
			continue
		}
		seen[d] = true
		names, err := goFiles(d)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		pkg, err := l.loadDir(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// resolveDir maps a pattern to an absolute directory: "./x" and "x"
// are module-root relative; an import path under the module maps to
// its directory.
func (l *Loader) resolveDir(pat string) string {
	if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok {
		pat = "./" + strings.TrimPrefix(rest, "/")
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.ModuleRoot, pat)
}

func (l *Loader) walkDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir under the given
// import path, loading module-internal dependencies on demand. Results
// are memoized per import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadDir(dir, path)
}

// loadDir is LoadDir with l.mu held; the importer re-enters here for
// module-internal dependencies.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	pkg.Pkg = tpkg
	pkg.Info = info
	l.loaded[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal imports through the loader
// and everything else through the GOROOT source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.l.ModulePath || strings.HasPrefix(path, m.l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.l.ModulePath), "/")
		pkg, err := m.l.loadDir(filepath.Join(m.l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return m.l.std.Import(path)
}
