package lint

import (
	"go/ast"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Parambind enforces bind completeness for prepared statements
// (DESIGN.md §12/§13): a cached plan is executed with whatever
// arguments the current call supplies, so every expression an operator
// captured at plan time must be rebound through expr.BindParams /
// BindParamsList / BindAggs when the operator Opens — otherwise an
// expr.Param inside it evaluates to the planning-time value (or errors
// unbound) instead of the caller's argument. Two rules:
//
//  1. Operator capture: an exec.Operator implementation with a field of
//     type expr.Expr, []expr.Expr, or []expr.AggSpec must, in a method
//     reachable from Open, assign that field from one of the Bind*
//     helpers. The field declaration is flagged otherwise.
//  2. Evaluator coverage: a type switch over expr.Expr that special-
//     cases expr.Lit (constant folding, selectivity classification,
//     normalization) must also case expr.Param — a bound parameter is
//     exactly a constant, and letting it fall into the default arm
//     silently mis-classifies it.
var Parambind = &analysis.Analyzer{
	Name: "parambind",
	Doc:  "operator-captured expressions are rebound at Open and Lit-handling switches handle Param",
	Run:  runParambind,
}

const exprPkgPath = "filterjoin/internal/expr"

func runParambind(pass *analysis.Pass) error {
	runParambindFields(pass)
	runParambindSwitches(pass)
	return nil
}

// isExprNamed reports whether t is the named type path.name.
func isExprNamed(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// bindableFieldKind classifies an operator field that captures
// expressions, returning the Bind helper expected to rebind it ("" when
// the field is not expression-typed).
func bindableFieldKind(t types.Type) string {
	if isExprNamed(t, exprPkgPath, "Expr") {
		return "BindParams"
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if isExprNamed(sl.Elem(), exprPkgPath, "Expr") {
			return "BindParamsList"
		}
		if isExprNamed(sl.Elem(), exprPkgPath, "AggSpec") {
			return "BindAggs"
		}
	}
	return ""
}

func runParambindFields(pass *analysis.Pass) {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface == nil || pass.ImportedPackage(exprPkgPath) == nil {
		return
	}
	methodsOf := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if tn := receiverTypeName(pass, fd); tn != nil {
				if methodsOf[tn] == nil {
					methodsOf[tn] = map[string]*ast.FuncDecl{}
				}
				methodsOf[tn][fd.Name.Name] = fd
			}
		}
	}

	// Struct declaration positions, for flagging the captured field.
	structDecls := map[*types.TypeName]*ast.StructType{}
	pass.Inspect(func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
			structDecls[tn] = st
		}
		return true
	})

	for tn, methods := range methodsOf {
		if !analysis.Implements(tn.Type(), iface) {
			continue
		}
		st, ok := structDecls[tn]
		if !ok {
			continue
		}
		if _, hasOpen := methods["Open"]; !hasOpen {
			continue
		}

		// Open-reachable method set.
		openReach := map[string]*ast.FuncDecl{}
		var add func(name string)
		add = func(name string) {
			fd, ok := methods[name]
			if !ok || openReach[name] != nil {
				return
			}
			openReach[name] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if callee := calleeOn(pass, sel, tn); callee != "" {
							add(callee)
						}
					}
				}
				return true
			})
		}
		add("Open")

		// Fields rebound via expr.Bind* anywhere on the Open side.
		bound := map[string]bool{}
		for _, fd := range openReach {
			recv := receiverVarOf(pass, fd)
			if recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					field := firstFieldOf(pass, recv, lhs)
					if field == "" || i >= len(as.Rhs) {
						continue
					}
					if callsBindHelper(pass, as.Rhs[i]) {
						bound[field] = true
					}
				}
				return true
			})
		}

		for _, fl := range st.Fields.List {
			ft := pass.TypesInfo.Types[fl.Type].Type
			if ft == nil {
				continue
			}
			helper := bindableFieldKind(ft)
			if helper == "" {
				continue
			}
			for _, name := range fl.Names {
				if bound[name.Name] {
					continue
				}
				pass.Reportf(name.Pos(), "operator %s captures expression field %s but no Open-reachable method rebinds it via expr.%s; a cached plan executes with stale bind-parameter values",
					tn.Name(), name.Name, helper)
			}
		}
	}
}

// callsBindHelper reports whether e contains a call to one of the expr
// package's parameter-binding helpers.
func callsBindHelper(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[fun.Sel]
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != exprPkgPath {
			return true
		}
		switch fn.Name() {
		case "BindParams", "BindParamsList", "BindAggs":
			found = true
		}
		return true
	})
	return found
}

func runParambindSwitches(pass *analysis.Pass) {
	exprIface := pass.NamedInterface(exprPkgPath, "Expr")
	if exprIface == nil {
		return
	}
	pass.Inspect(func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		var tag ast.Expr
		switch a := ts.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				if t, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
					tag = t.X
				}
			}
		case *ast.ExprStmt:
			if t, ok := a.X.(*ast.TypeAssertExpr); ok {
				tag = t.X
			}
		}
		if tag == nil {
			return true
		}
		tt := pass.TypesInfo.Types[tag].Type
		if tt == nil || !isExprNamed(tt, exprPkgPath, "Expr") {
			return true
		}
		hasLit, hasParam := false, false
		for _, cs := range ts.Body.List {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, te := range cc.List {
				ct := pass.TypesInfo.Types[te].Type
				if ct == nil {
					continue
				}
				if isExprNamed(ct, exprPkgPath, "Lit") {
					hasLit = true
				}
				if isExprNamed(ct, exprPkgPath, "Param") {
					hasParam = true
				}
			}
		}
		if hasLit && !hasParam {
			pass.Reportf(ts.Pos(), "type switch over expr.Expr handles expr.Lit but not expr.Param; a bound parameter is a constant too — classify it or bind before evaluating")
		}
		return true
	})
}
