package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"filterjoin/internal/lint/analysis"
)

// Lockepoch statically enforces the serving layer's epoch/lock
// discipline (DESIGN.md §12/§13). The Engine is immutable between
// catalog epochs: every mutation of catalog, model, or derived state
// must (a) happen with the write lock held on every path, and (b) be
// followed — before any return — by an epoch bump plus a cache
// invalidation, so no cached plan from the previous epoch can ever be
// served again. Read paths must never take the write lock, and
// *Locked-suffix helpers (callers hold the lock) must never lock their
// own mutex.
//
// The analyzer runs only on packages declaring an "engine-like" type: a
// struct with a sync.RWMutex field and an unsigned integer field named
// epoch. Every function in such a package is walked path-sensitively
// (the opclose walker's discipline): lock state is tracked per engine
// expression ("e", "db.eng"), catalog/storage mutations are recognized
// by callee name (AddTable, Insert, CreateIndex, LoadCSV, ...), an
// epoch bump is an increment of the epoch field, and a cache
// invalidation is a Clear/Invalidate*/Reset* call on an engine field.
// Same-package engine-method calls are summarized (invalidateLocked
// counts as bump+clear at its call sites; self-locking helpers are
// opaque at call sites but flagged if invoked while the lock is held).
// Engine values freshly constructed in-function (composite literals,
// constructor call results) are exempt: an object nobody else can see
// needs no lock.
var Lockepoch = &analysis.Analyzer{
	Name: "lockepoch",
	Doc:  "engine mutations hold the write lock and bump epoch + invalidate caches before returning",
	Run:  runLockepoch,
}

// leMutators names the catalog/storage/model mutating calls whose
// effects outlive the statement: anything reaching one of these has
// changed what cached plans were optimized against.
var leMutators = map[string]bool{
	"AddTable":        true,
	"AddView":         true,
	"AddRemoteTable":  true,
	"AddRemoteView":   true,
	"AddFunc":         true,
	"Insert":          true,
	"CreateIndex":     true,
	"InvalidateStats": true,
	"LoadCSV":         true,
	"Drop":            true,
	// Adaptive statistics feedback (DESIGN.md §15): recording an observed
	// selectivity changes what future optimizations estimate, exactly
	// like a stats invalidation, so every path absorbing feedback under
	// the write lock owes the epoch bump.
	"ObserveFeedback": true,
}

// leSummary is the per-engine-method effect summary applied at call
// sites within the same package.
type leSummary struct {
	selfLocks bool // method takes its receiver's mutex itself
	mutates   bool
	bumps     bool
	clears    bool
}

// leState is the abstract state at one program point.
type leState struct {
	locks     map[string]int // engine expr key -> 0 none, 1 read, 2 write
	needBump  bool           // a mutation happened; epoch bump still owed
	needClear bool           // a mutation happened; cache invalidation still owed
}

func (s leState) clone() leState {
	locks := make(map[string]int, len(s.locks))
	for k, v := range s.locks {
		locks[k] = v
	}
	return leState{locks: locks, needBump: s.needBump, needClear: s.needClear}
}

// merge joins two branch states conservatively: the weaker lock wins,
// and an invalidation debt owed on either branch is owed after the join.
func leMerge(a, b leState) leState {
	out := leState{locks: map[string]int{}, needBump: a.needBump || b.needBump, needClear: a.needClear || b.needClear}
	for k, v := range a.locks {
		out.locks[k] = min(v, b.locks[k])
	}
	for k, v := range b.locks {
		if _, ok := a.locks[k]; !ok {
			out.locks[k] = min(v, 0)
		}
	}
	return out
}

func runLockepoch(pass *analysis.Pass) error {
	engineTypes := map[*types.TypeName]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && leEngineStruct(tn.Type()) {
			engineTypes[tn] = true
		}
	}
	if len(engineTypes) == 0 {
		return nil
	}

	w := &leWalker{pass: pass, bodies: map[types.Object]*ast.FuncDecl{}, summaries: map[types.Object]*leSummary{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					w.bodies[obj] = fd
				}
			}
		}
	}
	w.summarize()

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.checkFunc(fd)
			}
		}
	}
	return nil
}

// leEngineStruct reports whether t (or *t) is a struct with a
// sync.RWMutex field and an unsigned integer epoch field.
func leEngineStruct(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasMu, hasEpoch := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if ft, ok := f.Type().(*types.Named); ok {
			if ft.Obj().Name() == "RWMutex" && ft.Obj().Pkg() != nil && ft.Obj().Pkg().Path() == "sync" {
				hasMu = true
			}
		}
		if strings.EqualFold(f.Name(), "epoch") {
			if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				hasEpoch = true
			}
		}
	}
	return hasMu && hasEpoch
}

type leWalker struct {
	pass      *analysis.Pass
	bodies    map[types.Object]*ast.FuncDecl
	summaries map[types.Object]*leSummary

	// per-function state
	fd      *ast.FuncDecl
	assumed bool // *Locked method: caller holds the write lock
	exempt  map[string]bool
	enforce bool
}

// summarize computes effect summaries for every engine-type method to a
// fixpoint over same-type calls (self-locking callees are opaque: they
// manage their own invariants).
func (w *leWalker) summarize() {
	for obj, fd := range w.bodies {
		sum := &leSummary{}
		recvKey := leReceiverKey(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if op, key := w.lockOp(x); op != "" && key == recvKey {
					sum.selfLocks = true
				}
				if w.isMutatorCall(x) {
					sum.mutates = true
				}
				if owner := w.clearCallOwner(x); owner != "" {
					sum.clears = true
				}
			case *ast.IncDecStmt:
				if w.isEpochField(x.X) {
					sum.bumps = true
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if w.isEpochField(lhs) {
						sum.bumps = true
					}
				}
			}
			return true
		})
		w.summaries[obj] = sum
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range w.bodies {
			sum := w.summaries[obj]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := w.calleeSummary(call)
				if callee == nil || callee.selfLocks {
					return true
				}
				if (callee.mutates && !sum.mutates) || (callee.bumps && !sum.bumps) || (callee.clears && !sum.clears) {
					sum.mutates = sum.mutates || callee.mutates
					sum.bumps = sum.bumps || callee.bumps
					sum.clears = sum.clears || callee.clears
					changed = true
				}
				return true
			})
		}
	}
}

// leReceiverKey returns the receiver variable's expression key, or "".
func leReceiverKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// checkFunc path-walks one function.
func (w *leWalker) checkFunc(fd *ast.FuncDecl) {
	w.fd = fd
	w.assumed = fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") && w.engineExpr(fd.Recv.List[0].Type) != nil
	w.exempt = map[string]bool{}
	// Only enforce in functions that touch engine-typed state at all;
	// a helper that never sees an engine cannot violate its discipline.
	w.enforce = false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && w.engineExpr(e) != nil {
			w.enforce = true
			return false
		}
		return true
	})
	if fd.Recv != nil && w.engineExpr(fd.Recv.List[0].Type) != nil {
		w.enforce = true
	}
	if !w.enforce {
		return
	}

	st := leState{locks: map[string]int{}}
	if w.assumed {
		st.locks[leReceiverKey(fd)] = 2
	}
	out, terminated := w.walkStmts(fd.Body.List, st)
	if !terminated && (out.needBump || out.needClear) {
		w.reportObligation(fd.Body.Rbrace, out)
	}
}

// engineExpr returns the type when e has an engine-like type, else nil.
func (w *leWalker) engineExpr(e ast.Expr) types.Type {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		// Receiver type exprs are not in Types; resolve idents directly.
		if id, ok := e.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil && leEngineStruct(obj.Type()) {
				return obj.Type()
			}
		}
		if star, ok := e.(*ast.StarExpr); ok {
			return w.engineExpr(star.X)
		}
		return nil
	}
	if leEngineStruct(tv.Type) {
		return tv.Type
	}
	return nil
}

// exprKey renders an ident/selector chain ("e", "db.eng"); "" otherwise.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprKey(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return exprKey(x.X)
	}
	return ""
}

// lockOp classifies call as a mutex operation on an engine's RWMutex
// field, returning the op name and the owner key ("" when not one).
func (w *leWalker) lockOp(call *ast.CallExpr) (op, owner string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	msel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	mt, ok := w.pass.TypesInfo.Types[msel]
	if !ok {
		return "", ""
	}
	named, ok := mt.Type.(*types.Named)
	if !ok || named.Obj().Name() != "RWMutex" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", ""
	}
	if w.engineExpr(msel.X) == nil {
		return "", ""
	}
	return sel.Sel.Name, exprKey(msel.X)
}

// isMutatorCall reports whether call invokes a method from the mutator
// name set (on any receiver — catalog entries, tables, the engine).
func (w *leWalker) isMutatorCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !leMutators[sel.Sel.Name] {
		return false
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// mutatorReceiverRoot returns the root expression key of the mutator
// call's receiver chain ("e" for e.cat.AddTable), to exempt mutations
// on freshly-constructed engines.
func mutatorReceiverRoot(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	key := exprKey(sel.X)
	if key == "" {
		return ""
	}
	root, _, _ := strings.Cut(key, ".")
	return root
}

// clearCallOwner matches cache-invalidation calls: Clear/Invalidate*/
// Reset* invoked on a field of an engine value; returns the engine key.
func (w *leWalker) clearCallOwner(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name != "Clear" && !strings.HasPrefix(name, "Invalidate") && !strings.HasPrefix(name, "Reset") {
		return ""
	}
	fsel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if w.engineExpr(fsel.X) == nil {
		return ""
	}
	return exprKey(fsel.X)
}

// isEpochField reports whether e selects the epoch field of an engine.
func (w *leWalker) isEpochField(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !strings.EqualFold(sel.Sel.Name, "epoch") {
		return false
	}
	return w.engineExpr(sel.X) != nil
}

// calleeSummary resolves a call to a same-package engine-method summary.
func (w *leWalker) calleeSummary(call *ast.CallExpr) *leSummary {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return w.summaries[s.Obj()]
}

// wlockedAny reports whether any tracked engine is write-locked.
func (w *leWalker) wlockedAny(st leState) bool {
	if w.assumed {
		return true
	}
	for _, v := range st.locks {
		if v == 2 {
			return true
		}
	}
	return false
}

// walkStmts walks a statement list from state st, returning the exit
// state and whether every path terminated (returned).
func (w *leWalker) walkStmts(stmts []ast.Stmt, st leState) (leState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *leWalker) walkStmt(s ast.Stmt, st leState) (leState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(x.X, &st)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.scanExpr(rhs, &st)
		}
		w.handleAssign(x, &st)
	case *ast.IncDecStmt:
		w.handleWrite(x.X, &st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.scanExpr(v, &st)
				}
				w.handleDefines(vs.Names, vs.Values, &st)
			}
		}
	case *ast.DeferStmt:
		if op, _ := w.lockOp(x.Call); op != "" {
			// Deferred unlocks release at return; the lock is held for
			// the rest of the function, so the state does not change.
			break
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, st.clone())
			break
		}
		w.scanExpr(x.Call, &st)
	case *ast.GoStmt:
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, st.clone())
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scanExpr(r, &st)
		}
		if st.needBump || st.needClear {
			w.reportObligation(x.Pos(), st)
		}
		return st, true
	case *ast.BlockStmt:
		return w.walkStmts(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		w.scanExpr(x.Cond, &st)
		thenSt, thenTerm := w.walkStmts(x.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if x.Else != nil {
			elseSt, elseTerm = w.walkStmt(x.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return leMerge(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			w.scanExpr(x.Cond, &st)
		}
		bodySt, _ := w.walkStmts(x.Body.List, st.clone())
		if x.Post != nil {
			bodySt, _ = w.walkStmt(x.Post, bodySt)
		}
		return leMerge(st, bodySt), false
	case *ast.RangeStmt:
		w.scanExpr(x.X, &st)
		bodySt, _ := w.walkStmts(x.Body.List, st.clone())
		return leMerge(st, bodySt), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			w.scanExpr(x.Tag, &st)
		}
		return w.walkClauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		return w.walkClauses(x.Body, st)
	case *ast.SelectStmt:
		return w.walkClauses(x.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this statement list; the
		// loop-merge already accounts for the body state conservatively.
		return st, true
	}
	return st, false
}

// walkClauses walks switch/select clauses, merging the non-terminating
// branches (plus the fall-past state when there is no default clause).
func (w *leWalker) walkClauses(body *ast.BlockStmt, st leState) (leState, bool) {
	var outs []leState
	hasDefault := false
	for _, cs := range body.List {
		var list []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				st2 := st.clone()
				if out, term := w.walkStmt(c.Comm, st2); !term {
					st2 = out
				}
				out, term := w.walkStmts(c.Body, st2)
				if !term {
					outs = append(outs, out)
				}
				continue
			}
			list = c.Body
		}
		out, term := w.walkStmts(list, st.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = leMerge(merged, o)
	}
	return merged, false
}

// handleAssign processes alias defines and left-hand-side engine writes.
func (w *leWalker) handleAssign(x *ast.AssignStmt, st *leState) {
	if x.Tok == token.DEFINE {
		var names []*ast.Ident
		for _, lhs := range x.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				names = append(names, id)
			} else {
				names = append(names, nil)
			}
		}
		w.handleDefinesAssign(names, x.Rhs, st)
		return
	}
	for _, lhs := range x.Lhs {
		w.handleWrite(lhs, st)
	}
}

func (w *leWalker) handleDefines(names []*ast.Ident, values []ast.Expr, st *leState) {
	w.handleDefinesAssign(names, values, st)
}

// handleDefinesAssign tracks newly-declared engine variables: aliases of
// shared engines inherit their lock state; freshly constructed engines
// (composite literal or constructor-call result) are exempt from the
// discipline — nobody else can see them yet.
func (w *leWalker) handleDefinesAssign(names []*ast.Ident, values []ast.Expr, st *leState) {
	for i, id := range names {
		if id == nil {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(values) == len(names):
			rhs = values[i]
		case len(values) == 1:
			rhs = values[0]
		}
		if rhs == nil {
			continue
		}
		if w.engineExpr(id) == nil && w.engineExpr(rhs) == nil {
			continue
		}
		switch rv := rhs.(type) {
		case *ast.CompositeLit:
			w.exempt[id.Name] = true
		case *ast.UnaryExpr:
			if _, ok := rv.X.(*ast.CompositeLit); ok {
				w.exempt[id.Name] = true
			}
		case *ast.CallExpr:
			if w.engineExpr(rhs) != nil {
				w.exempt[id.Name] = true
			}
		default:
			if key := exprKey(rhs); key != "" && w.engineExpr(rhs) != nil {
				st.locks[id.Name] = st.locks[key]
				if w.exempt[key] {
					w.exempt[id.Name] = true
				}
			}
		}
	}
}

// handleWrite flags writes to shared engine state outside the write
// lock, and retires the epoch-bump debt on epoch increments.
func (w *leWalker) handleWrite(lhs ast.Expr, st *leState) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Find the selector whose X is the engine owner.
	var owner ast.Expr
	for cur := sel; ; {
		if w.engineExpr(cur.X) != nil {
			owner = cur.X
			break
		}
		next, ok := cur.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		cur = next
	}
	key := exprKey(owner)
	root, _, _ := strings.Cut(key, ".")
	if w.exempt[root] {
		return
	}
	wlocked := w.assumed || st.locks[key] == 2
	if w.isEpochField(lhs) {
		if !wlocked {
			w.pass.Reportf(lhs.Pos(), "write to %s outside the write lock", exprKey(lhs))
		}
		st.needBump = false
		return
	}
	if !wlocked {
		w.pass.Reportf(lhs.Pos(), "write to %s outside the write lock", exprKey(lhs))
	}
	st.needBump, st.needClear = true, true
}

// scanExpr applies the effects of every call in e to st, in evaluation
// order approximated by AST order.
func (w *leWalker) scanExpr(e ast.Expr, st *leState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(x.Body.List, st.clone())
			return false
		case *ast.CallExpr:
			w.applyCall(x, st)
		}
		return true
	})
}

func (w *leWalker) applyCall(call *ast.CallExpr, st *leState) {
	if op, key := w.lockOp(call); op != "" {
		recvKey := leReceiverKey(w.fd)
		if w.assumed && key == recvKey {
			w.pass.Reportf(call.Pos(), "%s is a *Locked method (caller holds the lock) but locks its own mutex", w.fd.Name.Name)
			return
		}
		switch op {
		case "Lock":
			switch st.locks[key] {
			case 1:
				w.pass.Reportf(call.Pos(), "write lock acquired while the read lock is held (upgrade deadlock)")
			case 2:
				w.pass.Reportf(call.Pos(), "write lock acquired twice (self-deadlock)")
			}
			st.locks[key] = 2
		case "RLock":
			if st.locks[key] == 0 {
				st.locks[key] = 1
			}
		case "Unlock", "RUnlock":
			st.locks[key] = 0
		}
		return
	}
	// Name-based mutator/invalidation recognition runs before the
	// summary lookup: a same-package catalog or cache type would
	// otherwise contribute a zero summary for AddTable/Clear that
	// shadows the name-based rules.
	if w.isMutatorCall(call) {
		if root := mutatorReceiverRoot(call); root != "" && w.exempt[root] {
			return
		}
		w.requireWriteLock(call, st)
		st.needBump, st.needClear = true, true
		return
	}
	if w.clearCallOwner(call) != "" {
		st.needClear = false
		return
	}
	if sum := w.calleeSummary(call); sum != nil {
		if sum.selfLocks {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if key := exprKey(sel.X); key != "" && (st.locks[key] != 0 || (w.assumed && key == leReceiverKey(w.fd))) {
					w.pass.Reportf(call.Pos(), "calls self-locking %s while already holding the lock (self-deadlock)", sel.Sel.Name)
				}
			}
			return
		}
		if sum.mutates {
			w.requireWriteLock(call, st)
			st.needBump, st.needClear = true, true
		}
		if sum.bumps {
			st.needBump = false
		}
		if sum.clears {
			st.needClear = false
		}
	}
}

func (w *leWalker) requireWriteLock(call *ast.CallExpr, st *leState) {
	if w.wlockedAny(*st) {
		return
	}
	name := "call"
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	}
	w.pass.Reportf(call.Pos(), "catalog/model mutation %s() without the write lock held", name)
}

// reportObligation fires at a return reached with an invalidation debt:
// a mutation happened on this path and the epoch bump and/or cache
// invalidation never followed.
func (w *leWalker) reportObligation(pos token.Pos, st leState) {
	var missing []string
	if st.needBump {
		missing = append(missing, "epoch bump")
	}
	if st.needClear {
		missing = append(missing, "cache invalidation")
	}
	w.pass.Reportf(pos, "return after catalog/model mutation without %s; stale cached plans survive the mutation", strings.Join(missing, " + "))
}
