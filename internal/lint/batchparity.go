package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"filterjoin/internal/lint/analysis"
)

// Batchparity enforces batch/row cost parity (DESIGN.md §11/§13): the
// batch-at-a-time execution path is an optimization, not a semantic
// fork, so an operator that implements NextBatch must (a) also
// implement row-at-a-time Next — Gather's fallback, EXPLAIN ANALYZE's
// instrumented path, and the differential corpus all drive it — and
// (b) charge the same ctx.Counter fields on both paths. A NextBatch
// that charges CPUTuples where Next charges CPUTuples+PageReads makes
// the FILTERJOIN_BATCH CI matrix legs observe different Table 1 costs
// for the same plan — the bit-identical parity PR 6 established
// dynamically, checked here statically.
//
// Mechanically this extends costcharge's reachability machinery: the
// Counter fields referenced by Next (plus same-type methods it calls)
// are compared as a set against those referenced by NextBatch. A
// NextBatch that delegates to Next — directly or via exec.FillBatch —
// inherits Next's charges and passes definitionally. Types that use
// Context.Absorb or manipulate the Counter struct wholesale (copying
// it, taking its address) are skipped: field-set comparison is
// meaningless there and costcharge already covers conservation.
var Batchparity = &analysis.Analyzer{
	Name: "batchparity",
	Doc:  "NextBatch implementations also implement Next and charge the same ctx.Counter fields",
	Run:  runBatchparity,
}

func runBatchparity(pass *analysis.Pass) error {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface == nil {
		return nil
	}

	methodsOf := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if tn := receiverTypeName(pass, fd); tn != nil {
				if methodsOf[tn] == nil {
					methodsOf[tn] = map[string]*ast.FuncDecl{}
				}
				methodsOf[tn][fd.Name.Name] = fd
			}
		}
	}

	for tn, methods := range methodsOf {
		nb, hasBatch := methods["NextBatch"]
		if !hasBatch {
			continue
		}
		if _, hasNext := methods["Next"]; !hasNext {
			pass.Reportf(nb.Name.Pos(), "%s implements NextBatch but not Next; the row-at-a-time fallback (Gather, instrumentation) cannot drive it", tn.Name())
			continue
		}
		if !analysis.Implements(tn.Type(), iface) {
			continue
		}

		next := bpCharges(pass, tn, methods, "Next")
		batch := bpCharges(pass, tn, methods, "NextBatch")
		if next.wildcard || batch.wildcard {
			continue
		}
		// Delegation: NextBatch reaching Next (or FillBatch, which
		// loops over Next) inherits the row path's charges.
		if batch.reach["Next"] || batch.fillBatch {
			continue
		}
		if !bpSameSet(next.fields, batch.fields) {
			pass.Reportf(nb.Name.Pos(), "%s charges different Counter fields in Next (%s) and NextBatch (%s); batch and row execution of the same plan observe different Table 1 costs",
				tn.Name(), bpFormat(next.fields), bpFormat(batch.fields))
		}
	}
	return nil
}

type bpChargeSet struct {
	fields    map[string]bool
	reach     map[string]bool
	fillBatch bool
	// wildcard: the path absorbs worker counters or manipulates the
	// Counter struct wholesale; field-set comparison is not meaningful.
	wildcard bool
}

// bpCharges collects the Counter fields charged by seed plus the
// same-type methods it transitively calls.
func bpCharges(pass *analysis.Pass, tn *types.TypeName, methods map[string]*ast.FuncDecl, seed string) bpChargeSet {
	out := bpChargeSet{fields: map[string]bool{}, reach: map[string]bool{}}
	// ctx.Counter selectors that are the base of a field selection
	// (ctx.Counter.CPUTuples) are charges; a bare ctx.Counter without a
	// parent selector is wholesale manipulation. Mark the parented ones
	// first so the second walk can tell them apart.
	counterParents := map[*ast.SelectorExpr]bool{}
	var collect func(name string)
	collect = func(name string) {
		fd, ok := methods[name]
		if !ok || out.reach[name] {
			return
		}
		out.reach[name] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if x, ok := n.(*ast.SelectorExpr); ok {
				if inner, ok := x.X.(*ast.SelectorExpr); ok && isCounterField(pass, inner) {
					counterParents[inner] = true
					out.fields[x.Sel.Name] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if callee := calleeOn(pass, sel, tn); callee != "" {
						collect(callee)
					}
				}
				if isAbsorbCall(pass, x) {
					out.wildcard = true
				}
				if bpIsExecFunc(pass, x, "FillBatch") {
					out.fillBatch = true
				}
			case *ast.SelectorExpr:
				if isCounterField(pass, x) && !counterParents[x] {
					out.wildcard = true
				}
			}
			return true
		})
	}
	collect(seed)
	return out
}

// bpIsExecFunc matches a call to the named exec-package function,
// qualified (exec.FillBatch) or package-local (FillBatch).
func bpIsExecFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == execPkgPath
}

func bpSameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func bpFormat(fields map[string]bool) string {
	if len(fields) == 0 {
		return "none"
	}
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}
