package lint

import (
	"go/ast"
	"go/types"

	"filterjoin/internal/lint/analysis"
)

// Costcharge statically extends the runtime cost-conservation property
// test: every exec.Operator implementation whose Open/Next does row
// work — loops over child rows, hashes, sorts, probes — must charge
// that work to ctx.Counter, the shared cost ledger the paper's Table 1
// components are measured against. An operator that works for free
// makes every estimate-vs-actual comparison (experiment E11) and the
// EXPLAIN ANALYZE misestimate flags silently wrong for the plans that
// contain it.
//
// Detection is per type: the bodies of Open, Next, and NextBatch, plus
// any methods of the same type they (transitively) call, are scanned.
// "Row work" is a for/range loop or a call into sort/heap; "charging"
// is any reference to the Counter field of exec.Context, or a call to
// Context.Absorb — the exchange operators' way of folding a worker
// goroutine's private counter into the parent ledger. Pure pass-through
// operators (no loops) are exempt. NextBatch is seeded alongside Next
// because a batch-native operator legitimately concentrates both its
// row work and its (amortized) charging there: the batch idiom —
// accumulate units in a local, flush to ctx.Counter once per batch —
// satisfies the invariant, and an operator whose only loops live in
// NextBatch must not escape the scan.
//
// Goroutine-spawning operators get one extra obligation: a type whose
// reachable Open/Next methods contain a `go` statement must also reach
// a Context.Absorb call, so the workers' counters are merged into the
// parent before the operator returns — otherwise the cost their private
// counters accumulated evaporates with the goroutines and conservation
// breaks silently.
var Costcharge = &analysis.Analyzer{
	Name: "costcharge",
	Doc:  "require Operator Open/Next methods that do row work to charge ctx.Counter",
	Run:  runCostcharge,
}

const execPkgPath = "filterjoin/internal/exec"

func runCostcharge(pass *analysis.Pass) error {
	iface := pass.NamedInterface(execPkgPath, "Operator")
	if iface == nil {
		return nil
	}

	// Group method declarations by receiver named type.
	methodsOf := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(pass, fd)
			if tn == nil {
				continue
			}
			if methodsOf[tn] == nil {
				methodsOf[tn] = map[string]*ast.FuncDecl{}
			}
			methodsOf[tn][fd.Name.Name] = fd
		}
	}

	for tn, methods := range methodsOf {
		if !analysis.Implements(tn.Type(), iface) {
			continue
		}
		// Reachable set: Open, Next, and same-type methods they call.
		var work []*ast.FuncDecl
		seen := map[string]bool{}
		var add func(name string)
		add = func(name string) {
			fd, ok := methods[name]
			if !ok || seen[name] {
				return
			}
			seen[name] = true
			work = append(work, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if callee := calleeOn(pass, sel, tn); callee != "" {
						add(callee)
					}
				}
				return true
			})
		}
		add("Open")
		add("Next")
		add("NextBatch")

		var workPos, goPos *ast.FuncDecl
		charges := false
		absorbs := false
		for _, fd := range work {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					if workPos == nil {
						workPos = fd
					}
				case *ast.GoStmt:
					if goPos == nil {
						goPos = fd
					}
				case *ast.CallExpr:
					if isPkgCall(pass, x, "sort") || isPkgCall(pass, x, "heap") || isKernelCall(pass, x) {
						if workPos == nil {
							workPos = fd
						}
					}
					if isAbsorbCall(pass, x) {
						charges = true
						absorbs = true
					}
				case *ast.SelectorExpr:
					if isCounterField(pass, x) {
						charges = true
					}
				}
				return true
			})
		}
		if workPos != nil && !charges {
			pass.Reportf(workPos.Name.Pos(), "%s.%s does row work but no method of %s reachable from Open/Next/NextBatch charges ctx.Counter; Table 1 cost conservation breaks for plans containing it",
				tn.Name(), workPos.Name.Name, tn.Name())
		}
		if goPos != nil && !absorbs {
			pass.Reportf(goPos.Name.Pos(), "%s.%s spawns goroutines but no method of %s reachable from Open/Next/NextBatch merges worker counters via ctx.Absorb; cost charged on worker contexts is lost",
				tn.Name(), goPos.Name.Name, tn.Name())
		}
	}
	return nil
}

// receiverTypeName resolves a method's receiver to its named type.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receivers like T[P] (none in this repo, but cheap).
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := pass.TypesInfo.Uses[id].(*types.TypeName)
	if tn == nil {
		tn, _ = pass.TypesInfo.Defs[id].(*types.TypeName)
	}
	return tn
}

// calleeOn returns the method name when sel is a call to a method of
// the named type tn (through any receiver expression), else "".
func calleeOn(pass *analysis.Pass, sel *ast.SelectorExpr, tn *types.TypeName) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok && named.Obj() == tn {
		return sel.Sel.Name
	}
	return ""
}

// isPkgCall reports whether call invokes a function from the package
// with the given name (sort.Slice, heap.Push, ...).
func isPkgCall(pass *analysis.Pass, call *ast.CallExpr, pkgName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkgName
}

// isKernelCall reports whether call invokes a compiled expression
// kernel's batch entry point (expr.Pred.SelectBatch or EvalBatch): the
// kernel loops over the whole batch internally, so the call is row work
// — chargeable per the kernel's returned evaluated-row count — even
// though no loop appears in the operator body.
func isKernelCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "SelectBatch" && sel.Sel.Name != "EvalBatch") {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pred" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "filterjoin/internal/expr"
}

// isAbsorbCall reports whether call invokes exec.Context.Absorb, the
// merge of a worker goroutine's private counter into the parent ledger.
func isAbsorbCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Absorb" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == execPkgPath
}

// isCounterField reports whether sel selects the Counter field of
// exec.Context (directly or through an embedded pointer).
func isCounterField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Counter" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == execPkgPath
}
