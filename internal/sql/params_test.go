package sql

import (
	"strings"
	"testing"

	"filterjoin/internal/value"
)

func parseSel(t *testing.T, text string) *SelectStmt {
	t.Helper()
	st, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("parse %q: got %T, want *SelectStmt", text, st)
	}
	return sel
}

func TestParsePlaceholders(t *testing.T) {
	// `?` placeholders auto-number left to right.
	sel := parseSel(t, `SELECT E.a FROM T E WHERE E.a < ? AND E.b = ?`)
	n, err := NumParams(sel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("?-style NumParams = %d, want 2", n)
	}
	if !HasParams(sel) {
		t.Errorf("HasParams = false for a parameterized statement")
	}

	// `$n` placeholders are explicit and may repeat or appear out of order.
	sel2 := parseSel(t, `SELECT E.a FROM T E WHERE E.a < $2 AND E.b = $1 AND E.c = $1`)
	n2, err := NumParams(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 2 {
		t.Errorf("$n-style NumParams = %d, want 2", n2)
	}

	// Gap in the slot numbering is a validation error.
	sel3 := parseSel(t, `SELECT E.a FROM T E WHERE E.a < $1 AND E.b = $3`)
	if _, err := NumParams(sel3); err == nil {
		t.Errorf("NumParams accepted $1,$3 with no $2")
	}

	if HasParams(parseSel(t, `SELECT E.a FROM T E WHERE E.a < 3`)) {
		t.Errorf("HasParams = true for a literal-only statement")
	}
}

func TestNormalizeExtractsWhereLiterals(t *testing.T) {
	sel := parseSel(t, `SELECT E.a, E.b FROM T E WHERE E.a < 30 AND E.b = 'x' AND E.c > E.d`)
	orig := FormatSelect(sel)
	norm, vals, ok := Normalize(sel)
	if !ok {
		t.Fatal("Normalize returned ok=false for a literal statement")
	}
	if len(vals) != 2 {
		t.Fatalf("extracted %d values, want 2 (col-vs-col conjunct has no constant)", len(vals))
	}
	if v, _ := vals[0].AsFloat(); v != 30 {
		t.Errorf("vals[0] = %v, want 30", vals[0])
	}
	if vals[1].Str() != "x" {
		t.Errorf("vals[1] = %v, want 'x'", vals[1])
	}
	text := FormatSelect(norm)
	if !strings.Contains(text, "$1") || !strings.Contains(text, "$2") {
		t.Errorf("normalized text lacks slots: %s", text)
	}
	if strings.Contains(text, "30") || strings.Contains(text, "'x'") {
		t.Errorf("normalized text still carries literals: %s", text)
	}
	// The input statement is not mutated.
	if got := FormatSelect(sel); got != orig {
		t.Errorf("Normalize mutated its input: %s", got)
	}

	// Literal-vs-literal and literals outside WHERE comparisons are left
	// alone: they shape the plan or the output, not a selectivity.
	sel2 := parseSel(t, `SELECT E.a FROM T E WHERE 1 = 1 GROUP BY E.a HAVING COUNT(*) > 5 LIMIT 7`)
	_, vals2, ok2 := Normalize(sel2)
	if !ok2 {
		t.Fatal("Normalize ok=false")
	}
	if len(vals2) != 0 {
		t.Errorf("extracted %d values from non-selection literals, want 0", len(vals2))
	}
}

func TestNormalizeSkipsExplicitParams(t *testing.T) {
	sel := parseSel(t, `SELECT E.a FROM T E WHERE E.a < ? AND E.b = 3`)
	norm, vals, ok := Normalize(sel)
	if ok {
		t.Errorf("Normalize ok=true for prepared text; the two numbering schemes must not mix")
	}
	if norm != sel || vals != nil {
		t.Errorf("Normalize should return the input untouched for prepared text")
	}
}

func TestFormatSelectCanonicalizes(t *testing.T) {
	a := parseSel(t, "select  E.a   from T E where E.a<30   and E.b =  2")
	b := parseSel(t, `SELECT E.a FROM T E WHERE (E.a < 30) AND (E.b = 2)`)
	na, va, _ := Normalize(a)
	nb, vb, _ := Normalize(b)
	if FormatSelect(na) != FormatSelect(nb) {
		t.Errorf("spellings of one statement canonicalize differently:\n%s\n%s",
			FormatSelect(na), FormatSelect(nb))
	}
	if len(va) != 2 || len(vb) != 2 {
		t.Fatalf("extraction counts differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if value.Compare(va[i], vb[i]) != 0 {
			t.Errorf("extracted value %d differs: %v vs %v", i, va[i], vb[i])
		}
	}
}
