// Package sql implements a small SQL front-end for the filterjoin
// engine: a lexer, a recursive-descent parser, and a binder that turns
// SELECT statements into query.Block logical plans. The dialect covers
// what the paper's examples need — CREATE TABLE / CREATE VIEW / CREATE
// INDEX / INSERT ... VALUES / SELECT-FROM-WHERE-GROUP BY with aggregate
// functions and DISTINCT — and is exercised verbatim on the Fig 1 and
// Fig 2 query texts.
package sql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning an error for unterminated strings or
// unexpected bytes.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		ch := l.src[l.pos]
		switch {
		case isIdentStart(ch):
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case ch >= '0' && ch <= '9':
			sawDot := false
			for l.pos < len(l.src) {
				c := l.src[l.pos]
				if c == '.' && !sawDot {
					sawDot = true
					l.pos++
					continue
				}
				if c < '0' || c > '9' {
					if c == 'e' || c == 'E' {
						// Exponent: e[+-]?digits
						j := l.pos + 1
						if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
							j++
						}
						if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
							l.pos = j
							continue
						}
					}
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case ch == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
				}
				c := l.src[l.pos]
				if c == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(c)
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		case ch == '<':
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || l.src[l.pos+1] == '>') {
				l.pos += 2
			} else {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case ch == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
			} else {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case ch == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<>", pos: start})
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", start)
			}
		case ch == '$':
			// $n bind-parameter placeholder.
			l.pos++
			if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
				return nil, fmt.Errorf("sql: expected digits after '$' at offset %d", start)
			}
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case strings.ContainsRune("(),.*+-/=;?", rune(ch)):
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(ch), pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", ch, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
