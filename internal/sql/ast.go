package sql

import "filterjoin/internal/value"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []ColDef
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type value.Kind
}

// CreateIndex is CREATE INDEX name ON table (col, ...).
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
}

// CreateView is CREATE VIEW name AS select.
type CreateView struct {
	Name   string
	Select *SelectStmt
}

// Insert is INSERT INTO table VALUES (lit, ...), ....
type Insert struct {
	Table string
	Rows  [][]value.Value
}

// SelectStmt is SELECT [DISTINCT] items FROM refs [WHERE pred]
// [GROUP BY cols] [HAVING pred] [ORDER BY cols] [LIMIT n].
type SelectStmt struct {
	Distinct bool
	Star     bool // SELECT *
	Items    []SelectItem
	From     []TableRef
	Where    AExpr
	GroupBy  []AColumn
	Having   AExpr
	OrderBy  []OrderBy
	Limit    int
}

// OrderBy is one ORDER BY entry.
type OrderBy struct {
	Col  AColumn
	Desc bool
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  AExpr
	Alias string
}

// TableRef is one FROM entry: name with optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// UnionStmt is two or more SELECTs combined with UNION [ALL]. Plain
// UNION removes duplicate rows across all arms.
type UnionStmt struct {
	Selects []*SelectStmt
	All     bool
}

// ExplainStmt is EXPLAIN [ANALYZE] SELECT ...: it returns the optimized
// plan as text instead of the query's rows; with ANALYZE the plan is
// also executed and measured costs are appended.
type ExplainStmt struct {
	Analyze bool
	Select  *SelectStmt
}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*CreateView) stmt()  {}
func (*Insert) stmt()      {}
func (*SelectStmt) stmt()  {}
func (*UnionStmt) stmt()   {}
func (*ExplainStmt) stmt() {}

// AExpr is an unbound (name-based) expression.
type AExpr interface{ aexpr() }

// AColumn is a possibly-qualified column reference.
type AColumn struct {
	Table string
	Name  string
}

// ALit is a literal.
type ALit struct{ V value.Value }

// ABinary is a binary operation; Op is one of
// = <> < <= > >= + - * / AND OR.
type ABinary struct {
	Op   string
	L, R AExpr
}

// ANot is NOT x.
type ANot struct{ X AExpr }

// ACall is an aggregate function call; Star marks COUNT(*).
type ACall struct {
	Name string
	Star bool
	Arg  AExpr // nil when Star
}

// AParam is a bind-parameter placeholder: `?` (positional, numbered in
// lexical order) or `$n` (explicit, 1-based in the text, 0-based here).
type AParam struct{ Idx int }

func (AColumn) aexpr() {}
func (ALit) aexpr()    {}
func (ABinary) aexpr() {}
func (ANot) aexpr()    {}
func (ACall) aexpr()   {}
func (AParam) aexpr()  {}
