package sql

import (
	"strings"
	"testing"

	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE a >= 10.5 AND s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "a", ">=", "10.5", "AND", "s", "=", "it's"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string must error")
	}
	if _, err := lex("a # b"); err == nil {
		t.Error("unexpected character must error")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("a -- comment\n b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // a, b, EOF
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestLexBangEquals(t *testing.T) {
	toks, err := lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].text != "<>" {
		t.Errorf("!= should normalize to <>: %v", toks[1])
	}
	if _, err := lex("a ! b"); err == nil {
		t.Error("lone ! must error")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE Emp (eid int, sal float, name varchar, ok boolean)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "Emp" || len(ct.Cols) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	wantTypes := []value.Kind{value.KindInt, value.KindFloat, value.KindString, value.KindBool}
	for i, w := range wantTypes {
		if ct.Cols[i].Type != w {
			t.Errorf("col %d type %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
	if _, err := Parse("CREATE TABLE t (a blob)"); err == nil {
		t.Error("unknown type must error")
	}
}

func TestParseCreateIndexAndView(t *testing.T) {
	st, err := Parse("CREATE INDEX i ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if ci.Name != "i" || ci.Table != "t" || len(ci.Cols) != 2 {
		t.Errorf("parsed %+v", ci)
	}
	st, err = Parse("CREATE VIEW v AS (SELECT a FROM t)")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "v" || cv.Select == nil {
		t.Errorf("parsed %+v", cv)
	}
	// Without parentheses too.
	if _, err := Parse("CREATE VIEW v AS SELECT a FROM t"); err != nil {
		t.Errorf("unparenthesized view: %v", err)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1, -2.5, 'x', true, null), (2, 3.0, 'y', false, 4)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("parsed %+v", ins)
	}
	if ins.Rows[0][1].Float() != -2.5 {
		t.Error("negative float literal")
	}
	if !ins.Rows[0][4].IsNull() {
		t.Error("null literal")
	}
	if ins.Rows[1][3].Bool() {
		t.Error("false literal")
	}
}

func TestParseSelectShape(t *testing.T) {
	st, err := Parse(`SELECT DISTINCT E.did, AVG(E.sal) AS avgsal
		FROM Emp E, Dept AS D
		WHERE E.did = D.did AND (E.age < 30 OR NOT E.age > 65)
		GROUP BY E.did`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.From) != 2 || len(sel.GroupBy) != 1 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.From[0].Alias != "E" || sel.From[1].Alias != "D" {
		t.Error("aliases")
	}
	call, ok := sel.Items[1].Expr.(ACall)
	if !ok || !strings.EqualFold(call.Name, "avg") || sel.Items[1].Alias != "avgsal" {
		t.Errorf("agg item = %+v", sel.Items[1])
	}
}

func TestParseCountStar(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	call := st.(*SelectStmt).Items[0].Expr.(ACall)
	if !call.Star {
		t.Error("COUNT(*) star flag")
	}
}

func TestParseStar(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*SelectStmt).Star {
		t.Error("star select")
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a + 1 * 2 = 3 AND b = 1 OR c = 2")
	if err != nil {
		t.Fatal(err)
	}
	w := st.(*SelectStmt).Where.(ABinary)
	if w.Op != "OR" {
		t.Errorf("OR binds loosest, got %s", w.Op)
	}
	l := w.L.(ABinary)
	if l.Op != "AND" {
		t.Errorf("AND above comparisons, got %s", l.Op)
	}
	cmp := l.L.(ABinary)
	if cmp.Op != "=" {
		t.Errorf("comparison, got %s", cmp.Op)
	}
	add := cmp.L.(ABinary)
	if add.Op != "+" {
		t.Errorf("addition, got %s", add.Op)
	}
	if add.R.(ABinary).Op != "*" {
		t.Error("multiplication binds tighter than addition")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a t trailing garbage (",
		"INSERT INTO t VALUES 1",
		"CREATE TABLE t a int)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	sts, err := ParseScript("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("parsed %d statements", len(sts))
	}
	if _, err := ParseScript("SELECT a FROM t junk ("); err == nil {
		t.Error("trailing garbage must error")
	}
}

// ---------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------

type res map[string]*schema.Schema

func (r res) RelationSchema(name string) (*schema.Schema, error) {
	if s, ok := r[name]; ok {
		return s, nil
	}
	return nil, errUnknownRel(name)
}

type errUnknownRel string

func (e errUnknownRel) Error() string { return "unknown " + string(e) }

func binderResolver() res {
	return res{
		"Emp": schema.New(
			schema.Column{Table: "Emp", Name: "eid", Type: value.KindInt},
			schema.Column{Table: "Emp", Name: "did", Type: value.KindInt},
			schema.Column{Table: "Emp", Name: "sal", Type: value.KindFloat},
		),
		"Dept": schema.New(
			schema.Column{Table: "Dept", Name: "did", Type: value.KindInt},
		),
	}
}

func bind(t *testing.T, src string) (*query.Block, error) {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BindSelect(binderResolver(), st.(*SelectStmt))
}

func TestBindSimpleSelect(t *testing.T) {
	b, err := bind(t, "SELECT E.eid, E.sal FROM Emp E WHERE E.sal > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Proj) != 2 || len(b.Preds) != 1 || len(b.Rels) != 1 {
		t.Fatalf("block = %+v", b)
	}
	col := b.Proj[0].Expr.(expr.Col)
	if col.Idx != 0 {
		t.Errorf("eid bound to %d", col.Idx)
	}
}

func TestBindJoinConjuncts(t *testing.T) {
	b, err := bind(t, "SELECT E.eid FROM Emp E, Dept D WHERE E.did = D.did AND E.sal > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Preds) != 2 {
		t.Fatalf("conjuncts = %d", len(b.Preds))
	}
	eq := b.Preds[0].(expr.Cmp)
	if eq.L.(expr.Col).Idx != 1 || eq.R.(expr.Col).Idx != 3 {
		t.Errorf("join pred bound to %v", eq)
	}
}

func TestBindAggregation(t *testing.T) {
	b, err := bind(t, "SELECT E.did, AVG(E.sal) AS a, COUNT(*) AS n FROM Emp E GROUP BY E.did")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.GroupBy) != 1 || b.GroupBy[0] != 1 || len(b.Aggs) != 2 {
		t.Fatalf("block = %+v", b)
	}
	if b.Aggs[0].Kind != expr.AggAvg || b.Aggs[1].Kind != expr.AggCount {
		t.Error("agg kinds")
	}
	if b.Aggs[0].Name != "a" {
		t.Error("agg alias")
	}
}

func TestBindAggregationErrors(t *testing.T) {
	cases := []string{
		// Non-grouped column in select list.
		"SELECT E.eid, COUNT(*) FROM Emp E GROUP BY E.did",
		// Group column missing from select list.
		"SELECT COUNT(*) FROM Emp E GROUP BY E.did",
		// Aggregate before grouping column.
		"SELECT COUNT(*), E.did FROM Emp E GROUP BY E.did",
		// Aggregate in WHERE.
		"SELECT E.did FROM Emp E WHERE AVG(E.sal) > 5",
		// SELECT * with GROUP BY.
		"SELECT * FROM Emp E GROUP BY E.did",
		// Unknown aggregate.
		"SELECT MEDIAN(E.sal) FROM Emp E",
		// SUM(*) invalid.
		"SELECT SUM(*) FROM Emp E",
	}
	for _, src := range cases {
		if _, err := bind(t, src); err == nil {
			t.Errorf("bind(%q) should fail", src)
		}
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	if _, err := bind(t, "SELECT did FROM Emp E, Dept D"); err == nil {
		t.Error("ambiguous did must error")
	}
}

func TestBindUnknownThings(t *testing.T) {
	if _, err := bind(t, "SELECT x FROM Emp E"); err == nil {
		t.Error("unknown column")
	}
	if _, err := bind(t, "SELECT a FROM Nope"); err == nil {
		t.Error("unknown relation")
	}
}

func TestBindDistinctStar(t *testing.T) {
	b, err := bind(t, "SELECT DISTINCT * FROM Emp E")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Distinct || b.Proj != nil {
		t.Error("distinct star")
	}
}

func TestBindDefaultOutputNames(t *testing.T) {
	b, err := bind(t, "SELECT E.sal + 1 FROM Emp E")
	if err != nil {
		t.Fatal(err)
	}
	if b.Proj[0].Name == "" {
		t.Error("computed output needs a derived name")
	}
}
