package sql

import (
	"testing"

	"filterjoin/internal/expr"
)

func TestParseHavingOrderLimit(t *testing.T) {
	st, err := Parse(`SELECT E.did, COUNT(*) AS n FROM Emp E
		GROUP BY E.did HAVING n > 2 ORDER BY n DESC, E.did LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.Having == nil {
		t.Error("HAVING not parsed")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("ORDER BY = %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Errorf("LIMIT = %d", sel.Limit)
	}
}

func TestParseOrderByAsc(t *testing.T) {
	st, err := Parse("SELECT a FROM t ORDER BY a ASC")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).OrderBy[0].Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestParseLimitErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM t LIMIT 0",
		"SELECT a FROM t LIMIT -3",
		"SELECT a FROM t LIMIT 'x'",
		"SELECT a FROM t LIMIT 1.5",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestBindHaving(t *testing.T) {
	b, err := bind(t, `SELECT E.did, COUNT(*) AS n FROM Emp E GROUP BY E.did HAVING n > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Having == nil {
		t.Fatal("Having not bound")
	}
	// Output layout: did at 0, n at 1.
	cmp := b.Having.(expr.Cmp)
	if cmp.L.(expr.Col).Idx != 1 {
		t.Errorf("HAVING bound n to %d", cmp.L.(expr.Col).Idx)
	}
}

func TestBindHavingErrors(t *testing.T) {
	if _, err := bind(t, "SELECT E.eid FROM Emp E HAVING E.eid > 2"); err == nil {
		t.Error("HAVING without aggregation must error")
	}
	if _, err := bind(t, "SELECT E.did, COUNT(*) AS n FROM Emp E GROUP BY E.did HAVING COUNT(*) > 2"); err == nil {
		t.Error("raw aggregate calls in HAVING must direct the user to aliases")
	}
	if _, err := bind(t, "SELECT E.did, COUNT(*) AS n FROM Emp E GROUP BY E.did HAVING zzz > 2"); err == nil {
		t.Error("unknown HAVING column must error")
	}
}

func TestBindOrderBy(t *testing.T) {
	b, err := bind(t, "SELECT E.eid AS id, E.sal FROM Emp E ORDER BY sal DESC, id")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.OrderBy) != 2 {
		t.Fatalf("OrderBy = %+v", b.OrderBy)
	}
	if b.OrderBy[0].Col != 1 || !b.OrderBy[0].Desc {
		t.Errorf("first key = %+v", b.OrderBy[0])
	}
	if b.OrderBy[1].Col != 0 || b.OrderBy[1].Desc {
		t.Errorf("second key = %+v", b.OrderBy[1])
	}
}

func TestBindOrderByStarQualified(t *testing.T) {
	b, err := bind(t, "SELECT * FROM Emp E ORDER BY E.sal DESC")
	if err != nil {
		t.Fatal(err)
	}
	if b.OrderBy[0].Col != 2 {
		t.Errorf("E.sal bound to %d", b.OrderBy[0].Col)
	}
}

func TestBindOrderByUnknown(t *testing.T) {
	if _, err := bind(t, "SELECT E.eid FROM Emp E ORDER BY nope"); err == nil {
		t.Error("unknown ORDER BY column must error")
	}
}

func TestParseUnion(t *testing.T) {
	st, err := Parse("SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
	if err != nil {
		t.Fatal(err)
	}
	un := st.(*UnionStmt)
	if len(un.Selects) != 3 || !un.All {
		t.Errorf("parsed %+v", un)
	}
	st, err = Parse("SELECT a FROM t UNION SELECT b FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*UnionStmt).All {
		t.Error("plain UNION must deduplicate")
	}
	// Mixed collapses to distinct semantics.
	st, err = Parse("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*UnionStmt).All {
		t.Error("a plain UNION anywhere forces dedup")
	}
	if _, err := Parse("SELECT a FROM t UNION"); err == nil {
		t.Error("dangling UNION must error")
	}
}
