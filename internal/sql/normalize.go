package sql

import (
	"fmt"
	"sort"
	"strings"

	"filterjoin/internal/value"
)

// Normalize rewrites a SELECT for plan caching: literals in WHERE
// comparison conjuncts (the selections whose constants the parametric
// coster classifies) are replaced by parameter slots, and the extracted
// values are returned in slot order. Literals anywhere else — select
// items, aggregate arguments, HAVING, LIMIT — stay literal: they change
// the plan's shape or output, not just a selectivity, so statements
// differing there get their own cache entries.
//
// A statement that already carries explicit placeholders (`?`/`$n`) is
// returned unchanged with ok=false: prepared text is already
// parameterized exactly as its author intended, and mixing the two
// numbering schemes would corrupt the argument list.
//
// The input statement is never mutated; the rewritten statement shares
// all untouched nodes.
func Normalize(st *SelectStmt) (norm *SelectStmt, extracted []value.Value, ok bool) {
	if HasParams(st) {
		return st, nil, false
	}
	if st.Where == nil {
		return st, nil, true
	}
	n := &normState{}
	out := *st
	out.Where = n.rewrite(st.Where)
	return &out, n.vals, true
}

type normState struct{ vals []value.Value }

// rewrite descends AND/OR/NOT connectives and parameterizes comparison
// leaves where one side is a literal and the other references a column.
func (n *normState) rewrite(e AExpr) AExpr {
	b, isBin := e.(ABinary)
	if !isBin {
		if nt, ok := e.(ANot); ok {
			return ANot{X: n.rewrite(nt.X)}
		}
		return e
	}
	switch strings.ToUpper(b.Op) {
	case "AND", "OR":
		return ABinary{Op: b.Op, L: n.rewrite(b.L), R: n.rewrite(b.R)}
	case "=", "<>", "<", "<=", ">", ">=":
		l, lLit := b.L.(ALit)
		r, rLit := b.R.(ALit)
		switch {
		case lLit && !rLit && refersColumn(b.R):
			return ABinary{Op: b.Op, L: n.slot(l.V), R: b.R}
		case rLit && !lLit && refersColumn(b.L):
			return ABinary{Op: b.Op, L: b.L, R: n.slot(r.V)}
		}
	}
	return e
}

func (n *normState) slot(v value.Value) AParam {
	n.vals = append(n.vals, v)
	return AParam{Idx: len(n.vals) - 1}
}

// refersColumn reports whether e references at least one column and no
// aggregate call (a pure column-side expression a selection predicate
// compares against a constant).
func refersColumn(e AExpr) bool {
	switch x := e.(type) {
	case AColumn:
		return true
	case ABinary:
		return (refersColumn(x.L) || refersColumn(x.R)) && !containsCall(x)
	case ANot:
		return refersColumn(x.X)
	default:
		return false
	}
}

// HasParams reports whether any explicit placeholder appears in the
// statement.
func HasParams(st *SelectStmt) bool {
	for _, it := range st.Items {
		if exprHasParam(it.Expr) {
			return true
		}
	}
	return exprHasParam(st.Where) || exprHasParam(st.Having)
}

func exprHasParam(e AExpr) bool {
	switch x := e.(type) {
	case AParam:
		return true
	case ABinary:
		return exprHasParam(x.L) || exprHasParam(x.R)
	case ANot:
		return exprHasParam(x.X)
	case ACall:
		return exprHasParam(x.Arg)
	default:
		return false
	}
}

// NumParams returns the number of parameter slots a statement expects,
// validating that the used indexes are exactly 0..n-1 (so $1,$3 without
// $2 is rejected at Prepare time, not with a confusing unbound error at
// execution).
func NumParams(st *SelectStmt) (int, error) {
	set := map[int]bool{}
	for _, it := range st.Items {
		collectParamIdx(it.Expr, set)
	}
	collectParamIdx(st.Where, set)
	collectParamIdx(st.Having, set)
	if len(set) == 0 {
		return 0, nil
	}
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for want, got := range idxs {
		if got != want {
			return 0, fmt.Errorf("sql: parameter $%d is used but $%d is not", idxs[len(idxs)-1]+1, want+1)
		}
	}
	return len(idxs), nil
}

func collectParamIdx(e AExpr, set map[int]bool) {
	switch x := e.(type) {
	case AParam:
		set[x.Idx] = true
	case ABinary:
		collectParamIdx(x.L, set)
		collectParamIdx(x.R, set)
	case ANot:
		collectParamIdx(x.X, set)
	case ACall:
		collectParamIdx(x.Arg, set)
	default:
		// AColumn, ALit: leaves without parameter children.
	}
}

// FormatSelect renders a SELECT in canonical form — uppercase keywords,
// single spacing, explicit `$n` placeholders — so textually different
// spellings of the same statement map to one plan-cache key.
func FormatSelect(st *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if st.Distinct {
		b.WriteString("DISTINCT ")
	}
	if st.Star {
		b.WriteString("*")
	} else {
		for i, it := range st.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatAExpr(it.Expr))
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, r := range st.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Name)
		if r.Alias != "" {
			b.WriteString(" ")
			b.WriteString(r.Alias)
		}
	}
	if st.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(formatAExpr(st.Where))
	}
	if len(st.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range st.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(colName(c))
		}
	}
	if st.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(formatAExpr(st.Having))
	}
	if len(st.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range st.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(colName(o.Col))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if st.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", st.Limit)
	}
	return b.String()
}

func formatAExpr(e AExpr) string {
	switch x := e.(type) {
	case AColumn:
		return colName(x)
	case ALit:
		if x.V.Kind() == value.KindString {
			return "'" + x.V.Str() + "'"
		}
		return x.V.String()
	case AParam:
		return fmt.Sprintf("$%d", x.Idx+1)
	case ANot:
		return "NOT (" + formatAExpr(x.X) + ")"
	case ACall:
		if x.Star {
			return strings.ToUpper(x.Name) + "(*)"
		}
		return strings.ToUpper(x.Name) + "(" + formatAExpr(x.Arg) + ")"
	case ABinary:
		op := strings.ToUpper(x.Op)
		return "(" + formatAExpr(x.L) + " " + op + " " + formatAExpr(x.R) + ")"
	default:
		return fmt.Sprintf("%v", e)
	}
}
