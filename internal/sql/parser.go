package sql

import (
	"fmt"
	"strconv"
	"strings"

	"filterjoin/internal/value"
)

type parser struct {
	toks []token
	pos  int
	// nextParam auto-numbers `?` placeholders in lexical order across the
	// whole parse (statements share one sequence, matching Prepare's
	// argument list).
	nextParam int
}

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input at %q", p.peek())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.atEOF() {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptSymbol(";") {
			break
		}
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input at %q", p.peek())
	}
	return out, nil
}

func (p *parser) atEOF() bool { return p.toks[p.pos].kind == tokEOF }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, found %q", sym, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q", t)
	}
	p.pos++
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"and": true, "or": true, "not": true, "as": true, "distinct": true,
	"create": true, "table": true, "view": true, "index": true, "on": true,
	"insert": true, "into": true, "values": true, "order": true, "having": true,
	"limit": true, "asc": true, "desc": true, "union": true, "all": true,
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("explain"):
		analyze := p.acceptKeyword("analyze")
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if p.isKeyword("union") {
			return nil, fmt.Errorf("sql: EXPLAIN supports a single SELECT")
		}
		return &ExplainStmt{Analyze: analyze, Select: sel}, nil
	case p.isKeyword("create"):
		return p.createStmt()
	case p.isKeyword("insert"):
		return p.insertStmt()
	case p.isKeyword("select"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if !p.isKeyword("union") {
			return sel, nil
		}
		u := &UnionStmt{Selects: []*SelectStmt{sel}, All: true}
		sawPlain := false
		for p.acceptKeyword("union") {
			if p.acceptKeyword("all") {
				// keep All semantics for this arm
			} else {
				sawPlain = true
			}
			next, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			u.Selects = append(u.Selects, next)
		}
		// Mixed UNION / UNION ALL collapses to distinct semantics, as in
		// standard SQL left-associative evaluation with a final UNION.
		u.All = !sawPlain
		return u, nil
	default:
		return nil, fmt.Errorf("sql: expected CREATE, INSERT or SELECT, found %q", p.peek())
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.acceptKeyword("create")
	switch {
	case p.acceptKeyword("table"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []ColDef
		for {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			tn, err := p.ident()
			if err != nil {
				return nil, err
			}
			k, err := typeByName(tn)
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColDef{Name: cn, Type: k})
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name, Cols: cols}, nil

	case p.acceptKeyword("index"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, cn)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: tbl, Cols: cols}, nil

	case p.acceptKeyword("view"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		p.acceptSymbol("(")
		hadParen := p.toks[p.pos-1].kind == tokSymbol && p.toks[p.pos-1].text == "("
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if hadParen {
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return &CreateView{Name: name, Select: sel}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE, INDEX or VIEW after CREATE, found %q", p.peek())
}

func typeByName(name string) (value.Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint":
		return value.KindInt, nil
	case "float", "double", "real", "decimal", "numeric":
		return value.KindFloat, nil
	case "string", "varchar", "char", "text":
		return value.KindString, nil
	case "bool", "boolean":
		return value.KindBool, nil
	}
	return 0, fmt.Errorf("sql: unknown type %q", name)
}

func (p *parser) insertStmt() (Statement, error) {
	p.acceptKeyword("insert")
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	var rows [][]value.Value
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return &Insert{Table: name, Rows: rows}, nil
}

func (p *parser) literal() (value.Value, error) {
	neg := false
	if p.acceptSymbol("-") {
		neg = true
	}
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Null, fmt.Errorf("sql: bad number %q: %w", t.text, err)
			}
			if neg {
				f = -f
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("sql: bad number %q: %w", t.text, err)
		}
		if neg {
			i = -i
		}
		return value.NewInt(i), nil
	case t.kind == tokString && !neg:
		p.pos++
		return value.NewString(t.text), nil
	case t.kind == tokIdent && !neg:
		switch strings.ToLower(t.text) {
		case "true":
			p.pos++
			return value.NewBool(true), nil
		case "false":
			p.pos++
			return value.NewBool(false), nil
		case "null":
			p.pos++
			return value.Null, nil
		}
	}
	return value.Null, fmt.Errorf("sql: expected literal, found %q", t)
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.acceptKeyword("distinct") {
		st.Distinct = true
	}
	if p.acceptSymbol("*") {
		st.Star = true
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("as") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if t := p.peek(); t.kind == tokIdent && !reserved[strings.ToLower(t.text)] {
				item.Alias = t.text
				p.pos++
			}
			st.Items = append(st.Items, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		if p.acceptKeyword("as") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if t := p.peek(); t.kind == tokIdent && !reserved[strings.ToLower(t.text)] {
			ref.Alias = t.text
			p.pos++
		}
		st.From = append(st.From, ref)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			item := OrderBy{Col: col}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("limit") {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		if v.Kind() != value.KindInt || v.Int() < 1 {
			return nil, fmt.Errorf("sql: LIMIT requires a positive integer")
		}
		st.Limit = int(v.Int())
	}
	return st, nil
}

func (p *parser) columnRef() (AColumn, error) {
	a, err := p.ident()
	if err != nil {
		return AColumn{}, err
	}
	if p.acceptSymbol(".") {
		b, err := p.ident()
		if err != nil {
			return AColumn{}, err
		}
		return AColumn{Table: a, Name: b}, nil
	}
	return AColumn{Name: a}, nil
}

// expr parses with precedence: OR < AND < NOT < comparison < addition <
// multiplication < unary/primary.
func (p *parser) expr() (AExpr, error) { return p.orExpr() }

func (p *parser) orExpr() (AExpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = ABinary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (AExpr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = ABinary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (AExpr, error) {
	if p.acceptKeyword("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return ANot{X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (AExpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return ABinary{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (AExpr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ABinary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (AExpr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = ABinary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (AExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "?":
		p.pos++
		idx := p.nextParam
		p.nextParam++
		return AParam{Idx: idx}, nil

	case t.kind == tokSymbol && strings.HasPrefix(t.text, "$"):
		p.pos++
		n, err := strconv.Atoi(t.text[1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: bad parameter placeholder %q", t.text)
		}
		return AParam{Idx: n - 1}, nil

	case t.kind == tokNumber || t.kind == tokString ||
		(t.kind == tokSymbol && t.text == "-") ||
		(t.kind == tokIdent && isLiteralIdent(t.text)):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return ALit{V: v}, nil

	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokIdent:
		name, _ := p.ident()
		// Aggregate call?
		if p.acceptSymbol("(") {
			if p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return ACall{Name: name, Star: true}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return ACall{Name: name, Arg: arg}, nil
		}
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return AColumn{Table: name, Name: col}, nil
		}
		return AColumn{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t)
}

func isLiteralIdent(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "null":
		return true
	}
	return false
}
