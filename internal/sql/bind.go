package sql

import (
	"fmt"
	"strings"

	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/value"
)

// BindSelect resolves a parsed SELECT against the given schema resolver
// (normally the catalog) and produces a logical query block.
//
// Aggregation queries follow the block convention: the select list must
// be the grouping columns (in any order matching the GROUP BY set)
// followed by the aggregate functions.
func BindSelect(res query.SchemaResolver, st *SelectStmt) (*query.Block, error) {
	return BindSelectArgs(res, st, nil)
}

// BindSelectArgs is BindSelect with bind-parameter values: every AParam
// in the statement becomes an expr.Param planned with args[Idx] (or an
// unbound Param when the index has no value, as in prepare-time EXPLAIN).
func BindSelectArgs(res query.SchemaResolver, st *SelectStmt, args []value.Value) (*query.Block, error) {
	b := &query.Block{Distinct: st.Distinct}
	for _, r := range st.From {
		b.Rels = append(b.Rels, query.RelRef{Name: r.Name, Alias: r.Alias})
	}
	layout, err := b.Layout(res)
	if err != nil {
		return nil, err
	}

	if st.Where != nil {
		for _, conj := range splitConjuncts(st.Where) {
			e, err := bindExpr(conj, layout, false, args)
			if err != nil {
				return nil, err
			}
			b.Preds = append(b.Preds, e)
		}
	}

	hasAgg := false
	for _, it := range st.Items {
		if containsCall(it.Expr) {
			hasAgg = true
			break
		}
	}
	if len(st.GroupBy) > 0 {
		hasAgg = true
	}

	switch {
	case st.Star:
		if hasAgg {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY")
		}
		// Proj == nil means all columns.

	case hasAgg:
		groupSet := map[int]bool{}
		for _, g := range st.GroupBy {
			idx, err := layout.Schema.IndexOf(g.Table, g.Name)
			if err != nil {
				return nil, err
			}
			groupSet[idx] = true
		}
		seenAgg := false
		for _, it := range st.Items {
			if call, ok := it.Expr.(ACall); ok {
				spec, err := bindAgg(call, layout, it.Alias, args)
				if err != nil {
					return nil, err
				}
				b.Aggs = append(b.Aggs, spec)
				seenAgg = true
				continue
			}
			if seenAgg {
				return nil, fmt.Errorf("sql: grouping columns must precede aggregates in the select list")
			}
			col, ok := it.Expr.(AColumn)
			if !ok {
				return nil, fmt.Errorf("sql: non-aggregate select item %v must be a grouping column", it.Expr)
			}
			idx, err := layout.Schema.IndexOf(col.Table, col.Name)
			if err != nil {
				return nil, err
			}
			if len(st.GroupBy) > 0 && !groupSet[idx] {
				return nil, fmt.Errorf("sql: column %s is not in GROUP BY", layout.Schema.Col(idx).QualifiedName())
			}
			b.GroupBy = append(b.GroupBy, idx)
			delete(groupSet, idx)
		}
		if len(groupSet) > 0 {
			return nil, fmt.Errorf("sql: every GROUP BY column must appear in the select list")
		}
		if len(b.Aggs) == 0 && len(b.GroupBy) == 0 {
			return nil, fmt.Errorf("sql: aggregation query selects nothing")
		}

	default:
		for _, it := range st.Items {
			e, err := bindExpr(it.Expr, layout, false, args)
			if err != nil {
				return nil, err
			}
			name := it.Alias
			if name == "" {
				if c, ok := it.Expr.(AColumn); ok {
					name = c.Name
				} else {
					name = e.String()
				}
			}
			b.Proj = append(b.Proj, query.Output{Expr: e, Name: name})
		}
	}

	// HAVING and ORDER BY bind against the OUTPUT layout. For SELECT *
	// the output is the relation layout itself (qualified names intact).
	if st.Having != nil || len(st.OrderBy) > 0 {
		outSchema := layout.Schema
		if b.HasAggregation() || b.Proj != nil {
			var err error
			outSchema, err = b.OutputSchema(res, "")
			if err != nil {
				return nil, err
			}
		}
		outLayout := &query.Layout{Schema: outSchema}
		if st.Having != nil {
			if !b.HasAggregation() {
				return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
			}
			if containsCall(st.Having) {
				return nil, fmt.Errorf("sql: reference aggregates in HAVING through their select-list aliases")
			}
			h, err := bindExpr(st.Having, outLayout, false, args)
			if err != nil {
				return nil, fmt.Errorf("sql: in HAVING: %w", err)
			}
			b.Having = h
		}
		for _, ob := range st.OrderBy {
			idx, err := resolveOutputColumn(b, layout, outSchema, ob.Col)
			if err != nil {
				return nil, fmt.Errorf("sql: in ORDER BY: %w", err)
			}
			b.OrderBy = append(b.OrderBy, query.OrderItem{Col: idx, Desc: ob.Desc})
		}
	}
	b.Limit = st.Limit
	return b, nil
}

// resolveOutputColumn locates a column reference within a block's output:
// by (possibly qualified) output name first; failing that, by the source
// column a projection output copies (so "ORDER BY t.v" works when t.v is
// projected under its own name).
func resolveOutputColumn(b *query.Block, layout *query.Layout, outSchema *schema.Schema, col AColumn) (int, error) {
	if idx, err := outSchema.IndexOf(col.Table, col.Name); err == nil {
		return idx, nil
	}
	if col.Table != "" {
		if idx, err := outSchema.IndexOf("", col.Name); err == nil {
			return idx, nil
		}
	}
	// Provenance fallback for projection blocks.
	if b.Proj != nil && !b.HasAggregation() {
		if src, err := layout.Schema.IndexOf(col.Table, col.Name); err == nil {
			for i, o := range b.Proj {
				if c, ok := o.Expr.(expr.Col); ok && c.Idx == src {
					return i, nil
				}
			}
		}
	}
	return -1, fmt.Errorf("column %q is not in the select list", colName(col))
}

func colName(c AColumn) string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// splitConjuncts flattens top-level ANDs.
func splitConjuncts(e AExpr) []AExpr {
	if b, ok := e.(ABinary); ok && strings.EqualFold(b.Op, "AND") {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []AExpr{e}
}

func containsCall(e AExpr) bool {
	switch x := e.(type) {
	case ACall:
		return true
	case ABinary:
		return containsCall(x.L) || containsCall(x.R)
	case ANot:
		return containsCall(x.X)
	default:
		return false
	}
}

func bindAgg(call ACall, layout *query.Layout, alias string, args []value.Value) (expr.AggSpec, error) {
	kind, ok := expr.AggKindByName(call.Name)
	if !ok {
		return expr.AggSpec{}, fmt.Errorf("sql: unknown aggregate function %q", call.Name)
	}
	spec := expr.AggSpec{Kind: kind, Name: alias}
	if call.Star {
		if kind != expr.AggCount {
			return expr.AggSpec{}, fmt.Errorf("sql: %s(*) is not valid", strings.ToUpper(call.Name))
		}
		if spec.Name == "" {
			spec.Name = "count"
		}
		return spec, nil
	}
	arg, err := bindExpr(call.Arg, layout, false, args)
	if err != nil {
		return expr.AggSpec{}, err
	}
	spec.Arg = arg
	if spec.Name == "" {
		spec.Name = spec.String()
	}
	return spec, nil
}

func bindExpr(e AExpr, layout *query.Layout, inAgg bool, args []value.Value) (expr.Expr, error) {
	switch x := e.(type) {
	case AColumn:
		idx, err := layout.Schema.IndexOf(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return expr.NewCol(idx, layout.Schema.Col(idx).QualifiedName()), nil
	case ALit:
		return expr.NewLit(x.V), nil
	case AParam:
		pv := expr.Param{Idx: x.Idx}
		if x.Idx >= 0 && x.Idx < len(args) {
			pv.V, pv.Has = args[x.Idx], true
		}
		return pv, nil
	case ANot:
		kid, err := bindExpr(x.X, layout, inAgg, args)
		if err != nil {
			return nil, err
		}
		return expr.Not{Kid: kid}, nil
	case ACall:
		return nil, fmt.Errorf("sql: aggregate %q not allowed here", x.Name)
	case ABinary:
		l, err := bindExpr(x.L, layout, inAgg, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, layout, inAgg, args)
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(x.Op) {
		case "AND":
			return expr.NewAnd(l, r), nil
		case "OR":
			return expr.NewOr(l, r), nil
		case "=":
			return expr.NewCmp(expr.EQ, l, r), nil
		case "<>":
			return expr.NewCmp(expr.NE, l, r), nil
		case "<":
			return expr.NewCmp(expr.LT, l, r), nil
		case "<=":
			return expr.NewCmp(expr.LE, l, r), nil
		case ">":
			return expr.NewCmp(expr.GT, l, r), nil
		case ">=":
			return expr.NewCmp(expr.GE, l, r), nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
	}
	return nil, fmt.Errorf("sql: cannot bind expression %T", e)
}
