package datagen

import (
	"testing"

	"filterjoin/internal/value"
)

func TestFig1CatalogShape(t *testing.T) {
	p := DefaultFig1()
	p.NEmp, p.NDept = 1000, 50
	cat, err := Fig1Catalog(p)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := cat.Get("Emp")
	if err != nil {
		t.Fatal(err)
	}
	if emp.Table.NumRows() != 1000 {
		t.Errorf("Emp rows = %d", emp.Table.NumRows())
	}
	if emp.Table.Index("emp_did") == nil {
		t.Error("emp_did index missing")
	}
	dept, err := cat.Get("Dept")
	if err != nil {
		t.Fatal(err)
	}
	if dept.Table.NumRows() != 50 {
		t.Errorf("Dept rows = %d", dept.Table.NumRows())
	}
	if !cat.Has("DepAvgSal") {
		t.Error("view missing")
	}
	// Clustered: did non-decreasing.
	st := emp.Stats()
	if !st.Cols[1].Sorted {
		t.Error("clustered Emp must be sorted on did")
	}
}

func TestFig1Deterministic(t *testing.T) {
	p := DefaultFig1()
	p.NEmp, p.NDept = 500, 20
	c1, err := Fig1Catalog(p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Fig1Catalog(p)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := c1.Get("Emp")
	e2, _ := c2.Get("Emp")
	for i := 0; i < 500; i++ {
		if e1.Table.Row(i).String() != e2.Table.Row(i).String() {
			t.Fatalf("row %d differs between runs with the same seed", i)
		}
	}
}

func TestFig1SelectivityKnobs(t *testing.T) {
	p := DefaultFig1()
	p.NEmp, p.NDept = 4000, 100
	p.BigFrac = 0.1
	p.YoungFrac = 0.25
	cat, err := Fig1Catalog(p)
	if err != nil {
		t.Fatal(err)
	}
	dept, _ := cat.Get("Dept")
	big := 0
	for _, r := range dept.Table.Rows() {
		if r[1].Int() > 100000 {
			big++
		}
	}
	if big < 3 || big > 25 {
		t.Errorf("big departments = %d of 100, want ≈10", big)
	}
	emp, _ := cat.Get("Emp")
	young := 0
	for _, r := range emp.Table.Rows() {
		if r[3].Int() < 30 {
			young++
		}
	}
	if young < 700 || young > 1400 {
		t.Errorf("young employees = %d of 4000, want ≈1000", young)
	}
}

func TestDistCatalogShape(t *testing.T) {
	p := DefaultDist()
	p.NCustomers, p.NOrders = 200, 2000
	cat, err := DistCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := cat.Get("Orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders.Site != 1 {
		t.Error("Orders must be remote")
	}
	if orders.Table.Index("orders_ckey") == nil {
		t.Error("remote index missing")
	}
	ot, err := cat.Get("OrderTotals")
	if err != nil {
		t.Fatal(err)
	}
	if ot.Site != 1 || ot.ViewDef == nil {
		t.Error("OrderTotals must be a remote view")
	}
	cust, _ := cat.Get("Customer")
	if cust.Site != 0 {
		t.Error("Customer is local")
	}
}

func TestUDRCatalogFunction(t *testing.T) {
	p := DefaultUDR()
	p.NEmp, p.NDept, p.PerCall = 500, 20, 4
	cat, counter, err := UDRCatalog(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := cat.Get("DeptPerks")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Fn(value.Row{value.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("perCall rows = %d", len(rows))
	}
	if counter.Calls != 1 {
		t.Errorf("Calls = %d", counter.Calls)
	}
	for _, r := range rows {
		if r[0].Int() != 3 {
			t.Error("function must echo its binding")
		}
	}
	if _, err := e.Fn(value.Row{}); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestQueriesBindAgainstCatalogs(t *testing.T) {
	figCat, err := Fig1Catalog(Fig1Params{NEmp: 100, NDept: 10, YoungFrac: 0.5, BigFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig1Query().Layout(figCat); err != nil {
		t.Errorf("Fig1Query layout: %v", err)
	}
	distCat, err := DistCatalog(DistParams{NCustomers: 50, NOrders: 100, SegFrac: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistQuery().Layout(distCat); err != nil {
		t.Errorf("DistQuery layout: %v", err)
	}
	if _, err := DistBaseQuery().Layout(distCat); err != nil {
		t.Errorf("DistBaseQuery layout: %v", err)
	}
	udrCat, _, err := UDRCatalog(UDRParams{NEmp: 100, NDept: 10, PerCall: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UDRQuery().Layout(udrCat); err != nil {
		t.Errorf("UDRQuery layout: %v", err)
	}
}
