// Package datagen builds the deterministic workloads the experiments,
// benchmarks and examples run on: the paper's Fig 1 Emp/Dept universe
// with tunable selectivities, a two-site distributed order-entry
// workload, and a function-backed relation workload. All generators are
// seeded and reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"filterjoin/internal/catalog"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Fig1Params sizes the paper's motivating workload.
type Fig1Params struct {
	NEmp      int     // employees
	NDept     int     // departments
	YoungFrac float64 // fraction of employees with age < 30
	BigFrac   float64 // fraction of departments with budget > 100000
	Clustered bool    // store Emp sorted by did (clustered emp_did index)
	Seed      int64
}

// DefaultFig1 returns a medium-size configuration.
func DefaultFig1() Fig1Params {
	return Fig1Params{
		NEmp: 20000, NDept: 400,
		YoungFrac: 0.2, BigFrac: 0.1,
		Clustered: true, Seed: 42,
	}
}

// EmpSchema returns the Emp table schema.
func EmpSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "Emp", Name: "eid", Type: value.KindInt},
		schema.Column{Table: "Emp", Name: "did", Type: value.KindInt},
		schema.Column{Table: "Emp", Name: "sal", Type: value.KindFloat},
		schema.Column{Table: "Emp", Name: "age", Type: value.KindInt},
	)
}

// DeptSchema returns the Dept table schema.
func DeptSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "Dept", Name: "did", Type: value.KindInt},
		schema.Column{Table: "Dept", Name: "budget", Type: value.KindInt},
	)
}

// Fig1Catalog materializes the workload: Emp and Dept with hash indexes
// on did, plus the DepAvgSal view.
func Fig1Catalog(p Fig1Params) (*catalog.Catalog, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := catalog.New()

	emp := storage.NewTable("Emp", EmpSchema())
	for i := 0; i < p.NEmp; i++ {
		var did int64
		if p.Clustered {
			did = int64(i * p.NDept / p.NEmp)
		} else {
			did = int64(rng.Intn(p.NDept))
		}
		age := int64(30 + rng.Intn(35))
		if rng.Float64() < p.YoungFrac {
			age = int64(20 + rng.Intn(10))
		}
		if err := emp.Insert(value.Row{
			value.NewInt(int64(i)),
			value.NewInt(did),
			value.NewFloat(float64(1000 + rng.Intn(5000))),
			value.NewInt(age),
		}); err != nil {
			return nil, err
		}
	}
	if _, err := emp.CreateIndex("emp_did", []int{1}); err != nil {
		return nil, err
	}
	cat.AddTable(emp)

	dept := storage.NewTable("Dept", DeptSchema())
	for d := 0; d < p.NDept; d++ {
		budget := int64(10000 + rng.Intn(90000))
		if rng.Float64() < p.BigFrac {
			budget = int64(100001 + rng.Intn(400000))
		}
		if err := dept.Insert(value.Row{value.NewInt(int64(d)), value.NewInt(budget)}); err != nil {
			return nil, err
		}
	}
	if _, err := dept.CreateIndex("dept_did", []int{0}); err != nil {
		return nil, err
	}
	cat.AddTable(dept)

	cat.AddView("DepAvgSal", DepAvgSalView())
	return cat, nil
}

// DepAvgSalView is CREATE VIEW DepAvgSal AS
// SELECT did, AVG(sal) avgsal FROM Emp GROUP BY did.
func DepAvgSalView() *query.Block {
	return &query.Block{
		Rels:    []query.RelRef{{Name: "Emp"}},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggAvg, Arg: expr.NewCol(2, "Emp.sal"), Name: "avgsal"}},
	}
}

// Fig1Query is the paper's motivating query as a logical block.
// Layout: E:[0..3] D:[4,5] V:[6,7].
func Fig1Query() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "Dept", Alias: "D"},
			{Name: "DepAvgSal", Alias: "V"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(4, "D.did")),
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(6, "V.did")),
			expr.NewCmp(expr.GT, expr.NewCol(2, "E.sal"), expr.NewCol(7, "V.avgsal")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "E.age"), expr.Int(30)),
			expr.NewCmp(expr.GT, expr.NewCol(5, "D.budget"), expr.Int(100000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(1, "E.did"), Name: "did"},
			{Expr: expr.NewCol(2, "E.sal"), Name: "sal"},
			{Expr: expr.NewCol(7, "V.avgsal"), Name: "avgsal"},
		},
	}
}

// Fig1QuerySQL is the same query as SQL text.
const Fig1QuerySQL = `
SELECT E.did, E.sal, V.avgsal
FROM Emp E, Dept D, DepAvgSal V
WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal
  AND E.age < 30 AND D.budget > 100000`

// DistParams sizes the two-site distributed workload.
type DistParams struct {
	NCustomers int
	NOrders    int
	SegFrac    float64 // fraction of customers in the probed segment
	Seed       int64
}

// DefaultDist returns a medium-size distributed configuration.
func DefaultDist() DistParams {
	return DistParams{NCustomers: 2000, NOrders: 40000, SegFrac: 0.05, Seed: 7}
}

// DistCatalog builds: Customer stored locally (site 0), Orders stored at
// site 1 with an index on ckey (clustered), and the remote view
// OrderTotals (per-customer order count and value) also at site 1.
func DistCatalog(p DistParams) (*catalog.Catalog, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := catalog.New()

	custSchema := schema.New(
		schema.Column{Table: "Customer", Name: "ckey", Type: value.KindInt},
		schema.Column{Table: "Customer", Name: "segment", Type: value.KindInt},
		schema.Column{Table: "Customer", Name: "balance", Type: value.KindFloat},
	)
	cust := storage.NewTable("Customer", custSchema)
	for i := 0; i < p.NCustomers; i++ {
		seg := int64(1 + rng.Intn(int(1/p.SegFrac)))
		cust.MustInsert(
			value.NewInt(int64(i)),
			value.NewInt(seg),
			value.NewFloat(float64(rng.Intn(100000))/10),
		)
	}
	if _, err := cust.CreateIndex("cust_ckey", []int{0}); err != nil {
		return nil, err
	}
	cat.AddTable(cust)

	orderSchema := schema.New(
		schema.Column{Table: "Orders", Name: "okey", Type: value.KindInt},
		schema.Column{Table: "Orders", Name: "ckey", Type: value.KindInt},
		schema.Column{Table: "Orders", Name: "price", Type: value.KindFloat},
	)
	orders := storage.NewTable("Orders", orderSchema)
	for i := 0; i < p.NOrders; i++ {
		// Clustered by ckey so remote index probes are cheap.
		ckey := int64(i * p.NCustomers / p.NOrders)
		orders.MustInsert(
			value.NewInt(int64(i)),
			value.NewInt(ckey),
			value.NewFloat(float64(10+rng.Intn(990))),
		)
	}
	if _, err := orders.CreateIndex("orders_ckey", []int{1}); err != nil {
		return nil, err
	}
	cat.AddRemoteTable(orders, 1)

	// Remote view at the orders site: per-customer totals.
	cat.AddRemoteView("OrderTotals", &query.Block{
		Rels:    []query.RelRef{{Name: "Orders"}},
		GroupBy: []int{1},
		Aggs: []expr.AggSpec{
			{Kind: expr.AggCount, Name: "norders"},
			{Kind: expr.AggSum, Arg: expr.NewCol(2, "Orders.price"), Name: "total"},
		},
	}, 1)
	return cat, nil
}

// DistQuery joins local customers of one segment with the remote
// OrderTotals view. Layout: C:[0..2] T:[3..5].
func DistQuery() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Customer", Alias: "C"},
			{Name: "OrderTotals", Alias: "T"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "C.ckey"), expr.NewCol(3, "T.ckey")),
			expr.Eq(expr.NewCol(1, "C.segment"), expr.Int(1)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(0, "C.ckey"), Name: "ckey"},
			{Expr: expr.NewCol(4, "T.norders"), Name: "norders"},
			{Expr: expr.NewCol(5, "T.total"), Name: "total"},
		},
	}
}

// DistBaseQuery joins local customers with the remote Orders base table
// (no view): the classical distributed semi-join scenario.
// Layout: C:[0..2] O:[3..5].
func DistBaseQuery() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Customer", Alias: "C"},
			{Name: "Orders", Alias: "O"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "C.ckey"), expr.NewCol(4, "O.ckey")),
			expr.Eq(expr.NewCol(1, "C.segment"), expr.Int(1)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(0, "C.ckey"), Name: "ckey"},
			{Expr: expr.NewCol(3, "O.okey"), Name: "okey"},
			{Expr: expr.NewCol(5, "O.price"), Name: "price"},
		},
	}
}

// UDRParams sizes the user-defined-relation workload.
type UDRParams struct {
	NEmp    int
	NDept   int
	PerCall int // rows the function returns per department
	Seed    int64
}

// DefaultUDR returns a medium-size UDR configuration.
func DefaultUDR() UDRParams {
	return UDRParams{NEmp: 5000, NDept: 200, PerCall: 3, Seed: 11}
}

// CallCounter counts invocations of the generated function.
type CallCounter struct{ Calls int }

// UDRCatalog builds Emp (as in Fig 1) plus a function-backed relation
// DeptPerks(did, perk, budget) that "computes" PerCall perk rows per
// department. The returned counter observes actual invocations.
func UDRCatalog(p UDRParams) (*catalog.Catalog, *CallCounter, error) {
	cat, err := Fig1Catalog(Fig1Params{
		NEmp: p.NEmp, NDept: p.NDept, YoungFrac: 0.25, BigFrac: 0.1,
		Clustered: true, Seed: p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	perkSchema := schema.New(
		schema.Column{Table: "DeptPerks", Name: "did", Type: value.KindInt},
		schema.Column{Table: "DeptPerks", Name: "perk", Type: value.KindInt},
		schema.Column{Table: "DeptPerks", Name: "cost", Type: value.KindFloat},
	)
	counter := &CallCounter{}
	perCall := p.PerCall
	fn := func(args value.Row) ([]value.Row, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("DeptPerks expects 1 argument, got %d", len(args))
		}
		counter.Calls++
		did := args[0].Int()
		out := make([]value.Row, perCall)
		for k := 0; k < perCall; k++ {
			out[k] = value.Row{
				value.NewInt(did),
				value.NewInt(int64(k)),
				value.NewFloat(float64(100*(k+1)) + float64(did%7)),
			}
		}
		return out, nil
	}
	fnStats := &stats.RelStats{
		Rows: float64(p.NDept * p.PerCall),
		Cols: []stats.ColStats{
			{Distinct: float64(p.NDept)},
			{Distinct: float64(p.PerCall)},
			{Distinct: float64(p.NDept * p.PerCall)},
		},
	}
	cat.AddFunc("DeptPerks", perkSchema, []int{0}, fn, fnStats, float64(p.PerCall))
	return cat, counter, nil
}

// UDRQuery joins young employees in big departments with the perks
// function. Layout: E:[0..3] D:[4,5] P:[6..8].
func UDRQuery() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "Dept", Alias: "D"},
			{Name: "DeptPerks", Alias: "P"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(4, "D.did")),
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(6, "P.did")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "E.age"), expr.Int(30)),
			expr.NewCmp(expr.GT, expr.NewCol(5, "D.budget"), expr.Int(100000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(0, "E.eid"), Name: "eid"},
			{Expr: expr.NewCol(7, "P.perk"), Name: "perk"},
			{Expr: expr.NewCol(8, "P.cost"), Name: "cost"},
		},
	}
}
