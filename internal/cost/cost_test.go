package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterAddDiff(t *testing.T) {
	a := Counter{PageReads: 3, CPUTuples: 10}
	b := Counter{PageReads: 1, NetBytes: 512, NetMsgs: 2}
	a.Add(b)
	if a.PageReads != 4 || a.NetBytes != 512 || a.CPUTuples != 10 {
		t.Errorf("Add = %+v", a)
	}
	d := a.Diff(b)
	if d.PageReads != 3 || d.NetBytes != 0 || d.CPUTuples != 10 {
		t.Errorf("Diff = %+v", d)
	}
}

func TestCounterIsZeroAndString(t *testing.T) {
	var c Counter
	if !c.IsZero() {
		t.Error("zero counter should be zero")
	}
	if c.String() != "{}" {
		t.Errorf("zero renders %q", c.String())
	}
	c.FnCalls = 2
	if c.IsZero() {
		t.Error("non-zero counter")
	}
	if !strings.Contains(c.String(), "fn=2") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestDefaultModelUnits(t *testing.T) {
	m := DefaultModel()
	if m.Total(Counter{PageReads: 1}) != 1 {
		t.Error("one page read must cost exactly one unit")
	}
	if m.Total(Counter{CPUTuples: 1000}) != 1 {
		t.Error("1000 tuple ops should equal one page read")
	}
	if m.Total(Counter{NetMsgs: 1}) != 1 {
		t.Error("one message costs one unit")
	}
}

func TestSpecializedModels(t *testing.T) {
	c := Counter{PageReads: 10, NetBytes: 1 << 20, NetMsgs: 5}
	if LocalOnlyModel().Total(c) != 10 {
		t.Error("local-only model must ignore the network")
	}
	netOnly := NetworkOnlyModel().Total(c)
	if netOnly <= 0 {
		t.Error("network-only model must charge the network")
	}
	if NetworkOnlyModel().Total(Counter{PageReads: 100}) != 0 {
		t.Error("network-only model must ignore pages")
	}
}

func TestModelScale(t *testing.T) {
	m := DefaultModel().Scale(2)
	if m.Total(Counter{PageReads: 1}) != 2 {
		t.Error("scaled model doubles costs")
	}
}

func TestTotalLinearity(t *testing.T) {
	m := DefaultModel()
	f := func(r1, r2, c1, c2 uint16) bool {
		a := Counter{PageReads: int64(r1), CPUTuples: int64(c1)}
		b := Counter{PageReads: int64(r2), CPUTuples: int64(c2)}
		sum := a
		sum.Add(b)
		lhs := m.Total(sum)
		rhs := m.Total(a) + m.Total(b)
		return abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEstimateArithmetic(t *testing.T) {
	a := Estimate{PageReads: 2, CPUTuples: 100}
	b := Estimate{PageReads: 1, NetBytes: 50}
	s := a.Plus(b)
	if s.PageReads != 3 || s.NetBytes != 50 || s.CPUTuples != 100 {
		t.Errorf("Plus = %+v", s)
	}
	d := a.Times(2)
	if d.PageReads != 4 || d.CPUTuples != 200 {
		t.Errorf("Times = %+v", d)
	}
}

func TestEstimateTotalsMatchCounterTotals(t *testing.T) {
	m := DefaultModel()
	c := Counter{PageReads: 7, PageWrites: 3, CPUTuples: 999, NetBytes: 4096, NetMsgs: 2, FnCalls: 5}
	if abs(m.TotalEstimate(FromCounter(c))-m.Total(c)) > 1e-9 {
		t.Error("estimate-of-counter must weigh identically to the counter")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{PageReads: 1.5}
	if !strings.Contains(e.String(), "pageR=1.5") {
		t.Errorf("String() = %q", e.String())
	}
	if (Estimate{}).String() != "{}" {
		t.Error("zero estimate renders {}")
	}
}
