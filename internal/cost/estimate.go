package cost

import "fmt"

// Estimate is the optimizer-side mirror of Counter: estimated resource
// consumption in the same currencies, but fractional. Keeping estimates
// in raw currencies (rather than a single scalar) lets experiments report
// the local-vs-network split and lets one optimization pass be re-weighed
// under different models.
type Estimate struct {
	PageReads  float64
	PageWrites float64
	CPUTuples  float64
	NetBytes   float64
	NetMsgs    float64
	FnCalls    float64
}

// Plus returns e + o.
func (e Estimate) Plus(o Estimate) Estimate {
	return Estimate{
		PageReads:  e.PageReads + o.PageReads,
		PageWrites: e.PageWrites + o.PageWrites,
		CPUTuples:  e.CPUTuples + o.CPUTuples,
		NetBytes:   e.NetBytes + o.NetBytes,
		NetMsgs:    e.NetMsgs + o.NetMsgs,
		FnCalls:    e.FnCalls + o.FnCalls,
	}
}

// Times returns e scaled by f.
func (e Estimate) Times(f float64) Estimate {
	return Estimate{
		PageReads:  e.PageReads * f,
		PageWrites: e.PageWrites * f,
		CPUTuples:  e.CPUTuples * f,
		NetBytes:   e.NetBytes * f,
		NetMsgs:    e.NetMsgs * f,
		FnCalls:    e.FnCalls * f,
	}
}

// Total weighs the estimate into scalar cost under model m.
func (m Model) TotalEstimate(e Estimate) float64 {
	return m.PageRead*e.PageReads +
		m.PageWrite*e.PageWrites +
		m.CPUTuple*e.CPUTuples +
		m.NetByte*e.NetBytes +
		m.NetMsg*e.NetMsgs +
		m.FnCall*e.FnCalls
}

// FromCounter converts measured counters into an Estimate (for
// estimate-vs-actual comparisons).
func FromCounter(c Counter) Estimate {
	return Estimate{
		PageReads:  float64(c.PageReads),
		PageWrites: float64(c.PageWrites),
		CPUTuples:  float64(c.CPUTuples),
		NetBytes:   float64(c.NetBytes),
		NetMsgs:    float64(c.NetMsgs),
		FnCalls:    float64(c.FnCalls),
	}
}

// String renders the non-zero components compactly.
func (e Estimate) String() string {
	s := "{"
	first := true
	add := func(name string, v float64) {
		if v == 0 {
			return
		}
		if !first {
			s += " "
		}
		s += fmt.Sprintf("%s=%.1f", name, v)
		first = false
	}
	add("pageR", e.PageReads)
	add("pageW", e.PageWrites)
	add("cpu", e.CPUTuples)
	add("netB", e.NetBytes)
	add("netM", e.NetMsgs)
	add("fn", e.FnCalls)
	return s + "}"
}
