// Package cost defines the resource-accounting vocabulary shared by the
// executor (which measures actual consumption) and the optimizer (which
// estimates it). The unit convention follows DESIGN.md §6: one weighted
// cost unit corresponds to one page I/O under the default model.
package cost

import (
	"fmt"
	"strings"
)

// Counter accumulates raw resource consumption. The executor charges every
// operator's work here; the optimizer's estimates are expressed in the same
// currencies so that estimate-vs-actual comparisons (experiment E11) are
// apples to apples.
type Counter struct {
	PageReads  int64 // pages read from (simulated) disk
	PageWrites int64 // pages written to (simulated) disk
	CPUTuples  int64 // per-tuple CPU operations (compare, hash, copy, eval)
	NetBytes   int64 // bytes shipped between sites
	NetMsgs    int64 // network messages (round-trip initiations)
	FnCalls    int64 // user-defined relation function invocations

	// Fault-tolerance accounting (DESIGN.md §10). These are observability
	// counters for faulty runs: the optimizer never estimates them and the
	// Model carries no weights for them, because the paper's cost formulas
	// assume a fault-free network. Fault-free executions leave them zero,
	// which keeps every estimate-vs-actual comparison unchanged.
	Retries   int64 // remote send attempts beyond the first (per message)
	WaitMs    int64 // simulated milliseconds spent on latency, timeouts, and backoff
	Fallbacks int64 // queries degraded to the fault-free fallback plan

	// Replans counts mid-run adaptive re-optimizations (DESIGN.md §15):
	// a materialization point observed its input exceed the estimate by
	// the replan ratio, the running plan was abandoned, and the remainder
	// was re-optimized with the observed cardinality. Like the fault
	// counters above it is unweighted observability: the paper's cost
	// formulas assume estimates are honest, and replan-free executions
	// leave it zero so estimate-vs-actual comparisons are unchanged.
	Replans int64 // mid-run adaptive re-optimizations
}

// Add accumulates o into c.
func (c *Counter) Add(o Counter) {
	c.PageReads += o.PageReads
	c.PageWrites += o.PageWrites
	c.CPUTuples += o.CPUTuples
	c.NetBytes += o.NetBytes
	c.NetMsgs += o.NetMsgs
	c.FnCalls += o.FnCalls
	c.Retries += o.Retries
	c.WaitMs += o.WaitMs
	c.Fallbacks += o.Fallbacks
	c.Replans += o.Replans
}

// Diff returns c - o, the consumption that happened after snapshot o.
func (c Counter) Diff(o Counter) Counter {
	return Counter{
		PageReads:  c.PageReads - o.PageReads,
		PageWrites: c.PageWrites - o.PageWrites,
		CPUTuples:  c.CPUTuples - o.CPUTuples,
		NetBytes:   c.NetBytes - o.NetBytes,
		NetMsgs:    c.NetMsgs - o.NetMsgs,
		FnCalls:    c.FnCalls - o.FnCalls,
		Retries:    c.Retries - o.Retries,
		WaitMs:     c.WaitMs - o.WaitMs,
		Fallbacks:  c.Fallbacks - o.Fallbacks,
		Replans:    c.Replans - o.Replans,
	}
}

// IsZero reports whether no resource has been consumed.
func (c Counter) IsZero() bool { return c == Counter{} }

// String renders the non-zero components.
func (c Counter) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("pageR", c.PageReads)
	add("pageW", c.PageWrites)
	add("cpu", c.CPUTuples)
	add("netB", c.NetBytes)
	add("netM", c.NetMsgs)
	add("fn", c.FnCalls)
	add("retry", c.Retries)
	add("wait", c.WaitMs)
	add("fb", c.Fallbacks)
	add("replan", c.Replans)
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Model converts raw counters into a single scalar cost. Weights are the
// knob that moves regime boundaries (e.g. the SDD-1 assumption that
// communication dominates corresponds to a large NetByte weight).
type Model struct {
	PageRead  float64 // per page read; 1.0 defines the unit
	PageWrite float64 // per page written
	CPUTuple  float64 // per per-tuple CPU operation
	NetByte   float64 // per byte shipped
	NetMsg    float64 // per message
	FnCall    float64 // per user-defined function invocation
}

// DefaultModel returns the weights used throughout the experiments:
// page I/O dominates, CPU is three orders of magnitude cheaper per tuple,
// the network costs 0.02 units per KB plus one unit per message, and a
// user-defined function call costs half a page read.
func DefaultModel() Model {
	return Model{
		PageRead:  1.0,
		PageWrite: 1.0,
		CPUTuple:  0.001,
		NetByte:   0.02 / 1024.0,
		NetMsg:    1.0,
		FnCall:    0.5,
	}
}

// LocalOnlyModel ignores network entirely; used to report the "local
// processing" component of distributed experiments separately.
func LocalOnlyModel() Model {
	m := DefaultModel()
	m.NetByte = 0
	m.NetMsg = 0
	return m
}

// NetworkOnlyModel ignores everything but network; the SDD-1 assumption.
func NetworkOnlyModel() Model {
	return Model{NetByte: 0.02 / 1024.0, NetMsg: 1.0}
}

// Total converts a counter to weighted scalar cost under m.
func (m Model) Total(c Counter) float64 {
	return m.PageRead*float64(c.PageReads) +
		m.PageWrite*float64(c.PageWrites) +
		m.CPUTuple*float64(c.CPUTuples) +
		m.NetByte*float64(c.NetBytes) +
		m.NetMsg*float64(c.NetMsgs) +
		m.FnCall*float64(c.FnCalls)
}

// Scale returns a model with every weight multiplied by f.
func (m Model) Scale(f float64) Model {
	return Model{
		PageRead:  m.PageRead * f,
		PageWrite: m.PageWrite * f,
		CPUTuple:  m.CPUTuple * f,
		NetByte:   m.NetByte * f,
		NetMsg:    m.NetMsg * f,
		FnCall:    m.FnCall * f,
	}
}
