package cost

import "math"

// Eps is the relative tolerance for cost comparisons. Estimated totals
// are sums of float64 terms whose grouping differs between otherwise
// identical plans (a join's Total accumulates child costs in tree
// order), so bitwise equality is meaningless: two plans that the model
// prices identically can differ in the last few ulps. All dominance
// tests in the optimizer go through Less/LessEq/ApproxEq so that such
// ties are decided by the deterministic tie-breakers (arrival order),
// not by rounding noise. The optlint floatcmp analyzer enforces this.
const Eps = 1e-9

// ApproxEq reports whether a and b are equal within Eps relative
// tolerance (absolute tolerance Eps near zero).
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= Eps
	}
	return diff <= Eps*scale
}

// Less reports a < b beyond tolerance: a is strictly cheaper, not
// merely rounding-noise cheaper.
func Less(a, b float64) bool { return a < b && !ApproxEq(a, b) }

// LessEq reports a <= b within tolerance: a is cheaper or tied.
func LessEq(a, b float64) bool { return a <= b || ApproxEq(a, b) }
