package dist

import (
	"context"
	"errors"
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
)

// scriptLink replays a fixed outcome sequence; after the script runs out
// every attempt delivers instantly. It gives the retry-policy tests an
// exact, hand-checkable schedule.
type scriptLink struct {
	script []Outcome
	n      int
}

func (l *scriptLink) Attempt(int, int64) Outcome {
	if l.n < len(l.script) {
		o := l.script[l.n]
		l.n++
		return o
	}
	return Outcome{}
}

func TestSendFreePathChargesExactly(t *testing.T) {
	ctx := exec.NewContext()
	if err := Send(ctx, 2, 64); err != nil {
		t.Fatalf("free send: %v", err)
	}
	want := cost.Counter{NetMsgs: 1, NetBytes: 64}
	if *ctx.Counter != want {
		t.Fatalf("free path charged %s, want %s", ctx.Counter, want.String())
	}
}

func TestNetOverFreeLinkMatchesFreePath(t *testing.T) {
	free := exec.NewContext()
	if err := Send(free, 1, 100); err != nil {
		t.Fatal(err)
	}
	viaNet := exec.NewContext()
	viaNet.Net = NewTransport(FreeLink{}, RetryPolicy{})
	if err := Send(viaNet, 1, 100); err != nil {
		t.Fatal(err)
	}
	if *free.Counter != *viaNet.Counter {
		t.Fatalf("Net over FreeLink charged %s, free path %s", viaNet.Counter, free.Counter)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	// Two drops then success under a 10ms initial backoff: attempts
	// charge 3 msgs and 3×8 bytes, retries 2, waits 10+20.
	link := &scriptLink{script: []Outcome{{Err: ErrDropped}, {Err: ErrDropped}}}
	ctx := exec.NewContext()
	ctx.Net = NewTransport(link, RetryPolicy{MaxAttempts: 4, BackoffMs: 10})
	if err := Send(ctx, 3, 8); err != nil {
		t.Fatalf("send should recover: %v", err)
	}
	want := cost.Counter{NetMsgs: 3, NetBytes: 24, Retries: 2, WaitMs: 30}
	if *ctx.Counter != want {
		t.Fatalf("charged %s, want %s", ctx.Counter, want.String())
	}
}

func TestTimeoutCountsAsFailedAttempt(t *testing.T) {
	// Latency above the deadline: the sender waits out the full timeout,
	// then retries; success adds the delivered attempt's latency.
	link := &scriptLink{script: []Outcome{{LatencyMs: 900}, {LatencyMs: 50}}}
	ctx := exec.NewContext()
	ctx.Net = NewTransport(link, RetryPolicy{MaxAttempts: 2, TimeoutMs: 400, BackoffMs: 10})
	if err := Send(ctx, 1, 0); err != nil {
		t.Fatalf("send should recover: %v", err)
	}
	want := cost.Counter{NetMsgs: 2, Retries: 1, WaitMs: 400 + 10 + 50}
	if *ctx.Counter != want {
		t.Fatalf("charged %s, want %s", ctx.Counter, want.String())
	}
}

func TestExhaustedRetriesReturnSiteError(t *testing.T) {
	link := &scriptLink{script: []Outcome{
		{Err: ErrDropped}, {Err: ErrSiteDown}, {Err: ErrDropped},
	}}
	ctx := exec.NewContext()
	ctx.Net = NewTransport(link, RetryPolicy{MaxAttempts: 3, BackoffMs: 1})
	err := Send(ctx, 7, 16)
	var se *SiteError
	if !errors.As(err, &se) {
		t.Fatalf("want *SiteError, got %v", err)
	}
	if se.Site != 7 || se.Attempts != 3 {
		t.Fatalf("SiteError = site %d after %d attempts, want site 7 after 3", se.Site, se.Attempts)
	}
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("SiteError should unwrap to the last fault, got cause %v", se.Cause)
	}
	// All three attempts are on the bill even though none delivered.
	if ctx.Counter.NetMsgs != 3 || ctx.Counter.Retries != 2 {
		t.Fatalf("charged %s, want 3 msgs / 2 retries", ctx.Counter)
	}
}

func TestForceAfterBoundsConsecutiveFailures(t *testing.T) {
	// A link that always fails, but ForceAfter=2 guarantees delivery on
	// the third attempt — the eventual-delivery cap the fuzz relies on.
	link := &scriptLink{script: []Outcome{
		{Err: ErrDropped}, {Err: ErrDropped}, {Err: ErrDropped}, {Err: ErrDropped},
	}}
	ctx := exec.NewContext()
	n := NewTransport(link, RetryPolicy{MaxAttempts: 4, BackoffMs: 1})
	n.ForceAfter = 2
	ctx.Net = n
	if err := Send(ctx, 1, 0); err != nil {
		t.Fatalf("forced delivery should recover: %v", err)
	}
	if ctx.Counter.NetMsgs != 3 {
		t.Fatalf("want forced success on attempt 3, charged %s", ctx.Counter)
	}
	if link.n != 2 {
		t.Fatalf("forced attempt should bypass the link; link saw %d attempts", link.n)
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, DropRate: 0.3, MaxLatencyMs: 50, OutageEvery: 7, OutageLen: 2}
	run := func() (cost.Counter, []bool) {
		ctx := exec.NewContext()
		ctx.Net = NewChaosTransport(cfg, RetryPolicy{MaxAttempts: 4, TimeoutMs: 40, BackoffMs: 5})
		var oks []bool
		for i := 0; i < 200; i++ {
			err := Send(ctx, 1+i%3, int64(i%17))
			oks = append(oks, err == nil)
			if err != nil {
				t.Fatalf("default chaos transport must deliver eventually; send %d: %v", i, err)
			}
		}
		return *ctx.Counter, oks
	}
	c1, ok1 := run()
	c2, ok2 := run()
	if c1 != c2 {
		t.Fatalf("same seed produced different charges:\n%s\n%s", c1.String(), c2.String())
	}
	for i := range ok1 {
		if ok1[i] != ok2[i] {
			t.Fatalf("same seed produced different outcome at send %d", i)
		}
	}
	if c1.Retries == 0 || c1.WaitMs == 0 {
		t.Fatalf("chaos schedule injected no faults at all: %s", c1.String())
	}

	other := cfg
	other.Seed = 43
	ctx := exec.NewContext()
	ctx.Net = NewChaosTransport(other, RetryPolicy{MaxAttempts: 4, TimeoutMs: 40, BackoffMs: 5})
	for i := 0; i < 200; i++ {
		if err := Send(ctx, 1+i%3, int64(i%17)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if *ctx.Counter == c1 {
		t.Fatalf("different seeds produced identical schedules: %s", c1.String())
	}
}

func TestChaosOutageWindows(t *testing.T) {
	// Pure outage schedule (no drops, no latency): per site, attempts
	// 0..4 deliver, 5..6 are refused. One message during the window
	// needs exactly 3 attempts (two ErrSiteDown, then the window ends).
	l := NewChaosLink(ChaosConfig{OutageEvery: 5, OutageLen: 2})
	for i := 0; i < 5; i++ {
		if out := l.Attempt(1, 0); out.Err != nil {
			t.Fatalf("attempt %d should deliver: %v", i, out.Err)
		}
	}
	for i := 5; i < 7; i++ {
		if out := l.Attempt(1, 0); !errors.Is(out.Err, ErrSiteDown) {
			t.Fatalf("attempt %d should hit the outage window, got %v", i, out.Err)
		}
	}
	if out := l.Attempt(1, 0); out.Err != nil {
		t.Fatalf("window over, attempt should deliver: %v", out.Err)
	}
	// Sites have independent ordinals: site 2 is unaffected.
	if out := l.Attempt(2, 0); out.Err != nil {
		t.Fatalf("site 2 first attempt should deliver: %v", out.Err)
	}
}

func TestSendCancellation(t *testing.T) {
	stdctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, withNet := range []bool{false, true} {
		ctx := exec.NewContext()
		ctx.Caller = stdctx
		if withNet {
			ctx.Net = NewTransport(FreeLink{}, RetryPolicy{})
		}
		err := Send(ctx, 1, 8)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("withNet=%v: want context.Canceled, got %v", withNet, err)
		}
		if !ctx.Counter.IsZero() {
			t.Fatalf("withNet=%v: cancelled send must charge nothing, charged %s", withNet, ctx.Counter)
		}
	}
}
