// Transport layer: every network crossing in this package — Ship's
// stream-open message, FetchMatchesJoin's per-outer-row round trip, the
// semi-join keyset shipments in core — routes through Send, which either
// charges the free instant network (the pre-chaos behavior, bit-for-bit)
// or drives a Link under a retry/timeout/backoff policy.
//
// The layering (DESIGN.md §10):
//
//	Send(ctx, site, bytes)        package-level entry; free path when ctx.Net == nil
//	  └─ Net.Send                 policy: per-attempt charge, timeout, retry, backoff
//	       └─ Link.Attempt        one raw delivery attempt (FreeLink or ChaosLink)
//
// Everything is simulated time: injected latency, timeouts, and backoff
// waits charge cost.Counter.WaitMs instead of sleeping, so chaos runs
// are exactly as fast and exactly as deterministic as fault-free ones.
package dist

import (
	"errors"
	"fmt"
	"sync"

	"filterjoin/internal/exec"
)

// Sentinel faults a Link can inject. They are transient by construction:
// a later attempt to the same site may succeed.
var (
	// ErrDropped marks a message lost in transit.
	ErrDropped = errors.New("dist: message dropped")
	// ErrSiteDown marks a transient site outage refusing the message.
	ErrSiteDown = errors.New("dist: site down")
	// ErrTimeout marks an attempt whose delivery latency exceeded the
	// policy's per-attempt deadline; produced by Net, never by a Link.
	ErrTimeout = errors.New("dist: send timed out")
)

// SiteError is the typed failure a remote operator surfaces when the
// transport exhausts its retry budget against one site. The facade
// recognizes it (errors.As) and degrades to the plan's fault-free
// fallback instead of failing the query.
type SiteError struct {
	Site     int   // the unreachable site
	Attempts int   // delivery attempts made, including the first
	Cause    error // the last attempt's fault
}

// Error implements error.
func (e *SiteError) Error() string {
	return fmt.Sprintf("dist: site %d unreachable after %d attempts: %v", e.Site, e.Attempts, e.Cause)
}

// Unwrap exposes the last fault for errors.Is chains.
func (e *SiteError) Unwrap() error { return e.Cause }

// Outcome is the result of one raw delivery attempt.
type Outcome struct {
	LatencyMs int64 // simulated delivery latency
	Err       error // nil on delivery; ErrDropped / ErrSiteDown on a fault
}

// Link models the raw wire: one delivery attempt per call, no policy.
type Link interface {
	Attempt(site int, bytes int64) Outcome
}

// FreeLink is the instant, lossless wire: every attempt delivers with
// zero latency. Net over a FreeLink behaves exactly like the nil-Net
// free path (one attempt, no retries, no waits).
type FreeLink struct{}

// Attempt implements Link.
func (FreeLink) Attempt(int, int64) Outcome { return Outcome{} }

// ChaosConfig parameterizes the deterministic fault schedule. The
// schedule is a pure function of (Seed, site, per-site message ordinal):
// the same seed against the same sequence of sends reproduces the exact
// same drops, outages, and latencies, which is what makes chaos runs
// diffable against fault-free ones.
type ChaosConfig struct {
	// Seed selects the schedule. Different seeds give independent fault
	// patterns; the zero seed is as valid as any other.
	Seed int64
	// DropRate is the probability in [0,1] that an attempt is lost in
	// transit (ErrDropped).
	DropRate float64
	// MaxLatencyMs, when > 0, injects a per-attempt delivery latency
	// uniform in [0, MaxLatencyMs]. Latencies above the retry policy's
	// TimeoutMs surface as ErrTimeout.
	MaxLatencyMs int64
	// OutageEvery, when > 0, opens a transient outage window at every
	// site: after each OutageEvery delivered-or-dropped attempts, the
	// next OutageLen attempts are refused with ErrSiteDown.
	OutageEvery int
	// OutageLen is the outage window length in attempts (default 1 when
	// OutageEvery > 0).
	OutageLen int
	// NoEventualDelivery disables the transport's consecutive-failure
	// cap (Net.ForceAfter): a site may then fail more attempts in a row
	// than the whole retry budget, making *SiteError — and the
	// executor's graceful degradation — reachable. The default (false)
	// guarantees every message is eventually delivered, which keeps
	// chaos results row-identical to fault-free runs.
	NoEventualDelivery bool
}

// ChaosLink injects faults from the seeded schedule. Safe for concurrent
// use; in practice all transport traffic happens on the query's main
// goroutine (exchange operators drain children in the calling context),
// so the per-site ordinals — and therefore the schedule — are
// deterministic even at DegreeOfParallelism > 1.
type ChaosLink struct {
	cfg ChaosConfig
	mu  sync.Mutex
	seq map[int]int64 // per-site attempt ordinal
}

// NewChaosLink builds a link over the seeded fault schedule.
func NewChaosLink(cfg ChaosConfig) *ChaosLink {
	if cfg.OutageEvery > 0 && cfg.OutageLen <= 0 {
		cfg.OutageLen = 1
	}
	return &ChaosLink{cfg: cfg, seq: map[int]int64{}}
}

// Attempt implements Link.
func (l *ChaosLink) Attempt(site int, bytes int64) Outcome {
	l.mu.Lock()
	n := l.seq[site]
	l.seq[site] = n + 1
	l.mu.Unlock()

	if l.cfg.OutageEvery > 0 {
		period := int64(l.cfg.OutageEvery + l.cfg.OutageLen)
		if n%period >= int64(l.cfg.OutageEvery) {
			return Outcome{Err: ErrSiteDown}
		}
	}
	h := chaosHash(l.cfg.Seed, int64(site), n)
	if l.cfg.DropRate > 0 && unit(h) < l.cfg.DropRate {
		return Outcome{Err: ErrDropped}
	}
	var lat int64
	if l.cfg.MaxLatencyMs > 0 {
		lat = int64(unit(h>>21) * float64(l.cfg.MaxLatencyMs+1))
	}
	return Outcome{LatencyMs: lat}
}

// chaosHash mixes the schedule coordinates with a splitmix64-style
// finalizer; the low bits of the result are uniform enough for the
// drop/latency draws.
func chaosHash(seed, site, seq int64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(site)*0xbf58476d1ce4e5b9 ^ uint64(seq)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// RetryPolicy is the delivery policy Net applies per message. Zero
// fields take the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total delivery attempts per message, including
	// the first (default 4). When every attempt faults, Send returns a
	// *SiteError.
	MaxAttempts int
	// TimeoutMs is the per-attempt delivery deadline on injected latency
	// (default 400). An attempt slower than this counts as failed after
	// waiting out the full deadline.
	TimeoutMs int64
	// BackoffMs is the wait before the first retry (default 10); it
	// doubles on every subsequent retry of the same message.
	BackoffMs int64
}

// Defaults the zero fields of p take.
const (
	DefaultMaxAttempts = 4
	DefaultTimeoutMs   = 400
	DefaultBackoffMs   = 10
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.TimeoutMs <= 0 {
		p.TimeoutMs = DefaultTimeoutMs
	}
	if p.BackoffMs <= 0 {
		p.BackoffMs = DefaultBackoffMs
	}
	return p
}

// Net drives messages across a Link under a RetryPolicy; it implements
// exec.Transport. Every attempt — successful or not — charges one
// NetMsg plus the message bytes, waits charge WaitMs, and each attempt
// beyond the first charges one Retry, so EXPLAIN ANALYZE renders the
// full price of a faulty run and the conservation property test holds
// on chaos executions too.
type Net struct {
	Link   Link
	Policy RetryPolicy

	// ForceAfter caps consecutive failed attempts per site: once a site
	// has failed ForceAfter attempts in a row, the next attempt bypasses
	// the Link and delivers cleanly (the transient fault "passed").
	// 0 disables the cap. NewChaosTransport defaults it to
	// MaxAttempts-1 so the differential fuzz always recovers; degrade
	// tests disable it to force SiteError.
	ForceAfter int

	mu     sync.Mutex
	consec map[int]int // per-site consecutive-failure run length
}

// NewTransport wraps link in the retry policy.
func NewTransport(link Link, p RetryPolicy) *Net {
	return &Net{Link: link, Policy: p, consec: map[int]int{}}
}

// NewChaosTransport builds the seeded fault-injecting transport with the
// eventual-delivery cap on: consecutive per-site failures are bounded
// one below the retry budget, so every message is delivered and chaos
// runs return exactly the fault-free rows (at a higher measured cost).
func NewChaosTransport(cfg ChaosConfig, p RetryPolicy) *Net {
	n := NewTransport(NewChaosLink(cfg), p)
	if !cfg.NoEventualDelivery {
		n.ForceAfter = p.withDefaults().MaxAttempts - 1
	}
	return n
}

func (n *Net) failRun(site int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.consec[site]
}

func (n *Net) note(site int, failed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if failed {
		n.consec[site]++
	} else {
		n.consec[site] = 0
	}
}

// Send implements exec.Transport: the retry/timeout/backoff state
// machine of DESIGN.md §10.
func (n *Net) Send(ctx *exec.Context, site int, bytes int64) error {
	p := n.Policy.withDefaults()
	backoff := p.BackoffMs
	var cause error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ctx.Counter.NetMsgs++
		ctx.Counter.NetBytes += bytes
		var out Outcome
		if n.ForceAfter > 0 && n.failRun(site) >= n.ForceAfter {
			// Transient fault window exhausted: clean delivery.
			out = Outcome{}
		} else {
			out = n.Link.Attempt(site, bytes)
			if out.Err == nil && out.LatencyMs > p.TimeoutMs {
				// The sender waits out the full deadline before giving up.
				out = Outcome{LatencyMs: p.TimeoutMs, Err: ErrTimeout}
			}
		}
		ctx.Counter.WaitMs += out.LatencyMs
		n.note(site, out.Err != nil)
		if out.Err == nil {
			return nil
		}
		cause = out.Err
		if attempt >= p.MaxAttempts {
			return &SiteError{Site: site, Attempts: attempt, Cause: cause}
		}
		ctx.Counter.Retries++
		ctx.Counter.WaitMs += backoff
		backoff *= 2
	}
}

// Send routes one message crossing to site through the context's
// transport. The nil-transport path is the free instant network: charge
// the message and its bytes, deliver. Callers must propagate a non-nil
// error — it is either the caller context's cancellation or a
// *SiteError the facade needs intact to degrade (optlint: sitefault).
func Send(ctx *exec.Context, site int, bytes int64) error {
	if ctx.Net == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		ctx.Counter.NetMsgs++
		ctx.Counter.NetBytes += bytes
		return nil
	}
	return ctx.Net.Send(ctx, site, bytes)
}
