// Package dist is the distributed-database substrate: operators that
// model data crossing the network between sites. There is no real
// network — rows live in local memory — but every crossing charges
// NetBytes and NetMsgs against the cost counter, which is all the
// semi-join vs fetch-matches vs ship-whole tradeoff (paper §5.1, SDD-1
// vs System R*) depends on.
package dist

import (
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Ship moves its child's entire output stream across the network: one
// message per Open plus rowBytes per row. It models both "ship the whole
// inner to the query site" and "ship the filtered inner back" legs.
type Ship struct {
	Child    Operator
	RowBytes int
}

// Operator aliases exec.Operator for readability within this package.
type Operator = exec.Operator

// NewShip wraps child in a network shipment of rowBytes per row.
func NewShip(child Operator, rowBytes int) *Ship {
	return &Ship{Child: child, RowBytes: rowBytes}
}

// Schema implements exec.Operator.
func (s *Ship) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements exec.Operator.
func (s *Ship) Open(ctx *exec.Context) error {
	ctx.Counter.NetMsgs++
	return s.Child.Open(ctx)
}

// Next implements exec.Operator.
func (s *Ship) Next(ctx *exec.Context) (value.Row, bool, error) {
	r, ok, err := s.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Counter.NetBytes += int64(s.RowBytes)
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// Close implements exec.Operator.
func (s *Ship) Close(ctx *exec.Context) error { return s.Child.Close(ctx) }

// FetchMatchesJoin is the System R* "fetch matches as needed" strategy:
// for every outer row, send the join key to the remote site (one message
// plus key bytes), probe an index there (remote page reads), and ship
// the matching rows back (row bytes). The inner table must have a hash
// index on the join key.
type FetchMatchesJoin struct {
	Outer       Operator
	Table       *storage.Table
	Index       *storage.HashIndex
	OuterKeyIdx []int
	Residual    expr.Expr // bound against Outer.Schema()‖inner schema
	InnerAlias  string

	innerSch *schema.Schema
	out      *schema.Schema
	keyBytes int
	rowBytes int
	cur      value.Row
	ids      []int
	pos      int
	done     bool
}

// NewFetchMatchesJoin builds the remote repeated-probe join.
func NewFetchMatchesJoin(outer Operator, t *storage.Table, ix *storage.HashIndex, outerKeyIdx []int, residual expr.Expr, innerAlias string) *FetchMatchesJoin {
	is := t.Schema()
	if innerAlias != "" {
		is = is.Rename(innerAlias)
	}
	keyBytes := 0
	for _, c := range ix.Cols() {
		keyBytes += t.Schema().Col(c).Type.Width()
	}
	return &FetchMatchesJoin{
		Outer:       outer,
		Table:       t,
		Index:       ix,
		OuterKeyIdx: outerKeyIdx,
		Residual:    residual,
		InnerAlias:  innerAlias,
		innerSch:    is,
		out:         outer.Schema().Concat(is),
		keyBytes:    keyBytes,
		rowBytes:    t.Schema().RowWidth(),
	}
}

// Schema implements exec.Operator.
func (j *FetchMatchesJoin) Schema() *schema.Schema { return j.out }

// Open implements exec.Operator.
func (j *FetchMatchesJoin) Open(ctx *exec.Context) error {
	j.cur = nil
	j.ids = nil
	j.pos = 0
	j.done = false
	return j.Outer.Open(ctx)
}

// Next implements exec.Operator.
func (j *FetchMatchesJoin) Next(ctx *exec.Context) (value.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	for {
		if j.cur == nil {
			r, ok, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = r
			// One round trip: key goes out, matches come back.
			ctx.Counter.NetMsgs++
			ctx.Counter.NetBytes += int64(j.keyBytes)
			ctx.Counter.PageReads++ // remote index probe
			j.ids = j.Index.LookupRow(r, j.OuterKeyIdx)
			ctx.Counter.PageReads += int64(storage.ProbePages(j.ids, j.Table.RowsPerPage()))
			ctx.Counter.NetBytes += int64(len(j.ids) * j.rowBytes)
			j.pos = 0
		}
		if j.pos >= len(j.ids) {
			j.cur = nil
			continue
		}
		inner := j.Table.Row(j.ids[j.pos])
		j.pos++
		ctx.Counter.CPUTuples++
		joined := j.cur.Concat(inner)
		if j.Residual != nil {
			keep, err := expr.EvalBool(j.Residual, joined)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements exec.Operator.
func (j *FetchMatchesJoin) Close(ctx *exec.Context) error { return j.Outer.Close(ctx) }
