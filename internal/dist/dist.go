// Package dist is the distributed-database substrate: operators that
// model data crossing the network between sites. There is no real
// network — rows live in local memory — but every crossing charges
// NetBytes and NetMsgs against the cost counter, which is all the
// semi-join vs fetch-matches vs ship-whole tradeoff (paper §5.1, SDD-1
// vs System R*) depends on.
//
// The operators here stay deliberately row-at-a-time (no NextBatch):
// FetchMatchesJoin issues one transport Send per outer row from inside
// Next, so its per-row granularity IS the fault schedule a chaos
// transport walks. Because these row-only operators pull their subtrees
// via Next under both engines, the global send sequence — and with it
// the injected drops, latencies, and outages — replays identically
// whether the surrounding plan runs batched or not (exec/batch.go).
package dist

import (
	"errors"

	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// Ship moves its child's entire output stream across the network: one
// message per Open plus rowBytes per row. It models both "ship the whole
// inner to the query site" and "ship the filtered inner back" legs.
type Ship struct {
	Child    Operator
	RowBytes int
	Site     int // the remote site the stream crosses from
}

// Operator aliases exec.Operator for readability within this package.
type Operator = exec.Operator

// NewShip wraps child in a network shipment of rowBytes per row from
// the given site.
func NewShip(child Operator, rowBytes, site int) *Ship {
	return &Ship{Child: child, RowBytes: rowBytes, Site: site}
}

// Schema implements exec.Operator.
func (s *Ship) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements exec.Operator.
//
// The stream-open message is charged only after the child opens: a
// failed child open consumed no network, and charging first would leave
// a phantom NetMsg that breaks cost conservation on error paths. When
// the message itself fails (chaos transport out of retries), the child
// is closed again before the error propagates, because callers do not
// Close an operator whose Open failed.
func (s *Ship) Open(ctx *exec.Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	if err := Send(ctx, s.Site, 0); err != nil {
		return errors.Join(err, s.Child.Close(ctx))
	}
	return nil
}

// Next implements exec.Operator.
func (s *Ship) Next(ctx *exec.Context) (value.Row, bool, error) {
	r, ok, err := s.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Counter.NetBytes += int64(s.RowBytes)
	ctx.Counter.CPUTuples++
	return r, true, nil
}

// Close implements exec.Operator.
func (s *Ship) Close(ctx *exec.Context) error { return s.Child.Close(ctx) }

// FetchMatchesJoin is the System R* "fetch matches as needed" strategy:
// for every outer row, send the join key to the remote site (one message
// plus key bytes), probe an index there (remote page reads), and ship
// the matching rows back (row bytes). The inner table must have a hash
// index on the join key.
type FetchMatchesJoin struct {
	Outer       Operator
	Table       *storage.Table
	Index       *storage.HashIndex
	OuterKeyIdx []int
	Residual    expr.Expr // bound against Outer.Schema()‖inner schema
	InnerAlias  string
	Site        int // the remote site holding Table

	innerSch *schema.Schema
	out      *schema.Schema
	keyBytes int
	rowBytes int
	cur      value.Row
	ids      []int
	pos      int
	done     bool
}

// NewFetchMatchesJoin builds the remote repeated-probe join against the
// table at the given site.
func NewFetchMatchesJoin(outer Operator, t *storage.Table, ix *storage.HashIndex, outerKeyIdx []int, residual expr.Expr, innerAlias string, site int) *FetchMatchesJoin {
	is := t.Schema()
	if innerAlias != "" {
		is = is.Rename(innerAlias)
	}
	keyBytes := 0
	for _, c := range ix.Cols() {
		keyBytes += t.Schema().Col(c).Type.Width()
	}
	return &FetchMatchesJoin{
		Outer:       outer,
		Table:       t,
		Index:       ix,
		OuterKeyIdx: outerKeyIdx,
		Residual:    residual,
		InnerAlias:  innerAlias,
		Site:        site,
		innerSch:    is,
		out:         outer.Schema().Concat(is),
		keyBytes:    keyBytes,
		rowBytes:    t.Schema().RowWidth(),
	}
}

// Schema implements exec.Operator.
func (j *FetchMatchesJoin) Schema() *schema.Schema { return j.out }

// Open implements exec.Operator.
func (j *FetchMatchesJoin) Open(ctx *exec.Context) error {
	j.Residual = expr.BindParams(j.Residual, ctx.Params)
	j.cur = nil
	j.ids = nil
	j.pos = 0
	j.done = false
	return j.Outer.Open(ctx)
}

// Next implements exec.Operator.
func (j *FetchMatchesJoin) Next(ctx *exec.Context) (value.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	for {
		if j.cur == nil {
			r, ok, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = r
			// One round trip: key goes out, matches come back. The key
			// message is the fallible crossing; the response charges
			// below once the probe resolves.
			if err := Send(ctx, j.Site, int64(j.keyBytes)); err != nil {
				return nil, false, err
			}
			ctx.Counter.PageReads++ // remote index probe
			j.ids = j.Index.LookupRow(r, j.OuterKeyIdx)
			ctx.Counter.PageReads += int64(storage.ProbePages(j.ids, j.Table.RowsPerPage()))
			ctx.Counter.NetBytes += int64(len(j.ids) * j.rowBytes)
			j.pos = 0
		}
		if j.pos >= len(j.ids) {
			j.cur = nil
			continue
		}
		inner := j.Table.Row(j.ids[j.pos])
		j.pos++
		ctx.Counter.CPUTuples++
		joined := j.cur.Concat(inner)
		if j.Residual != nil {
			keep, err := expr.EvalBool(j.Residual, joined)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements exec.Operator. It clears the match cursor so a
// Close→reOpen cycle — e.g. after a mid-stream residual-eval error —
// cannot replay stale match state from the aborted run; Open performs
// the same reset, but an operator must also be safe to inspect or
// re-wrap between Close and the next Open.
func (j *FetchMatchesJoin) Close(ctx *exec.Context) error {
	j.cur = nil
	j.ids = nil
	j.pos = 0
	j.done = false
	return j.Outer.Close(ctx)
}
