package dist

import (
	"sort"
	"testing"

	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func table(t testing.TB, name string, rows [][]int64) *storage.Table {
	t.Helper()
	s := schema.New(
		schema.Column{Table: name, Name: "k", Type: value.KindInt},
		schema.Column{Table: name, Name: "v", Type: value.KindInt},
	)
	tb := storage.NewTable(name, s)
	for _, r := range rows {
		tb.MustInsert(value.NewInt(r[0]), value.NewInt(r[1]))
	}
	return tb
}

func TestShipCharges(t *testing.T) {
	tb := table(t, "r", [][]int64{{1, 1}, {2, 2}, {3, 3}})
	ship := NewShip(exec.NewTableScan(tb, ""), 16)
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, ship)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if ctx.Counter.NetMsgs != 1 {
		t.Errorf("NetMsgs = %d, want 1 per Open", ctx.Counter.NetMsgs)
	}
	if ctx.Counter.NetBytes != 3*16 {
		t.Errorf("NetBytes = %d, want 48", ctx.Counter.NetBytes)
	}
	// A second execution charges a second message.
	if _, err := exec.Drain(ctx, ship); err != nil {
		t.Fatal(err)
	}
	if ctx.Counter.NetMsgs != 2 {
		t.Error("each Open is a shipment")
	}
}

func TestFetchMatchesJoinResults(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}, {2, 0}, {9, 0}})
	inner := table(t, "i", [][]int64{{1, 10}, {1, 11}, {2, 20}, {3, 30}})
	ix, err := inner.CreateIndex("ik", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(rows))
	for i, r := range rows {
		got[i] = r.String()
	}
	sort.Strings(got)
	want := []string{"(1, 0, 1, 10)", "(1, 0, 1, 11)", "(2, 0, 2, 20)"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %s, want %s", i, got[i], want[i])
		}
	}
	// One message and key shipment per outer row.
	if ctx.Counter.NetMsgs != 3 {
		t.Errorf("NetMsgs = %d, want 3", ctx.Counter.NetMsgs)
	}
	if ctx.Counter.NetBytes == 0 {
		t.Error("keys and matches must cost bytes")
	}
	if j.Schema().Len() != 4 {
		t.Errorf("output schema width = %d", j.Schema().Len())
	}
}

func TestFetchMatchesResidual(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 15}})
	inner := table(t, "i", [][]int64{{1, 10}, {1, 20}})
	ix, _ := inner.CreateIndex("ik", []int{0})
	// o.v < i.v over (o.k o.v i.k i.v).
	res := expr.NewCmp(expr.LT, expr.NewCol(1, "o.v"), expr.NewCol(3, "i.v"))
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, res, "i")
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][3].Int() != 20 {
		t.Errorf("residual filtering wrong: %v", rows)
	}
}

func TestFetchMatchesRestartable(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}})
	inner := table(t, "i", [][]int64{{1, 10}})
	ix, _ := inner.CreateIndex("ik", []int{0})
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i")
	ctx := exec.NewContext()
	r1, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 || len(r2) != 1 {
		t.Error("join must be restartable")
	}
}
