package dist

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

func table(t testing.TB, name string, rows [][]int64) *storage.Table {
	t.Helper()
	s := schema.New(
		schema.Column{Table: name, Name: "k", Type: value.KindInt},
		schema.Column{Table: name, Name: "v", Type: value.KindInt},
	)
	tb := storage.NewTable(name, s)
	for _, r := range rows {
		tb.MustInsert(value.NewInt(r[0]), value.NewInt(r[1]))
	}
	return tb
}

func TestShipCharges(t *testing.T) {
	tb := table(t, "r", [][]int64{{1, 1}, {2, 2}, {3, 3}})
	ship := NewShip(exec.NewTableScan(tb, ""), 16, 1)
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, ship)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if ctx.Counter.NetMsgs != 1 {
		t.Errorf("NetMsgs = %d, want 1 per Open", ctx.Counter.NetMsgs)
	}
	if ctx.Counter.NetBytes != 3*16 {
		t.Errorf("NetBytes = %d, want 48", ctx.Counter.NetBytes)
	}
	// A second execution charges a second message.
	if _, err := exec.Drain(ctx, ship); err != nil {
		t.Fatal(err)
	}
	if ctx.Counter.NetMsgs != 2 {
		t.Error("each Open is a shipment")
	}
}

func TestFetchMatchesJoinResults(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}, {2, 0}, {9, 0}})
	inner := table(t, "i", [][]int64{{1, 10}, {1, 11}, {2, 20}, {3, 30}})
	ix, err := inner.CreateIndex("ik", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i", 1)
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(rows))
	for i, r := range rows {
		got[i] = r.String()
	}
	sort.Strings(got)
	want := []string{"(1, 0, 1, 10)", "(1, 0, 1, 11)", "(2, 0, 2, 20)"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %s, want %s", i, got[i], want[i])
		}
	}
	// One message and key shipment per outer row.
	if ctx.Counter.NetMsgs != 3 {
		t.Errorf("NetMsgs = %d, want 3", ctx.Counter.NetMsgs)
	}
	if ctx.Counter.NetBytes == 0 {
		t.Error("keys and matches must cost bytes")
	}
	if j.Schema().Len() != 4 {
		t.Errorf("output schema width = %d", j.Schema().Len())
	}
}

func TestFetchMatchesResidual(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 15}})
	inner := table(t, "i", [][]int64{{1, 10}, {1, 20}})
	ix, _ := inner.CreateIndex("ik", []int{0})
	// o.v < i.v over (o.k o.v i.k i.v).
	res := expr.NewCmp(expr.LT, expr.NewCol(1, "o.v"), expr.NewCol(3, "i.v"))
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, res, "i", 1)
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][3].Int() != 20 {
		t.Errorf("residual filtering wrong: %v", rows)
	}
}

func TestFetchMatchesRestartable(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}})
	inner := table(t, "i", [][]int64{{1, 10}})
	ix, _ := inner.CreateIndex("ik", []int{0})
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i", 1)
	ctx := exec.NewContext()
	r1, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exec.Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 || len(r2) != 1 {
		t.Error("join must be restartable")
	}
}

// errOpenOp fails at Open without consuming anything; its schema is
// borrowed from a real operator.
type errOpenOp struct{ exec.Operator }

func (e errOpenOp) Open(*exec.Context) error { return errFail }

var errFail = fmt.Errorf("child open failed")

// Regression (ISSUE 5 satellite 1): Ship used to charge its stream-open
// NetMsg before opening the child, so a failed child open left a
// phantom message in the counter and broke cost conservation on error
// paths. The message must be charged only after the child opens.
func TestShipFailedChildOpenChargesNothing(t *testing.T) {
	tb := table(t, "r", [][]int64{{1, 1}})
	ship := NewShip(errOpenOp{exec.NewTableScan(tb, "")}, 16, 1)
	ctx := exec.NewContext()
	if err := ship.Open(ctx); !errors.Is(err, errFail) {
		t.Fatalf("Open = %v, want child failure", err)
	}
	if !ctx.Counter.IsZero() {
		t.Fatalf("failed child open must charge nothing, charged %s", ctx.Counter)
	}
	// The operator is still usable once the child recovers.
	ok := NewShip(exec.NewTableScan(tb, ""), 16, 1)
	rows, err := exec.Drain(ctx, ok)
	if err != nil || len(rows) != 1 {
		t.Fatalf("recovered run: rows=%d err=%v", len(rows), err)
	}
	if ctx.Counter.NetMsgs != 1 {
		t.Fatalf("NetMsgs = %d, want exactly the successful shipment", ctx.Counter.NetMsgs)
	}
}

// Ship self-closes its already-opened child when the stream-open
// message itself dies (chaos transport out of retries), because callers
// never Close an operator whose Open failed.
func TestShipSendFailureClosesChild(t *testing.T) {
	tb := table(t, "r", [][]int64{{1, 1}})
	ship := NewShip(exec.NewTableScan(tb, ""), 16, 1)
	ctx := exec.NewContext()
	n := NewTransport(&scriptLink{script: []Outcome{
		{Err: ErrSiteDown}, {Err: ErrSiteDown},
	}}, RetryPolicy{MaxAttempts: 2, BackoffMs: 1})
	ctx.Net = n
	err := ship.Open(ctx)
	var se *SiteError
	if !errors.As(err, &se) {
		t.Fatalf("Open = %v, want *SiteError", err)
	}
	// The child was closed and the operator restarts cleanly once the
	// outage passes (script exhausted ⇒ link delivers).
	rows, err := exec.Drain(ctx, ship)
	if err != nil || len(rows) != 1 {
		t.Fatalf("after outage: rows=%d err=%v", len(rows), err)
	}
}

// Regression (ISSUE 5 satellite 2): Close used to leave cur/ids/done
// from an aborted run, so a Close→reOpen cycle after a mid-stream
// residual-eval error could replay stale match state. A residual that
// errors on one specific inner row aborts the first run mid-match-list;
// the reopened run with a fixed residual must produce exactly the full
// result, with no rows replayed from the stale cursor.
func TestFetchMatchesReopenAfterResidualError(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}, {2, 0}})
	inner := table(t, "i", [][]int64{{1, 10}, {1, 20}, {1, 30}, {2, 40}})
	ix, err := inner.CreateIndex("ik", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// 1/(i.v-20) errors (integer division by zero) exactly at i.v=20,
	// after the i.v=10 match was already emitted.
	bad := expr.NewCmp(expr.LT, expr.Int(-100), expr.Arith{
		Op: expr.Div,
		L:  expr.Int(1),
		R:  expr.Arith{Op: expr.Sub, L: expr.NewCol(3, "i.v"), R: expr.Int(20)},
	})
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, bad, "i", 1)
	ctx := exec.NewContext()
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := j.Next(ctx); err != nil || !ok {
		t.Fatalf("first match should emit: ok=%v err=%v", ok, err)
	}
	if _, _, err := j.Next(ctx); err == nil {
		t.Fatal("second match should fail residual eval")
	}
	if err := j.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Rerun without the poisoned residual on the same operator value:
	// stale cur/ids/done must not leak into the new run.
	j.Residual = nil
	rows, err := exec.Drain(exec.NewContext(), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("reopened run produced %d rows, want 4 (stale match state replayed?)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		k := r.FullKey()
		if seen[k] {
			t.Fatalf("duplicate row %s after reopen", r)
		}
		seen[k] = true
	}
}

// Close must also reset the end-of-stream latch so inspect-then-reopen
// sequences see a fresh operator.
func TestFetchMatchesCloseResetsDone(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}})
	inner := table(t, "i", [][]int64{{1, 10}})
	ix, _ := inner.CreateIndex("ik", []int{0})
	j := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i", 1)
	ctx := exec.NewContext()
	if _, err := exec.Drain(ctx, j); err != nil {
		t.Fatal(err)
	}
	if j.done || j.cur != nil || j.ids != nil {
		t.Fatal("Close must clear cur/ids/done")
	}
}

// Both dist operators recover transparently from injected faults: same
// rows as the fault-free run, extra cost charged to Retries/WaitMs.
func TestDistOperatorsUnderChaos(t *testing.T) {
	outer := table(t, "o", [][]int64{{1, 0}, {2, 0}, {3, 0}, {9, 0}})
	inner := table(t, "i", [][]int64{{1, 10}, {2, 20}, {2, 21}, {3, 30}})
	ix, err := inner.CreateIndex("ik", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	mkPlan := func() Operator {
		fm := NewFetchMatchesJoin(exec.NewTableScan(outer, "o"), inner, ix, []int{0}, nil, "i", 2)
		return NewShip(fm, 32, 1)
	}
	canon := func(rows []value.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	freeCtx := exec.NewContext()
	freeRows, err := exec.Drain(freeCtx, mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChaosConfig{Seed: 7, DropRate: 0.4, MaxLatencyMs: 60, OutageEvery: 3, OutageLen: 1}
	pol := RetryPolicy{MaxAttempts: 5, TimeoutMs: 40, BackoffMs: 2}
	var prev cost.Counter
	for trial := 0; trial < 2; trial++ {
		ctx := exec.NewContext()
		ctx.Net = NewChaosTransport(cfg, pol)
		rows, err := exec.Drain(ctx, mkPlan())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := canon(rows), canon(freeRows); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("chaos rows %v differ from fault-free %v", got, want)
		}
		if ctx.Counter.Retries == 0 {
			t.Fatal("this schedule should force retries")
		}
		free := *freeCtx.Counter
		got := *ctx.Counter
		// Local work is untouched by faults; the network bill grows by
		// exactly one message (plus its payload bytes) per retry.
		if got.PageReads != free.PageReads || got.CPUTuples != free.CPUTuples || got.PageWrites != free.PageWrites {
			t.Fatalf("faults must not change local work: %s vs %s", got.String(), free.String())
		}
		if got.NetMsgs != free.NetMsgs+got.Retries {
			t.Fatalf("NetMsgs = %d, want fault-free %d + retries %d", got.NetMsgs, free.NetMsgs, got.Retries)
		}
		if got.NetBytes < free.NetBytes || got.WaitMs == 0 {
			t.Fatalf("retried attempts must recharge bytes and waits: %s vs %s", got.String(), free.String())
		}
		if trial == 1 && *ctx.Counter != prev {
			t.Fatalf("same seed, different totals: %s vs %s", ctx.Counter, prev.String())
		}
		prev = *ctx.Counter
	}
}
