package core_test

import (
	"math/rand"
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/opt"
)

// The batch sizes below cross 1024 (the production default) with 7 and
// 3 — adversarial odd sizes that force partial batches, mid-batch group
// boundaries, and refill paths a large power of two never exercises.

// engineConfigs is the kernels axis crossed with the batch axis: every
// differential below compares each (batch, kernels) combination against
// the interpreted row engine (batch=1, kernels off), so the compiled
// expression kernels and RowTable hash paths must reproduce the
// interpreter's rows, order, and counters bit for bit.
var engineConfigs = []struct {
	name    string
	batch   int
	kernels bool
}{
	{"batch=1/kernels", 1, true},
	{"batch=1024/interp", exec.DefaultBatchSize, false},
	{"batch=1024/kernels", exec.DefaultBatchSize, true},
	{"batch=7/interp", 7, false},
	{"batch=7/kernels", 7, true},
	{"batch=3/interp", 3, false},
	{"batch=3/kernels", 3, true},
}

// runPlanBatch executes the plan under the given executor batch size and
// kernel setting and returns the rows in emission order — unlike runPlan
// it does NOT sort, because the batch engine must preserve the row
// engine's exact output sequence, not just its multiset.
func runPlanBatch(t testing.TB, p interface{ Make() exec.Operator }, batch int, kernels bool) ([]string, cost.Counter) {
	t.Helper()
	ctx := exec.NewContext()
	ctx.BatchSize = batch
	ctx.Kernels = kernels
	rows, err := exec.Drain(ctx, p.Make())
	if err != nil {
		t.Fatalf("run (batch=%d kernels=%t): %v", batch, kernels, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out, *ctx.Counter
}

// TestBatchRowDifferentialFuzz is the acceptance criterion for the batch
// engine: for random queries under every optimizer configuration the row
// fuzz already covers, each batch size must reproduce the row engine's
// output row for row IN ORDER, with bit-identical counter totals. Any
// double-charge, dropped charge, overpull past a Limit, or reordering
// inside a batched operator shows up here as a diff against batch=1.
func TestBatchRowDifferentialFuzz(t *testing.T) {
	model := cost.DefaultModel()
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		cat, nTables := randCatalog(rng)
		q := randQuery(rng, nTables)

		configs := []struct {
			name     string
			fj       *core.Method
			disabled []string
		}{
			{"plain", nil, nil},
			{"fj-everything", core.NewMethod(core.Options{
				IncludeStored: true, AttrSubsets: true, Bloom: true,
				PrefixProductionSets: true,
			}), nil},
			{"fj-only-hash", core.NewMethod(core.Options{}), []string{"merge", "nlj", "indexnl"}},
		}
		for _, cfg := range configs {
			o := opt.New(cat, model)
			for _, d := range cfg.disabled {
				o.Disabled[d] = true
			}
			if cfg.fj != nil {
				o.Register(cfg.fj)
			}
			p, err := o.OptimizeBlock(q)
			if err != nil {
				t.Fatalf("trial %d (%s): optimize: %v\nquery: %s", trial, cfg.name, err, q)
			}
			wantRows, wantCost := runPlanBatch(t, planRunner{p.Make}, 1, false)
			for _, ec := range engineConfigs {
				gotRows, gotCost := runPlanBatch(t, planRunner{p.Make}, ec.batch, ec.kernels)
				if !equalStrings(gotRows, wantRows) {
					t.Fatalf("trial %d (%s) %s: rows/order differ from interpreted row engine (%d vs %d rows)\nquery: %s\ngot:  %v\nwant: %v",
						trial, cfg.name, ec.name, len(gotRows), len(wantRows), q, head(gotRows), head(wantRows))
				}
				if gotCost != wantCost {
					t.Fatalf("trial %d (%s) %s: counter totals differ from interpreted row engine:\ngot:  %s\nwant: %s\nquery: %s",
						trial, cfg.name, ec.name, gotCost.String(), wantCost.String(), q)
				}
			}
		}
	}
}

// runPlanChaosBatch is runPlanChaos under a chosen executor batch size,
// unsorted for the ordering assertion. Each run builds a fresh seeded
// transport, so identical send sequences see identical fault schedules.
func runPlanChaosBatch(t *testing.T, p interface{ Make() exec.Operator }, seed int64, batch int, kernels bool) ([]string, cost.Counter) {
	t.Helper()
	ctx := exec.NewContext()
	ctx.BatchSize = batch
	ctx.Kernels = kernels
	ctx.Net = dist.NewChaosTransport(
		dist.ChaosConfig{Seed: seed, DropRate: 0.6, MaxLatencyMs: 40, OutageEvery: 5, OutageLen: 2},
		dist.RetryPolicy{MaxAttempts: 5, TimeoutMs: 25, BackoffMs: 2},
	)
	rows, err := exec.Drain(ctx, p.Make())
	if err != nil {
		t.Fatalf("chaos run (seed %d, batch=%d) must recover every fault: %v", seed, batch, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out, *ctx.Counter
}

// TestBatchChaosDifferentialFuzz replays the frozen chaos schedules
// (seeds 5, 17, 23) against random distributed queries under both
// engines. Every transport Send is issued by a row-only operator that
// pulls its subtree via Next under either engine (see dist package doc),
// so the global send sequence — and with it the injected drops, waits,
// and outages — must land identically: same rows, same order, and
// counter totals equal bit for bit including Retries and WaitMs.
func TestBatchChaosDifferentialFuzz(t *testing.T) {
	base := cost.DefaultModel()
	netHeavy := base
	netHeavy.NetByte *= 5000

	trials := 8
	if testing.Short() {
		trials = 2
	}
	var totalRetries int64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 13))
		cat, nRemote := randDistCatalog(rng)
		q := randDistQuery(rng, nRemote)

		configs := []struct {
			name     string
			model    cost.Model
			fj       *core.Method
			disabled []string
		}{
			{"fj-everything", base, core.NewMethod(core.Options{
				IncludeStored: true, AttrSubsets: true, Bloom: true,
			}), nil},
			{"fetch-preferred", netHeavy, core.NewMethod(core.Options{}), nil},
		}
		for _, cfg := range configs {
			o := opt.New(cat, cfg.model)
			for _, d := range cfg.disabled {
				o.Disabled[d] = true
			}
			if cfg.fj != nil {
				o.Register(cfg.fj)
			}
			p, err := o.OptimizeBlock(q)
			if err != nil {
				t.Fatalf("trial %d (%s): optimize: %v\nquery: %s", trial, cfg.name, err, q)
			}
			for _, seed := range chaosFuzzSeeds {
				wantRows, wantCost := runPlanChaosBatch(t, planRunner{p.Make}, seed, 1, false)
				for _, ec := range []struct {
					name    string
					batch   int
					kernels bool
				}{
					{"batch=1/kernels", 1, true},
					{"batch=1024/interp", exec.DefaultBatchSize, false},
					{"batch=1024/kernels", exec.DefaultBatchSize, true},
				} {
					gotRows, gotCost := runPlanChaosBatch(t, planRunner{p.Make}, seed, ec.batch, ec.kernels)
					if !equalStrings(gotRows, wantRows) {
						t.Fatalf("trial %d (%s) seed %d %s: rows/order differ under chaos (%d vs %d rows)\nquery: %s",
							trial, cfg.name, seed, ec.name, len(gotRows), len(wantRows), q)
					}
					if gotCost != wantCost {
						t.Fatalf("trial %d (%s) seed %d %s: different fault bill:\ngot:  %s\nwant: %s",
							trial, cfg.name, seed, ec.name, gotCost.String(), wantCost.String())
					}
					totalRetries += gotCost.Retries
				}
			}
		}
	}
	if totalRetries == 0 {
		t.Fatalf("chaos schedules injected no faults; the differential proves nothing")
	}
}
