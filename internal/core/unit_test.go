package core

import (
	"math"
	"strings"
	"testing"

	"filterjoin/internal/cost"
)

func TestComponentsTotalSums(t *testing.T) {
	c := Components{
		JoinCostP:       cost.Estimate{PageReads: 1},
		ProductionCostP: cost.Estimate{PageWrites: 2},
		ProjCostF:       cost.Estimate{CPUTuples: 3},
		AvailCostF:      cost.Estimate{NetBytes: 4},
		FilterCostRk:    cost.Estimate{PageReads: 5},
		AvailCostRkP:    cost.Estimate{NetMsgs: 6},
		FinalJoinCost:   cost.Estimate{CPUTuples: 7},
	}
	tot := c.Total()
	if tot.PageReads != 6 || tot.PageWrites != 2 || tot.CPUTuples != 10 ||
		tot.NetBytes != 4 || tot.NetMsgs != 6 {
		t.Errorf("Total = %+v", tot)
	}
	if len(c.Names()) != 7 || len(c.Values()) != 7 {
		t.Error("seven components, Table 1")
	}
	// Names/Values alignment: the sum of Values equals Total.
	var sum cost.Estimate
	for _, v := range c.Values() {
		sum = sum.Plus(v)
	}
	if sum != tot {
		t.Error("Values must cover exactly the Total")
	}
}

func TestChoiceString(t *testing.T) {
	ch := &Choice{
		InnerName:       "V",
		FilterOuterCols: []int{1},
		FilterInnerCols: []int{6},
		Repr:            ReprBloom,
		Access:          AccessMagicView,
		Materialize:     true,
		FilterCard:      12,
		FilterSel:       0.05,
	}
	s := ch.String()
	for _, want := range []string{"bloom", "magic-view", "materialize-P", "|F|≈12"} {
		if !strings.Contains(s, want) {
			t.Errorf("Choice.String() missing %q: %s", want, s)
		}
	}
}

func TestReprAndAccessStrings(t *testing.T) {
	if ReprExact.String() != "exact" || ReprBloom.String() != "bloom" {
		t.Error("repr names")
	}
	for a, want := range map[InnerAccess]string{
		AccessScanFilter: "scan+filter",
		AccessIndexProbe: "index-probe",
		AccessMagicView:  "magic-view",
		AccessRemote:     "remote-semijoin",
		AccessFuncCalls:  "consecutive-calls",
	} {
		if a.String() != want {
			t.Errorf("%d renders %q", a, a.String())
		}
	}
}

func TestDedupeByInner(t *testing.T) {
	o, i, alts := dedupeByInner([]int{1, 4, 9}, []int{6, 6, 7})
	if len(o) != 2 || o[0] != 1 || o[1] != 9 || i[0] != 6 || i[1] != 7 {
		t.Errorf("dedupe = %v, %v", o, i)
	}
	if len(alts[0]) != 2 || alts[0][1] != 4 {
		t.Errorf("alternatives for inner 6 = %v, want [1 4]", alts[0])
	}
	if len(alts[1]) != 1 || alts[1][0] != 9 {
		t.Errorf("alternatives for inner 7 = %v", alts[1])
	}
}

func TestCoversArgs(t *testing.T) {
	if !coversArgs([]int{0, 1}, []int{1, 0, 2}) {
		t.Error("superset covers")
	}
	if coversArgs([]int{0, 3}, []int{0, 1}) {
		t.Error("missing arg must not cover")
	}
}

func TestCosterLineFit(t *testing.T) {
	vc := &ViewCoster{BaseRows: 400}
	vc.Points = []SamplePoint{
		{Sel: 0.0, Rows: 0},
		{Sel: 0.5, Rows: 200},
		{Sel: 1.0, Rows: 400},
	}
	vc.fitCardinalityLine()
	if math.Abs(vc.CardA) > 1e-9 || math.Abs(vc.CardB-400) > 1e-9 {
		t.Errorf("fit = %g + %g·sel", vc.CardA, vc.CardB)
	}
	if vc.Rows(0.25) != 100 {
		t.Errorf("Rows(0.25) = %g", vc.Rows(0.25))
	}
	if vc.Rows(2.0) != 400 {
		t.Error("rows clamp at BaseRows")
	}
	if vc.Rows(-1) != 0 {
		t.Error("rows clamp at 0")
	}
}

func TestCosterSinglePointFit(t *testing.T) {
	vc := &ViewCoster{BaseRows: 10}
	vc.Points = []SamplePoint{{Sel: 0.5, Rows: 5}}
	vc.fitCardinalityLine()
	if vc.Rows(0.5) != 5 {
		t.Errorf("single-point fit = %g", vc.Rows(0.5))
	}
}

func TestCosterCostInterpolation(t *testing.T) {
	vc := &ViewCoster{}
	vc.Points = []SamplePoint{
		{Sel: 0.2, Est: cost.Estimate{PageReads: 10}},
		{Sel: 0.8, Est: cost.Estimate{PageReads: 40}},
	}
	mid := vc.Cost(0.5)
	if math.Abs(mid.PageReads-25) > 1e-9 {
		t.Errorf("interpolated reads = %g, want 25", mid.PageReads)
	}
	if vc.Cost(0.1).PageReads != 10 {
		t.Error("below range extrapolates flat")
	}
	if vc.Cost(0.9).PageReads != 40 {
		t.Error("above range extrapolates flat")
	}
	if vc.Invocations() != 2 {
		t.Error("Invocations counts points")
	}
	empty := &ViewCoster{}
	if empty.Cost(0.5) != (cost.Estimate{}) {
		t.Error("empty coster returns zero estimate")
	}
}

func TestAttrsKey(t *testing.T) {
	if attrsKey([]int{0, 2}) != "0,2" {
		t.Errorf("attrsKey = %q", attrsKey([]int{0, 2}))
	}
	if attrsKey(nil) != "" {
		t.Error("empty attrs")
	}
}

func TestPagesOf(t *testing.T) {
	if pagesOf(0, 8) != 0 {
		t.Error("no rows, no pages")
	}
	if pagesOf(1, 8) != 1 {
		t.Error("one row, one page")
	}
	// 4096/8 = 512 rows per page.
	if pagesOf(513, 8) != 2 {
		t.Error("just over a page")
	}
	if pagesOf(10, 10000) != 10 {
		t.Error("row wider than a page: one row per page")
	}
}

func TestIndexPermutation(t *testing.T) {
	perm := indexPermutation([]int{3, 1}, []int{1, 3})
	if perm[0] != 1 || perm[1] != 0 {
		t.Errorf("perm = %v", perm)
	}
	perm = indexPermutation([]int{9}, []int{1})
	if perm[0] != -1 {
		t.Error("missing column yields -1")
	}
}
