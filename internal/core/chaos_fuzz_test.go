package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// chaosFuzzSeeds are the fixed fault schedules CI replays: three
// arbitrary but frozen seeds, so a regression in the transport or in an
// operator's fault handling reproduces identically on every machine.
var chaosFuzzSeeds = []int64{5, 17, 23}

// randDistCatalog is randCatalog's distributed sibling: a local hub
// table T0, one or two remote tables R1.. homed at distinct sites (each
// indexed on k, so every remote strategy — whole-stream shipment,
// semi-join restriction, fetch-matches — is available), and a remote
// grouped view over R1.
func randDistCatalog(rng *rand.Rand) (*catalog.Catalog, int) {
	cat := catalog.New()
	keyRange := 15 + rng.Intn(40)
	hub := storage.NewTable("T0", schema.New(
		schema.Column{Table: "T0", Name: "k", Type: value.KindInt},
		schema.Column{Table: "T0", Name: "v", Type: value.KindInt},
	))
	for r, rows := 0, 10+rng.Intn(80); r < rows; r++ {
		hub.MustInsert(value.NewInt(int64(rng.Intn(keyRange))), value.NewInt(int64(rng.Intn(100))))
	}
	if rng.Intn(2) == 0 {
		if _, err := hub.CreateIndex("T0_k", []int{0}); err != nil {
			panic(err)
		}
	}
	cat.AddTable(hub)

	nRemote := 1 + rng.Intn(2)
	for i := 1; i <= nRemote; i++ {
		name := fmt.Sprintf("R%d", i)
		t := storage.NewTable(name, schema.New(
			schema.Column{Table: name, Name: "k", Type: value.KindInt},
			schema.Column{Table: name, Name: "v", Type: value.KindInt},
		))
		for r, rows := 0, 20+rng.Intn(100); r < rows; r++ {
			t.MustInsert(value.NewInt(int64(rng.Intn(keyRange))), value.NewInt(int64(rng.Intn(100))))
		}
		if _, err := t.CreateIndex(name+"_k", []int{0}); err != nil {
			panic(err)
		}
		cat.AddRemoteTable(t, i)
	}
	cat.AddRemoteView("RGV", &query.Block{
		Rels:    []query.RelRef{{Name: "R1"}},
		GroupBy: []int{0},
		Aggs: []expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggSum, Arg: expr.NewCol(1, "R1.v"), Name: "s"},
		},
	}, 1)
	return cat, nRemote
}

// randDistQuery joins T0 against a random subset of the remote
// relations (always at least one, sometimes the remote view) on k.
func randDistQuery(rng *rand.Rand, nRemote int) *query.Block {
	b := &query.Block{}
	use := []string{"T0", fmt.Sprintf("R%d", 1+rng.Intn(nRemote))}
	if nRemote > 1 && use[1] != "R2" && rng.Intn(2) == 0 {
		use = append(use, "R2")
	}
	if rng.Intn(3) > 0 {
		use = append(use, "RGV")
	}
	off := 0
	offsets := make([]int, len(use))
	for i, name := range use {
		offsets[i] = off
		if name == "RGV" {
			off += 3
		} else {
			off += 2
		}
	}
	for i, name := range use {
		b.Rels = append(b.Rels, query.RelRef{Name: name})
		if i > 0 {
			b.Preds = append(b.Preds, expr.Eq(
				expr.NewCol(offsets[0], "T0.k"),
				expr.NewCol(offsets[i], name+".k"),
			))
		}
	}
	if rng.Intn(2) == 0 {
		b.Preds = append(b.Preds, expr.NewCmp(expr.LT,
			expr.NewCol(1, "T0.v"), expr.Int(int64(20+rng.Intn(60)))))
	}
	return b
}

// runPlanChaos executes the plan over the seeded fault-injecting
// transport (eventual delivery on, so every run must succeed).
func runPlanChaos(t *testing.T, p interface{ Make() exec.Operator }, seed int64) ([]string, cost.Counter) {
	t.Helper()
	ctx := exec.NewContext()
	ctx.Net = dist.NewChaosTransport(
		dist.ChaosConfig{Seed: seed, DropRate: 0.6, MaxLatencyMs: 40, OutageEvery: 5, OutageLen: 2},
		dist.RetryPolicy{MaxAttempts: 5, TimeoutMs: 25, BackoffMs: 2},
	)
	rows, err := exec.Drain(ctx, p.Make())
	if err != nil {
		t.Fatalf("chaos run (seed %d) must recover every fault: %v", seed, err)
	}
	// Same row formatting as runPlan so the differential compare is exact.
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	sort.Strings(out)
	return out, *ctx.Counter
}

// TestChaosDifferentialFuzz is the acceptance criterion for the fault
// injection layer: for random distributed queries under several
// optimizer configurations, every fixed fault schedule yields exactly
// the fault-free rows (recovered by retry, never silently wrong), and
// replaying a schedule reproduces the exact counter totals.
func TestChaosDifferentialFuzz(t *testing.T) {
	base := cost.DefaultModel()
	netHeavy := base
	netHeavy.NetByte *= 5000 // bytes dominate: prefer fetch-matches where it applies

	trials := 12
	if testing.Short() {
		trials = 3
	}
	var totalRetries, totalWait int64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 13))
		cat, nRemote := randDistCatalog(rng)
		q := randDistQuery(rng, nRemote)

		configs := []struct {
			name     string
			model    cost.Model
			fj       *core.Method
			disabled []string
		}{
			{"plain", base, nil, nil},
			{"fj-everything", base, core.NewMethod(core.Options{
				IncludeStored: true, AttrSubsets: true, Bloom: true,
			}), nil},
			{"ship-only", base, nil, []string{"filterjoin", "fetchmatches"}},
			{"fetch-preferred", netHeavy, core.NewMethod(core.Options{}), nil},
		}
		for _, cfg := range configs {
			o := opt.New(cat, cfg.model)
			for _, d := range cfg.disabled {
				o.Disabled[d] = true
			}
			if cfg.fj != nil {
				o.Register(cfg.fj)
			}
			p, err := o.OptimizeBlock(q)
			if err != nil {
				t.Fatalf("trial %d (%s): optimize: %v\nquery: %s", trial, cfg.name, err, q)
			}
			want, free := runPlan(t, planRunner{p.Make})
			for _, seed := range chaosFuzzSeeds {
				got, c1 := runPlanChaos(t, planRunner{p.Make}, seed)
				if !equalStrings(got, want) {
					t.Fatalf("trial %d (%s) seed %d: chaos run produced %d rows, fault-free %d\nquery: %s",
						trial, cfg.name, seed, len(got), len(want), q)
				}
				// Replaying the schedule must reproduce the totals bit for bit.
				_, c2 := runPlanChaos(t, planRunner{p.Make}, seed)
				if c1 != c2 {
					t.Fatalf("trial %d (%s) seed %d: same schedule, different totals:\n%s\n%s",
						trial, cfg.name, seed, c1.String(), c2.String())
				}
				// Faults only ever add cost: retried messages and waits on
				// top of the fault-free bill, local work untouched.
				if c1.NetMsgs != free.NetMsgs+c1.Retries {
					t.Fatalf("trial %d (%s) seed %d: NetMsgs %d != fault-free %d + retries %d",
						trial, cfg.name, seed, c1.NetMsgs, free.NetMsgs, c1.Retries)
				}
				if c1.PageReads != free.PageReads || c1.CPUTuples != free.CPUTuples || c1.FnCalls != free.FnCalls {
					t.Fatalf("trial %d (%s) seed %d: chaos changed local work: %s vs %s",
						trial, cfg.name, seed, c1.String(), free.String())
				}
				totalRetries += c1.Retries
				totalWait += c1.WaitMs
			}
		}
	}
	if totalRetries == 0 || totalWait == 0 {
		t.Fatalf("fuzz injected no faults at all (retries=%d wait=%d); the schedules are dead", totalRetries, totalWait)
	}
}
