package core

import (
	"fmt"
	"math"
	"sync"

	"filterjoin/internal/bloom"
	"filterjoin/internal/catalog"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
	"filterjoin/internal/stats"
	"filterjoin/internal/storage"
)

// DefaultSamplePoints are the filter selectivities at which the view
// coster samples nested optimizations — the equivalence classes of
// Fig 5. More points buy estimate accuracy for optimization time (the
// paper's "performance knob").
var DefaultSamplePoints = []float64{0.02, 0.25, 0.6, 1.0}

// DefaultBloomBitsPerEntry is the Bloom filter budget (≈1% FPR).
const DefaultBloomBitsPerEntry = 10

// Options configures the Filter Join method.
type Options struct {
	// IncludeStored also offers Filter Joins over local base tables
	// (the local semi-join of §5.3). Virtual relations are always
	// considered.
	IncludeStored bool
	// AttrSubsets considers single-attribute filter sets in addition to
	// the all-attributes set when the join has multiple attributes
	// (a Limitation 3 variant; lossy in the "partial SIPS" sense).
	AttrSubsets bool
	// Bloom considers the Bloom filter representation for stored and
	// remote inners.
	Bloom bool
	// BloomBitsPerEntry sizes Bloom filters (default 10).
	BloomBitsPerEntry float64
	// SamplePoints are the view-coster equivalence classes (default
	// DefaultSamplePoints).
	SamplePoints []float64
	// DisableExact suppresses the exact filter-set variant, forcing the
	// lossy representation; an ablation/forcing knob for experiments,
	// not something a production configuration would set.
	DisableExact bool
	// PrefixProductionSets relaxes Limitation 2: in addition to the full
	// outer, every prefix subplan of the outer is considered as the
	// production set (paper §3.3 — "if one is willing to incur the
	// increase in complexity ... Limitation 2 is not required"). The
	// filter set from a prefix is less restrictive but can be far
	// cheaper to produce, and the final join still runs against the
	// full outer. Optimization work grows by at most a factor of N.
	PrefixProductionSets bool
}

// Metrics instruments the method.
type Metrics struct {
	CandidatesBuilt int64
	CosterBuilds    int64 // parametric costers constructed (each costs a few nested optimizations)
	CosterHits      int64 // costing queries answered from cache in O(1)
}

// Method is the Filter Join join-method; register it on an optimizer via
// opt.Optimizer.Register.
type Method struct {
	Opts    Options
	Metrics Metrics
	// Trace, when non-nil, observes every candidate the method builds
	// with its weighted total cost (used by ablation experiments).
	Trace   func(ch *Choice, total float64)
	costers map[costerKey]*ViewCoster
	// mu guards costers, Metrics, and Trace invocations: one Method is
	// shared by an optimizer and all its forks, so concurrent parametric
	// costing (DegreeOfParallelism > 1) reaches them from several
	// goroutines. Serial optimization never contends.
	mu sync.Mutex
}

// NewMethod creates a Filter Join method with the given options.
func NewMethod(opts Options) *Method {
	if opts.BloomBitsPerEntry <= 0 {
		opts.BloomBitsPerEntry = DefaultBloomBitsPerEntry
	}
	return &Method{Opts: opts, costers: map[costerKey]*ViewCoster{}}
}

// Name implements opt.JoinMethod.
func (m *Method) Name() string { return "filterjoin" }

// ResetCosterCache drops memoized view costers (after data changes).
func (m *Method) ResetCosterCache() {
	m.mu.Lock()
	m.costers = map[costerKey]*ViewCoster{}
	m.mu.Unlock()
}

// Costers exposes the cached parametric costers (experiment E3/E4).
func (m *Method) Costers() []*ViewCoster {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*ViewCoster, 0, len(m.costers))
	for _, vc := range m.costers {
		out = append(out, vc)
	}
	return out
}

// viewCosterFor returns the parametric coster for (view, attrs), building
// it on a miss. The build runs outside the lock (it performs nested
// optimizations); when concurrent forks race to build the same coster,
// the first store wins — both builds are deterministic and identical, so
// the loser's work is merely redundant, never wrong.
func (m *Method) viewCosterFor(c *opt.Ctx, ri *opt.RelInfo, innerLocal, bodyCols []int) (*ViewCoster, bool, error) {
	key := costerKey{view: ri.Entry.Name, attrs: attrsKey(innerLocal)}
	m.mu.Lock()
	vc, ok := m.costers[key]
	m.mu.Unlock()
	if ok {
		return vc, true, nil
	}
	built, err := m.buildViewCoster(c, ri, innerLocal, bodyCols)
	if err != nil {
		return nil, false, err
	}
	m.mu.Lock()
	if vc, ok = m.costers[key]; !ok {
		m.costers[key] = built
		vc = built
	}
	m.mu.Unlock()
	return vc, false, nil
}

func pagesOf(rows float64, rowBytes int) float64 {
	if rows <= 0 {
		return 0
	}
	rpp := storage.PageSize / rowBytes
	if rpp < 1 {
		rpp = 1
	}
	return math.Ceil(rows / float64(rpp))
}

// Candidates implements opt.JoinMethod: it proposes Filter Join plans for
// joining outer with the inner relation, one per (attribute subset ×
// representation) variant allowed by Limitation 3.
func (m *Method) Candidates(c *opt.Ctx, outer *plan.Node, inner int) ([]*plan.Node, error) {
	ri := c.Rels[inner]
	if ri.Entry.Kind == catalog.KindBase && !m.Opts.IncludeStored {
		return nil, nil
	}
	preds := c.ApplicablePreds(outer.Rels, inner)
	allOuter, allInner, residualPreds := c.EquiSplit(preds, outer.Rels, inner)
	if len(allOuter) == 0 {
		return nil, nil
	}
	// Equality closure can equate several outer columns with the same
	// inner column; one binding per inner column suffices (they carry
	// identical values), but the alternatives matter for prefix
	// production sets, where only some equality-class members exist in
	// the prefix subplan.
	var outerAlts [][]int
	allOuter, allInner, outerAlts = dedupeByInner(allOuter, allInner)
	rows, outStats := c.JoinResult(outer, inner, preds)
	combined := c.CombinedColMap(outer, inner)

	// Attribute-subset variants (Limitation 3): the full attribute set,
	// plus each single attribute when enabled.
	variants := [][]int{allIdx(len(allOuter))}
	if m.Opts.AttrSubsets && len(allOuter) > 1 {
		for j := range allOuter {
			variants = append(variants, []int{j})
		}
	}

	// Production-set variants: the full outer (Limitation 2), plus every
	// prefix subplan of the outer when the relaxation is enabled.
	prods := []*plan.Node{nil}
	if m.Opts.PrefixProductionSets {
		prods = append(prods, prefixChain(outer)...)
	}

	var out []*plan.Node
	for _, prod := range prods {
		for _, v := range variants {
			var reprs []FilterRepr
			if !m.Opts.DisableExact {
				reprs = append(reprs, ReprExact)
			}
			if m.Opts.Bloom && ri.Entry.Kind != catalog.KindView && ri.Entry.Kind != catalog.KindFunc {
				reprs = append(reprs, ReprBloom)
			}
			for _, repr := range reprs {
				n, err := m.buildCandidate(c, outer, prod, inner, preds, allOuter, allInner, outerAlts, v, repr, residualPreds, rows, outStats, combined)
				if err != nil {
					return nil, err
				}
				if n != nil {
					out = append(out, n)
					m.mu.Lock()
					m.Metrics.CandidatesBuilt++
					m.mu.Unlock()
				}
			}
		}
	}
	return out, nil
}

// prefixChain walks the outer's left spine and returns every proper
// prefix subplan (smaller relation subsets of the same block).
func prefixChain(outer *plan.Node) []*plan.Node {
	var out []*plan.Node
	n := outer
	for len(n.Children) > 0 {
		child := n.Children[0]
		if child.Rels == 0 || len(child.ColMap) != len(outer.ColMap) ||
			!child.Rels.SubsetOf(outer.Rels) {
			break
		}
		if child.Rels != n.Rels && child.Rels != outer.Rels {
			out = append(out, child)
		}
		n = child
	}
	return out
}

// dedupeByInner keeps one (outer, inner) pair per distinct inner column
// and returns, for each kept pair, the full list of equivalent outer
// columns.
func dedupeByInner(outer, inner []int) ([]int, []int, [][]int) {
	pos := map[int]int{}
	var no, ni []int
	var alts [][]int
	for i := range inner {
		if j, ok := pos[inner[i]]; ok {
			alts[j] = append(alts[j], outer[i])
			continue
		}
		pos[inner[i]] = len(ni)
		no = append(no, outer[i])
		ni = append(ni, inner[i])
		alts = append(alts, []int{outer[i]})
	}
	return no, ni, alts
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// buildCandidate assembles one Filter Join plan node with the full
// Table 1 cost breakdown. prod is the production-set subplan; nil means
// the full outer (Limitation 2).
func (m *Method) buildCandidate(
	c *opt.Ctx, outer, prod *plan.Node, inner int, preds []*opt.PredInfo,
	allOuter, allInner []int, outerAlts [][]int, variant []int, repr FilterRepr,
	residualPreds []*opt.PredInfo, rows float64, outStats *stats.RelStats, combined []int,
) (*plan.Node, error) {
	prefix := prod != nil
	if prod == nil {
		prod = outer
	}
	ri := c.Rels[inner]
	e := ri.Entry
	model := c.O.Model

	filterOuter := make([]int, len(variant))
	filterInner := make([]int, len(variant))
	for i, j := range variant {
		filterInner[i] = allInner[j]
		// Pick an outer column for this attribute that the production
		// set actually carries (any member of the equality class works).
		chosen := -1
		for _, cand := range outerAlts[j] {
			if cand >= 0 && cand < len(prod.ColMap) && prod.ColMap[cand] >= 0 {
				chosen = cand
				break
			}
		}
		if chosen < 0 {
			return nil, nil
		}
		filterOuter[i] = chosen
	}
	innerLocal := make([]int, len(filterInner))
	for i, col := range filterInner {
		innerLocal[i] = col - ri.Offset
	}
	allInnerLocal := make([]int, len(allInner))
	for i, col := range allInner {
		allInnerLocal[i] = col - ri.Offset
	}

	// Function relations need every argument bound by the filter set.
	if e.Kind == catalog.KindFunc && !coversArgs(e.ArgCols, innerLocal) {
		return nil, nil
	}

	// View bindings must have direct provenance into the body.
	var bodyCols []int
	if e.Kind == catalog.KindView {
		bc, ok, err := viewBindings(c.O.Cat, e, innerLocal)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		bodyCols = bc
	}

	outerFilterPos, ok := opt.OuterKeyPositions(prod, filterOuter)
	if !ok {
		return nil, nil
	}
	outerAllPos, ok := opt.OuterKeyPositions(outer, allOuter)
	if !ok {
		return nil, nil
	}

	// ---- Cardinalities -------------------------------------------------
	fDistincts := make([]float64, len(filterOuter))
	for i, col := range filterOuter {
		fDistincts[i] = c.DistinctOfBlockCol(prod, col)
	}
	fCard := stats.ProjectionCardinality(prod.Rows, fDistincts)
	if fCard < 1 && prod.Rows >= 1 {
		fCard = 1
	}
	innerDistincts := make([]float64, len(innerLocal))
	for i, col := range innerLocal {
		innerDistincts[i] = ri.RawStats.DistinctOf(col)
	}
	innerDomain := stats.ProjectionCardinality(ri.RawStats.Rows, innerDistincts)
	if innerDomain < 1 {
		innerDomain = 1
	}
	fSel := fCard / innerDomain
	if fSel > 1 {
		fSel = 1
	}
	effSel := fSel
	if repr == ReprBloom {
		fpr := bloom.TheoreticalFPR(m.Opts.BloomBitsPerEntry)
		effSel = fSel + fpr*(1-fSel)
		if effSel > 1 {
			effSel = 1
		}
	}

	keyBytes := 0
	for _, col := range filterInner {
		keyBytes += c.Layout.Schema.Col(col).Type.Width()
	}
	if keyBytes == 0 {
		keyBytes = 8
	}

	var comp Components

	// ---- JoinCost_P and ProductionCost_P -------------------------------
	comp.JoinCostP = outer.Est
	materialize := false
	if prefix {
		// The filter set is produced by re-running the prefix subplan;
		// the full outer streams once into the final join unchanged.
		comp.ProductionCostP = prod.Est
	} else {
		pRowBytes := outer.OutSchema.RowWidth()
		pagesP := pagesOf(outer.Rows, pRowBytes)
		matExtra := cost.Estimate{PageWrites: pagesP, PageReads: 2 * pagesP, CPUTuples: 2 * outer.Rows}
		materialize = cost.LessEq(model.TotalEstimate(matExtra), model.TotalEstimate(outer.Est))
		if materialize {
			comp.ProductionCostP = matExtra
		} else {
			comp.ProductionCostP = outer.Est // recompute P for the final join
		}
	}

	// ---- ProjCost_F -----------------------------------------------------
	comp.ProjCostF = cost.Estimate{CPUTuples: prod.Rows}

	// ---- AvailCost_F ----------------------------------------------------
	filterBytes := fCard * float64(keyBytes)
	if repr == ReprBloom {
		filterBytes = math.Ceil(fCard*m.Opts.BloomBitsPerEntry/8) + 64
		comp.AvailCostF.CPUTuples += fCard // building the Bloom filter from the key set
	}
	if e.Site > 0 {
		comp.AvailCostF.NetBytes += filterBytes
		comp.AvailCostF.NetMsgs++
	}
	if e.Kind == catalog.KindView {
		// The runtime writes F into a transient table the magic-rewritten
		// view plan scans.
		comp.AvailCostF.PageWrites += pagesOf(fCard, keyBytes)
	}

	// ---- FilterCost_Rk, AvailCost_Rk', restricted cardinality ----------
	var (
		restrictRows float64
		access       InnerAccess
		chosenIx     *storage.HashIndex
		ixOuterPerm  []int // permutation: index col order -> position in filter key row
	)
	switch e.Kind {
	case catalog.KindBase, catalog.KindRemote:
		t := e.Table
		raw := ri.RawStats
		tablePages := float64(t.NumPages())
		scanEst := cost.Estimate{PageReads: tablePages, CPUTuples: 2 * raw.Rows}
		if ri.LocalPred != nil {
			scanEst.CPUTuples += raw.Rows * effSel
		}
		restrictRows = raw.Rows * effSel * ri.LocalSel
		comp.FilterCostRk = scanEst
		access = AccessScanFilter
		if repr == ReprExact {
			if ix := pickIndexOn(t, innerLocal); ix != nil {
				keyCardDistincts := make([]float64, len(ix.Cols()))
				for i, col := range ix.Cols() {
					keyCardDistincts[i] = raw.DistinctOf(col)
				}
				keyCard := stats.ProjectionCardinality(raw.Rows, keyCardDistincts)
				if keyCard < 1 {
					keyCard = 1
				}
				k := raw.Rows / keyCard
				clustered := len(ix.Cols()) > 0 && raw.ClusteredOn(ix.Cols()[0])
				matchPages := stats.MatchPages(raw.Rows, tablePages, k, t.RowsPerPage(), clustered)
				ixEst := cost.Estimate{
					PageReads: fCard * (1 + matchPages),
					CPUTuples: fCard * (k + 2),
				}
				if ri.LocalPred != nil {
					ixEst.CPUTuples += fCard * k
				}
				if cost.Less(model.TotalEstimate(ixEst), model.TotalEstimate(scanEst)) {
					comp.FilterCostRk = ixEst
					access = AccessIndexProbe
					chosenIx = ix
					ixOuterPerm = indexPermutation(ix.Cols(), innerLocal)
				}
			}
		}
		if e.Kind == catalog.KindRemote {
			if access == AccessScanFilter {
				access = AccessRemote
			}
			comp.AvailCostRkP = cost.Estimate{
				NetBytes:  restrictRows * float64(t.Schema().RowWidth()),
				NetMsgs:   1,
				CPUTuples: restrictRows,
			}
		}

	case catalog.KindView:
		vc, hit, err := m.viewCosterFor(c, ri, innerLocal, bodyCols)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		if hit {
			m.Metrics.CosterHits++
		} else {
			m.Metrics.CosterBuilds++
		}
		m.mu.Unlock()
		if c.O.Traces() {
			if hit {
				c.O.Emit(opt.TraceEvent{Kind: opt.EvCosterHit,
					Detail: fmt.Sprintf("view %s attrs %v", e.Name, innerLocal)})
			} else {
				c.O.Emit(opt.TraceEvent{Kind: opt.EvCosterBuild,
					Detail: fmt.Sprintf("view %s attrs %v (%d sample points)", e.Name, innerLocal, len(vc.Points))})
			}
		}
		comp.FilterCostRk = vc.Cost(fSel)
		restrictRows = vc.Rows(fSel) * ri.LocalSel
		if ri.LocalPred != nil {
			comp.FilterCostRk.CPUTuples += vc.Rows(fSel)
		}
		access = AccessMagicView
		if e.Site > 0 {
			vs := ri.Schema
			comp.AvailCostRkP = cost.Estimate{
				NetBytes:  restrictRows * float64(vs.RowWidth()),
				NetMsgs:   1,
				CPUTuples: restrictRows,
			}
		}

	case catalog.KindFunc:
		perCall := funcPerCall(e, ri.RawStats)
		comp.FilterCostRk = cost.Estimate{FnCalls: fCard, CPUTuples: fCard * (perCall + 1)}
		restrictRows = fCard * perCall * ri.LocalSel
		if ri.LocalPred != nil {
			comp.FilterCostRk.CPUTuples += fCard * perCall
		}
		access = AccessFuncCalls

	default:
		return nil, nil
	}

	// ---- FinalJoinCost --------------------------------------------------
	comp.FinalJoinCost = cost.Estimate{CPUTuples: restrictRows + outer.Rows + rows}

	ch := &Choice{
		InnerName:        e.Name,
		InnerIndex:       inner,
		AllOuterCols:     allOuter,
		AllInnerCols:     allInner,
		FilterOuterCols:  filterOuter,
		FilterInnerCols:  filterInner,
		Repr:             repr,
		BloomBits:        m.Opts.BloomBitsPerEntry,
		Access:           access,
		Materialize:      materialize,
		PrefixProduction: prefix,
		FilterCard:       fCard,
		FilterSel:        fSel,
		RestrictRows:     restrictRows,
		Components:       comp,
	}
	if prefix {
		ch.ProductionRels = prod.Rels.Members()
	}

	op := &fjExecSpec{
		method:         m,
		o:              c.O,
		entry:          e,
		choice:         ch,
		outerMake:      outer.Make,
		outerRows:      outer.Rows,
		outerNode:      outer,
		alias:          ri.Ref.Binding(),
		outerFilterPos: outerFilterPos,
		outerAllPos:    outerAllPos,
		innerFilterLoc: innerLocal,
		innerAllLoc:    allInnerLocal,
		residual:       opt.ResidualExpr(residualPreds, combined),
		localPred:      relLocalPred(ri),
		index:          chosenIx,
		ixPerm:         ixOuterPerm,
		bodyCols:       bodyCols,
		keyBytes:       keyBytes,
		filterBytes:    filterBytes,
	}
	if prefix {
		op.filterMake = prod.Make
		op.filterRows = prod.Rows
	}
	if e.Kind == catalog.KindView {
		fs, err := filterSchema(c.O.Cat, e, innerLocal)
		if err != nil {
			return nil, err
		}
		op.fSchema = fs
	}

	m.mu.Lock()
	if m.Trace != nil {
		m.Trace(ch, model.TotalEstimate(comp.Total()))
	}
	m.mu.Unlock()
	if c.O.Traces() {
		c.O.Emit(opt.TraceEvent{Kind: opt.EvFJVariant,
			Subset: c.RelSetName(outer.Rels.With(inner)),
			Method: "filterjoin",
			Detail: e.Name + ": " + ch.String(),
			Cost:   model.TotalEstimate(comp.Total())})
	}
	return plan.NewNode(&plan.Node{
		Kind:      "FilterJoin",
		Detail:    e.Name + ": " + ch.String(),
		Children:  []*plan.Node{outer},
		Est:       comp.Total(),
		Rows:      rows,
		Stats:     outStats,
		OutSchema: outer.OutSchema.Concat(ri.Schema),
		ColMap:    combined,
		Rels:      outer.Rels.With(inner),
		// The final join-back probes a hash of the restricted inner with
		// the streamed outer, so the outer's physical order survives the
		// Filter Join — extended across the equi-join columns — and magic
		// plans compete in the same order-property buckets as direct joins.
		Ordering: outer.Ordering.ExtendEquiv(allOuter, allInner),
		Make:     op.make,
		Extra:    ch,
	}), nil
}

func coversArgs(argCols, innerLocal []int) bool {
	have := map[int]bool{}
	for _, c := range innerLocal {
		have[c] = true
	}
	for _, a := range argCols {
		if !have[a] {
			return false
		}
	}
	return true
}

func relLocalPred(ri *opt.RelInfo) expr.Expr {
	if ri.LocalPred == nil {
		return nil
	}
	return expr.Remap(ri.LocalPred, ri.ColMap)
}

// pickIndexOn selects an index whose key columns are a subset of cols.
func pickIndexOn(t *storage.Table, cols []int) *storage.HashIndex {
	have := map[int]bool{}
	for _, c := range cols {
		have[c] = true
	}
	var best *storage.HashIndex
	for _, ix := range t.Indexes() {
		ok := true
		for _, c := range ix.Cols() {
			if !have[c] {
				ok = false
				break
			}
		}
		if ok && (best == nil || len(ix.Cols()) > len(best.Cols())) {
			best = ix
		}
	}
	return best
}

// indexPermutation maps each index key column to its position within the
// filter key row (which is laid out in innerLocal order).
func indexPermutation(ixCols, innerLocal []int) []int {
	perm := make([]int, len(ixCols))
	for i, ic := range ixCols {
		perm[i] = -1
		for j, lc := range innerLocal {
			if lc == ic {
				perm[i] = j
				break
			}
		}
	}
	return perm
}

func funcPerCall(e *catalog.Entry, raw *stats.RelStats) float64 {
	perCall := e.FnPerCall
	if perCall <= 0 {
		perCall = 1
	}
	if raw != nil && raw.Rows > 0 && len(e.ArgCols) > 0 {
		d := make([]float64, len(e.ArgCols))
		for i, a := range e.ArgCols {
			d[i] = raw.DistinctOf(a)
		}
		dom := stats.ProjectionCardinality(raw.Rows, d)
		if dom >= 1 {
			perCall = raw.Rows / dom
		}
	}
	return perCall
}
