package core_test

import (
	"strings"
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
)

// TestGoldenPlanShapes pins the optimizer's qualitative decisions on the
// canonical workload: which operators appear at which selectivities.
// These are behavioural regressions tests for the cost model — if a
// weight or formula change flips a decision the paper's story depends
// on, this fails with the full plan text.
func TestGoldenPlanShapes(t *testing.T) {
	model := cost.DefaultModel()
	cases := []struct {
		name      string
		bigFrac   float64
		mustHave  []string
		mustNotHa []string
	}{
		{
			name:     "selective_uses_filter_join",
			bigFrac:  0.02,
			mustHave: []string{"FilterJoin", "TableScan"},
		},
		{
			name:      "unselective_full_computation",
			bigFrac:   0.6,
			mustHave:  []string{"ViewScan", "GroupBy"},
			mustNotHa: []string{"FilterJoin"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := fig1DB(t, 20000, 400, 0.2, tc.bigFrac)
			o := opt.New(cat, model)
			o.Register(core.NewMethod(core.Options{}))
			p, err := o.OptimizeBlock(fig1Query())
			if err != nil {
				t.Fatal(err)
			}
			text := plan.Format(p, model)
			for _, want := range tc.mustHave {
				if !strings.Contains(text, want) {
					t.Errorf("plan must contain %q:\n%s", want, text)
				}
			}
			for _, not := range tc.mustNotHa {
				if strings.Contains(text, not) {
					t.Errorf("plan must not contain %q:\n%s", not, text)
				}
			}
		})
	}
}

// TestFilterJoinComponentsAddUpInPlan: the FilterJoin node's Est must be
// exactly the sum of its recorded Table 1 components.
func TestFilterJoinComponentsAddUpInPlan(t *testing.T) {
	cat := fig1DB(t, 20000, 400, 0.2, 0.03)
	model := cost.DefaultModel()
	o := opt.New(cat, model)
	o.Register(core.NewMethod(core.Options{}))
	p, err := o.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	fj := p.Find("FilterJoin")
	if fj == nil {
		t.Skip("filter join not chosen on this workload")
	}
	ch, ok := fj.Extra.(*core.Choice)
	if !ok {
		t.Fatal("FilterJoin node lacks its Choice annotation")
	}
	if fj.Est != ch.Components.Total() {
		t.Errorf("node Est %+v != components total %+v", fj.Est, ch.Components.Total())
	}
}
