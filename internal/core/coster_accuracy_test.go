package core_test

import (
	"math"
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/opt"
)

// TestCosterInterpolationNearFreshOptimization checks Assumption 1's
// accuracy side: the O(1) interpolated cost of a restricted view must
// stay close to what a fresh nested optimization at that selectivity
// would estimate (the expensive path the cache replaces).
func TestCosterInterpolationNearFreshOptimization(t *testing.T) {
	cat := fig1DB(t, 20000, 400, 0.2, 0.1)
	model := cost.DefaultModel()

	// Build the coster with the default 4 sample classes.
	m4 := core.NewMethod(core.Options{})
	o4 := opt.New(cat, model)
	o4.Register(m4)
	if _, err := o4.OptimizeBlock(fig1Query()); err != nil {
		t.Fatal(err)
	}
	costers := m4.Costers()
	if len(costers) != 1 {
		t.Fatalf("costers = %d", len(costers))
	}
	vc4 := costers[0]

	// Reference: a dense coster (many classes) approximates the true
	// per-selectivity optimization curve.
	dense := core.NewMethod(core.Options{
		SamplePoints: []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0},
	})
	oD := opt.New(cat, model)
	oD.Register(dense)
	if _, err := oD.OptimizeBlock(fig1Query()); err != nil {
		t.Fatal(err)
	}
	vcDense := dense.Costers()[0]

	for _, sel := range []float64{0.05, 0.15, 0.35, 0.75} {
		got := model.TotalEstimate(vc4.Cost(sel))
		want := model.TotalEstimate(vcDense.Cost(sel))
		if want <= 0 {
			t.Fatalf("dense coster returned zero cost at sel=%g", sel)
		}
		relErr := math.Abs(got-want) / want
		if relErr > 0.5 {
			t.Errorf("sel=%.2f: 4-class interpolation %.1f vs dense %.1f (%.0f%% off)",
				sel, got, want, relErr*100)
		}
	}

	// Cardinality agreement should be much tighter (the line fit).
	for _, sel := range []float64{0.05, 0.35, 0.75} {
		got, want := vc4.Rows(sel), vcDense.Rows(sel)
		if want > 0 && math.Abs(got-want)/want > 0.15 {
			t.Errorf("sel=%.2f: rows %g vs %g", sel, got, want)
		}
	}
}

// TestCosterKnob verifies the paper's "performance knob": more sample
// classes cost proportionally more nested optimizations.
func TestCosterKnob(t *testing.T) {
	cat := fig1DB(t, 8000, 200, 0.2, 0.1)
	model := cost.DefaultModel()

	run := func(points []float64) int64 {
		m := core.NewMethod(core.Options{SamplePoints: points})
		o := opt.New(cat, model)
		o.Register(m)
		if _, err := o.OptimizeBlock(fig1Query()); err != nil {
			t.Fatal(err)
		}
		return o.Metrics.NestedOptimizations
	}
	two := run([]float64{0.1, 1.0})
	eight := run([]float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0})
	if eight <= two {
		t.Errorf("more classes must cost more nested optimizations: %d vs %d", eight, two)
	}
	// Both stay small constants relative to the join search.
	if eight > 20 {
		t.Errorf("nested optimizations should stay bounded: %d", eight)
	}
}
