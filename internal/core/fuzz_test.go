package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// randCatalog builds a random star of base tables around a shared key
// domain, plus one grouped view, for differential testing.
func randCatalog(rng *rand.Rand) (*catalog.Catalog, int) {
	cat := catalog.New()
	nTables := 2 + rng.Intn(2)
	keyRange := 15 + rng.Intn(40)
	for i := 0; i < nTables; i++ {
		name := fmt.Sprintf("T%d", i)
		s := schema.New(
			schema.Column{Table: name, Name: "k", Type: value.KindInt},
			schema.Column{Table: name, Name: "v", Type: value.KindInt},
		)
		t := storage.NewTable(name, s)
		rows := 10 + rng.Intn(120)
		for r := 0; r < rows; r++ {
			t.MustInsert(value.NewInt(int64(rng.Intn(keyRange))), value.NewInt(int64(rng.Intn(100))))
		}
		if rng.Intn(2) == 0 {
			if _, err := t.CreateIndex(name+"_k", []int{0}); err != nil {
				panic(err)
			}
		}
		cat.AddTable(t)
	}
	// A grouped view over T0: (k, COUNT, SUM(v)).
	cat.AddView("GV", &query.Block{
		Rels:    []query.RelRef{{Name: "T0"}},
		GroupBy: []int{0},
		Aggs: []expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggSum, Arg: expr.NewCol(1, "T0.v"), Name: "s"},
		},
	})
	return cat, nTables
}

// randQuery joins a random subset of the tables (always including the
// view with some probability) on k, with random local predicates.
func randQuery(rng *rand.Rand, nTables int) *query.Block {
	b := &query.Block{}
	use := []string{"T0"}
	for i := 1; i < nTables; i++ {
		if rng.Intn(2) == 0 {
			use = append(use, fmt.Sprintf("T%d", i))
		}
	}
	withView := rng.Intn(3) > 0
	if withView {
		use = append(use, "GV")
	}
	for _, name := range use {
		b.Rels = append(b.Rels, query.RelRef{Name: name})
	}
	// Every relation has (k, ...) at its local position 0; chain them.
	off := 0
	offsets := make([]int, len(use))
	for i, name := range use {
		offsets[i] = off
		if name == "GV" {
			off += 3
		} else {
			off += 2
		}
	}
	for i := 1; i < len(use); i++ {
		b.Preds = append(b.Preds, expr.Eq(
			expr.NewCol(offsets[0], use[0]+".k"),
			expr.NewCol(offsets[i], use[i]+".k"),
		))
	}
	// Random local predicate on T0.v.
	if rng.Intn(2) == 0 {
		b.Preds = append(b.Preds, expr.NewCmp(expr.LT,
			expr.NewCol(1, "T0.v"), expr.Int(int64(20+rng.Intn(60)))))
	}
	// Random local predicate on the view's count output.
	if withView && rng.Intn(2) == 0 {
		b.Preds = append(b.Preds, expr.NewCmp(expr.GE,
			expr.NewCol(offsets[len(use)-1]+1, "GV.n"), expr.Int(1+int64(rng.Intn(3)))))
	}
	// Random ORDER BY over T0's columns (these queries have no projection,
	// so output positions coincide with the block layout). This exercises
	// the interesting-order memo and sort elision under every config.
	if rng.Intn(2) == 0 {
		b.OrderBy = append(b.OrderBy, query.OrderItem{Col: 0, Desc: rng.Intn(2) == 0})
		if rng.Intn(2) == 0 {
			b.OrderBy = append(b.OrderBy, query.OrderItem{Col: 1, Desc: rng.Intn(2) == 0})
		}
	}
	return b
}

// TestDifferentialRandomQueries runs each random query under four
// optimizer configurations and demands identical result multisets. This
// is the repository's main correctness fuzz: any costing or plumbing bug
// that changes plan shape shows up as a result difference.
func TestDifferentialRandomQueries(t *testing.T) {
	model := cost.DefaultModel()
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		cat, nTables := randCatalog(rng)
		q := randQuery(rng, nTables)

		configs := []struct {
			name     string
			fj       *core.Method
			disabled []string
			noOrder  bool
		}{
			{"plain", nil, nil, false},
			{"fj", core.NewMethod(core.Options{}), nil, false},
			{"fj-everything", core.NewMethod(core.Options{
				IncludeStored: true, AttrSubsets: true, Bloom: true,
				PrefixProductionSets: true,
			}), nil, false},
			{"fj-only-hash", core.NewMethod(core.Options{}), []string{"merge", "nlj", "indexnl"}, false},
			{"fj-no-orderprops", core.NewMethod(core.Options{}), nil, true},
		}
		var want []string
		for _, cfg := range configs {
			o := opt.New(cat, model)
			o.DisableOrderProps = cfg.noOrder
			for _, d := range cfg.disabled {
				o.Disabled[d] = true
			}
			if cfg.fj != nil {
				o.Register(cfg.fj)
			}
			p, err := o.OptimizeBlock(q)
			if err != nil {
				t.Fatalf("trial %d (%s): optimize: %v\nquery: %s", trial, cfg.name, err, q)
			}
			got, _ := runPlan(t, planRunner{p.Make})
			if want == nil {
				want = got
				continue
			}
			if !equalStrings(got, want) {
				t.Fatalf("trial %d: config %q produced %d rows, plain produced %d\nquery: %s",
					trial, cfg.name, len(got), len(want), q)
			}
		}
	}
}

// TestDifferentialForcedOrders forces every permutation of a three-way
// join (table, table, view) and demands identical results.
func TestDifferentialForcedOrders(t *testing.T) {
	model := cost.DefaultModel()
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 104729))
		cat, _ := randCatalog(rng)
		q := &query.Block{
			Rels: []query.RelRef{{Name: "T0"}, {Name: "T1"}, {Name: "GV"}},
			Preds: []expr.Expr{
				expr.Eq(expr.NewCol(0, "T0.k"), expr.NewCol(2, "T1.k")),
				expr.Eq(expr.NewCol(0, "T0.k"), expr.NewCol(4, "GV.k")),
			},
		}
		var want []string
		for _, perm := range [][]int{{0, 1, 2}, {1, 0, 2}, {0, 2, 1}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
			o := opt.New(cat, model)
			o.Register(core.NewMethod(core.Options{}))
			p, err := o.OptimizeBlockWithOrder(q, perm)
			if err != nil {
				t.Fatalf("trial %d perm %v: %v", trial, perm, err)
			}
			got, _ := runPlan(t, planRunner{p.Make})
			if want == nil {
				want = got
				continue
			}
			if !equalStrings(got, want) {
				t.Fatalf("trial %d: order %v produced %d rows, first order produced %d",
					trial, perm, len(got), len(want))
			}
		}
	}
}
