package core

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/expr"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
)

// viewBindings maps bound view-output columns to the view-body layout
// columns they flow from. A binding is legal only on outputs with direct
// provenance (grouping columns or plainly projected columns); aggregate
// results cannot receive bindings. Returns ok=false when any requested
// column is unbindable.
func viewBindings(cat *catalog.Catalog, e *catalog.Entry, innerLocalCols []int) (bodyCols []int, ok bool, err error) {
	layout, err := e.ViewDef.Layout(cat)
	if err != nil {
		return nil, false, err
	}
	prov := e.ViewDef.OutputProvenance(layout.Schema.Len())
	bodyCols = make([]int, len(innerLocalCols))
	for i, c := range innerLocalCols {
		if c < 0 || c >= len(prov) || prov[c] < 0 {
			return nil, false, nil
		}
		bodyCols[i] = prov[c]
	}
	return bodyCols, true, nil
}

// filterSchema builds the schema of the filter-set relation F: one column
// per bound attribute, typed like the view output columns it restricts.
func filterSchema(cat *catalog.Catalog, e *catalog.Entry, innerLocalCols []int) (*schema.Schema, error) {
	vs, err := e.Schema(cat)
	if err != nil {
		return nil, err
	}
	cols := make([]schema.Column, len(innerLocalCols))
	for i, c := range innerLocalCols {
		if c < 0 || c >= vs.Len() {
			return nil, fmt.Errorf("core: filter column %d out of range for view %s", c, e.Name)
		}
		cols[i] = schema.Column{Name: fmt.Sprintf("k%d", i), Type: vs.Col(c).Type}
	}
	return schema.New(cols...), nil
}

// restrictedBlock is the magic-sets rewriting of a view definition: the
// filter relation fName joins into the view body on the bound columns,
// restricting the computation to the bindings in F (paper Fig 2's
// RestrictedDepAvgSal, generalized). The block's output shape is kept
// identical to the original view's.
func restrictedBlock(cat *catalog.Catalog, e *catalog.Entry, bodyCols []int, fName string) (*query.Block, error) {
	vb := e.ViewDef.Clone()
	layout, err := e.ViewDef.Layout(cat)
	if err != nil {
		return nil, err
	}
	w := layout.Schema.Len()
	if !vb.HasAggregation() && vb.Proj == nil {
		// Pin the output to the original columns so F's columns do not
		// leak into the view's output schema.
		vb.Proj = make([]query.Output, w)
		for c := 0; c < w; c++ {
			col := layout.Schema.Col(c)
			vb.Proj[c] = query.Output{
				Expr: expr.NewCol(c, col.QualifiedName()),
				Name: col.Name,
			}
		}
	}
	vb.Rels = append(vb.Rels, query.RelRef{Name: fName})
	for j, bc := range bodyCols {
		vb.Preds = append(vb.Preds, expr.Eq(
			expr.NewCol(bc, layout.Schema.Col(bc).QualifiedName()),
			expr.NewCol(w+j, fmt.Sprintf("%s.k%d", fName, j)),
		))
	}
	return vb, nil
}
