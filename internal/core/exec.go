package core

import (
	"fmt"

	"filterjoin/internal/catalog"
	"filterjoin/internal/dist"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/udr"
	"filterjoin/internal/value"
)

// fjExecSpec carries everything the runtime Filter Join operator needs,
// captured at plan time.
type fjExecSpec struct {
	method *Method
	o      *opt.Optimizer
	entry  *catalog.Entry
	choice *Choice

	outerMake func() exec.Operator
	// filterMake, when non-nil, produces the prefix production set the
	// filter is built from (Limitation 2 relaxed); the full outer still
	// feeds the final join.
	filterMake func() exec.Operator
	alias      string

	// outerRows/filterRows are the planned cardinalities of the outer
	// production set and (when prefix production is used) the prefix
	// subplan; outerNode is the outer's plan node. They feed the key-set
	// build's replan guard (DESIGN.md §15).
	outerRows  float64
	filterRows float64
	outerNode  *plan.Node

	outerFilterPos []int // filter attr positions in the outer's output
	outerAllPos    []int // all equi attr positions in the outer's output
	innerFilterLoc []int // filter attr positions within the inner relation
	innerAllLoc    []int // all equi attr positions within the inner relation

	residual  expr.Expr // bound against outer‖inner layout
	localPred expr.Expr // inner-relation-local predicate

	index  *storage.HashIndex // for AccessIndexProbe
	ixPerm []int              // index col order -> position in filter key row

	bodyCols []int          // view body columns receiving bindings
	fSchema  *schema.Schema // filter relation schema (views)

	keyBytes    int
	filterBytes float64
}

func (s *fjExecSpec) make() exec.Operator {
	return &filterJoinOp{spec: s}
}

// filterJoinOp is the runtime Filter Join. Definition 2.1's four steps
// all happen in Open: the production set P is computed (materialized or
// set up for recomputation), the distinct filter set F is built, the
// restricted inner R_k' is composed — for views this performs the magic
// rewriting and plans the restricted view with the *actual* filter
// cardinality, the deferred planning §4.2 describes — and the final hash
// join of P with R_k' is opened. Next/Close delegate to the final join.
type filterJoinOp struct {
	spec  *fjExecSpec
	final exec.Operator
	// o is the per-execution optimizer fork. The spec's optimizer may be
	// shared by concurrent executions of one cached plan, and deferred
	// planning mutates optimizer state (temp names, transient catalog
	// entries, metrics), so Open forks it and merges the counters back.
	o *opt.Optimizer
	// Observability for experiments.
	FilterSize   int
	RestrictSeen int
}

// Schema implements exec.Operator.
func (f *filterJoinOp) Schema() *schema.Schema {
	s := f.spec
	var innerSch *schema.Schema
	switch s.entry.Kind {
	case catalog.KindFunc:
		innerSch = s.entry.FnSchema
	case catalog.KindView:
		vs, err := s.entry.Schema(s.o.Cat)
		if err != nil {
			innerSch = schema.New()
		} else {
			innerSch = vs
		}
	case catalog.KindBase, catalog.KindRemote:
		innerSch = s.entry.Table.Schema()
	}
	if s.alias != "" {
		innerSch = innerSch.Rename(s.alias)
	}
	// Outer schema is only known via the outer operator; build one
	// transiently. Make() is cheap (no execution happens).
	return s.outerMake().Schema().Concat(innerSch)
}

// Open implements exec.Operator.
func (f *filterJoinOp) Open(ctx *exec.Context) error {
	s := f.spec
	ch := s.choice

	// All planning-time mutation below runs on a private fork of the
	// captured optimizer: transient filter tables go into the fork's
	// cloned catalog and temp names draw from the fork's sequence, so N
	// sessions can execute one cached plan concurrently. The fork's
	// search counters are folded back into the shared optimizer when Open
	// returns.
	f.o = s.o.Fork()
	f.o.DegreeOfParallelism = s.o.DegreeOfParallelism
	f.o.BatchSize = s.o.BatchSize
	f.o.Tracer = s.o.Tracer
	defer func() { s.o.MergeMetrics(f.o.Metrics) }()

	// Step 1: production set P.
	var pFilter, pJoin exec.Operator
	switch {
	case s.filterMake != nil:
		// Prefix production set: the filter comes from a cheaper subplan;
		// the full outer streams once into the final join.
		pFilter, pJoin = s.filterMake(), s.outerMake()
	case ch.Materialize:
		mat := exec.NewMaterialize(s.outerMake(), f.o.TempName("P"))
		pFilter, pJoin = mat, mat
	default:
		pFilter, pJoin = s.outerMake(), s.outerMake()
	}

	// Step 2: the distinct filter set F, pre-sized from the optimizer's
	// estimated |F|. The build is a materialization point: a production
	// set exceeding its estimate by the replan ratio is the paper's
	// filter-join "bad case", so the guard aborts it into mid-run
	// re-optimization when the serving layer armed replanning.
	pEst := s.outerRows
	if s.filterMake != nil {
		pEst = s.filterRows
	}
	keys, err := exec.BuildKeySetSized(ctx, exec.NewCardGuard(pFilter, pEst, "KeySet build", s.outerNode),
		s.outerFilterPos, int(ch.FilterCard+0.5))
	if err != nil {
		return err
	}
	f.FilterSize = keys.Len()

	// Step 3: the restricted inner R_k'.
	restricted, err := f.buildRestricted(ctx, keys)
	if err != nil {
		return err
	}

	// Step 4: final join of P with R_k' on all join attributes. The build
	// side is the restricted inner, so its table is pre-sized from the
	// optimizer's |R_k'| estimate.
	final := exec.NewHashJoinProbeFirst(restricted, pJoin, s.innerAllLoc, s.outerAllPos, s.residual)
	final.BuildSizeHint = int(ch.RestrictRows + 0.5)
	f.final = final
	return f.final.Open(ctx)
}

// buildRestricted composes the restricted-inner operator per the access
// strategy recorded in the Choice.
func (f *filterJoinOp) buildRestricted(ctx *exec.Context, keys *exec.KeySet) (exec.Operator, error) {
	s := f.spec
	ch := s.choice
	switch s.entry.Kind {
	case catalog.KindBase, catalog.KindRemote:
		op, err := f.restrictStored(ctx, keys)
		if err != nil {
			return nil, err
		}
		if s.entry.Kind == catalog.KindRemote {
			// Ship F over (the fallible keyset message), ship R_k' back.
			if err := dist.Send(ctx, s.entry.Site, int64(ch.filterShipBytes(keys, s))); err != nil {
				return nil, err
			}
			op = dist.NewShip(op, s.entry.Table.Schema().RowWidth(), s.entry.Site)
		}
		return op, nil

	case catalog.KindView:
		return f.restrictView(ctx, keys)

	case catalog.KindFunc:
		var op exec.Operator = udr.NewConsecutiveScan(s.entry, keys, s.alias)
		if s.localPred != nil {
			op = exec.NewSelect(op, s.localPred)
		}
		return op, nil
	}
	return nil, fmt.Errorf("core: filter join over unsupported relation kind %s", s.entry.Kind)
}

// filterShipBytes returns the wire size of the filter set representation.
func (ch *Choice) filterShipBytes(keys *exec.KeySet, s *fjExecSpec) int {
	if ch.Repr == ReprBloom {
		return int(float64(keys.Len())*ch.BloomBits/8) + 64
	}
	return keys.Len() * s.keyBytes
}

// restrictStored restricts a stored (local or remote) table by the filter
// set via membership scanning, Bloom scanning, or index probes.
func (f *filterJoinOp) restrictStored(ctx *exec.Context, keys *exec.KeySet) (exec.Operator, error) {
	s := f.spec
	ch := s.choice
	t := s.entry.Table

	if ch.Access == AccessIndexProbe && s.index != nil {
		// Drive index probes from the distinct keys, emitting inner rows.
		ks := exec.NewKeySetScan(keys, keySchema(s, t))
		// Key positions within the key row aligned to the index columns.
		outerKeyIdx := make([]int, len(s.ixPerm))
		for i, p := range s.ixPerm {
			if p < 0 {
				return nil, fmt.Errorf("core: index permutation incomplete for %s", t.Name())
			}
			outerKeyIdx[i] = p
		}
		probe := exec.NewIndexNLJoin(ks, t, s.index, outerKeyIdx, nil, s.alias)
		// Drop the key columns, keeping the inner row only.
		innerIdx := make([]int, t.Schema().Len())
		for i := range innerIdx {
			innerIdx[i] = len(s.innerFilterLoc) + i
		}
		var op exec.Operator = exec.NewColumnProject(probe, innerIdx)
		if s.localPred != nil {
			op = exec.NewSelect(op, s.localPred)
		}
		return op, nil
	}

	var op exec.Operator = exec.NewTableScan(t, s.alias)
	if ch.Repr == ReprBloom {
		bf := keys.ToBloom(ch.BloomBits, s.innerFilterLoc)
		ctx.Counter.CPUTuples += int64(keys.Len())
		op = exec.NewBloomFilterScan(op, bf, s.innerFilterLoc)
	} else {
		op = exec.NewKeySetFilter(op, keys, s.innerFilterLoc)
	}
	if s.localPred != nil {
		op = exec.NewSelect(op, s.localPred)
	}
	return op, nil
}

func keySchema(s *fjExecSpec, t *storage.Table) *schema.Schema {
	cols := make([]schema.Column, len(s.innerFilterLoc))
	for i, c := range s.innerFilterLoc {
		cols[i] = schema.Column{Name: fmt.Sprintf("k%d", i), Type: t.Schema().Col(c).Type}
	}
	return schema.New(cols...)
}

// restrictView performs the magic rewriting at execution time with the
// actual filter set: F is written into a transient table, the rewritten
// block (view body ⋈ F) is optimized with F's true cardinality, and the
// resulting plan is instantiated. This is the paper's §4.2 deferred
// planning: cost estimation during join enumeration used the parametric
// coster; the concrete sub-plan is generated only once, here.
func (f *filterJoinOp) restrictView(ctx *exec.Context, keys *exec.KeySet) (exec.Operator, error) {
	s := f.spec
	o := f.o
	fName := o.TempName("magic")
	rows := make([]value.Row, len(keys.Rows()))
	copy(rows, keys.Rows())
	ft := storage.FromRows(fName, s.fSchema, rows)
	ctx.Counter.PageWrites += int64(ft.NumPages()) // AvailCost_F: materializing F
	o.Cat.AddTable(ft)
	defer o.Cat.Drop(fName)

	rb, err := restrictedBlock(o.Cat, s.entry, s.bodyCols, fName)
	if err != nil {
		return nil, err
	}
	node, err := o.OptimizeBlock(rb)
	if err != nil {
		return nil, fmt.Errorf("core: planning restricted view %s: %w", s.entry.Name, err)
	}
	var op exec.Operator = node.Make()
	if s.entry.Site > 0 {
		if err := dist.Send(ctx, s.entry.Site, int64(s.choice.filterShipBytes(keys, s))); err != nil {
			return nil, err
		}
		vs, err := s.entry.Schema(o.Cat)
		if err != nil {
			return nil, err
		}
		op = dist.NewShip(op, vs.RowWidth(), s.entry.Site)
	}
	if s.localPred != nil {
		op = exec.NewSelect(op, s.localPred)
	}
	return op, nil
}

// Next implements exec.Operator.
func (f *filterJoinOp) Next(ctx *exec.Context) (value.Row, bool, error) {
	if f.final == nil {
		return nil, false, fmt.Errorf("core: filter join not opened")
	}
	return f.final.Next(ctx)
}

// NextBatch implements exec.BatchOperator by delegating to the final
// join assembled in Open. The filter set's own network sends happen at
// Open time, so batched emission cannot reorder them.
func (f *filterJoinOp) NextBatch(ctx *exec.Context, dst *exec.Batch, max int) error {
	if f.final == nil {
		return fmt.Errorf("core: filter join not opened")
	}
	return exec.FillBatch(ctx, f.final, dst, max)
}

// Close implements exec.Operator.
func (f *filterJoinOp) Close(ctx *exec.Context) error {
	if f.final == nil {
		return nil
	}
	err := f.final.Close(ctx)
	f.final = nil
	return err
}
