package core_test

import (
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/query"
)

// TestNestedViews checks views defined over other views: the optimizer
// recurses through both levels, and the Filter Join can restrict the
// outer view (whose body contains the inner view).
func TestNestedViews(t *testing.T) {
	cat := fig1DB(t, 10000, 200, 0.25, 0.05)

	// Level 1: per-department salary average (grouped view over Emp).
	// Already registered as DepAvgSal by fig1DB.
	// Level 2: a projection view over DepAvgSal that keeps high averages.
	// Layout of the body: DepAvgSal:[0,1].
	cat.AddView("HighAvg", &query.Block{
		Rels: []query.RelRef{{Name: "DepAvgSal"}},
		Preds: []expr.Expr{
			expr.NewCmp(expr.GT, expr.NewCol(1, "DepAvgSal.avgsal"), expr.Float(2000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(0, "DepAvgSal.did"), Name: "did"},
			{Expr: expr.NewCol(1, "DepAvgSal.avgsal"), Name: "avgsal"},
		},
	})

	// Query: Dept σ(budget) ⋈ HighAvg. Layout D:[0,1] H:[2,3].
	q := &query.Block{
		Rels: []query.RelRef{
			{Name: "Dept", Alias: "D"},
			{Name: "HighAvg", Alias: "H"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(0, "D.did"), expr.NewCol(2, "H.did")),
			expr.NewCmp(expr.GT, expr.NewCol(1, "D.budget"), expr.Int(100000)),
		},
	}

	model := cost.DefaultModel()
	oPlain := opt.New(cat, model)
	pPlain, err := oPlain.OptimizeBlock(q)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	plainRows, _ := runPlan(t, planRunner{pPlain.Make})

	oFJ := opt.New(cat, model)
	oFJ.Register(core.NewMethod(core.Options{}))
	pFJ, err := oFJ.OptimizeBlock(q)
	if err != nil {
		t.Fatalf("fj: %v", err)
	}
	fjRows, _ := runPlan(t, planRunner{pFJ.Make})

	if len(plainRows) == 0 {
		t.Fatal("nested view query returned no rows; workload degenerate")
	}
	if !equalStrings(plainRows, fjRows) {
		t.Fatalf("nested views: results differ (%d vs %d rows)", len(plainRows), len(fjRows))
	}
}

// TestFilterJoinOnAggregateOutputRejected: binding a view output column
// that is an aggregate result has no provenance into the body, so the
// Filter Join must decline that attribute — and the query must still
// run correctly through other methods.
func TestFilterJoinOnAggregateOutputRejected(t *testing.T) {
	cat := fig1DB(t, 4000, 100, 0.25, 0.1)
	// Join Emp's salary against the view's aggregate output: the only
	// equi attribute is V.avgsal, which has provenance -1.
	q := &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "DepAvgSal", Alias: "V"},
		},
		// Layout: E:[0..3] V:[4,5].
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(2, "E.sal"), expr.NewCol(5, "V.avgsal")),
		},
	}
	model := cost.DefaultModel()
	m := core.NewMethod(core.Options{})
	o := opt.New(cat, model)
	o.Register(m)
	p, err := o.OptimizeBlock(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Find("FilterJoin") != nil {
		t.Error("filter join must not bind an aggregate output column")
	}
	rows, _ := runPlan(t, planRunner{p.Make})
	plain := opt.New(cat, model)
	pp, err := plain.OptimizeBlock(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runPlan(t, planRunner{pp.Make})
	if !equalStrings(rows, want) {
		t.Error("results differ")
	}
}
