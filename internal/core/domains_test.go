package core_test

import (
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/datagen"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
)

func optimizeAndRun(t *testing.T, cat *catalog.Catalog, b *query.Block, withFJ bool, fjOpts core.Options) ([]string, cost.Counter, *plan.Node) {
	t.Helper()
	o := opt.New(cat, cost.DefaultModel())
	if withFJ {
		o.Register(core.NewMethod(fjOpts))
	}
	p, err := o.OptimizeBlock(b)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	rows, counter := runPlan(t, planRunner{p.Make})
	return rows, counter, p
}

// TestDistributedBaseTable verifies the remote base-table join: plans
// with and without the Filter Join agree on results, and the semi-join
// (Filter Join) ships fewer bytes than the plain plan when the local
// side is selective.
func TestDistributedBaseTable(t *testing.T) {
	cat, err := datagen.DistCatalog(datagen.DefaultDist())
	if err != nil {
		t.Fatal(err)
	}
	plainRows, plainCost, _ := optimizeAndRun(t, cat, datagen.DistBaseQuery(), false, core.Options{})
	fjRows, fjCost, fjPlan := optimizeAndRun(t, cat, datagen.DistBaseQuery(), true, core.Options{})

	if len(plainRows) == 0 {
		t.Fatal("distributed query returned no rows")
	}
	if !equalStrings(plainRows, fjRows) {
		t.Fatalf("results differ: plain=%d fj=%d rows", len(plainRows), len(fjRows))
	}
	if fjPlan.Find("FilterJoin") != nil && fjCost.NetBytes >= plainCost.NetBytes {
		t.Errorf("semi-join should reduce network bytes: fj=%d plain=%d", fjCost.NetBytes, plainCost.NetBytes)
	}
}

// TestRemoteViewJoin verifies joins with a view whose body runs at a
// remote site — the heterogeneous-query scenario of §5.1.
func TestRemoteViewJoin(t *testing.T) {
	cat, err := datagen.DistCatalog(datagen.DefaultDist())
	if err != nil {
		t.Fatal(err)
	}
	plainRows, _, _ := optimizeAndRun(t, cat, datagen.DistQuery(), false, core.Options{})
	fjRows, _, _ := optimizeAndRun(t, cat, datagen.DistQuery(), true, core.Options{})
	if len(plainRows) == 0 {
		t.Fatal("remote view query returned no rows")
	}
	if !equalStrings(plainRows, fjRows) {
		t.Fatalf("results differ: plain=%d fj=%d rows", len(plainRows), len(fjRows))
	}
}

// TestUDRJoin verifies the function-backed relation: repeated probe and
// consecutive-invocation filter join agree, and the filter join never
// makes more calls than there are distinct bindings.
func TestUDRJoin(t *testing.T) {
	cat, counter, err := datagen.UDRCatalog(datagen.DefaultUDR())
	if err != nil {
		t.Fatal(err)
	}
	plainRows, _, _ := optimizeAndRun(t, cat, datagen.UDRQuery(), false, core.Options{})
	plainCalls := counter.Calls

	counter.Calls = 0
	fjRows, _, fjPlan := optimizeAndRun(t, cat, datagen.UDRQuery(), true, core.Options{})
	fjCalls := counter.Calls

	if len(plainRows) == 0 {
		t.Fatal("UDR query returned no rows")
	}
	if !equalStrings(plainRows, fjRows) {
		t.Fatalf("results differ: plain=%d fj=%d rows", len(plainRows), len(fjRows))
	}
	if fjPlan.Find("FilterJoin") != nil {
		p := datagen.DefaultUDR()
		if fjCalls > p.NDept {
			t.Errorf("filter join made %d calls, more than %d distinct departments", fjCalls, p.NDept)
		}
		if plainCalls > 0 && fjCalls > plainCalls {
			t.Errorf("filter join (%d calls) should not exceed the plain plan (%d calls)", fjCalls, plainCalls)
		}
	}
}

// TestBloomVariant checks that the lossy Bloom filter representation
// yields identical results (the final join re-checks the predicate).
func TestBloomVariant(t *testing.T) {
	cat, err := datagen.DistCatalog(datagen.DefaultDist())
	if err != nil {
		t.Fatal(err)
	}
	exactRows, _, _ := optimizeAndRun(t, cat, datagen.DistBaseQuery(), true, core.Options{})
	bloomRows, _, _ := optimizeAndRun(t, cat, datagen.DistBaseQuery(), true, core.Options{Bloom: true, BloomBitsPerEntry: 6})
	if !equalStrings(exactRows, bloomRows) {
		t.Fatalf("bloom variant changed results: %d vs %d rows", len(exactRows), len(bloomRows))
	}
}

// TestStoredFilterJoin enables the local semi-join (§5.3) and checks
// correctness on a plain two-table join.
func TestStoredFilterJoin(t *testing.T) {
	cat := fig1DB(t, 8000, 200, 0.2, 0.05)
	q := &query.Block{
		Rels: []query.RelRef{
			{Name: "Dept", Alias: "D"},
			{Name: "Emp", Alias: "E"},
		},
		Preds: datagenLocalJoinPreds(),
	}
	plainRows, _, _ := optimizeAndRun(t, cat, q, false, core.Options{})
	fjRows, _, _ := optimizeAndRun(t, cat, q, true, core.Options{IncludeStored: true})
	if len(plainRows) == 0 {
		t.Fatal("no rows")
	}
	if !equalStrings(plainRows, fjRows) {
		t.Fatalf("results differ: plain=%d fj=%d", len(plainRows), len(fjRows))
	}
}

// datagenLocalJoinPreds: D.did = E.did AND D.budget > 100000 over layout
// D:[0,1] E:[2..5].
func datagenLocalJoinPreds() []expr.Expr {
	return []expr.Expr{
		expr.Eq(expr.NewCol(0, "D.did"), expr.NewCol(3, "E.did")),
		expr.NewCmp(expr.GT, expr.NewCol(1, "D.budget"), expr.Int(100000)),
	}
}
