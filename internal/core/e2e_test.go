package core_test

import (
	"fmt"
	"sort"
	"testing"

	"filterjoin/internal/catalog"
	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/exec"
	"filterjoin/internal/expr"
	"filterjoin/internal/opt"
	"filterjoin/internal/plan"
	"filterjoin/internal/query"
	"filterjoin/internal/schema"
	"filterjoin/internal/storage"
	"filterjoin/internal/value"
)

// fig1DB builds the paper's Fig 1 universe: Emp, Dept, and the
// DepAvgSal view, with nEmp employees spread over nDept departments.
// youngFrac of employees are young (<30) and bigFrac of departments have
// budget > 100000; both are deterministic in the row id.
func fig1DB(t testing.TB, nEmp, nDept int, youngFrac, bigFrac float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	empSchema := schema.New(
		schema.Column{Table: "Emp", Name: "eid", Type: value.KindInt},
		schema.Column{Table: "Emp", Name: "did", Type: value.KindInt},
		schema.Column{Table: "Emp", Name: "sal", Type: value.KindFloat},
		schema.Column{Table: "Emp", Name: "age", Type: value.KindInt},
	)
	emp := storage.NewTable("Emp", empSchema)
	for i := 0; i < nEmp; i++ {
		age := int64(40)
		if float64(i%100) < youngFrac*100 {
			age = 25
		}
		// Clustered by did: employees of one department are contiguous.
		emp.MustInsert(
			value.NewInt(int64(i)),
			value.NewInt(int64(i*nDept/nEmp)),
			value.NewFloat(float64(1000+(i*37)%5000)),
			value.NewInt(age),
		)
	}
	if _, err := emp.CreateIndex("emp_did", []int{1}); err != nil {
		t.Fatal(err)
	}
	cat.AddTable(emp)

	deptSchema := schema.New(
		schema.Column{Table: "Dept", Name: "did", Type: value.KindInt},
		schema.Column{Table: "Dept", Name: "budget", Type: value.KindInt},
	)
	dept := storage.NewTable("Dept", deptSchema)
	for d := 0; d < nDept; d++ {
		budget := int64(50000)
		if float64(d%100) < bigFrac*100 {
			budget = 200000
		}
		dept.MustInsert(value.NewInt(int64(d)), value.NewInt(budget))
	}
	if _, err := dept.CreateIndex("dept_did", []int{0}); err != nil {
		t.Fatal(err)
	}
	cat.AddTable(dept)

	// CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) avgsal FROM Emp GROUP BY did
	cat.AddView("DepAvgSal", &query.Block{
		Rels:    []query.RelRef{{Name: "Emp"}},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.AggAvg, Arg: expr.NewCol(2, "Emp.sal"), Name: "avgsal"}},
	})
	return cat
}

// fig1Query is the paper's motivating query:
//
//	SELECT E.did, E.sal, V.avgsal
//	FROM Emp E, Dept D, DepAvgSal V
//	WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal
//	  AND E.age < 30 AND D.budget > 100000
//
// Block layout: E:[0..3] D:[4,5] V:[6,7].
func fig1Query() *query.Block {
	return &query.Block{
		Rels: []query.RelRef{
			{Name: "Emp", Alias: "E"},
			{Name: "Dept", Alias: "D"},
			{Name: "DepAvgSal", Alias: "V"},
		},
		Preds: []expr.Expr{
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(4, "D.did")),
			expr.Eq(expr.NewCol(1, "E.did"), expr.NewCol(6, "V.did")),
			expr.NewCmp(expr.GT, expr.NewCol(2, "E.sal"), expr.NewCol(7, "V.avgsal")),
			expr.NewCmp(expr.LT, expr.NewCol(3, "E.age"), expr.Int(30)),
			expr.NewCmp(expr.GT, expr.NewCol(5, "D.budget"), expr.Int(100000)),
		},
		Proj: []query.Output{
			{Expr: expr.NewCol(1, "E.did"), Name: "did"},
			{Expr: expr.NewCol(2, "E.sal"), Name: "sal"},
			{Expr: expr.NewCol(7, "V.avgsal"), Name: "avgsal"},
		},
	}
}

// referenceFig1 computes the expected Fig 1 result straight from the
// base tables, bypassing the engine entirely.
func referenceFig1(cat *catalog.Catalog) ([]string, error) {
	empE, err := cat.Get("Emp")
	if err != nil {
		return nil, err
	}
	deptE, err := cat.Get("Dept")
	if err != nil {
		return nil, err
	}
	avg := map[int64][2]float64{}
	for _, r := range empE.Table.Rows() {
		did := r[1].Int()
		a := avg[did]
		a[0] += r[2].Float()
		a[1]++
		avg[did] = a
	}
	big := map[int64]bool{}
	for _, r := range deptE.Table.Rows() {
		if r[1].Int() > 100000 {
			big[r[0].Int()] = true
		}
	}
	var out []string
	for _, r := range empE.Table.Rows() {
		did := r[1].Int()
		a := avg[did]
		mean := a[0] / a[1]
		if r[3].Int() < 30 && big[did] && r[2].Float() > mean {
			out = append(out, fmt.Sprintf("%d|%g|%g", did, r[2].Float(), mean))
		}
	}
	sort.Strings(out)
	return out, nil
}

func runPlan(t testing.TB, n interface {
	Make() exec.Operator
}) ([]string, cost.Counter) {
	t.Helper()
	ctx := exec.NewContext()
	rows, err := exec.Drain(ctx, n.Make())
	if err != nil {
		t.Fatalf("executing plan: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	sort.Strings(out)
	return out, *ctx.Counter
}

type planRunner struct{ n func() exec.Operator }

func (p planRunner) Make() exec.Operator { return p.n() }

func TestFig1EndToEnd(t *testing.T) {
	cat := fig1DB(t, 2000, 100, 0.3, 0.2)
	ref, err := referenceFig1(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference result is empty; workload parameters are wrong")
	}

	model := cost.DefaultModel()

	// Optimizer without the Filter Join.
	oPlain := opt.New(cat, model)
	pPlain, err := oPlain.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatalf("plain optimize: %v", err)
	}
	gotPlain, _ := runPlan(t, planRunner{pPlain.Make})
	if !equalStrings(gotPlain, ref) {
		t.Fatalf("plain plan result mismatch: got %d rows, want %d\nfirst got: %v\nfirst want: %v",
			len(gotPlain), len(ref), head(gotPlain), head(ref))
	}

	// Optimizer with the Filter Join registered.
	oFJ := opt.New(cat, model)
	oFJ.Register(core.NewMethod(core.Options{}))
	pFJ, err := oFJ.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatalf("filterjoin optimize: %v", err)
	}
	gotFJ, _ := runPlan(t, planRunner{pFJ.Make})
	if !equalStrings(gotFJ, ref) {
		t.Fatalf("filterjoin plan result mismatch: got %d rows, want %d\nfirst got: %v\nfirst want: %v",
			len(gotFJ), len(ref), head(gotFJ), head(ref))
	}
}

// TestFilterJoinChosenWhenSelective checks the headline behaviour: with
// few qualifying departments the optimizer should pick a Filter Join for
// the view, and its measured cost should beat the plain plan's.
func TestFilterJoinChosenWhenSelective(t *testing.T) {
	cat := fig1DB(t, 20000, 400, 0.2, 0.03)
	model := cost.DefaultModel()

	oPlain := opt.New(cat, model)
	oPlain.Disabled["filterjoin"] = true
	pPlain, err := oPlain.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}

	oFJ := opt.New(cat, model)
	oFJ.Register(core.NewMethod(core.Options{}))
	pFJ, err := oFJ.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	if pFJ.Find("FilterJoin") == nil {
		t.Fatalf("expected a FilterJoin in the plan; got:\n%s", plan.Format(pFJ, model))
	}

	refPlain, cPlain := runPlan(t, planRunner{pPlain.Make})
	refFJ, cFJ := runPlan(t, planRunner{pFJ.Make})
	if !equalStrings(refPlain, refFJ) {
		t.Fatalf("plans disagree: %d vs %d rows", len(refPlain), len(refFJ))
	}
	if model.Total(cFJ) >= model.Total(cPlain) {
		t.Fatalf("filter join should be cheaper on selective workload: fj=%.1f plain=%.1f",
			model.Total(cFJ), model.Total(cPlain))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(s []string) []string {
	if len(s) > 3 {
		return s[:3]
	}
	return s
}
