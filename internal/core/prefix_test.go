package core_test

import (
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/opt"
)

// TestPrefixProductionSetsCorrect verifies the Limitation-2 relaxation:
// with prefix production sets enabled, plans stay correct and never get
// more expensive than with the limitation in force (the search space is
// a superset).
func TestPrefixProductionSetsCorrect(t *testing.T) {
	cat := fig1DB(t, 20000, 400, 0.2, 0.03)
	model := cost.DefaultModel()

	oFull := opt.New(cat, model)
	oFull.Register(core.NewMethod(core.Options{}))
	pFull, err := oFull.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	fullRows, _ := runPlan(t, planRunner{pFull.Make})

	mPrefix := core.NewMethod(core.Options{PrefixProductionSets: true})
	oPrefix := opt.New(cat, model)
	oPrefix.Register(mPrefix)
	pPrefix, err := oPrefix.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	prefixRows, _ := runPlan(t, planRunner{pPrefix.Make})

	if !equalStrings(fullRows, prefixRows) {
		t.Fatalf("prefix production sets changed results: %d vs %d rows",
			len(prefixRows), len(fullRows))
	}
	if pPrefix.Total(model) > pFull.Total(model)+1e-6 {
		t.Errorf("relaxed search space must not find a worse plan: prefix=%.2f full=%.2f",
			pPrefix.Total(model), pFull.Total(model))
	}
	if mPrefix.Metrics.CandidatesBuilt <= 0 {
		t.Error("no candidates built")
	}
}

// TestPrefixCandidateExecutes forces a query shape where a prefix
// production set is likely attractive (expensive second outer relation)
// and checks the chosen plan executes correctly.
func TestPrefixCandidateExecutes(t *testing.T) {
	cat := fig1DB(t, 30000, 300, 0.5, 0.02)
	model := cost.DefaultModel()

	m := core.NewMethod(core.Options{PrefixProductionSets: true})
	var sawPrefix bool
	m.Trace = func(ch *core.Choice, _ float64) {
		if ch.PrefixProduction {
			sawPrefix = true
		}
	}
	o := opt.New(cat, model)
	o.Register(m)
	p, err := o.OptimizeBlock(fig1Query())
	if err != nil {
		t.Fatal(err)
	}
	if !sawPrefix {
		t.Error("no prefix candidate was ever costed")
	}
	got, _ := runPlan(t, planRunner{p.Make})
	ref, err := referenceFig1(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(got, ref) {
		t.Fatalf("results wrong: %d vs %d rows", len(got), len(ref))
	}
}
