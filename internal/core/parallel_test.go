package core_test

import (
	"math/rand"
	"testing"

	"filterjoin/internal/core"
	"filterjoin/internal/cost"
	"filterjoin/internal/opt"
)

// TestDifferentialParallelExecution is the parallel half of the
// differential fuzz: every random query, optimized and executed serially
// and at DegreeOfParallelism 2 and 4, must produce the identical result
// multiset AND the identical merged cost.Counter totals. Workers charge
// exactly the serial per-row and per-page units and exchange coordination
// is cost-free by convention, so counter equality here is exact, not
// approximate — any divergence means a worker's ledger was lost or a row
// was double-charged.
func TestDifferentialParallelExecution(t *testing.T) {
	model := cost.DefaultModel()
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 3))
		cat, nTables := randCatalog(rng)
		q := randQuery(rng, nTables)

		for _, method := range []struct {
			name string
			fj   func() *core.Method
		}{
			{"plain", func() *core.Method { return nil }},
			{"fj", func() *core.Method { return core.NewMethod(core.Options{}) }},
			{"fj-everything", func() *core.Method {
				return core.NewMethod(core.Options{
					IncludeStored: true, AttrSubsets: true, Bloom: true,
					PrefixProductionSets: true,
				})
			}},
		} {
			oSerial := opt.New(cat, model)
			if fj := method.fj(); fj != nil {
				oSerial.Register(fj)
			}
			pSerial, err := oSerial.OptimizeBlock(q)
			if err != nil {
				t.Fatalf("trial %d (%s serial): optimize: %v", trial, method.name, err)
			}
			wantRows, wantCost := runPlan(t, planRunner{pSerial.Make})

			for _, dop := range []int{2, 4} {
				o := opt.New(cat, model)
				o.DegreeOfParallelism = dop
				if fj := method.fj(); fj != nil {
					o.Register(fj)
				}
				p, err := o.OptimizeBlock(q)
				if err != nil {
					t.Fatalf("trial %d (%s dop=%d): optimize: %v", trial, method.name, dop, err)
				}
				gotRows, gotCost := runPlan(t, planRunner{p.Make})
				if !equalStrings(gotRows, wantRows) {
					t.Fatalf("trial %d (%s): dop=%d produced %d rows, serial produced %d\nquery: %s",
						trial, method.name, dop, len(gotRows), len(wantRows), q)
				}
				if gotCost != wantCost {
					t.Fatalf("trial %d (%s): dop=%d charged %s, serial charged %s\nquery: %s",
						trial, method.name, dop, gotCost.String(), wantCost.String(), q)
				}
			}
		}
	}
}
