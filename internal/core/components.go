// Package core implements the paper's primary contribution: the Filter
// Join as a join method inside a cost-based optimizer.
//
// A Filter Join of outer P with virtual inner R_k (Definition 2.1):
//
//  1. compute the production set P (Limitations 1+2: P is exactly the
//     outer subplan),
//  2. distinct-project P onto (a subset of) the join attributes to form
//     the filter set F (Limitation 3: a small constant number of filter
//     set variants — all attributes exact, all attributes as a Bloom
//     filter, single-attribute subsets),
//  3. restrict R_k by F (for views this is magic-sets rewriting: F joins
//     into the view body; for remote relations it is a semi-join; for
//     stored relations a local semi-join; for function relations the
//     distinct consecutive invocation),
//  4. join the restricted R_k' back with P.
//
// Costing follows Table 1 of the paper exactly; the seven components are
// kept separately so experiments can print the breakdown. Assumption 1
// (O(1) cost/cardinality estimation for the restricted inner) is realized
// by the parametric view coster in coster.go: a bounded number of nested
// optimizer invocations at sample filter selectivities, a straight-line
// fit for result cardinality (Fig 4), and interpolation between cost
// equivalence classes (Fig 5), all cached per (view, attributes).
package core

import (
	"fmt"
	"strings"

	"filterjoin/internal/cost"
)

// Components is the Table 1 cost breakdown of one Filter Join candidate.
type Components struct {
	JoinCostP       cost.Estimate // cost of producing the production set P (the outer subplan)
	ProductionCostP cost.Estimate // materializing P (or recomputing it) for its second use
	ProjCostF       cost.Estimate // distinct projection of P onto the filter attributes
	AvailCostF      cost.Estimate // making F available to R_k (shipping, Bloom build, temp table)
	FilterCostRk    cost.Estimate // generating R_k restricted by F
	AvailCostRkP    cost.Estimate // making R_k' available for the final join (ship back / materialize)
	FinalJoinCost   cost.Estimate // the final join of P with R_k'
}

// Total sums the seven components.
func (c Components) Total() cost.Estimate {
	return c.JoinCostP.
		Plus(c.ProductionCostP).
		Plus(c.ProjCostF).
		Plus(c.AvailCostF).
		Plus(c.FilterCostRk).
		Plus(c.AvailCostRkP).
		Plus(c.FinalJoinCost)
}

// Names returns the component labels in Table 1 order.
func (Components) Names() []string {
	return []string{
		"JoinCost_P", "ProductionCost_P", "ProjCost_F", "AvailCost_F",
		"FilterCost_Rk", "AvailCost_Rk'", "FinalJoinCost",
	}
}

// Values returns the component estimates in Table 1 order.
func (c Components) Values() []cost.Estimate {
	return []cost.Estimate{
		c.JoinCostP, c.ProductionCostP, c.ProjCostF, c.AvailCostF,
		c.FilterCostRk, c.AvailCostRkP, c.FinalJoinCost,
	}
}

// FilterRepr identifies how the filter set is represented.
type FilterRepr uint8

// Filter set representations (Limitation 3 variants).
const (
	ReprExact FilterRepr = iota // distinct key set (the classical magic set)
	ReprBloom                   // fixed-size lossy Bloom filter
)

// String names the representation.
func (r FilterRepr) String() string {
	if r == ReprBloom {
		return "bloom"
	}
	return "exact"
}

// InnerAccess identifies how the restricted inner is produced.
type InnerAccess uint8

// Inner restriction strategies.
const (
	AccessScanFilter InnerAccess = iota // scan the inner, test membership
	AccessIndexProbe                    // drive index probes from F's keys
	AccessMagicView                     // magic-rewritten view plan (F joined into the body)
	AccessRemote                        // ship F, restrict remotely, ship R_k' back
	AccessFuncCalls                     // consecutive function invocation per distinct binding
)

// String names the access strategy.
func (a InnerAccess) String() string {
	switch a {
	case AccessScanFilter:
		return "scan+filter"
	case AccessIndexProbe:
		return "index-probe"
	case AccessMagicView:
		return "magic-view"
	case AccessRemote:
		return "remote-semijoin"
	case AccessFuncCalls:
		return "consecutive-calls"
	default:
		return "?"
	}
}

// Choice records every decision one Filter Join candidate embodies; it is
// attached to the plan node as Extra so experiments and the magic-SQL
// renderer can inspect it.
type Choice struct {
	InnerName  string
	InnerIndex int // relation ordinal in the block

	// All equi pairs between outer and inner (block layout columns);
	// the final join always uses all of them.
	AllOuterCols, AllInnerCols []int

	// The subset actually used for the filter set (SIPS attribute choice).
	FilterOuterCols, FilterInnerCols []int

	Repr        FilterRepr
	BloomBits   float64 // bits per entry when Repr == ReprBloom
	Access      InnerAccess
	Materialize bool // materialize P (true) or recompute it (false)

	// PrefixProduction is set when the production set is a proper prefix
	// of the outer (Limitation 2 relaxed); ProductionRels identifies it.
	PrefixProduction bool
	ProductionRels   []int

	FilterCard   float64 // estimated |F|
	FilterSel    float64 // estimated fraction of the inner's bindings F retains
	RestrictRows float64 // estimated |R_k'|

	Components Components
}

// String summarizes the choice for plan display.
func (ch *Choice) String() string {
	attrs := make([]string, len(ch.FilterOuterCols))
	for i := range attrs {
		attrs[i] = fmt.Sprintf("#%d", ch.FilterInnerCols[i])
	}
	mat := "recompute-P"
	if ch.Materialize {
		mat = "materialize-P"
	}
	if ch.PrefixProduction {
		mat = fmt.Sprintf("prefix-P%v", ch.ProductionRels)
	}
	return fmt.Sprintf("%s filter on {%s} via %s, %s, |F|≈%.0f sel≈%.3f",
		ch.Repr, strings.Join(attrs, ","), ch.Access, mat, ch.FilterCard, ch.FilterSel)
}
